// Package simnet models the cluster network on top of the discrete-event
// engine: point-to-point messages between nodes with per-machine link
// serialization, latency, and byte accounting.
//
// The model is store-and-forward FIFO queueing: a message first occupies
// the sender machine's egress link for bytes/bandwidth seconds (queuing
// behind earlier transmissions), crosses the wire after the fixed latency,
// then occupies the receiver machine's ingress link. Messages between
// workers on one machine instead occupy that machine's internal bus. This
// first-order model is what produces the paper's headline performance
// effects: the parameter-server ingress bottleneck at 10 Gbps, the benefit
// of local aggregation and sharding, and AD-PSGD's smooth link utilization.
package simnet

import (
	"fmt"

	"disttrain/internal/cluster"
	"disttrain/internal/des"
	"disttrain/internal/trace"
)

// Msg is one network message. Vec is the optional real payload (nil in
// cost-only mode); Bytes is the wire size used for timing, which in
// cost-only experiments reflects the full-size paper models rather than
// len(Vec).
type Msg struct {
	From, To int
	Kind     int
	// Clock carries the sender's iteration counter (SSP staleness, traces).
	Clock int
	// Seg identifies a parameter segment / shard for sharded transfers.
	Seg int
	// Bytes is the wire size used for link booking.
	Bytes int64
	// Vec is the payload gradient/parameter vector; may be nil.
	Vec []float32
	// SparseIdx carries the coordinate indices of a sparse (DGC) payload,
	// parallel to Vec.
	SparseIdx []int32
	// Aux carries algorithm-specific scalar state (e.g. GoSGD weights).
	Aux float64
	// Parts carries per-rank contributions for topology-aware collectives.
	// Like Vec, it is payload, decoupled from Bytes: the wire size models
	// the collective's real reduced-value traffic while Parts lets every
	// receiver replay the canonical reduction order bit-identically.
	// Senders share slices across messages; receivers must not mutate.
	Parts []Part
	// SentAt and WireSec record timing for metrics attribution.
	SentAt  des.Time
	WireSec des.Time
}

// Part is one rank's original (pre-reduction) contribution to a
// collective, carried so any rank holding the full set can fold it in the
// reference order regardless of the message pattern that delivered it.
type Part struct {
	Rank int
	Vec  []float32
}

// link is a FIFO resource: a transmission books [start, start+dur) where
// start is no earlier than the link's previous completion.
type link struct {
	freeAt  des.Time
	busySec des.Time
}

// reserve books dur seconds on the link starting at or after t and returns
// the completion time.
func (l *link) reserve(t des.Time, dur des.Time) des.Time {
	start := t
	if l.freeAt > start {
		start = l.freeAt
	}
	l.freeAt = start + dur
	l.busySec += dur
	return start + dur
}

// Node is a network endpoint with an inbox.
type Node struct {
	ID      int
	Machine int
	Inbox   *des.Queue[Msg]
}

// Stats accumulates traffic counters.
type Stats struct {
	// TotalBytes is the sum of Msg.Bytes over all sends.
	TotalBytes int64
	// TotalMsgs is the number of messages sent.
	TotalMsgs int64
	// BytesByKind maps Msg.Kind to bytes.
	BytesByKind map[int]int64
	// CrossMachineBytes counts only inter-machine traffic.
	CrossMachineBytes int64
	// DroppedMsgs and DroppedBytes count messages lost to fault injection
	// (partitions and probabilistic drop); they are not included in
	// TotalBytes/TotalMsgs.
	DroppedMsgs  int64
	DroppedBytes int64
	// IngressBusySec and EgressBusySec are the per-machine cumulative
	// seconds each NIC direction spent transmitting — divide by elapsed
	// virtual time for utilization. A centralized algorithm concentrates
	// busy time on the PS machines; decentralized traffic spreads evenly
	// (the paper's "less bursty" observation about AD-PSGD).
	IngressBusySec []float64
	EgressBusySec  []float64
}

// UtilizationSpread returns (max − min)/max of per-machine total NIC busy
// seconds — 0 for perfectly even load, →1 when one machine carries all
// traffic. Returns 0 when no machine moved any bytes.
func (s Stats) UtilizationSpread() float64 {
	if len(s.IngressBusySec) == 0 {
		return 0
	}
	minV, maxV := -1.0, 0.0
	for m := range s.IngressBusySec {
		tot := s.IngressBusySec[m] + s.EgressBusySec[m]
		if tot > maxV {
			maxV = tot
		}
		if minV < 0 || tot < minV {
			minV = tot
		}
	}
	if maxV == 0 {
		return 0
	}
	return (maxV - minV) / maxV
}

// Net is the simulated network.
type Net struct {
	eng   *des.Engine
	cfg   cluster.Config
	nodes []*Node

	egress  []link // per machine
	ingress []link // per machine
	bus     []link // per machine, intra-machine transfers

	stats  Stats
	tracer *trace.Tracer
	faults FaultModel
}

// FaultModel lets a fault injector intercept inter-machine transfers. Both
// hooks are consulted once per cross-machine Send, in deterministic engine
// order (Cut may consume RNG state; Slow must be pure).
type FaultModel interface {
	// Cut reports whether a message sent now from machine `from` to
	// machine `to` is lost.
	Cut(now float64, from, to int) bool
	// Slow returns a wire-time multiplier (>= 1 in practice) for the
	// transfer.
	Slow(now float64, from, to int) float64
}

// SetFaults attaches a fault model; nil detaches it.
func (n *Net) SetFaults(f FaultModel) { n.faults = f }

// SetTracer attaches a Chrome-trace recorder; every subsequent message is
// recorded as a span on its destination machine's ingress track.
func (n *Net) SetTracer(t *trace.Tracer) { n.tracer = t }

// New builds a network for the cluster. Nodes are created via AddNode.
func New(eng *des.Engine, cfg cluster.Config) *Net {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Net{
		eng:     eng,
		cfg:     cfg,
		egress:  make([]link, cfg.Machines),
		ingress: make([]link, cfg.Machines),
		bus:     make([]link, cfg.Machines),
		stats:   Stats{BytesByKind: map[int]int64{}},
	}
}

// AddNode registers a new endpoint on the given machine and returns it.
// Node IDs are assigned densely in registration order.
func (n *Net) AddNode(machine int) *Node {
	if machine < 0 || machine >= n.cfg.Machines {
		panic(fmt.Sprintf("simnet: machine %d of %d", machine, n.cfg.Machines))
	}
	node := &Node{ID: len(n.nodes), Machine: machine, Inbox: des.NewQueue[Msg](n.eng)}
	n.nodes = append(n.nodes, node)
	return node
}

// Node returns endpoint id.
func (n *Net) Node(id int) *Node { return n.nodes[id] }

// NumNodes returns the number of registered endpoints.
func (n *Net) NumNodes() int { return len(n.nodes) }

// Stats returns a copy of the traffic counters, including the per-machine
// NIC busy times as of now.
func (n *Net) Stats() Stats {
	s := n.stats
	s.BytesByKind = make(map[int]int64, len(n.stats.BytesByKind))
	for k, v := range n.stats.BytesByKind {
		s.BytesByKind[k] = v
	}
	s.IngressBusySec = make([]float64, n.cfg.Machines)
	s.EgressBusySec = make([]float64, n.cfg.Machines)
	for m := 0; m < n.cfg.Machines; m++ {
		s.IngressBusySec[m] = n.ingress[m].busySec
		s.EgressBusySec[m] = n.egress[m].busySec
	}
	return s
}

// ResetStats zeroes the traffic counters (e.g. after a warm-up phase).
func (n *Net) ResetStats() {
	n.stats = Stats{BytesByKind: map[int]int64{}}
}

// Send transmits msg (msg.From/To must be node IDs) and schedules delivery
// into the destination inbox. It never blocks the caller; the cost is paid
// in virtual time on the links. Returns the wire time (serialization +
// latency) the message will experience, excluding queueing it causes later
// messages.
func (n *Net) Send(msg Msg) des.Time {
	src := n.nodes[msg.From]
	dst := n.nodes[msg.To]
	now := n.eng.Now()
	msg.SentAt = now

	if n.faults != nil && src.Machine != dst.Machine && n.faults.Cut(now, src.Machine, dst.Machine) {
		n.stats.DroppedMsgs++
		n.stats.DroppedBytes += msg.Bytes
		if n.tracer != nil {
			n.tracer.Span(fmt.Sprintf("drop k%d %s", msg.Kind, byteLabel(msg.Bytes)),
				"fault", now, now, dst.Machine, 1000+msg.To)
		}
		return 0
	}

	n.stats.TotalBytes += msg.Bytes
	n.stats.TotalMsgs++
	n.stats.BytesByKind[msg.Kind] += msg.Bytes

	var arrive des.Time
	if src.Machine == dst.Machine {
		dur := des.Time(float64(msg.Bytes) / n.cfg.IntraBytesPerSec)
		arrive = n.bus[src.Machine].reserve(now, dur) + n.cfg.LatencySec
	} else {
		// Cut-through: the transfer occupies sender egress and receiver
		// ingress concurrently; completion is gated by whichever link is
		// more backed up. A single uncontended hop therefore serializes the
		// bytes once, while many senders targeting one machine (the PS
		// bottleneck) queue on its ingress.
		n.stats.CrossMachineBytes += msg.Bytes
		dur := des.Time(float64(msg.Bytes) / n.cfg.InterBytesPerSec)
		if n.faults != nil {
			if m := n.faults.Slow(now, src.Machine, dst.Machine); m != 1 {
				dur *= m
			}
		}
		outDone := n.egress[src.Machine].reserve(now, dur)
		inDone := n.ingress[dst.Machine].reserve(now, dur)
		arrive = outDone
		if inDone > arrive {
			arrive = inDone
		}
		arrive += n.cfg.LatencySec
	}
	msg.WireSec = arrive - now
	if n.tracer != nil {
		n.tracer.Span(fmt.Sprintf("msg k%d %s", msg.Kind, byteLabel(msg.Bytes)),
			"net", now, arrive, dst.Machine, 1000+msg.To)
	}
	n.eng.Schedule(arrive, func() { dst.Inbox.Push(msg) })
	return msg.WireSec
}

func byteLabel(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Config returns the cluster configuration the network was built with.
func (n *Net) Config() cluster.Config { return n.cfg }
