package simnet

import (
	"math"
	"testing"

	"disttrain/internal/cluster"
	"disttrain/internal/des"
)

// testNet builds a 2-machine, 2-workers-per-machine network with simple
// round numbers: 1e6 B/s inter, 1e8 B/s intra, 1 ms latency.
func testNet() (*des.Engine, *Net) {
	eng := des.NewEngine()
	cfg := cluster.Config{
		Machines:          2,
		WorkersPerMachine: 2,
		InterBytesPerSec:  1e6,
		IntraBytesPerSec:  1e8,
		LatencySec:        0.001,
	}
	n := New(eng, cfg)
	for m := 0; m < 2; m++ {
		for w := 0; w < 2; w++ {
			n.AddNode(m)
		}
	}
	return eng, n
}

func TestCrossMachineDeliveryTime(t *testing.T) {
	eng, n := testNet()
	// node 0 on machine 0, node 2 on machine 1
	var arriveAt des.Time
	var wire des.Time
	eng.Spawn("recv", func(p *des.Proc) {
		m := n.Node(2).Inbox.Recv(p)
		arriveAt = p.Now()
		wire = m.WireSec
	})
	n.Send(Msg{From: 0, To: 2, Bytes: 1e6}) // cut-through: 1s wire + 1ms
	eng.Run(0)
	want := 1.001
	if math.Abs(arriveAt-want) > 1e-9 {
		t.Fatalf("arrive at %v, want %v", arriveAt, want)
	}
	if math.Abs(wire-want) > 1e-9 {
		t.Fatalf("wire %v, want %v", wire, want)
	}
}

func TestIntraMachineFastPath(t *testing.T) {
	eng, n := testNet()
	var arriveAt des.Time
	eng.Spawn("recv", func(p *des.Proc) {
		n.Node(1).Inbox.Recv(p)
		arriveAt = p.Now()
	})
	n.Send(Msg{From: 0, To: 1, Bytes: 1e6}) // 10ms bus + 1ms latency
	eng.Run(0)
	if math.Abs(arriveAt-0.011) > 1e-9 {
		t.Fatalf("arrive at %v, want 0.011", arriveAt)
	}
}

func TestIngressContentionSerializes(t *testing.T) {
	// Two senders on different source machines -> same destination machine:
	// egress links are independent, but the shared ingress link serializes,
	// so the second message arrives ~1s after the first. This is the PS
	// bottleneck mechanism.
	eng := des.NewEngine()
	cfg := cluster.Config{
		Machines:          3,
		WorkersPerMachine: 1,
		InterBytesPerSec:  1e6,
		IntraBytesPerSec:  1e9,
		LatencySec:        0,
	}
	n := New(eng, cfg)
	n.AddNode(0) // sender A
	n.AddNode(1) // sender B
	n.AddNode(2) // receiver (PS)
	var arrivals []des.Time
	eng.Spawn("ps", func(p *des.Proc) {
		for i := 0; i < 2; i++ {
			n.Node(2).Inbox.Recv(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	n.Send(Msg{From: 0, To: 2, Bytes: 1e6})
	n.Send(Msg{From: 1, To: 2, Bytes: 1e6})
	eng.Run(0)
	if len(arrivals) != 2 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	if math.Abs(arrivals[0]-1.0) > 1e-9 || math.Abs(arrivals[1]-2.0) > 1e-9 {
		t.Fatalf("arrivals = %v, want [1 2]", arrivals)
	}
}

func TestEgressQueueing(t *testing.T) {
	// Two messages from one node serialize on its machine's egress.
	eng, n := testNet()
	var arrivals []des.Time
	eng.Spawn("r", func(p *des.Proc) {
		for i := 0; i < 2; i++ {
			n.Node(2).Inbox.Recv(p)
			arrivals = append(arrivals, p.Now())
		}
	})
	n.Send(Msg{From: 0, To: 2, Bytes: 1e6})
	n.Send(Msg{From: 0, To: 2, Bytes: 1e6})
	eng.Run(0)
	// First: both links 0->1, arrive 1.001. Second queues behind it on both
	// links 1->2, arrive 2.001.
	if math.Abs(arrivals[0]-1.001) > 1e-9 || math.Abs(arrivals[1]-2.001) > 1e-9 {
		t.Fatalf("arrivals = %v", arrivals)
	}
}

func TestFasterNetworkIsFaster(t *testing.T) {
	run := func(bw float64) des.Time {
		eng := des.NewEngine()
		cfg := cluster.Config{Machines: 2, WorkersPerMachine: 1,
			InterBytesPerSec: bw, IntraBytesPerSec: 1e12, LatencySec: 1e-6}
		n := New(eng, cfg)
		n.AddNode(0)
		n.AddNode(1)
		var at des.Time
		eng.Spawn("r", func(p *des.Proc) {
			n.Node(1).Inbox.Recv(p)
			at = p.Now()
		})
		n.Send(Msg{From: 0, To: 1, Bytes: 92e6}) // ResNet-50-sized gradient
		eng.Run(0)
		return at
	}
	t10 := run(cluster.Gbps(10))
	t56 := run(cluster.Gbps(56))
	if t56 >= t10 {
		t.Fatalf("56G (%v) not faster than 10G (%v)", t56, t10)
	}
	ratio := t10 / t56
	if ratio < 5 || ratio > 6 {
		t.Fatalf("speedup ratio %v, want ~5.6", ratio)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, n := testNet()
	n.Send(Msg{From: 0, To: 1, Kind: 1, Bytes: 100}) // intra
	n.Send(Msg{From: 0, To: 2, Kind: 2, Bytes: 200}) // cross
	n.Send(Msg{From: 3, To: 0, Kind: 2, Bytes: 300}) // cross
	eng.Run(0)
	s := n.Stats()
	if s.TotalBytes != 600 || s.TotalMsgs != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.CrossMachineBytes != 500 {
		t.Fatalf("cross bytes = %d", s.CrossMachineBytes)
	}
	if s.BytesByKind[1] != 100 || s.BytesByKind[2] != 500 {
		t.Fatalf("by kind = %v", s.BytesByKind)
	}
	n.ResetStats()
	if n.Stats().TotalBytes != 0 {
		t.Fatal("reset failed")
	}
}

func TestStatsCopyIsolated(t *testing.T) {
	eng, n := testNet()
	n.Send(Msg{From: 0, To: 1, Kind: 1, Bytes: 10})
	eng.Run(0)
	s := n.Stats()
	s.BytesByKind[1] = 999
	if n.Stats().BytesByKind[1] != 10 {
		t.Fatal("Stats returned aliased map")
	}
}

func TestZeroByteMessage(t *testing.T) {
	// Control messages (acks, pull requests) should cost only latency.
	eng, n := testNet()
	var at des.Time
	eng.Spawn("r", func(p *des.Proc) {
		n.Node(2).Inbox.Recv(p)
		at = p.Now()
	})
	n.Send(Msg{From: 0, To: 2, Bytes: 0})
	eng.Run(0)
	if math.Abs(at-0.001) > 1e-9 {
		t.Fatalf("zero-byte arrival %v, want latency only", at)
	}
}

func TestPayloadCarried(t *testing.T) {
	eng, n := testNet()
	var got []float32
	eng.Spawn("r", func(p *des.Proc) {
		m := n.Node(1).Inbox.Recv(p)
		got = m.Vec
	})
	n.Send(Msg{From: 0, To: 1, Bytes: 12, Vec: []float32{1, 2, 3}})
	eng.Run(0)
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("payload = %v", got)
	}
}

func TestAddNodeValidatesMachine(t *testing.T) {
	_, n := testNet()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.AddNode(7)
}

func TestLinkBusyAccounting(t *testing.T) {
	eng, n := testNet()
	n.Send(Msg{From: 0, To: 2, Bytes: 1e6}) // 1s on egress m0 and ingress m1
	eng.Run(0)
	s := n.Stats()
	if math.Abs(s.EgressBusySec[0]-1) > 1e-9 {
		t.Fatalf("egress[0] busy = %v", s.EgressBusySec[0])
	}
	if math.Abs(s.IngressBusySec[1]-1) > 1e-9 {
		t.Fatalf("ingress[1] busy = %v", s.IngressBusySec[1])
	}
	if s.EgressBusySec[1] != 0 || s.IngressBusySec[0] != 0 {
		t.Fatal("idle directions accumulated busy time")
	}
}

func TestUtilizationSpread(t *testing.T) {
	even := Stats{IngressBusySec: []float64{1, 1}, EgressBusySec: []float64{1, 1}}
	if got := even.UtilizationSpread(); got != 0 {
		t.Fatalf("even spread = %v", got)
	}
	skew := Stats{IngressBusySec: []float64{4, 0}, EgressBusySec: []float64{4, 0}}
	if got := skew.UtilizationSpread(); got != 1 {
		t.Fatalf("skewed spread = %v", got)
	}
	var empty Stats
	if empty.UtilizationSpread() != 0 {
		t.Fatal("empty stats spread")
	}
}
