// Package comm implements the collective operations the decentralized
// algorithms and local aggregation are built on, as blocking calls made
// from simulated processes: ring AllReduce (reduce-scatter + all-gather,
// the MPI/MPICH algorithm the paper uses for AR-SGD), a binomial-tree
// AllReduce, and intra-machine gather/broadcast for BSP's local
// aggregation.
//
// Every collective works in two modes: with real payload vectors (accuracy
// experiments) and with nil payloads where only message sizes drive the
// simulation (cost-only scalability experiments).
//
// The entry point is Collective with a CollectiveOpts; the positional
// helpers (RingAllReduce, TreeAllReduce, LocalGather, LocalBroadcast) are
// deprecated wrappers kept for existing call sites.
package comm

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/simnet"
	"disttrain/internal/tensor"
)

// Op selects the collective operation.
type Op int

// The supported collectives.
const (
	// OpRingAllReduce is an in-place sum-AllReduce: reduce-scatter followed
	// by all-gather around a ring.
	OpRingAllReduce Op = iota
	// OpTreeAllReduce is a binomial reduce-to-root plus broadcast.
	OpTreeAllReduce
	// OpGather sums every member's vector into the group leader's
	// (Nodes[0]); members return immediately after sending.
	OpGather
	// OpBroadcast ships the leader's vector to every member; members block
	// for it.
	OpBroadcast
)

// CollectiveOpts parameterizes one collective call. Every participant must
// invoke Collective with the same Op, Nodes, Kind and Clock; Self is the
// caller's index into Nodes.
type CollectiveOpts struct {
	Op  Op
	Net *simnet.Net
	// Nodes lists the participants' node IDs; Self indexes the caller.
	Nodes []int
	Self  int
	// Vec is the payload (mutated in place by the reducing ops); nil in
	// cost-only mode, where VirtualLen supplies the element count used for
	// chunk sizing.
	Vec        []float32
	VirtualLen int
	// Bytes is the wire size of the full vector.
	Bytes int64
	// Kind tags the messages on the simulated network.
	Kind int
	// Clock tags the round. With a Stash attached, receives are filtered on
	// (Kind, Clock) and messages from other rounds are buffered — required
	// when the participant set changes between rounds (fault injection) and
	// a fast peer's next-round traffic can overtake the current round.
	// Without a Stash, any mismatched message panics (the strict discipline
	// of fixed-membership collectives).
	Clock int
	Stash *[]simnet.Msg
}

// Collective runs the configured operation, blocking the calling process
// until its role completes. It returns the caller's resulting vector (the
// received vector for OpBroadcast members, Vec otherwise) and the wire
// seconds accumulated by this participant's receives — the "network" share
// of the collective for time-breakdown metrics.
func Collective(p *des.Proc, o CollectiveOpts) ([]float32, des.Time) {
	switch o.Op {
	case OpRingAllReduce:
		return o.Vec, ringAllReduce(p, &o)
	case OpTreeAllReduce:
		return o.Vec, treeAllReduce(p, &o)
	case OpGather:
		return o.Vec, localGather(p, &o)
	case OpBroadcast:
		return localBroadcast(p, &o)
	default:
		panic(fmt.Sprintf("comm: unknown op %d", o.Op))
	}
}

// recvMatch returns the next message matching (Kind, Clock, and Seg when
// useSeg). With a stash attached, non-matching messages are buffered for
// later calls; without one, a mismatch panics.
func recvMatch(p *des.Proc, o *CollectiveOpts, wantSeg int, useSeg bool) simnet.Msg {
	inbox := o.Net.Node(o.Nodes[o.Self]).Inbox
	match := func(m simnet.Msg) bool {
		return m.Kind == o.Kind && m.Clock == o.Clock && (!useSeg || m.Seg == wantSeg)
	}
	if o.Stash != nil {
		for i, m := range *o.Stash {
			if match(m) {
				*o.Stash = append((*o.Stash)[:i], (*o.Stash)[i+1:]...)
				return m
			}
		}
	}
	for {
		m := inbox.Recv(p)
		if match(m) {
			return m
		}
		if o.Stash == nil {
			panic(fmt.Sprintf("comm: got kind %d clock %d seg %d, want kind %d clock %d seg %d",
				m.Kind, m.Clock, m.Seg, o.Kind, o.Clock, wantSeg))
		}
		*o.Stash = append(*o.Stash, m)
	}
}

func ringAllReduce(p *des.Proc, o *CollectiveOpts) des.Time {
	n := len(o.Nodes)
	if n == 1 {
		return 0
	}
	virtualLen := o.VirtualLen
	vec := o.Vec
	if vec != nil {
		virtualLen = len(vec)
	}
	if virtualLen <= 0 {
		panic("comm: ring allreduce needs a positive length")
	}
	chunkLo := func(c int) int { return virtualLen * c / n }
	chunkHi := func(c int) int { return virtualLen * (c + 1) / n }
	chunkBytes := func(c int) int64 {
		return o.Bytes * int64(chunkHi(c)-chunkLo(c)) / int64(virtualLen)
	}
	right := o.Nodes[(o.Self+1)%n]
	var wire des.Time

	sendChunk := func(c int, add bool) {
		var payload []float32
		if vec != nil {
			payload = append([]float32(nil), vec[chunkLo(c):chunkHi(c)]...)
		}
		o.Net.Send(simnet.Msg{From: o.Nodes[o.Self], To: right, Kind: o.Kind, Clock: o.Clock,
			Seg: c, Bytes: chunkBytes(c), Vec: payload, Aux: b2f(add)})
	}

	// Reduce-scatter: after n-1 steps, participant i holds the full sum of
	// chunk (i+1) mod n.
	for s := 0; s < n-1; s++ {
		sendChunk(((o.Self-s)%n+n)%n, true)
		c := ((o.Self-s-1)%n + n) % n
		m := recvMatch(p, o, c, true)
		wire += m.WireSec
		if vec != nil {
			tensor.AxpyF32(1, m.Vec, vec[chunkLo(c):chunkHi(c)])
		}
	}
	// All-gather: circulate the reduced chunks.
	for s := 0; s < n-1; s++ {
		sendChunk(((o.Self+1-s)%n+n)%n, false)
		c := ((o.Self-s)%n + n) % n
		m := recvMatch(p, o, c, true)
		wire += m.WireSec
		if vec != nil {
			copy(vec[chunkLo(c):chunkHi(c)], m.Vec)
		}
	}
	return wire
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func treeAllReduce(p *des.Proc, o *CollectiveOpts) des.Time {
	n := len(o.Nodes)
	if n == 1 {
		return 0
	}
	vec := o.Vec
	if vec == nil && o.VirtualLen <= 0 {
		panic("comm: tree allreduce needs a positive length")
	}
	self := o.Self
	var wire des.Time

	send := func(to int) {
		var payload []float32
		if vec != nil {
			payload = append([]float32(nil), vec...)
		}
		o.Net.Send(simnet.Msg{From: o.Nodes[self], To: o.Nodes[to], Kind: o.Kind, Clock: o.Clock,
			Bytes: o.Bytes, Vec: payload})
	}
	recv := func(add bool) {
		m := recvMatch(p, o, 0, false)
		wire += m.WireSec
		if vec != nil && m.Vec != nil {
			if add {
				tensor.AxpyF32(1, m.Vec, vec)
			} else {
				copy(vec, m.Vec)
			}
		}
	}

	// Reduce: in round k (distance d = 2^k), ranks with self%2d == d send to
	// self-d and drop out; ranks with self%2d == 0 receive (if a partner
	// exists).
	for d := 1; d < n; d *= 2 {
		if self%(2*d) == d {
			send(self - d)
			break
		}
		if self%(2*d) == 0 && self+d < n {
			recv(true)
		}
	}
	// Broadcast back down the same tree, mirrored: largest distance first.
	top := 1
	for top < n {
		top *= 2
	}
	for d := top / 2; d >= 1; d /= 2 {
		switch {
		case self%(2*d) == 0 && self+d < n:
			send(self + d)
		case self%(2*d) == d:
			recv(false)
		}
	}
	return wire
}

func localGather(p *des.Proc, o *CollectiveOpts) des.Time {
	if len(o.Nodes) == 1 {
		return 0
	}
	const leader = 0
	if o.Self != leader {
		var payload []float32
		if o.Vec != nil {
			payload = append([]float32(nil), o.Vec...)
		}
		o.Net.Send(simnet.Msg{From: o.Nodes[o.Self], To: o.Nodes[leader], Kind: o.Kind, Clock: o.Clock,
			Bytes: o.Bytes, Vec: payload})
		return 0
	}
	var wire des.Time
	for i := 0; i < len(o.Nodes)-1; i++ {
		m := recvMatch(p, o, 0, false)
		wire += m.WireSec
		if o.Vec != nil && m.Vec != nil {
			tensor.AxpyF32(1, m.Vec, o.Vec)
		}
	}
	return wire
}

func localBroadcast(p *des.Proc, o *CollectiveOpts) ([]float32, des.Time) {
	if len(o.Nodes) == 1 {
		return o.Vec, 0
	}
	const leader = 0
	if o.Self == leader {
		for i := 1; i < len(o.Nodes); i++ {
			var payload []float32
			if o.Vec != nil {
				payload = append([]float32(nil), o.Vec...)
			}
			o.Net.Send(simnet.Msg{From: o.Nodes[leader], To: o.Nodes[i], Kind: o.Kind, Clock: o.Clock,
				Bytes: o.Bytes, Vec: payload})
		}
		return o.Vec, 0
	}
	m := recvMatch(p, o, 0, false)
	return m.Vec, m.WireSec
}

// RingAllReduce performs an in-place sum-AllReduce of vec across the
// participants' nodes. Every participant must call it with the same ids and
// kind; self is the caller's index into ids. vec may be nil in cost-only
// mode, in which case virtualLen supplies the element count used for chunk
// sizing. totalBytes is the wire size of the full vector.
//
// Returns the wire seconds accumulated by this participant's receives.
//
// Deprecated: use Collective with OpRingAllReduce.
func RingAllReduce(p *des.Proc, net *simnet.Net, ids []int, self int, vec []float32, virtualLen int, totalBytes int64, kind int) des.Time {
	_, wire := Collective(p, CollectiveOpts{Op: OpRingAllReduce, Net: net, Nodes: ids, Self: self,
		Vec: vec, VirtualLen: virtualLen, Bytes: totalBytes, Kind: kind})
	return wire
}

// TreeAllReduce performs a sum-AllReduce as a binomial reduce-to-root
// followed by a binomial broadcast — the algorithm MPI implementations
// prefer for small messages, where ring AllReduce's 2(N−1) latency hops
// dominate. Each participant moves O(M·log N) bytes instead of the ring's
// O(M) per link, so for large vectors the ring wins; see
// BenchmarkAblationAllReduce for the crossover.
//
// Deprecated: use Collective with OpTreeAllReduce.
func TreeAllReduce(p *des.Proc, net *simnet.Net, ids []int, self int, vec []float32, virtualLen int, totalBytes int64, kind int) des.Time {
	_, wire := Collective(p, CollectiveOpts{Op: OpTreeAllReduce, Net: net, Nodes: ids, Self: self,
		Vec: vec, VirtualLen: virtualLen, Bytes: totalBytes, Kind: kind})
	return wire
}

// LocalGather implements the member side and leader side of intra-machine
// gradient aggregation (the paper's "local aggregation"): every member
// sends its vector to the group leader, which sums them into its own vec.
//
// Deprecated: use Collective with OpGather.
func LocalGather(p *des.Proc, net *simnet.Net, group []int, self int, vec []float32, totalBytes int64, kind int) des.Time {
	_, wire := Collective(p, CollectiveOpts{Op: OpGather, Net: net, Nodes: group, Self: self,
		Vec: vec, Bytes: totalBytes, Kind: kind})
	return wire
}

// LocalBroadcast sends vec from the group leader to every member (leader
// side), or receives it (member side), returning the received vector and
// wire time.
//
// Deprecated: use Collective with OpBroadcast.
func LocalBroadcast(p *des.Proc, net *simnet.Net, group []int, self int, vec []float32, totalBytes int64, kind int) ([]float32, des.Time) {
	return Collective(p, CollectiveOpts{Op: OpBroadcast, Net: net, Nodes: group, Self: self,
		Vec: vec, Bytes: totalBytes, Kind: kind})
}
