// Package comm implements the collective operations the decentralized
// algorithms and local aggregation are built on, as blocking calls made
// from simulated processes: ring AllReduce (reduce-scatter + all-gather,
// the MPI/MPICH algorithm the paper uses for AR-SGD), a binomial-tree
// AllReduce, and intra-machine gather/broadcast for BSP's local
// aggregation.
//
// Every collective works in two modes: with real payload vectors (accuracy
// experiments) and with nil payloads where only message sizes drive the
// simulation (cost-only scalability experiments).
//
// The single entry point is Collective with a CollectiveOpts. Malformed
// opts and protocol violations (an unexpected message in a strict,
// stash-less collective) surface as errors from Collective, not as panics
// deep inside the ring.
package comm

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/simnet"
	"disttrain/internal/tensor"
)

// Op selects the collective operation.
type Op int

// The supported collectives.
const (
	// OpRingAllReduce is an in-place sum-AllReduce: reduce-scatter followed
	// by all-gather around a ring.
	OpRingAllReduce Op = iota
	// OpTreeAllReduce is a binomial reduce-to-root plus broadcast.
	OpTreeAllReduce
	// OpGather sums every member's vector into the group leader's
	// (Nodes[0]); members return immediately after sending.
	OpGather
	// OpBroadcast ships the leader's vector to every member; members block
	// for it.
	OpBroadcast
	// OpHierarchicalAllReduce is the machine-aware AllReduce: intra-machine
	// gather to a per-machine leader, a ring over the leaders, then an
	// intra-machine broadcast. Requires Groups (see internal/topo).
	OpHierarchicalAllReduce
	// OpButterflyAllReduce is recursive halving/doubling over a hypercube,
	// with pre/post folding for non-power-of-two worlds.
	OpButterflyAllReduce
	// OpTorusAllReduce is the 2D ring-of-rings: a ring AllReduce along each
	// grid row, then along each column. Requires TorusRows × TorusCols ==
	// len(Nodes).
	OpTorusAllReduce
)

// isAllReduce reports whether op reduces a full vector across all
// participants (and therefore needs payload/VirtualLen sizing).
func isAllReduce(op Op) bool {
	switch op {
	case OpRingAllReduce, OpTreeAllReduce, OpHierarchicalAllReduce,
		OpButterflyAllReduce, OpTorusAllReduce:
		return true
	}
	return false
}

// CollectiveOpts parameterizes one collective call. Every participant must
// invoke Collective with the same Op, Nodes, Kind and Clock; Self is the
// caller's index into Nodes.
type CollectiveOpts struct {
	Op  Op
	Net *simnet.Net
	// Nodes lists the participants' node IDs; Self indexes the caller.
	Nodes []int
	Self  int
	// Vec is the payload (mutated in place by the reducing ops); nil in
	// cost-only mode, where VirtualLen supplies the element count used for
	// chunk sizing.
	Vec        []float32
	VirtualLen int
	// Bytes is the wire size of the full vector.
	Bytes int64
	// Kind tags the messages on the simulated network.
	Kind int
	// Clock tags the round. With a Stash attached, receives are filtered on
	// (Kind, Clock) and messages from other rounds are buffered — required
	// when the participant set changes between rounds (fault injection) and
	// a fast peer's next-round traffic can overtake the current round.
	// Without a Stash, any mismatched message panics (the strict discipline
	// of fixed-membership collectives).
	Clock int
	Stash *[]simnet.Msg
	// Groups lists each machine's participant indices (indices into Nodes,
	// not node IDs), ascending within a group; the first index of each
	// group is its leader. Required by OpHierarchicalAllReduce; build it
	// with topo.New.
	Groups [][]int
	// TorusRows × TorusCols is the grid shape for OpTorusAllReduce
	// (row-major over Nodes); the product must equal len(Nodes). Build it
	// with topo.TorusShape.
	TorusRows, TorusCols int
}

// Collective runs the configured operation, blocking the calling process
// until its role completes. It returns the caller's resulting vector (the
// received vector for OpBroadcast members, Vec otherwise) and the wire
// seconds accumulated by this participant's receives — the "network" share
// of the collective for time-breakdown metrics.
//
// Malformed opts are rejected up front; a protocol violation mid-collective
// (a message that matches neither the expected round nor a stash) aborts
// with an error. On error the payload vector may be partially reduced.
func Collective(p *des.Proc, o CollectiveOpts) ([]float32, des.Time, error) {
	if err := o.validate(); err != nil {
		return o.Vec, 0, err
	}
	switch o.Op {
	case OpRingAllReduce:
		wire, err := ringAllReduce(p, &o)
		return o.Vec, wire, err
	case OpTreeAllReduce:
		wire, err := treeAllReduce(p, &o)
		return o.Vec, wire, err
	case OpGather:
		wire, err := localGather(p, &o)
		return o.Vec, wire, err
	case OpBroadcast:
		return localBroadcast(p, &o)
	case OpHierarchicalAllReduce:
		wire, err := hierarchicalAllReduce(p, &o)
		return o.Vec, wire, err
	case OpButterflyAllReduce:
		wire, err := butterflyAllReduce(p, &o)
		return o.Vec, wire, err
	case OpTorusAllReduce:
		wire, err := torusAllReduce(p, &o)
		return o.Vec, wire, err
	default:
		return o.Vec, 0, fmt.Errorf("comm: unknown op %d", o.Op)
	}
}

// validate rejects opts that would corrupt or deadlock the collective:
// empty or inconsistent membership, a caller outside the group, and
// payload/size mismatches. Catching these here turns a crash deep in the
// ring into an error at the call site.
func (o *CollectiveOpts) validate() error {
	if o.Net == nil {
		return fmt.Errorf("comm: %v needs a network", o.Op)
	}
	if len(o.Nodes) == 0 {
		return fmt.Errorf("comm: %v with no participants", o.Op)
	}
	if o.Self < 0 || o.Self >= len(o.Nodes) {
		return fmt.Errorf("comm: self index %d outside group of %d", o.Self, len(o.Nodes))
	}
	if o.Bytes < 0 {
		return fmt.Errorf("comm: negative wire size %d", o.Bytes)
	}
	if isAllReduce(o.Op) {
		if o.Vec == nil && o.VirtualLen <= 0 {
			return fmt.Errorf("comm: %v in cost-only mode needs a positive VirtualLen", o.Op)
		}
		if o.Vec != nil && len(o.Vec) == 0 {
			return fmt.Errorf("comm: %v with an empty payload vector", o.Op)
		}
	}
	if o.Vec != nil && o.VirtualLen != 0 && o.VirtualLen != len(o.Vec) {
		return fmt.Errorf("comm: VirtualLen %d disagrees with payload length %d", o.VirtualLen, len(o.Vec))
	}
	switch o.Op {
	case OpHierarchicalAllReduce:
		if err := o.validateGroups(); err != nil {
			return err
		}
	case OpTorusAllReduce:
		if o.TorusRows < 2 || o.TorusCols < 2 {
			return fmt.Errorf("comm: %v needs a rectangular grid of at least 2×2, got %d×%d",
				o.Op, o.TorusRows, o.TorusCols)
		}
		if o.TorusRows*o.TorusCols != len(o.Nodes) {
			return fmt.Errorf("comm: %v grid %d×%d does not cover %d ranks",
				o.Op, o.TorusRows, o.TorusCols, len(o.Nodes))
		}
	}
	return nil
}

// validateGroups checks that Groups partitions 0..len(Nodes)-1.
func (o *CollectiveOpts) validateGroups() error {
	if len(o.Groups) == 0 {
		return fmt.Errorf("comm: %v needs a cluster layout (Groups); derive one with topo.New", o.Op)
	}
	seen := make([]bool, len(o.Nodes))
	total := 0
	for g, members := range o.Groups {
		if len(members) == 0 {
			return fmt.Errorf("comm: %v group %d is empty", o.Op, g)
		}
		for _, r := range members {
			if r < 0 || r >= len(o.Nodes) {
				return fmt.Errorf("comm: %v group %d member %d outside world of %d", o.Op, g, r, len(o.Nodes))
			}
			if seen[r] {
				return fmt.Errorf("comm: %v rank %d appears in two groups", o.Op, r)
			}
			seen[r] = true
			total++
		}
	}
	if total != len(o.Nodes) {
		return fmt.Errorf("comm: %v groups cover %d of %d ranks", o.Op, total, len(o.Nodes))
	}
	return nil
}

// String names the op for error messages.
func (op Op) String() string {
	switch op {
	case OpRingAllReduce:
		return "ring allreduce"
	case OpTreeAllReduce:
		return "tree allreduce"
	case OpGather:
		return "gather"
	case OpBroadcast:
		return "broadcast"
	case OpHierarchicalAllReduce:
		return "hierarchical allreduce"
	case OpButterflyAllReduce:
		return "butterfly allreduce"
	case OpTorusAllReduce:
		return "torus allreduce"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// recvMatch returns the next message matching (Kind, Clock, and Seg when
// useSeg). With a stash attached, non-matching messages are buffered for
// later calls; without one, a mismatch is a protocol violation and errors.
func recvMatch(p *des.Proc, o *CollectiveOpts, wantSeg int, useSeg bool) (simnet.Msg, error) {
	inbox := o.Net.Node(o.Nodes[o.Self]).Inbox
	match := func(m simnet.Msg) bool {
		return m.Kind == o.Kind && m.Clock == o.Clock && (!useSeg || m.Seg == wantSeg)
	}
	if o.Stash != nil {
		for i, m := range *o.Stash {
			if match(m) {
				*o.Stash = append((*o.Stash)[:i], (*o.Stash)[i+1:]...)
				return m, nil
			}
		}
	}
	for {
		m := inbox.Recv(p)
		if match(m) {
			return m, nil
		}
		if o.Stash == nil {
			return simnet.Msg{}, fmt.Errorf("comm: %v got kind %d clock %d seg %d, want kind %d clock %d seg %d",
				o.Op, m.Kind, m.Clock, m.Seg, o.Kind, o.Clock, wantSeg)
		}
		*o.Stash = append(*o.Stash, m)
	}
}

func ringAllReduce(p *des.Proc, o *CollectiveOpts) (des.Time, error) {
	n := len(o.Nodes)
	if n == 1 {
		return 0, nil
	}
	virtualLen := o.VirtualLen
	vec := o.Vec
	if vec != nil {
		virtualLen = len(vec)
	}
	chunkLo := func(c int) int { return virtualLen * c / n }
	chunkHi := func(c int) int { return virtualLen * (c + 1) / n }
	chunkBytes := func(c int) int64 {
		return o.Bytes * int64(chunkHi(c)-chunkLo(c)) / int64(virtualLen)
	}
	right := o.Nodes[(o.Self+1)%n]
	var wire des.Time

	sendChunk := func(c int, add bool) {
		var payload []float32
		if vec != nil {
			payload = append([]float32(nil), vec[chunkLo(c):chunkHi(c)]...)
		}
		o.Net.Send(simnet.Msg{From: o.Nodes[o.Self], To: right, Kind: o.Kind, Clock: o.Clock,
			Seg: c, Bytes: chunkBytes(c), Vec: payload, Aux: b2f(add)})
	}

	// Reduce-scatter: after n-1 steps, participant i holds the full sum of
	// chunk (i+1) mod n.
	for s := 0; s < n-1; s++ {
		sendChunk(((o.Self-s)%n+n)%n, true)
		c := ((o.Self-s-1)%n + n) % n
		m, err := recvMatch(p, o, c, true)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
		if vec != nil {
			tensor.AxpyF32(1, m.Vec, vec[chunkLo(c):chunkHi(c)])
		}
	}
	// All-gather: circulate the reduced chunks.
	for s := 0; s < n-1; s++ {
		sendChunk(((o.Self+1-s)%n+n)%n, false)
		c := ((o.Self-s)%n + n) % n
		m, err := recvMatch(p, o, c, true)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
		if vec != nil {
			copy(vec[chunkLo(c):chunkHi(c)], m.Vec)
		}
	}
	return wire, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func treeAllReduce(p *des.Proc, o *CollectiveOpts) (des.Time, error) {
	n := len(o.Nodes)
	if n == 1 {
		return 0, nil
	}
	vec := o.Vec
	self := o.Self
	var wire des.Time

	send := func(to int) {
		var payload []float32
		if vec != nil {
			payload = append([]float32(nil), vec...)
		}
		o.Net.Send(simnet.Msg{From: o.Nodes[self], To: o.Nodes[to], Kind: o.Kind, Clock: o.Clock,
			Bytes: o.Bytes, Vec: payload})
	}
	recv := func(add bool) error {
		m, err := recvMatch(p, o, 0, false)
		if err != nil {
			return err
		}
		wire += m.WireSec
		if vec != nil && m.Vec != nil {
			if add {
				tensor.AxpyF32(1, m.Vec, vec)
			} else {
				copy(vec, m.Vec)
			}
		}
		return nil
	}

	// Reduce: in round k (distance d = 2^k), ranks with self%2d == d send to
	// self-d and drop out; ranks with self%2d == 0 receive (if a partner
	// exists).
	for d := 1; d < n; d *= 2 {
		if self%(2*d) == d {
			send(self - d)
			break
		}
		if self%(2*d) == 0 && self+d < n {
			if err := recv(true); err != nil {
				return wire, err
			}
		}
	}
	// Broadcast back down the same tree, mirrored: largest distance first.
	top := 1
	for top < n {
		top *= 2
	}
	for d := top / 2; d >= 1; d /= 2 {
		switch {
		case self%(2*d) == 0 && self+d < n:
			send(self + d)
		case self%(2*d) == d:
			if err := recv(false); err != nil {
				return wire, err
			}
		}
	}
	return wire, nil
}

func localGather(p *des.Proc, o *CollectiveOpts) (des.Time, error) {
	if len(o.Nodes) == 1 {
		return 0, nil
	}
	const leader = 0
	if o.Self != leader {
		var payload []float32
		if o.Vec != nil {
			payload = append([]float32(nil), o.Vec...)
		}
		o.Net.Send(simnet.Msg{From: o.Nodes[o.Self], To: o.Nodes[leader], Kind: o.Kind, Clock: o.Clock,
			Bytes: o.Bytes, Vec: payload})
		return 0, nil
	}
	var wire des.Time
	for i := 0; i < len(o.Nodes)-1; i++ {
		m, err := recvMatch(p, o, 0, false)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
		if o.Vec != nil && m.Vec != nil {
			tensor.AxpyF32(1, m.Vec, o.Vec)
		}
	}
	return wire, nil
}

func localBroadcast(p *des.Proc, o *CollectiveOpts) ([]float32, des.Time, error) {
	if len(o.Nodes) == 1 {
		return o.Vec, 0, nil
	}
	const leader = 0
	if o.Self == leader {
		for i := 1; i < len(o.Nodes); i++ {
			var payload []float32
			if o.Vec != nil {
				payload = append([]float32(nil), o.Vec...)
			}
			o.Net.Send(simnet.Msg{From: o.Nodes[leader], To: o.Nodes[i], Kind: o.Kind, Clock: o.Clock,
				Bytes: o.Bytes, Vec: payload})
		}
		return o.Vec, 0, nil
	}
	m, err := recvMatch(p, o, 0, false)
	if err != nil {
		return nil, 0, err
	}
	return m.Vec, m.WireSec, nil
}
