// Package comm implements the collective operations the decentralized
// algorithms and local aggregation are built on, as blocking calls made
// from simulated processes: ring AllReduce (reduce-scatter + all-gather,
// the MPI/MPICH algorithm the paper uses for AR-SGD) and intra-machine
// gather/broadcast for BSP's local aggregation.
//
// Every collective works in two modes: with real payload vectors (accuracy
// experiments) and with nil payloads where only message sizes drive the
// simulation (cost-only scalability experiments).
package comm

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/simnet"
	"disttrain/internal/tensor"
)

// RingAllReduce performs an in-place sum-AllReduce of vec across the
// participants' nodes. Every participant must call it with the same ids and
// kind; self is the caller's index into ids. vec may be nil in cost-only
// mode, in which case virtualLen supplies the element count used for chunk
// sizing. totalBytes is the wire size of the full vector.
//
// Returns the wire seconds accumulated by this participant's receives —
// the "network" share of the collective for time-breakdown metrics.
func RingAllReduce(p *des.Proc, net *simnet.Net, ids []int, self int, vec []float32, virtualLen int, totalBytes int64, kind int) des.Time {
	n := len(ids)
	if n == 1 {
		return 0
	}
	if vec != nil {
		virtualLen = len(vec)
	}
	if virtualLen <= 0 {
		panic("comm: RingAllReduce needs a positive length")
	}
	chunkLo := func(c int) int { return virtualLen * c / n }
	chunkHi := func(c int) int { return virtualLen * (c + 1) / n }
	chunkBytes := func(c int) int64 {
		return totalBytes * int64(chunkHi(c)-chunkLo(c)) / int64(virtualLen)
	}
	right := ids[(self+1)%n]
	inbox := net.Node(ids[self]).Inbox
	var wire des.Time

	sendChunk := func(c int, add bool) {
		var payload []float32
		if vec != nil {
			payload = append([]float32(nil), vec[chunkLo(c):chunkHi(c)]...)
		}
		net.Send(simnet.Msg{From: ids[self], To: right, Kind: kind, Seg: c, Bytes: chunkBytes(c), Vec: payload, Aux: b2f(add)})
	}
	recvChunk := func(wantChunk int) simnet.Msg {
		m := inbox.Recv(p)
		if m.Kind != kind || m.Seg != wantChunk {
			panic(fmt.Sprintf("comm: allreduce got kind %d seg %d, want %d/%d", m.Kind, m.Seg, kind, wantChunk))
		}
		wire += m.WireSec
		return m
	}

	// Reduce-scatter: after n-1 steps, participant i holds the full sum of
	// chunk (i+1) mod n.
	for s := 0; s < n-1; s++ {
		sendChunk(((self-s)%n+n)%n, true)
		c := ((self-s-1)%n + n) % n
		m := recvChunk(c)
		if vec != nil {
			tensor.AxpyF32(1, m.Vec, vec[chunkLo(c):chunkHi(c)])
		}
	}
	// All-gather: circulate the reduced chunks.
	for s := 0; s < n-1; s++ {
		sendChunk(((self+1-s)%n+n)%n, false)
		c := ((self-s)%n + n) % n
		m := recvChunk(c)
		if vec != nil {
			copy(vec[chunkLo(c):chunkHi(c)], m.Vec)
		}
	}
	return wire
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// TreeAllReduce performs a sum-AllReduce as a binomial reduce-to-root
// followed by a binomial broadcast — the algorithm MPI implementations
// prefer for small messages, where ring AllReduce's 2(N−1) latency hops
// dominate. Each participant moves O(M·log N) bytes instead of the ring's
// O(M) per link, so for large vectors the ring wins; see
// BenchmarkAblationAllReduce for the crossover.
//
// Semantics mirror RingAllReduce: every participant calls it with the same
// ids/kind, vec may be nil in cost-only mode, and the wire seconds of this
// participant's receives are returned.
func TreeAllReduce(p *des.Proc, net *simnet.Net, ids []int, self int, vec []float32, virtualLen int, totalBytes int64, kind int) des.Time {
	n := len(ids)
	if n == 1 {
		return 0
	}
	if vec != nil {
		virtualLen = len(vec)
	}
	if virtualLen <= 0 {
		panic("comm: TreeAllReduce needs a positive length")
	}
	inbox := net.Node(ids[self]).Inbox
	var wire des.Time

	send := func(to int) {
		var payload []float32
		if vec != nil {
			payload = append([]float32(nil), vec...)
		}
		net.Send(simnet.Msg{From: ids[self], To: ids[to], Kind: kind, Bytes: totalBytes, Vec: payload})
	}
	recv := func(add bool) {
		m := inbox.Recv(p)
		if m.Kind != kind {
			panic(fmt.Sprintf("comm: tree allreduce got kind %d, want %d", m.Kind, kind))
		}
		wire += m.WireSec
		if vec != nil && m.Vec != nil {
			if add {
				tensor.AxpyF32(1, m.Vec, vec)
			} else {
				copy(vec, m.Vec)
			}
		}
	}

	// Reduce: in round k (distance d = 2^k), ranks with self%2d == d send to
	// self-d and drop out; ranks with self%2d == 0 receive (if a partner
	// exists).
	for d := 1; d < n; d *= 2 {
		if self%(2*d) == d {
			send(self - d)
			break
		}
		if self%(2*d) == 0 && self+d < n {
			recv(true)
		}
	}
	// Broadcast back down the same tree, mirrored: largest distance first.
	top := 1
	for top < n {
		top *= 2
	}
	for d := top / 2; d >= 1; d /= 2 {
		switch {
		case self%(2*d) == 0 && self+d < n:
			send(self + d)
		case self%(2*d) == d:
			recv(false)
		}
	}
	return wire
}

// LocalGather implements the member side and leader side of intra-machine
// gradient aggregation (the paper's "local aggregation"): every member
// sends its vector to the group leader, which sums them into its own vec.
// group lists the node IDs on one machine; self is the caller's index.
// Members return immediately after sending (their wait happens when the
// leader later broadcasts); the leader blocks until all members arrive.
func LocalGather(p *des.Proc, net *simnet.Net, group []int, self int, vec []float32, totalBytes int64, kind int) des.Time {
	if len(group) == 1 {
		return 0
	}
	const leader = 0
	if self != leader {
		var payload []float32
		if vec != nil {
			payload = append([]float32(nil), vec...)
		}
		net.Send(simnet.Msg{From: group[self], To: group[leader], Kind: kind, Bytes: totalBytes, Vec: payload})
		return 0
	}
	inbox := net.Node(group[leader]).Inbox
	var wire des.Time
	for i := 0; i < len(group)-1; i++ {
		m := inbox.Recv(p)
		if m.Kind != kind {
			panic(fmt.Sprintf("comm: local gather got kind %d, want %d", m.Kind, kind))
		}
		wire += m.WireSec
		if vec != nil && m.Vec != nil {
			tensor.AxpyF32(1, m.Vec, vec)
		}
	}
	return wire
}

// LocalBroadcast sends vec from the group leader to every member (leader
// side), or receives it (member side), returning the received vector and
// wire time. The leader's own vec is returned unchanged on the leader.
func LocalBroadcast(p *des.Proc, net *simnet.Net, group []int, self int, vec []float32, totalBytes int64, kind int) ([]float32, des.Time) {
	if len(group) == 1 {
		return vec, 0
	}
	const leader = 0
	if self == leader {
		for i := 1; i < len(group); i++ {
			var payload []float32
			if vec != nil {
				payload = append([]float32(nil), vec...)
			}
			net.Send(simnet.Msg{From: group[leader], To: group[i], Kind: kind, Bytes: totalBytes, Vec: payload})
		}
		return vec, 0
	}
	inbox := net.Node(group[self]).Inbox
	m := inbox.Recv(p)
	if m.Kind != kind {
		panic(fmt.Sprintf("comm: local broadcast got kind %d, want %d", m.Kind, kind))
	}
	return m.Vec, m.WireSec
}
