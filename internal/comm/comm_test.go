package comm

import (
	"math"
	"testing"

	"disttrain/internal/cluster"
	"disttrain/internal/des"
	"disttrain/internal/rng"
	"disttrain/internal/simnet"
)

const testKind = 7

// Positional helpers over Collective keep the test bodies compact; any
// collective error is a test failure.
func ring(t *testing.T, p *des.Proc, net *simnet.Net, ids []int, self int, vec []float32, virtualLen int, bytes int64) {
	t.Helper()
	if _, _, err := Collective(p, CollectiveOpts{Op: OpRingAllReduce, Net: net, Nodes: ids, Self: self,
		Vec: vec, VirtualLen: virtualLen, Bytes: bytes, Kind: testKind}); err != nil {
		t.Errorf("ring allreduce: %v", err)
	}
}

func tree(t *testing.T, p *des.Proc, net *simnet.Net, ids []int, self int, vec []float32, virtualLen int, bytes int64) {
	t.Helper()
	if _, _, err := Collective(p, CollectiveOpts{Op: OpTreeAllReduce, Net: net, Nodes: ids, Self: self,
		Vec: vec, VirtualLen: virtualLen, Bytes: bytes, Kind: testKind}); err != nil {
		t.Errorf("tree allreduce: %v", err)
	}
}

func gather(t *testing.T, p *des.Proc, net *simnet.Net, group []int, self int, vec []float32, bytes int64) {
	t.Helper()
	if _, _, err := Collective(p, CollectiveOpts{Op: OpGather, Net: net, Nodes: group, Self: self,
		Vec: vec, Bytes: bytes, Kind: testKind}); err != nil {
		t.Errorf("gather: %v", err)
	}
}

func bcast(t *testing.T, p *des.Proc, net *simnet.Net, group []int, self int, vec []float32, bytes int64) []float32 {
	t.Helper()
	out, _, err := Collective(p, CollectiveOpts{Op: OpBroadcast, Net: net, Nodes: group, Self: self,
		Vec: vec, Bytes: bytes, Kind: testKind})
	if err != nil {
		t.Errorf("broadcast: %v", err)
	}
	return out
}

func buildNet(machines, perMachine int) (*des.Engine, *simnet.Net, []int) {
	eng := des.NewEngine()
	cfg := cluster.Config{
		Machines:          machines,
		WorkersPerMachine: perMachine,
		InterBytesPerSec:  1e9,
		IntraBytesPerSec:  1e10,
		LatencySec:        1e-5,
	}
	net := simnet.New(eng, cfg)
	var ids []int
	for m := 0; m < machines; m++ {
		for w := 0; w < perMachine; w++ {
			ids = append(ids, net.AddNode(m).ID)
		}
	}
	return eng, net, ids
}

func TestRingAllReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7} {
		eng, net, ids := buildNet(n, 1)
		vecs := make([][]float32, n)
		want := make([]float32, 10)
		r := rng.New(uint64(n))
		for i := range vecs {
			vecs[i] = make([]float32, 10)
			for j := range vecs[i] {
				vecs[i][j] = float32(r.NormFloat64())
				want[j] += vecs[i][j]
			}
		}
		for i := 0; i < n; i++ {
			i := i
			eng.Spawn("w", func(p *des.Proc) {
				ring(t, p, net, ids, i, vecs[i], 0, 40)
			})
		}
		eng.Run(0)
		if stuck := eng.Stuck(); len(stuck) > 0 {
			t.Fatalf("n=%d stuck: %v", n, stuck)
		}
		for i := range vecs {
			for j := range want {
				if math.Abs(float64(vecs[i][j]-want[j])) > 1e-4 {
					t.Fatalf("n=%d worker %d coord %d: %v want %v", n, i, j, vecs[i][j], want[j])
				}
			}
		}
	}
}

func TestRingAllReduceCostOnly(t *testing.T) {
	n := 4
	eng, net, ids := buildNet(n, 1)
	for i := 0; i < n; i++ {
		i := i
		eng.Spawn("w", func(p *des.Proc) {
			ring(t, p, net, ids, i, nil, 1000, 4000)
		})
	}
	eng.Run(0)
	if stuck := eng.Stuck(); len(stuck) > 0 {
		t.Fatalf("stuck: %v", stuck)
	}
	// 2(n-1) steps, each participant sends one chunk of ~1000 bytes.
	s := net.Stats()
	wantMsgs := int64(2 * (n - 1) * n)
	if s.TotalMsgs != wantMsgs {
		t.Fatalf("msgs = %d, want %d", s.TotalMsgs, wantMsgs)
	}
	wantBytes := int64(2 * (n - 1) * 4000) // each round moves the full vector once
	if s.TotalBytes != wantBytes {
		t.Fatalf("bytes = %d, want %d", s.TotalBytes, wantBytes)
	}
}

func TestRingAllReduceUnevenLength(t *testing.T) {
	// Vector length not divisible by participant count.
	n := 3
	eng, net, ids := buildNet(n, 1)
	vecs := make([][]float32, n)
	for i := range vecs {
		vecs[i] = []float32{1, 1, 1, 1, 1, 1, 1} // len 7
	}
	for i := 0; i < n; i++ {
		i := i
		eng.Spawn("w", func(p *des.Proc) {
			ring(t, p, net, ids, i, vecs[i], 0, 28)
		})
	}
	eng.Run(0)
	for i := range vecs {
		for j, v := range vecs[i] {
			if v != 3 {
				t.Fatalf("worker %d coord %d = %v, want 3", i, j, v)
			}
		}
	}
}

func TestRingAllReduceTimeScalesWithBandwidth(t *testing.T) {
	run := func(bw float64) des.Time {
		eng := des.NewEngine()
		cfg := cluster.Config{Machines: 4, WorkersPerMachine: 1,
			InterBytesPerSec: bw, IntraBytesPerSec: 1e12, LatencySec: 1e-6}
		net := simnet.New(eng, cfg)
		var ids []int
		for m := 0; m < 4; m++ {
			ids = append(ids, net.AddNode(m).ID)
		}
		var end des.Time
		for i := 0; i < 4; i++ {
			i := i
			eng.Spawn("w", func(p *des.Proc) {
				ring(t, p, net, ids, i, nil, 1<<20, 4<<20)
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		eng.Run(0)
		return end
	}
	fast := run(cluster.Gbps(56))
	slow := run(cluster.Gbps(10))
	if fast >= slow {
		t.Fatalf("56G allreduce (%v) not faster than 10G (%v)", fast, slow)
	}
}

func TestLocalGatherSumsOnLeader(t *testing.T) {
	eng, net, ids := buildNet(1, 4)
	vecs := make([][]float32, 4)
	for i := range vecs {
		vecs[i] = []float32{float32(i + 1), 1}
	}
	for i := 0; i < 4; i++ {
		i := i
		eng.Spawn("w", func(p *des.Proc) {
			gather(t, p, net, ids, i, vecs[i], 8)
		})
	}
	eng.Run(0)
	// leader (index 0) should hold 1+2+3+4 = 10 and 4.
	if vecs[0][0] != 10 || vecs[0][1] != 4 {
		t.Fatalf("leader vec = %v", vecs[0])
	}
	// members' vectors unchanged
	if vecs[1][0] != 2 {
		t.Fatalf("member vec modified: %v", vecs[1])
	}
}

func TestLocalBroadcastDelivers(t *testing.T) {
	eng, net, ids := buildNet(1, 3)
	payload := []float32{5, 6}
	got := make([][]float32, 3)
	for i := 0; i < 3; i++ {
		i := i
		eng.Spawn("w", func(p *des.Proc) {
			v := bcast(t, p, net, ids, i, payloadIf(i == 0, payload), 8)
			got[i] = v
		})
	}
	eng.Run(0)
	for i := 0; i < 3; i++ {
		if got[i] == nil || got[i][0] != 5 || got[i][1] != 6 {
			t.Fatalf("member %d got %v", i, got[i])
		}
	}
}

func payloadIf(cond bool, v []float32) []float32 {
	if cond {
		return v
	}
	return nil
}

func TestSingleMemberGroupsAreNoOps(t *testing.T) {
	eng, net, ids := buildNet(1, 1)
	ran := false
	eng.Spawn("w", func(p *des.Proc) {
		v := []float32{1}
		gather(t, p, net, ids[:1], 0, v, 4)
		out := bcast(t, p, net, ids[:1], 0, v, 4)
		if out[0] != 1 {
			t.Error("no-op broadcast changed vector")
		}
		ran = true
	})
	eng.Run(0)
	if !ran {
		t.Fatal("proc did not run")
	}
	if net.Stats().TotalMsgs != 0 {
		t.Fatal("single-member group sent messages")
	}
}

func TestLocalAggregationReducesCrossTraffic(t *testing.T) {
	// The point of local aggregation: gather on machine leaders first, then
	// only leaders talk cross-machine. Verify intra traffic is not counted
	// as cross-machine bytes.
	eng, net, ids := buildNet(2, 2)
	for i := 0; i < 4; i++ {
		i := i
		eng.Spawn("w", func(p *des.Proc) {
			group := ids[0:2]
			self := i
			if i >= 2 {
				group = ids[2:4]
				self = i - 2
			}
			gather(t, p, net, group, self, nil, 1000)
		})
	}
	eng.Run(0)
	s := net.Stats()
	if s.CrossMachineBytes != 0 {
		t.Fatalf("local gather crossed machines: %d bytes", s.CrossMachineBytes)
	}
	if s.TotalBytes != 2000 {
		t.Fatalf("total = %d, want 2000", s.TotalBytes)
	}
}

func TestTreeAllReduceSum(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8} {
		eng, net, ids := buildNet(n, 1)
		vecs := make([][]float32, n)
		want := make([]float32, 6)
		r := rng.New(uint64(n + 100))
		for i := range vecs {
			vecs[i] = make([]float32, 6)
			for j := range vecs[i] {
				vecs[i][j] = float32(r.NormFloat64())
				want[j] += vecs[i][j]
			}
		}
		for i := 0; i < n; i++ {
			i := i
			eng.Spawn("w", func(p *des.Proc) {
				tree(t, p, net, ids, i, vecs[i], 0, 24)
			})
		}
		eng.Run(0)
		if stuck := eng.Stuck(); len(stuck) > 0 {
			t.Fatalf("n=%d stuck: %v", n, stuck)
		}
		for i := range vecs {
			for j := range want {
				if math.Abs(float64(vecs[i][j]-want[j])) > 1e-4 {
					t.Fatalf("n=%d worker %d coord %d: %v want %v", n, i, j, vecs[i][j], want[j])
				}
			}
		}
	}
}

func TestTreeAllReduceRepeatedRounds(t *testing.T) {
	// Two back-to-back tree allreduces must not cross-contaminate.
	n := 4
	eng, net, ids := buildNet(n, 1)
	vecs := make([][]float32, n)
	for i := range vecs {
		vecs[i] = []float32{1}
	}
	for i := 0; i < n; i++ {
		i := i
		eng.Spawn("w", func(p *des.Proc) {
			tree(t, p, net, ids, i, vecs[i], 0, 4)
			// all now 4; second round sums to 16
			tree(t, p, net, ids, i, vecs[i], 0, 4)
		})
	}
	eng.Run(0)
	for i := range vecs {
		if vecs[i][0] != 16 {
			t.Fatalf("worker %d = %v, want 16", i, vecs[i][0])
		}
	}
}

func TestTreeVsRingLatencyCrossover(t *testing.T) {
	// Small message: tree's O(log N) rounds beat the ring's 2(N-1) rounds.
	// Large message: the ring's O(M) per-link traffic beats the tree's
	// O(M log N) root bottleneck.
	run := func(useTree bool, bytes int64) des.Time {
		n := 8
		eng := des.NewEngine()
		cfg := cluster.Config{Machines: n, WorkersPerMachine: 1,
			InterBytesPerSec: cluster.Gbps(10), IntraBytesPerSec: 1e12, LatencySec: 100e-6}
		net := simnet.New(eng, cfg)
		var ids []int
		for m := 0; m < n; m++ {
			ids = append(ids, net.AddNode(m).ID)
		}
		var end des.Time
		for i := 0; i < n; i++ {
			i := i
			eng.Spawn("w", func(p *des.Proc) {
				if useTree {
					tree(t, p, net, ids, i, nil, int(bytes/4), bytes)
				} else {
					ring(t, p, net, ids, i, nil, int(bytes/4), bytes)
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		eng.Run(0)
		return end
	}
	small := int64(4 << 10)
	if tt, rt := run(true, small), run(false, small); tt >= rt {
		t.Fatalf("small message: tree (%v) not faster than ring (%v)", tt, rt)
	}
	large := int64(128 << 20)
	if tt, rt := run(true, large), run(false, large); tt <= rt {
		t.Fatalf("large message: ring (%v) not faster than tree (%v)", rt, tt)
	}
}
