package comm

import (
	"math"
	"strings"
	"testing"

	"disttrain/internal/cluster"
	"disttrain/internal/costmodel"
	"disttrain/internal/des"
	"disttrain/internal/rng"
	"disttrain/internal/simnet"
	"disttrain/internal/topo"
)

// topoWorlds are the worker counts the bit-identity property must hold at;
// the primes (3, 257) force non-power-of-two butterfly folding and are
// rejected by the torus.
var topoWorlds = []int{3, 8, 24, 100, 257, 1024}

// groupsFor partitions ranks 0..n-1 into machines of 4, matching
// buildNet(ceil(n/4), 4) placement.
func groupsFor(n int) [][]int {
	var gs [][]int
	for r := 0; r < n; r++ {
		if r%4 == 0 {
			gs = append(gs, nil)
		}
		gs[len(gs)-1] = append(gs[len(gs)-1], r)
	}
	return gs
}

// runWorld spawns one proc per rank running op over fresh copies of vecs
// and returns the per-rank results.
func runWorld(t *testing.T, op Op, n int, vecs [][]float32, bytes int64) ([][]float32, simnet.Stats) {
	t.Helper()
	machines := (n + 3) / 4
	eng, net, ids := buildNet(machines, 4)
	ids = ids[:n]
	out := make([][]float32, n)
	for i := 0; i < n; i++ {
		i := i
		out[i] = append([]float32(nil), vecs[i]...)
		eng.Spawn("w", func(p *des.Proc) {
			o := CollectiveOpts{Op: op, Net: net, Nodes: ids, Self: i,
				Vec: out[i], Bytes: bytes, Kind: testKind}
			switch op {
			case OpHierarchicalAllReduce:
				o.Groups = groupsFor(n)
			case OpTorusAllReduce:
				rows, cols, err := topo.TorusShape(n)
				if err != nil {
					t.Errorf("torus shape: %v", err)
					return
				}
				o.TorusRows, o.TorusCols = rows, cols
			}
			if _, _, err := Collective(p, o); err != nil {
				t.Errorf("%v n=%d rank %d: %v", op, n, i, err)
			}
		})
	}
	eng.Run(0)
	if stuck := eng.Stuck(); len(stuck) > 0 {
		t.Fatalf("%v n=%d stuck procs: %d", op, n, len(stuck))
	}
	return out, net.Stats()
}

func randVecs(n, vlen int, seed uint64) [][]float32 {
	r := rng.New(seed)
	vecs := make([][]float32, n)
	for i := range vecs {
		vecs[i] = make([]float32, vlen)
		for j := range vecs[i] {
			vecs[i][j] = float32(r.NormFloat64())
		}
	}
	return vecs
}

func bitEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestTopoCollectivesBitIdenticalToRing is the tentpole property: at every
// world size, each topology-aware collective must leave exactly the ring
// AllReduce's bits in every rank's vector. The oracle is ringReference;
// the flat ring itself is checked against the same oracle (at the sizes
// where simulating its O(n²) messages stays cheap), closing the loop.
func TestTopoCollectivesBitIdenticalToRing(t *testing.T) {
	const vlen = 130 // not divisible by most world sizes: uneven chunks, empty chunks at n > vlen
	for _, n := range topoWorlds {
		vecs := randVecs(n, vlen, uint64(n))
		want := make([]float32, vlen)
		ringReference(vecs, want)

		ops := []Op{OpHierarchicalAllReduce, OpButterflyAllReduce}
		if n <= 257 {
			ops = append(ops, OpRingAllReduce)
		}
		if _, _, err := topo.TorusShape(n); err == nil {
			ops = append(ops, OpTorusAllReduce)
		}
		for _, op := range ops {
			got, _ := runWorld(t, op, n, vecs, int64(vlen*4))
			for i := range got {
				if !bitEqual(got[i], want) {
					t.Fatalf("%v n=%d rank %d differs from ring reference", op, n, i)
				}
			}
		}
	}
}

// TestTopoCollectivesGatherSumExact uses integer-valued floats, where
// addition is exact at any association: every collective, including the
// tree, must match the plain gather-sum.
func TestTopoCollectivesGatherSumExact(t *testing.T) {
	const vlen, n = 24, 8
	vecs := make([][]float32, n)
	want := make([]float32, vlen)
	for i := range vecs {
		vecs[i] = make([]float32, vlen)
		for j := range vecs[i] {
			vecs[i][j] = float32(i*vlen + j)
			want[j] += vecs[i][j]
		}
	}
	for _, op := range []Op{OpRingAllReduce, OpTreeAllReduce,
		OpHierarchicalAllReduce, OpButterflyAllReduce, OpTorusAllReduce} {
		got, _ := runWorld(t, op, n, vecs, int64(vlen*4))
		for i := range got {
			if !bitEqual(got[i], want) {
				t.Fatalf("%v rank %d: %v, want %v", op, i, got[i], want)
			}
		}
	}
}

// TestTopoCollectivesCostSchedules pins each collective's wire schedule in
// cost-only mode: message and byte counts must match the algorithm's
// analytic pattern.
func TestTopoCollectivesCostSchedules(t *testing.T) {
	const n, B = 8, 4000
	cases := []struct {
		op        Op
		wantMsgs  int64
		wantBytes int64
	}{
		// 6 member→leader (B) + leaders 2-ring (2 steps × 2 leaders × B/2)
		// + 6 leader→member (B).
		{OpHierarchicalAllReduce, 16, 6*B + 4*B/2 + 6*B},
		// 3 halving rounds (B/2+B/4+B/8 per rank) mirrored by 3 doubling.
		{OpButterflyAllReduce, 48, 2 * 8 * (B/2 + B/4 + B/8)},
		// 2×4 grid: row rings 6 msgs/rank × B/4, col rings 2 msgs/rank × B/2.
		{OpTorusAllReduce, 64, 8*6*B/4 + 8*2*B/2},
	}
	for _, tc := range cases {
		_, stats := runCostOnly(t, tc.op, n, B)
		if stats.TotalMsgs != tc.wantMsgs || stats.TotalBytes != tc.wantBytes {
			t.Fatalf("%v: %d msgs / %d bytes, want %d / %d",
				tc.op, stats.TotalMsgs, stats.TotalBytes, tc.wantMsgs, tc.wantBytes)
		}
	}
}

func runCostOnly(t *testing.T, op Op, n int, bytes int64) (des.Time, simnet.Stats) {
	t.Helper()
	machines := (n + 3) / 4
	eng, net, ids := buildNet(machines, 4)
	return runCostOnlyNet(t, op, n, bytes, eng, net, ids)
}

func runCostOnlyNet(t *testing.T, op Op, n int, bytes int64, eng *des.Engine, net *simnet.Net, ids []int) (des.Time, simnet.Stats) {
	t.Helper()
	ids = ids[:n]
	for i := 0; i < n; i++ {
		i := i
		eng.Spawn("w", func(p *des.Proc) {
			o := CollectiveOpts{Op: op, Net: net, Nodes: ids, Self: i,
				VirtualLen: 1000, Bytes: bytes, Kind: testKind}
			switch op {
			case OpHierarchicalAllReduce:
				o.Groups = groupsFor(n)
			case OpTorusAllReduce:
				rows, cols, err := topo.TorusShape(n)
				if err != nil {
					t.Errorf("torus shape: %v", err)
					return
				}
				o.TorusRows, o.TorusCols = rows, cols
			}
			if _, _, err := Collective(p, o); err != nil {
				t.Errorf("%v rank %d: %v", op, i, err)
			}
		})
	}
	eng.Run(0)
	if stuck := eng.Stuck(); len(stuck) > 0 {
		t.Fatalf("%v stuck procs: %d", op, len(stuck))
	}
	return eng.Now(), net.Stats()
}

// TestHierarchicalBeatsRingCrossMachine: the point of the hierarchy on the
// paper's 10G fabric. The flat ring pipelines chunks so well that its NIC
// occupancy hides per-hop latency while intra-machine hops are cheap —
// bandwidth-wise it is near optimal. What it cannot hide at scale is the
// 2(n−1)-step dependency chain: once chunks are small, every step pays the
// full hop latency. The leaders' ring cuts the chain to 2(M−1) steps, so
// in the latency-bound regime (small/compressed gradients, the DGC class)
// hierarchical wins outright — here a ~470 KB gradient on the paper's
// 24-worker testbed.
func TestHierarchicalBeatsRingCrossMachine(t *testing.T) {
	const n = 24
	const B = 470 << 10
	mkNet := func() (*des.Engine, *simnet.Net, []int) {
		eng := des.NewEngine()
		net := simnet.New(eng, cluster.Paper10G(n))
		var ids []int
		for w := 0; w < n; w++ {
			ids = append(ids, net.AddNode(w/4).ID)
		}
		return eng, net, ids
	}
	eng, net, ids := mkNet()
	ringT, ringStats := runCostOnlyNet(t, OpRingAllReduce, n, B, eng, net, ids)
	eng, net, ids = mkNet()
	hierT, hierStats := runCostOnlyNet(t, OpHierarchicalAllReduce, n, B, eng, net, ids)
	if hierT >= ringT {
		t.Fatalf("hierarchical %v >= ring %v at %d workers", hierT, ringT, n)
	}
	if hierStats.CrossMachineBytes >= ringStats.CrossMachineBytes {
		t.Fatalf("hierarchical moved %d cross-machine bytes, ring %d",
			hierStats.CrossMachineBytes, ringStats.CrossMachineBytes)
	}
}

// TestPredictionsMatchSimulator gates the costmodel's first-order ring and
// hierarchical formulas against the DES measurement: within 25 % relative
// error across both the bandwidth-bound (full ResNet-50 gradient) and
// latency-bound (DGC-compressed class) regimes on the paper's 10G fabric.
// The rougher butterfly/torus envelopes are deliberately not gated.
func TestPredictionsMatchSimulator(t *testing.T) {
	const tol = 0.25
	cases := []struct {
		n     int
		bytes int64
	}{
		{8, 470 << 10},
		{24, 470 << 10},
		{24, 94 << 20},
		{64, 94 << 20},
	}
	for _, tc := range cases {
		cfg := cluster.Paper10G(tc.n)
		mkNet := func() (*des.Engine, *simnet.Net, []int) {
			eng := des.NewEngine()
			net := simnet.New(eng, cfg)
			var ids []int
			for w := 0; w < tc.n; w++ {
				ids = append(ids, net.AddNode(w/4).ID)
			}
			return eng, net, ids
		}
		for _, c := range []struct {
			op   Op
			name string
		}{
			{OpRingAllReduce, "ring"},
			{OpHierarchicalAllReduce, "hierarchical"},
		} {
			eng, net, ids := mkNet()
			measured, _ := runCostOnlyNet(t, c.op, tc.n, tc.bytes, eng, net, ids)
			pred, err := costmodel.PredictAllReduceSec(c.name, cfg, tc.n, tc.bytes)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(float64(measured)-pred) / float64(measured); rel > tol {
				t.Errorf("%s n=%d B=%d: measured %.4gs predicted %.4gs (%.0f%% off)",
					c.name, tc.n, tc.bytes, float64(measured), pred, 100*rel)
			}
		}
	}
}

// TestTopoCollectiveRejects extends the validation table to the new ops'
// pointed errors.
func TestTopoCollectiveRejects(t *testing.T) {
	eng, net, ids := buildNet(3, 1)
	vec3 := []float32{1, 2, 3}
	cases := []struct {
		name string
		opts CollectiveOpts
		want string
	}{
		{"hierarchical without groups",
			CollectiveOpts{Op: OpHierarchicalAllReduce, Net: net, Nodes: ids, Vec: vec3},
			"needs a cluster layout"},
		{"hierarchical empty group",
			CollectiveOpts{Op: OpHierarchicalAllReduce, Net: net, Nodes: ids, Vec: vec3,
				Groups: [][]int{{0, 1, 2}, {}}},
			"group 1 is empty"},
		{"hierarchical rank in two groups",
			CollectiveOpts{Op: OpHierarchicalAllReduce, Net: net, Nodes: ids, Vec: vec3,
				Groups: [][]int{{0, 1}, {1, 2}}},
			"appears in two groups"},
		{"hierarchical member out of range",
			CollectiveOpts{Op: OpHierarchicalAllReduce, Net: net, Nodes: ids, Vec: vec3,
				Groups: [][]int{{0, 1}, {2, 3}}},
			"outside world"},
		{"hierarchical incomplete cover",
			CollectiveOpts{Op: OpHierarchicalAllReduce, Net: net, Nodes: ids, Vec: vec3,
				Groups: [][]int{{0, 1}}},
			"cover 2 of 3 ranks"},
		{"torus without shape",
			CollectiveOpts{Op: OpTorusAllReduce, Net: net, Nodes: ids, Vec: vec3},
			"rectangular grid"},
		{"torus non-rectangular world",
			CollectiveOpts{Op: OpTorusAllReduce, Net: net, Nodes: ids, Vec: vec3,
				TorusRows: 2, TorusCols: 2},
			"does not cover 3 ranks"},
		{"butterfly cost-only without length",
			CollectiveOpts{Op: OpButterflyAllReduce, Net: net, Nodes: ids, Bytes: 12},
			"positive VirtualLen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			eng.Spawn("w", func(p *des.Proc) {
				_, _, err = Collective(p, tc.opts)
			})
			eng.Run(0)
			if err == nil {
				t.Fatalf("opts accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	if n := net.Stats().TotalMsgs; n != 0 {
		t.Fatalf("rejected collectives sent %d messages", n)
	}
}

// TestTopoOpStrings pins the op names used in error messages and reports.
func TestTopoOpStrings(t *testing.T) {
	want := map[Op]string{
		OpHierarchicalAllReduce: "hierarchical allreduce",
		OpButterflyAllReduce:    "butterfly allreduce",
		OpTorusAllReduce:        "torus allreduce",
	}
	for op, s := range want {
		if op.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(op), op.String(), s)
		}
	}
}
