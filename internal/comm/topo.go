// Topology-aware collectives: hierarchical (machine-aware two-level),
// recursive halving/doubling (butterfly), and 2D-torus (ring-of-rings)
// AllReduce.
//
// All three are bit-identical in result to the flat ring AllReduce. Since
// float addition is not associative, a different message pattern would
// normally imply a different summation tree; instead, these collectives
// exploit the simulator's payload/wire decoupling. Messages carry the
// *original* per-rank contributions (simnet.Part) alongside the Bytes that
// model the topology's real reduced-value traffic, and once a rank holds
// the full contribution set it replays the ring's exact per-chunk fold
// (ringReference). Timing reflects the topology; arithmetic reflects the
// reference.
//
// Part sets are propagated by snapshot: a sender attaches its current set
// as a capacity-clamped slice (no copy; later appends reallocate), and
// receivers merge with a per-rank dedup, so the payload machinery stays
// O(world) in memory per rank rather than O(world²).
package comm

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/simnet"
	"disttrain/internal/tensor"
)

// Seg values for the multi-phase collectives encode phase<<16 | index so
// stash-based matching can tell the phases of one round apart.
const (
	phGather = 1 + iota
	phRing
	phBcast
	phPre
	phHalf
	phDouble
	phPost
	phRow
	phCol
)

func segID(phase, idx int) int { return phase<<16 | idx }

// ringReference folds the full contribution set in the flat ring's exact
// order: chunk c of the result is the left fold of ranks c, c+1, …,
// c+n−1 (cyclic), with the ring's chunk boundaries. Identical bits to what
// OpRingAllReduce leaves in every participant's vector.
func ringReference(vecs [][]float32, out []float32) {
	n := len(vecs)
	vlen := len(out)
	for c := 0; c < n; c++ {
		lo, hi := vlen*c/n, vlen*(c+1)/n
		if lo == hi {
			continue
		}
		copy(out[lo:hi], vecs[c][lo:hi])
		for k := 1; k < n; k++ {
			tensor.AxpyF32(1, vecs[(c+k)%n][lo:hi], out[lo:hi])
		}
	}
}

// contribSet tracks which ranks' contributions this participant has seen.
// vecs doubles as the dedup bitmap and the rank-ordered input to
// ringReference; parts is the arrival-ordered list shared (by snapshot)
// with peers.
type contribSet struct {
	vecs  [][]float32
	parts []simnet.Part
}

func newContribSet(n int) *contribSet { return &contribSet{vecs: make([][]float32, n)} }

func (s *contribSet) add(rank int, vec []float32) {
	if s.vecs[rank] != nil {
		return
	}
	s.vecs[rank] = vec
	s.parts = append(s.parts, simnet.Part{Rank: rank, Vec: vec})
}

func (s *contribSet) merge(parts []simnet.Part) {
	for _, pt := range parts {
		s.add(pt.Rank, pt.Vec)
	}
}

// snapshot shares the current part list without copying; the capacity
// clamp forces any later append to reallocate, so receivers see a stable
// slice.
func (s *contribSet) snapshot() []simnet.Part { return s.parts[:len(s.parts):len(s.parts)] }

func (s *contribSet) full() bool { return len(s.parts) == len(s.vecs) }

// enter is the common preamble of the topology-aware collectives: attach a
// call-local stash if the caller supplied none (multi-partner phases can
// legitimately reorder within one round), and in payload mode snapshot the
// caller's original contribution before anything overwrites o.Vec.
func enter(o *CollectiveOpts) *contribSet {
	if o.Stash == nil {
		o.Stash = &[]simnet.Msg{}
	}
	if o.Vec == nil {
		return nil
	}
	set := newContribSet(len(o.Nodes))
	set.add(o.Self, append([]float32(nil), o.Vec...))
	return set
}

// finishReduce checks completeness and writes the reference reduction into
// o.Vec. No-op in cost-only mode.
func finishReduce(o *CollectiveOpts, set *contribSet) error {
	if set == nil {
		return nil
	}
	if !set.full() {
		return fmt.Errorf("comm: %v rank %d holds %d of %d contributions",
			o.Op, o.Self, len(set.parts), len(set.vecs))
	}
	ringReference(set.vecs, o.Vec)
	return nil
}

// subRing runs one ring phase over a subset of participants: a
// reduce-scatter pass that carries contribution snapshots (after which
// every member of the sub-ring holds the union of all members' sets,
// by chain propagation) and a timing-only all-gather pass. totalBytes is
// the full-vector wire size; each hop moves one of len(ranks) chunks.
func subRing(p *des.Proc, o *CollectiveOpts, ranks []int, phase int, set *contribSet, totalBytes int64) (des.Time, error) {
	L := len(ranks)
	if L == 1 {
		return 0, nil
	}
	pos := -1
	for i, r := range ranks {
		if r == o.Self {
			pos = i
		}
	}
	if pos < 0 {
		return 0, fmt.Errorf("comm: %v rank %d outside its own sub-ring %v", o.Op, o.Self, ranks)
	}
	chunkBytes := func(c int) int64 { return totalBytes*int64(c+1)/int64(L) - totalBytes*int64(c)/int64(L) }
	right := o.Nodes[ranks[(pos+1)%L]]
	var wire des.Time

	send := func(c int, carry bool) {
		var parts []simnet.Part
		if set != nil && carry {
			parts = set.snapshot()
		}
		o.Net.Send(simnet.Msg{From: o.Nodes[o.Self], To: right, Kind: o.Kind, Clock: o.Clock,
			Seg: segID(phase, c), Bytes: chunkBytes(c), Parts: parts})
	}

	// Reduce-scatter: snapshots accumulate around the ring; after L−1
	// receives each member has merged every other member's set.
	for s := 0; s < L-1; s++ {
		send(((pos-s)%L+L)%L, true)
		c := ((pos-s-1)%L + L) % L
		m, err := recvMatch(p, o, segID(phase, c), true)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
		if set != nil {
			set.merge(m.Parts)
		}
	}
	// All-gather: the reduced chunks circulate back; payload already
	// complete, so these messages are timing-only.
	for s := 0; s < L-1; s++ {
		send(((pos+1-s)%L+L)%L, false)
		c := ((pos-s)%L + L) % L
		m, err := recvMatch(p, o, segID(phase, c), true)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
	}
	return wire, nil
}

// hierarchicalAllReduce: members hand their contribution to a per-machine
// leader over the intra-machine bus, the leaders run a ring over the NIC
// fabric (chunked over the leader count), and the result fans back out
// intra-machine. Wire cost per member ≈ 2·B intra; per leader ≈
// (g−1)·B intra-in + 2·(L−1)·(B/L) inter + (g−1)·B intra-out.
func hierarchicalAllReduce(p *des.Proc, o *CollectiveOpts) (des.Time, error) {
	n := len(o.Nodes)
	if n == 1 {
		return 0, nil
	}
	set := enter(o)
	group := -1
	for g, members := range o.Groups {
		for _, r := range members {
			if r == o.Self {
				group = g
			}
		}
	}
	if group < 0 {
		return 0, fmt.Errorf("comm: %v rank %d missing from Groups", o.Op, o.Self)
	}
	my := o.Groups[group]
	leader := my[0]
	var wire des.Time

	if o.Self != leader {
		var parts []simnet.Part
		if set != nil {
			parts = set.snapshot()
		}
		o.Net.Send(simnet.Msg{From: o.Nodes[o.Self], To: o.Nodes[leader], Kind: o.Kind, Clock: o.Clock,
			Seg: segID(phGather, 0), Bytes: o.Bytes, Parts: parts})
		m, err := recvMatch(p, o, segID(phBcast, 0), true)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
		if o.Vec != nil {
			copy(o.Vec, m.Vec)
		}
		return wire, nil
	}

	for i := 0; i < len(my)-1; i++ {
		m, err := recvMatch(p, o, segID(phGather, 0), true)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
		if set != nil {
			set.merge(m.Parts)
		}
	}
	leaders := make([]int, len(o.Groups))
	for g, members := range o.Groups {
		leaders[g] = members[0]
	}
	w, err := subRing(p, o, leaders, phRing, set, o.Bytes)
	wire += w
	if err != nil {
		return wire, err
	}
	if err := finishReduce(o, set); err != nil {
		return wire, err
	}
	// One shared result copy for all members; receivers copy out, never
	// mutate.
	var result []float32
	if o.Vec != nil {
		result = append([]float32(nil), o.Vec...)
	}
	for _, r := range my[1:] {
		o.Net.Send(simnet.Msg{From: o.Nodes[o.Self], To: o.Nodes[r], Kind: o.Kind, Clock: o.Clock,
			Seg: segID(phBcast, 0), Bytes: o.Bytes, Vec: result})
	}
	return wire, nil
}

// butterflyAllReduce: recursive halving (reduce-scatter, message size
// B/2^(t+1) in round t) followed by recursive doubling (all-gather,
// mirrored sizes) over the largest power-of-two subset; the n−p2 leftover
// ranks fold into a partner before and after. Wire cost per active rank ≈
// 2·B·(p2−1)/p2 + the pre/post folds.
func butterflyAllReduce(p *des.Proc, o *CollectiveOpts) (des.Time, error) {
	n := len(o.Nodes)
	if n == 1 {
		return 0, nil
	}
	set := enter(o)
	p2 := 1
	for p2*2 <= n {
		p2 *= 2
	}
	r := n - p2
	self := o.Self
	var wire des.Time

	send := func(to, seg int, bytes int64, parts []simnet.Part, vec []float32) {
		o.Net.Send(simnet.Msg{From: o.Nodes[self], To: o.Nodes[to], Kind: o.Kind, Clock: o.Clock,
			Seg: seg, Bytes: bytes, Parts: parts, Vec: vec})
	}

	// Pre-fold: the odd rank of each leftover pair hands its contribution
	// to its even partner and sits out until the post-fold.
	if self < 2*r && self%2 == 1 {
		var parts []simnet.Part
		if set != nil {
			parts = set.snapshot()
		}
		send(self-1, segID(phPre, 0), o.Bytes, parts, nil)
		m, err := recvMatch(p, o, segID(phPost, 0), true)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
		if o.Vec != nil {
			copy(o.Vec, m.Vec)
		}
		return wire, nil
	}
	if self < 2*r {
		m, err := recvMatch(p, o, segID(phPre, 0), true)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
		if set != nil {
			set.merge(m.Parts)
		}
	}
	// Active hypercube index: folded pairs collapse to one slot each.
	ai := self - r
	if self < 2*r {
		ai = self / 2
	}
	unai := func(a int) int {
		if a < r {
			return 2 * a
		}
		return a + r
	}
	// Halving: both partners exchange snapshots every round, so after
	// log2(p2) rounds each active rank's set covers the whole hypercube.
	t := 0
	for mask := p2 / 2; mask >= 1; mask /= 2 {
		partner := unai(ai ^ mask)
		var parts []simnet.Part
		if set != nil {
			parts = set.snapshot()
		}
		send(partner, segID(phHalf, t), o.Bytes/int64(uint(2)<<uint(t)), parts, nil)
		m, err := recvMatch(p, o, segID(phHalf, t), true)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
		if set != nil {
			set.merge(m.Parts)
		}
		t++
	}
	if err := finishReduce(o, set); err != nil {
		return wire, err
	}
	// Doubling: result already complete everywhere, timing-only.
	t = 0
	for mask := 1; mask < p2; mask *= 2 {
		partner := unai(ai ^ mask)
		send(partner, segID(phDouble, t), o.Bytes*int64(mask)/int64(p2), nil, nil)
		m, err := recvMatch(p, o, segID(phDouble, t), true)
		if err != nil {
			return wire, err
		}
		wire += m.WireSec
		t++
	}
	if self < 2*r {
		var result []float32
		if o.Vec != nil {
			result = append([]float32(nil), o.Vec...)
		}
		send(self+1, segID(phPost, 0), o.Bytes, nil, result)
	}
	return wire, nil
}

// torusAllReduce: a ring AllReduce along each row of the TorusRows ×
// TorusCols grid (chunked over the row length), then along each column.
// Row rings spread each row's contributions to all its members; column
// rings then union complete row sets, so every rank finishes with all n.
// Wire cost per rank ≈ 2·B·(cols−1)/cols + 2·B·(rows−1)/rows.
func torusAllReduce(p *des.Proc, o *CollectiveOpts) (des.Time, error) {
	if len(o.Nodes) == 1 {
		return 0, nil
	}
	set := enter(o)
	rows, cols := o.TorusRows, o.TorusCols
	row, col := o.Self/cols, o.Self%cols
	rowRanks := make([]int, cols)
	for i := range rowRanks {
		rowRanks[i] = row*cols + i
	}
	colRanks := make([]int, rows)
	for i := range colRanks {
		colRanks[i] = i*cols + col
	}
	var wire des.Time
	w, err := subRing(p, o, rowRanks, phRow, set, o.Bytes)
	wire += w
	if err != nil {
		return wire, err
	}
	w, err = subRing(p, o, colRanks, phCol, set, o.Bytes)
	wire += w
	if err != nil {
		return wire, err
	}
	return wire, finishReduce(o, set)
}
