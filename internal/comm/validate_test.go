package comm

import (
	"strings"
	"testing"

	"disttrain/internal/des"
	"disttrain/internal/simnet"
)

// TestCollectiveRejects drives every validation rule: a malformed opts must
// come back as an error from Collective before any message moves, for every
// op it applies to.
func TestCollectiveRejects(t *testing.T) {
	eng, net, ids := buildNet(3, 1)
	vec3 := []float32{1, 2, 3}
	cases := []struct {
		name string
		opts CollectiveOpts
		want string
	}{
		{"nil net",
			CollectiveOpts{Op: OpRingAllReduce, Nodes: ids, Vec: vec3},
			"needs a network"},
		{"no participants",
			CollectiveOpts{Op: OpRingAllReduce, Net: net, Vec: vec3},
			"no participants"},
		{"self negative",
			CollectiveOpts{Op: OpGather, Net: net, Nodes: ids, Self: -1, Vec: vec3},
			"self index"},
		{"self past end",
			CollectiveOpts{Op: OpBroadcast, Net: net, Nodes: ids, Self: 3, Vec: vec3},
			"self index"},
		{"negative bytes",
			CollectiveOpts{Op: OpRingAllReduce, Net: net, Nodes: ids, Vec: vec3, Bytes: -4},
			"negative wire size"},
		{"ring cost-only without length",
			CollectiveOpts{Op: OpRingAllReduce, Net: net, Nodes: ids, Bytes: 12},
			"positive VirtualLen"},
		{"tree cost-only without length",
			CollectiveOpts{Op: OpTreeAllReduce, Net: net, Nodes: ids, Bytes: 12},
			"positive VirtualLen"},
		{"ring empty payload",
			CollectiveOpts{Op: OpRingAllReduce, Net: net, Nodes: ids, Vec: []float32{}, VirtualLen: 3},
			"empty payload"},
		{"virtual length disagrees with payload",
			CollectiveOpts{Op: OpRingAllReduce, Net: net, Nodes: ids, Vec: vec3, VirtualLen: 7},
			"disagrees with payload length"},
		{"unknown op",
			CollectiveOpts{Op: Op(99), Net: net, Nodes: ids, Vec: vec3},
			"unknown op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			eng.Spawn("w", func(p *des.Proc) {
				_, _, err = Collective(p, tc.opts)
			})
			eng.Run(0)
			if err == nil {
				t.Fatalf("opts accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
	if n := net.Stats().TotalMsgs; n != 0 {
		t.Fatalf("rejected collectives sent %d messages", n)
	}
}

// TestCollectiveStrictMismatchErrors checks the stash-less discipline: an
// unexpected message aborts the collective with an error instead of
// panicking the process.
func TestCollectiveStrictMismatchErrors(t *testing.T) {
	eng, net, ids := buildNet(2, 1)
	var err error
	eng.Spawn("stray", func(p *des.Proc) {
		net.Send(simnet.Msg{From: ids[1], To: ids[0], Kind: testKind + 1, Bytes: 4})
	})
	eng.Spawn("leader", func(p *des.Proc) {
		_, _, err = Collective(p, CollectiveOpts{Op: OpGather, Net: net, Nodes: ids, Self: 0,
			Vec: []float32{0}, Bytes: 4, Kind: testKind})
	})
	eng.Run(0)
	if err == nil || !strings.Contains(err.Error(), "got kind") {
		t.Fatalf("strict mismatch: got %v, want protocol error", err)
	}
}
