// Package nn is a small from-scratch neural-network stack: layers with
// explicit forward/backward passes, models assembled from layers, and a
// softmax cross-entropy loss.
//
// It exists so the distributed-training algorithms in internal/core exchange
// *real* gradients with real SGD noise — the property the paper's accuracy
// experiments depend on — while staying cheap enough to run dozens of
// multi-worker configurations on a laptop.
//
// Parameters are exposed in two forms: per-layer tensors (used by the math)
// and a flat []float32 view (used by every communication/aggregation code
// path, and by layer-wise parameter sharding, which needs the segment
// boundaries).
package nn

import (
	"fmt"

	"disttrain/internal/tensor"
)

// Param is one learnable tensor together with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

// Layer is a differentiable module. Forward must cache whatever Backward
// needs; Backward receives dL/d(output) and returns dL/d(input), adding
// dL/d(params) into the layer's gradient tensors (accumulate semantics so a
// model can sum gradients over micro-batches).
type Layer interface {
	// Name identifies the layer for sharding and reporting.
	Name() string
	// Forward computes the layer output for a batch. train distinguishes
	// training from evaluation for layers that behave differently.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates gradients; must be called after Forward.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the learnable parameters (possibly empty).
	Params() []*Param
}

// Segment describes a contiguous range of the model's flat parameter vector
// belonging to one named tensor. Sharding assigns segments to PS shards.
type Segment struct {
	Name string
	Off  int
	Len  int
}

// Model is an ordered stack of layers with a softmax cross-entropy head.
type Model struct {
	Name   string
	Layers []Layer

	params []*Param
	segs   []Segment
	size   int

	// arena recycles layer scratch buffers across batch-shape changes
	// (nil = plain allocation).
	arena *tensor.Arena

	// caches reused across Loss calls
	probs *tensor.Tensor
}

// arenaUser is implemented by layers whose scratch buffers (activations,
// gradients, im2col matrices) can be drawn from a shared arena.
type arenaUser interface {
	setArena(a *tensor.Arena)
}

// SetArena routes all layer scratch allocation through a. Buffers released
// when the batch shape changes (e.g. alternating training and evaluation
// batches) are recycled, making steady-state training steps allocation-free.
// Call before the first Forward; a nil arena restores plain allocation.
func (m *Model) SetArena(a *tensor.Arena) {
	m.arena = a
	for _, l := range m.Layers {
		if u, ok := l.(arenaUser); ok {
			u.setArena(a)
		}
	}
}

// NewModel assembles layers into a model and computes flat-vector segment
// offsets.
func NewModel(name string, layers ...Layer) *Model {
	m := &Model{Name: name, Layers: layers}
	off := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			m.params = append(m.params, p)
			n := p.W.Size()
			m.segs = append(m.segs, Segment{Name: p.Name, Off: off, Len: n})
			off += n
		}
	}
	m.size = off
	return m
}

// NumParams returns the total number of learnable scalars.
func (m *Model) NumParams() int { return m.size }

// Params returns all learnable parameters in flat-vector order.
func (m *Model) Params() []*Param { return m.params }

// Segments returns the layer-wise layout of the flat parameter vector.
func (m *Model) Segments() []Segment { return append([]Segment(nil), m.segs...) }

// FlatParams copies the parameters into dst (allocated if nil) and returns it.
func (m *Model) FlatParams(dst []float32) []float32 {
	dst = m.ensure(dst)
	for i, p := range m.params {
		copy(dst[m.segs[i].Off:], p.W.Data)
	}
	return dst
}

// SetFlatParams overwrites the parameters from src.
func (m *Model) SetFlatParams(src []float32) {
	if len(src) != m.size {
		panic(fmt.Sprintf("nn: SetFlatParams length %d, want %d", len(src), m.size))
	}
	for i, p := range m.params {
		copy(p.W.Data, src[m.segs[i].Off:m.segs[i].Off+m.segs[i].Len])
	}
}

// FlatGrads copies the accumulated gradients into dst (allocated if nil).
func (m *Model) FlatGrads(dst []float32) []float32 {
	dst = m.ensure(dst)
	for i, p := range m.params {
		copy(dst[m.segs[i].Off:], p.G.Data)
	}
	return dst
}

// ZeroGrads clears all gradient accumulators.
func (m *Model) ZeroGrads() {
	for _, p := range m.params {
		p.G.Zero()
	}
}

// AxpyParams adds alpha*src into the parameters (src is a flat vector).
func (m *Model) AxpyParams(alpha float32, src []float32) {
	if len(src) != m.size {
		panic(fmt.Sprintf("nn: AxpyParams length %d, want %d", len(src), m.size))
	}
	for i, p := range m.params {
		tensor.AxpyF32(alpha, src[m.segs[i].Off:m.segs[i].Off+m.segs[i].Len], p.W.Data)
	}
}

func (m *Model) ensure(dst []float32) []float32 {
	if dst == nil {
		return make([]float32, m.size)
	}
	if len(dst) != m.size {
		panic(fmt.Sprintf("nn: flat buffer length %d, want %d", len(dst), m.size))
	}
	return dst
}

// Forward runs the layer stack and returns logits of shape [B, classes].
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	h := x
	for _, l := range m.Layers {
		h = l.Forward(h, train)
	}
	return h
}

// Loss runs a full forward/backward pass for a batch: it computes the mean
// softmax cross-entropy over (x, labels), accumulates parameter gradients,
// and returns the loss value and the number of correct argmax predictions.
// Gradients are ADDED to the accumulators; call ZeroGrads first for a fresh
// mini-batch gradient.
func (m *Model) Loss(x *tensor.Tensor, labels []int) (loss float64, correct int) {
	logits := m.Forward(x, true)
	m.ensureProbs(logits)
	var dlogits *tensor.Tensor
	loss, correct, dlogits, m.probs = SoftmaxCrossEntropy(logits, labels, m.probs)
	d := dlogits
	for i := len(m.Layers) - 1; i >= 0; i-- {
		d = m.Layers[i].Backward(d)
	}
	return loss, correct
}

// Evaluate computes mean loss and accuracy over a dataset slice without
// touching gradients.
func (m *Model) Evaluate(x *tensor.Tensor, labels []int) (loss float64, acc float64) {
	logits := m.Forward(x, false)
	m.ensureProbs(logits)
	l, correct, _, probs := SoftmaxCrossEntropy(logits, labels, m.probs)
	m.probs = probs
	return l, float64(correct) / float64(len(labels))
}

// ensureProbs recycles the softmax scratch through the arena when the batch
// shape changes; SoftmaxCrossEntropy fully overwrites it.
func (m *Model) ensureProbs(logits *tensor.Tensor) {
	b, c := logits.Shape[0], logits.Shape[1]
	if m.probs == nil || m.probs.Shape[0] != b || m.probs.Shape[1] != c {
		m.arena.PutTensor(m.probs)
		m.probs = m.arena.GetTensor(b, c)
	}
}
