package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
)

// Training-state checkpoint format: a header with the training counters and
// optimizer state, followed by an embedded model checkpoint (Save's exact
// byte stream, so the model section shares Save/Load's shape guard).
//
//	magic    uint32  "DTST"
//	version  uint32
//	step     uint64  last completed global iteration
//	draws    uint64  mini-batches drawn from the sampler so far
//	loss     float64 training-loss EWMA
//	lossInit uint8   1 if the EWMA has been seeded
//	augSet   uint8   1 if an augmentation-RNG state follows   (v2+)
//	aug      [4]uint64 raw xoshiro words of the aug stream    (v2+, if augSet)
//	nVel     uint32  optimizer velocity length (0 = none saved)
//	vel      []float32
//	model    Save() stream
//
// Version history: v1 had no augmentation-RNG section; v2 added it so a
// restored worker replays the exact augmentation sequence the dead one
// would have drawn. LoadState still reads v1 checkpoints (AugRNGSet stays
// false); SaveState always writes v2.
const (
	stateMagic   = 0x44545354 // "DTST"
	stateVersion = 2
)

// TrainState is the extra training state a live worker checkpoints beyond
// the model parameters: counters to resume the data stream and the
// optimizer's momentum, so a restored replica continues exactly where the
// dead one stopped.
type TrainState struct {
	// Step is the last completed global iteration.
	Step uint64
	// Draws counts mini-batches drawn from the sampler; a restored worker
	// fast-forwards its sampler by this many draws to rejoin the stream.
	Draws uint64
	// Loss and LossInit carry the training-loss EWMA across the restart.
	Loss     float64
	LossInit bool
	// AugRNG is the data-augmentation stream's raw RNG state (rng.State),
	// valid when AugRNGSet is true. Unlike the sampler — which replays by
	// fast-forwarding Draws — the augmentation stream advances a
	// data-dependent number of times per batch, so only the exact state
	// restores it. Checkpoints from runs without augmentation (and all v1
	// checkpoints) leave AugRNGSet false.
	AugRNG    [4]uint64
	AugRNGSet bool
	// Velocity is the optimizer's momentum buffer (nil to skip).
	Velocity []float32
}

// SaveState writes a training-state checkpoint — model plus TrainState — to
// path atomically: the bytes land in a temporary file first and are renamed
// into place, so a crash mid-write never leaves a truncated checkpoint.
func SaveState(path string, m *Model, st *TrainState) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := writeState(f, m, st); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func writeState(w io.Writer, m *Model, st *TrainState) error {
	bw := bufio.NewWriter(w)
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := writeU32(stateMagic); err != nil {
		return err
	}
	if err := writeU32(stateVersion); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, st.Step); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, st.Draws); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(st.Loss)); err != nil {
		return err
	}
	var li uint8
	if st.LossInit {
		li = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, li); err != nil {
		return err
	}
	var as uint8
	if st.AugRNGSet {
		as = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, as); err != nil {
		return err
	}
	if st.AugRNGSet {
		if err := binary.Write(bw, binary.LittleEndian, st.AugRNG[:]); err != nil {
			return err
		}
	}
	if err := writeU32(uint32(len(st.Velocity))); err != nil {
		return err
	}
	if len(st.Velocity) > 0 {
		if err := binary.Write(bw, binary.LittleEndian, st.Velocity); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return m.Save(w)
}

// LoadState restores a checkpoint written by SaveState: the model's
// parameters are loaded in place and the TrainState is returned. The
// model's architecture must match the checkpoint (Load's guard).
func LoadState(path string, m *Model) (*TrainState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("nn: reading state header: %w", err)
	}
	if magic != stateMagic {
		return nil, fmt.Errorf("nn: not a training-state checkpoint (magic %#x)", magic)
	}
	version, err := readU32()
	if err != nil {
		return nil, err
	}
	if version < 1 || version > stateVersion {
		return nil, fmt.Errorf("nn: unsupported training-state version %d (this build reads 1..%d)", version, stateVersion)
	}
	st := &TrainState{}
	if err := binary.Read(br, binary.LittleEndian, &st.Step); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &st.Draws); err != nil {
		return nil, err
	}
	var bits uint64
	if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
		return nil, err
	}
	st.Loss = math.Float64frombits(bits)
	var li uint8
	if err := binary.Read(br, binary.LittleEndian, &li); err != nil {
		return nil, err
	}
	st.LossInit = li == 1
	if version >= 2 {
		var as uint8
		if err := binary.Read(br, binary.LittleEndian, &as); err != nil {
			return nil, err
		}
		if as == 1 {
			if err := binary.Read(br, binary.LittleEndian, st.AugRNG[:]); err != nil {
				return nil, err
			}
			st.AugRNGSet = true
		}
	}
	nVel, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(nVel) > m.NumParams() {
		return nil, fmt.Errorf("nn: state velocity has %d entries, model has %d params", nVel, m.NumParams())
	}
	if nVel > 0 {
		st.Velocity = make([]float32, nVel)
		if err := binary.Read(br, binary.LittleEndian, st.Velocity); err != nil {
			return nil, err
		}
	}
	if err := m.Load(br); err != nil {
		return nil, err
	}
	return st, nil
}

// Cadence describes periodic checkpoint writes: every Every completed
// iterations, into Dir. The zero value disables checkpointing.
type Cadence struct {
	Dir   string
	Every int
}

// Enabled reports whether the cadence writes checkpoints at all.
func (c Cadence) Enabled() bool { return c.Dir != "" && c.Every > 0 }

// Due reports whether a checkpoint is due after completing iteration step.
func (c Cadence) Due(step int) bool {
	return c.Enabled() && step > 0 && step%c.Every == 0
}

// Path is the checkpoint file for one worker rank; rank -1 names the
// parameter server's checkpoint.
func (c Cadence) Path(rank int) string {
	if rank < 0 {
		return filepath.Join(c.Dir, "ps.ckpt")
	}
	return filepath.Join(c.Dir, fmt.Sprintf("worker-%d.ckpt", rank))
}
