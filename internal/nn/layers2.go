package nn

import (
	"fmt"
	"math"

	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

// BatchNorm normalizes each channel over the batch and spatial dimensions
// (for [B,C,H,W] inputs) or each feature over the batch (for [B,F] inputs),
// then applies a learnable scale γ and shift β. At evaluation time it uses
// running statistics accumulated during training.
//
// In data-parallel training each worker normalizes with its *local* batch
// statistics — exactly what the paper's TensorFlow setup does — so BN adds
// a small, realistic source of cross-replica disagreement.
type BatchNorm struct {
	name     string
	C        int
	eps      float32
	momentum float32

	gamma, beta *Param

	runMean, runVar []float32

	// caches for backward
	x      *tensor.Tensor
	xhat   []float32
	mean   []float32
	invStd []float32
	dx     *tensor.Tensor
	y      *tensor.Tensor
	lastN  int
	arena  *tensor.Arena
}

// NewBatchNorm creates a batch-normalization layer over c channels.
func NewBatchNorm(name string, c int) *BatchNorm {
	bn := &BatchNorm{name: name, C: c, eps: 1e-5, momentum: 0.9}
	g := tensor.New(c)
	g.Fill(1)
	bn.gamma = &Param{Name: name + ".gamma", W: g, G: tensor.New(c)}
	bn.beta = &Param{Name: name + ".beta", W: tensor.New(c), G: tensor.New(c)}
	bn.runMean = make([]float32, c)
	bn.runVar = make([]float32, c)
	for i := range bn.runVar {
		bn.runVar[i] = 1
	}
	return bn
}

func (bn *BatchNorm) Name() string             { return bn.name }
func (bn *BatchNorm) Params() []*Param         { return []*Param{bn.gamma, bn.beta} }
func (bn *BatchNorm) setArena(a *tensor.Arena) { bn.arena = a }

// geometry returns (groups, perChannelStride, spatial) describing how the
// flat data maps to channels: for [B,C,H,W] each channel c owns B·H·W
// values; for [B,F] each feature owns B values.
func (bn *BatchNorm) channelIndex(shape []int) (batch, spatial int) {
	switch len(shape) {
	case 2:
		if shape[1] != bn.C {
			panic(fmt.Sprintf("nn: batchnorm %s got %v, want [B %d]", bn.name, shape, bn.C))
		}
		return shape[0], 1
	case 4:
		if shape[1] != bn.C {
			panic(fmt.Sprintf("nn: batchnorm %s got %v, want [B %d H W]", bn.name, shape, bn.C))
		}
		return shape[0], shape[2] * shape[3]
	default:
		panic(fmt.Sprintf("nn: batchnorm %s unsupported rank %d", bn.name, len(shape)))
	}
}

func (bn *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	batch, spatial := bn.channelIndex(x.Shape)
	n := x.Size()
	if bn.y == nil || bn.lastN != n {
		bn.arena.PutTensor(bn.y)
		bn.arena.PutTensor(bn.dx)
		bn.arena.Put(bn.xhat)
		bn.y = bn.arena.GetTensor(x.Shape...)
		bn.dx = bn.arena.GetTensor(x.Shape...)
		bn.xhat = bn.arena.Get(n)
		if bn.mean == nil {
			bn.mean = make([]float32, bn.C)
			bn.invStd = make([]float32, bn.C)
		}
		bn.lastN = n
	}
	bn.y.Shape = append(bn.y.Shape[:0], x.Shape...)
	bn.dx.Shape = append(bn.dx.Shape[:0], x.Shape...)
	bn.x = x

	perC := batch * spatial
	chanStride := bn.C * spatial
	idx := func(b, c, s int) int { return b*chanStride + c*spatial + s }

	g, bta := bn.gamma.W.Data, bn.beta.W.Data
	for c := 0; c < bn.C; c++ {
		var mean, variance float32
		if train {
			var sum float64
			for b := 0; b < batch; b++ {
				for s := 0; s < spatial; s++ {
					sum += float64(x.Data[idx(b, c, s)])
				}
			}
			mean = float32(sum / float64(perC))
			var sq float64
			for b := 0; b < batch; b++ {
				for s := 0; s < spatial; s++ {
					d := x.Data[idx(b, c, s)] - mean
					sq += float64(d) * float64(d)
				}
			}
			variance = float32(sq / float64(perC))
			bn.runMean[c] = bn.momentum*bn.runMean[c] + (1-bn.momentum)*mean
			bn.runVar[c] = bn.momentum*bn.runVar[c] + (1-bn.momentum)*variance
		} else {
			mean, variance = bn.runMean[c], bn.runVar[c]
		}
		inv := float32(1 / math.Sqrt(float64(variance)+float64(bn.eps)))
		bn.mean[c], bn.invStd[c] = mean, inv
		for b := 0; b < batch; b++ {
			for s := 0; s < spatial; s++ {
				i := idx(b, c, s)
				xh := (x.Data[i] - mean) * inv
				bn.xhat[i] = xh
				bn.y.Data[i] = g[c]*xh + bta[c]
			}
		}
	}
	return bn.y
}

func (bn *BatchNorm) Backward(dout *tensor.Tensor) *tensor.Tensor {
	batch, spatial := bn.channelIndex(bn.x.Shape)
	perC := float32(batch * spatial)
	chanStride := bn.C * spatial
	idx := func(b, c, s int) int { return b*chanStride + c*spatial + s }

	g := bn.gamma.W.Data
	dg, db := bn.gamma.G.Data, bn.beta.G.Data
	for c := 0; c < bn.C; c++ {
		// Accumulate dγ, dβ and the two reduction terms of the BN gradient.
		var sumDy, sumDyXhat float64
		for b := 0; b < batch; b++ {
			for s := 0; s < spatial; s++ {
				i := idx(b, c, s)
				dy := float64(dout.Data[i])
				sumDy += dy
				sumDyXhat += dy * float64(bn.xhat[i])
			}
		}
		dg[c] += float32(sumDyXhat)
		db[c] += float32(sumDy)
		// dx = γ·invStd/N · (N·dy − Σdy − x̂·Σ(dy·x̂))
		k := g[c] * bn.invStd[c] / perC
		for b := 0; b < batch; b++ {
			for s := 0; s < spatial; s++ {
				i := idx(b, c, s)
				bn.dx.Data[i] = k * (perC*dout.Data[i] -
					float32(sumDy) - bn.xhat[i]*float32(sumDyXhat))
			}
		}
	}
	return bn.dx
}

// Dropout zeroes activations with probability p during training and scales
// survivors by 1/(1−p) (inverted dropout); evaluation is the identity.
type Dropout struct {
	name  string
	P     float64
	r     *rng.RNG
	mask  []bool
	y, dx *tensor.Tensor
	train bool
	arena *tensor.Arena
}

// NewDropout creates a dropout layer with drop probability p, drawing its
// masks from r (each replica should pass its own stream).
func NewDropout(name string, p float64, r *rng.RNG) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout %s p=%v", name, p))
	}
	return &Dropout{name: name, P: p, r: r}
}

func (d *Dropout) Name() string             { return d.name }
func (d *Dropout) Params() []*Param         { return nil }
func (d *Dropout) setArena(a *tensor.Arena) { d.arena = a }

func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Size()
	if d.y == nil || d.y.Size() != n {
		d.arena.PutTensor(d.y)
		d.arena.PutTensor(d.dx)
		d.y = d.arena.GetTensor(x.Shape...)
		d.dx = d.arena.GetTensor(x.Shape...)
		d.mask = make([]bool, n)
	}
	d.y.Shape = append(d.y.Shape[:0], x.Shape...)
	d.dx.Shape = append(d.dx.Shape[:0], x.Shape...)
	d.train = train
	if !train || d.P == 0 {
		copy(d.y.Data, x.Data)
		return d.y
	}
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		if d.r.Float64() < d.P {
			d.mask[i] = false
			d.y.Data[i] = 0
		} else {
			d.mask[i] = true
			d.y.Data[i] = v * scale
		}
	}
	return d.y
}

func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if !d.train || d.P == 0 {
		copy(d.dx.Data, dout.Data)
		return d.dx
	}
	scale := float32(1 / (1 - d.P))
	for i, v := range dout.Data {
		if d.mask[i] {
			d.dx.Data[i] = v * scale
		} else {
			d.dx.Data[i] = 0
		}
	}
	return d.dx
}

// GlobalAvgPool reduces [B,C,H,W] to [B,C] by averaging each channel's
// spatial positions — the classifier head reduction of ResNet-style nets.
type GlobalAvgPool struct {
	name    string
	inShape []int
	y, dx   *tensor.Tensor
	arena   *tensor.Arena
}

// NewGlobalAvgPool creates a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

func (l *GlobalAvgPool) Name() string             { return l.name }
func (l *GlobalAvgPool) Params() []*Param         { return nil }
func (l *GlobalAvgPool) setArena(a *tensor.Arena) { l.arena = a }

func (l *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 {
		panic(fmt.Sprintf("nn: gap %s needs [B C H W], got %v", l.name, x.Shape))
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	l.inShape = append(l.inShape[:0], x.Shape...)
	if l.y == nil || l.y.Size() != b*c {
		l.arena.PutTensor(l.y)
		l.y = l.arena.GetTensor(b, c)
	}
	if l.dx == nil || l.dx.Size() != x.Size() {
		l.arena.PutTensor(l.dx)
		l.dx = l.arena.GetTensor(x.Shape...)
	}
	spatial := h * w
	inv := float32(1) / float32(spatial)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			base := (bi*c + ci) * spatial
			var s float32
			for i := 0; i < spatial; i++ {
				s += x.Data[base+i]
			}
			l.y.Data[bi*c+ci] = s * inv
		}
	}
	return l.y
}

func (l *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b, c, h, w := l.inShape[0], l.inShape[1], l.inShape[2], l.inShape[3]
	spatial := h * w
	inv := float32(1) / float32(spatial)
	for bi := 0; bi < b; bi++ {
		for ci := 0; ci < c; ci++ {
			g := dout.Data[bi*c+ci] * inv
			base := (bi*c + ci) * spatial
			for i := 0; i < spatial; i++ {
				l.dx.Data[base+i] = g
			}
		}
	}
	return l.dx
}
