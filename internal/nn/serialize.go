package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Checkpoint format: a small header guarding against shape drift, followed
// by the raw little-endian float32 parameter vector.
//
//	magic   uint32  "DTCP"
//	version uint32
//	segs    uint32  number of segments
//	per segment: nameLen uint32, name bytes, length uint32
//	params  []float32
const (
	checkpointMagic   = 0x44544350 // "DTCP"
	checkpointVersion = 1
)

// Save writes the model's parameters as a checkpoint.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := writeU32(checkpointMagic); err != nil {
		return err
	}
	if err := writeU32(checkpointVersion); err != nil {
		return err
	}
	segs := m.Segments()
	if err := writeU32(uint32(len(segs))); err != nil {
		return err
	}
	for _, s := range segs {
		if err := writeU32(uint32(len(s.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s.Name); err != nil {
			return err
		}
		if err := writeU32(uint32(s.Len)); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.FlatParams(nil)); err != nil {
		return err
	}
	return bw.Flush()
}

// Load restores parameters saved by Save into the model. The model's
// architecture (segment names and sizes) must match the checkpoint exactly.
func (m *Model) Load(r io.Reader) error {
	br := bufio.NewReader(r)
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	magic, err := readU32()
	if err != nil {
		return fmt.Errorf("nn: reading checkpoint header: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: not a checkpoint (magic %#x)", magic)
	}
	version, err := readU32()
	if err != nil {
		return err
	}
	if version != checkpointVersion {
		return fmt.Errorf("nn: unsupported checkpoint version %d", version)
	}
	nSegs, err := readU32()
	if err != nil {
		return err
	}
	segs := m.Segments()
	if int(nSegs) != len(segs) {
		return fmt.Errorf("nn: checkpoint has %d segments, model has %d", nSegs, len(segs))
	}
	for i := 0; i < int(nSegs); i++ {
		nameLen, err := readU32()
		if err != nil {
			return err
		}
		if nameLen > 4096 {
			return fmt.Errorf("nn: implausible segment name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		segLen, err := readU32()
		if err != nil {
			return err
		}
		if string(name) != segs[i].Name || int(segLen) != segs[i].Len {
			return fmt.Errorf("nn: checkpoint segment %d is %s[%d], model expects %s[%d]",
				i, name, segLen, segs[i].Name, segs[i].Len)
		}
	}
	flat := make([]float32, m.NumParams())
	if err := binary.Read(br, binary.LittleEndian, flat); err != nil {
		return fmt.Errorf("nn: reading parameters: %w", err)
	}
	m.SetFlatParams(flat)
	return nil
}
