package nn

import (
	"fmt"
	"math"

	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

// Dense is a fully connected layer: y = x·Wᵀ + b, with x of shape [B, In].
// W is stored [Out, In]. With fuseReLU set, the ReLU activation runs inside
// the GEMM epilogue (MatMulBiasReLU) instead of as a separate layer — same
// bits, one less pass over the activations. The backward mask is recovered
// from the output itself: out > 0 iff the pre-activation was > 0 (anything
// else, including NaN, was clamped to 0), so no mask storage is needed.
type Dense struct {
	name     string
	In, Out  int
	fuseReLU bool
	w, b     *Param
	x        *tensor.Tensor // cached input
	y        *tensor.Tensor
	dx       *tensor.Tensor
	dy       *tensor.Tensor // ReLU-masked dout (fused only)
	dwTmp    *tensor.Tensor
	lastSize int
	arena    *tensor.Arena
}

// NewDense creates a dense layer with He-initialized weights.
func NewDense(name string, in, out int, r *rng.RNG) *Dense {
	d := &Dense{name: name, In: in, Out: out}
	w := tensor.New(out, in)
	w.RandNormal(r, math.Sqrt(2/float64(in)))
	d.w = &Param{Name: name + ".w", W: w, G: tensor.New(out, in)}
	d.b = &Param{Name: name + ".b", W: tensor.New(out), G: tensor.New(out)}
	d.dwTmp = tensor.New(out, in)
	return d
}

// NewDenseReLU creates a dense layer with the ReLU activation fused into the
// GEMM epilogue. Bit-identical to NewDense followed by NewReLU (same RNG
// draws, same parameter names, same forward/backward values).
func NewDenseReLU(name string, in, out int, r *rng.RNG) *Dense {
	d := NewDense(name, in, out, r)
	d.fuseReLU = true
	return d
}

func (d *Dense) Name() string             { return d.name }
func (d *Dense) Params() []*Param         { return []*Param{d.w, d.b} }
func (d *Dense) setArena(a *tensor.Arena) { d.arena = a }

func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 2 || x.Shape[1] != d.In {
		panic(fmt.Sprintf("nn: dense %s got input %v, want [B %d]", d.name, x.Shape, d.In))
	}
	b := x.Shape[0]
	if d.y == nil || d.lastSize != b {
		// y, dy and dx are fully overwritten below, so recycled (dirty)
		// arena buffers are safe.
		d.arena.PutTensor(d.y)
		d.arena.PutTensor(d.dx)
		d.arena.PutTensor(d.dy)
		d.y = d.arena.GetTensor(b, d.Out)
		d.dx = d.arena.GetTensor(b, d.In)
		d.dy = nil
		if d.fuseReLU {
			d.dy = d.arena.GetTensor(b, d.Out)
		}
		d.lastSize = b
	}
	d.x = x
	if d.fuseReLU {
		tensor.MatMulBiasReLU(x, d.w.W, d.y, d.b.W.Data)
	} else {
		tensor.MatMulBias(x, d.w.W, d.y, d.b.W.Data)
	}
	return d.y
}

func (d *Dense) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.fuseReLU {
		// Recover the ReLU mask from the fused output: out > 0 iff the
		// pre-activation was kept.
		yd, dd, md := d.y.Data, dout.Data, d.dy.Data
		for i, v := range yd {
			if v > 0 {
				md[i] = dd[i]
			} else {
				md[i] = 0
			}
		}
		dout = d.dy
	}
	b := dout.Shape[0]
	// dW += doutᵀ·x
	tensor.MatMulTransA(dout, d.x, d.dwTmp)
	d.w.G.AddScaled(1, d.dwTmp)
	// db += column sums of dout
	gd, dd := d.b.G.Data, dout.Data
	for i := 0; i < b; i++ {
		row := dd[i*d.Out : i*d.Out+d.Out]
		for j, v := range row {
			gd[j] += v
		}
	}
	// dx = dout·W
	tensor.MatMul(dout, d.w.W, d.dx)
	return d.dx
}

// ReLU applies max(0, x) elementwise.
type ReLU struct {
	name  string
	mask  []bool
	y     *tensor.Tensor
	dx    *tensor.Tensor
	arena *tensor.Arena
}

// NewReLU creates a ReLU activation layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

func (l *ReLU) Name() string             { return l.name }
func (l *ReLU) Params() []*Param         { return nil }
func (l *ReLU) setArena(a *tensor.Arena) { l.arena = a }

func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n := x.Size()
	if l.y == nil || l.y.Size() != n {
		l.arena.PutTensor(l.y)
		l.arena.PutTensor(l.dx)
		l.y = l.arena.GetTensor(x.Shape...)
		l.dx = l.arena.GetTensor(x.Shape...)
		l.mask = make([]bool, n)
	}
	l.y.Shape = append(l.y.Shape[:0], x.Shape...)
	l.dx.Shape = append(l.dx.Shape[:0], x.Shape...)
	yd := l.y.Data
	for i, v := range x.Data {
		if v > 0 {
			yd[i] = v
			l.mask[i] = true
		} else {
			yd[i] = 0
			l.mask[i] = false
		}
	}
	return l.y
}

func (l *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dd := l.dx.Data
	for i, v := range dout.Data {
		if l.mask[i] {
			dd[i] = v
		} else {
			dd[i] = 0
		}
	}
	return l.dx
}

// Conv2D is a 2-D convolution over [B, C, H, W] inputs, implemented by
// im2col lowering to GEMM. Weights are stored [OutC, InC·kh·kw]. The whole
// mini-batch is lowered into one patch-row matrix of shape
// [B·outH·outW, InC·K·K], so forward, dW and dcols each run as a single
// large GEMM instead of B small ones — large GEMMs amortize the kernel's
// blocking overhead and cross its parallel-dispatch threshold.
type Conv2D struct {
	name                  string
	InC, OutC             int
	K, Stride, Pad        int
	fuseReLU              bool
	w, b                  *Param
	cols                  *tensor.Tensor // batched patch rows [B·outH·outW, InC·K·K]
	yt, dyt               *tensor.Tensor // channel-minor activations/grads [B·outH·outW, OutC]
	x                     *tensor.Tensor
	y, dx                 *tensor.Tensor
	dwTmp, dcols          *tensor.Tensor // dcols matches cols' shape
	h, wIn, outH, outW    int
	lastBatch, lastInSize int
	arena                 *tensor.Arena
	// reusable header tensor viewing per-sample slices (no per-call allocs)
	hdrIn tensor.Tensor
}

// NewConv2D creates a convolution layer with He-initialized weights.
func NewConv2D(name string, inC, outC, k, stride, pad int, r *rng.RNG) *Conv2D {
	c := &Conv2D{name: name, InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad}
	fanIn := inC * k * k
	w := tensor.New(outC, fanIn)
	w.RandNormal(r, math.Sqrt(2/float64(fanIn)))
	c.w = &Param{Name: name + ".w", W: w, G: tensor.New(outC, fanIn)}
	c.b = &Param{Name: name + ".b", W: tensor.New(outC), G: tensor.New(outC)}
	c.dwTmp = tensor.New(outC, fanIn)
	return c
}

// NewConv2DReLU creates a convolution layer with the ReLU activation fused
// into the GEMM epilogue. Bit-identical to NewConv2D followed by NewReLU:
// bias-add and clamp happen on the channel-minor GEMM output before the
// scatter, which permutes but never re-rounds the values. The backward mask
// is recovered from the (post-ReLU) channel-minor activations.
func NewConv2DReLU(name string, inC, outC, k, stride, pad int, r *rng.RNG) *Conv2D {
	c := NewConv2D(name, inC, outC, k, stride, pad, r)
	c.fuseReLU = true
	return c
}

func (c *Conv2D) Name() string             { return c.name }
func (c *Conv2D) Params() []*Param         { return []*Param{c.w, c.b} }
func (c *Conv2D) setArena(a *tensor.Arena) { c.arena = a }

func (c *Conv2D) setup(x *tensor.Tensor) {
	b := x.Shape[0]
	c.h, c.wIn = x.Shape[2], x.Shape[3]
	c.outH = (c.h+2*c.Pad-c.K)/c.Stride + 1
	c.outW = (c.wIn+2*c.Pad-c.K)/c.Stride + 1
	f := c.InC * c.K * c.K
	rows := b * c.outH * c.outW
	if c.lastBatch != b || c.lastInSize != x.Size() {
		// All of these are fully overwritten each pass (Im2colRows, the
		// gather/scatter loops and the GEMMs write every element; Col2imRows
		// zeroes first), so dirty arena buffers are safe.
		c.arena.PutTensor(c.cols)
		c.arena.PutTensor(c.yt)
		c.arena.PutTensor(c.dyt)
		c.arena.PutTensor(c.y)
		c.arena.PutTensor(c.dx)
		c.arena.PutTensor(c.dcols)
		c.cols = c.arena.GetTensor(rows, f)
		c.yt = c.arena.GetTensor(rows, c.OutC)
		c.dyt = c.arena.GetTensor(rows, c.OutC)
		c.y = c.arena.GetTensor(b, c.OutC, c.outH, c.outW)
		c.dx = c.arena.GetTensor(x.Shape...)
		c.dcols = c.arena.GetTensor(rows, f)
		c.lastBatch, c.lastInSize = b, x.Size()
	}
}

func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if len(x.Shape) != 4 || x.Shape[1] != c.InC {
		panic(fmt.Sprintf("nn: conv %s got input %v, want [B %d H W]", c.name, x.Shape, c.InC))
	}
	c.setup(x)
	c.x = x
	b := x.Shape[0]
	sampleIn := c.InC * c.h * c.wIn
	sampleOut := c.OutC * c.outH * c.outW
	nCols := c.outH * c.outW
	f := c.InC * c.K * c.K
	for i := 0; i < b; i++ {
		in3 := c.hdrIn.Rebind(x.Data[i*sampleIn:(i+1)*sampleIn], c.InC, c.h, c.wIn)
		tensor.Im2colRows(in3, c.K, c.K, c.Stride, c.Pad, c.cols.Data[i*nCols*f:(i+1)*nCols*f])
	}
	// One GEMM for the whole mini-batch, bias (and, fused, ReLU) applied in
	// the epilogue: yt = cols·Wᵀ + b.
	if c.fuseReLU {
		tensor.MatMulBiasReLU(c.cols, c.w.W, c.yt, c.b.W.Data)
	} else {
		tensor.MatMulBias(c.cols, c.w.W, c.yt, c.b.W.Data)
	}
	// Scatter the channel-minor rows into [B, OutC, outH·outW].
	yd, td := c.y.Data, c.yt.Data
	for i := 0; i < b; i++ {
		out := yd[i*sampleOut : (i+1)*sampleOut]
		rows := td[i*nCols*c.OutC:]
		for pos := 0; pos < nCols; pos++ {
			src := rows[pos*c.OutC : pos*c.OutC+c.OutC]
			for ch, v := range src {
				out[ch*nCols+pos] = v
			}
		}
	}
	return c.y
}

func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b := dout.Shape[0]
	sampleOut := c.OutC * c.outH * c.outW
	sampleIn := c.InC * c.h * c.wIn
	nCols := c.outH * c.outW
	f := c.InC * c.K * c.K
	// Gather dout into the channel-minor patch-row order of c.cols. For the
	// fused layer the ReLU mask rides along: c.yt holds the post-ReLU
	// activations, and masking before vs after the gather is the same
	// because the scatter is a bijection.
	dd, td, yt := dout.Data, c.dyt.Data, c.yt.Data
	for i := 0; i < b; i++ {
		src := dd[i*sampleOut : (i+1)*sampleOut]
		rows := td[i*nCols*c.OutC:]
		actRows := yt[i*nCols*c.OutC:]
		for pos := 0; pos < nCols; pos++ {
			dst := rows[pos*c.OutC : pos*c.OutC+c.OutC]
			if c.fuseReLU {
				act := actRows[pos*c.OutC : pos*c.OutC+c.OutC]
				for ch := range dst {
					if act[ch] > 0 {
						dst[ch] = src[ch*nCols+pos]
					} else {
						dst[ch] = 0
					}
				}
			} else {
				for ch := range dst {
					dst[ch] = src[ch*nCols+pos]
				}
			}
		}
	}
	// dW += dytᵀ·cols — one GEMM over every sample's patches.
	tensor.MatMulTransA(c.dyt, c.cols, c.dwTmp)
	c.w.G.AddScaled(1, c.dwTmp)
	// db += column sums of dyt.
	gb := c.b.G.Data
	for r := 0; r < b*nCols; r++ {
		row := td[r*c.OutC : r*c.OutC+c.OutC]
		for ch, v := range row {
			gb[ch] += v
		}
	}
	// dcols = dyt·W in one GEMM, then scatter each sample back to image
	// space.
	tensor.MatMul(c.dyt, c.w.W, c.dcols)
	cd := c.dcols.Data
	for i := 0; i < b; i++ {
		dx3 := c.hdrIn.Rebind(c.dx.Data[i*sampleIn:(i+1)*sampleIn], c.InC, c.h, c.wIn)
		tensor.Col2imRows(cd[i*nCols*f:(i+1)*nCols*f], c.InC, c.h, c.wIn, c.K, c.K, c.Stride, c.Pad, dx3)
	}
	return c.dx
}

// MaxPool halves spatial dimensions with 2×2/stride-2 max pooling.
type MaxPool struct {
	name      string
	idx       []int32
	y, dx     *tensor.Tensor
	lastIn    int
	inShape   []int
	sampleIn  int
	sampleOut int
	arena     *tensor.Arena
	// reusable per-sample view headers
	hdrIn, hdrOut tensor.Tensor
}

// NewMaxPool creates a 2×2 stride-2 max-pooling layer.
func NewMaxPool(name string) *MaxPool { return &MaxPool{name: name} }

func (l *MaxPool) Name() string             { return l.name }
func (l *MaxPool) Params() []*Param         { return nil }
func (l *MaxPool) setArena(a *tensor.Arena) { l.arena = a }

func (l *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	b, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if h%2 != 0 || w%2 != 0 {
		panic(fmt.Sprintf("nn: maxpool %s needs even spatial dims, got %v", l.name, x.Shape))
	}
	if l.y == nil || l.lastIn != x.Size() {
		l.arena.PutTensor(l.y)
		l.arena.PutTensor(l.dx)
		l.y = l.arena.GetTensor(b, ch, h/2, w/2)
		l.dx = l.arena.GetTensor(x.Shape...)
		l.idx = make([]int32, b*ch*(h/2)*(w/2))
		l.lastIn = x.Size()
		l.inShape = append([]int(nil), x.Shape...)
		l.sampleIn = ch * h * w
		l.sampleOut = ch * (h / 2) * (w / 2)
	}
	for i := 0; i < b; i++ {
		in3 := l.hdrIn.Rebind(x.Data[i*l.sampleIn:(i+1)*l.sampleIn], ch, h, w)
		out3 := l.hdrOut.Rebind(l.y.Data[i*l.sampleOut:(i+1)*l.sampleOut], ch, h/2, w/2)
		tensor.MaxPool2x2(in3, out3, l.idx[i*l.sampleOut:(i+1)*l.sampleOut])
	}
	return l.y
}

func (l *MaxPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	b := dout.Shape[0]
	ch, h, w := l.inShape[1], l.inShape[2], l.inShape[3]
	for i := 0; i < b; i++ {
		do3 := l.hdrOut.Rebind(dout.Data[i*l.sampleOut:(i+1)*l.sampleOut], ch, h/2, w/2)
		dx3 := l.hdrIn.Rebind(l.dx.Data[i*l.sampleIn:(i+1)*l.sampleIn], ch, h, w)
		tensor.MaxPool2x2Backward(do3, l.idx[i*l.sampleOut:(i+1)*l.sampleOut], dx3)
	}
	return l.dx
}

// Flatten reshapes [B, ...] to [B, rest] without copying. Its outputs are
// reusable header tensors viewing the input's storage, so it never
// allocates after the first pass.
type Flatten struct {
	name    string
	inShape []int
	y, dx   tensor.Tensor
}

// NewFlatten creates a flattening layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

func (l *Flatten) Name() string     { return l.name }
func (l *Flatten) Params() []*Param { return nil }

func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.inShape = append(l.inShape[:0], x.Shape...)
	rest := x.Size() / x.Shape[0]
	return l.y.Rebind(x.Data, x.Shape[0], rest)
}

func (l *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return l.dx.Rebind(dout.Data, l.inShape...)
}

// Residual wraps an inner layer stack F and computes y = F(x) + x, the
// skip-connection building block of ResNet-style models. Input and output
// shapes of the inner stack must match.
type Residual struct {
	name  string
	inner []Layer
	y, dx *tensor.Tensor
	arena *tensor.Arena
}

// NewResidual creates a residual block around the inner layers.
func NewResidual(name string, inner ...Layer) *Residual {
	return &Residual{name: name, inner: inner}
}

func (l *Residual) Name() string { return l.name }

func (l *Residual) setArena(a *tensor.Arena) {
	l.arena = a
	for _, in := range l.inner {
		if u, ok := in.(arenaUser); ok {
			u.setArena(a)
		}
	}
}

func (l *Residual) Params() []*Param {
	var ps []*Param
	for _, in := range l.inner {
		ps = append(ps, in.Params()...)
	}
	return ps
}

func (l *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	h := x
	for _, in := range l.inner {
		h = in.Forward(h, train)
	}
	if h.Size() != x.Size() {
		panic(fmt.Sprintf("nn: residual %s shape mismatch: in %v out %v", l.name, x.Shape, h.Shape))
	}
	if l.y == nil || l.y.Size() != h.Size() {
		l.arena.PutTensor(l.y)
		l.arena.PutTensor(l.dx)
		l.y = l.arena.GetTensor(h.Shape...)
		l.dx = l.arena.GetTensor(x.Shape...)
	}
	copy(l.y.Data, h.Data)
	tensor.AxpyF32(1, x.Data, l.y.Data)
	return l.y
}

func (l *Residual) Backward(dout *tensor.Tensor) *tensor.Tensor {
	d := dout
	for i := len(l.inner) - 1; i >= 0; i-- {
		d = l.inner[i].Backward(d)
	}
	copy(l.dx.Data, d.Data)
	tensor.AxpyF32(1, dout.Data, l.dx.Data)
	return l.dx
}
