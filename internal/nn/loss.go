package nn

import (
	"fmt"
	"math"

	"disttrain/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// ([B, C]) against integer labels, the number of correct argmax
// predictions, and dL/dlogits (scaled by 1/B so downstream gradients are
// per-example means). probs is an optional scratch tensor of the same shape
// reused across calls; the (possibly newly allocated) scratch is returned.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int, probs *tensor.Tensor) (loss float64, correct int, dlogits *tensor.Tensor, scratch *tensor.Tensor) {
	b, c := logits.Shape[0], logits.Shape[1]
	if len(labels) != b {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), b))
	}
	if probs == nil || probs.Shape[0] != b || probs.Shape[1] != c {
		probs = tensor.New(b, c)
	}
	ld, pd := logits.Data, probs.Data
	inv := 1 / float32(b)
	for i := 0; i < b; i++ {
		row := ld[i*c : i*c+c]
		prow := pd[i*c : i*c+c]
		// max-subtraction for numerical stability; also find argmax.
		maxV := row[0]
		argmax := 0
		for j, v := range row {
			if v > maxV {
				maxV, argmax = v, j
			}
		}
		if argmax == labels[i] {
			correct++
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - maxV))
			prow[j] = float32(e)
			sum += e
		}
		invSum := float32(1 / sum)
		for j := range prow {
			prow[j] *= invSum
		}
		p := float64(prow[labels[i]])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		// dL/dlogit = (softmax - onehot)/B, written in place over probs.
		prow[labels[i]] -= 1
		for j := range prow {
			prow[j] *= inv
		}
	}
	return loss / float64(b), correct, probs, probs
}
