package nn

import (
	"math"
	"testing"

	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

// gradCheck compares analytic gradients against central finite differences
// for every parameter of the model on one batch.
func gradCheck(t *testing.T, m *Model, x *tensor.Tensor, labels []int, samples int, tol float64) {
	t.Helper()
	m.ZeroGrads()
	m.Loss(x, labels)
	analytic := m.FlatGrads(nil)
	flat := m.FlatParams(nil)

	n := m.NumParams()
	step := n / samples
	if step == 0 {
		step = 1
	}
	const eps = 1e-3
	checked, outliers := 0, 0
	for i := 0; i < n; i += step {
		orig := flat[i]
		flat[i] = orig + eps
		m.SetFlatParams(flat)
		lp, _ := lossOnly(m, x, labels)
		flat[i] = orig - eps
		m.SetFlatParams(flat)
		lm, _ := lossOnly(m, x, labels)
		flat[i] = orig
		m.SetFlatParams(flat)

		numeric := (lp - lm) / (2 * eps)
		a := float64(analytic[i])
		denom := math.Max(1, math.Max(math.Abs(a), math.Abs(numeric)))
		if math.Abs(a-numeric)/denom > tol {
			// Max-pool argmax and ReLU kinks make the loss piecewise smooth;
			// a perturbation can land across a kink and corrupt the finite
			// difference. Tolerate rare outliers but not systematic error.
			outliers++
			t.Logf("param %d: analytic %g vs numeric %g (possible kink)", i, a, numeric)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no parameters checked")
	}
	if float64(outliers) > 0.1*float64(checked)+1 {
		t.Fatalf("%d/%d gradient checks failed — systematic backward error", outliers, checked)
	}
}

func lossOnly(m *Model, x *tensor.Tensor, labels []int) (float64, int) {
	logits := m.Forward(x, true)
	loss, correct, _, _ := SoftmaxCrossEntropy(logits, labels, nil)
	return loss, correct
}

func TestGradCheckMLP(t *testing.T) {
	r := rng.New(1)
	m := NewMLP(r, 4, 8, 3)
	x := tensor.New(5, 4)
	x.RandNormal(r, 1)
	labels := []int{0, 1, 2, 0, 1}
	gradCheck(t, m, x, labels, 60, 2e-2)
}

func TestGradCheckMiniCNN(t *testing.T) {
	r := rng.New(2)
	m := NewMiniCNN(r, 4)
	x := tensor.New(2, 1, 16, 16)
	x.RandNormal(r, 1)
	labels := []int{1, 3}
	gradCheck(t, m, x, labels, 40, 3e-2)
}

func TestGradCheckMiniResNet(t *testing.T) {
	r := rng.New(3)
	m := NewMiniResNet(r, 4)
	x := tensor.New(2, 1, 16, 16)
	x.RandNormal(r, 1)
	labels := []int{0, 2}
	gradCheck(t, m, x, labels, 40, 3e-2)
}

func TestGradCheckMiniVGG(t *testing.T) {
	r := rng.New(4)
	m := NewMiniVGG(r, 4)
	x := tensor.New(2, 1, 16, 16)
	x.RandNormal(r, 1)
	labels := []int{0, 3}
	gradCheck(t, m, x, labels, 40, 3e-2)
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over C classes give loss = ln(C).
	logits := tensor.New(2, 4)
	loss, correct, dl, _ := SoftmaxCrossEntropy(logits, []int{0, 1}, nil)
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("uniform loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// argmax of all-equal logits is index 0, so exactly one "correct" (label 0).
	if correct != 1 {
		t.Fatalf("correct = %d, want 1", correct)
	}
	// Gradient rows must each sum to zero (softmax minus one-hot).
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += float64(dl.Data[i*4+j])
		}
		if math.Abs(s) > 1e-6 {
			t.Fatalf("dlogits row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := tensor.FromSlice([]float32{1000, 0, -1000}, 1, 3)
	loss, _, dl, _ := SoftmaxCrossEntropy(logits, []int{0}, nil)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v", loss)
	}
	for _, v := range dl.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("NaN in gradient")
		}
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %v", loss)
	}
}

func TestFlatRoundTrip(t *testing.T) {
	r := rng.New(5)
	m := NewMiniVGG(r, 3)
	flat := m.FlatParams(nil)
	if len(flat) != m.NumParams() {
		t.Fatalf("flat len %d, want %d", len(flat), m.NumParams())
	}
	// Perturb, set, read back.
	for i := range flat {
		flat[i] += 0.25
	}
	m.SetFlatParams(flat)
	got := m.FlatParams(nil)
	for i := range flat {
		if got[i] != flat[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestSegmentsCoverFlatVector(t *testing.T) {
	r := rng.New(6)
	for _, mk := range []func() *Model{
		func() *Model { return NewMLP(r, 3, 5, 2) },
		func() *Model { return NewMiniCNN(r, 3) },
		func() *Model { return NewMiniResNet(r, 3) },
		func() *Model { return NewMiniVGG(r, 3) },
	} {
		m := mk()
		segs := m.Segments()
		off := 0
		for _, s := range segs {
			if s.Off != off {
				t.Fatalf("%s: segment %s at %d, want %d", m.Name, s.Name, s.Off, off)
			}
			if s.Len <= 0 {
				t.Fatalf("%s: empty segment %s", m.Name, s.Name)
			}
			off += s.Len
		}
		if off != m.NumParams() {
			t.Fatalf("%s: segments cover %d, want %d", m.Name, off, m.NumParams())
		}
	}
}

func TestMiniVGGHasSkewedLayer(t *testing.T) {
	m := NewMiniVGG(rng.New(7), 10)
	var maxSeg, total int
	for _, s := range m.Segments() {
		if s.Len > maxSeg {
			maxSeg = s.Len
		}
		total += s.Len
	}
	if frac := float64(maxSeg) / float64(total); frac < 0.6 {
		t.Fatalf("largest layer holds %.2f of params; VGG-like skew requires > 0.6", frac)
	}
}

func TestGradAccumulation(t *testing.T) {
	r := rng.New(8)
	m := NewMLP(r, 3, 4, 2)
	x := tensor.New(4, 3)
	x.RandNormal(r, 1)
	labels := []int{0, 1, 0, 1}

	m.ZeroGrads()
	m.Loss(x, labels)
	g1 := m.FlatGrads(nil)
	m.Loss(x, labels) // accumulate a second time without zeroing
	g2 := m.FlatGrads(nil)
	for i := range g1 {
		if math.Abs(float64(g2[i]-2*g1[i])) > 1e-4 {
			t.Fatalf("gradient did not accumulate at %d: %v vs 2*%v", i, g2[i], g1[i])
		}
	}
}

func TestAxpyParams(t *testing.T) {
	r := rng.New(9)
	m := NewMLP(r, 2, 3, 2)
	before := m.FlatParams(nil)
	delta := make([]float32, m.NumParams())
	for i := range delta {
		delta[i] = float32(i%5) * 0.1
	}
	m.AxpyParams(-0.5, delta)
	after := m.FlatParams(nil)
	for i := range before {
		want := before[i] - 0.5*delta[i]
		if math.Abs(float64(after[i]-want)) > 1e-6 {
			t.Fatalf("AxpyParams mismatch at %d", i)
		}
	}
}

func TestDeterministicInitialization(t *testing.T) {
	m1 := NewMiniCNN(rng.New(11), 5)
	m2 := NewMiniCNN(rng.New(11), 5)
	f1, f2 := m1.FlatParams(nil), m2.FlatParams(nil)
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("same seed produced different initial weights")
		}
	}
}

func TestTrainingReducesLossMLP(t *testing.T) {
	// A sanity end-to-end: plain SGD on a separable 2-class problem.
	r := rng.New(12)
	m := NewMLP(r, 2, 16, 2)
	const n = 64
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		x.Data[i*2] = float32(r.NormFloat64())*0.3 + float32(cls*2-1)
		x.Data[i*2+1] = float32(r.NormFloat64()) * 0.3
	}
	first, _ := lossOnly(m, x, labels)
	grads := make([]float32, m.NumParams())
	for step := 0; step < 60; step++ {
		m.ZeroGrads()
		m.Loss(x, labels)
		m.FlatGrads(grads)
		m.AxpyParams(-0.5, grads)
	}
	last, acc := m.Evaluate(x, labels)
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if acc < 0.95 {
		t.Fatalf("accuracy %v on separable problem", acc)
	}
}

func TestResidualIdentityGradient(t *testing.T) {
	// With inner weights zeroed, a residual block is the identity and must
	// pass gradients through unchanged.
	r := rng.New(13)
	res := NewResidual("res",
		NewConv2D("c1", 2, 2, 3, 1, 1, r),
		NewReLU("rl"),
		NewConv2D("c2", 2, 2, 3, 1, 1, r),
	)
	for _, p := range res.Params() {
		p.W.Zero()
	}
	x := tensor.New(1, 2, 4, 4)
	x.RandNormal(r, 1)
	y := res.Forward(x, true)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("zero-weight residual is not identity")
		}
	}
	dout := tensor.New(1, 2, 4, 4)
	dout.RandNormal(r, 1)
	dx := res.Backward(dout)
	for i := range dout.Data {
		if dx.Data[i] != dout.Data[i] {
			t.Fatal("zero-weight residual gradient is not identity")
		}
	}
}

func TestFactoryByName(t *testing.T) {
	for _, name := range []string{"mlp", "minicnn", "miniresnet", "minivgg"} {
		f, err := FactoryByName(name, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		m := f(rng.New(1))
		if m.NumParams() == 0 {
			t.Fatalf("%s: no params", name)
		}
	}
	if _, err := FactoryByName("nope", 4); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestEvaluateMatchesLossForward(t *testing.T) {
	r := rng.New(14)
	m := NewMiniCNN(r, 3)
	x := tensor.New(3, 1, 16, 16)
	x.RandNormal(r, 1)
	labels := []int{0, 1, 2}
	l1, _ := lossOnly(m, x, labels)
	l2, _ := m.Evaluate(x, labels)
	if math.Abs(l1-l2) > 1e-6 {
		t.Fatalf("Evaluate loss %v != forward loss %v", l2, l1)
	}
}

func BenchmarkMiniCNNStep(b *testing.B) {
	r := rng.New(1)
	m := NewMiniCNN(r, 10)
	x := tensor.New(16, 1, 16, 16)
	x.RandNormal(r, 1)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 10
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		m.Loss(x, labels)
	}
}

func BenchmarkMLPStep(b *testing.B) {
	r := rng.New(1)
	m := NewMLP(r, 2, 32, 32, 3)
	x := tensor.New(32, 2)
	x.RandNormal(r, 1)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 3
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		m.Loss(x, labels)
	}
}

func TestMiniResNetBNTrains(t *testing.T) {
	r := rng.New(77)
	m := NewMiniResNetBN(r, 4)
	if m.NumParams() == 0 {
		t.Fatal("no params")
	}
	x := tensor.New(8, 1, 16, 16)
	x.RandNormal(r, 1)
	labels := make([]int, 8)
	// Separable synthetic target: label by quadrant sign pattern baked into
	// the inputs so a small net can fit it.
	for i := range labels {
		labels[i] = i % 4
		for j := 0; j < 64; j++ {
			x.Data[i*256+labels[i]*64+j] += 2
		}
	}
	first, _ := lossOnly(m, x, labels)
	grads := make([]float32, m.NumParams())
	for step := 0; step < 80; step++ {
		m.ZeroGrads()
		m.Loss(x, labels)
		m.FlatGrads(grads)
		m.AxpyParams(-0.05, grads)
	}
	last, acc := m.Evaluate(x, labels)
	if last >= first {
		t.Fatalf("BN-ResNet loss did not decrease: %v -> %v", first, last)
	}
	if acc < 0.9 {
		t.Fatalf("BN-ResNet training accuracy %v", acc)
	}
}

func TestGradCheckMiniResNetBN(t *testing.T) {
	r := rng.New(78)
	m := NewMiniResNetBN(r, 3)
	x := tensor.New(4, 1, 16, 16)
	x.RandNormal(r, 1)
	gradCheck(t, m, x, []int{0, 1, 2, 0}, 30, 4e-2)
}
