package nn

import (
	"math"
	"testing"

	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	x := tensor.New(8, 2)
	r := rng.New(1)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64()*3 + 5)
	}
	y := bn.Forward(x, true)
	// Each channel of the output must have ~zero mean and ~unit variance.
	for c := 0; c < 2; c++ {
		var sum, sq float64
		for b := 0; b < 8; b++ {
			v := float64(y.Data[b*2+c])
			sum += v
			sq += v * v
		}
		mean := sum / 8
		variance := sq/8 - mean*mean
		if math.Abs(mean) > 1e-5 {
			t.Fatalf("channel %d mean %v", c, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d var %v", c, variance)
		}
	}
}

func TestBatchNorm4DShapes(t *testing.T) {
	bn := NewBatchNorm("bn", 3)
	x := tensor.New(2, 3, 4, 4)
	r := rng.New(2)
	x.RandNormal(r, 2)
	y := bn.Forward(x, true)
	if y.Shape[0] != 2 || y.Shape[1] != 3 || y.Shape[2] != 4 || y.Shape[3] != 4 {
		t.Fatalf("shape %v", y.Shape)
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	r := rng.New(3)
	// Train on data with mean 10: running stats drift toward it.
	for step := 0; step < 200; step++ {
		x := tensor.New(16, 1)
		for i := range x.Data {
			x.Data[i] = float32(r.NormFloat64() + 10)
		}
		bn.Forward(x, true)
	}
	// Eval on the same distribution must normalize toward zero mean.
	x := tensor.New(16, 1)
	for i := range x.Data {
		x.Data[i] = float32(r.NormFloat64() + 10)
	}
	y := bn.Forward(x, false)
	var sum float64
	for _, v := range y.Data {
		sum += float64(v)
	}
	if m := sum / 16; math.Abs(m) > 0.5 {
		t.Fatalf("eval mean %v, want ~0 via running stats", m)
	}
}

func TestGradCheckBatchNormCNN(t *testing.T) {
	r := rng.New(4)
	m := NewModel("bncnn",
		NewConv2D("c1", 1, 4, 3, 1, 1, r),
		NewBatchNorm("bn1", 4),
		NewReLU("r1"),
		NewFlatten("f"),
		NewDense("fc", 4*8*8, 3, r),
	)
	x := tensor.New(3, 1, 8, 8)
	x.RandNormal(r, 1)
	gradCheck(t, m, x, []int{0, 1, 2}, 40, 3e-2)
}

func TestGradCheckGlobalAvgPool(t *testing.T) {
	r := rng.New(5)
	m := NewModel("gapnet",
		NewConv2D("c1", 1, 4, 3, 1, 1, r),
		NewReLU("r1"),
		NewGlobalAvgPool("gap"),
		NewDense("fc", 4, 3, r),
	)
	x := tensor.New(2, 1, 6, 6)
	x.RandNormal(r, 1)
	gradCheck(t, m, x, []int{0, 2}, 40, 2e-2)
}

func TestGlobalAvgPoolValues(t *testing.T) {
	gap := NewGlobalAvgPool("gap")
	x := tensor.FromSlice([]float32{
		1, 2, 3, 4, // channel 0
		10, 20, 30, 40, // channel 1
	}, 1, 2, 2, 2)
	y := gap.Forward(x, true)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Fatalf("gap = %v", y.Data)
	}
	dout := tensor.FromSlice([]float32{4, 8}, 1, 2)
	dx := gap.Backward(dout)
	if dx.Data[0] != 1 || dx.Data[4] != 2 {
		t.Fatalf("gap backward = %v", dx.Data)
	}
}

func TestDropoutTrainEval(t *testing.T) {
	r := rng.New(6)
	d := NewDropout("drop", 0.5, r)
	x := tensor.New(1, 1000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros := 0
	var sum float64
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
		sum += float64(v)
	}
	if zeros < 400 || zeros > 600 {
		t.Fatalf("dropped %d of 1000 at p=0.5", zeros)
	}
	// Inverted dropout preserves the expected activation sum.
	if math.Abs(sum-1000) > 120 {
		t.Fatalf("activation mass %v, want ~1000", sum)
	}
	// Eval: identity.
	y = d.Forward(x, false)
	for _, v := range y.Data {
		if v != 1 {
			t.Fatal("eval dropout not identity")
		}
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	r := rng.New(7)
	d := NewDropout("drop", 0.3, r)
	x := tensor.New(1, 64)
	x.Fill(1)
	y := d.Forward(x, true)
	dout := tensor.New(1, 64)
	dout.Fill(1)
	dx := d.Backward(dout)
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatalf("mask mismatch at %d", i)
		}
	}
}

func TestDropoutPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout("bad", 1.0, rng.New(1))
}

func TestBatchNormTrainingImprovesDeepNet(t *testing.T) {
	// A BN-equipped model must train on the shapes-like task; this guards
	// the full forward/backward integration, not just the gradcheck.
	r := rng.New(8)
	m := NewModel("bnnet",
		NewDense("fc1", 2, 32, r),
		NewBatchNorm("bn", 32),
		NewReLU("r1"),
		NewDense("fc2", 32, 2, r),
	)
	const n = 128
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		labels[i] = cls
		x.Data[i*2] = float32(r.NormFloat64())*0.4 + float32(cls*2-1)
		x.Data[i*2+1] = float32(r.NormFloat64()) * 0.4
	}
	grads := make([]float32, m.NumParams())
	for step := 0; step < 80; step++ {
		m.ZeroGrads()
		m.Loss(x, labels)
		m.FlatGrads(grads)
		m.AxpyParams(-0.1, grads)
	}
	_, acc := m.Evaluate(x, labels)
	if acc < 0.95 {
		t.Fatalf("BN net accuracy %v", acc)
	}
}
