package nn

import (
	"bytes"
	"testing"

	"disttrain/internal/rng"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m := NewMiniCNN(rng.New(1), 5)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	want := m.FlatParams(nil)

	m2 := NewMiniCNN(rng.New(99), 5) // different weights
	if err := m2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	got := m2.FlatParams(nil)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	m := NewMiniCNN(rng.New(1), 5)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := NewMiniVGG(rng.New(1), 5)
	if err := other.Load(&buf); err == nil {
		t.Fatal("loaded checkpoint into mismatched architecture")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	m := NewMLP(rng.New(1), 2, 3, 2)
	if err := m.Load(bytes.NewReader([]byte("not a checkpoint at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := m.Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	m := NewMLP(rng.New(2), 2, 4, 2)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if err := m.Load(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestCheckpointStableAcrossTraining(t *testing.T) {
	// Save, train a little, load: must be back at the saved point.
	r := rng.New(3)
	m := NewMLP(r, 2, 8, 2)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := m.FlatParams(nil)
	delta := make([]float32, m.NumParams())
	for i := range delta {
		delta[i] = 0.5
	}
	m.AxpyParams(1, delta)
	if err := m.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got := m.FlatParams(nil)
	for i := range saved {
		if got[i] != saved[i] {
			t.Fatal("load did not restore saved state")
		}
	}
}
