package nn

import (
	"bufio"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"disttrain/internal/rng"
)

// TestTrainStateRoundTrip saves the full v2 training state — counters,
// EWMA, augmentation-RNG state, velocity, model — and verifies every field
// restores exactly.
func TestTrainStateRoundTrip(t *testing.T) {
	m := NewMLP(rng.New(3), 2, 8, 2)
	vel := make([]float32, m.NumParams())
	for i := range vel {
		vel[i] = float32(i) * 0.25
	}
	aug := rng.New(99)
	aug.Uint64() // mid-stream state, not a fresh seed
	st := &TrainState{
		Step:      12,
		Draws:     17,
		Loss:      0.625,
		LossInit:  true,
		AugRNG:    aug.State(),
		AugRNGSet: true,
		Velocity:  vel,
	}
	want := m.FlatParams(nil)
	path := filepath.Join(t.TempDir(), "w.ckpt")
	if err := SaveState(path, m, st); err != nil {
		t.Fatal(err)
	}

	m2 := NewMLP(rng.New(77), 2, 8, 2)
	got, err := LoadState(path, m2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != st.Step || got.Draws != st.Draws || got.Loss != st.Loss || got.LossInit != st.LossInit {
		t.Fatalf("counters mismatch: got %+v want %+v", got, st)
	}
	if !got.AugRNGSet || got.AugRNG != st.AugRNG {
		t.Fatalf("aug RNG state mismatch: got set=%v %v want %v", got.AugRNGSet, got.AugRNG, st.AugRNG)
	}
	for i := range vel {
		if got.Velocity[i] != vel[i] {
			t.Fatalf("velocity mismatch at %d", i)
		}
	}
	for i, p := range m2.FlatParams(nil) {
		if p != want[i] {
			t.Fatalf("model params mismatch at %d", i)
		}
	}
}

// TestTrainStateNoAug verifies a state saved without an augmentation stream
// round-trips with AugRNGSet false (the flag distinguishes "no aug" from
// "aug at the zero state").
func TestTrainStateNoAug(t *testing.T) {
	m := NewMLP(rng.New(4), 2, 4, 2)
	path := filepath.Join(t.TempDir(), "w.ckpt")
	if err := SaveState(path, m, &TrainState{Step: 3, Draws: 3}); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(path, NewMLP(rng.New(4), 2, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if got.AugRNGSet {
		t.Fatal("AugRNGSet true for a checkpoint saved without augmentation")
	}
}

// TestLoadStateReadsV1 hand-encodes the legacy v1 layout (no
// augmentation-RNG section) and verifies LoadState still reads it — the
// compatibility contract the v2 bump documents.
func TestLoadStateReadsV1(t *testing.T) {
	m := NewMLP(rng.New(5), 2, 4, 2)
	vel := make([]float32, 3)
	vel[0], vel[1], vel[2] = 1, 2, 3
	path := filepath.Join(t.TempDir(), "v1.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	for _, v := range []uint32{stateMagic, 1} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(9)); err != nil { // step
		t.Fatal(err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(11)); err != nil { // draws
		t.Fatal(err)
	}
	if err := binary.Write(bw, binary.LittleEndian, math.Float64bits(0.5)); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint8(1)); err != nil { // lossInit
		t.Fatal(err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(vel))); err != nil {
		t.Fatal(err)
	}
	if err := binary.Write(bw, binary.LittleEndian, vel); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadState(path, NewMLP(rng.New(6), 2, 4, 2))
	if err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	if got.Step != 9 || got.Draws != 11 || got.Loss != 0.5 || !got.LossInit {
		t.Fatalf("v1 fields mismatch: %+v", got)
	}
	if got.AugRNGSet {
		t.Fatal("v1 checkpoint produced AugRNGSet true")
	}
	if len(got.Velocity) != 3 || got.Velocity[2] != 3 {
		t.Fatalf("v1 velocity mismatch: %v", got.Velocity)
	}
}

// TestLoadStateRejectsFutureVersion guards the version check.
func TestLoadStateRejectsFutureVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v9.ckpt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint32{stateMagic, 9} {
		if err := binary.Write(f, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	if _, err := LoadState(path, NewMLP(rng.New(1), 2, 4, 2)); err == nil {
		t.Fatal("future-version checkpoint accepted")
	}
}
