package nn

import (
	"fmt"

	"disttrain/internal/rng"
)

// NewMLP builds a multi-layer perceptron with ReLU activations between the
// given layer widths, e.g. NewMLP(r, 2, 32, 32, 3) for a 2-feature,
// 3-class classifier. Used by fast tests and the Gaussian-cluster tasks.
func NewMLP(r *rng.RNG, dims ...int) *Model {
	if len(dims) < 2 {
		panic("nn: MLP needs at least input and output dims")
	}
	var layers []Layer
	for i := 0; i < len(dims)-1; i++ {
		if i < len(dims)-2 {
			layers = append(layers, NewDenseReLU(fmt.Sprintf("fc%d", i), dims[i], dims[i+1], r))
		} else {
			layers = append(layers, NewDense(fmt.Sprintf("fc%d", i), dims[i], dims[i+1], r))
		}
	}
	return NewModel("mlp", layers...)
}

// NewMiniCNN builds a small convolutional classifier for 1×16×16 inputs —
// the scaled-down stand-in for ResNet-50 in the accuracy experiments:
// conv(8)-relu-pool-conv(16)-relu-pool-fc(classes).
func NewMiniCNN(r *rng.RNG, classes int) *Model {
	return NewModel("minicnn",
		NewConv2DReLU("conv1", 1, 8, 3, 1, 1, r),
		NewMaxPool("pool1"),
		NewConv2DReLU("conv2", 8, 16, 3, 1, 1, r),
		NewMaxPool("pool2"),
		NewFlatten("flat"),
		NewDense("fc", 16*4*4, classes, r),
	)
}

// NewMiniResNet builds a residual CNN for 1×16×16 inputs: a conv stem plus
// two residual blocks, mirroring ResNet's skip-connection structure at toy
// scale. Parameter mass is spread across many similarly sized conv layers,
// making it "computation-intensive" in the paper's taxonomy.
func NewMiniResNet(r *rng.RNG, classes int) *Model {
	// c1+r1 fuse into one layer; c2 cannot (its ReLU sits after the skip
	// add), and the post-skip ReLUs stay standalone for the same reason.
	block := func(name string, ch int) Layer {
		return NewResidual(name,
			NewConv2DReLU(name+".c1", ch, ch, 3, 1, 1, r),
			NewConv2D(name+".c2", ch, ch, 3, 1, 1, r),
		)
	}
	return NewModel("miniresnet",
		NewConv2DReLU("stem", 1, 8, 3, 1, 1, r),
		block("res1", 8),
		NewReLU("res1.out"),
		NewMaxPool("pool1"),
		block("res2", 8),
		NewReLU("res2.out"),
		NewMaxPool("pool2"),
		NewFlatten("flat"),
		NewDense("fc", 8*4*4, classes, r),
	)
}

// NewMiniResNetBN builds a batch-normalized residual CNN for 1×16×16
// inputs with a global-average-pooled head — the closest structural
// miniature of real ResNet-50 in this repo (conv-BN-ReLU blocks, identity
// skips, GAP classifier). BN uses per-replica batch statistics, as the
// paper's data-parallel TensorFlow models do.
func NewMiniResNetBN(r *rng.RNG, classes int) *Model {
	block := func(name string, ch int) Layer {
		return NewResidual(name,
			NewConv2D(name+".c1", ch, ch, 3, 1, 1, r),
			NewBatchNorm(name+".bn1", ch),
			NewReLU(name+".r1"),
			NewConv2D(name+".c2", ch, ch, 3, 1, 1, r),
			NewBatchNorm(name+".bn2", ch),
		)
	}
	return NewModel("miniresnetbn",
		NewConv2D("stem", 1, 8, 3, 1, 1, r),
		NewBatchNorm("stem.bn", 8),
		NewReLU("stem.relu"),
		block("res1", 8),
		NewReLU("res1.out"),
		NewMaxPool("pool1"),
		block("res2", 8),
		NewReLU("res2.out"),
		NewGlobalAvgPool("gap"),
		NewDense("fc", 8, classes, r),
	)
}

// NewMiniVGG builds a VGG-style CNN for 1×16×16 inputs whose first fully
// connected layer deliberately holds the large majority of the parameters,
// reproducing VGG-16's skewed per-layer size distribution (~75 % of its
// 138 M parameters sit in fc1) that drives the paper's sharding results.
func NewMiniVGG(r *rng.RNG, classes int) *Model {
	return NewModel("minivgg",
		NewConv2DReLU("conv1", 1, 8, 3, 1, 1, r),
		NewMaxPool("pool1"),
		NewConv2DReLU("conv2", 8, 16, 3, 1, 1, r),
		NewMaxPool("pool2"),
		NewFlatten("flat"),
		NewDenseReLU("fc1", 16*4*4, 256, r), // dominant layer, ~80% of params
		NewDense("fc2", 256, classes, r),
	)
}

// ModelFactory constructs a fresh model with weights drawn from r. Every
// worker and every PS replica in an experiment builds its model through the
// same factory with the same RNG stream so all replicas start identical.
type ModelFactory func(r *rng.RNG) *Model

// FactoryByName returns the ModelFactory registered for name
// ("mlp", "minicnn", "miniresnet", "minivgg"), for CLI use.
func FactoryByName(name string, classes int) (ModelFactory, error) {
	switch name {
	case "mlp":
		return func(r *rng.RNG) *Model { return NewMLP(r, 2, 32, 32, classes) }, nil
	case "minicnn":
		return func(r *rng.RNG) *Model { return NewMiniCNN(r, classes) }, nil
	case "miniresnet":
		return func(r *rng.RNG) *Model { return NewMiniResNet(r, classes) }, nil
	case "miniresnetbn":
		return func(r *rng.RNG) *Model { return NewMiniResNetBN(r, classes) }, nil
	case "minivgg":
		return func(r *rng.RNG) *Model { return NewMiniVGG(r, classes) }, nil
	default:
		return nil, fmt.Errorf("nn: unknown model %q", name)
	}
}
