package nn

import (
	"math"
	"testing"

	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

// TestFusedReLUBitIdentical proves the epilogue-fusion contract at the layer
// level: a model built from NewDenseReLU/NewConv2DReLU must produce
// bit-identical activations, losses, gradients and post-update parameters to
// the same architecture built from separate Dense/Conv2D + ReLU layers,
// across several training steps (so the fused backward's mask-from-output
// recovery is exercised on evolving weights).
func TestFusedReLUBitIdentical(t *testing.T) {
	build := func(fused bool) *Model {
		r := rng.New(77)
		if fused {
			return NewModel("fused",
				NewConv2DReLU("conv1", 1, 4, 3, 1, 1, r),
				NewMaxPool("pool1"),
				NewFlatten("flat"),
				NewDenseReLU("fc1", 4*8*8, 19, r), // odd width: col remainder 3
				NewDense("fc2", 19, 3, r),
			)
		}
		return NewModel("unfused",
			NewConv2D("conv1", 1, 4, 3, 1, 1, r),
			NewReLU("relu1"),
			NewMaxPool("pool1"),
			NewFlatten("flat"),
			NewDense("fc1", 4*8*8, 19, r),
			NewReLU("relu3"),
			NewDense("fc2", 19, 3, r),
		)
	}
	fused, unfused := build(true), build(false)

	fp := fused.FlatParams(nil)
	up := unfused.FlatParams(nil)
	if len(fp) != len(up) {
		t.Fatalf("parameter counts differ: fused %d, unfused %d", len(fp), len(up))
	}
	for i := range fp {
		if math.Float32bits(fp[i]) != math.Float32bits(up[i]) {
			t.Fatalf("init param %d differs — fused constructors changed RNG draws", i)
		}
	}

	r := rng.New(5)
	x := tensor.New(3, 1, 16, 16)
	labels := []int{0, 2, 1}
	for step := 0; step < 4; step++ {
		x.RandNormal(r, 1)

		fused.ZeroGrads()
		lossF, _ := fused.Loss(x, labels)
		unfused.ZeroGrads()
		lossU, _ := unfused.Loss(x, labels)
		if math.Float64bits(lossF) != math.Float64bits(lossU) {
			t.Fatalf("step %d: loss differs fused=%v unfused=%v", step, lossF, lossU)
		}

		gf := fused.FlatGrads(nil)
		gu := unfused.FlatGrads(nil)
		for i := range gf {
			if math.Float32bits(gf[i]) != math.Float32bits(gu[i]) {
				t.Fatalf("step %d: grad %d differs fused=%x unfused=%x",
					step, i, math.Float32bits(gf[i]), math.Float32bits(gu[i]))
			}
		}

		// Identical SGD step on both so later iterations see new masks.
		fp = fused.FlatParams(fp)
		up = unfused.FlatParams(up)
		for i := range fp {
			fp[i] -= 0.05 * gf[i]
			up[i] -= 0.05 * gu[i]
		}
		fused.SetFlatParams(fp)
		unfused.SetFlatParams(up)
	}
}
