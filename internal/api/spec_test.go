package api

import (
	"bytes"
	"context"
	"testing"
)

// TestNormalizeDefaults verifies the defaulting contract: a minimal spec and
// its fully spelled-out equivalent derive the same configuration.
func TestNormalizeDefaults(t *testing.T) {
	s := ExperimentSpec{Algo: "bsp"}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if s.Version != SpecVersion || s.Workers != 8 || s.Model != "resnet50" ||
		s.Iters != 30 || s.Transport != TransportSim {
		t.Fatalf("defaults not applied: %+v", s)
	}
	if s.Staleness == nil || *s.Staleness != 3 {
		t.Fatalf("staleness default: %v", s.Staleness)
	}
	// Idempotent: normalizing again must not change anything.
	before := s
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if *s.Staleness != *before.Staleness {
		t.Fatal("Normalize is not idempotent on Staleness")
	}
}

// TestNormalizeRejections covers spec-level syntax errors: missing algo,
// future version, unknown transport.
func TestNormalizeRejections(t *testing.T) {
	for name, s := range map[string]ExperimentSpec{
		"missing algo":      {},
		"future version":    {Version: "v99", Algo: "bsp"},
		"unknown transport": {Algo: "bsp", Transport: "carrier-pigeon"},
	} {
		s := s
		if err := s.Normalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestValidatedRejectsBadAlgo verifies Validated runs the transport's full
// validation, not just spec syntax.
func TestValidatedRejectsBadAlgo(t *testing.T) {
	s := ExperimentSpec{Algo: "not-an-algo", Workers: 2}
	if _, err := s.Validated(); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// Live transports require real gradient math.
	s = ExperimentSpec{Algo: "bsp", Workers: 2, Transport: TransportChan}
	if _, err := s.Validated(); err == nil {
		t.Fatal("live transport without Real accepted")
	}
}

// TestSpecCollectiveAndOverlay verifies the additive topology fields pass
// through Config() and survive a JSON round trip without a version bump.
func TestSpecCollectiveAndOverlay(t *testing.T) {
	s := ExperimentSpec{Algo: "arsgd", Workers: 24, Collective: "hierarchical"}
	cfg, err := s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Collective != "hierarchical" {
		t.Fatalf("collective not carried: %q", cfg.Collective)
	}
	if s.Version != SpecVersion {
		t.Fatalf("additive fields bumped the version: %q", s.Version)
	}

	s = ExperimentSpec{Algo: "gosgd", Workers: 8, Overlay: "kregular", OverlayDegree: 2}
	cfg, err = s.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Overlay != "kregular" || cfg.OverlayDegree != 2 {
		t.Fatalf("overlay not carried: %q/%d", cfg.Overlay, cfg.OverlayDegree)
	}

	// Live transports reject the simulator-only topology features.
	s = ExperimentSpec{Algo: "arsgd", Workers: 8, Collective: "butterfly",
		Transport: TransportChan, Real: &RealSpec{}}
	if _, err := s.Validated(); err == nil {
		t.Fatal("live transport accepted a simulator-only collective")
	}
	s = ExperimentSpec{Algo: "gosgd", Workers: 8, Overlay: "smallworld",
		Transport: TransportChan, Real: &RealSpec{}}
	if _, err := s.Validated(); err == nil {
		t.Fatal("live transport accepted a gossip overlay")
	}
}

// TestRunDeterministic verifies the exported JSON of two identical sim runs
// is byte-identical — the contract every control-plane comparison rests on.
func TestRunDeterministic(t *testing.T) {
	spec := ExperimentSpec{Algo: "asp", Workers: 4, Iters: 10, Seed: 7}
	var bufs [2]bytes.Buffer
	for i := range bufs {
		res, err := Run(context.Background(), spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.WriteJSON(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatalf("repeated runs diverged:\n%s\n%s", bufs[0].Bytes(), bufs[1].Bytes())
	}
}
