package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the control plane's HTTP API (cmd/expd). The zero value is
// unusable; set Base to the service URL (e.g. "http://127.0.0.1:7070").
type Client struct {
	// Base is the service URL without a trailing slash.
	Base string
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.Base, "/") + path
}

// apiError decodes the service's {"error": ...} body into a Go error.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("api: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("api: %s: %s", resp.Status, bytes.TrimSpace(body))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a spec and returns the accepted experiment's status record.
func (c *Client) Submit(ctx context.Context, spec ExperimentSpec) (*ExperimentStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/experiments"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	st := new(ExperimentStatus)
	return st, json.NewDecoder(resp.Body).Decode(st)
}

// Get fetches one experiment's status.
func (c *Client) Get(ctx context.Context, id string) (*ExperimentStatus, error) {
	st := new(ExperimentStatus)
	return st, c.getJSON(ctx, "/v1/experiments/"+id, st)
}

// List fetches every experiment, optionally filtered by lifecycle state.
func (c *Client) List(ctx context.Context, state string) ([]*ExperimentStatus, error) {
	path := "/v1/experiments"
	if state != "" {
		path += "?state=" + state
	}
	var out []*ExperimentStatus
	return out, c.getJSON(ctx, path, &out)
}

// ResultJSON fetches the finished experiment's RunResult as the service's
// exact bytes — the byte-identity contract with a direct RunResult.WriteJSON
// export holds on this form.
func (c *Client) ResultJSON(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/experiments/"+id+"/result"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Result fetches and decodes the finished experiment's RunResult.
func (c *Client) Result(ctx context.Context, id string) (*RunResult, error) {
	data, err := c.ResultJSON(ctx, id)
	if err != nil {
		return nil, err
	}
	r := new(RunResult)
	return r, json.Unmarshal(data, r)
}

// StreamMetrics subscribes to the experiment's SSE metric stream, invoking
// fn for every point (the full backlog replays first, then live samples).
// It returns nil once the service signals the stream complete, or the
// context/transport error that ended it early.
func (c *Client) StreamMetrics(ctx context.Context, id string, fn func(MetricPoint)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/experiments/"+id+"/metrics"), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line dispatches the buffered event.
			if event == "done" {
				return nil
			}
			if event == "metric" && data != "" {
				var p MetricPoint
				if err := json.Unmarshal([]byte(data), &p); err != nil {
					return fmt.Errorf("api: bad metric event: %w", err)
				}
				fn(p)
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("api: metric stream ended without done event")
}

// Wait polls until the experiment reaches a terminal state and returns its
// final status (which includes the Result for successful runs).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*ExperimentStatus, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if TerminalState(st.State) {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}
