package api

import (
	"context"
	"encoding/json"
	"io"
	"runtime"
	"time"

	"disttrain/internal/core"
	"disttrain/internal/live"
	"disttrain/internal/metrics"
	"disttrain/internal/trace"
)

func numCPU() int { return runtime.GOMAXPROCS(0) }

// NetStats carries the live transport counters in the result schema
// (absent for simulator runs, which report virtual traffic in the Summary).
type NetStats struct {
	FramesSent  int64 `json:"frames_sent,omitempty"`
	FramesRecv  int64 `json:"frames_recv,omitempty"`
	BytesSent   int64 `json:"bytes_sent,omitempty"`
	BytesRecv   int64 `json:"bytes_recv,omitempty"`
	Redials     int64 `json:"redials,omitempty"`
	Kills       int64 `json:"kills,omitempty"`
	Partitioned int64 `json:"partitioned,omitempty"`
}

// RunResult is the unified outcome schema: both the simulator's core.Result
// and the live runtime's live.Result convert into it (FromCore, FromLive),
// so the CLI, the HTTP control plane, and stored artifacts all speak one
// shape. For simulator runs the conversion is deterministic: identical
// specs produce byte-identical WriteJSON output, which the control plane's
// end-to-end tests enforce.
type RunResult struct {
	// SpecVersion is the ExperimentSpec schema version the run was
	// submitted under.
	SpecVersion string `json:"spec_version"`
	// Transport is the backend that executed the run: sim, tcp, or chan.
	Transport string `json:"transport"`
	// Summary is the shared metrics digest. For live runs VirtualSec
	// carries the wall-clock makespan (a live run has no virtual time) and
	// the phase breakdown is zero.
	Summary core.Summary `json:"summary"`

	// WallSec is real seconds from start to the last worker's finish
	// (live runs only).
	WallSec float64 `json:"wall_sec,omitempty"`
	// WorkerIters is each rank's completed iteration count (live runs
	// only; the simulator's per-worker counts live in its Metrics).
	WorkerIters []int `json:"worker_iters,omitempty"`
	// Net aggregates transport counters over every endpoint (live TCP runs
	// only).
	Net *NetStats `json:"net,omitempty"`
	// Deaths, Rejoins and Restores count live chaos events.
	Deaths   int64 `json:"deaths,omitempty"`
	Rejoins  int64 `json:"rejoins,omitempty"`
	Restores int64 `json:"restores,omitempty"`
}

// FromCore converts a simulator result into the unified schema.
func FromCore(r *core.Result) *RunResult {
	return &RunResult{
		SpecVersion: SpecVersion,
		Transport:   TransportSim,
		Summary:     r.Summary(),
	}
}

// FromLive converts a live-runtime result into the unified schema. Unlike
// live.Result.Summary (which mangles the algorithm name into "bsp+tcp" for
// legacy plotting), the RunResult keeps the algorithm clean and reports the
// backend in Transport.
func FromLive(r *live.Result) *RunResult {
	s := r.Summary()
	s.Algo = string(r.Config.Algo)
	out := &RunResult{
		SpecVersion: SpecVersion,
		Transport:   r.Transport,
		Summary:     s,
		WallSec:     r.WallSec,
		WorkerIters: r.WorkerIters,
		Deaths:      r.Deaths,
		Rejoins:     r.Rejoins,
		Restores:    r.Restores,
	}
	net := NetStats{
		FramesSent:  r.Net.FramesSent,
		FramesRecv:  r.Net.FramesRecv,
		BytesSent:   r.Net.BytesSent,
		BytesRecv:   r.Net.BytesRecv,
		Redials:     r.Net.Redials,
		Kills:       r.Net.Kills,
		Partitioned: r.Net.Partitioned,
	}
	if net != (NetStats{}) {
		out.Net = &net
	}
	return out
}

// WriteJSON writes the result as indented JSON — the canonical export every
// surface (CLI -json, the control plane's result endpoint, stored
// artifacts) uses, so byte-level comparisons between them are meaningful.
func (r *RunResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// MetricPoint is one sample on an experiment's metrics stream. Simulator
// runs emit global convergence samples (Worker = -1, from the evaluation
// cadence); live runs emit one point per completed worker iteration.
type MetricPoint struct {
	// Worker is the reporting rank, or -1 for a global evaluation sample.
	Worker int `json:"worker"`
	// Iter is the iteration the sample refers to.
	Iter int `json:"iter"`
	// Epoch is fractional dataset epochs processed (global samples).
	Epoch float64 `json:"epoch,omitempty"`
	// VirtualSec is the simulator clock at the sample (sim runs).
	VirtualSec float64 `json:"virtual_sec,omitempty"`
	// WallSec is real seconds since the run started (live runs).
	WallSec float64 `json:"wall_sec,omitempty"`
	// TrainLoss is the training-loss EWMA at the sample.
	TrainLoss float64 `json:"train_loss,omitempty"`
	// TestErr is 1 − test accuracy (global samples).
	TestErr float64 `json:"test_err,omitempty"`
}

// Experiment lifecycle states used by the control plane and its clients.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// TerminalState reports whether state is a final one.
func TerminalState(state string) bool {
	return state == StateDone || state == StateFailed
}

// ExperimentStatus is the control plane's view of one submitted experiment:
// the spec, where it is in its lifecycle, and (once finished) the result.
// It is both the HTTP response shape and the persisted artifact shape.
type ExperimentStatus struct {
	ID    string         `json:"id"`
	Spec  ExperimentSpec `json:"spec"`
	State string         `json:"state"`
	// Error is the failure cause when State is failed.
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at,omitzero"`
	StartedAt   time.Time  `json:"started_at,omitzero"`
	FinishedAt  time.Time  `json:"finished_at,omitzero"`
	Result      *RunResult `json:"result,omitempty"`
}

// RunOptions tunes Run beyond the spec.
type RunOptions struct {
	// OnMetric, when non-nil, observes progress samples as the run
	// produces them. Live workers run concurrently, so it must be safe for
	// concurrent use and must not block.
	OnMetric func(MetricPoint)
	// LiveOptions are appended to the options derived from the spec for
	// live backends.
	LiveOptions []live.Option
	// Tracer, when non-nil, captures a Chrome trace of the run on either
	// time source: virtual-time spans from the simulator, wall-clock spans
	// from the live runtimes. The caller owns writing it out (WriteJSON).
	Tracer *trace.Tracer
}

// LiveOptions translates the spec's checkpoint and slow-unit fields into
// live run options.
func (s *ExperimentSpec) LiveOptions() []live.Option {
	var opts []live.Option
	if s.CkptDir != "" {
		opts = append(opts, live.WithCheckpoints(s.CkptDir, s.CkptEvery))
	}
	if s.SlowUnitMS > 0 {
		opts = append(opts, live.WithSlowUnit(time.Duration(s.SlowUnitMS*float64(time.Millisecond))))
	}
	return opts
}

// Validated derives the spec's core.Config and runs the full validation
// appropriate for its transport, so a bad spec is rejected before any run
// starts (the control plane calls this at submission time).
func (s *ExperimentSpec) Validated() (core.Config, error) {
	cfg, err := s.Config()
	if err != nil {
		return core.Config{}, err
	}
	if s.Live() {
		if err := live.Validate(&cfg); err != nil {
			return core.Config{}, err
		}
	} else if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// Run executes the spec on its transport — core.Run for the simulator,
// live.RunLoopback / live.RunChan for the wall-clock backends — and
// converts the outcome into the unified RunResult. This is the single-call
// entry point the control plane's workers and simple CLI paths share;
// multi-process live roles (coordinator/worker) remain entry points on the
// live package.
func Run(ctx context.Context, spec ExperimentSpec, o *RunOptions) (*RunResult, error) {
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	var onMetric func(MetricPoint)
	if o != nil {
		onMetric = o.OnMetric
	}
	switch spec.Transport {
	case TransportTCP, TransportChan:
		opts := spec.LiveOptions()
		if o != nil {
			opts = append(opts, o.LiveOptions...)
			if o.Tracer != nil {
				opts = append(opts, live.WithTracer(o.Tracer))
			}
		}
		start := time.Now()
		if onMetric != nil {
			opts = append(opts, live.WithProgress(func(rank, iter int, loss float64) {
				onMetric(MetricPoint{
					Worker:    rank,
					Iter:      iter,
					WallSec:   time.Since(start).Seconds(),
					TrainLoss: loss,
				})
			}))
		}
		var res *live.Result
		if spec.Transport == TransportChan {
			res, err = live.RunChan(cfg, opts...)
		} else {
			res, err = live.RunLoopback(cfg, opts...)
		}
		if err != nil {
			return nil, err
		}
		return FromLive(res), nil
	default:
		if o != nil && o.Tracer != nil {
			cfg.Tracer = o.Tracer
		}
		if onMetric != nil {
			cfg.Progress = func(tp metrics.TracePoint) {
				onMetric(MetricPoint{
					Worker:     -1,
					Iter:       tp.Iter,
					Epoch:      tp.Epoch,
					VirtualSec: tp.VirtualSec,
					TrainLoss:  tp.TrainLoss,
					TestErr:    tp.TestErr,
				})
			}
		}
		res, err := core.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return FromCore(res), nil
	}
}
