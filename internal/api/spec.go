// Package api defines the canonical, versioned experiment schema every
// front end speaks: the CLI flags, the HTTP control plane (internal/ctlplane
// and cmd/expd), and any future submission surface all build an
// ExperimentSpec first and derive runtime configuration from it, instead of
// each maintaining its own flag→struct dialect.
//
// The package owns three things:
//
//   - ExperimentSpec: the JSON-serializable description of one experiment
//     (algorithm, model, cluster shape, faults, execution backend). It is
//     versioned (SpecVersion); Normalize applies the documented defaults so
//     a minimal spec like {"algo":"bsp"} is complete.
//   - Spec → config derivation: Config() builds a core.Config (the
//     simulator's native configuration), materializing datasets, model
//     factories, cost-model workloads, and fault schedules from the spec's
//     plain-data fields.
//   - RunResult: the unified result schema both core.Result (simulator) and
//     live.Result (wall-clock runtime) convert into, so reporting, storage,
//     and analysis tooling consume one shape regardless of backend.
package api

import (
	"fmt"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/fault"
	"disttrain/internal/grad"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

// SpecVersion is the current ExperimentSpec schema version. Versioning
// policy: the version bumps only on incompatible changes (renamed or
// re-interpreted fields); purely additive fields keep the version. Readers
// accept a spec whose Version is empty (meaning "current") or equal to
// SpecVersion, and reject anything else.
const SpecVersion = "v1"

// Transport names for ExperimentSpec.Transport.
const (
	TransportSim  = "sim"  // deterministic discrete-event simulator
	TransportTCP  = "tcp"  // live loopback/multi-process TCP runtime
	TransportChan = "chan" // live in-process channel runtime
)

// RealSpec enables real gradient math (accuracy mode) in a spec.
type RealSpec struct {
	// Dataset is the synthetic dataset name: shapes16|gauss|spiral
	// (default shapes16).
	Dataset string `json:"dataset,omitempty"`
	// Net is the model architecture: mlp|minicnn|miniresnet|minivgg
	// (default minicnn).
	Net string `json:"net,omitempty"`
	// Batch is the per-worker mini-batch size (default 8).
	Batch int `json:"batch,omitempty"`
	// EvalEvery evaluates the global model every this many worker-0
	// iterations (default max(1, iters/10)). Set to 1 for per-iteration
	// convergence samples on the metrics stream.
	EvalEvery int `json:"eval_every,omitempty"`
	// EvalMax caps evaluation to this many test samples (default 500;
	// negative = the whole test set).
	EvalMax int `json:"eval_max,omitempty"`
	// AugShift and AugFlipProb enable random training-batch augmentation
	// (max per-axis pixel shift, horizontal-flip probability). Both zero =
	// no augmentation.
	AugShift    int     `json:"aug_shift,omitempty"`
	AugFlipProb float64 `json:"aug_flip_prob,omitempty"`
}

// ExperimentSpec is the canonical description of one experiment. The zero
// value of every optional field means "use the documented default"; the only
// required field is Algo. All fields are plain data, so a spec serializes
// losslessly to JSON and back.
type ExperimentSpec struct {
	// Version is the spec schema version; empty means SpecVersion.
	Version string `json:"version,omitempty"`
	// Name is an optional human label carried through results and listings.
	Name string `json:"name,omitempty"`

	// Algo is the training algorithm (core.Algos plus extensions):
	// bsp|asp|ssp|easgd|arsgd|gosgd|adpsgd|dpsgd|hogwild|adacomm.
	Algo string `json:"algo"`
	// Workers is the worker (GPU) count (default 8).
	Workers int `json:"workers,omitempty"`
	// Model is the cost-model profile: resnet50|vgg16 (default resnet50).
	Model string `json:"model,omitempty"`
	// Gbps selects the paper cluster shape: >= 56 is the InfiniBand
	// cluster, below is 10 Gbps Ethernet (default 56).
	Gbps float64 `json:"gbps,omitempty"`
	// Iters is training iterations per worker (default 30).
	Iters int `json:"iters,omitempty"`
	// Seed makes the experiment reproducible (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// LR is the learning-rate base (default 0.1).
	LR float64 `json:"lr,omitempty"`

	// Staleness is SSP's threshold s (nil = default 3; 0 is legal).
	Staleness *int `json:"staleness,omitempty"`
	// Tau is EASGD's (and AdaComm's initial) communication period
	// (default 8).
	Tau int `json:"tau,omitempty"`
	// MovingRate is EASGD's elastic coefficient α (default 0.9/workers).
	MovingRate float64 `json:"moving_rate,omitempty"`
	// GossipP is GoSGD's per-iteration gossip probability (default 0.01).
	GossipP float64 `json:"gossip_p,omitempty"`

	// Sharding selects PS partitioning: none|layerwise|balanced
	// (default none).
	Sharding string `json:"sharding,omitempty"`
	// Shards is the PS shard count (0 = one per machine when sharded).
	Shards int `json:"shards,omitempty"`
	// WaitFreeBP overlaps backward compute with gradient transfer.
	WaitFreeBP bool `json:"wait_free_bp,omitempty"`
	// DGC enables deep gradient compression (defaults: momentum 0.9,
	// warm-up iters/5).
	DGC bool `json:"dgc,omitempty"`
	// Quantize8 enables 8-bit gradient quantization.
	Quantize8 bool `json:"quantize8,omitempty"`
	// QuantizeF16 enables fp16 gradient quantization (exclusive with
	// Quantize8; both layer on DGC).
	QuantizeF16 bool `json:"quantize_f16,omitempty"`
	// LocalAgg enables BSP intra-machine aggregation.
	LocalAgg bool `json:"local_agg,omitempty"`
	// TreeAllReduce switches AR-SGD to the binomial-tree collective.
	// Equivalent to Collective "tree"; kept for spec compatibility.
	TreeAllReduce bool `json:"tree_allreduce,omitempty"`
	// Collective selects AR-SGD's AllReduce algorithm by name:
	// ring (default) | tree | hierarchical | butterfly | torus.
	// Simulator-only beyond ring/tree.
	Collective string `json:"collective,omitempty"`
	// Overlay restricts AD-PSGD/GoSGD partner selection to a sparse peer
	// graph: kregular | smallworld. Simulator-only.
	Overlay string `json:"overlay,omitempty"`
	// OverlayDegree is the overlay's target neighbor count per rank
	// (0 = default 4).
	OverlayDegree int `json:"overlay_degree,omitempty"`
	// StalenessDamping enables ASP's staleness-aware learning-rate scaling.
	StalenessDamping bool `json:"staleness_damping,omitempty"`

	// Real enables real gradient math; nil = cost-only simulation.
	Real *RealSpec `json:"real,omitempty"`

	// FaultSpec is a compact fault-schedule string (fault.ParseSpec syntax,
	// e.g. "crash@iter20:w3:restart=5;drop@10:p=0.05:for=60").
	FaultSpec string `json:"fault_spec,omitempty"`
	// Faults is an explicit fault schedule; events from both it and
	// FaultSpec are combined.
	Faults *fault.Schedule `json:"faults,omitempty"`
	// Elastic makes membership-based barriers survive crashes.
	Elastic bool `json:"elastic,omitempty"`
	// TimeoutSec bounds fault-mode barrier waits in virtual seconds
	// (0 = 5 mean iterations).
	TimeoutSec float64 `json:"timeout_sec,omitempty"`

	// Transport selects the execution backend: sim (default), tcp (live
	// loopback TCP), or chan (live in-process channels). The live backends
	// require Real.
	Transport string `json:"transport,omitempty"`
	// Pool is the compute-pool size for real gradient math: 0 = one
	// goroutine per CPU, negative = serial inline. Results are identical
	// for every value; only wall time changes.
	Pool int `json:"pool,omitempty"`

	// CkptDir/CkptEvery configure live-run training-state checkpoints
	// (empty dir = none; every defaults to 1 when dir is set).
	CkptDir   string `json:"ckpt_dir,omitempty"`
	CkptEvery int    `json:"ckpt_every,omitempty"`
	// SlowUnitMS is the live latency per slowdown unit in milliseconds
	// (0 = runtime default).
	SlowUnitMS float64 `json:"slow_unit_ms,omitempty"`
}

// Normalize validates the version and fills every defaulted field in place,
// so two specs that differ only in omitted-vs-explicit defaults derive the
// same configuration. It is idempotent.
func (s *ExperimentSpec) Normalize() error {
	switch s.Version {
	case "", SpecVersion:
		s.Version = SpecVersion
	default:
		return fmt.Errorf("api: unsupported spec version %q (this build speaks %s)", s.Version, SpecVersion)
	}
	if s.Algo == "" {
		return fmt.Errorf("api: spec missing algo")
	}
	if s.Workers == 0 {
		s.Workers = 8
	}
	if s.Model == "" {
		s.Model = "resnet50"
	}
	if s.Gbps == 0 {
		s.Gbps = 56
	}
	if s.Iters == 0 {
		s.Iters = 30
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.LR == 0 {
		s.LR = 0.1
	}
	if s.Staleness == nil {
		st := 3
		s.Staleness = &st
	}
	if s.Tau == 0 {
		s.Tau = 8
	}
	if s.GossipP == 0 {
		s.GossipP = 0.01
	}
	if s.Sharding == "" {
		s.Sharding = string(core.ShardNone)
	}
	switch s.Transport {
	case "":
		s.Transport = TransportSim
	case TransportSim, TransportTCP, TransportChan:
	default:
		return fmt.Errorf("api: unknown transport %q (want %s, %s or %s)",
			s.Transport, TransportSim, TransportTCP, TransportChan)
	}
	if s.Real != nil {
		if s.Real.Dataset == "" {
			s.Real.Dataset = "shapes16"
		}
		if s.Real.Net == "" {
			s.Real.Net = "minicnn"
		}
		if s.Real.Batch == 0 {
			s.Real.Batch = 8
		}
		if s.Real.EvalEvery == 0 {
			s.Real.EvalEvery = max(1, s.Iters/10)
		}
		switch {
		case s.Real.EvalMax == 0:
			s.Real.EvalMax = 500
		case s.Real.EvalMax < 0:
			s.Real.EvalMax = 0 // negative requests the whole test set
		}
	}
	if s.CkptDir != "" && s.CkptEvery == 0 {
		s.CkptEvery = 1
	}
	return nil
}

// Live reports whether the spec targets a wall-clock runtime backend.
func (s *ExperimentSpec) Live() bool {
	return s.Transport == TransportTCP || s.Transport == TransportChan
}

// PoolSize resolves a spec/flag pool value into core.Config.PoolSize: 0
// asks for one compute goroutine per available CPU, a negative value forces
// the serial inline path, and positive values pass through. Training
// results are bit-identical for every resolution; only wall time changes.
func PoolSize(pool int) int {
	switch {
	case pool < 0:
		return 0
	case pool == 0:
		return numCPU()
	}
	return pool
}

// Cluster returns the paper's 56 Gbps InfiniBand cluster shape for gbps >=
// 56 and the 10 Gbps Ethernet shape otherwise.
func Cluster(gbps float64, workers int) cluster.Config {
	if gbps >= 56 {
		return cluster.Paper56G(workers)
	}
	return cluster.Paper10G(workers)
}

// Config derives the simulator-native core.Config from the spec,
// materializing the cost-model workload, fault schedule, and (in real mode)
// datasets and model factory. The receiver is normalized in place first; the
// returned config is not yet validated — core.Run (or live.Validate)
// validates it — but spec-level syntax errors (unknown model/dataset names,
// malformed fault specs) surface here, before any run starts.
func (s *ExperimentSpec) Config() (core.Config, error) {
	if err := s.Normalize(); err != nil {
		return core.Config{}, err
	}
	profile, err := costmodel.ProfileByName(s.Model)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Algo:        core.Algo(s.Algo),
		Cluster:     Cluster(s.Gbps, s.Workers),
		Workers:     s.Workers,
		Workload:    costmodel.NewWorkload(profile, costmodel.TitanV(), 128),
		Iters:       s.Iters,
		Seed:        s.Seed,
		Momentum:    0.9,
		LR:          opt.Schedule{Base: s.LR},
		Staleness:   *s.Staleness,
		Tau:         s.Tau,
		MovingRate:  s.MovingRate,
		GossipP:     s.GossipP,
		Sharding:    core.Sharding(s.Sharding),
		Shards:      s.Shards,
		WaitFreeBP:  s.WaitFreeBP,
		LocalAgg:    s.LocalAgg,
		Quantize8:   s.Quantize8,
		QuantizeF16: s.QuantizeF16,

		TreeAllReduce:    s.TreeAllReduce,
		Collective:       s.Collective,
		Overlay:          s.Overlay,
		OverlayDegree:    s.OverlayDegree,
		StalenessDamping: s.StalenessDamping,

		Elastic:           s.Elastic,
		BarrierTimeoutSec: s.TimeoutSec,

		PoolSize: PoolSize(s.Pool),
	}
	cfg.Faults, err = s.faultSchedule()
	if err != nil {
		return core.Config{}, err
	}
	if s.DGC {
		d := grad.DefaultDGC(0.9, s.Iters/5)
		cfg.DGC = &d
	}
	if s.Real != nil {
		r := rng.New(s.Seed * 31)
		ds, err := data.ByName(s.Real.Dataset, r, 4000)
		if err != nil {
			return core.Config{}, err
		}
		trainDS, testDS := ds.Split(r.Split(1), 600)
		factory, err := nn.FactoryByName(s.Real.Net, ds.Classes)
		if err != nil {
			return core.Config{}, err
		}
		cfg.WeightDecay = 1e-4
		cfg.LR = opt.Schedule{Base: s.LR, WarmupIters: s.Iters / 20}
		cfg.Real = &core.RealConfig{
			Factory:   factory,
			Train:     trainDS,
			Test:      testDS,
			Batch:     s.Real.Batch,
			EvalEvery: s.Real.EvalEvery,
			EvalMax:   s.Real.EvalMax,
		}
		if s.Real.AugShift > 0 || s.Real.AugFlipProb > 0 {
			cfg.Real.Augment = &data.Augment{
				MaxShift: s.Real.AugShift,
				FlipProb: s.Real.AugFlipProb,
			}
		}
	}
	return cfg, nil
}

// faultSchedule combines the compact FaultSpec string and the explicit
// Faults schedule into one. Returns nil when both are empty.
func (s *ExperimentSpec) faultSchedule() (*fault.Schedule, error) {
	var sched *fault.Schedule
	if s.FaultSpec != "" {
		var err error
		if sched, err = fault.ParseSpec(s.FaultSpec); err != nil {
			return nil, err
		}
	}
	if s.Faults != nil && len(s.Faults.Events) > 0 {
		if sched == nil {
			cp := *s.Faults
			cp.Events = append([]fault.Event(nil), s.Faults.Events...)
			sched = &cp
		} else {
			sched.Events = append(sched.Events, s.Faults.Events...)
		}
	}
	return sched, nil
}
