// Package metrics collects the measurements the paper reports: per-worker
// time breakdowns (computation, local aggregation, global aggregation,
// network), training throughput, traffic volume, and convergence traces
// (error versus epochs and versus virtual time).
package metrics

import (
	"fmt"
	"sort"
)

// Phase indexes the time-breakdown categories of the paper's Figure 3.
type Phase int

// Breakdown phases. Compute is gradient computation; LocalAgg is time spent
// in intra-machine aggregation (mostly waiting for same-machine workers);
// GlobalAgg is time blocked on the global aggregation step net of wire
// time; Network is wire/serialization time of the worker's own transfers.
const (
	Compute Phase = iota
	LocalAgg
	GlobalAgg
	Network
	numPhases
)

// String returns the phase label used in reports.
func (p Phase) String() string {
	switch p {
	case Compute:
		return "compute"
	case LocalAgg:
		return "local-agg"
	case GlobalAgg:
		return "global-agg"
	case Network:
		return "network"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Breakdown accumulates seconds per phase.
type Breakdown [numPhases]float64

// Add accumulates d seconds into phase p; negative d is clamped to zero
// (attribution arithmetic can produce tiny negatives).
func (b *Breakdown) Add(p Phase, d float64) {
	if d > 0 {
		b[p] += d
	}
}

// Total returns the summed seconds.
func (b *Breakdown) Total() float64 {
	var s float64
	for _, v := range b {
		s += v
	}
	return s
}

// Frac returns phase p's fraction of the total (0 if empty).
func (b *Breakdown) Frac(p Phase) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return b[p] / t
}

// Merge adds other into b.
func (b *Breakdown) Merge(other Breakdown) {
	for i := range b {
		b[i] += other[i]
	}
}

// Worker is one worker's accounting.
type Worker struct {
	Breakdown Breakdown
	// Iters is the number of completed training iterations.
	Iters int
	// FinishedAt is the virtual time the worker completed its last
	// iteration.
	FinishedAt float64
}

// TracePoint is one convergence sample.
type TracePoint struct {
	// Iter is the global iteration (per-worker) at the sample.
	Iter int
	// Epoch is fractional epochs of the full dataset processed.
	Epoch float64
	// VirtualSec is the simulated wall-clock time.
	VirtualSec float64
	// TrainLoss is the recent mean training loss.
	TrainLoss float64
	// TestErr is 1 − test accuracy of the evaluated (global/average) model.
	TestErr float64
}

// FaultStats counts fault-injection events and their consequences over one
// run. All counters are zero when no fault schedule is attached.
type FaultStats struct {
	// Crashes is the number of worker deaths; Restarts how many came back.
	Crashes  int `json:"crashes,omitempty"`
	Restarts int `json:"restarts,omitempty"`
	// LostIters counts iterations skipped inside dead windows;
	// RecoveredIters counts iterations completed by workers after at least
	// one restart — the work the system salvaged.
	LostIters      int `json:"lost_iters,omitempty"`
	RecoveredIters int `json:"recovered_iters,omitempty"`
	// Timeouts counts fault-mode receive waits that gave up (a dropped or
	// partitioned message the protocol then worked around).
	Timeouts int `json:"timeouts,omitempty"`
	// Redraws counts gossip target draws made from a reduced (dead or
	// partitioned peers excluded) candidate set.
	Redraws int `json:"redraws,omitempty"`
	// SkippedExchanges counts gossip/exchange rounds abandoned because no
	// live reachable peer existed.
	SkippedExchanges int `json:"skipped_exchanges,omitempty"`
}

// Any reports whether any counter is non-zero.
func (f FaultStats) Any() bool { return f != FaultStats{} }

// Collector aggregates everything one experiment produces.
type Collector struct {
	Workers []Worker
	Trace   []TracePoint
	// Faults counts injected-fault events (zero without a fault schedule).
	Faults FaultStats
	// MaxSpread is the largest observed gap between the fastest and
	// slowest worker's iteration counters at any instant of the run — the
	// realized staleness. Synchronous algorithms keep it ≤ 1; SSP bounds it
	// by its threshold; ASP lets it float.
	MaxSpread int
}

// NewCollector creates a collector for n workers.
func NewCollector(n int) *Collector {
	return &Collector{Workers: make([]Worker, n)}
}

// AddTrace appends a convergence sample.
func (c *Collector) AddTrace(tp TracePoint) { c.Trace = append(c.Trace, tp) }

// TotalIters sums the iterations across workers.
func (c *Collector) TotalIters() int {
	n := 0
	for _, w := range c.Workers {
		n += w.Iters
	}
	return n
}

// MakespanSec returns the virtual time at which the slowest worker
// finished.
func (c *Collector) MakespanSec() float64 {
	var m float64
	for _, w := range c.Workers {
		if w.FinishedAt > m {
			m = w.FinishedAt
		}
	}
	return m
}

// ThroughputSamplesPerSec returns aggregate training throughput: total
// samples processed per second of virtual time (the paper's "images/sec").
func (c *Collector) ThroughputSamplesPerSec(batch int) float64 {
	t := c.MakespanSec()
	if t == 0 {
		return 0
	}
	return float64(c.TotalIters()*batch) / t
}

// MeanBreakdown averages the per-worker breakdowns.
func (c *Collector) MeanBreakdown() Breakdown {
	var b Breakdown
	if len(c.Workers) == 0 {
		return b
	}
	for _, w := range c.Workers {
		b.Merge(w.Breakdown)
	}
	for i := range b {
		b[i] /= float64(len(c.Workers))
	}
	return b
}

// IterSpread returns the min and max completed iterations across workers —
// a direct view of how asynchronous algorithms let fast workers run ahead.
func (c *Collector) IterSpread() (min, max int) {
	if len(c.Workers) == 0 {
		return 0, 0
	}
	min, max = c.Workers[0].Iters, c.Workers[0].Iters
	for _, w := range c.Workers[1:] {
		if w.Iters < min {
			min = w.Iters
		}
		if w.Iters > max {
			max = w.Iters
		}
	}
	return min, max
}

// FinalTestErr returns the last traced test error (1.0 if no trace).
func (c *Collector) FinalTestErr() float64 {
	if len(c.Trace) == 0 {
		return 1.0
	}
	return c.Trace[len(c.Trace)-1].TestErr
}

// BestTestErr returns the minimum traced test error (1.0 if no trace).
func (c *Collector) BestTestErr() float64 {
	best := 1.0
	for _, tp := range c.Trace {
		if tp.TestErr < best {
			best = tp.TestErr
		}
	}
	return best
}

// TimeToErr returns the earliest virtual time at which the traced test
// error reached target, or +Inf (ok=false) if it never did.
func (c *Collector) TimeToErr(target float64) (float64, bool) {
	pts := append([]TracePoint(nil), c.Trace...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].VirtualSec < pts[j].VirtualSec })
	for _, tp := range pts {
		if tp.TestErr <= target {
			return tp.VirtualSec, true
		}
	}
	return 0, false
}
