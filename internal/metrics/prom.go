package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type a Prometheus text-format (0.0.4)
// response carries.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromLabel is one name="value" pair on a sample.
type PromLabel struct {
	Name, Value string
}

// PromEncoder writes the Prometheus text exposition format (version 0.0.4)
// without any client-library dependency: callers declare a metric family
// (HELP + TYPE header) and then emit its samples. Errors are sticky — the
// first write failure is retained and subsequent calls become no-ops — so
// call sites can encode a whole page and check Err once.
//
//	e := metrics.NewPromEncoder(w)
//	e.Family("disttrain_xport_frames_sent_total", "Frames sent.", "counter")
//	e.Sample("disttrain_xport_frames_sent_total",
//	    []metrics.PromLabel{{Name: "rank", Value: "0"}}, 42)
//	return e.Err()
type PromEncoder struct {
	w   io.Writer
	err error
}

// NewPromEncoder returns an encoder writing to w.
func NewPromEncoder(w io.Writer) *PromEncoder { return &PromEncoder{w: w} }

// Family emits the # HELP and # TYPE header lines for one metric family.
// typ is "counter" or "gauge" (Prometheus also defines histogram/summary,
// which this encoder does not need). Newlines in help are flattened.
func (e *PromEncoder) Family(name, help, typ string) {
	if e.err != nil {
		return
	}
	help = strings.ReplaceAll(strings.ReplaceAll(help, "\\", `\\`), "\n", `\n`)
	_, e.err = fmt.Fprintf(e.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample emits one sample line: name{labels} value. Pass nil labels for an
// unlabeled sample. Label values are escaped per the exposition format.
func (e *PromEncoder) Sample(name string, labels []PromLabel, v float64) {
	if e.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(l.Name)
			sb.WriteString(`="`)
			sb.WriteString(escapePromLabel(l.Value))
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	sb.WriteByte('\n')
	_, e.err = io.WriteString(e.w, sb.String())
}

// Err returns the first write error, or nil.
func (e *PromEncoder) Err() error { return e.err }

// escapePromLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapePromLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
