package metrics

import (
	"testing"
)

func TestBreakdownAddAndTotal(t *testing.T) {
	var b Breakdown
	b.Add(Compute, 2)
	b.Add(Network, 1)
	b.Add(GlobalAgg, -5) // clamped
	if b.Total() != 3 {
		t.Fatalf("total = %v", b.Total())
	}
	if b.Frac(Compute) != 2.0/3 {
		t.Fatalf("frac = %v", b.Frac(Compute))
	}
}

func TestBreakdownFracEmpty(t *testing.T) {
	var b Breakdown
	if b.Frac(Compute) != 0 {
		t.Fatal("empty breakdown frac not 0")
	}
}

func TestBreakdownMerge(t *testing.T) {
	var a, b Breakdown
	a.Add(Compute, 1)
	b.Add(Compute, 2)
	b.Add(LocalAgg, 3)
	a.Merge(b)
	if a[Compute] != 3 || a[LocalAgg] != 3 {
		t.Fatalf("merged = %v", a)
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{Compute: "compute", LocalAgg: "local-agg", GlobalAgg: "global-agg", Network: "network"}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("%d -> %q", p, p.String())
		}
	}
}

func TestCollectorThroughput(t *testing.T) {
	c := NewCollector(2)
	c.Workers[0] = Worker{Iters: 10, FinishedAt: 5}
	c.Workers[1] = Worker{Iters: 10, FinishedAt: 4}
	// 20 iters * 32 batch / 5 sec = 128 samples/sec
	if got := c.ThroughputSamplesPerSec(32); got != 128 {
		t.Fatalf("throughput = %v", got)
	}
	if c.MakespanSec() != 5 {
		t.Fatalf("makespan = %v", c.MakespanSec())
	}
	if c.TotalIters() != 20 {
		t.Fatalf("iters = %v", c.TotalIters())
	}
}

func TestThroughputEmpty(t *testing.T) {
	c := NewCollector(1)
	if c.ThroughputSamplesPerSec(10) != 0 {
		t.Fatal("zero-time throughput should be 0")
	}
}

func TestIterSpread(t *testing.T) {
	c := NewCollector(3)
	c.Workers[0].Iters = 5
	c.Workers[1].Iters = 9
	c.Workers[2].Iters = 7
	min, max := c.IterSpread()
	if min != 5 || max != 9 {
		t.Fatalf("spread = %d..%d", min, max)
	}
}

func TestMeanBreakdown(t *testing.T) {
	c := NewCollector(2)
	c.Workers[0].Breakdown.Add(Compute, 2)
	c.Workers[1].Breakdown.Add(Compute, 4)
	m := c.MeanBreakdown()
	if m[Compute] != 3 {
		t.Fatalf("mean = %v", m)
	}
}

func TestTraceQueries(t *testing.T) {
	c := NewCollector(1)
	c.AddTrace(TracePoint{VirtualSec: 1, TestErr: 0.5})
	c.AddTrace(TracePoint{VirtualSec: 2, TestErr: 0.2})
	c.AddTrace(TracePoint{VirtualSec: 3, TestErr: 0.3})
	if c.FinalTestErr() != 0.3 {
		t.Fatalf("final = %v", c.FinalTestErr())
	}
	if c.BestTestErr() != 0.2 {
		t.Fatalf("best = %v", c.BestTestErr())
	}
	at, ok := c.TimeToErr(0.25)
	if !ok || at != 2 {
		t.Fatalf("time to 0.25 = %v, %v", at, ok)
	}
	if _, ok := c.TimeToErr(0.1); ok {
		t.Fatal("unreachable target reported reached")
	}
}

func TestEmptyTraceDefaults(t *testing.T) {
	c := NewCollector(0)
	if c.FinalTestErr() != 1 || c.BestTestErr() != 1 {
		t.Fatal("empty trace should report error 1.0")
	}
	if _, ok := c.TimeToErr(0.5); ok {
		t.Fatal("empty trace reported a reach time")
	}
}
