package metrics

import (
	"errors"
	"regexp"
	"strings"
	"testing"
)

// promLine matches one exposition-format sample line:
// name{labels} value — the lint the observability tests apply to every
// /metrics response.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? [-+]?([0-9.eE+-]+|Inf|NaN)$`)

func TestPromEncoderFormat(t *testing.T) {
	var sb strings.Builder
	e := NewPromEncoder(&sb)
	e.Family("up_total", "Things that went\nup.", "counter")
	e.Sample("up_total", nil, 3)
	e.Sample("up_total", []PromLabel{{Name: "rank", Value: "0"}, {Name: "role", Value: "worker"}}, 42)
	e.Family("depth", "Queue depth.", "gauge")
	e.Sample("depth", []PromLabel{{Name: "q", Value: `a"b\c`}}, 0.5)
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := []string{
		"# HELP up_total Things that went\\nup.",
		"# TYPE up_total counter",
		"up_total 3",
		`up_total{rank="0",role="worker"} 42`,
		"# TYPE depth gauge",
		`depth{q="a\"b\\c"} 0.5`,
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Fatalf("output missing %q:\n%s", w, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line fails exposition-format lint: %q", line)
		}
	}
}

type failWriter struct{ err error }

func (f failWriter) Write(p []byte) (int, error) { return 0, f.err }

func TestPromEncoderStickyError(t *testing.T) {
	sentinel := errors.New("disk full")
	e := NewPromEncoder(failWriter{err: sentinel})
	e.Family("a", "b", "gauge")
	e.Sample("a", nil, 1)
	if !errors.Is(e.Err(), sentinel) {
		t.Fatalf("err = %v", e.Err())
	}
}
