// Package trace records simulation timelines in the Chrome Trace Event
// format (the JSON consumed by chrome://tracing and https://ui.perfetto.dev),
// so a simulated training schedule — compute spans per worker, message
// spans per NIC — can be inspected visually. One glance at an ASP trace
// shows the PS ingress serialization the paper's Figure 3 quantifies.
//
// Two time sources feed one exporter: the DES records virtual-time spans
// via Span (startSec/endSec are simulator seconds), while the live runtime
// records wall-clock spans via StartSpan/End (real time, anchored to the
// tracer's epoch). Both end up as the same Event shape, so one WriteJSON
// serves both runtimes.
package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Event is one complete ("X" phase) trace event. Times are microseconds of
// virtual time (Span) or wall time since the tracer's epoch (StartSpan).
type Event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// Tracer accumulates events. Methods are safe for concurrent use: the
// single-threaded simulation and the many-goroutine live runtime share
// this type.
type Tracer struct {
	mu     sync.Mutex
	events []Event
	epoch  time.Time // wall-clock zero for StartSpan spans; set on first use
}

// New creates an empty tracer.
func New() *Tracer { return &Tracer{} }

// Span records a complete event covering [startSec, endSec) of virtual
// time. pid groups tracks (machine), tid is the track (worker/NIC id).
func (t *Tracer) Span(name, cat string, startSec, endSec float64, pid, tid int) {
	if t == nil || endSec < startSec {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "X",
		Ts: startSec * 1e6, Dur: (endSec - startSec) * 1e6,
		Pid: pid, Tid: tid,
	})
	t.mu.Unlock()
}

// WallSpan is an in-progress wall-clock span opened by StartSpan and
// recorded when End is called. A nil WallSpan (from a nil tracer) is a
// no-op, so call sites never need to guard on tracing being enabled.
type WallSpan struct {
	t         *Tracer
	name, cat string
	pid, tid  int
	start     time.Time
}

// StartSpan opens a wall-clock span on the (pid, tid) track. The tracer's
// epoch — the wall instant that maps to ts 0 — is anchored by the first
// StartSpan/Mark call, so exported timestamps are relative to the start of
// the run rather than absolute time.
func (t *Tracer) StartSpan(name, cat string, pid, tid int) *WallSpan {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	if t.epoch.IsZero() {
		t.epoch = now
	}
	t.mu.Unlock()
	return &WallSpan{t: t, name: name, cat: cat, pid: pid, tid: tid, start: now}
}

// End records the span as a complete event from its start to now.
func (s *WallSpan) End() {
	if s == nil || s.t == nil {
		return
	}
	end := time.Now()
	t := s.t
	t.mu.Lock()
	if t.epoch.IsZero() {
		t.epoch = s.start
	}
	t.events = append(t.events, Event{
		Name: s.name, Cat: s.cat, Ph: "X",
		Ts:  s.start.Sub(t.epoch).Seconds() * 1e6,
		Dur: end.Sub(s.start).Seconds() * 1e6,
		Pid: s.pid, Tid: s.tid,
	})
	t.mu.Unlock()
}

// Mark records an instantaneous wall-clock event (a zero-duration span) at
// the current time — heartbeats, rejoin admissions, and other point events.
func (t *Tracer) Mark(name, cat string, pid, tid int) {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	if t.epoch.IsZero() {
		t.epoch = now
	}
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "X",
		Ts:  now.Sub(t.epoch).Seconds() * 1e6,
		Pid: pid, Tid: tid,
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON emits the events as a Chrome trace array in a canonical order.
// The sort is stable with a full (Ts, Pid, Tid, Name, Cat, Dur) key:
// equal-timestamp events (every worker's iteration-0 spans start at ts 0,
// and live goroutines append in scheduler order) would otherwise reorder
// between runs, breaking the repo's byte-reproducibility contracts.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	evs := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		switch {
		case a.Ts != b.Ts:
			return a.Ts < b.Ts
		case a.Pid != b.Pid:
			return a.Pid < b.Pid
		case a.Tid != b.Tid:
			return a.Tid < b.Tid
		case a.Name != b.Name:
			return a.Name < b.Name
		case a.Cat != b.Cat:
			return a.Cat < b.Cat
		default:
			return a.Dur < b.Dur
		}
	})
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}
