// Package trace records simulation timelines in the Chrome Trace Event
// format (the JSON consumed by chrome://tracing and https://ui.perfetto.dev),
// so a simulated training schedule — compute spans per worker, message
// spans per NIC — can be inspected visually. One glance at an ASP trace
// shows the PS ingress serialization the paper's Figure 3 quantifies.
package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Event is one complete ("X" phase) trace event. Times are microseconds of
// virtual time.
type Event struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// Tracer accumulates events. Methods are safe for use from the (single
// threaded) simulation; the mutex guards against accidental cross-engine
// sharing.
type Tracer struct {
	mu     sync.Mutex
	events []Event
}

// New creates an empty tracer.
func New() *Tracer { return &Tracer{} }

// Span records a complete event covering [startSec, endSec) of virtual
// time. pid groups tracks (machine), tid is the track (worker/NIC id).
func (t *Tracer) Span(name, cat string, startSec, endSec float64, pid, tid int) {
	if t == nil || endSec < startSec {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, Event{
		Name: name, Cat: cat, Ph: "X",
		Ts: startSec * 1e6, Dur: (endSec - startSec) * 1e6,
		Pid: pid, Tid: tid,
	})
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// WriteJSON emits the events as a Chrome trace array, sorted by timestamp.
func (t *Tracer) WriteJSON(w io.Writer) error {
	t.mu.Lock()
	evs := append([]Event(nil), t.events...)
	t.mu.Unlock()
	sort.Slice(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	enc := json.NewEncoder(w)
	return enc.Encode(evs)
}
