package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRecordsMicroseconds(t *testing.T) {
	tr := New()
	tr.Span("compute", "worker", 1.5, 2.0, 0, 3)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("%d events", len(evs))
	}
	e := evs[0]
	if e.Ts != 1.5e6 || e.Dur != 0.5e6 || e.Ph != "X" || e.Tid != 3 {
		t.Fatalf("event = %+v", e)
	}
}

func TestWriteJSONSortsByTime(t *testing.T) {
	tr := New()
	tr.Span("b", "c", 5, 6, 0, 0)
	tr.Span("a", "c", 1, 2, 0, 0)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatalf("unsorted: %+v", evs)
	}
}

func TestNegativeSpanIgnored(t *testing.T) {
	tr := New()
	tr.Span("bad", "c", 5, 4, 0, 0)
	if tr.Len() != 0 {
		t.Fatal("negative-duration span recorded")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Span("x", "y", 0, 1, 0, 0) // must not panic
}

// TestExportOrderInsertionIndependent is the regression test for the
// unstable `sort.Slice` keyed only on Ts: many equal-timestamp spans (every
// worker's iteration-0 spans start at ts 0) recorded in different insertion
// orders — the live runtime appends from concurrently scheduled goroutines —
// must still export byte-identically.
func TestExportOrderInsertionIndependent(t *testing.T) {
	span := func(i int) [2]int { return [2]int{i % 3, i % 7} } // pid, tid
	const n = 50
	forward, reverse := New(), New()
	for i := 0; i < n; i++ {
		pt := span(i)
		forward.Span("iter0", "worker", 0, float64(i), pt[0], pt[1])
	}
	for i := n - 1; i >= 0; i-- {
		pt := span(i)
		reverse.Span("iter0", "worker", 0, float64(i), pt[0], pt[1])
	}
	var a, b bytes.Buffer
	if err := forward.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := reverse.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("export depends on insertion order:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestExportTiebreakOrdersTracks(t *testing.T) {
	tr := New()
	tr.Span("b", "c", 0, 1, 1, 0)
	tr.Span("a", "c", 0, 1, 0, 2)
	tr.Span("a", "c", 0, 1, 0, 1)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if evs[0].Tid != 1 || evs[1].Tid != 2 || evs[2].Pid != 1 {
		t.Fatalf("tiebreak order wrong: %+v", evs)
	}
}

func TestWallSpanRecordsRelativeToEpoch(t *testing.T) {
	tr := New()
	sp := tr.StartSpan("compute", "worker", 0, 3)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	sp2 := tr.StartSpan("comm", "worker", 0, 3)
	sp2.End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("%d events", len(evs))
	}
	// The first span anchors the epoch, so it starts at ts 0; the second
	// starts after the first's ~2ms duration.
	if evs[0].Ts != 0 || evs[0].Dur < 1e3 {
		t.Fatalf("first span = %+v", evs[0])
	}
	if evs[1].Ts < evs[0].Dur || evs[1].Tid != 3 {
		t.Fatalf("second span = %+v", evs[1])
	}
}

func TestNilTracerWallSpanSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x", "y", 0, 0) // must not panic
	sp.End()
	tr.Mark("m", "y", 0, 0)
}

func TestMarkRecordsInstant(t *testing.T) {
	tr := New()
	tr.Mark("heartbeat", "coord", 1, 0)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Dur != 0 || evs[0].Pid != 1 {
		t.Fatalf("mark = %+v", evs)
	}
}

func TestConcurrentWallSpans(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				sp := tr.StartSpan("compute", "worker", 0, g)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 160 {
		t.Fatalf("lost events: %d", tr.Len())
	}
}

func TestEmptyTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[]") && strings.TrimSpace(buf.String()) != "null" {
		// encoding/json encodes a nil slice as null; accept either form.
		t.Fatalf("unexpected empty output: %q", buf.String())
	}
}
