package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSpanRecordsMicroseconds(t *testing.T) {
	tr := New()
	tr.Span("compute", "worker", 1.5, 2.0, 0, 3)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 {
		t.Fatalf("%d events", len(evs))
	}
	e := evs[0]
	if e.Ts != 1.5e6 || e.Dur != 0.5e6 || e.Ph != "X" || e.Tid != 3 {
		t.Fatalf("event = %+v", e)
	}
}

func TestWriteJSONSortsByTime(t *testing.T) {
	tr := New()
	tr.Span("b", "c", 5, 6, 0, 0)
	tr.Span("a", "c", 1, 2, 0, 0)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatalf("unsorted: %+v", evs)
	}
}

func TestNegativeSpanIgnored(t *testing.T) {
	tr := New()
	tr.Span("bad", "c", 5, 4, 0, 0)
	if tr.Len() != 0 {
		t.Fatal("negative-duration span recorded")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Span("x", "y", 0, 1, 0, 0) // must not panic
}

func TestEmptyTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "[]") && strings.TrimSpace(buf.String()) != "null" {
		// encoding/json encodes a nil slice as null; accept either form.
		t.Fatalf("unexpected empty output: %q", buf.String())
	}
}
