// Package opt implements the optimizer and learning-rate machinery the
// paper trains with: momentum SGD with weight decay, the linear LR scaling
// rule (η = base·N), gradual warm-up, and step decay.
//
// Optimizers operate on flat []float32 vectors rather than models because
// the same update code runs in three places: inside workers (local updates),
// inside parameter-server shards (global updates), and inside the DGC
// compressor (momentum correction).
package opt

import (
	"fmt"
	"math"

	"disttrain/internal/tensor"
)

// SGD is momentum SGD with L2 weight decay:
//
//	v ← μ·v + g + λ·w
//	w ← w − η·v
type SGD struct {
	Momentum    float32
	WeightDecay float32
	vel         []float32
}

// NewSGD creates an optimizer for parameter vectors of length n.
func NewSGD(n int, momentum, weightDecay float32) *SGD {
	return &SGD{Momentum: momentum, WeightDecay: weightDecay, vel: make([]float32, n)}
}

// Step applies one update to params given grads and learning rate lr.
// params and grads must have the optimizer's length.
func (s *SGD) Step(params, grads []float32, lr float32) {
	if len(params) != len(s.vel) || len(grads) != len(s.vel) {
		panic(fmt.Sprintf("opt: Step lengths %d/%d, want %d", len(params), len(grads), len(s.vel)))
	}
	mu, wd := s.Momentum, s.WeightDecay
	v := s.vel
	for i, g := range grads {
		vi := mu*v[i] + g + wd*params[i]
		v[i] = vi
		params[i] -= lr * vi
	}
}

// StepSegment applies the update only to [off, off+n) of the vectors — the
// form used by parameter-server shards, which own disjoint segments of the
// global parameters but share one optimizer state.
func (s *SGD) StepSegment(params, grads []float32, lr float32, off, n int) {
	mu, wd := s.Momentum, s.WeightDecay
	v := s.vel[off : off+n]
	p := params[off : off+n]
	g := grads[off : off+n]
	for i, gi := range g {
		vi := mu*v[i] + gi + wd*p[i]
		v[i] = vi
		p[i] -= lr * vi
	}
}

// StepSegmentGrad is StepSegment with a windowed gradient: params and the
// optimizer state are indexed at [off, off+n), while gseg is a local slice
// of length n holding just that window's gradient. Parameter-server shards
// use this to apply a gradient that arrived as a shard-sized message.
func (s *SGD) StepSegmentGrad(params, gseg []float32, lr float32, off, n int) {
	if len(gseg) != n {
		panic(fmt.Sprintf("opt: StepSegmentGrad gradient length %d, want %d", len(gseg), n))
	}
	mu, wd := s.Momentum, s.WeightDecay
	v := s.vel[off : off+n]
	p := params[off : off+n]
	for i, gi := range gseg {
		vi := mu*v[i] + gi + wd*p[i]
		v[i] = vi
		p[i] -= lr * vi
	}
}

// Velocity exposes the momentum buffer (used by DGC's momentum correction
// tests and ablations).
func (s *SGD) Velocity() []float32 { return s.vel }

// Reset zeroes the momentum state.
func (s *SGD) Reset() {
	for i := range s.vel {
		s.vel[i] = 0
	}
}

// Adam is the Adam optimizer (Kingma & Ba) on flat vectors — the optimizer
// transformer-era models train with, provided as an extension next to
// momentum SGD. Bias correction is applied.
type Adam struct {
	Beta1, Beta2 float32
	Eps          float32
	WeightDecay  float32
	m, v         []float32
	// b1t, b2t hold β₁ᵗ and β₂ᵗ for O(1) bias correction per step.
	b1t, b2t float32
}

// NewAdam creates an Adam optimizer for vectors of length n with the
// standard (0.9, 0.999, 1e-8) coefficients.
func NewAdam(n int, weightDecay float32) *Adam {
	return &Adam{Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: make([]float32, n), v: make([]float32, n), b1t: 1, b2t: 1}
}

// Step applies one Adam update to params given grads and learning rate lr.
func (a *Adam) Step(params, grads []float32, lr float32) {
	if len(params) != len(a.m) || len(grads) != len(a.m) {
		panic(fmt.Sprintf("opt: Adam step lengths %d/%d, want %d", len(params), len(grads), len(a.m)))
	}
	a.b1t *= a.Beta1
	a.b2t *= a.Beta2
	c1 := 1 - a.b1t
	c2 := 1 - a.b2t
	for i, g := range grads {
		g += a.WeightDecay * params[i]
		a.m[i] = a.Beta1*a.m[i] + (1-a.Beta1)*g
		a.v[i] = a.Beta2*a.v[i] + (1-a.Beta2)*g*g
		mhat := a.m[i] / c1
		vhat := a.v[i] / c2
		params[i] -= lr * mhat / (sqrt32(vhat) + a.Eps)
	}
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// Schedule is the paper's learning-rate policy: linear-scaled base rate,
// gradual warm-up over the first WarmupIters iterations (from Base/Workers
// up to Base·Workers... see NewPaperSchedule), then step decay.
type Schedule struct {
	// Base is the target learning rate after warm-up.
	Base float64
	// WarmupIters linearly ramps the rate from Base/10 to Base. Zero
	// disables warm-up.
	WarmupIters int
	// DecayAt lists iteration numbers at which the rate is multiplied by
	// DecayFactor (cumulatively). Must be ascending.
	DecayAt     []int
	DecayFactor float64
}

// NewPaperSchedule builds the schedule used throughout the evaluation
// section: η = baseLR·workers (linear scaling rule), warm-up over the first
// warmupIters, and ×0.1 decays at the given iterations (the paper decays at
// epochs 30/60/80 of 90).
func NewPaperSchedule(baseLR float64, workers int, warmupIters int, decayAt []int) Schedule {
	return Schedule{
		Base:        baseLR * float64(workers),
		WarmupIters: warmupIters,
		DecayAt:     append([]int(nil), decayAt...),
		DecayFactor: 0.1,
	}
}

// At returns the learning rate for iteration t (0-based).
func (s Schedule) At(t int) float32 {
	lr := s.Base
	if s.WarmupIters > 0 && t < s.WarmupIters {
		// ramp from Base/10 to Base
		frac := float64(t) / float64(s.WarmupIters)
		lr = s.Base * (0.1 + 0.9*frac)
	}
	f := s.DecayFactor
	if f == 0 {
		f = 0.1
	}
	for _, at := range s.DecayAt {
		if t >= at {
			lr *= f
		}
	}
	return float32(lr)
}

// CosineSchedule is a warm-up + cosine-annealing learning-rate policy — the
// modern alternative to step decay, provided as an extension for users who
// want to train the mini-models with current recipes.
type CosineSchedule struct {
	// Base is the post-warm-up peak rate.
	Base float64
	// WarmupIters ramps linearly from Base/10 to Base.
	WarmupIters int
	// TotalIters is the annealing horizon; beyond it the rate stays at Min.
	TotalIters int
	// Min is the floor rate (default 0).
	Min float64
}

// At returns the learning rate at iteration t (0-based).
func (s CosineSchedule) At(t int) float32 {
	if s.WarmupIters > 0 && t < s.WarmupIters {
		frac := float64(t) / float64(s.WarmupIters)
		return float32(s.Base * (0.1 + 0.9*frac))
	}
	if s.TotalIters <= s.WarmupIters {
		return float32(s.Base)
	}
	prog := float64(t-s.WarmupIters) / float64(s.TotalIters-s.WarmupIters)
	if prog > 1 {
		prog = 1
	}
	cos := 0.5 * (1 + math.Cos(math.Pi*prog))
	return float32(s.Min + (s.Base-s.Min)*cos)
}

// ClipByL2Norm rescales g in place so its L2 norm does not exceed maxNorm,
// returning the pre-clip norm. Used by DGC's local gradient clipping.
func ClipByL2Norm(g []float32, maxNorm float64) float64 {
	n := tensor.L2NormF32(g)
	if n > maxNorm && n > 0 {
		scale := float32(maxNorm / n)
		tensor.ScaleF32(scale, g)
	}
	return n
}

// IsFinite reports whether every element of g is finite — a guard used by
// training drivers to detect divergence early.
func IsFinite(g []float32) bool {
	for _, v := range g {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return false
		}
	}
	return true
}
