package opt

import (
	"math"
	"testing"
	"testing/quick"

	"disttrain/internal/rng"
)

func TestSGDNoMomentumIsPlainSGD(t *testing.T) {
	s := NewSGD(2, 0, 0)
	p := []float32{1, 2}
	g := []float32{0.5, -0.5}
	s.Step(p, g, 0.1)
	if math.Abs(float64(p[0])-0.95) > 1e-6 || math.Abs(float64(p[1])-2.05) > 1e-6 {
		t.Fatalf("p = %v", p)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	s := NewSGD(1, 0.9, 0)
	p := []float32{0}
	g := []float32{1}
	s.Step(p, g, 1) // v=1, p=-1
	s.Step(p, g, 1) // v=1.9, p=-2.9
	if math.Abs(float64(p[0])+2.9) > 1e-6 {
		t.Fatalf("p = %v, want -2.9", p[0])
	}
	if math.Abs(float64(s.Velocity()[0])-1.9) > 1e-6 {
		t.Fatalf("v = %v, want 1.9", s.Velocity()[0])
	}
}

func TestSGDWeightDecayPullsTowardZero(t *testing.T) {
	s := NewSGD(1, 0, 0.1)
	p := []float32{10}
	g := []float32{0}
	s.Step(p, g, 0.5)
	if p[0] != 9.5 {
		t.Fatalf("p = %v, want 9.5", p[0])
	}
}

func TestStepSegmentMatchesFullStep(t *testing.T) {
	r := rng.New(1)
	n := 40
	p1 := make([]float32, n)
	p2 := make([]float32, n)
	g := make([]float32, n)
	for i := range p1 {
		p1[i] = float32(r.NormFloat64())
		p2[i] = p1[i]
		g[i] = float32(r.NormFloat64())
	}
	full := NewSGD(n, 0.9, 0.01)
	sharded := NewSGD(n, 0.9, 0.01)
	for step := 0; step < 3; step++ {
		full.Step(p1, g, 0.1)
		// apply in three segments, any order
		sharded.StepSegment(p2, g, 0.1, 20, 10)
		sharded.StepSegment(p2, g, 0.1, 0, 20)
		sharded.StepSegment(p2, g, 0.1, 30, 10)
	}
	for i := range p1 {
		if math.Abs(float64(p1[i]-p2[i])) > 1e-6 {
			t.Fatalf("segmented update diverged at %d: %v vs %v", i, p1[i], p2[i])
		}
	}
}

func TestSGDStepPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSGD(3, 0, 0).Step([]float32{1, 2}, []float32{1, 2}, 0.1)
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// minimize f(w) = 0.5*||w - target||^2 ; grad = w - target
	target := []float32{3, -2, 7}
	w := []float32{0, 0, 0}
	s := NewSGD(3, 0.9, 0)
	g := make([]float32, 3)
	for i := 0; i < 200; i++ {
		for j := range g {
			g[j] = w[j] - target[j]
		}
		s.Step(w, g, 0.05)
	}
	for j := range w {
		if math.Abs(float64(w[j]-target[j])) > 1e-2 {
			t.Fatalf("w = %v, want %v", w, target)
		}
	}
}

func TestScheduleWarmupRampsUp(t *testing.T) {
	s := Schedule{Base: 1.0, WarmupIters: 100}
	if got := s.At(0); math.Abs(float64(got)-0.1) > 1e-6 {
		t.Fatalf("At(0) = %v, want 0.1", got)
	}
	if got := s.At(50); math.Abs(float64(got)-0.55) > 1e-6 {
		t.Fatalf("At(50) = %v, want 0.55", got)
	}
	if got := s.At(100); got != 1.0 {
		t.Fatalf("At(100) = %v, want 1", got)
	}
	// monotone during warmup
	prev := float32(0)
	for i := 0; i <= 100; i++ {
		v := s.At(i)
		if v < prev {
			t.Fatalf("warmup not monotone at %d", i)
		}
		prev = v
	}
}

func TestScheduleStepDecay(t *testing.T) {
	s := Schedule{Base: 1.0, DecayAt: []int{10, 20}, DecayFactor: 0.1}
	cases := []struct {
		t    int
		want float64
	}{{0, 1}, {9, 1}, {10, 0.1}, {19, 0.1}, {20, 0.01}, {1000, 0.01}}
	for _, c := range cases {
		if got := s.At(c.t); math.Abs(float64(got)-c.want) > 1e-7 {
			t.Fatalf("At(%d) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestPaperScheduleLinearScaling(t *testing.T) {
	s := NewPaperSchedule(0.05, 24, 0, nil)
	if got := s.At(0); math.Abs(float64(got)-1.2) > 1e-6 {
		t.Fatalf("scaled base = %v, want 0.05*24 = 1.2", got)
	}
}

func TestClipByL2Norm(t *testing.T) {
	g := []float32{3, 4}
	pre := ClipByL2Norm(g, 1)
	if math.Abs(pre-5) > 1e-6 {
		t.Fatalf("pre-clip norm %v", pre)
	}
	if math.Abs(float64(g[0])-0.6) > 1e-6 || math.Abs(float64(g[1])-0.8) > 1e-6 {
		t.Fatalf("clipped = %v", g)
	}
	// Under the cap: untouched.
	h := []float32{0.1, 0.1}
	ClipByL2Norm(h, 10)
	if h[0] != 0.1 {
		t.Fatal("clip modified in-range vector")
	}
}

func TestClipProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(30)
		g := make([]float32, n)
		for i := range g {
			g[i] = float32(r.NormFloat64() * 10)
		}
		ClipByL2Norm(g, 2.5)
		var s float64
		for _, v := range g {
			s += float64(v) * float64(v)
		}
		return math.Sqrt(s) <= 2.5+1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite([]float32{1, -2, 0}) {
		t.Fatal("finite vector reported non-finite")
	}
	if IsFinite([]float32{1, float32(math.NaN())}) {
		t.Fatal("NaN not detected")
	}
	if IsFinite([]float32{float32(math.Inf(1))}) {
		t.Fatal("Inf not detected")
	}
}

func BenchmarkSGDStep(b *testing.B) {
	n := 1 << 16
	s := NewSGD(n, 0.9, 1e-4)
	p := make([]float32, n)
	g := make([]float32, n)
	for i := range g {
		g[i] = 0.01
	}
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(p, g, 0.01)
	}
}

func TestCosineScheduleShape(t *testing.T) {
	s := CosineSchedule{Base: 1, WarmupIters: 10, TotalIters: 110, Min: 0.01}
	if got := s.At(0); math.Abs(float64(got)-0.1) > 1e-6 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := s.At(10); got != 1 {
		t.Fatalf("peak = %v", got)
	}
	// Midpoint of the cosine: (Base+Min)/2.
	if got := s.At(60); math.Abs(float64(got)-0.505) > 1e-3 {
		t.Fatalf("mid = %v", got)
	}
	if got := s.At(110); math.Abs(float64(got)-0.01) > 1e-6 {
		t.Fatalf("end = %v", got)
	}
	if got := s.At(500); math.Abs(float64(got)-0.01) > 1e-6 {
		t.Fatalf("beyond horizon = %v", got)
	}
	// Monotone decreasing after warm-up.
	prev := s.At(10)
	for i := 11; i <= 110; i++ {
		v := s.At(i)
		if v > prev+1e-7 {
			t.Fatalf("cosine not decreasing at %d", i)
		}
		prev = v
	}
}

func TestCosineDegenerateHorizon(t *testing.T) {
	s := CosineSchedule{Base: 0.5, WarmupIters: 5, TotalIters: 5}
	if got := s.At(7); got != 0.5 {
		t.Fatalf("degenerate horizon = %v", got)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	target := []float32{3, -2, 7}
	w := []float32{0, 0, 0}
	a := NewAdam(3, 0)
	g := make([]float32, 3)
	for i := 0; i < 3000; i++ {
		for j := range g {
			g[j] = w[j] - target[j]
		}
		a.Step(w, g, 0.05)
	}
	for j := range w {
		if math.Abs(float64(w[j]-target[j])) > 0.05 {
			t.Fatalf("adam w = %v, want %v", w, target)
		}
	}
}

func TestAdamFirstStepIsLRSized(t *testing.T) {
	// With bias correction, the very first step has magnitude ~lr regardless
	// of gradient scale.
	for _, scale := range []float32{0.001, 1, 1000} {
		a := NewAdam(1, 0)
		p := []float32{0}
		a.Step(p, []float32{scale}, 0.1)
		if math.Abs(float64(p[0])+0.1) > 1e-3 {
			t.Fatalf("scale %v: first step %v, want ~-0.1", scale, p[0])
		}
	}
}

func TestAdamStepPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdam(3, 0).Step([]float32{1}, []float32{1}, 0.1)
}

func TestAdamWeightDecay(t *testing.T) {
	a := NewAdam(1, 0.5)
	p := []float32{10}
	a.Step(p, []float32{0}, 0.1)
	if p[0] >= 10 {
		t.Fatalf("weight decay did not shrink param: %v", p[0])
	}
}
