package topo

import (
	"fmt"
	"sort"

	"disttrain/internal/rng"
)

// Overlay is a sparse undirected peer graph over ranks 0..N-1. Gossip
// algorithms (AD-PSGD, GoSGD) draw partners from Neighbors[r] instead of
// uniformly over all other ranks, which is what makes them viable at
// 1000-worker scale: per-round partner fan-in stays O(degree) rather than
// O(world).
type Overlay struct {
	// N is the world size.
	N int
	// Kind names the generator ("kregular" or "smallworld").
	Kind string
	// Seed is the construction seed; equal (N, Kind, degree, Seed) always
	// yields an identical graph.
	Seed uint64
	// Neighbors[r] lists r's peers, ascending, no self-loops, no
	// duplicates, and symmetric: s ∈ Neighbors[r] ⇔ r ∈ Neighbors[s].
	Neighbors [][]int
}

// RegularFeasible reports why no simple *connected* k-regular graph on n
// vertices exists, or nil if one does (k < n, n·k even, and k ≥ 2 past the
// two-rank world — every 1-regular graph on n > 2 ranks is a perfect
// matching, which is never connected).
func RegularFeasible(n, k int) error {
	switch {
	case n < 2:
		return fmt.Errorf("topo: overlay needs at least 2 ranks, got %d", n)
	case k < 1:
		return fmt.Errorf("topo: overlay degree %d < 1", k)
	case k >= n:
		return fmt.Errorf("topo: overlay degree %d >= world size %d", k, n)
	case n*k%2 != 0:
		return fmt.Errorf("topo: no %d-regular graph on %d ranks (odd degree sum)", k, n)
	case k == 1 && n > 2:
		return fmt.Errorf("topo: a 1-regular graph on %d ranks is a perfect matching, never connected", n)
	}
	return nil
}

// RandomRegular builds a random connected k-regular overlay on n ranks via
// the pairing model: k stubs per vertex, shuffled and paired, with the
// whole attempt retried on self-loops, multi-edges, or disconnection. The
// retry budget is bounded; if it runs out (tiny or adversarial n, k) the
// generator falls back to the deterministic circulant graph rank±1..±⌈k/2⌉
// (plus the antipode when k is odd), which is k-regular and connected by
// construction. Either way the result depends only on (n, k, seed).
func RandomRegular(n, k int, seed uint64) (*Overlay, error) {
	if err := RegularFeasible(n, k); err != nil {
		return nil, err
	}
	r := rng.New(seed)
	for attempt := 0; attempt < 50; attempt++ {
		adj, ok := tryPairing(n, k, r)
		if ok && connected(adj) {
			return finish(n, "kregular", seed, adj), nil
		}
	}
	return finish(n, "kregular", seed, circulant(n, k)), nil
}

// tryPairing is one pairing-model attempt; ok is false on a self-loop or
// multi-edge collision.
func tryPairing(n, k int, r *rng.RNG) ([][]int, bool) {
	stubs := make([]int, 0, n*k)
	for v := 0; v < n; v++ {
		for i := 0; i < k; i++ {
			stubs = append(stubs, v)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	adj := make([][]int, n)
	seen := make(map[[2]int]bool, n*k/2)
	for i := 0; i < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		if a == b {
			return nil, false
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return nil, false
		}
		seen[[2]int{a, b}] = true
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return adj, true
}

// circulant is the deterministic fallback: each rank connects to
// rank±1..±(k/2), plus rank+n/2 when k is odd (feasibility guarantees n is
// even in that case).
func circulant(n, k int) [][]int {
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		for d := 1; d <= k/2; d++ {
			adj[v] = append(adj[v], (v+d)%n, (v-d+n)%n)
		}
		if k%2 == 1 {
			adj[v] = append(adj[v], (v+n/2)%n)
		}
	}
	return adj
}

// SmallWorld builds a ring overlay with `chords` extra random long-range
// edges (Watts–Strogatz style augmentation): always connected via the
// ring, diameter shrinking with each chord. Chord endpoints are drawn
// seed-deterministically; draws that would duplicate an existing edge or
// form a self-loop are skipped after a bounded number of retries, so the
// realized chord count may fall short on tiny worlds.
func SmallWorld(n, chords int, seed uint64) (*Overlay, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: small-world overlay needs at least 3 ranks, got %d", n)
	}
	if chords < 0 {
		return nil, fmt.Errorf("topo: negative chord count %d", chords)
	}
	adj := make([][]int, n)
	seen := make(map[[2]int]bool, n+chords)
	addEdge := func(a, b int) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		if seen[[2]int{a, b}] {
			return false
		}
		seen[[2]int{a, b}] = true
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
		return true
	}
	for v := 0; v < n; v++ {
		addEdge(v, (v+1)%n)
	}
	r := rng.New(seed)
	for added, tries := 0, 0; added < chords && tries < 20*(chords+1); tries++ {
		if addEdge(r.Intn(n), r.Intn(n)) {
			added++
		}
	}
	return finish(n, "smallworld", seed, adj), nil
}

func finish(n int, kind string, seed uint64, adj [][]int) *Overlay {
	for v := range adj {
		sort.Ints(adj[v])
	}
	return &Overlay{N: n, Kind: kind, Seed: seed, Neighbors: adj}
}

// connected reports whether the graph is one component (BFS from 0).
func connected(adj [][]int) bool {
	if len(adj) == 0 {
		return false
	}
	seen := make([]bool, len(adj))
	queue := []int{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				count++
				queue = append(queue, w)
			}
		}
	}
	return count == len(adj)
}

// Validate checks the structural invariants every generator must uphold:
// symmetry, no self-loops, no duplicate edges, sorted neighbor lists, and
// connectivity.
func (o *Overlay) Validate() error {
	if o.N < 2 || len(o.Neighbors) != o.N {
		return fmt.Errorf("topo: overlay has %d neighbor lists for %d ranks", len(o.Neighbors), o.N)
	}
	for v, ns := range o.Neighbors {
		for i, w := range ns {
			switch {
			case w < 0 || w >= o.N:
				return fmt.Errorf("topo: rank %d has out-of-range neighbor %d", v, w)
			case w == v:
				return fmt.Errorf("topo: rank %d has a self-loop", v)
			case i > 0 && ns[i-1] >= w:
				return fmt.Errorf("topo: rank %d neighbor list not sorted/unique at %d", v, w)
			}
			if !contains(o.Neighbors[w], v) {
				return fmt.Errorf("topo: edge %d-%d not symmetric", v, w)
			}
		}
	}
	if !connected(o.Neighbors) {
		return fmt.Errorf("topo: overlay is disconnected")
	}
	return nil
}

func contains(sorted []int, x int) bool {
	i := sort.SearchInts(sorted, x)
	return i < len(sorted) && sorted[i] == x
}
