package topo

import (
	"testing"

	"disttrain/internal/cluster"
)

func TestNewGroupsMatchCluster(t *testing.T) {
	c := cluster.Paper10G(24)
	tp, err := New(c, 24)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Machines() != 6 {
		t.Fatalf("machines = %d, want 6", tp.Machines())
	}
	for m, g := range tp.Groups {
		if len(g) != 4 {
			t.Fatalf("machine %d has %d ranks, want 4", m, len(g))
		}
		for _, r := range g {
			if c.MachineOfWorker(r) != m || tp.MachineOf[r] != m {
				t.Fatalf("rank %d misplaced on machine %d", r, m)
			}
		}
	}
	if got := tp.Leaders(); len(got) != 6 || got[0] != 0 || got[5] != 20 {
		t.Fatalf("leaders = %v", got)
	}
}

func TestNewPartialLastMachine(t *testing.T) {
	// 10 workers on a 3-machine × 4-slot cluster: last group holds 2.
	tp, err := New(cluster.Paper10G(12), 10)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Machines() != 3 || len(tp.Groups[2]) != 2 {
		t.Fatalf("groups = %v", tp.Groups)
	}
	if tp.TierOf(0, 1) != TierIntra || tp.TierOf(0, 4) != TierInter {
		t.Fatal("tier classification wrong")
	}
}

func TestNewRejects(t *testing.T) {
	c := cluster.Paper10G(8)
	if _, err := New(c, 0); err == nil {
		t.Fatal("want error for 0 workers")
	}
	if _, err := New(c, 9); err == nil {
		t.Fatal("want error for workers > cluster slots")
	}
	if _, err := New(cluster.Config{}, 4); err == nil {
		t.Fatal("want error for invalid cluster")
	}
}

func TestTorusShape(t *testing.T) {
	cases := []struct {
		n, rows, cols int
		ok            bool
	}{
		{4, 2, 2, true},
		{6, 2, 3, true},
		{8, 2, 4, true},
		{12, 3, 4, true},
		{24, 4, 6, true},
		{100, 10, 10, true},
		{1024, 32, 32, true},
		{257, 0, 0, false}, // prime
		{7, 0, 0, false},   // prime
		{3, 0, 0, false},   // too small
		{2, 0, 0, false},
	}
	for _, c := range cases {
		rows, cols, err := TorusShape(c.n)
		if c.ok != (err == nil) {
			t.Fatalf("TorusShape(%d): err = %v, want ok=%v", c.n, err, c.ok)
		}
		if c.ok && (rows != c.rows || cols != c.cols) {
			t.Fatalf("TorusShape(%d) = %d×%d, want %d×%d", c.n, rows, cols, c.rows, c.cols)
		}
		if c.ok && rows*cols != c.n {
			t.Fatalf("TorusShape(%d): %d×%d does not cover", c.n, rows, cols)
		}
	}
}
