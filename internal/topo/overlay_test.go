package topo

import (
	"reflect"
	"testing"
)

func TestRandomRegularInvariants(t *testing.T) {
	for _, c := range []struct{ n, k int }{
		{4, 2}, {8, 3}, {24, 4}, {100, 4}, {257, 4}, {1024, 6},
	} {
		o, err := RandomRegular(c.n, c.k, 42)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", c.n, c.k, err)
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", c.n, c.k, err)
		}
		for v, ns := range o.Neighbors {
			if len(ns) != c.k {
				t.Fatalf("RandomRegular(%d,%d): rank %d has degree %d", c.n, c.k, v, len(ns))
			}
		}
	}
}

func TestRandomRegularDeterministic(t *testing.T) {
	a, err := RandomRegular(100, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomRegular(100, 4, 7)
	if !reflect.DeepEqual(a.Neighbors, b.Neighbors) {
		t.Fatal("same seed, different graphs")
	}
	c, _ := RandomRegular(100, 4, 8)
	if reflect.DeepEqual(a.Neighbors, c.Neighbors) {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestRandomRegularRejects(t *testing.T) {
	cases := []struct{ n, k int }{
		{1, 1}, // world too small
		{8, 0}, // degree < 1
		{8, 8}, // degree == world
		{8, 9}, // degree > world
		{5, 3}, // odd degree sum
	}
	for _, c := range cases {
		if _, err := RandomRegular(c.n, c.k, 1); err == nil {
			t.Fatalf("RandomRegular(%d,%d): want error", c.n, c.k)
		}
	}
}

func TestCirculantFallback(t *testing.T) {
	// The fallback must itself satisfy every invariant, for even and odd k.
	for _, c := range []struct{ n, k int }{{6, 2}, {8, 3}, {10, 4}, {12, 5}} {
		o := finish(c.n, "kregular", 0, circulant(c.n, c.k))
		if err := o.Validate(); err != nil {
			t.Fatalf("circulant(%d,%d): %v", c.n, c.k, err)
		}
		for v, ns := range o.Neighbors {
			if len(ns) != c.k {
				t.Fatalf("circulant(%d,%d): rank %d degree %d", c.n, c.k, v, len(ns))
			}
		}
	}
}

func TestSmallWorldInvariants(t *testing.T) {
	for _, c := range []struct{ n, chords int }{
		{3, 0}, {8, 4}, {100, 50}, {1024, 200},
	} {
		o, err := SmallWorld(c.n, c.chords, 9)
		if err != nil {
			t.Fatalf("SmallWorld(%d,%d): %v", c.n, c.chords, err)
		}
		if err := o.Validate(); err != nil {
			t.Fatalf("SmallWorld(%d,%d): %v", c.n, c.chords, err)
		}
		// Ring edges guarantee a minimum degree of 2.
		for v, ns := range o.Neighbors {
			if len(ns) < 2 {
				t.Fatalf("SmallWorld(%d,%d): rank %d degree %d < 2", c.n, c.chords, v, len(ns))
			}
		}
	}
	if _, err := SmallWorld(2, 0, 1); err == nil {
		t.Fatal("want error for n=2")
	}
	if _, err := SmallWorld(8, -1, 1); err == nil {
		t.Fatal("want error for negative chords")
	}
}

func TestSmallWorldDeterministic(t *testing.T) {
	a, _ := SmallWorld(64, 20, 3)
	b, _ := SmallWorld(64, 20, 3)
	if !reflect.DeepEqual(a.Neighbors, b.Neighbors) {
		t.Fatal("same seed, different graphs")
	}
}

// FuzzOverlay checks the generator invariants — degree, symmetry,
// connectivity — under arbitrary seeds and sizes for both generators.
func FuzzOverlay(f *testing.F) {
	f.Add(8, 3, uint64(1))
	f.Add(100, 4, uint64(42))
	f.Add(257, 4, uint64(0))
	f.Add(6, 5, uint64(99))
	f.Add(1024, 6, uint64(7))
	f.Fuzz(func(t *testing.T, n, k int, seed uint64) {
		if n > 2048 || k > 64 {
			t.Skip("bounded for fuzz throughput")
		}
		if err := RegularFeasible(n, k); err == nil {
			o, genErr := RandomRegular(n, k, seed)
			if genErr != nil {
				t.Fatalf("feasible (%d,%d) failed: %v", n, k, genErr)
			}
			if err := o.Validate(); err != nil {
				t.Fatalf("RandomRegular(%d,%d,%d): %v", n, k, seed, err)
			}
			for v, ns := range o.Neighbors {
				if len(ns) != k {
					t.Fatalf("RandomRegular(%d,%d,%d): rank %d degree %d", n, k, seed, v, len(ns))
				}
			}
		} else if _, genErr := RandomRegular(n, k, seed); genErr == nil {
			t.Fatalf("infeasible (%d,%d) accepted", n, k)
		}
		if n >= 3 && k >= 0 && k <= 256 {
			o, err := SmallWorld(n, k, seed)
			if err != nil {
				t.Fatalf("SmallWorld(%d,%d,%d): %v", n, k, seed, err)
			}
			if err := o.Validate(); err != nil {
				t.Fatalf("SmallWorld(%d,%d,%d): %v", n, k, seed, err)
			}
		}
	})
}
