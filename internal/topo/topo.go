// Package topo derives communication topology from the cluster layout:
// machine-aware rank groups for hierarchical collectives, rectangular grids
// for torus collectives, and sparse overlay graphs for gossip algorithms.
//
// Everything here is pure description — the topology says *who* talks to
// *whom*; the collectives in internal/comm and the partner selection in
// internal/core consume it to decide *when* and *how much*.
package topo

import (
	"fmt"

	"disttrain/internal/cluster"
)

// Tier classifies an edge between two ranks by the link it crosses.
type Tier int

const (
	// TierIntra is a same-machine edge (PCIe/NVLink-class bus).
	TierIntra Tier = iota
	// TierInter is a cross-machine edge (NIC fabric).
	TierInter
)

func (t Tier) String() string {
	if t == TierIntra {
		return "intra"
	}
	return "inter"
}

// Topology is the machine-aware view of a world of ranks 0..Workers-1
// placed on a cluster. Ranks are packed onto machines exactly as
// cluster.Config.MachineOfWorker places them; the last machine may hold
// fewer ranks when Workers is not a multiple of WorkersPerMachine.
type Topology struct {
	// Workers is the world size.
	Workers int
	// Cluster is the underlying physical layout.
	Cluster cluster.Config
	// Groups[m] lists the ranks on machine m, ascending. Machines with no
	// ranks (beyond the last occupied one) are omitted, so len(Groups) is
	// the number of occupied machines.
	Groups [][]int
	// MachineOf[r] is the group index of rank r.
	MachineOf []int
}

// New builds the topology for ranks 0..workers-1 on c.
func New(c cluster.Config, workers int) (*Topology, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if workers < 1 || workers > c.Workers() {
		return nil, fmt.Errorf("topo: %d workers on a %d-slot cluster", workers, c.Workers())
	}
	t := &Topology{Workers: workers, Cluster: c, MachineOf: make([]int, workers)}
	for r := 0; r < workers; r++ {
		m := c.MachineOfWorker(r)
		for len(t.Groups) <= m {
			t.Groups = append(t.Groups, nil)
		}
		t.Groups[m] = append(t.Groups[m], r)
		t.MachineOf[r] = m
	}
	return t, nil
}

// Machines returns the number of occupied machines.
func (t *Topology) Machines() int { return len(t.Groups) }

// Leaders returns the lowest rank on each occupied machine, ascending.
func (t *Topology) Leaders() []int {
	ls := make([]int, len(t.Groups))
	for m, g := range t.Groups {
		ls[m] = g[0]
	}
	return ls
}

// TierOf classifies the edge between ranks a and b.
func (t *Topology) TierOf(a, b int) Tier {
	if t.MachineOf[a] == t.MachineOf[b] {
		return TierIntra
	}
	return TierInter
}

// TorusShape factors n into the most-square rows×cols grid with
// 2 ≤ rows ≤ cols. It errors on worlds that only admit a degenerate 1×n
// grid (primes and n < 4), where a torus collapses to a flat ring and the
// caller should say so rather than silently run the wrong algorithm.
func TorusShape(n int) (rows, cols int, err error) {
	if n < 4 {
		return 0, 0, fmt.Errorf("topo: torus needs at least 4 ranks, got %d", n)
	}
	for r := isqrt(n); r >= 2; r-- {
		if n%r == 0 {
			return r, n / r, nil
		}
	}
	return 0, 0, fmt.Errorf("topo: torus needs a rectangular rank count, %d is prime", n)
}

func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
