package ctlplane

import (
	"context"
	"fmt"
	"sync"
	"time"

	"disttrain/internal/api"
)

// metricHub fans one experiment's metric stream out to any number of
// subscribers with lossless replay: every published point is retained, a
// subscriber starting late reads the backlog first and then follows live.
type metricHub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	points []api.MetricPoint
	closed bool
}

func newMetricHub() *metricHub {
	h := &metricHub{}
	h.cond = sync.NewCond(&h.mu)
	return h
}

// Publish appends a point and wakes subscribers. Safe for concurrent use
// (live workers publish from many goroutines).
func (h *metricHub) Publish(p api.MetricPoint) {
	h.mu.Lock()
	h.points = append(h.points, p)
	h.mu.Unlock()
	h.cond.Broadcast()
}

// CloseHub marks the stream complete and wakes subscribers so they can
// drain and finish.
func (h *metricHub) CloseHub() {
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	h.cond.Broadcast()
}

// Next blocks until points beyond index n exist, the stream closes, or ctx
// is cancelled; it returns the new points and whether the stream is still
// open. (nil, false) with no points means the subscriber should stop.
func (h *metricHub) Next(ctx context.Context, n int) ([]api.MetricPoint, bool) {
	// A cond has no channel to select on, so a per-call waker turns
	// context cancellation into a broadcast.
	stop := context.AfterFunc(ctx, h.cond.Broadcast)
	defer stop()
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.points) <= n && !h.closed && ctx.Err() == nil {
		h.cond.Wait()
	}
	if ctx.Err() != nil {
		return nil, false
	}
	pts := append([]api.MetricPoint(nil), h.points[n:]...)
	return pts, !h.closed
}

// experiment pairs a status record with its metric hub.
type experiment struct {
	mu     sync.Mutex
	status api.ExperimentStatus
	hub    *metricHub
}

func (e *experiment) snapshot() *api.ExperimentStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.status
	return &st
}

// Service is the experiment control plane core: it accepts validated
// submissions, queues them, runs them with bounded concurrency across the
// simulator and live backends, streams metrics, and persists results via a
// Store. It is a lifecycle Component: Start launches the worker pool,
// shutdown (context cancellation) lets in-flight experiments finish and
// leaves queued ones persisted for the next incarnation to resume.
type Service struct {
	Lifecycle
	store *Store
	conc  int

	mu     sync.Mutex
	exps   map[string]*experiment
	order  []string
	nextID int

	queue chan *experiment
	wg    sync.WaitGroup
	now   func() time.Time
}

// ServiceOptions configures NewService.
type ServiceOptions struct {
	// StateDir persists experiment artifacts; empty runs in-memory only.
	StateDir string
	// Concurrency bounds simultaneously running experiments (default 4).
	Concurrency int
	// QueueDepth bounds accepted-but-not-started experiments (default 256);
	// submissions beyond it are rejected.
	QueueDepth int
	// Now overrides the clock (tests); nil uses time.Now.
	Now func() time.Time
}

// NewService builds the service, reloading every persisted experiment from
// the state directory: terminal ones become immediately queryable (their
// metric streams replay empty — metrics are not persisted, results are),
// and queued or interrupted-while-running ones are re-enqueued to run
// again once Start brings the worker pool up.
func NewService(o ServiceOptions) (*Service, error) {
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	store, err := NewStore(o.StateDir)
	if err != nil {
		return nil, err
	}
	s := &Service{
		Lifecycle: NewLifecycle(),
		store:     store,
		conc:      o.Concurrency,
		exps:      make(map[string]*experiment),
		queue:     make(chan *experiment, o.QueueDepth),
		now:       o.Now,
	}
	prior, err := store.Load()
	if err != nil {
		return nil, err
	}
	for _, st := range prior {
		e := &experiment{status: *st, hub: newMetricHub()}
		var n int
		if _, err := fmt.Sscanf(st.ID, "exp-%d", &n); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		if api.TerminalState(st.State) {
			e.hub.CloseHub()
		} else {
			// The previous incarnation stopped before this experiment
			// finished; run it afresh.
			e.status.State = api.StateQueued
			e.status.StartedAt = time.Time{}
			select {
			case s.queue <- e:
			default:
				return nil, fmt.Errorf("ctlplane: queue depth %d too small for %d resumed experiments", o.QueueDepth, len(prior))
			}
		}
		s.exps[st.ID] = e
		s.order = append(s.order, st.ID)
	}
	return s, nil
}

// Start launches the worker pool. Workers exit once ctx is cancelled AND
// their current experiment (if any) has finished; Done closes after the
// last worker exits.
func (s *Service) Start(ctx context.Context) error {
	for i := 0; i < s.conc; i++ {
		s.wg.Add(1)
		go s.worker(ctx)
	}
	go func() {
		s.wg.Wait()
		s.MarkDone()
	}()
	s.MarkReady()
	return nil
}

// Submit validates the spec (rejecting bad specs before anything is
// queued), assigns an ID, persists the queued record, and enqueues it.
func (s *Service) Submit(spec api.ExperimentSpec) (*api.ExperimentStatus, error) {
	if _, err := spec.Validated(); err != nil {
		return nil, err
	}
	e := &experiment{hub: newMetricHub()}
	s.mu.Lock()
	id := fmt.Sprintf("exp-%06d", s.nextID)
	s.nextID++
	e.status = api.ExperimentStatus{
		ID:          id,
		Spec:        spec,
		State:       api.StateQueued,
		SubmittedAt: s.now().UTC(),
	}
	select {
	case s.queue <- e:
	default:
		s.nextID--
		s.mu.Unlock()
		return nil, errQueueFull
	}
	s.exps[id] = e
	s.order = append(s.order, id)
	s.mu.Unlock()
	if err := s.store.Save(e.snapshot()); err != nil {
		return nil, err
	}
	return e.snapshot(), nil
}

// Get returns a snapshot of one experiment's status, or nil if unknown.
func (s *Service) Get(id string) *api.ExperimentStatus {
	s.mu.Lock()
	e := s.exps[id]
	s.mu.Unlock()
	if e == nil {
		return nil
	}
	return e.snapshot()
}

// List returns snapshots of every experiment in submission order,
// optionally filtered to one lifecycle state.
func (s *Service) List(state string) []*api.ExperimentStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := []*api.ExperimentStatus{}
	for _, id := range ids {
		st := s.Get(id)
		if st != nil && (state == "" || st.State == state) {
			out = append(out, st)
		}
	}
	return out
}

// ServiceMetrics is one point-in-time snapshot of the service's operational
// state, rendered by the HTTP layer's /metrics endpoint.
type ServiceMetrics struct {
	// QueueDepth is how many accepted experiments are waiting for a worker.
	QueueDepth int
	// Concurrency is the size of the experiment worker pool.
	Concurrency int
	// Submitted counts every experiment this incarnation knows about,
	// including ones reloaded from the state directory.
	Submitted int
	// States maps each lifecycle state to its current experiment count;
	// all four states are always present.
	States map[string]int
}

// Metrics snapshots the service's operational state for a scrape.
func (s *Service) Metrics() ServiceMetrics {
	s.mu.Lock()
	exps := make([]*experiment, 0, len(s.exps))
	for _, e := range s.exps {
		exps = append(exps, e)
	}
	submitted := len(s.order)
	s.mu.Unlock()
	m := ServiceMetrics{
		QueueDepth:  len(s.queue),
		Concurrency: s.conc,
		Submitted:   submitted,
		States: map[string]int{
			api.StateQueued: 0, api.StateRunning: 0,
			api.StateDone: 0, api.StateFailed: 0,
		},
	}
	for _, e := range exps {
		m.States[e.snapshot().State]++
	}
	return m
}

// Hub returns the experiment's metric hub for streaming, or nil if the
// experiment is unknown.
func (s *Service) Hub(id string) *metricHub {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.exps[id]; e != nil {
		return e.hub
	}
	return nil
}

func (s *Service) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case e := <-s.queue:
			s.runOne(ctx, e)
		}
	}
}

func (s *Service) runOne(ctx context.Context, e *experiment) {
	if ctx.Err() != nil {
		// Shutdown raced the dequeue: leave the experiment queued (and
		// persisted as such) for the next incarnation to resume.
		return
	}
	e.mu.Lock()
	e.status.State = api.StateRunning
	e.status.StartedAt = s.now().UTC()
	spec := e.status.Spec
	e.mu.Unlock()
	s.persist(e)

	res, err := api.Run(ctx, spec, &api.RunOptions{OnMetric: e.hub.Publish})

	e.mu.Lock()
	e.status.FinishedAt = s.now().UTC()
	if err != nil {
		e.status.State = api.StateFailed
		e.status.Error = err.Error()
	} else {
		e.status.State = api.StateDone
		e.status.Result = res
	}
	e.mu.Unlock()
	s.persist(e)
	e.hub.CloseHub()
}

// persist best-effort saves a snapshot; a storage failure downgrades the
// service to in-memory for that record rather than killing the run.
func (s *Service) persist(e *experiment) {
	if err := s.store.Save(e.snapshot()); err != nil {
		e.mu.Lock()
		if e.status.Error == "" {
			e.status.Error = fmt.Sprintf("persist: %v", err)
		}
		e.mu.Unlock()
	}
}
