package ctlplane

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"disttrain/internal/api"
)

// simSpec is a small deterministic simulator job.
func simSpec(seed uint64) api.ExperimentSpec {
	return api.ExperimentSpec{Algo: "bsp", Workers: 4, Iters: 12, Seed: seed}
}

// realSimSpec is a small real-mode simulator job: only real-mode runs
// record convergence samples, so this is the spec for streaming tests.
func realSimSpec(seed uint64) api.ExperimentSpec {
	return api.ExperimentSpec{
		Algo: "bsp", Workers: 2, Iters: 6, Seed: seed,
		Real: &api.RealSpec{Batch: 4, EvalEvery: 1, EvalMax: 50},
	}
}

// chanSpec is a small live in-process job (real gradient math required by
// the wall-clock backends).
func chanSpec(seed uint64) api.ExperimentSpec {
	return api.ExperimentSpec{
		Algo: "bsp", Workers: 2, Iters: 4, Seed: seed,
		Transport: api.TransportChan,
		Real:      &api.RealSpec{Batch: 4},
	}
}

// startService builds, starts, and tears down a Service plus an httptest
// front end, returning a client pointed at it.
func startService(t *testing.T, o ServiceOptions) (*api.Client, *Service) {
	t.Helper()
	svc, err := NewService(o)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := svc.Start(ctx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMux(svc))
	t.Cleanup(func() {
		ts.Close()
		cancel()
		<-svc.Done()
	})
	return &api.Client{Base: ts.URL}, svc
}

// TestSubmitPollStreamResult walks the happy path over real HTTP: submit a
// sim job, watch its SSE metric stream to completion, poll to the terminal
// state, and fetch the result.
func TestSubmitPollStreamResult(t *testing.T) {
	c, _ := startService(t, ServiceOptions{})
	ctx := context.Background()

	st, err := c.Submit(ctx, realSimSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != api.StateQueued {
		t.Fatalf("submit status: %+v", st)
	}
	if st.SubmittedAt.IsZero() {
		t.Fatal("submit did not stamp SubmittedAt")
	}

	var pts []api.MetricPoint
	if err := c.StreamMetrics(ctx, st.ID, func(p api.MetricPoint) {
		pts = append(pts, p)
	}); err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(pts) == 0 {
		t.Fatal("SSE stream delivered no metric points")
	}
	for _, p := range pts {
		if p.Worker != -1 {
			t.Fatalf("sim metrics must be global samples, got worker %d", p.Worker)
		}
	}

	fin, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.StateDone {
		t.Fatalf("state %q (error %q), want done", fin.State, fin.Error)
	}
	if fin.StartedAt.IsZero() || fin.FinishedAt.IsZero() {
		t.Fatalf("missing lifecycle timestamps: %+v", fin)
	}

	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != api.TransportSim || res.Summary.Iters != 6 {
		t.Fatalf("result: transport=%q iters=%d", res.Transport, res.Summary.Iters)
	}
}

// TestMalformedSpec400 exercises the decode-failure path.
func TestMalformedSpec400(t *testing.T) {
	c, _ := startService(t, ServiceOptions{})
	resp, err := http.Post(c.Base+"/v1/experiments", "application/json",
		strings.NewReader(`{"algo": `))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: got %d, want 400", resp.StatusCode)
	}
}

// TestInvalidSpec400 exercises submission-time validation: the spec parses
// but names no algorithm.
func TestInvalidSpec400(t *testing.T) {
	c, _ := startService(t, ServiceOptions{})
	if _, err := c.Submit(context.Background(), api.ExperimentSpec{Workers: 4}); err == nil {
		t.Fatal("spec without algo accepted")
	}
	resp, err := http.Post(c.Base+"/v1/experiments", "application/json",
		strings.NewReader(`{"workers": 4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: got %d, want 400", resp.StatusCode)
	}
}

// TestUnknownExperiment404 covers the three per-experiment endpoints.
func TestUnknownExperiment404(t *testing.T) {
	c, _ := startService(t, ServiceOptions{})
	for _, path := range []string{
		"/v1/experiments/exp-999999",
		"/v1/experiments/exp-999999/result",
		"/v1/experiments/exp-999999/metrics",
	} {
		resp, err := http.Get(c.Base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: got %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestResultBeforeDone409 asks for a result while the experiment is still
// queued (the service has no workers to run it: Start was never called).
func TestResultBeforeDone409(t *testing.T) {
	svc, err := NewService(ServiceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMux(svc))
	defer ts.Close()
	c := &api.Client{Base: ts.URL}
	st, err := c.Submit(context.Background(), simSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/experiments/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of queued experiment: got %d, want 409", resp.StatusCode)
	}
}

// TestQueueFull503 fills a depth-1 queue on an unstarted service and
// verifies the next submission is rejected as retryable.
func TestQueueFull503(t *testing.T) {
	svc, err := NewService(ServiceOptions{QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMux(svc))
	defer ts.Close()
	c := &api.Client{Base: ts.URL}
	if _, err := c.Submit(context.Background(), simSpec(1)); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(simSpec(2))
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission: got %d, want 503", resp.StatusCode)
	}
}

// TestDeterminismOverHTTP enforces the byte-identity contract: a simulator
// job submitted through the HTTP control plane must export the exact bytes a
// direct in-process run of the same spec exports.
func TestDeterminismOverHTTP(t *testing.T) {
	spec := simSpec(42)

	direct, err := api.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := direct.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}

	c, _ := startService(t, ServiceOptions{})
	ctx := context.Background()
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got, err := c.ResultJSON(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("HTTP result diverged from direct run:\nhttp:   %s\ndirect: %s", got, want.Bytes())
	}
}

// TestConcurrentMixedSubmissions pushes four jobs across both backends at
// once and requires all of them to finish.
func TestConcurrentMixedSubmissions(t *testing.T) {
	c, _ := startService(t, ServiceOptions{Concurrency: 4})
	ctx := context.Background()
	specs := []api.ExperimentSpec{simSpec(1), chanSpec(2), simSpec(3), chanSpec(4)}

	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := c.Submit(ctx, spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = st.ID
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, id := range ids {
		st, err := c.Wait(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if st.State != api.StateDone {
			t.Fatalf("experiment %s (spec %d): state %q, error %q", id, i, st.State, st.Error)
		}
		if specs[i].Transport == api.TransportChan && st.Result.Transport != "chan" {
			t.Fatalf("experiment %s ran on %q, want chan", id, st.Result.Transport)
		}
	}
}

// TestRestartPersistence runs a job to completion, tears the whole service
// down, and brings a fresh incarnation up over the same state directory: the
// result must still be served, byte-identical.
func TestRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	svc1, err := NewService(ServiceOptions{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	runCtx, cancel := context.WithCancel(ctx)
	if err := svc1.Start(runCtx); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(NewMux(svc1))
	c1 := &api.Client{Base: ts1.URL}
	st, err := c1.Submit(ctx, simSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Wait(ctx, st.ID, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	want, err := c1.ResultJSON(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	cancel()
	<-svc1.Done()

	c2, _ := startService(t, ServiceOptions{StateDir: dir})
	got2, err := c2.Get(ctx, st.ID)
	if err != nil {
		t.Fatalf("restarted service lost experiment %s: %v", st.ID, err)
	}
	if got2.State != api.StateDone {
		t.Fatalf("restarted state %q, want done", got2.State)
	}
	gotJSON, err := c2.ResultJSON(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, want) {
		t.Fatalf("result changed across restart:\nbefore: %s\nafter:  %s", want, gotJSON)
	}
}

// TestRestartResumesQueued verifies an experiment interrupted before it ran
// is re-enqueued and completed by the next incarnation.
func TestRestartResumesQueued(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// First incarnation: never started, so the submission stays queued on
	// disk — the same artifact an interrupted-mid-shutdown run leaves.
	svc1, err := NewService(ServiceOptions{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc1.Submit(simSpec(5))
	if err != nil {
		t.Fatal(err)
	}

	c2, _ := startService(t, ServiceOptions{StateDir: dir})
	fin, err := c2.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.StateDone {
		t.Fatalf("resumed experiment state %q (error %q), want done", fin.State, fin.Error)
	}
}
