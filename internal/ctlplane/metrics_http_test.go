package ctlplane

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"disttrain/internal/api"
)

// promLine is the exposition-format lint applied to every /metrics line:
// name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? [-+]?([0-9.eE+-]+|Inf|NaN)$`)

// scrapeMetrics GETs /metrics and returns each sample parsed into
// name{labels} -> value, linting every line on the way.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line fails exposition-format lint: %q", line)
		}
		key, val, _ := strings.Cut(line, " ")
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[key] = v
	}
	return samples
}

// TestMetricsEndpoint scrapes /metrics before and after running an
// experiment: the format must lint, the gauges must reflect the service
// state, and counters must be monotonic across the two scrapes.
func TestMetricsEndpoint(t *testing.T) {
	client, _ := startService(t, ServiceOptions{Concurrency: 2})

	before := scrapeMetrics(t, client.Base)
	for _, want := range []string{
		"disttrain_ctlplane_queue_depth",
		"disttrain_ctlplane_worker_concurrency",
		`disttrain_ctlplane_experiments{state="queued"}`,
		`disttrain_ctlplane_experiments{state="running"}`,
		`disttrain_ctlplane_experiments{state="done"}`,
		`disttrain_ctlplane_experiments{state="failed"}`,
		"disttrain_ctlplane_experiments_submitted_total",
	} {
		if _, ok := before[want]; !ok {
			t.Errorf("scrape missing %s", want)
		}
	}
	if v := before["disttrain_ctlplane_worker_concurrency"]; v != 2 {
		t.Errorf("concurrency = %v, want 2", v)
	}
	if v := before["disttrain_ctlplane_experiments_submitted_total"]; v != 0 {
		t.Errorf("submitted_total = %v before any submission", v)
	}

	ctx := context.Background()
	st, err := client.Submit(ctx, simSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if st, err = client.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("experiment state %s: %s", st.State, st.Error)
	}

	after := scrapeMetrics(t, client.Base)
	for key, v := range before {
		if !strings.Contains(key, "_total") {
			continue
		}
		if after[key] < v {
			t.Errorf("counter %s went backwards: %v -> %v", key, v, after[key])
		}
	}
	if v := after["disttrain_ctlplane_experiments_submitted_total"]; v != 1 {
		t.Errorf("submitted_total = %v after one submission", v)
	}
	if v := after[`disttrain_ctlplane_experiments{state="done"}`]; v != 1 {
		t.Errorf("done gauge = %v after one completed experiment", v)
	}
}
