// Package ctlplane is the experiment control plane: a long-lived service
// that accepts api.ExperimentSpec submissions over HTTP/JSON, queues them,
// runs them with bounded concurrency across the simulator and the live
// runtime, streams per-iteration metrics to subscribers, and persists every
// result as a JSON artifact that survives service restarts.
//
// The daemon (cmd/expd) is composed from lifecycle Components in the spirit
// of flow-go's node builder: each long-lived part declares an explicit
// Start/Ready/Done contract and a Group starts them in dependency order and
// shuts them down in reverse.
package ctlplane

import (
	"context"
	"fmt"
	"sync"
)

// Component is one long-lived part of the daemon with an explicit
// lifecycle. Start launches the component's work and returns promptly
// (errors here abort daemon startup); Ready closes once the component is
// fully operational (listeners bound, workers launched); Done closes after
// the component has fully shut down in response to context cancellation.
type Component interface {
	Start(ctx context.Context) error
	Ready() <-chan struct{}
	Done() <-chan struct{}
}

// Lifecycle is an embeddable helper implementing the Ready/Done halves of
// Component: the embedding type calls MarkReady when operational and
// MarkDone after shutdown. Both are idempotent.
type Lifecycle struct {
	readyOnce, doneOnce sync.Once
	ready, done         chan struct{}
}

// NewLifecycle returns an initialized Lifecycle (required — the zero value
// has nil channels).
func NewLifecycle() Lifecycle {
	return Lifecycle{ready: make(chan struct{}), done: make(chan struct{})}
}

// MarkReady closes the Ready channel.
func (l *Lifecycle) MarkReady() { l.readyOnce.Do(func() { close(l.ready) }) }

// MarkDone closes the Done channel.
func (l *Lifecycle) MarkDone() { l.doneOnce.Do(func() { close(l.done) }) }

// Ready implements Component.
func (l *Lifecycle) Ready() <-chan struct{} { return l.ready }

// Done implements Component.
func (l *Lifecycle) Done() <-chan struct{} { return l.done }

// Group composes named Components into one startup/shutdown sequence:
// Start launches them in order, waiting for each to become Ready before
// starting the next (so e.g. the HTTP listener only binds after the
// experiment service is accepting work), and Done resolves only after every
// component has shut down.
type Group struct {
	names      []string
	components []Component
}

// Add appends a named component; order of Add calls is startup order.
func (g *Group) Add(name string, c Component) *Group {
	g.names = append(g.names, name)
	g.components = append(g.components, c)
	return g
}

// Start brings every component up in order. If a component fails to start
// or the context is cancelled mid-startup, the error is returned and
// already-started components wind down via the shared context.
func (g *Group) Start(ctx context.Context) error {
	for i, c := range g.components {
		if err := c.Start(ctx); err != nil {
			return fmt.Errorf("ctlplane: start %s: %w", g.names[i], err)
		}
		select {
		case <-c.Ready():
		case <-ctx.Done():
			return fmt.Errorf("ctlplane: cancelled waiting for %s: %w", g.names[i], ctx.Err())
		}
	}
	return nil
}

// Wait blocks until every component reports Done (components shut down when
// the context passed to Start is cancelled). Waiting runs in reverse start
// order, mirroring dependency teardown.
func (g *Group) Wait() {
	for i := len(g.components) - 1; i >= 0; i-- {
		<-g.components[i].Done()
	}
}
