package ctlplane

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"disttrain/internal/api"
	"disttrain/internal/metrics"
)

// NewMux builds the control plane's HTTP API on a standard ServeMux:
//
//	POST /v1/experiments              submit a spec, 202 + status
//	GET  /v1/experiments?state=...    list experiments
//	GET  /v1/experiments/{id}         one experiment's status
//	GET  /v1/experiments/{id}/metrics SSE metric stream (replay + live)
//	GET  /v1/experiments/{id}/result  the raw RunResult JSON
//	GET  /healthz                     liveness probe
//	GET  /metrics                     Prometheus-text operational metrics
//
// See docs/CONTROLPLANE.md for the full API reference.
func NewMux(s *Service) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		var spec api.ExperimentSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
			return
		}
		st, err := s.Submit(spec)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, errQueueFull) {
				code = http.StatusServiceUnavailable
			}
			httpError(w, code, err)
			return
		}
		w.Header().Set("Location", "/v1/experiments/"+st.ID)
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.List(r.URL.Query().Get("state")))
	})
	mux.HandleFunc("GET /v1/experiments/{id}", func(w http.ResponseWriter, r *http.Request) {
		st := s.Get(r.PathValue("id"))
		if st == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/experiments/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		st := s.Get(r.PathValue("id"))
		switch {
		case st == nil:
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", r.PathValue("id")))
		case st.State == api.StateFailed:
			httpError(w, http.StatusConflict, fmt.Errorf("experiment %s failed: %s", st.ID, st.Error))
		case st.Result == nil:
			httpError(w, http.StatusConflict, fmt.Errorf("experiment %s is %s; no result yet", st.ID, st.State))
		default:
			// The result endpoint emits RunResult.WriteJSON verbatim — the
			// same bytes a direct core.Run export produces, which the
			// determinism e2e test compares byte-for-byte.
			w.Header().Set("Content-Type", "application/json")
			st.Result.WriteJSON(w)
		}
	})
	mux.HandleFunc("GET /v1/experiments/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		hub := s.Hub(r.PathValue("id"))
		if hub == nil {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown experiment %q", r.PathValue("id")))
			return
		}
		serveSSE(w, r, hub)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		serveServiceMetrics(w, s)
	})
	return mux
}

// serveServiceMetrics renders one Prometheus-text scrape of the service's
// operational state (see docs/OBSERVABILITY.md for the metric reference).
func serveServiceMetrics(w http.ResponseWriter, s *Service) {
	sm := s.Metrics()
	w.Header().Set("Content-Type", metrics.PromContentType)
	e := metrics.NewPromEncoder(w)
	e.Family("disttrain_ctlplane_queue_depth", "Experiments accepted but not yet started.", "gauge")
	e.Sample("disttrain_ctlplane_queue_depth", nil, float64(sm.QueueDepth))
	e.Family("disttrain_ctlplane_worker_concurrency", "Size of the experiment worker pool.", "gauge")
	e.Sample("disttrain_ctlplane_worker_concurrency", nil, float64(sm.Concurrency))
	e.Family("disttrain_ctlplane_experiments", "Experiments known to the service, by lifecycle state.", "gauge")
	for _, st := range []string{api.StateQueued, api.StateRunning, api.StateDone, api.StateFailed} {
		e.Sample("disttrain_ctlplane_experiments",
			[]metrics.PromLabel{{Name: "state", Value: st}}, float64(sm.States[st]))
	}
	e.Family("disttrain_ctlplane_experiments_submitted_total", "Experiments accepted over this service incarnation's life (reloaded ones included).", "counter")
	e.Sample("disttrain_ctlplane_experiments_submitted_total", nil, float64(sm.Submitted))
}

// errQueueFull is Service.Submit's queue-full failure; the HTTP layer maps
// it to 503 (try again later) instead of the 400 a bad spec gets.
var errQueueFull = errors.New("ctlplane: submission queue full")

// serveSSE streams an experiment's metric points as server-sent events:
// each point is one `event: metric` with a JSON MetricPoint payload, and
// the stream finishes with `event: done` once the run completes. A
// subscriber joining late replays the full backlog first.
func serveSSE(w http.ResponseWriter, r *http.Request, hub *metricHub) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	n := 0
	for {
		pts, open := hub.Next(r.Context(), n)
		for _, p := range pts {
			data, err := json.Marshal(p)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: metric\ndata: %s\n\n", data); err != nil {
				return
			}
		}
		if len(pts) > 0 {
			fl.Flush()
		}
		n += len(pts)
		if !open {
			if r.Context().Err() == nil {
				fmt.Fprint(w, "event: done\ndata: {}\n\n")
				fl.Flush()
			}
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// HTTPServer wraps an http.Server as a lifecycle Component: Start binds the
// listener and begins serving, Ready closes once the listener is bound, and
// context cancellation triggers graceful shutdown (in-flight requests get a
// drain window).
type HTTPServer struct {
	Lifecycle
	Addr    string
	Handler http.Handler

	// BoundAddr is the listener's concrete address, available after Ready
	// (useful with Addr ":0").
	BoundAddr string

	srv *http.Server
}

// NewHTTPServer returns a server component listening on addr.
func NewHTTPServer(addr string, h http.Handler) *HTTPServer {
	return &HTTPServer{Lifecycle: NewLifecycle(), Addr: addr, Handler: h}
}

// Start implements Component.
func (s *HTTPServer) Start(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.Addr)
	if err != nil {
		return err
	}
	s.BoundAddr = ln.Addr().String()
	s.srv = &http.Server{Handler: s.Handler}
	go func() {
		<-ctx.Done()
		shctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.srv.Shutdown(shctx)
	}()
	go func() {
		defer s.MarkDone()
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Printf("ctlplane: http serve: %v\n", err)
		}
	}()
	s.MarkReady()
	return nil
}
