package ctlplane

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"disttrain/internal/api"
)

// Store persists one JSON artifact per experiment under a state directory,
// so the control plane's record of submissions and results survives service
// restarts. Writes are atomic (temp file + rename), so a crash mid-write
// never leaves a truncated artifact.
type Store struct {
	dir string
}

// NewStore opens (creating if needed) the state directory. An empty dir
// returns a nil store, on which Save/Load are no-ops — the in-memory-only
// mode tests and ephemeral runs use.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ctlplane: state dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// Save writes the experiment's full status artifact atomically.
func (s *Store) Save(st *api.ExperimentStatus) error {
	if s == nil {
		return nil
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "."+st.ID+"-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.path(st.ID))
}

// Load reads every persisted experiment, sorted by ID (submission order,
// since IDs are zero-padded sequence numbers).
func (s *Store) Load() ([]*api.ExperimentStatus, error) {
	if s == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []*api.ExperimentStatus
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			return nil, err
		}
		st := new(api.ExperimentStatus)
		if err := json.Unmarshal(data, st); err != nil {
			return nil, fmt.Errorf("ctlplane: artifact %s: %w", name, err)
		}
		if st.ID == "" {
			return nil, fmt.Errorf("ctlplane: artifact %s: missing id", name)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}
