// Package train binds the algorithms to the paper's experiment grid: one
// preset per table/figure of the evaluation section, each returning the
// rendered artifact. cmd/paperbench drives these presets; the tests run
// them in Quick mode.
//
// Real-math experiments (accuracy) substitute the paper's
// ResNet-50/ImageNet-1K with MiniCNN/shapes16 (or MLP/gauss in Quick mode)
// while keeping the paper-scale timing model; cost-only experiments
// (throughput/scalability/breakdown) use the full-size ResNet-50/VGG-16
// cost profiles directly.
package train

import (
	"context"
	"fmt"
	"io"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

// Options tunes an experiment run.
type Options struct {
	// Quick shrinks models, datasets and iteration counts so the whole
	// suite runs in seconds (for tests); the full grid reproduces the
	// paper's configurations.
	Quick bool
	// Seed is the master seed (0 means 1).
	Seed uint64
	// Pool sizes the shared compute pool that overlaps virtually-concurrent
	// replicas' gradient passes on real cores (core.Config.PoolSize). 0 keeps
	// the serial inline path; results are bit-identical for every value, only
	// wall time changes.
	Pool int
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// run executes one experiment configuration with the option-level overrides
// applied — currently just the compute-pool size, so every preset shares the
// same real-core parallelism knob.
func (o Options) run(cfg core.Config) (*core.Result, error) {
	cfg.PoolSize = o.Pool
	return core.Run(context.Background(), cfg)
}

func (o Options) seed() uint64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	// ID is the CLI name: table1..table4, fig1..fig4.
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment and returns rendered text blocks.
	Run func(Options) ([]string, error)
}

// Experiments lists every artifact in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: communication complexity (measured vs analytic)", Run: runTable1},
		{ID: "table2", Title: "Table II: final accuracy of the seven algorithms", Run: runTable2},
		{ID: "fig1", Title: "Fig. 1: error vs epochs and vs time", Run: runFig1},
		{ID: "table3", Title: "Table III: accuracy vs workers and hyperparameters", Run: runTable3},
		{ID: "fig2", Title: "Fig. 2: scalability (speedup vs workers)", Run: runFig2},
		{ID: "fig3", Title: "Fig. 3: training time breakdown", Run: runFig3},
		{ID: "fig4", Title: "Fig. 4: effect of optimizations (cumulative)", Run: runFig4},
		{ID: "table4", Title: "Table IV: effect of DGC on accuracy", Run: runTable4},
		{ID: "ext", Title: "Extensions: stragglers, burstiness, staleness bounds, deadlock, baselines", Run: runExtensions},
		{ID: "scale", Title: "Scaling frontier: collectives at 8-1024 workers vs costmodel predictions", Run: runScale},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("train: unknown experiment %q", id)
}

// accuracySetup holds the shared real-mode substrate of the accuracy
// experiments.
type accuracySetup struct {
	train, test *data.Dataset
	factory     nn.ModelFactory
	batch       int
	itersFor    func(workers int) int
	// lrBase is the per-batch base rate; synchronous algorithms scale it by
	// N (linear scaling rule), locally-updating algorithms use it directly.
	lrBase float64
	// lrAsyncPS is the rate for ASP's PS-side per-gradient updates: N
	// concurrent momentum-amplified gradient streams into one optimizer
	// need a smaller step at this scale (see config's substitution note).
	lrAsyncPS float64
	// lrSSP is the rate for SSP's worker-local updates: the PS accumulates
	// all N workers' deltas, so the collective movement per iteration is
	// N-fold a single worker's and needs the smallest stable step.
	lrSSP     float64
	evalEvery int
	evalMax   int
}

// newAccuracySetup builds the dataset/model pair. Full mode trains MiniCNN
// on shapes16 (the ImageNet/ResNet-50 stand-in); Quick mode trains an MLP
// on Gaussian clusters.
func newAccuracySetup(o Options) *accuracySetup {
	r := rng.New(o.seed() * 7919)
	if o.Quick {
		ds := data.GenGauss(r, 800, 3, 0.45)
		train, test := ds.Split(r.Split(1), 160)
		return &accuracySetup{
			train: train, test: test,
			factory: func(rr *rng.RNG) *nn.Model { return nn.NewMLP(rr, 2, 16, 3) },
			batch:   16,
			// The paper trains a fixed number of epochs regardless of N, so
			// per-worker iterations scale as total/N (total = 480 batches).
			itersFor:  func(workers int) int { return (480 + workers - 1) / workers },
			lrBase:    0.05,
			lrAsyncPS: 0.05,
			lrSSP:     0.05,
			evalEvery: 30,
			evalMax:   160,
		}
	}
	ds := data.GenShapes16(r, 6000)
	train, test := ds.Split(r.Split(1), 1000)
	return &accuracySetup{
		train: train, test: test,
		factory: func(rr *rng.RNG) *nn.Model { return nn.NewMiniCNN(rr, data.ShapeClasses) },
		batch:   8,
		// Fixed training budget of 7200 batches total (≈11.5 epochs of the
		// 5000-sample train split), split across workers as in the paper's
		// fixed-epoch runs: 24 workers → 300 iterations each.
		itersFor:  func(workers int) int { return (7200 + workers - 1) / workers },
		lrBase:    0.005,
		lrAsyncPS: 0.001,
		lrSSP:     0.0002,
		evalEvery: 50,
		evalMax:   400,
	}
}

// config builds a real-mode Config for the setup, mirroring the paper's
// training recipe: momentum 0.9, weight decay 1e-4, linear LR scaling
// (η = base·N), warm-up over the first ~5% of iterations, and ×0.1 decays
// at 1/3, 2/3 and 8/9 of training (the paper's epochs 30/60/80 of 90).
//
// Substitution note: the linear scaling rule compensates for the N-fold
// effective batch of one *aggregated* update, so it is applied to the
// synchronous algorithms (BSP, AR-SGD) that take one update per N batches.
// The asynchronous algorithms apply every worker gradient individually — N
// updates per N batches — so they keep the unscaled base rate; scaling them
// by N as well multiplies the per-epoch movement by N² at this toy scale
// and diverges every model, which would tell us nothing about the paper's
// staleness effects.
func (s *accuracySetup) config(algo core.Algo, workers int, seed uint64) core.Config {
	iters := s.itersFor(workers)
	warmup := iters / 20
	decays := []int{iters / 3, 2 * iters / 3, 8 * iters / 9}
	lrWorkers := 1
	base := s.lrBase
	switch {
	case algo.Synchronous():
		lrWorkers = workers // one aggregated update per N batches
	case algo == core.ASP:
		base = s.lrAsyncPS // N per-gradient updates into one PS optimizer
	case algo == core.SSP:
		base = s.lrSSP // N workers' deltas accumulate into the global
	}
	return core.Config{
		Algo:        algo,
		Cluster:     cluster.Paper56G(workers),
		Workers:     workers,
		Workload:    costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
		Iters:       iters,
		Seed:        seed,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		LR:          opt.NewPaperSchedule(base, lrWorkers, warmup, decays),
		Real: &core.RealConfig{
			Factory:   s.factory,
			Train:     s.train,
			Test:      s.test,
			Batch:     s.batch,
			EvalEvery: s.evalEvery,
			EvalMax:   s.evalMax,
		},
	}
}

// applyPaperHyper sets the hyperparameters the paper recommends for SSP,
// EASGD and GoSGD (s=10, τ=8, p=0.01) — Quick mode uses gentler values so
// degradation stays visible at 4 workers without total divergence.
func applyPaperHyper(cfg *core.Config, quick bool) {
	switch cfg.Algo {
	case core.SSP:
		cfg.Staleness = 10
		if quick {
			cfg.Staleness = 5
		}
	case core.EASGD:
		cfg.Tau = 8
	case core.GoSGD:
		cfg.GossipP = 0.01
		if quick {
			cfg.GossipP = 0.1
		}
	}
}
