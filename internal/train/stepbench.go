package train

import (
	"disttrain/internal/data"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

// StepHarness drives the inner loop of a real-mode replica — sample a
// mini-batch, forward/backward, SGD update — outside the simulator, so
// benchmarks and profiles see the raw training hot path. It owns the same
// steady-state machinery a replica does (scratch arena, preallocated
// gradient and parameter staging vectors); after the first step a Step call
// performs no heap allocation.
type StepHarness struct {
	model   *nn.Model
	sampler *data.Sampler
	train   *data.Dataset

	sgd   *opt.SGD
	x     *tensor.Tensor
	y     []int
	grads []float32
	flat  []float32
	lr    float32
}

// NewStepHarness builds a harness on the accuracy-experiment substrate:
// Quick mode trains the MLP on Gaussian clusters, full mode the MiniCNN on
// shapes16 — identical models and batch sizes to what the simulator's
// replicas run.
func NewStepHarness(o Options) *StepHarness {
	s := newAccuracySetup(o)
	r := rng.New(o.seed() * 31)
	return newStepHarness(s, r)
}

func newStepHarness(s *accuracySetup, r *rng.RNG) *StepHarness {
	h := &StepHarness{train: s.train, lr: float32(s.lrBase)}
	h.model = s.factory(r.Split(1))
	h.model.SetArena(tensor.NewArena())
	shard := data.ShardIndices(s.train.N(), 1, 0)
	h.sampler = data.NewSampler(shard, s.batch, r.Split(2))
	h.sgd = opt.NewSGD(h.model.NumParams(), 0.9, 1e-4)
	h.grads = make([]float32, h.model.NumParams())
	h.flat = make([]float32, h.model.NumParams())
	return h
}

// Step runs one train step and returns the batch loss.
func (h *StepHarness) Step() float64 {
	idx := h.sampler.Next()
	h.x, h.y = h.train.Gather(idx, h.x, h.y)
	h.model.ZeroGrads()
	loss, _ := h.model.Loss(h.x, h.y)
	g := h.model.FlatGrads(h.grads)
	flat := h.model.FlatParams(h.flat)
	h.sgd.Step(flat, g, h.lr)
	h.model.SetFlatParams(flat)
	return loss
}

// Model exposes the trained model (for eval or inspection after stepping).
func (h *StepHarness) Model() *nn.Model { return h.model }
