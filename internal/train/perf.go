package train

import (
	"fmt"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/grad"
	"disttrain/internal/metrics"
	"disttrain/internal/opt"
	"disttrain/internal/report"
)

// perfConfig builds a cost-only config for the performance experiments.
func perfConfig(algo core.Algo, model string, workers int, gbps float64, iters int, seed uint64) core.Config {
	var c cluster.Config
	if gbps >= 56 {
		c = cluster.Paper56G(workers)
	} else {
		c = cluster.Paper10G(workers)
	}
	profile, err := costmodel.ProfileByName(model)
	if err != nil {
		panic(err)
	}
	batch := 128
	if model == "vgg16" {
		batch = 96 // the paper's VGG-16 batch size
	}
	cfg := core.Config{
		Algo:     algo,
		Cluster:  c,
		Workers:  workers,
		Workload: costmodel.NewWorkload(profile, costmodel.TitanV(), batch),
		Iters:    iters,
		Seed:     seed,
		Momentum: 0.9,
		LR:       opt.Schedule{Base: 0.1},
	}
	switch algo {
	case core.SSP:
		cfg.Staleness = 3
	case core.EASGD:
		cfg.Tau = 4
	case core.GoSGD:
		cfg.GossipP = 0.01
	}
	return cfg
}

func perfIters(o Options) int {
	if o.Quick {
		return 8
	}
	return 30
}

// runTable1 verifies Table I's communication-complexity column: measured
// bytes per iteration against the analytic O(·) for each algorithm.
func runTable1(o Options) ([]string, error) {
	const workers = 8
	iters := perfIters(o)
	M := float64(costmodel.ResNet50().TotalBytes())
	N := float64(workers)
	l := 4.0 // GPUs per machine

	type row struct {
		name    string
		formula string
		want    float64
		cfg     core.Config
	}
	rows := []row{
		{"BSP (+local agg)", "2MN/l", 2 * M * N / l, func() core.Config {
			c := perfConfig(core.BSP, "resnet50", workers, 56, iters, o.seed())
			c.LocalAgg = true
			return c
		}()},
		{"ASP", "2MN", 2 * M * N, perfConfig(core.ASP, "resnet50", workers, 56, iters, o.seed())},
		{"SSP (s=3)", "(1+1/(s+1))MN", (1 + 1.0/4) * M * N, perfConfig(core.SSP, "resnet50", workers, 56, iters, o.seed())},
		{"EASGD (t=4)", "2MN/t", 2 * M * N / 4, perfConfig(core.EASGD, "resnet50", workers, 56, iters, o.seed())},
		{"AR-SGD", "2M(N-1)", 2 * M * (N - 1), perfConfig(core.ARSGD, "resnet50", workers, 56, iters, o.seed())},
		{"GoSGD (p=0.01)", "MNp", M * N * 0.01, func() core.Config {
			c := perfConfig(core.GoSGD, "resnet50", workers, 56, iters, o.seed())
			c.Iters = 200 // enough draws for the Bernoulli average to settle
			return c
		}()},
		{"AD-PSGD", "MN", M * N, perfConfig(core.ADPSGD, "resnet50", workers, 56, iters, o.seed())},
	}

	t := report.Table{Title: "Table I — communication complexity per iteration (measured vs analytic)",
		Header: []string{"algorithm", "analytic", "predicted", "measured", "ratio"}}
	for _, r := range rows {
		o.logf("table1: %s", r.name)
		res, err := o.run(r.cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
		measured := float64(res.Net.TotalBytes) / float64(r.cfg.Iters)
		if r.name == "BSP (+local agg)" {
			// The formula counts PS traffic; intra-machine gathers are free
			// in the paper's O(·) accounting.
			measured = float64(res.GradientBytes()+res.ParamReplyBytes()) / float64(r.cfg.Iters)
		}
		t.AddRow(r.name, r.formula, report.FmtBytes(r.want), report.FmtBytes(measured),
			report.Fmt(measured/r.want, 2))
	}
	return []string{t.String()}, nil
}

// fig2Algos are the five algorithms the paper's scalability study keeps
// (EASGD and GoSGD are excluded for their accuracy loss).
func fig2Algos() []core.Algo {
	return []core.Algo{core.BSP, core.ASP, core.SSP, core.ARSGD, core.ADPSGD}
}

// fig2Tune applies the scalability-run optimizations the paper uses: the
// two accuracy-neutral ones (parameter sharding, wait-free BP) plus BSP's
// local aggregation.
func fig2Tune(cfg *core.Config) {
	if cfg.Algo.Centralized() {
		cfg.Sharding = core.ShardLayerWise
	}
	if cfg.Algo.SendsGradients() {
		cfg.WaitFreeBP = true
	}
	if cfg.Algo == core.BSP {
		cfg.LocalAgg = true
	}
}

// runFig2 reproduces Fig. 2: throughput speedup over a single GPU as the
// worker count grows, for ResNet-50 and VGG-16 on 10 and 56 Gbps networks.
func runFig2(o Options) ([]string, error) {
	iters := perfIters(o)
	workersGrid := []int{1, 2, 4, 8, 16, 24}
	if o.Quick {
		workersGrid = []int{1, 4, 8}
	}
	var out []string
	for _, model := range []string{"resnet50", "vgg16"} {
		for _, gbps := range []float64{10, 56} {
			fig := report.Figure{Title: fmt.Sprintf("Fig. 2 — %s speedup vs workers (%gGbps)", model, gbps)}
			for _, algo := range fig2Algos() {
				s := fig.NewSeries(string(algo))
				for _, w := range workersGrid {
					if w < 2 && algo == core.ADPSGD {
						s.Add(float64(w), 1)
						continue
					}
					cfg := perfConfig(algo, model, w, gbps, iters, o.seed())
					fig2Tune(&cfg)
					o.logf("fig2: %s %s %gG %dw", model, algo, gbps, w)
					res, err := o.run(cfg)
					if err != nil {
						return nil, fmt.Errorf("fig2 %s/%s/%d: %w", model, algo, w, err)
					}
					base := float64(cfg.Workload.Batch) / cfg.Workload.MeanIterSec()
					s.Add(float64(w), res.Throughput/base)
				}
			}
			out = append(out, fig.String(), fig.Chart(56, 12))
		}
	}
	return out, nil
}

// runFig3 reproduces Fig. 3: the per-iteration time breakdown (computation,
// local aggregation, global aggregation, network) of each algorithm at the
// full cluster size.
func runFig3(o Options) ([]string, error) {
	iters := perfIters(o)
	workers := 24
	if o.Quick {
		workers = 8
	}
	var out []string
	for _, model := range []string{"resnet50", "vgg16"} {
		for _, gbps := range []float64{10, 56} {
			t := report.Table{
				Title: fmt.Sprintf("Fig. 3 — time breakdown per iteration, %s @ %gGbps, %d workers (seconds)",
					model, gbps, workers),
				Header: []string{"algorithm", "compute", "local-agg", "global-agg", "network", "total"},
			}
			for _, algo := range fig2Algos() {
				cfg := perfConfig(algo, model, workers, gbps, iters, o.seed())
				fig2Tune(&cfg)
				o.logf("fig3: %s %s %gG", model, algo, gbps)
				res, err := o.run(cfg)
				if err != nil {
					return nil, err
				}
				b := res.Metrics.MeanBreakdown()
				per := float64(iters)
				t.AddRow(string(algo),
					report.Fmt(b[metrics.Compute]/per, 3),
					report.Fmt(b[metrics.LocalAgg]/per, 3),
					report.Fmt(b[metrics.GlobalAgg]/per, 3),
					report.Fmt(b[metrics.Network]/per, 3),
					report.Fmt(b.Total()/per, 3))
			}
			out = append(out, t.String())
		}
	}
	return out, nil
}

// runFig4 reproduces Fig. 4: training throughput of the centralized
// gradient-sending algorithms as the three optimizations are applied
// cumulatively (parameter sharding → wait-free BP → DGC).
func runFig4(o Options) ([]string, error) {
	iters := perfIters(o)
	workerGrid := []int{8, 16, 24}
	if o.Quick {
		workerGrid = []int{8}
	}
	algos := []core.Algo{core.BSP, core.ASP, core.SSP}

	type variant struct {
		name string
		tune func(*core.Config)
	}
	variants := []variant{
		{"base", func(c *core.Config) {
			if c.Algo == core.BSP {
				c.LocalAgg = true
			}
		}},
		{"+shard", func(c *core.Config) {
			if c.Algo == core.BSP {
				c.LocalAgg = true
			}
			c.Sharding = core.ShardLayerWise
		}},
		{"+wfbp", func(c *core.Config) {
			if c.Algo == core.BSP {
				c.LocalAgg = true
			}
			c.Sharding = core.ShardLayerWise
			c.WaitFreeBP = true
		}},
		{"+dgc", func(c *core.Config) {
			if c.Algo == core.BSP {
				c.LocalAgg = true
			}
			c.Sharding = core.ShardLayerWise
			c.WaitFreeBP = true
			d := grad.DefaultDGC(0.9, 0)
			c.DGC = &d
		}},
	}

	var out []string
	for _, model := range []string{"resnet50", "vgg16"} {
		for _, gbps := range []float64{10, 56} {
			t := report.Table{
				Title: fmt.Sprintf("Fig. 4 — speedup with cumulative optimizations, %s @ %gGbps",
					model, gbps),
				Header: []string{"algorithm", "variant"},
			}
			for _, w := range workerGrid {
				t.Header = append(t.Header, fmt.Sprintf("N=%d", w))
			}
			for _, algo := range algos {
				for _, v := range variants {
					row := []string{string(algo), v.name}
					for _, w := range workerGrid {
						cfg := perfConfig(algo, model, w, gbps, iters, o.seed())
						v.tune(&cfg)
						o.logf("fig4: %s %s %gG %s N=%d", model, algo, gbps, v.name, w)
						res, err := o.run(cfg)
						if err != nil {
							return nil, err
						}
						base := float64(cfg.Workload.Batch) / cfg.Workload.MeanIterSec()
						row = append(row, report.Fmt(res.Throughput/base, 2))
					}
					t.AddRow(row...)
				}
			}
			out = append(out, t.String())
		}
	}
	return out, nil
}
