package train

import (
	"fmt"

	"disttrain/internal/cluster"
	"disttrain/internal/comm"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/des"
	"disttrain/internal/report"
	"disttrain/internal/simnet"
	"disttrain/internal/topo"
)

// The scaling study (experiment ID "scale") sweeps the AllReduce collectives
// far past the paper's 24-worker testbed — 8 to 1024 simulated workers on
// both paper fabrics — and answers three questions the flat ring cannot:
//
//  1. Where does each collective's breaking point sit (the largest scale at
//     which compute still covers ≥ 50 % of the iteration)?
//  2. When does the hierarchical collective beat the flat ring? (In the
//     latency-bound regime — small or compressed gradients — at every
//     multi-machine scale; with full-size gradients the ring's near-optimal
//     bandwidth keeps it ahead in the middle of the sweep.)
//  3. Do the costmodel's first-order predictions track the simulator? (Ring
//     and hierarchical must land within ±25 %; the rest are envelopes.)

// scaleCollectives are swept in this order.
var scaleCollectives = []string{"ring", "tree", "hierarchical", "butterfly", "torus"}

// scalePredTolerance is the measured-vs-predicted gate for the calibrated
// formulas (ring, hierarchical).
const scalePredTolerance = 0.25

// scaleKind is the simnet message kind used by the microbenchmarks.
const scaleKind = 7

// compressedBytes is the headline small-gradient payload: a ResNet-50
// gradient under ~200× DGC-class compression (94 MB → 470 KB).
const compressedBytes = 470 << 10

// measureCollective runs one cost-only AllReduce of the named collective
// over n workers packed on c and returns the virtual completion time.
func measureCollective(name string, c cluster.Config, n int, bytes int64) (float64, error) {
	eng := des.NewEngine()
	net := simnet.New(eng, c)
	ids := make([]int, n)
	for w := 0; w < n; w++ {
		ids[w] = net.AddNode(c.MachineOfWorker(w)).ID
	}
	op := comm.OpRingAllReduce
	var groups [][]int
	var rows, cols int
	switch name {
	case "ring":
	case "tree":
		op = comm.OpTreeAllReduce
	case "hierarchical":
		op = comm.OpHierarchicalAllReduce
		tp, err := topo.New(c, n)
		if err != nil {
			return 0, err
		}
		groups = tp.Groups
	case "butterfly":
		op = comm.OpButterflyAllReduce
	case "torus":
		op = comm.OpTorusAllReduce
		var err error
		rows, cols, err = topo.TorusShape(n)
		if err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("scale: unknown collective %q", name)
	}
	errs := make([]error, n)
	for w := 0; w < n; w++ {
		w := w
		eng.Spawn(fmt.Sprintf("rank%d", w), func(p *des.Proc) {
			_, _, err := comm.Collective(p, comm.CollectiveOpts{
				Op: op, Net: net, Nodes: ids, Self: w,
				VirtualLen: 1000, Bytes: bytes, Kind: scaleKind,
				Groups: groups, TorusRows: rows, TorusCols: cols,
			})
			errs[w] = err
		})
	}
	eng.Run(0)
	for w, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("scale: %s rank %d: %w", name, w, err)
		}
	}
	if stuck := eng.Stuck(); len(stuck) > 0 {
		return 0, fmt.Errorf("scale: %s at n=%d: %d stuck procs", name, n, len(stuck))
	}
	return float64(eng.Now()), nil
}

// scaleRegime is one (fabric, payload) slice of the sweep.
type scaleRegime struct {
	label   string
	gbps    float64
	bytes   int64
	compute float64 // per-iteration compute the payload's workload implies
}

func scaleRegimes(o Options) []scaleRegime {
	resnet := costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128)
	vgg := costmodel.NewWorkload(costmodel.VGG16(), costmodel.TitanV(), 96)
	regimes := []scaleRegime{
		{"resnet50 DGC-class (470KB) @ 10G", 10, compressedBytes, resnet.MeanIterSec()},
		{"resnet50 full gradient (94MB) @ 10G", 10, resnet.Profile.TotalBytes(), resnet.MeanIterSec()},
		{"vgg16 full gradient (552MB) @ 10G", 10, vgg.Profile.TotalBytes(), vgg.MeanIterSec()},
		{"vgg16 full gradient (552MB) @ 56G", 56, vgg.Profile.TotalBytes(), vgg.MeanIterSec()},
	}
	if o.Quick {
		regimes = regimes[:2]
	}
	return regimes
}

func scaleWorkers(o Options) []int {
	if o.Quick {
		return []int{8, 16}
	}
	return []int{8, 24, 64, 256, 1024}
}

func scaleCluster(gbps float64, n int) cluster.Config {
	if gbps >= 56 {
		return cluster.Paper56G(n)
	}
	return cluster.Paper10G(n)
}

// runScale produces the scaling-frontier study.
func runScale(o Options) ([]string, error) {
	grid := scaleWorkers(o)
	var out []string

	type key struct {
		regime, coll string
		n            int
	}
	measured := map[key]float64{}

	for _, reg := range scaleRegimes(o) {
		t := report.Table{
			Title: fmt.Sprintf("Scaling frontier — AllReduce time per iteration, %s (ms)", reg.label),
			Header: append([]string{"collective"}, func() []string {
				var h []string
				for _, n := range grid {
					h = append(h, fmt.Sprintf("n=%d", n))
				}
				return append(h, "break-even n")
			}()...),
		}
		for _, coll := range scaleCollectives {
			row := []string{coll}
			breakEven := "<" + fmt.Sprint(grid[0])
			for _, n := range grid {
				c := scaleCluster(reg.gbps, n)
				sec, err := measureCollective(coll, c, n, reg.bytes)
				if err != nil {
					return nil, err
				}
				measured[key{reg.label, coll, n}] = sec
				o.logf("scale: %s %s n=%d: %.3fms", reg.label, coll, n, sec*1e3)
				row = append(row, report.Fmt(sec*1e3, 2))
				if reg.compute/(reg.compute+sec) >= 0.5 {
					breakEven = ">=" + fmt.Sprint(n)
				}
			}
			// breakEven holds the largest swept n at which compute still
			// covers half the iteration; collectives that scale past the
			// sweep report the last grid point.
			t.AddRow(append(row, breakEven)...)
		}
		out = append(out, t.String())
	}

	// Measured vs predicted for the calibrated formulas.
	pt := report.Table{
		Title: fmt.Sprintf("Costmodel cross-check — measured/predicted ratio (tolerance ±%.0f%% for ring and hierarchical)",
			100*scalePredTolerance),
		Header: []string{"regime", "collective", "n", "measured ms", "predicted ms", "ratio"},
	}
	for _, reg := range scaleRegimes(o) {
		for _, coll := range []string{"ring", "hierarchical"} {
			for _, n := range grid {
				c := scaleCluster(reg.gbps, n)
				sec := measured[key{reg.label, coll, n}]
				pred, err := costmodel.PredictAllReduceSec(coll, c, n, reg.bytes)
				if err != nil {
					return nil, err
				}
				ratio := sec / pred
				if ratio < 1-scalePredTolerance || ratio > 1+scalePredTolerance {
					return nil, fmt.Errorf("scale: %s %s n=%d: measured %.4gs vs predicted %.4gs (ratio %.2f outside ±%.0f%%)",
						reg.label, coll, n, sec, pred, ratio, 100*scalePredTolerance)
				}
				pt.AddRow(reg.label, coll, fmt.Sprint(n), report.Fmt(sec*1e3, 2),
					report.Fmt(pred*1e3, 2), report.Fmt(ratio, 2))
			}
		}
	}
	out = append(out, pt.String())

	// The headline claim, enforced: in the latency-bound (compressed) regime
	// on 10G, hierarchical beats the flat ring at every multi-machine scale.
	headline := scaleRegimes(o)[0]
	for _, n := range grid {
		if n <= 4 {
			continue // single machine: no hierarchy to exploit
		}
		ring := measured[key{headline.label, "ring", n}]
		hier := measured[key{headline.label, "hierarchical", n}]
		if hier >= ring {
			return nil, fmt.Errorf("scale: hierarchical (%.4gs) did not beat ring (%.4gs) at n=%d in the latency-bound regime",
				hier, ring, n)
		}
	}

	// End-to-end spot check: the same ordering must show up in full AR-SGD
	// runs through core, not just the collective microbenchmark.
	spotN := 24
	iters := 4
	if o.Quick {
		spotN, iters = 8, 2
	}
	st := report.Table{
		Title:  fmt.Sprintf("End-to-end AR-SGD spot check — %d workers @ 10G, resnet50, virtual s/iter", spotN),
		Header: []string{"collective", "s/iter", "cross-machine MB/iter"},
	}
	for _, coll := range scaleCollectives {
		cfg := perfConfig(core.ARSGD, "resnet50", spotN, 10, iters, o.seed())
		cfg.Collective = coll
		o.logf("scale: e2e %s", coll)
		res, err := o.run(cfg)
		if err != nil {
			return nil, fmt.Errorf("scale e2e %s: %w", coll, err)
		}
		st.AddRow(coll, report.Fmt(res.VirtualSec/float64(iters), 3),
			report.Fmt(float64(res.Net.CrossMachineBytes)/float64(iters)/1e6, 1))
	}
	out = append(out, st.String())
	return out, nil
}
