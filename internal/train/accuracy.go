package train

import (
	"fmt"
	"sync"

	"disttrain/internal/core"
	"disttrain/internal/grad"
	"disttrain/internal/report"
)

// table2Workers returns the cluster size for the headline accuracy runs.
func table2Workers(o Options) int {
	if o.Quick {
		return 4
	}
	return 24
}

// accuracyRuns runs all seven algorithms with the paper's recommended
// hyperparameters and caches the results so Table II and Fig. 1 (which are
// two views of the same runs) execute once.
var accuracyCache sync.Map // key string -> []*core.Result

func accuracyRuns(o Options) ([]*core.Result, error) {
	key := fmt.Sprintf("%v-%d", o.Quick, o.seed())
	if v, ok := accuracyCache.Load(key); ok {
		return v.([]*core.Result), nil
	}
	s := newAccuracySetup(o)
	workers := table2Workers(o)
	var results []*core.Result
	for _, algo := range core.Algos() {
		cfg := s.config(algo, workers, o.seed())
		applyPaperHyper(&cfg, o.Quick)
		o.logf("table2/fig1: running %s (%d workers, %d iters)", algo, workers, cfg.Iters)
		res, err := o.run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", algo, err)
		}
		results = append(results, res)
	}
	accuracyCache.Store(key, results)
	return results, nil
}

// runTable2 reproduces Table II: top-1 accuracy of the seven algorithms.
func runTable2(o Options) ([]string, error) {
	results, err := accuracyRuns(o)
	if err != nil {
		return nil, err
	}
	t := report.Table{
		Title:  "Table II — final test accuracy (paper: ResNet-50/ImageNet; here: stand-in task)",
		Header: []string{"algorithm", "accuracy", "best-err", "virtual-hours", "replica-spread"},
	}
	for _, r := range results {
		t.AddRow(string(r.Config.Algo),
			report.Fmt(r.FinalTestAcc, 4),
			report.Fmt(r.Metrics.BestTestErr(), 4),
			report.Fmt(r.VirtualSec/3600, 3),
			report.FmtG(r.ReplicaSpreadL2))
	}
	return []string{t.String()}, nil
}

// runFig1 reproduces Fig. 1: top-1 error versus training epochs (a) and
// versus virtual wall-clock time (b) for the seven algorithms.
func runFig1(o Options) ([]string, error) {
	results, err := accuracyRuns(o)
	if err != nil {
		return nil, err
	}
	epochFig := report.Figure{Title: "Fig. 1(a) — test error vs epochs (x = worker iteration)"}
	for _, r := range results {
		se := epochFig.NewSeries(string(r.Config.Algo))
		for _, tp := range r.Metrics.Trace {
			se.Add(float64(tp.Iter), tp.TestErr)
		}
	}
	// (b): each algorithm reaches its eval points at its own virtual times,
	// so render one (time, err) column pair per algorithm instead of a
	// sparse union table.
	timeTab := report.Table{Title: "Fig. 1(b) — test error vs virtual time",
		Header: []string{"eval#"}}
	for _, r := range results {
		timeTab.Header = append(timeTab.Header, string(r.Config.Algo)+" t(s)", "err")
	}
	maxPts := 0
	for _, r := range results {
		if len(r.Metrics.Trace) > maxPts {
			maxPts = len(r.Metrics.Trace)
		}
	}
	for i := 0; i < maxPts; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, r := range results {
			if i < len(r.Metrics.Trace) {
				tp := r.Metrics.Trace[i]
				row = append(row, report.Fmt(tp.VirtualSec, 1), report.Fmt(tp.TestErr, 4))
			} else {
				row = append(row, "-", "-")
			}
		}
		timeTab.AddRow(row...)
	}
	return []string{epochFig.String(), epochFig.Chart(64, 14), timeTab.String()}, nil
}

// runTable3 reproduces Table III: accuracy of the asynchronous algorithms
// (plus the BSP reference) as the worker count and their hyperparameters
// vary.
func runTable3(o Options) ([]string, error) {
	s := newAccuracySetup(o)
	workerGrid := []int{4, 8, 16, 24}
	if o.Quick {
		workerGrid = []int{2, 4}
	}

	type variant struct {
		name string
		algo core.Algo
		tune func(*core.Config)
	}
	variants := []variant{
		{"BSP", core.BSP, nil},
		{"ASP", core.ASP, nil},
		{"SSP s=3", core.SSP, func(c *core.Config) { c.Staleness = 3 }},
		{"SSP s=10", core.SSP, func(c *core.Config) { c.Staleness = 10 }},
		{"EASGD t=4", core.EASGD, func(c *core.Config) { c.Tau = 4 }},
		{"EASGD t=8", core.EASGD, func(c *core.Config) { c.Tau = 8 }},
		{"GoSGD p=1", core.GoSGD, func(c *core.Config) { c.GossipP = 1 }},
		{"GoSGD p=0.1", core.GoSGD, func(c *core.Config) { c.GossipP = 0.1 }},
		{"GoSGD p=0.01", core.GoSGD, func(c *core.Config) { c.GossipP = 0.01 }},
		{"AD-PSGD", core.ADPSGD, nil},
	}
	if o.Quick {
		variants = []variant{
			{"BSP", core.BSP, nil},
			{"ASP", core.ASP, nil},
			{"SSP s=3", core.SSP, func(c *core.Config) { c.Staleness = 3 }},
			{"EASGD t=8", core.EASGD, func(c *core.Config) { c.Tau = 8 }},
			{"GoSGD p=0.1", core.GoSGD, func(c *core.Config) { c.GossipP = 0.1 }},
			{"AD-PSGD", core.ADPSGD, nil},
		}
	}

	t := report.Table{Title: "Table III — test accuracy vs workers and hyperparameters",
		Header: []string{"workers"}}
	for _, v := range variants {
		t.Header = append(t.Header, v.name)
	}
	for _, w := range workerGrid {
		row := []string{fmt.Sprintf("%d", w)}
		for _, v := range variants {
			cfg := s.config(v.algo, w, o.seed())
			if v.tune != nil {
				v.tune(&cfg)
			}
			o.logf("table3: %s @ %d workers", v.name, w)
			res, err := o.run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s@%d: %w", v.name, w, err)
			}
			row = append(row, report.Fmt(res.FinalTestAcc, 4))
		}
		t.AddRow(row...)
	}
	return []string{t.String()}, nil
}

// runTable4 reproduces Table IV: the accuracy effect of deep gradient
// compression on the gradient-sending centralized algorithms.
func runTable4(o Options) ([]string, error) {
	s := newAccuracySetup(o)
	workers := table2Workers(o)

	type variant struct {
		name string
		algo core.Algo
		tune func(*core.Config)
	}
	variants := []variant{
		{"BSP", core.BSP, nil},
		{"ASP", core.ASP, nil},
		{"SSP s=3", core.SSP, func(c *core.Config) { c.Staleness = 3 }},
		{"SSP s=10", core.SSP, func(c *core.Config) { c.Staleness = 10 }},
	}
	if o.Quick {
		variants = variants[:2]
	}

	t := report.Table{Title: "Table IV — effect of DGC on accuracy",
		Header: []string{"variant", "without-DGC", "with-DGC", "grad-bytes-saved"}}
	for _, v := range variants {
		base := s.config(v.algo, workers, o.seed())
		if v.tune != nil {
			v.tune(&base)
		}
		o.logf("table4: %s baseline", v.name)
		r1, err := o.run(base)
		if err != nil {
			return nil, err
		}

		withDGC := s.config(v.algo, workers, o.seed())
		if v.tune != nil {
			v.tune(&withDGC)
		}
		// At mini-model scale a 0.1% ratio keeps ~17 of 17k gradients and
		// stalls learning for reasons of sheer model size, not algorithm;
		// we keep the compression aggressive but proportionate, with the
		// paper's warm-up.
		d := grad.DGCConfig{Ratio: 0.02, Momentum: 0.9, ClipNorm: 4,
			WarmupIters: withDGC.Iters / 5}
		if o.Quick {
			d.Ratio = 0.05
		}
		withDGC.DGC = &d
		o.logf("table4: %s with DGC", v.name)
		r2, err := o.run(withDGC)
		if err != nil {
			return nil, err
		}
		saved := 1 - float64(r2.GradientBytes())/float64(r1.GradientBytes())
		t.AddRow(v.name,
			report.Fmt(r1.FinalTestAcc, 4),
			report.Fmt(r2.FinalTestAcc, 4),
			report.Fmt(saved*100, 1)+"%")
	}
	return []string{t.String()}, nil
}
