package train

import (
	"strings"
	"testing"

	"disttrain/internal/core"
)

func TestExperimentsRegistryComplete(t *testing.T) {
	want := []string{"table1", "table2", "fig1", "table3", "fig2", "fig3", "fig4", "table4", "ext", "scale"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("%d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("experiment %d = %s, want %s", i, got[i].ID, id)
		}
		if got[i].Title == "" || got[i].Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig2")
	if err != nil || e.ID != "fig2" {
		t.Fatalf("ByID(fig2) = %v, %v", e.ID, err)
	}
	if _, err := ByID("fig9"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

// TestAllExperimentsQuick runs every paper artifact in Quick mode and
// checks each produces a rendered block mentioning its own identity.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			blocks, err := e.Run(Options{Quick: true, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(blocks) == 0 {
				t.Fatal("no output blocks")
			}
			for _, b := range blocks {
				if strings.TrimSpace(b) == "" {
					t.Fatal("empty block")
				}
			}
		})
	}
}

func TestQuickTable2Shapes(t *testing.T) {
	// In quick mode the sync algorithms and the every-iteration async ones
	// must solve the easy task; and all seven rows must be present.
	results, err := accuracyRuns(Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("%d results", len(results))
	}
	acc := map[core.Algo]float64{}
	for _, r := range results {
		acc[r.Config.Algo] = r.FinalTestAcc
	}
	for _, a := range []core.Algo{core.BSP, core.ARSGD, core.ASP, core.ADPSGD} {
		if acc[a] < 0.85 {
			t.Fatalf("%s quick accuracy %.3f", a, acc[a])
		}
	}
}

func TestQuickFig2Shapes(t *testing.T) {
	blocks, err := runFig2(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 8 { // (table + chart) x 2 models x 2 networks
		t.Fatalf("%d fig2 blocks, want 8", len(blocks))
	}
	for _, b := range blocks {
		for _, algo := range []string{"bsp", "asp", "ssp", "arsgd", "adpsgd"} {
			if !strings.Contains(b, algo) {
				t.Fatalf("missing %s in:\n%s", algo, b)
			}
		}
	}
}

func TestAccuracyRunsCached(t *testing.T) {
	o := Options{Quick: true, Seed: 4}
	r1, err := accuracyRuns(o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := accuracyRuns(o)
	if err != nil {
		t.Fatal(err)
	}
	if &r1[0] != &r2[0] {
		t.Fatal("accuracy runs not cached across table2/fig1")
	}
}

func TestDeterministicOutput(t *testing.T) {
	run := func() string {
		// separate seed from other tests to dodge the cache
		blocks, err := runTable1(Options{Quick: true, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		return strings.Join(blocks, "\n")
	}
	if run() != run() {
		t.Fatal("table1 output not deterministic")
	}
}

func TestConfigBuildsValidConfigs(t *testing.T) {
	s := newAccuracySetup(Options{Quick: true, Seed: 1})
	for _, algo := range core.Algos() {
		cfg := s.config(algo, 4, 1)
		applyPaperHyper(&cfg, true)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestPerfConfigBuildsValidConfigs(t *testing.T) {
	for _, algo := range fig2Algos() {
		cfg := perfConfig(algo, "vgg16", 24, 10, 5, 1)
		fig2Tune(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if cfg.Workload.Batch != 96 {
			t.Fatalf("vgg16 batch = %d, want the paper's 96", cfg.Workload.Batch)
		}
	}
	cfg := perfConfig(core.BSP, "resnet50", 8, 56, 5, 1)
	if cfg.Workload.Batch != 128 {
		t.Fatalf("resnet50 batch = %d, want 128", cfg.Workload.Batch)
	}
}
