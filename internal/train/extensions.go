package train

import (
	"fmt"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/report"
)

// runExtensions produces the artifacts for this repository's extensions
// beyond the paper's own tables/figures: straggler sensitivity, traffic
// burstiness (per-machine NIC utilization spread), realized staleness
// bounds, and the AD-PSGD deadlock demonstration.
func runExtensions(o Options) ([]string, error) {
	iters := 40
	workers := 16
	if o.Quick {
		iters, workers = 10, 8
	}
	var out []string

	// --- E1: straggler sensitivity ------------------------------------
	stragglerAlgos := []core.Algo{core.BSP, core.ARSGD, core.DPSGD, core.ASP, core.ADPSGD}
	t1 := report.Table{
		Title:  "E1 — throughput retained under stragglers (10% of iterations stall 6x)",
		Header: []string{"algorithm", "clean (samples/s)", "stragglers", "retained"},
	}
	for _, algo := range stragglerAlgos {
		run := func(straggle bool) (*core.Result, error) {
			cfg := perfConfig(algo, "resnet50", workers, 56, iters, o.seed())
			if algo == core.BSP {
				cfg.LocalAgg = true
			}
			if straggle {
				cfg.Workload.GPU.StragglerProb = 0.1
				cfg.Workload.GPU.StragglerMult = 6
			}
			return o.run(cfg)
		}
		o.logf("ext: stragglers %s", algo)
		clean, err := run(false)
		if err != nil {
			return nil, err
		}
		slow, err := run(true)
		if err != nil {
			return nil, err
		}
		t1.AddRow(string(algo),
			report.Fmt(clean.Throughput, 0),
			report.Fmt(slow.Throughput, 0),
			report.Fmt(100*slow.Throughput/clean.Throughput, 0)+"%")
	}
	out = append(out, t1.String())

	// --- E2: traffic burstiness ----------------------------------------
	t2 := report.Table{
		Title:  "E2 — per-machine NIC load spread, (max-min)/max of busy seconds (0 = even)",
		Header: []string{"algorithm", "spread", "cross-machine GB"},
	}
	for _, algo := range []core.Algo{core.ASP, core.BSP, core.ARSGD, core.ADPSGD} {
		// Needs ≥3 machines: with two, centralized traffic is symmetric
		// (grads in = params out on both sides) and the hot spot vanishes.
		cfg := perfConfig(algo, "resnet50", 16, 10, iters, o.seed())
		if algo == core.BSP {
			cfg.LocalAgg = true
		}
		o.logf("ext: burstiness %s", algo)
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		t2.AddRow(string(algo),
			report.Fmt(res.Net.UtilizationSpread(), 3),
			report.Fmt(float64(res.Net.CrossMachineBytes)/1e9, 1))
	}
	out = append(out, t2.String())

	// --- E3: realized staleness ----------------------------------------
	t3 := report.Table{
		Title:  "E3 — realized staleness (max fastest-slowest iteration gap) under stragglers",
		Header: []string{"algorithm", "bound", "observed"},
	}
	staleRuns := []struct {
		name  string
		algo  core.Algo
		s     int
		bound string
	}{
		{"BSP", core.BSP, 0, "1 (barrier)"},
		{"AR-SGD", core.ARSGD, 0, "1 (barrier)"},
		{"SSP s=2", core.SSP, 2, "s + in-flight"},
		{"SSP s=5", core.SSP, 5, "s + in-flight"},
		{"ASP", core.ASP, 0, "unbounded"},
	}
	for _, sr := range staleRuns {
		cfg := perfConfig(sr.algo, "resnet50", workers, 56, iters, o.seed())
		cfg.Staleness = sr.s
		cfg.Workload.GPU.StragglerProb = 0.2
		cfg.Workload.GPU.StragglerMult = 8
		o.logf("ext: staleness %s", sr.name)
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		t3.AddRow(sr.name, sr.bound, fmt.Sprintf("%d", res.Metrics.MaxSpread))
	}
	out = append(out, t3.String())

	// --- E4: AD-PSGD deadlock demonstration -----------------------------
	t4 := report.Table{
		Title:  "E4 — AD-PSGD partner-graph ablation (Section IV-C deadlock scenario)",
		Header: []string{"variant", "stuck comm procs", "iterations completed"},
	}
	for _, naive := range []bool{false, true} {
		cfg := perfConfig(core.ADPSGD, "resnet50", workers, 56, iters, o.seed())
		cfg.ADPSGDNoBipartite = naive
		name := "bipartite (paper)"
		if naive {
			name = "unconstrained (naive)"
		}
		o.logf("ext: deadlock %s", name)
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		stuck := 0
		for _, n := range res.StuckProcs {
			if len(n) >= 11 && n[:11] == "adpsgd-comm" {
				stuck++
			}
		}
		t4.AddRow(name, fmt.Sprintf("%d", stuck), fmt.Sprintf("%d", res.Metrics.TotalIters()))
	}
	out = append(out, t4.String())

	// --- E5: reviewed-but-not-selected baselines ------------------------
	t5 := report.Table{
		Title:  "E5 — extension baselines vs AR-SGD (cost-only, ResNet-50 @ 56Gbps)",
		Header: []string{"algorithm", "speedup vs 1 GPU", "bytes/iter/worker"},
	}
	for _, algo := range []core.Algo{core.ARSGD, core.DPSGD, core.AdaComm, core.Hogwild} {
		cfg := perfConfig(algo, "resnet50", workers, 56, iters, o.seed())
		if algo == core.AdaComm {
			cfg.Tau = 8
		}
		if algo == core.Hogwild {
			cfg.Cluster = cluster.Config{
				Machines:          1,
				WorkersPerMachine: workers,
				InterBytesPerSec:  cluster.Gbps(56),
				IntraBytesPerSec:  cluster.Gbps(128),
				LatencySec:        1e-6,
			}
		}
		o.logf("ext: baseline %s", algo)
		res, err := o.run(cfg)
		if err != nil {
			return nil, err
		}
		base := float64(cfg.Workload.Batch) / cfg.Workload.MeanIterSec()
		t5.AddRow(string(algo),
			report.Fmt(res.Throughput/base, 2),
			report.FmtBytes(res.BytesPerIterPerWorker))
	}
	out = append(out, t5.String())

	return out, nil
}
