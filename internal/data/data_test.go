package data

import (
	"testing"
	"testing/quick"

	"disttrain/internal/rng"
)

func TestGenShapesDeterministic(t *testing.T) {
	a := GenShapes16(rng.New(1), 50)
	b := GenShapes16(rng.New(1), 50)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("shapes16 not deterministic")
		}
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels not deterministic")
		}
	}
}

func TestGenShapesLabelsInRange(t *testing.T) {
	d := GenShapes16(rng.New(2), 500)
	counts := make([]int, ShapeClasses)
	for _, y := range d.Y {
		if y < 0 || y >= ShapeClasses {
			t.Fatalf("label %d out of range", y)
		}
		counts[y]++
	}
	for c, n := range counts {
		if n == 0 {
			t.Fatalf("class %d never generated", c)
		}
	}
}

func TestShapesClassesAreDistinct(t *testing.T) {
	// Mean images of different classes must differ substantially, otherwise
	// the task is unlearnable and accuracy experiments are meaningless.
	d := GenShapes16(rng.New(3), 2000)
	const px = 16 * 16
	means := make([][]float64, ShapeClasses)
	counts := make([]int, ShapeClasses)
	for i := range means {
		means[i] = make([]float64, px)
	}
	for i, y := range d.Y {
		for j := 0; j < px; j++ {
			means[y][j] += float64(d.X.Data[i*px+j])
		}
		counts[y]++
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	for a := 0; a < ShapeClasses; a++ {
		for b := a + 1; b < ShapeClasses; b++ {
			var dist float64
			for j := 0; j < px; j++ {
				diff := means[a][j] - means[b][j]
				dist += diff * diff
			}
			if dist < 0.5 {
				t.Fatalf("classes %d and %d have near-identical means (d²=%v)", a, b, dist)
			}
		}
	}
}

func TestGaussAndSpiralShapes(t *testing.T) {
	g := GenGauss(rng.New(4), 100, 4, 0.3)
	if g.N() != 100 || g.Classes != 4 || g.X.Shape[1] != 2 {
		t.Fatalf("gauss shape wrong: %v classes %d", g.X.Shape, g.Classes)
	}
	s := GenSpiral(rng.New(5), 80, 3, 0.1)
	if s.N() != 80 || s.Classes != 3 {
		t.Fatalf("spiral wrong: n=%d classes=%d", s.N(), s.Classes)
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	d := GenGauss(rng.New(6), 100, 3, 0.2)
	train, test := d.Split(rng.New(7), 20)
	if train.N() != 80 || test.N() != 20 {
		t.Fatalf("split sizes %d/%d", train.N(), test.N())
	}
	if train.Classes != 3 || test.Classes != 3 {
		t.Fatal("classes not propagated")
	}
}

func TestSplitPanicsOnBadSize(t *testing.T) {
	d := GenGauss(rng.New(6), 10, 2, 0.2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Split(rng.New(1), 10)
}

func TestShardIndicesPartition(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(500)
		workers := 1 + r.Intn(24)
		seen := make([]bool, n)
		for w := 0; w < workers; w++ {
			for _, i := range ShardIndices(n, workers, w) {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShardBalance(t *testing.T) {
	for _, workers := range []int{2, 3, 7, 24} {
		min, max := 1<<30, 0
		for w := 0; w < workers; w++ {
			n := len(ShardIndices(1000, workers, w))
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("workers=%d: shard sizes differ by %d", workers, max-min)
		}
	}
}

func TestSamplerCoversShardEachEpoch(t *testing.T) {
	shard := ShardIndices(40, 4, 1) // indices 10..19
	s := NewSampler(shard, 5, rng.New(8))
	seen := map[int]int{}
	for b := 0; b < s.BatchesPerEpoch(); b++ {
		for _, i := range s.Next() {
			seen[i]++
		}
	}
	if len(seen) != 10 {
		t.Fatalf("epoch covered %d of 10 shard samples", len(seen))
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d drawn %d times in one epoch", i, c)
		}
	}
}

func TestSamplerEpochCounter(t *testing.T) {
	s := NewSampler(ShardIndices(20, 1, 0), 5, rng.New(9))
	for i := 0; i < 8; i++ { // 4 batches per epoch, draw 2 epochs
		s.Next()
	}
	// The 9th draw triggers a reshuffle into epoch 2.
	s.Next()
	if s.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", s.Epoch())
	}
}

func TestSamplerBatchClamped(t *testing.T) {
	s := NewSampler([]int{1, 2, 3}, 10, rng.New(10))
	if got := len(s.Next()); got != 3 {
		t.Fatalf("batch = %d, want clamped 3", got)
	}
}

func TestGatherCopiesCorrectSamples(t *testing.T) {
	d := GenGauss(rng.New(11), 50, 3, 0.2)
	x, y := d.Gather([]int{3, 7}, nil, nil)
	if x.Shape[0] != 2 || x.Shape[1] != 2 {
		t.Fatalf("gather shape %v", x.Shape)
	}
	if x.Data[0] != d.X.Data[6] || x.Data[1] != d.X.Data[7] {
		t.Fatal("gather copied wrong sample 0")
	}
	if y[0] != d.Y[3] || y[1] != d.Y[7] {
		t.Fatal("gather copied wrong labels")
	}
}

func TestGatherReusesBuffers(t *testing.T) {
	d := GenGauss(rng.New(12), 20, 2, 0.2)
	x1, y1 := d.Gather([]int{0, 1, 2}, nil, nil)
	x2, y2 := d.Gather([]int{3, 4, 5}, x1, y1)
	if &x2.Data[0] != &x1.Data[0] {
		t.Fatal("buffer not reused")
	}
	if &y2[0] != &y1[0] {
		t.Fatal("label buffer not reused")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"shapes16", "gauss", "spiral"} {
		d, err := ByName(name, rng.New(1), 32)
		if err != nil || d.N() != 32 {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("bogus", rng.New(1), 10); err == nil {
		t.Fatal("expected error")
	}
}
