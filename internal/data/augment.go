package data

import (
	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

// Augment is a random image augmentation policy applied to training batches
// (never to evaluation data): random spatial shifts with zero padding and
// random horizontal flips — the standard light policy for small image
// classification, analogous to the crop/flip pipeline ImageNet training
// uses.
type Augment struct {
	// MaxShift is the maximum absolute shift, in pixels, applied
	// independently per axis (uniform in [-MaxShift, MaxShift]).
	MaxShift int
	// FlipProb is the probability of a horizontal mirror.
	FlipProb float64
}

// Apply augments a batch of [B, C, H, W] images in place, drawing from r.
// Non-4D inputs (vector datasets) pass through untouched.
func (a Augment) Apply(x *tensor.Tensor, r *rng.RNG) {
	if len(x.Shape) != 4 || (a.MaxShift == 0 && a.FlipProb == 0) {
		return
	}
	b, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	sample := c * h * w
	scratch := make([]float32, sample)
	for i := 0; i < b; i++ {
		img := x.Data[i*sample : (i+1)*sample]
		if a.MaxShift > 0 {
			dx := r.Intn(2*a.MaxShift+1) - a.MaxShift
			dy := r.Intn(2*a.MaxShift+1) - a.MaxShift
			if dx != 0 || dy != 0 {
				shiftImage(img, scratch, c, h, w, dx, dy)
			}
		}
		if a.FlipProb > 0 && r.Bernoulli(a.FlipProb) {
			flipImage(img, c, h, w)
		}
	}
}

// shiftImage translates every channel by (dx, dy), filling exposed pixels
// with zero. scratch must hold one sample.
func shiftImage(img, scratch []float32, c, h, w, dx, dy int) {
	copy(scratch, img)
	for i := range img {
		img[i] = 0
	}
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			sy := y - dy
			if sy < 0 || sy >= h {
				continue
			}
			for x := 0; x < w; x++ {
				sx := x - dx
				if sx < 0 || sx >= w {
					continue
				}
				img[base+y*w+x] = scratch[base+sy*w+sx]
			}
		}
	}
}

// flipImage mirrors every channel horizontally in place.
func flipImage(img []float32, c, h, w int) {
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for y := 0; y < h; y++ {
			row := img[base+y*w : base+y*w+w]
			for i, j := 0, w-1; i < j; i, j = i+1, j-1 {
				row[i], row[j] = row[j], row[i]
			}
		}
	}
}
