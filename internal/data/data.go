// Package data provides deterministic synthetic classification datasets and
// the per-worker sharding/sampling machinery of data-parallel training.
//
// ImageNet-1K (the paper's dataset) is a data gate; these generators are the
// substitution: procedurally drawn 16×16 images (shapes16) for the CNN
// models and low-dimensional cluster/spiral tasks for fast tests. What
// matters for the reproduction is that the task is learnable, that SGD noise
// is real, and that every worker sees a disjoint shard — the dynamics the
// distributed algorithms act on.
package data

import (
	"fmt"

	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

// Dataset is an in-memory labelled dataset. X has shape [N, ...sample].
type Dataset struct {
	Name    string
	X       *tensor.Tensor
	Y       []int
	Classes int
}

// N returns the number of samples.
func (d *Dataset) N() int { return len(d.Y) }

// SampleShape returns the per-sample shape (X's shape without the leading N).
func (d *Dataset) SampleShape() []int { return d.X.Shape[1:] }

// sampleSize returns the number of scalars per sample.
func (d *Dataset) sampleSize() int {
	s := 1
	for _, v := range d.X.Shape[1:] {
		s *= v
	}
	return s
}

// Gather copies the samples at the given indices into a batch tensor and
// label slice (allocated if nil or wrongly sized) and returns them.
func (d *Dataset) Gather(idx []int, x *tensor.Tensor, y []int) (*tensor.Tensor, []int) {
	ss := d.sampleSize()
	if x == nil || x.Size() != len(idx)*ss {
		x = tensor.New(append([]int{len(idx)}, d.X.Shape[1:]...)...)
	} else {
		// Reuse the header in place so steady-state batches allocate nothing.
		x.Shape = append(x.Shape[:0], len(idx))
		x.Shape = append(x.Shape, d.X.Shape[1:]...)
	}
	if len(y) != len(idx) {
		y = make([]int, len(idx))
	}
	for i, j := range idx {
		copy(x.Data[i*ss:(i+1)*ss], d.X.Data[j*ss:(j+1)*ss])
		y[i] = d.Y[j]
	}
	return x, y
}

// Split divides the dataset into a training and a test set of testN samples
// taken deterministically from a shuffled order.
func (d *Dataset) Split(r *rng.RNG, testN int) (train, test *Dataset) {
	if testN <= 0 || testN >= d.N() {
		panic(fmt.Sprintf("data: testN %d out of range for %d samples", testN, d.N()))
	}
	perm := r.Perm(d.N())
	testIdx, trainIdx := perm[:testN], perm[testN:]
	tx, ty := d.Gather(trainIdx, nil, nil)
	sx, sy := d.Gather(testIdx, nil, nil)
	return &Dataset{Name: d.Name + ".train", X: tx, Y: ty, Classes: d.Classes},
		&Dataset{Name: d.Name + ".test", X: sx, Y: sy, Classes: d.Classes}
}

// ShardIndices partitions [0, n) into `workers` contiguous, near-equal,
// disjoint shards and returns shard w. Every index is assigned to exactly
// one shard.
func ShardIndices(n, workers, w int) []int {
	if workers <= 0 || w < 0 || w >= workers {
		panic(fmt.Sprintf("data: shard %d of %d", w, workers))
	}
	lo := n * w / workers
	hi := n * (w + 1) / workers
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return idx
}

// Sampler yields mini-batches of indices drawn from one worker's shard,
// reshuffling the shard every epoch. It is deterministic given its RNG.
type Sampler struct {
	idx   []int
	batch int
	pos   int
	r     *rng.RNG
	epoch int
}

// NewSampler creates a sampler over the given shard indices.
func NewSampler(shard []int, batch int, r *rng.RNG) *Sampler {
	if batch <= 0 || len(shard) == 0 {
		panic("data: empty shard or non-positive batch")
	}
	if batch > len(shard) {
		batch = len(shard)
	}
	s := &Sampler{idx: append([]int(nil), shard...), batch: batch, r: r}
	s.shuffle()
	return s
}

func (s *Sampler) shuffle() {
	s.r.Shuffle(len(s.idx), func(i, j int) { s.idx[i], s.idx[j] = s.idx[j], s.idx[i] })
}

// Next returns the next batch of indices. Crossing an epoch boundary
// reshuffles; the returned slice is valid until the following call.
func (s *Sampler) Next() []int {
	if s.pos+s.batch > len(s.idx) {
		s.shuffle()
		s.pos = 0
		s.epoch++
	}
	b := s.idx[s.pos : s.pos+s.batch]
	s.pos += s.batch
	return b
}

// Epoch returns the number of completed passes over the shard.
func (s *Sampler) Epoch() int { return s.epoch }

// BatchesPerEpoch returns how many batches one pass over the shard yields.
func (s *Sampler) BatchesPerEpoch() int { return len(s.idx) / s.batch }
