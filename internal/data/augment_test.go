package data

import (
	"testing"

	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

func imageBatch() *tensor.Tensor {
	x := tensor.New(2, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	return x
}

func TestAugmentNoOpPolicy(t *testing.T) {
	x := imageBatch()
	want := append([]float32(nil), x.Data...)
	Augment{}.Apply(x, rng.New(1))
	for i := range want {
		if x.Data[i] != want[i] {
			t.Fatal("zero policy modified data")
		}
	}
}

func TestAugmentIgnoresVectors(t *testing.T) {
	x := tensor.New(4, 2)
	x.Fill(3)
	Augment{MaxShift: 2, FlipProb: 1}.Apply(x, rng.New(1))
	for _, v := range x.Data {
		if v != 3 {
			t.Fatal("vector data modified")
		}
	}
}

func TestFlipImage(t *testing.T) {
	img := []float32{1, 2, 3, 4}
	flipImage(img, 1, 2, 2)
	want := []float32{2, 1, 4, 3}
	for i := range want {
		if img[i] != want[i] {
			t.Fatalf("flip = %v", img)
		}
	}
	// flipping twice restores
	flipImage(img, 1, 2, 2)
	if img[0] != 1 || img[3] != 4 {
		t.Fatal("double flip not identity")
	}
}

func TestShiftImage(t *testing.T) {
	img := []float32{
		1, 2,
		3, 4,
	}
	scratch := make([]float32, 4)
	shiftImage(img, scratch, 1, 2, 2, 1, 0) // shift right by 1
	want := []float32{0, 1, 0, 3}
	for i := range want {
		if img[i] != want[i] {
			t.Fatalf("shift = %v, want %v", img, want)
		}
	}
}

func TestShiftPreservesMassWithinBounds(t *testing.T) {
	// A shift never creates new nonzero mass.
	r := rng.New(5)
	x := tensor.New(8, 1, 16, 16)
	x.RandUniform(r, 0.5, 1)
	var before float64
	for _, v := range x.Data {
		before += float64(v)
	}
	Augment{MaxShift: 3}.Apply(x, r)
	var after float64
	for _, v := range x.Data {
		after += float64(v)
	}
	if after > before+1e-3 {
		t.Fatalf("augmentation created mass: %v -> %v", before, after)
	}
}

func TestAugmentDeterministic(t *testing.T) {
	a, b := imageBatch(), imageBatch()
	Augment{MaxShift: 1, FlipProb: 0.5}.Apply(a, rng.New(9))
	Augment{MaxShift: 1, FlipProb: 0.5}.Apply(b, rng.New(9))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("augmentation not deterministic for equal streams")
		}
	}
}

func TestAugmentActuallyChangesImages(t *testing.T) {
	x := imageBatch()
	orig := append([]float32(nil), x.Data...)
	Augment{MaxShift: 2, FlipProb: 1}.Apply(x, rng.New(3))
	same := true
	for i := range orig {
		if x.Data[i] != orig[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("aggressive policy left batch untouched")
	}
}
