package data

import (
	"fmt"
	"math"

	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

// ShapeClasses is the number of classes in the shapes16 dataset.
const ShapeClasses = 8

// GenShapes16 generates n 16×16 grayscale images of procedurally drawn
// shapes (8 classes: disk, square, cross, ring, X, horizontal stripes,
// vertical bar, checkerboard) with randomized position, size, contrast and
// additive pixel noise. It is the stand-in for ImageNet in the accuracy
// experiments: easy enough that a mini-CNN reaches high accuracy with good
// training, hard enough that degraded aggregation visibly costs accuracy.
func GenShapes16(r *rng.RNG, n int) *Dataset {
	const s = 16
	x := tensor.New(n, 1, s, s)
	y := make([]int, n)
	img := make([]float32, s*s)
	for i := 0; i < n; i++ {
		cls := r.Intn(ShapeClasses)
		y[i] = cls
		for j := range img {
			img[j] = 0
		}
		cx := 5 + r.Float64()*6 // center jitter
		cy := 5 + r.Float64()*6
		rad := 2.5 + r.Float64()*3
		amp := float32(0.7 + 0.6*r.Float64())
		phase := r.Intn(2)
		drawShape(img, s, cls, cx, cy, rad, amp, phase)
		// additive noise + contrast jitter
		for j := range img {
			img[j] += float32(r.NormFloat64()) * 0.15
		}
		copy(x.Data[i*s*s:(i+1)*s*s], img)
	}
	return &Dataset{Name: "shapes16", X: x, Y: y, Classes: ShapeClasses}
}

func drawShape(img []float32, s, cls int, cx, cy, rad float64, amp float32, phase int) {
	set := func(xx, yy int, v float32) {
		if xx >= 0 && xx < s && yy >= 0 && yy < s {
			img[yy*s+xx] = v
		}
	}
	switch cls {
	case 0: // filled disk
		for yy := 0; yy < s; yy++ {
			for xx := 0; xx < s; xx++ {
				dx, dy := float64(xx)-cx, float64(yy)-cy
				if dx*dx+dy*dy <= rad*rad {
					set(xx, yy, amp)
				}
			}
		}
	case 1: // filled square
		h := int(rad)
		for yy := int(cy) - h; yy <= int(cy)+h; yy++ {
			for xx := int(cx) - h; xx <= int(cx)+h; xx++ {
				set(xx, yy, amp)
			}
		}
	case 2: // plus / cross
		h := int(rad) + 1
		for d := -h; d <= h; d++ {
			set(int(cx)+d, int(cy), amp)
			set(int(cx)+d, int(cy)+1, amp)
			set(int(cx), int(cy)+d, amp)
			set(int(cx)+1, int(cy)+d, amp)
		}
	case 3: // ring (annulus)
		for yy := 0; yy < s; yy++ {
			for xx := 0; xx < s; xx++ {
				dx, dy := float64(xx)-cx, float64(yy)-cy
				d2 := dx*dx + dy*dy
				if d2 <= rad*rad && d2 >= (rad-1.8)*(rad-1.8) {
					set(xx, yy, amp)
				}
			}
		}
	case 4: // X (two diagonals)
		h := int(rad) + 1
		for d := -h; d <= h; d++ {
			set(int(cx)+d, int(cy)+d, amp)
			set(int(cx)+d, int(cy)-d, amp)
			set(int(cx)+d+1, int(cy)+d, amp)
			set(int(cx)+d+1, int(cy)-d, amp)
		}
	case 5: // horizontal stripes
		for yy := phase; yy < s; yy += 3 {
			for xx := 0; xx < s; xx++ {
				set(xx, yy, amp)
			}
		}
	case 6: // vertical bar
		w := 1 + int(rad/2)
		for yy := 0; yy < s; yy++ {
			for xx := int(cx) - w; xx <= int(cx)+w; xx++ {
				set(xx, yy, amp)
			}
		}
	case 7: // checkerboard
		cell := 2 + phase
		for yy := 0; yy < s; yy++ {
			for xx := 0; xx < s; xx++ {
				if ((xx/cell)+(yy/cell))%2 == 0 {
					set(xx, yy, amp)
				}
			}
		}
	default:
		panic(fmt.Sprintf("data: shape class %d out of range", cls))
	}
}

// GenGauss generates n 2-D points in `classes` Gaussian clusters arranged on
// a circle. The fastest learnable task in the repo; used by unit tests.
func GenGauss(r *rng.RNG, n, classes int, noise float64) *Dataset {
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := r.Intn(classes)
		y[i] = cls
		theta := 2 * math.Pi * float64(cls) / float64(classes)
		x.Data[i*2] = float32(2*math.Cos(theta) + r.NormFloat64()*noise)
		x.Data[i*2+1] = float32(2*math.Sin(theta) + r.NormFloat64()*noise)
	}
	return &Dataset{Name: "gauss", X: x, Y: y, Classes: classes}
}

// GenSpiral generates the classic interleaved-spirals task with the given
// number of arms (classes). Nonlinear, so it requires a hidden layer —
// useful when a test must distinguish real learning from chance.
func GenSpiral(r *rng.RNG, n, arms int, noise float64) *Dataset {
	x := tensor.New(n, 2)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := r.Intn(arms)
		y[i] = cls
		t := r.Float64() * 2.5 // radius parameter
		theta := 2*math.Pi*float64(cls)/float64(arms) + t*2.2
		x.Data[i*2] = float32(t*math.Cos(theta) + r.NormFloat64()*noise)
		x.Data[i*2+1] = float32(t*math.Sin(theta) + r.NormFloat64()*noise)
	}
	return &Dataset{Name: "spiral", X: x, Y: y, Classes: arms}
}

// ByName builds a dataset generator by CLI name: "shapes16", "gauss",
// "spiral".
func ByName(name string, r *rng.RNG, n int) (*Dataset, error) {
	switch name {
	case "shapes16":
		return GenShapes16(r, n), nil
	case "gauss":
		return GenGauss(r, n, 4, 0.5), nil
	case "spiral":
		return GenSpiral(r, n, 3, 0.1), nil
	default:
		return nil, fmt.Errorf("data: unknown dataset %q", name)
	}
}
