package costmodel

import (
	"math"
	"testing"

	"disttrain/internal/rng"
)

func TestResNet50ParamCount(t *testing.T) {
	p := ResNet50()
	got := p.TotalParams()
	// Paper: ResNet-50 has 23M parameters (actual 25.5M incl. BN; our conv+fc
	// approximation should land within 10% of 23-26M).
	if got < 21e6 || got > 28e6 {
		t.Fatalf("resnet50 params = %d, want ~23-26M", got)
	}
}

func TestVGG16ParamCount(t *testing.T) {
	p := VGG16()
	got := p.TotalParams()
	// Paper: VGG-16 has 138M parameters.
	if got < 130e6 || got > 145e6 {
		t.Fatalf("vgg16 params = %d, want ~138M", got)
	}
}

func TestVGG16Skew(t *testing.T) {
	p := VGG16()
	var maxLayer int64
	for _, l := range p.Layers {
		if l.Params > maxLayer {
			maxLayer = l.Params
		}
	}
	frac := float64(maxLayer) / float64(p.TotalParams())
	// Paper: the first FC layer holds about 75% of VGG-16's parameters.
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("vgg16 fc1 fraction = %.3f, want ~0.75", frac)
	}
}

func TestResNetLessSkewedThanVGG(t *testing.T) {
	skew := func(p *Profile) float64 {
		var maxLayer int64
		for _, l := range p.Layers {
			if l.Params > maxLayer {
				maxLayer = l.Params
			}
		}
		return float64(maxLayer) / float64(p.TotalParams())
	}
	if skew(ResNet50()) >= skew(VGG16()) {
		t.Fatal("expected ResNet-50 layer sizes to be less skewed than VGG-16")
	}
}

func TestFLOPsOrders(t *testing.T) {
	// Counting multiply+add as 2 FLOPs: ResNet-50 forward ≈ 8 GFLOPs/sample
	// (≈4 GMACs), VGG-16 ≈ 31 GFLOPs/sample (≈15.5 GMACs).
	r := ResNet50().FwdFLOPsPerSample()
	if r < 6e9 || r > 11e9 {
		t.Fatalf("resnet50 fwd = %.2e, want ~8e9", r)
	}
	v := VGG16().FwdFLOPsPerSample()
	if v < 24e9 || v > 38e9 {
		t.Fatalf("vgg16 fwd = %.2e, want ~31e9", v)
	}
}

func TestSegmentsMatchTotals(t *testing.T) {
	for _, p := range []*Profile{ResNet50(), VGG16()} {
		segs := p.Segments()
		total := 0
		off := 0
		for _, s := range segs {
			if s.Off != off {
				t.Fatalf("%s: segment %s off %d, want %d", p.Name, s.Name, s.Off, off)
			}
			off += s.Len
			total += s.Len
		}
		if int64(total) != p.TotalParams() {
			t.Fatalf("%s: segments total %d != %d", p.Name, total, p.TotalParams())
		}
	}
}

func TestMeanIterSecPlausible(t *testing.T) {
	// ResNet-50 batch 128 on TITAN V: a few hundred ms per iteration.
	w := NewWorkload(ResNet50(), TitanV(), 128)
	s := w.MeanIterSec()
	if s < 0.1 || s > 1.0 {
		t.Fatalf("resnet50 iter = %v s, want 0.1-1.0", s)
	}
	// VGG-16 must be slower per sample *and* much bigger on the wire.
	v := NewWorkload(VGG16(), TitanV(), 96)
	if v.MeanIterSec() <= s {
		t.Fatal("vgg16 iteration should cost more than resnet50")
	}
}

func TestCommToComputeRatioOrdering(t *testing.T) {
	// The paper's taxonomy: VGG-16 is communication-intensive relative to
	// ResNet-50. bytes/computeTime must be clearly higher for VGG-16.
	r := NewWorkload(ResNet50(), TitanV(), 128)
	v := NewWorkload(VGG16(), TitanV(), 96)
	rRatio := float64(r.Profile.TotalBytes()) / r.MeanIterSec()
	vRatio := float64(v.Profile.TotalBytes()) / v.MeanIterSec()
	if vRatio < 1.5*rRatio {
		t.Fatalf("vgg comm/compute %.3e not >> resnet %.3e", vRatio, rRatio)
	}
}

func TestSampleIterJitter(t *testing.T) {
	w := NewWorkload(ResNet50(), TitanV(), 128)
	r := rng.New(1)
	mean := w.MeanIterSec()
	var sum, minV, maxV float64
	minV = math.Inf(1)
	const n = 2000
	for i := 0; i < n; i++ {
		s := w.SampleIterSec(r)
		sum += s
		if s < minV {
			minV = s
		}
		if s > maxV {
			maxV = s
		}
	}
	if math.Abs(sum/n-mean)/mean > 0.01 {
		t.Fatalf("jitter biased: mean %v vs %v", sum/n, mean)
	}
	// Paper: ~5% spread between fastest and slowest; with 2% std the
	// fast/slow spread over many draws lands in a few-to-20% band.
	spread := (maxV - minV) / mean
	if spread < 0.02 || spread > 0.4 {
		t.Fatalf("spread = %v, want a few percent", spread)
	}
}

func TestBwdLayerSecSumsToBackward(t *testing.T) {
	w := NewWorkload(VGG16(), TitanV(), 96)
	var sum float64
	for i := range w.Profile.Layers {
		sum += w.BwdLayerSec(i)
	}
	wantBwd := w.MeanIterSec() * w.BwdMult / (1 + w.BwdMult)
	if math.Abs(sum-wantBwd)/wantBwd > 1e-9 {
		t.Fatalf("per-layer backward %v != total backward %v", sum, wantBwd)
	}
}

func TestProfileByName(t *testing.T) {
	for _, n := range []string{"resnet50", "vgg16"} {
		if _, err := ProfileByName(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ProfileByName("lenet"); err == nil {
		t.Fatal("expected error")
	}
}

func TestBERTBaseParamCount(t *testing.T) {
	p := BERTBase()
	got := p.TotalParams()
	// BERT-Base: ~110M parameters.
	if got < 100e6 || got > 120e6 {
		t.Fatalf("bertbase params = %d, want ~110M", got)
	}
}

func TestBERTBaseUniformBlocks(t *testing.T) {
	// Unlike VGG-16, BERT's transformer blocks are uniform: excluding the
	// embedding table, no layer should dominate.
	p := BERTBase()
	var maxLayer, total int64
	for _, l := range p.Layers {
		if l.Name == "embeddings" {
			continue
		}
		if l.Params > maxLayer {
			maxLayer = l.Params
		}
		total += l.Params
	}
	if frac := float64(maxLayer) / float64(total); frac > 0.1 {
		t.Fatalf("bert block fraction %.3f, want uniform (<0.1)", frac)
	}
}

func TestBERTProfileByName(t *testing.T) {
	if _, err := ProfileByName("bertbase"); err != nil {
		t.Fatal(err)
	}
}
