package costmodel

import (
	"fmt"
	"math"

	"disttrain/internal/cluster"
)

// First-order analytic predictions of AllReduce completion time on the
// simulated two-tier fabric. These mirror the store-and-forward simnet
// physics closely enough to sanity-check measured virtual times and to
// reason about scaling regimes without running the simulator:
//
//   - The flat ring is throughput-bound: each of the 2(n-1) steps moves one
//     1/n-chunk per rank, and only one hop per machine crosses the NIC, so
//     the per-hop latency hides behind NIC occupancy until the chunk gets
//     small (the latency-bound regime where hierarchical wins).
//   - The hierarchical collective is latency-exposed on its leaders ring
//     (every hop is inter-machine) and pays a serial gather/broadcast on
//     each machine's shared bus, but moves only 1/L-chunks between machines.
//
// Ring and hierarchical are calibrated against the simulator (see
// TestPredictionsMatchSimulator); butterfly, torus and tree are rougher
// envelopes, adequate for trend lines but not gated by tolerance tests.

// machinesUsed returns how many machines host at least one of n workers.
func machinesUsed(c cluster.Config, n int) int {
	m := (n + c.WorkersPerMachine - 1) / c.WorkersPerMachine
	if m > c.Machines {
		m = c.Machines
	}
	return m
}

// RingAllReduceSec predicts the ring AllReduce time for bytes over n
// workers packed onto c. Per step, every rank forwards a 1/n-chunk to its
// successor: each machine's NIC carries exactly one inter-machine hop, the
// shared bus carries the machine's g-1 intra hops, and the dependency chain
// advances at latency plus the average hop occupancy.
func RingAllReduceSec(c cluster.Config, n int, bytes int64) float64 {
	if n < 2 {
		return 0
	}
	chunk := float64(bytes) / float64(n)
	m := machinesUsed(c, n)
	interOcc := chunk / c.InterBytesPerSec
	intraOcc := chunk / c.IntraBytesPerSec
	var bottleneck float64
	if m > 1 {
		g := float64(n) / float64(m)
		bottleneck = math.Max(interOcc, (g-1)*intraOcc)
	} else {
		// Single machine: all n hops share one bus.
		bottleneck = float64(n) * intraOcc
	}
	avgHop := (float64(m)*interOcc + float64(n-m)*intraOcc) / float64(n)
	step := math.Max(bottleneck, c.LatencySec+avgHop)
	return 2 * float64(n-1) * step
}

// HierarchicalAllReduceSec predicts the three-phase hierarchical AllReduce:
// serial member→leader gathers on each machine's shared bus, a ring of L
// leaders over 1/L-chunks in which every hop crosses the NIC and therefore
// pays full latency, and the mirrored broadcast back to members.
func HierarchicalAllReduceSec(c cluster.Config, n int, bytes int64) float64 {
	if n < 2 {
		return 0
	}
	m := machinesUsed(c, n)
	g := (n + m - 1) / m // largest group drives the serial bus phases
	b := float64(bytes)
	local := 2*float64(g-1)*b/c.IntraBytesPerSec + 2*c.LatencySec
	if m < 2 {
		return local
	}
	chunk := b / float64(m)
	leaders := 2 * float64(m-1) * (chunk/c.InterBytesPerSec + c.LatencySec)
	return local + leaders
}

// ButterflyAllReduceSec gives a rough envelope for recursive
// halving/doubling: log2(p2) exchange rounds each way with geometrically
// shrinking payloads, every round generally crossing machines once the mask
// exceeds the group size, plus a full-size pre/post fold round for
// non-power-of-two worlds.
func ButterflyAllReduceSec(c cluster.Config, n int, bytes int64) float64 {
	if n < 2 {
		return 0
	}
	p2 := 1
	for p2*2 <= n {
		p2 *= 2
	}
	bw := c.InterBytesPerSec
	if machinesUsed(c, n) < 2 {
		bw = c.IntraBytesPerSec
	}
	b := float64(bytes)
	rounds := math.Log2(float64(p2))
	t := 2 * (b/bw*(1-1/float64(p2)) + rounds*c.LatencySec)
	if n != p2 {
		t += 2 * (b/bw + c.LatencySec)
	}
	return t
}

// TorusAllReduceSec gives a rough envelope for the 2D ring-of-rings: a full
// ring AllReduce along each row followed by one along each column, both
// over the full payload.
func TorusAllReduceSec(c cluster.Config, rows, cols int, bytes int64) float64 {
	b := float64(bytes)
	bw := c.InterBytesPerSec
	if machinesUsed(c, rows*cols) < 2 {
		bw = c.IntraBytesPerSec
	}
	row := 2 * float64(cols-1) * (b/float64(cols)/bw + c.LatencySec)
	col := 2 * float64(rows-1) * (b/float64(rows)/bw + c.LatencySec)
	return row + col
}

// TreeAllReduceSec gives a rough envelope for the binomial tree
// reduce+broadcast: 2·ceil(log2 n) full-payload rounds.
func TreeAllReduceSec(c cluster.Config, n int, bytes int64) float64 {
	if n < 2 {
		return 0
	}
	bw := c.InterBytesPerSec
	if machinesUsed(c, n) < 2 {
		bw = c.IntraBytesPerSec
	}
	rounds := math.Ceil(math.Log2(float64(n)))
	return 2 * rounds * (float64(bytes)/bw + c.LatencySec)
}

// PredictAllReduceSec dispatches on the collective name used by
// core.Config.Collective. Torus shape is derived as the most-square
// factorization, matching topo.TorusShape.
func PredictAllReduceSec(collective string, c cluster.Config, n int, bytes int64) (float64, error) {
	switch collective {
	case "", "ring":
		return RingAllReduceSec(c, n, bytes), nil
	case "tree":
		return TreeAllReduceSec(c, n, bytes), nil
	case "hierarchical":
		return HierarchicalAllReduceSec(c, n, bytes), nil
	case "butterfly":
		return ButterflyAllReduceSec(c, n, bytes), nil
	case "torus":
		rows, cols, err := torusShape(n)
		if err != nil {
			return 0, err
		}
		return TorusAllReduceSec(c, rows, cols, bytes), nil
	default:
		return 0, fmt.Errorf("costmodel: unknown collective %q", collective)
	}
}

// torusShape mirrors topo.TorusShape (kept local to avoid a dependency on
// the topology package): the most-square factorization rows×cols = n with
// rows ≤ cols and rows ≥ 2.
func torusShape(n int) (rows, cols int, err error) {
	if n < 4 {
		return 0, 0, fmt.Errorf("costmodel: torus needs at least 4 ranks, got %d", n)
	}
	for r := int(math.Sqrt(float64(n))); r >= 2; r-- {
		if n%r == 0 {
			return r, n / r, nil
		}
	}
	return 0, 0, fmt.Errorf("costmodel: %d ranks have no rectangular torus factorization", n)
}
