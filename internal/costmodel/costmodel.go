// Package costmodel provides compute- and communication-cost profiles for
// the DNN workloads the paper evaluates.
//
// The paper measured ResNet-50 (23 M parameters, computation-intensive) and
// VGG-16 (138 M parameters, communication-intensive, ~75 % of parameters in
// the first fully connected layer) on NVIDIA TITAN V GPUs (14.90 TFLOPS).
// We cannot run those models; instead this package reproduces their
// *cost structure* — per-layer parameter sizes, per-iteration FLOPs, and a
// straggler jitter the paper reports at ~5 % between fastest and slowest
// worker — which is what the scalability and breakdown experiments depend
// on.
package costmodel

import (
	"fmt"

	"disttrain/internal/nn"
	"disttrain/internal/rng"
)

// BytesPerParam is the wire size of one parameter/gradient (float32).
const BytesPerParam = 4

// LayerCost describes one layer's contribution to cost.
type LayerCost struct {
	Name string
	// Params is the number of learnable scalars in the layer.
	Params int64
	// FwdFLOPs is the forward cost per sample.
	FwdFLOPs float64
}

// Profile is a model cost profile.
type Profile struct {
	Name   string
	Layers []LayerCost
}

// TotalParams returns the total learnable scalar count.
func (p *Profile) TotalParams() int64 {
	var s int64
	for _, l := range p.Layers {
		s += l.Params
	}
	return s
}

// TotalBytes returns the wire size of a full gradient/parameter message.
func (p *Profile) TotalBytes() int64 { return p.TotalParams() * BytesPerParam }

// FwdFLOPsPerSample returns the summed forward cost of one sample.
func (p *Profile) FwdFLOPsPerSample() float64 {
	var s float64
	for _, l := range p.Layers {
		s += l.FwdFLOPs
	}
	return s
}

// Segments returns the layer layout of the flat parameter vector, the form
// parameter sharding consumes.
func (p *Profile) Segments() []nn.Segment {
	segs := make([]nn.Segment, 0, len(p.Layers))
	off := 0
	for _, l := range p.Layers {
		segs = append(segs, nn.Segment{Name: l.Name, Off: off, Len: int(l.Params)})
		off += int(l.Params)
	}
	return segs
}

// ResNet50 returns a profile approximating ResNet-50: 16 bottleneck blocks
// in 4 stages plus stem and final FC, ≈23 M parameters with moderate
// per-layer skew and a high FLOPs-per-parameter ratio (the
// "computation-intensive" regime).
func ResNet50() *Profile {
	p := &Profile{Name: "resnet50"}
	add := func(name string, params int64, flops float64) {
		p.Layers = append(p.Layers, LayerCost{Name: name, Params: params, FwdFLOPs: flops})
	}
	add("stem.conv", 9_408, 118e6) // 7x7x64, 112x112 output
	// (blocks per stage, mid channels, spatial positions) per ResNet-50 stage
	stages := []struct {
		blocks int
		width  int64
		pos    float64
	}{
		{3, 64, 56 * 56},
		{4, 128, 28 * 28},
		{6, 256, 14 * 14},
		{3, 512, 7 * 7},
	}
	in := int64(64) // stem output channels
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			// Bottleneck: 1x1 reduce, 3x3, 1x1 expand (+ projection on the
			// first block of a stage).
			c1 := in * st.width
			c2 := 9 * st.width * st.width
			c3 := st.width * (st.width * 4)
			proj := int64(0)
			if b == 0 {
				proj = in * st.width * 4
			}
			params := c1 + c2 + c3 + proj
			flops := 2 * float64(params) * st.pos
			add(fmt.Sprintf("stage%d.block%d", si+1, b), params, flops)
			in = st.width * 4
		}
	}
	add("fc", 2048*1000+1000, 2*2048*1000)
	return p
}

// VGG16 returns a profile approximating VGG-16: 13 conv layers plus 3 FC
// layers, ≈138 M parameters, with fc1 (25088×4096 ≈ 103 M) holding ~75 % of
// all parameters — the skew that makes layer-wise sharding the bottleneck
// in the paper's VGG experiments.
func VGG16() *Profile {
	p := &Profile{Name: "vgg16"}
	add := func(name string, params int64, flops float64) {
		p.Layers = append(p.Layers, LayerCost{Name: name, Params: params, FwdFLOPs: flops})
	}
	convs := []struct {
		name    string
		in, out int64
		pos     float64
	}{
		{"conv1_1", 3, 64, 224 * 224}, {"conv1_2", 64, 64, 224 * 224},
		{"conv2_1", 64, 128, 112 * 112}, {"conv2_2", 128, 128, 112 * 112},
		{"conv3_1", 128, 256, 56 * 56}, {"conv3_2", 256, 256, 56 * 56}, {"conv3_3", 256, 256, 56 * 56},
		{"conv4_1", 256, 512, 28 * 28}, {"conv4_2", 512, 512, 28 * 28}, {"conv4_3", 512, 512, 28 * 28},
		{"conv5_1", 512, 512, 14 * 14}, {"conv5_2", 512, 512, 14 * 14}, {"conv5_3", 512, 512, 14 * 14},
	}
	for _, c := range convs {
		params := 9*c.in*c.out + c.out
		add(c.name, params, 2*float64(9*c.in*c.out)*c.pos)
	}
	add("fc1", 25088*4096+4096, 2*25088*4096)
	add("fc2", 4096*4096+4096, 2*4096*4096)
	add("fc3", 4096*1000+1000, 2*4096*1000)
	return p
}

// BERTBase returns a profile approximating BERT-Base (Devlin et al. — the
// paper's introduction motivates the study with exactly this class of
// model): 12 transformer blocks of hidden size 768 with 3072-wide FFNs,
// plus the embedding tables, ≈110 M parameters. Per-layer sizes are uniform
// across blocks (unlike VGG-16's skew), and the FLOPs-per-parameter ratio
// at sequence length 128 sits between the two CNNs. Provided as an
// extension workload for the scalability experiments.
func BERTBase() *Profile {
	p := &Profile{Name: "bertbase"}
	add := func(name string, params int64, flops float64) {
		p.Layers = append(p.Layers, LayerCost{Name: name, Params: params, FwdFLOPs: flops})
	}
	const (
		hidden = 768
		ffn    = 3072
		seqLen = 128
		vocab  = 30522
	)
	// Embeddings (word + position + type); FLOPs are lookup-dominated and
	// negligible next to the blocks.
	add("embeddings", int64(vocab+512+2)*hidden, 1e6)
	for b := 0; b < 12; b++ {
		// Attention: Q,K,V,O projections (4·h²) + per-position attention
		// matmuls; FFN: two h×4h projections.
		attnParams := int64(4*hidden*hidden + 4*hidden)
		attnFlops := 2*float64(attnParams)*seqLen + 2*2*float64(seqLen)*float64(seqLen)*hidden
		add(fmt.Sprintf("block%d.attn", b), attnParams, attnFlops)
		ffnParams := int64(2*hidden*ffn + hidden + ffn)
		add(fmt.Sprintf("block%d.ffn", b), ffnParams, 2*float64(ffnParams)*seqLen)
	}
	add("pooler", hidden*hidden+hidden, 2*float64(hidden*hidden))
	return p
}

// ProfileByName resolves "resnet50", "vgg16" or "bertbase".
func ProfileByName(name string) (*Profile, error) {
	switch name {
	case "resnet50":
		return ResNet50(), nil
	case "vgg16":
		return VGG16(), nil
	case "bertbase":
		return BERTBase(), nil
	default:
		return nil, fmt.Errorf("costmodel: unknown profile %q", name)
	}
}

// GPU models an accelerator's effective training throughput.
type GPU struct {
	// PeakFLOPS is the peak single-precision rate (TITAN V: 14.9e12).
	PeakFLOPS float64
	// Efficiency is the achieved fraction of peak during DNN training.
	Efficiency float64
	// JitterStd is the relative standard deviation of per-iteration compute
	// time; the paper observed ~5 % spread between fastest and slowest
	// workers on homogeneous hardware.
	JitterStd float64
	// StragglerProb is the probability that an iteration stalls (paging,
	// preemption, thermal throttling); 0 disables straggler injection.
	StragglerProb float64
	// StragglerMult multiplies the iteration time when a straggle occurs.
	StragglerMult float64
}

// TitanV returns the paper's GPU at its measured training efficiency:
// ~330 ResNet-50 images/s in fp32 corresponds to ≈55 % of the 14.90 TFLOPS
// peak at ~8.2 GFLOPs (multiply+add) per forward sample.
func TitanV() GPU {
	return GPU{PeakFLOPS: 14.90e12, Efficiency: 0.55, JitterStd: 0.02}
}

// Workload is a (model, GPU, batch size) combination plus the backward-pass
// cost multiplier (backward ≈ 2× forward for CNNs).
type Workload struct {
	Profile *Profile
	GPU     GPU
	Batch   int
	BwdMult float64
}

// NewWorkload builds a workload with standard backward cost (2× forward).
func NewWorkload(p *Profile, gpu GPU, batch int) Workload {
	return Workload{Profile: p, GPU: gpu, Batch: batch, BwdMult: 2}
}

// MeanIterSec returns the mean compute time of one training iteration
// (forward + backward on one batch) without jitter.
func (w Workload) MeanIterSec() float64 {
	fl := w.Profile.FwdFLOPsPerSample() * float64(w.Batch) * (1 + w.BwdMult)
	return fl / (w.GPU.PeakFLOPS * w.GPU.Efficiency)
}

// SampleMult draws one iteration-time multiplier: Gaussian jitter plus an
// occasional straggler stall.
func (w Workload) SampleMult(r *rng.RNG) float64 {
	j := 1 + r.NormFloat64()*w.GPU.JitterStd
	if j < 0.5 {
		j = 0.5
	}
	if w.GPU.StragglerProb > 0 && r.Bernoulli(w.GPU.StragglerProb) {
		mult := w.GPU.StragglerMult
		if mult < 1 {
			mult = 1
		}
		j *= mult
	}
	return j
}

// SampleIterSec draws one jittered iteration time from r.
func (w Workload) SampleIterSec(r *rng.RNG) float64 {
	return w.MeanIterSec() * w.SampleMult(r)
}

// BwdLayerSec returns the backward compute time attributable to layer i —
// used by wait-free backpropagation, which sends layer i's gradient while
// layers deeper in the backward pass (i-1 ... 0) are still computing.
// Backward runs from the last layer to the first.
func (w Workload) BwdLayerSec(i int) float64 {
	fl := w.Profile.Layers[i].FwdFLOPs * float64(w.Batch) * w.BwdMult
	return fl / (w.GPU.PeakFLOPS * w.GPU.Efficiency)
}

// AggRateBytesPerSec is the rate at which a parameter-server shard can
// apply incoming gradients to its segment (memory-bandwidth bound on the
// host CPU).
const AggRateBytesPerSec = 4e9
