package costmodel

import (
	"testing"

	"disttrain/internal/cluster"
)

func TestRingPredictionBandwidthBound(t *testing.T) {
	// Full ResNet-50 gradient at 24 workers on 10G: the NIC occupancy
	// dominates, so the prediction must be ≈ 2(n-1)/n · B/bw.
	c := cluster.Paper10G(24)
	const B = 94 << 20
	got := RingAllReduceSec(c, 24, B)
	want := 2 * 23.0 / 24.0 * float64(B) / c.InterBytesPerSec
	if rel := (got - want) / want; rel < -0.01 || rel > 0.25 {
		t.Fatalf("ring(24, 94MB) = %.4g, want near %.4g", got, want)
	}
}

func TestRingPredictionLatencyBound(t *testing.T) {
	// Tiny payload: every one of the 2(n-1) steps pays the hop latency.
	c := cluster.Paper10G(24)
	got := RingAllReduceSec(c, 24, 1024)
	floor := 2 * 23.0 * c.LatencySec
	if got < floor {
		t.Fatalf("ring(24, 1KB) = %.4g below the latency floor %.4g", got, floor)
	}
}

func TestHierarchicalWinsLatencyBoundRegime(t *testing.T) {
	// The regime the scaling study headlines: compressed-class gradients on
	// 10G, where the leaders ring's 2(M-1)-step chain beats the flat ring's
	// 2(n-1) steps at every multi-machine scale.
	const B = 470 << 10
	for _, n := range []int{8, 24, 64, 256, 1024} {
		c := cluster.Paper10G(n)
		ring := RingAllReduceSec(c, n, B)
		hier := HierarchicalAllReduceSec(c, n, B)
		if hier >= ring {
			t.Errorf("n=%d: hierarchical %.4g >= ring %.4g at 470KB", n, hier, ring)
		}
	}
}

func TestRingWinsBandwidthBoundRegime(t *testing.T) {
	// Full-gradient counterpoint: the flat ring is near bandwidth-optimal,
	// so with a 94 MB payload at moderate scale it beats the hierarchy
	// (whose serial bus gather is payload-proportional).
	const B = 94 << 20
	c := cluster.Paper10G(64)
	ring := RingAllReduceSec(c, 64, B)
	hier := HierarchicalAllReduceSec(c, 64, B)
	if ring >= hier {
		t.Fatalf("ring %.4g >= hierarchical %.4g at 94MB, 64 workers", ring, hier)
	}
}

func TestPredictAllReduceSecDispatch(t *testing.T) {
	c := cluster.Paper10G(24)
	for _, name := range []string{"", "ring", "tree", "hierarchical", "butterfly", "torus"} {
		got, err := PredictAllReduceSec(name, c, 24, 1<<20)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if got <= 0 {
			t.Fatalf("%q: non-positive prediction %v", name, got)
		}
	}
	if _, err := PredictAllReduceSec("hypercube", c, 24, 1<<20); err == nil {
		t.Fatal("unknown collective accepted")
	}
	if _, err := PredictAllReduceSec("torus", c, 7, 1<<20); err == nil {
		t.Fatal("prime torus accepted")
	}
}

func TestTorusShapeMirrorsTopo(t *testing.T) {
	for _, tc := range []struct{ n, rows, cols int }{
		{4, 2, 2}, {6, 2, 3}, {24, 4, 6}, {1024, 32, 32},
	} {
		rows, cols, err := torusShape(tc.n)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if rows != tc.rows || cols != tc.cols {
			t.Fatalf("n=%d: %dx%d, want %dx%d", tc.n, rows, cols, tc.rows, tc.cols)
		}
	}
}
