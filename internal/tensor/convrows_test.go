package tensor

import (
	"testing"

	"disttrain/internal/rng"
)

// TestIm2colRowsMatchesIm2col: the patch-row layout is the exact transpose
// of the classic column layout, for strided, padded and multi-channel cases.
func TestIm2colRowsMatchesIm2col(t *testing.T) {
	cases := []struct{ c, h, w, k, stride, pad int }{
		{1, 4, 4, 1, 1, 0},
		{3, 5, 5, 3, 1, 1},
		{2, 6, 8, 3, 2, 1},
		{4, 7, 7, 5, 2, 2},
	}
	r := rng.New(31)
	for _, tc := range cases {
		in := New(tc.c, tc.h, tc.w)
		in.RandNormal(r, 1)
		outH := (tc.h+2*tc.pad-tc.k)/tc.stride + 1
		outW := (tc.w+2*tc.pad-tc.k)/tc.stride + 1
		f := tc.c * tc.k * tc.k
		nCols := outH * outW

		cols := New(f, nCols)
		Im2col(in, tc.k, tc.k, tc.stride, tc.pad, cols)
		rows := make([]float32, nCols*f)
		Im2colRows(in, tc.k, tc.k, tc.stride, tc.pad, rows)

		for p := 0; p < nCols; p++ {
			for j := 0; j < f; j++ {
				if got, want := rows[p*f+j], cols.Data[j*nCols+p]; got != want {
					t.Fatalf("case %+v: rows[%d,%d]=%v, cols[%d,%d]=%v", tc, p, j, got, j, p, want)
				}
			}
		}
	}
}

// TestCol2imRowsMatchesCol2im: scattering the transposed layout accumulates
// the same input gradient as the classic path.
func TestCol2imRowsMatchesCol2im(t *testing.T) {
	const c, h, w, k, stride, pad = 2, 6, 6, 3, 1, 1
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	f := c * k * k
	nCols := outH * outW

	r := rng.New(33)
	cols := New(f, nCols)
	cols.RandNormal(r, 1)
	rows := make([]float32, nCols*f)
	for p := 0; p < nCols; p++ {
		for j := 0; j < f; j++ {
			rows[p*f+j] = cols.Data[j*nCols+p]
		}
	}

	want := New(c, h, w)
	Col2im(cols, c, h, w, k, k, stride, pad, want)
	got := New(c, h, w)
	Col2imRows(rows, c, h, w, k, k, stride, pad, got)

	for i := range want.Data {
		d := got.Data[i] - want.Data[i]
		if d < -1e-5 || d > 1e-5 {
			t.Fatalf("grad[%d]: rows %v vs cols %v", i, got.Data[i], want.Data[i])
		}
	}
}
