package tensor

import "fmt"

// Im2col lowers a (C×H×W) input into a matrix of shape
// (C·kh·kw) × (outH·outW) so convolution becomes a single GEMM.
// stride and pad apply symmetrically; out must be pre-allocated with that
// shape. Padding positions contribute zeros.
func Im2col(in *Tensor, kh, kw, stride, pad int, out *Tensor) {
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	rows := c * kh * kw
	cols := outH * outW
	if out.Shape[0] != rows || out.Shape[1] != cols {
		panic(fmt.Sprintf("tensor: im2col out shape %v, want [%d %d]", out.Shape, rows, cols))
	}
	od := out.Data
	id := in.Data
	row := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				dst := od[row*cols : row*cols+cols]
				col := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < outW; ox++ {
							dst[col] = 0
							col++
						}
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							dst[col] = 0
						} else {
							dst[col] = id[rowBase+ix]
						}
						col++
					}
				}
				row++
			}
		}
	}
}

// Col2im scatters the column matrix produced by Im2col back into an input
// gradient of shape (C×H×W), accumulating where receptive fields overlap.
// grad is zeroed first.
func Col2im(cols *Tensor, c, h, w, kh, kw, stride, pad int, grad *Tensor) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	nCols := outH * outW
	if cols.Shape[0] != c*kh*kw || cols.Shape[1] != nCols {
		panic(fmt.Sprintf("tensor: col2im cols shape %v, want [%d %d]", cols.Shape, c*kh*kw, nCols))
	}
	if grad.Shape[0] != c || grad.Shape[1] != h || grad.Shape[2] != w {
		panic(fmt.Sprintf("tensor: col2im grad shape %v, want [%d %d %d]", grad.Shape, c, h, w))
	}
	grad.Zero()
	gd := grad.Data
	cd := cols.Data
	row := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				src := cd[row*nCols : row*nCols+nCols]
				col := 0
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						col += outW
						continue
					}
					rowBase := base + iy*w
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							gd[rowBase+ix] += src[col]
						}
						col++
					}
				}
				row++
			}
		}
	}
}

// Im2colRows is Im2col's transposed, slice-based variant for batched
// convolution: row (oy·outW+ox) of dst holds output position (oy,ox)'s
// receptive field, laid out [c·kh·kw]. Stacking every sample's block into
// one (B·outH·outW) × (c·kh·kw) matrix lets a whole mini-batch's
// convolution run as a single GEMM. dst must have outH·outW·c·kh·kw
// elements; padding positions contribute zeros.
func Im2colRows(in *Tensor, kh, kw, stride, pad int, dst []float32) {
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	f := c * kh * kw
	if len(dst) != outH*outW*f {
		panic(fmt.Sprintf("tensor: im2colrows dst len %d, want %d", len(dst), outH*outW*f))
	}
	id := in.Data
	r := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := dst[r*f : r*f+f]
			p := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						for kx := 0; kx < kw; kx++ {
							row[p] = 0
							p++
						}
						continue
					}
					rowBase := base + iy*w
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if ix < 0 || ix >= w {
							row[p] = 0
						} else {
							row[p] = id[rowBase+ix]
						}
						p++
					}
				}
			}
			r++
		}
	}
}

// Col2imRows scatters one sample's block of the patch-row matrix produced
// by Im2colRows back into an input gradient of shape (C×H×W), accumulating
// where receptive fields overlap. grad is zeroed first. src must have
// outH·outW·c·kh·kw elements.
func Col2imRows(src []float32, c, h, w, kh, kw, stride, pad int, grad *Tensor) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	f := c * kh * kw
	if len(src) != outH*outW*f {
		panic(fmt.Sprintf("tensor: col2imrows src len %d, want %d", len(src), outH*outW*f))
	}
	if grad.Shape[0] != c || grad.Shape[1] != h || grad.Shape[2] != w {
		panic(fmt.Sprintf("tensor: col2imrows grad shape %v, want [%d %d %d]", grad.Shape, c, h, w))
	}
	grad.Zero()
	gd := grad.Data
	r := 0
	for oy := 0; oy < outH; oy++ {
		for ox := 0; ox < outW; ox++ {
			row := src[r*f : r*f+f]
			p := 0
			for ch := 0; ch < c; ch++ {
				base := ch * h * w
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride - pad + ky
					if iy < 0 || iy >= h {
						p += kw
						continue
					}
					rowBase := base + iy*w
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride - pad + kx
						if ix >= 0 && ix < w {
							gd[rowBase+ix] += row[p]
						}
						p++
					}
				}
			}
			r++
		}
	}
}

// MaxPool2x2 applies 2×2 max pooling with stride 2 to a (C×H×W) tensor and
// records the argmax index of each output cell into idx (same length as the
// output) so the backward pass can route gradients. H and W must be even.
func MaxPool2x2(in *Tensor, out *Tensor, idx []int32) {
	c, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := h/2, w/2
	if out.Shape[0] != c || out.Shape[1] != oh || out.Shape[2] != ow {
		panic(fmt.Sprintf("tensor: maxpool out shape %v, want [%d %d %d]", out.Shape, c, oh, ow))
	}
	if len(idx) != c*oh*ow {
		panic("tensor: maxpool idx length mismatch")
	}
	id, od := in.Data, out.Data
	o := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			r0 := base + (2*oy)*w
			r1 := r0 + w
			for ox := 0; ox < ow; ox++ {
				x := 2 * ox
				best := id[r0+x]
				bi := int32(r0 + x)
				if v := id[r0+x+1]; v > best {
					best, bi = v, int32(r0+x+1)
				}
				if v := id[r1+x]; v > best {
					best, bi = v, int32(r1+x)
				}
				if v := id[r1+x+1]; v > best {
					best, bi = v, int32(r1+x+1)
				}
				od[o] = best
				idx[o] = bi
				o++
			}
		}
	}
}

// MaxPool2x2Backward scatters output gradients back to the argmax positions
// recorded by MaxPool2x2. inGrad is zeroed first.
func MaxPool2x2Backward(outGrad *Tensor, idx []int32, inGrad *Tensor) {
	inGrad.Zero()
	gd := inGrad.Data
	for i, g := range outGrad.Data {
		gd[idx[i]] += g
	}
}
