// AVX2 GEMM micro-kernels. Every kernel performs each lane's multiply and
// add as two separate single-precision operations (VMULPS then VADDPS,
// never VFMADD), so a lane's rounding sequence is exactly the scalar
// kernel's `acc += a*b` — the vector and pure-Go paths stay bit-identical.
// Accumulators start at zero and are folded into C once at the end, which
// is the panels' block-local-accumulator discipline.

#include "textflag.h"

// func cpuSupportsAVX2() bool
//
// True when the CPU reports AVX2 and the OS saves the YMM state
// (CPUID.1:ECX OSXSAVE+AVX, XCR0 XMM+YMM, CPUID.(7,0):EBX AVX2).
TEXT ·cpuSupportsAVX2(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8         // OSXSAVE | AVX
	CMPL R8, $(1<<27 | 1<<28)
	JNE  no
	XORL CX, CX
	XGETBV                            // XCR0 into DX:AX
	ANDL $6, AX                       // XMM | YMM state enabled
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	XORL CX, CX
	CPUID
	ANDL $(1<<5), BX                  // AVX2
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET

// func gemmMicro4x16(a *float32, lda int, b *float32, c *float32, ldc int, kc int)
//
// C[0:4][0:16] += A[0:4][0:kc] · B[0:kc][0:16], with A row-major (stride
// lda floats), B packed contiguously (stride 16 floats) and C row-major
// (stride ldc floats). kc must be >= 1.
TEXT ·gemmMicro4x16(SB), NOSPLIT, $0-48
	MOVQ a+0(FP), R8
	MOVQ lda+8(FP), R12
	SHLQ $2, R12                      // lda in bytes
	LEAQ (R8)(R12*1), R9              // a row 1
	LEAQ (R9)(R12*1), R10             // a row 2
	LEAQ (R10)(R12*1), R11            // a row 3
	MOVQ b+16(FP), DI
	MOVQ kc+40(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

loop4x16:
	VMOVUPS (DI), Y8                  // b[p][0:8]
	VMOVUPS 32(DI), Y9                // b[p][8:16]

	VBROADCASTSS (R8), Y10
	VMULPS Y8, Y10, Y11               // a0*b (src1 = a, as the scalar kernel)
	VADDPS Y11, Y0, Y0                // acc += prod (src1 = acc)
	VMULPS Y9, Y10, Y12
	VADDPS Y12, Y1, Y1

	VBROADCASTSS (R9), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y2, Y2
	VMULPS Y9, Y10, Y12
	VADDPS Y12, Y3, Y3

	VBROADCASTSS (R10), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y4, Y4
	VMULPS Y9, Y10, Y12
	VADDPS Y12, Y5, Y5

	VBROADCASTSS (R11), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y6, Y6
	VMULPS Y9, Y10, Y12
	VADDPS Y12, Y7, Y7

	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	ADDQ $64, DI
	DECQ CX
	JNZ  loop4x16

	// Fold the block-local accumulators into C: c = c + acc (src1 = c,
	// matching the scalar `ci[j] += s`).
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R12
	SHLQ $2, R12

	VMOVUPS (DX), Y8
	VADDPS Y0, Y8, Y8
	VMOVUPS Y8, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS Y1, Y9, Y9
	VMOVUPS Y9, 32(DX)
	ADDQ R12, DX

	VMOVUPS (DX), Y8
	VADDPS Y2, Y8, Y8
	VMOVUPS Y8, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS Y3, Y9, Y9
	VMOVUPS Y9, 32(DX)
	ADDQ R12, DX

	VMOVUPS (DX), Y8
	VADDPS Y4, Y8, Y8
	VMOVUPS Y8, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS Y5, Y9, Y9
	VMOVUPS Y9, 32(DX)
	ADDQ R12, DX

	VMOVUPS (DX), Y8
	VADDPS Y6, Y8, Y8
	VMOVUPS Y8, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS Y7, Y9, Y9
	VMOVUPS Y9, 32(DX)

	VZEROUPPER
	RET

// func gemmMicro1x16(a *float32, b *float32, c *float32, kc int)
//
// C[0:16] += A[0:kc] · B[0:kc][0:16], B packed (stride 16 floats). The
// row-remainder companion of gemmMicro4x16. kc must be >= 1.
TEXT ·gemmMicro1x16(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), R8
	MOVQ b+8(FP), DI
	MOVQ kc+24(FP), CX

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

loop1x16:
	VMOVUPS (DI), Y8
	VMOVUPS 32(DI), Y9
	VBROADCASTSS (R8), Y10
	VMULPS Y8, Y10, Y11
	VADDPS Y11, Y0, Y0
	VMULPS Y9, Y10, Y12
	VADDPS Y12, Y1, Y1
	ADDQ $4, R8
	ADDQ $64, DI
	DECQ CX
	JNZ  loop1x16

	MOVQ c+16(FP), DX
	VMOVUPS (DX), Y8
	VADDPS Y0, Y8, Y8
	VMOVUPS Y8, (DX)
	VMOVUPS 32(DX), Y9
	VADDPS Y1, Y9, Y9
	VMOVUPS Y9, 32(DX)

	VZEROUPPER
	RET

// func gemmSaxpy4(a *float32, b *float32, c *float32, ldc int, nv int)
//
// The TransA kernel: C[r][j] += a[r] * b[j] for r in 0..3 and j in
// [0, nv), with C row-major (stride ldc floats) and a holding 4
// contiguous scalars. nv must be a positive multiple of 8. Accumulation
// goes straight into C — one fold per p step — exactly like the scalar
// TransA panel.
TEXT ·gemmSaxpy4(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), R8
	VBROADCASTSS (R8), Y12
	VBROADCASTSS 4(R8), Y13
	VBROADCASTSS 8(R8), Y14
	VBROADCASTSS 12(R8), Y15
	MOVQ b+8(FP), SI
	MOVQ c+16(FP), DX
	MOVQ ldc+24(FP), R12
	SHLQ $2, R12
	LEAQ (DX)(R12*1), R9
	LEAQ (R9)(R12*1), R10
	LEAQ (R10)(R12*1), R11
	MOVQ nv+32(FP), CX
	SHRQ $3, CX

loopSaxpy:
	VMOVUPS (SI), Y8

	VMULPS Y8, Y12, Y9                // a0*b (src1 = a)
	VMOVUPS (DX), Y10
	VADDPS Y9, Y10, Y10               // c += prod (src1 = c)
	VMOVUPS Y10, (DX)

	VMULPS Y8, Y13, Y9
	VMOVUPS (R9), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (R9)

	VMULPS Y8, Y14, Y9
	VMOVUPS (R10), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (R10)

	VMULPS Y8, Y15, Y9
	VMOVUPS (R11), Y10
	VADDPS Y9, Y10, Y10
	VMOVUPS Y10, (R11)

	ADDQ $32, SI
	ADDQ $32, DX
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ CX
	JNZ  loopSaxpy

	VZEROUPPER
	RET
