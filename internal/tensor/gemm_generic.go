//go:build !amd64

package tensor

// Non-amd64 builds always take the scalar reference panels.
var hasAVX2 = false

func gemmMicro4x16(a *float32, lda int, b *float32, c *float32, ldc int, kc int) {
	panic("tensor: gemmMicro4x16 requires amd64")
}

func gemmMicro1x16(a *float32, b *float32, c *float32, kc int) {
	panic("tensor: gemmMicro1x16 requires amd64")
}

func gemmSaxpy4(a *float32, b *float32, c *float32, ldc int, nv int) {
	panic("tensor: gemmSaxpy4 requires amd64")
}
