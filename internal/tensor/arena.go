package tensor

// Arena is a size-bucketed free list of float32 scratch buffers. The nn
// layers and training replicas allocate activations, gradients and im2col
// matrices through an arena so buffers released when a batch shape changes
// (train step → evaluation → train step) are recycled instead of becoming
// garbage; steady-state training steps then allocate ~nothing.
//
// An Arena is NOT safe for concurrent use — each replica owns its own. All
// methods are nil-safe: a nil *Arena degrades to plain make/New allocation,
// so arena threading is optional everywhere.
//
// Buffers handed out by Get/GetTensor are NOT zeroed (recycled buffers keep
// their old contents). Callers must fully overwrite them, or use GetZeroed.
type Arena struct {
	pools map[int][][]float32
	gets  int
	hits  int
}

// NewArena creates an empty arena.
func NewArena() *Arena {
	return &Arena{pools: make(map[int][][]float32)}
}

// Get returns a buffer of exactly n float32s, recycled when one of that size
// is free. Contents are unspecified.
func (a *Arena) Get(n int) []float32 {
	if a == nil {
		return make([]float32, n)
	}
	a.gets++
	if bucket := a.pools[n]; len(bucket) > 0 {
		buf := bucket[len(bucket)-1]
		bucket[len(bucket)-1] = nil
		a.pools[n] = bucket[:len(bucket)-1]
		a.hits++
		return buf
	}
	return make([]float32, n)
}

// GetZeroed is Get with the returned buffer cleared.
func (a *Arena) GetZeroed(n int) []float32 {
	buf := a.Get(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Put returns buf to the arena for reuse. nil buffers (and nil arenas) are
// ignored. The caller must not use buf afterwards.
func (a *Arena) Put(buf []float32) {
	if a == nil || buf == nil {
		return
	}
	n := len(buf)
	a.pools[n] = append(a.pools[n], buf)
}

// GetTensor returns a tensor with the given shape backed by arena storage.
// Contents are unspecified; callers must fully overwrite the data.
func (a *Arena) GetTensor(shape ...int) *Tensor {
	if a == nil {
		return New(shape...)
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: non-positive dim in arena shape")
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: a.Get(n)}
}

// PutTensor releases t's storage back to the arena. nil tensors are ignored;
// t must not be used afterwards.
func (a *Arena) PutTensor(t *Tensor) {
	if a == nil || t == nil {
		return
	}
	a.Put(t.Data)
	t.Data = nil
}

// Stats reports how many Get calls were served and how many of those reused
// a pooled buffer (for tests and diagnostics).
func (a *Arena) Stats() (gets, hits int) {
	if a == nil {
		return 0, 0
	}
	return a.gets, a.hits
}
