// Package tensor implements dense float32 tensors and the numeric kernels
// the neural-network stack is built on: GEMM, im2col convolution lowering,
// pooling, and elementwise/reduction helpers.
//
// The package is deliberately minimal — row-major contiguous storage only,
// no views, no broadcasting beyond what the nn package needs — because its
// job is to make the distributed-training algorithms under study (package
// core) exercise real gradient math, not to be a general array library.
package tensor

import (
	"fmt"
	"math"

	"disttrain/internal/rng"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	t := &Tensor{Shape: append([]int(nil), shape...), Data: data}
	if t.Size() != len(data) {
		panic(fmt.Sprintf("tensor: shape %v does not match data length %d", shape, len(data)))
	}
	return t
}

// Rebind points t at data with the given shape without allocating new
// storage, and returns t. Layers reuse one header tensor per role to view
// per-sample slices of a batch without a per-call FromSlice allocation.
// The panic message reports sizes only: formatting shape itself would make
// the variadic slice escape to the heap at every call site.
func (t *Tensor) Rebind(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: rebind shape size %d does not match data length %d", n, len(data)))
	}
	t.Data = data
	t.Shape = append(t.Shape[:0], shape...)
	return t
}

// Size returns the number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// CopyFrom copies src's data into t. Sizes must match.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: CopyFrom size mismatch")
	}
	copy(t.Data, src.Data)
}

// At returns the element at the given indices (bounds unchecked beyond the
// underlying slice; intended for tests and small code paths).
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank-%d tensor", len(idx), len(t.Shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (size %d)", x, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// RandNormal fills t with N(0, std²) variates from r.
func (t *Tensor) RandNormal(r *rng.RNG, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(r.NormFloat64() * std)
	}
}

// RandUniform fills t with uniform variates in [lo, hi).
func (t *Tensor) RandUniform(r *rng.RNG, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + (hi-lo)*r.Float64())
	}
}

// AddScaled computes t += alpha*src elementwise.
func (t *Tensor) AddScaled(alpha float32, src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	AxpyF32(alpha, src.Data, t.Data)
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// L2Norm returns the Euclidean norm of the tensor, accumulated in float64
// for stability.
func (t *Tensor) L2Norm() float64 {
	return L2NormF32(t.Data)
}

// AxpyF32 computes y += alpha*x for raw slices (the flat-parameter hot path
// used by every aggregation algorithm).
func AxpyF32(alpha float32, x, y []float32) {
	if len(x) != len(y) {
		panic("tensor: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// ScaleF32 computes x *= alpha in place.
func ScaleF32(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

// L2NormF32 returns the Euclidean norm of x with float64 accumulation.
func L2NormF32(x []float32) float64 {
	var s float64
	for _, v := range x {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// The GEMM kernels (MatMul, MatMulTransA, MatMulTransB) live in gemm.go:
// cache-blocked, register-tiled, and parallelized over row panels with
// byte-identical results at any GOMAXPROCS.
