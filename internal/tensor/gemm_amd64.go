//go:build amd64

package tensor

// hasAVX2 gates the assembly micro-kernels. The scalar panels remain the
// reference implementation and produce bit-identical results (the kernels
// use separate VMULPS/VADDPS, never FMA).
var hasAVX2 = cpuSupportsAVX2()

// cpuSupportsAVX2 reports AVX2 with OS-enabled YMM state.
func cpuSupportsAVX2() bool

// gemmMicro4x16 computes C[0:4][0:16] += A[0:4][0:kc] · B, where A is
// row-major with stride lda, B is packed with stride 16 floats, and C is
// row-major with stride ldc. kc must be >= 1.
//
//go:noescape
func gemmMicro4x16(a *float32, lda int, b *float32, c *float32, ldc int, kc int)

// gemmMicro1x16 computes C[0:16] += A[0:kc] · B with B packed (stride 16
// floats). kc must be >= 1.
//
//go:noescape
func gemmMicro1x16(a *float32, b *float32, c *float32, kc int)

// gemmSaxpy4 computes C[r][0:nv] += a[r]*b[0:nv] for r in 0..3, C
// row-major with stride ldc. nv must be a positive multiple of 8.
//
//go:noescape
func gemmSaxpy4(a *float32, b *float32, c *float32, ldc int, nv int)
