package tensor

import (
	"testing"

	"disttrain/internal/rng"
)

// baselineMatMul is the pre-blocking serial kernel (ikj loop with the old
// zero-skip), kept verbatim as the reference point for the blocked/parallel
// kernels' speedup claims.
func baselineMatMul(a, b, c *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	ad, bd, cd := a.Data, b.Data, c.Data
	for i := 0; i < m; i++ {
		ci := cd[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
		ai := ad[i*k : i*k+k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := bd[p*n : p*n+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// gemmBenchSizes are GEMM shapes from the paper's cost models: ResNet-50
// 3×3 conv at 14×14 (im2col form), an early VGG-16-style conv at 56×56, and
// the fully-connected classifier of a VGG-style head.
var gemmBenchSizes = []struct {
	name    string
	m, k, n int
}{
	{"ResNet50Conv_256x2304x196", 256, 2304, 196},
	{"VGG16Conv_128x1152x3136", 128, 1152, 3136},
	{"DenseHead_256x4096x100", 256, 4096, 100},
}

func BenchmarkGemm(b *testing.B) {
	for _, s := range gemmBenchSizes {
		r := rng.New(1)
		a := New(s.m, s.k)
		bb := New(s.k, s.n)
		c := New(s.m, s.n)
		a.RandNormal(r, 1)
		bb.RandNormal(r, 1)
		flops := 2 * s.m * s.k * s.n

		b.Run(s.name+"/baseline", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				baselineMatMul(a, bb, c)
			}
			reportGFLOPS(b, flops)
		})
		b.Run(s.name+"/blocked", func(b *testing.B) {
			gemmForceProcs.Store(1)
			defer gemmForceProcs.Store(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(a, bb, c)
			}
			reportGFLOPS(b, flops)
		})
		b.Run(s.name+"/parallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMul(a, bb, c)
			}
			reportGFLOPS(b, flops)
		})
	}
}

func BenchmarkGemmTransA(b *testing.B) {
	s := gemmBenchSizes[0]
	r := rng.New(1)
	a := New(s.k, s.m)
	bb := New(s.k, s.n)
	c := New(s.m, s.n)
	a.RandNormal(r, 1)
	bb.RandNormal(r, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(a, bb, c)
	}
	reportGFLOPS(b, 2*s.m*s.k*s.n)
}

func BenchmarkGemmTransB(b *testing.B) {
	s := gemmBenchSizes[0]
	r := rng.New(1)
	a := New(s.m, s.k)
	bb := New(s.n, s.k)
	c := New(s.m, s.n)
	a.RandNormal(r, 1)
	bb.RandNormal(r, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(a, bb, c)
	}
	reportGFLOPS(b, 2*s.m*s.k*s.n)
}

func reportGFLOPS(b *testing.B, flopsPerOp int) {
	b.ReportMetric(float64(flopsPerOp)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
}

// TestBaselineMatMulAgrees keeps the benchmark baseline honest: it must
// compute the same product as the shipped kernel (on NaN-free input).
func TestBaselineMatMulAgrees(t *testing.T) {
	r := rng.New(5)
	a := randMat(r, 17, 65)
	bb := randMat(r, 65, 13)
	want := New(17, 13)
	MatMul(a, bb, want)
	got := New(17, 13)
	baselineMatMul(a, bb, got)
	if !almostEqual(got.Data, want.Data, 1e-3) {
		t.Fatal("baseline and shipped kernels disagree")
	}
}
