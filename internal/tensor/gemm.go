// GEMM kernels: cache-blocked, register-tiled matrix multiplication with a
// deterministic goroutine fan-out over row panels of C and, on amd64 with
// AVX2, packed-tile vector micro-kernels for the 16-column bands.
//
// All three variants (MatMul, MatMulTransA, MatMulTransB) share the same
// structure: a serial panel kernel computes a contiguous range of C rows,
// and a dispatcher either runs it once over [0, m) or splits the rows across
// min(GOMAXPROCS, rows) goroutines. Because every goroutine writes a
// disjoint row panel and each C element accumulates its k terms in the same
// (ascending-p) order on every path, the result is byte-identical to the
// serial kernel for any parallelism level — simulation outputs do not depend
// on GOMAXPROCS.
//
// The vector kernels (gemm_amd64.s) keep that contract: they multiply and
// add each lane with separate VMULPS/VADDPS instructions (never FMA, which
// the Go compiler also never emits for float32 expressions), accumulate each
// k block in registers starting from zero, and fold into C once per block —
// the exact rounding sequence of the scalar tiles. Column/row remainders
// that don't fill a 16-wide band run the scalar code, which performs the
// same per-element sequence, so AVX2 on/off is bit-identical too
// (test-enforced via gemmForceScalar).
//
// MatMulBias/MatMulBiasReLU fuse the A·Bᵀ layout's bias-add and ReLU
// epilogue into the panel: the epilogue runs once per C row after all k
// blocks have folded, in the same element order as a separate bias+ReLU
// pass, so fused and unfused results are bit-identical.
//
// Numeric note: unlike the earlier kernels, no zero-skip fast path exists —
// an A element of 0 still multiplies its B row, so NaN/Inf in either operand
// propagates into C (0·NaN = NaN). Silently zeroing those terms masked
// divergence in training runs.
package tensor

import (
	"fmt"
	"sync"
	"sync/atomic"

	"runtime"
)

const (
	// gemmBlockK is the k-panel depth: one block of B rows (gemmBlockK×n
	// floats) is swept repeatedly while it is still cache-resident.
	gemmBlockK = 240
	// gemmBlockN bounds the column width of the resident B panel so a
	// gemmBlockK×gemmBlockN slab (~240 KB) stays L2-resident even for wide
	// outputs (e.g. im2col matrices of early conv layers, n in the
	// thousands).
	gemmBlockN = 256
	// gemmParallelMinFLOPs is the 2·m·k·n product below which dispatch runs
	// serial: goroutine spawn (~µs and a closure allocation each) would
	// dominate tiny multiplies, and the training hot path at mini-model scale
	// must stay allocation-free.
	gemmParallelMinFLOPs = 1 << 19
)

// Epilogue selector for the A·Bᵀ panel: nothing, +bias, or relu(·+bias).
const (
	epNone = iota
	epBias
	epBiasReLU
)

// gemmForceProcs overrides the parallel width when positive (tests force
// serial vs parallel execution to prove byte-identical results).
var gemmForceProcs atomic.Int32

// gemmForceScalar disables the AVX2 micro-kernels when set (tests force the
// scalar reference path to prove the vector kernels are bit-identical).
var gemmForceScalar atomic.Bool

// gemmVector reports whether the packed AVX2 micro-kernels should run.
func gemmVector() bool {
	return hasAVX2 && !gemmForceScalar.Load()
}

func gemmProcs() int {
	if p := gemmForceProcs.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// gemmSerial reports whether an m-row multiply of the given FLOP count
// should run on the calling goroutine. The wrappers check this BEFORE
// constructing the dispatch closure: the closure is captured by spawned
// goroutines and therefore heap-allocates, which the serial hot path
// (steady-state training steps) must not pay.
func gemmSerial(m, flops int) bool {
	procs := gemmProcs()
	if procs > m {
		procs = m
	}
	return procs <= 1 || flops < gemmParallelMinFLOPs
}

// gemmDispatch runs panel(i0, i1) over disjoint row ranges covering [0, m),
// in parallel when the problem is large enough. panel must be safe to run
// concurrently on disjoint ranges and must produce row results that do not
// depend on the range boundaries.
func gemmDispatch(m int, flops int, panel func(i0, i1 int)) {
	procs := gemmProcs()
	if procs > m {
		procs = m
	}
	if procs <= 1 || flops < gemmParallelMinFLOPs {
		panel(0, m)
		return
	}
	chunk := (m + procs - 1) / procs
	var wg sync.WaitGroup
	for i0 := 0; i0 < m; i0 += chunk {
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			panel(lo, hi)
		}(i0, i1)
	}
	wg.Wait()
}

// MatMul computes C = A·B where A is (m×k) and B is (k×n), all row-major.
// C must be (m×n) and is overwritten.
func MatMul(a, b, c *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v x %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	if gemmSerial(m, 2*m*k*n) {
		matMulPanel(ad, bd, cd, 0, m, k, n)
		return
	}
	gemmDispatch(m, 2*m*k*n, func(i0, i1 int) {
		matMulPanel(ad, bd, cd, i0, i1, k, n)
	})
}

// matMulPanel computes rows [i0, i1) of C = A·B. The k loop is blocked so a
// gemmBlockK×n slab of B is reused while cache-resident. Within a block,
// full 16-wide column bands are packed into a contiguous tile (so the
// micro-kernel streams B at stride 16 regardless of n) and handed to the
// AVX2 4×16 / 1×16 kernels; the scalar 2×4 register tile covers remainders
// and non-AVX2 hosts.
//
// Determinism: every C element, on every path (vector band or scalar tile,
// any unroll), experiences the identical rounding sequence — a block-local
// accumulator summing its k terms in ascending-p order, folded into C once
// per block. Results therefore do not depend on the panel split, the unroll
// path, or AVX2 availability.
func matMulPanel(ad, bd, cd []float32, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		ci := cd[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
	}
	vec := gemmVector()
	var pack [gemmBlockK * 16]float32
	for p0 := 0; p0 < k; p0 += gemmBlockK {
		pMax := p0 + gemmBlockK
		if pMax > k {
			pMax = k
		}
		kc := pMax - p0
		for j0 := 0; j0 < n; j0 += gemmBlockN {
			jMax := j0 + gemmBlockN
			if jMax > n {
				jMax = n
			}
			j := j0
			if vec {
				for ; j+16 <= jMax; j += 16 {
					for p := 0; p < kc; p++ {
						base := (p0+p)*n + j
						copy(pack[p*16:p*16+16], bd[base:base+16])
					}
					i := i0
					for ; i+4 <= i1; i += 4 {
						gemmMicro4x16(&ad[i*k+p0], k, &pack[0], &cd[i*n+j], n, kc)
					}
					for ; i < i1; i++ {
						gemmMicro1x16(&ad[i*k+p0], &pack[0], &cd[i*n+j], kc)
					}
				}
			}
			if j < jMax {
				matMulScalarTile(ad, bd, cd, i0, i1, k, n, p0, pMax, j, jMax)
			}
		}
	}
}

// matMulScalarTile is the scalar reference inner kernel for C = A·B over
// rows [i0, i1), columns [j0, jMax), k block [p0, pMax): a 2×4 register tile
// of C accumulates entirely in registers — the inner loop issues 8
// multiply-adds against 6 loads and no stores, instead of a load+store per
// multiply-add. (A 4×4 tile needs more accumulators than amd64 has XMM
// registers; the spills cost more than the extra reuse wins.)
func matMulScalarTile(ad, bd, cd []float32, i0, i1, k, n, p0, pMax, j0, jMax int) {
	i := i0
	for ; i+1 < i1; i += 2 {
		a0 := ad[i*k : i*k+k]
		a1 := ad[(i+1)*k : (i+2)*k]
		j := j0
		for ; j+3 < jMax; j += 4 {
			var c00, c01, c02, c03 float32
			var c10, c11, c12, c13 float32
			for p := p0; p < pMax; p++ {
				bp := bd[p*n+j : p*n+j+4]
				b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
				av := a0[p]
				c00 += av * b0
				c01 += av * b1
				c02 += av * b2
				c03 += av * b3
				av = a1[p]
				c10 += av * b0
				c11 += av * b1
				c12 += av * b2
				c13 += av * b3
			}
			c0 := cd[i*n+j : i*n+j+4]
			c0[0] += c00
			c0[1] += c01
			c0[2] += c02
			c0[3] += c03
			c1 := cd[(i+1)*n+j : (i+1)*n+j+4]
			c1[0] += c10
			c1[1] += c11
			c1[2] += c12
			c1[3] += c13
		}
		for ; j < jMax; j++ {
			var s0, s1 float32
			for p := p0; p < pMax; p++ {
				bv := bd[p*n+j]
				s0 += a0[p] * bv
				s1 += a1[p] * bv
			}
			cd[i*n+j] += s0
			cd[(i+1)*n+j] += s1
		}
	}
	for ; i < i1; i++ {
		ai := ad[i*k : i*k+k]
		j := j0
		for ; j+3 < jMax; j += 4 {
			var s0, s1, s2, s3 float32
			for p := p0; p < pMax; p++ {
				bp := bd[p*n+j : p*n+j+4]
				av := ai[p]
				s0 += av * bp[0]
				s1 += av * bp[1]
				s2 += av * bp[2]
				s3 += av * bp[3]
			}
			ci := cd[i*n+j : i*n+j+4]
			ci[0] += s0
			ci[1] += s1
			ci[2] += s2
			ci[3] += s3
		}
		for ; j < jMax; j++ {
			var s float32
			for p := p0; p < pMax; p++ {
				s += ai[p] * bd[p*n+j]
			}
			cd[i*n+j] += s
		}
	}
}

// MatMulTransA computes C = Aᵀ·B where A is (k×m), B is (k×n), C is (m×n).
func MatMulTransA(a, b, c *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTransA shape mismatch %v x %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	if gemmSerial(m, 2*m*k*n) {
		matMulTransAPanel(ad, bd, cd, 0, m, k, m, n)
		return
	}
	gemmDispatch(m, 2*m*k*n, func(i0, i1 int) {
		matMulTransAPanel(ad, bd, cd, i0, i1, k, m, n)
	})
}

// matMulTransAPanel computes C rows [i0, i1) of C = Aᵀ·B. The p loop stays
// outermost so both A and B rows stream contiguously; the panel itself is
// the cache block (its C rows are revisited every p step). Four C rows share
// each loaded B row — via the AVX2 saxpy kernel for the 8-aligned column
// prefix, scalar for the tail. Both paths fold a[p][i]·b[p][j] into C once
// per p step, in ascending-p order, so vector on/off and the quad grouping
// don't change a single bit.
func matMulTransAPanel(ad, bd, cd []float32, i0, i1, k, m, n int) {
	for i := i0; i < i1; i++ {
		ci := cd[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
	}
	nv := 0
	if gemmVector() {
		nv = n &^ 7
	}
	for p := 0; p < k; p++ {
		ap := ad[p*m : p*m+m]
		bp := bd[p*n : p*n+n]
		i := i0
		for ; i+3 < i1; i += 4 {
			if nv > 0 {
				gemmSaxpy4(&ap[i], &bp[0], &cd[i*n], n, nv)
			}
			if nv < n {
				av0, av1, av2, av3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
				c0 := cd[i*n : i*n+n]
				c1 := cd[(i+1)*n : (i+2)*n]
				c2 := cd[(i+2)*n : (i+3)*n]
				c3 := cd[(i+3)*n : (i+4)*n]
				for j := nv; j < n; j++ {
					bv := bp[j]
					c0[j] += av0 * bv
					c1[j] += av1 * bv
					c2[j] += av2 * bv
					c3[j] += av3 * bv
				}
			}
		}
		for ; i < i1; i++ {
			av := ap[i]
			ci := cd[i*n : i*n+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ where A is (m×k), B is (n×k), C is (m×n).
func MatMulTransB(a, b, c *Tensor) {
	matMulTransBEp(a, b, c, nil, epNone)
}

// MatMulBias computes C = A·Bᵀ + bias where A is (m×k), B is (n×k), C is
// (m×n) and bias (length n) is broadcast across rows — the layout of a
// Dense/Conv2D forward pass. Bit-identical to MatMulTransB followed by a
// separate bias add.
func MatMulBias(a, b, c *Tensor, bias []float32) {
	matMulTransBEp(a, b, c, bias, epBias)
}

// MatMulBiasReLU computes C = relu(A·Bᵀ + bias): the fully fused
// Dense/Conv2D forward epilogue. Elements that are not > 0 after the bias
// add (including NaN) become 0, exactly like the standalone ReLU layer, so
// the fused result is bit-identical to MatMulTransB + bias + ReLU.
func MatMulBiasReLU(a, b, c *Tensor, bias []float32) {
	matMulTransBEp(a, b, c, bias, epBiasReLU)
}

func matMulTransBEp(a, b, c *Tensor, bias []float32, ep int) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTransB shape mismatch %v x %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	if ep != epNone && len(bias) != n {
		panic(fmt.Sprintf("tensor: matmul bias length %d != %d columns", len(bias), n))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	if gemmSerial(m, 2*m*k*n) {
		matMulTransBPanel(ad, bd, cd, 0, m, k, n, bias, ep)
		return
	}
	gemmDispatch(m, 2*m*k*n, func(i0, i1 int) {
		matMulTransBPanel(ad, bd, cd, i0, i1, k, n, bias, ep)
	})
}

// matMulTransBPanel computes C rows [i0, i1) of C = A·Bᵀ, then applies the
// requested epilogue. The k loop is blocked like matMulPanel's; within a
// block, 16 B rows at a time are packed transposed (pack[p][t] = B[j+t][p])
// so the same 4×16/1×16 micro-kernels used by MatMul consume them, and the
// scalar quad-dot tile covers the remainder columns and non-AVX2 hosts.
//
// Determinism: each C element accumulates its k terms ascending-p with a
// block-local accumulator folded once per block (vector and scalar paths
// identical), and the epilogue visits each row's elements in ascending-j
// order after all blocks — independent of panel split, band grouping, and
// AVX2 availability.
func matMulTransBPanel(ad, bd, cd []float32, i0, i1, k, n int, bias []float32, ep int) {
	for i := i0; i < i1; i++ {
		ci := cd[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
	}
	vec := gemmVector()
	var pack [gemmBlockK * 16]float32
	for p0 := 0; p0 < k; p0 += gemmBlockK {
		pMax := p0 + gemmBlockK
		if pMax > k {
			pMax = k
		}
		kc := pMax - p0
		j := 0
		if vec {
			for ; j+16 <= n; j += 16 {
				for t := 0; t < 16; t++ {
					row := bd[(j+t)*k+p0 : (j+t)*k+pMax]
					for p, v := range row {
						pack[p*16+t] = v
					}
				}
				i := i0
				for ; i+4 <= i1; i += 4 {
					gemmMicro4x16(&ad[i*k+p0], k, &pack[0], &cd[i*n+j], n, kc)
				}
				for ; i < i1; i++ {
					gemmMicro1x16(&ad[i*k+p0], &pack[0], &cd[i*n+j], kc)
				}
			}
		}
		if j < n {
			matMulTransBScalarTile(ad, bd, cd, i0, i1, k, n, p0, pMax, j)
		}
	}
	if ep == epNone {
		return
	}
	relu := ep == epBiasReLU
	for i := i0; i < i1; i++ {
		ci := cd[i*n : i*n+n]
		for j, bv := range bias {
			v := ci[j] + bv
			if relu && !(v > 0) {
				v = 0
			}
			ci[j] = v
		}
	}
}

// matMulTransBScalarTile is the scalar reference kernel for C += A·Bᵀ over
// rows [i0, i1), columns [j0, n), k block [p0, pMax): dot products of A and
// B row segments, four B rows at a time so each A segment is streamed once
// per quad instead of once per output.
func matMulTransBScalarTile(ad, bd, cd []float32, i0, i1, k, n, p0, pMax, j0 int) {
	for i := i0; i < i1; i++ {
		ai := ad[i*k+p0 : i*k+pMax]
		ci := cd[i*n : i*n+n]
		j := j0
		for ; j+3 < n; j += 4 {
			b0 := bd[j*k+p0 : j*k+pMax]
			b1 := bd[(j+1)*k+p0 : (j+1)*k+pMax]
			b2 := bd[(j+2)*k+p0 : (j+2)*k+pMax]
			b3 := bd[(j+3)*k+p0 : (j+3)*k+pMax]
			var s0, s1, s2, s3 float32
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			ci[j] += s0
			ci[j+1] += s1
			ci[j+2] += s2
			ci[j+3] += s3
		}
		for ; j < n; j++ {
			bj := bd[j*k+p0 : j*k+pMax]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] += s
		}
	}
}
