// GEMM kernels: cache-blocked, register-tiled matrix multiplication with a
// deterministic goroutine fan-out over row panels of C.
//
// All three variants (MatMul, MatMulTransA, MatMulTransB) share the same
// structure: a serial panel kernel computes a contiguous range of C rows,
// and a dispatcher either runs it once over [0, m) or splits the rows across
// min(GOMAXPROCS, rows) goroutines. Because every goroutine writes a
// disjoint row panel and each C element accumulates its k terms in the same
// (ascending-p) order on every path, the result is byte-identical to the
// serial kernel for any parallelism level — simulation outputs do not depend
// on GOMAXPROCS.
//
// Numeric note: unlike the earlier kernels, no zero-skip fast path exists —
// an A element of 0 still multiplies its B row, so NaN/Inf in either operand
// propagates into C (0·NaN = NaN). Silently zeroing those terms masked
// divergence in training runs.
package tensor

import (
	"fmt"
	"sync"
	"sync/atomic"

	"runtime"
)

const (
	// gemmBlockK is the k-panel depth: one block of B rows (gemmBlockK×n
	// floats) is swept repeatedly while it is still cache-resident.
	gemmBlockK = 240
	// gemmBlockN bounds the column width of the resident B panel so a
	// gemmBlockK×gemmBlockN slab (~240 KB) stays L2-resident even for wide
	// outputs (e.g. im2col matrices of early conv layers, n in the
	// thousands).
	gemmBlockN = 256
	// gemmParallelMinFLOPs is the 2·m·k·n product below which dispatch runs
	// serial: goroutine spawn (~µs and a closure allocation each) would
	// dominate tiny multiplies, and the training hot path at mini-model scale
	// must stay allocation-free.
	gemmParallelMinFLOPs = 1 << 19
)

// gemmForceProcs overrides the parallel width when positive (tests force
// serial vs parallel execution to prove byte-identical results).
var gemmForceProcs atomic.Int32

func gemmProcs() int {
	if p := gemmForceProcs.Load(); p > 0 {
		return int(p)
	}
	return runtime.GOMAXPROCS(0)
}

// gemmSerial reports whether an m-row multiply of the given FLOP count
// should run on the calling goroutine. The wrappers check this BEFORE
// constructing the dispatch closure: the closure is captured by spawned
// goroutines and therefore heap-allocates, which the serial hot path
// (steady-state training steps) must not pay.
func gemmSerial(m, flops int) bool {
	procs := gemmProcs()
	if procs > m {
		procs = m
	}
	return procs <= 1 || flops < gemmParallelMinFLOPs
}

// gemmDispatch runs panel(i0, i1) over disjoint row ranges covering [0, m),
// in parallel when the problem is large enough. panel must be safe to run
// concurrently on disjoint ranges and must produce row results that do not
// depend on the range boundaries.
func gemmDispatch(m int, flops int, panel func(i0, i1 int)) {
	procs := gemmProcs()
	if procs > m {
		procs = m
	}
	if procs <= 1 || flops < gemmParallelMinFLOPs {
		panel(0, m)
		return
	}
	chunk := (m + procs - 1) / procs
	var wg sync.WaitGroup
	for i0 := 0; i0 < m; i0 += chunk {
		i1 := i0 + chunk
		if i1 > m {
			i1 = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			panel(lo, hi)
		}(i0, i1)
	}
	wg.Wait()
}

// MatMul computes C = A·B where A is (m×k) and B is (k×n), all row-major.
// C must be (m×n) and is overwritten.
func MatMul(a, b, c *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmul shape mismatch %v x %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	if gemmSerial(m, 2*m*k*n) {
		matMulPanel(ad, bd, cd, 0, m, k, n)
		return
	}
	gemmDispatch(m, 2*m*k*n, func(i0, i1 int) {
		matMulPanel(ad, bd, cd, i0, i1, k, n)
	})
}

// matMulPanel computes rows [i0, i1) of C = A·B. The k loop is blocked so a
// gemmBlockK×n slab of B is reused while cache-resident, and within a block
// a 2×4 register tile of C accumulates entirely in registers — the inner
// loop issues 8 multiply-adds against 6 loads and no stores, instead of a
// load+store per multiply-add. (A 4×4 tile needs more accumulators than
// amd64 has XMM registers; the spills cost more than the extra reuse wins.)
//
// Determinism: every C element, on every path (2-row pair or row remainder,
// 4-column tile or column remainder), experiences the identical rounding
// sequence — a block-local accumulator summing its k terms in ascending-p
// order, folded into C once per block. Results therefore do not depend on
// the panel split or on which unroll path a row or column lands in.
func matMulPanel(ad, bd, cd []float32, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		ci := cd[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
	}
	for p0 := 0; p0 < k; p0 += gemmBlockK {
		pMax := p0 + gemmBlockK
		if pMax > k {
			pMax = k
		}
		for j0 := 0; j0 < n; j0 += gemmBlockN {
			jMax := j0 + gemmBlockN
			if jMax > n {
				jMax = n
			}
			i := i0
			for ; i+1 < i1; i += 2 {
				a0 := ad[i*k : i*k+k]
				a1 := ad[(i+1)*k : (i+2)*k]
				j := j0
				for ; j+3 < jMax; j += 4 {
					var c00, c01, c02, c03 float32
					var c10, c11, c12, c13 float32
					for p := p0; p < pMax; p++ {
						bp := bd[p*n+j : p*n+j+4]
						b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
						av := a0[p]
						c00 += av * b0
						c01 += av * b1
						c02 += av * b2
						c03 += av * b3
						av = a1[p]
						c10 += av * b0
						c11 += av * b1
						c12 += av * b2
						c13 += av * b3
					}
					c0 := cd[i*n+j : i*n+j+4]
					c0[0] += c00
					c0[1] += c01
					c0[2] += c02
					c0[3] += c03
					c1 := cd[(i+1)*n+j : (i+1)*n+j+4]
					c1[0] += c10
					c1[1] += c11
					c1[2] += c12
					c1[3] += c13
				}
				for ; j < jMax; j++ {
					var s0, s1 float32
					for p := p0; p < pMax; p++ {
						bv := bd[p*n+j]
						s0 += a0[p] * bv
						s1 += a1[p] * bv
					}
					cd[i*n+j] += s0
					cd[(i+1)*n+j] += s1
				}
			}
			for ; i < i1; i++ {
				ai := ad[i*k : i*k+k]
				j := j0
				for ; j+3 < jMax; j += 4 {
					var s0, s1, s2, s3 float32
					for p := p0; p < pMax; p++ {
						bp := bd[p*n+j : p*n+j+4]
						av := ai[p]
						s0 += av * bp[0]
						s1 += av * bp[1]
						s2 += av * bp[2]
						s3 += av * bp[3]
					}
					ci := cd[i*n+j : i*n+j+4]
					ci[0] += s0
					ci[1] += s1
					ci[2] += s2
					ci[3] += s3
				}
				for ; j < jMax; j++ {
					var s float32
					for p := p0; p < pMax; p++ {
						s += ai[p] * bd[p*n+j]
					}
					cd[i*n+j] += s
				}
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B where A is (k×m), B is (k×n), C is (m×n).
func MatMulTransA(a, b, c *Tensor) {
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTransA shape mismatch %v x %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	if gemmSerial(m, 2*m*k*n) {
		matMulTransAPanel(ad, bd, cd, 0, m, k, m, n)
		return
	}
	gemmDispatch(m, 2*m*k*n, func(i0, i1 int) {
		matMulTransAPanel(ad, bd, cd, i0, i1, k, m, n)
	})
}

// matMulTransAPanel computes C rows [i0, i1) of C = Aᵀ·B. The p loop stays
// outermost so both A and B rows stream contiguously; the panel itself is
// the cache block (its C rows are revisited every p step). Four C rows share
// each loaded B row.
func matMulTransAPanel(ad, bd, cd []float32, i0, i1, k, m, n int) {
	for i := i0; i < i1; i++ {
		ci := cd[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
	}
	for p := 0; p < k; p++ {
		ap := ad[p*m : p*m+m]
		bp := bd[p*n : p*n+n]
		i := i0
		for ; i+3 < i1; i += 4 {
			av0, av1, av2, av3 := ap[i], ap[i+1], ap[i+2], ap[i+3]
			c0 := cd[i*n : i*n+n]
			c1 := cd[(i+1)*n : (i+2)*n]
			c2 := cd[(i+2)*n : (i+3)*n]
			c3 := cd[(i+3)*n : (i+4)*n]
			for j, bv := range bp {
				c0[j] += av0 * bv
				c1[j] += av1 * bv
				c2[j] += av2 * bv
				c3[j] += av3 * bv
			}
		}
		for ; i < i1; i++ {
			av := ap[i]
			ci := cd[i*n : i*n+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ where A is (m×k), B is (n×k), C is (m×n).
func MatMulTransB(a, b, c *Tensor) {
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 || c.Shape[0] != m || c.Shape[1] != n {
		panic(fmt.Sprintf("tensor: matmulTransB shape mismatch %v x %v -> %v", a.Shape, b.Shape, c.Shape))
	}
	ad, bd, cd := a.Data, b.Data, c.Data
	if gemmSerial(m, 2*m*k*n) {
		matMulTransBPanel(ad, bd, cd, 0, m, k, n)
		return
	}
	gemmDispatch(m, 2*m*k*n, func(i0, i1 int) {
		matMulTransBPanel(ad, bd, cd, i0, i1, k, n)
	})
}

// matMulTransBPanel computes C rows [i0, i1) of C = A·Bᵀ as dot products of
// A and B rows, four B rows at a time so each A row is streamed once per
// quad instead of once per output. Each dot accumulates in ascending-p order
// with an independent accumulator, so results do not depend on the quad
// grouping or panel split.
func matMulTransBPanel(ad, bd, cd []float32, i0, i1, k, n int) {
	for i := i0; i < i1; i++ {
		ai := ad[i*k : i*k+k]
		ci := cd[i*n : i*n+n]
		j := 0
		for ; j+3 < n; j += 4 {
			b0 := bd[j*k : j*k+k]
			b1 := bd[(j+1)*k : (j+2)*k]
			b2 := bd[(j+2)*k : (j+3)*k]
			b3 := bd[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for p, av := range ai {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			bj := bd[j*k : j*k+k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] = s
		}
	}
}
