package tensor

import (
	"math"
	"testing"

	"disttrain/internal/rng"
)

// randMat fills an m×n tensor with standard normals.
func randMat(r *rng.RNG, m, n int) *Tensor {
	t := New(m, n)
	t.RandNormal(r, 1)
	return t
}

// TestGemmVariantsMatchNaiveRandomShapes cross-checks all three kernels
// against the float64 triple loop over shapes chosen to cross every
// structural boundary: the 4-row/4-column quad unrolls (remainders 0-3), the
// gemmBlockK k-panel edge, and single-row/column degenerate cases.
func TestGemmVariantsMatchNaiveRandomShapes(t *testing.T) {
	r := rng.New(99)
	shapes := [][3]int{
		{1, 1, 1},
		{1, 7, 1},
		{4, 4, 4},
		{5, 3, 6},                 // row remainder 1
		{7, 2, 9},                 // row remainder 3, col remainder 1
		{8, gemmBlockK, 5},        // k exactly one block
		{6, gemmBlockK + 1, 7},    // k crosses the block edge
		{3, 2*gemmBlockK + 17, 4}, // k spans three blocks
		{16, 33, 16},
	}
	for trial := 0; trial < 30; trial++ {
		shapes = append(shapes, [3]int{1 + r.Intn(20), 1 + r.Intn(300), 1 + r.Intn(20)})
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		want := naiveMatMul(a, b)
		tol := 1e-3 * math.Sqrt(float64(k))

		c1 := New(m, n)
		MatMul(a, b, c1)
		if !almostEqual(c1.Data, want.Data, tol) {
			t.Fatalf("MatMul %v disagrees with naive", s)
		}
		c2 := New(m, n)
		MatMulTransA(transpose(a), b, c2)
		if !almostEqual(c2.Data, want.Data, tol) {
			t.Fatalf("MatMulTransA %v disagrees with naive", s)
		}
		c3 := New(m, n)
		MatMulTransB(a, transpose(b), c3)
		if !almostEqual(c3.Data, want.Data, tol) {
			t.Fatalf("MatMulTransB %v disagrees with naive", s)
		}
	}
}

// TestGemmParallelBitIdentical proves the tentpole's determinism claim: the
// parallel fan-out must produce byte-identical results to the serial kernel,
// for every variant, at shapes large enough to actually go parallel.
func TestGemmParallelBitIdentical(t *testing.T) {
	r := rng.New(7)
	// 96×512×80 ≈ 7.9 MFLOPs, far above gemmParallelMinFLOPs; 96 rows split
	// unevenly across 8 goroutines, exercising ragged panel boundaries too.
	shapes := [][3]int{{96, 512, 80}, {33, 700, 17}, {5, 60000, 3}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		bT := transpose(b)
		aT := transpose(a)

		check := func(name string, compute func(c *Tensor)) {
			serial := New(m, n)
			gemmForceProcs.Store(1)
			compute(serial)
			par := New(m, n)
			gemmForceProcs.Store(8)
			compute(par)
			gemmForceProcs.Store(0)
			for i := range serial.Data {
				if math.Float32bits(serial.Data[i]) != math.Float32bits(par.Data[i]) {
					t.Fatalf("%s %v: element %d differs serial=%x parallel=%x",
						name, s, i, math.Float32bits(serial.Data[i]), math.Float32bits(par.Data[i]))
				}
			}
		}
		check("MatMul", func(c *Tensor) { MatMul(a, b, c) })
		check("MatMulTransA", func(c *Tensor) { MatMulTransA(aT, b, c) })
		check("MatMulTransB", func(c *Tensor) { MatMulTransB(a, bT, c) })
	}
}

// TestGemmVectorBitIdenticalToScalar proves the AVX2 micro-kernels don't
// change a single output bit: the same multiply with the vector path forced
// off must match bit-for-bit, for all variants and the fused epilogues, over
// shapes that hit every band/remainder/block combination. On hosts without
// AVX2 both runs take the scalar path and the test trivially passes.
func TestGemmVectorBitIdenticalToScalar(t *testing.T) {
	if !hasAVX2 {
		t.Skip("no AVX2: vector path never taken")
	}
	r := rng.New(41)
	shapes := [][3]int{
		{1, 1, 1},
		{4, 8, 16},                 // exactly one band, one row quad
		{5, 60, 17},                // row remainder 1, col remainder 1
		{7, 9, 33},                 // two bands + 1 col, row remainder 3
		{16, gemmBlockK + 5, 48},   // k crosses the block edge
		{3, 2*gemmBlockK + 17, 31}, // k spans three blocks, col remainder 15
		{9, 64, gemmBlockN + 24},   // n crosses the column-block edge
		{64, 512, 64},
	}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, [3]int{1 + r.Intn(24), 1 + r.Intn(400), 1 + r.Intn(80)})
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		aT := transpose(a)
		bT := transpose(b)
		bias := make([]float32, n)
		for j := range bias {
			bias[j] = float32(r.NormFloat64())
		}

		check := func(name string, compute func(c *Tensor)) {
			vec := New(m, n)
			compute(vec)
			scalar := New(m, n)
			gemmForceScalar.Store(true)
			compute(scalar)
			gemmForceScalar.Store(false)
			for i := range vec.Data {
				if math.Float32bits(vec.Data[i]) != math.Float32bits(scalar.Data[i]) {
					t.Fatalf("%s %v: element %d differs vector=%x scalar=%x",
						name, s, i, math.Float32bits(vec.Data[i]), math.Float32bits(scalar.Data[i]))
				}
			}
		}
		check("MatMul", func(c *Tensor) { MatMul(a, b, c) })
		check("MatMulTransA", func(c *Tensor) { MatMulTransA(aT, b, c) })
		check("MatMulTransB", func(c *Tensor) { MatMulTransB(a, bT, c) })
		check("MatMulBias", func(c *Tensor) { MatMulBias(a, bT, c, bias) })
		check("MatMulBiasReLU", func(c *Tensor) { MatMulBiasReLU(a, bT, c, bias) })
	}
}

// TestGemmFusedEpilogueBitIdentical proves the tentpole's fusion contract:
// MatMulBias / MatMulBiasReLU must equal MatMulTransB followed by separate
// bias-add and ReLU passes, bit for bit, across odd shapes and at every pool
// size. NaN outputs must become 0 under ReLU exactly like the standalone
// layer (`v > 0` test).
func TestGemmFusedEpilogueBitIdentical(t *testing.T) {
	r := rng.New(43)
	shapes := [][3]int{
		{1, 1, 1}, {3, 5, 7}, {5, 60, 17}, {13, 31, 29},
		{7, gemmBlockK + 3, 33}, {96, 512, 80}, // last one large enough to go parallel
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(r, m, k)
		bT := randMat(r, n, k)
		bias := make([]float32, n)
		for j := range bias {
			bias[j] = float32(r.NormFloat64())
		}
		// Poison one output via 0·NaN so the epilogue's NaN handling is hit.
		if k > 1 && m > 1 && n > 1 {
			a.Data[k] = 0
			bT.Data[n*k-k] = float32(math.NaN())
		}
		for _, procs := range []int32{1, 8} {
			gemmForceProcs.Store(procs)
			want := New(m, n)
			MatMulTransB(a, bT, want)
			for i := 0; i < m; i++ {
				row := want.Data[i*n : i*n+n]
				for j := range row {
					row[j] += bias[j]
				}
			}
			fusedB := New(m, n)
			MatMulBias(a, bT, fusedB, bias)
			for i := range want.Data {
				if math.Float32bits(want.Data[i]) != math.Float32bits(fusedB.Data[i]) {
					t.Fatalf("MatMulBias %v procs=%d: element %d differs", s, procs, i)
				}
			}
			// Standalone ReLU semantics: v > 0 keeps v, else (incl. NaN) 0.
			for i := range want.Data {
				if !(want.Data[i] > 0) {
					want.Data[i] = 0
				}
			}
			fusedR := New(m, n)
			MatMulBiasReLU(a, bT, fusedR, bias)
			for i := range want.Data {
				if math.Float32bits(want.Data[i]) != math.Float32bits(fusedR.Data[i]) {
					t.Fatalf("MatMulBiasReLU %v procs=%d: element %d differs", s, procs, i)
				}
			}
		}
		gemmForceProcs.Store(0)
	}
}

// TestGemmFusedBiasLengthValidated pins the bias length contract.
func TestGemmFusedBiasLengthValidated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short bias")
		}
	}()
	a, b, c := New(2, 3), New(4, 3), New(2, 4)
	MatMulBiasReLU(a, b, c, make([]float32, 3))
}

// TestGemmNaNPropagates is the regression test for the zero-skip bug: the old
// kernels skipped the inner loop when an A element was zero, so a NaN or Inf
// in B could be silently dropped (0·NaN must be NaN, not 0). Every variant
// must propagate non-finite values even when the matching operand is zero.
func TestGemmNaNPropagates(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))

	// A has an explicit zero in the position that multiplies the NaN in B.
	a := FromSlice([]float32{0, 1, 0, 2}, 2, 2)
	b := FromSlice([]float32{nan, 3, 4, 5}, 2, 2)
	c := New(2, 2)
	MatMul(a, b, c)
	// c[0,0] = 0·NaN + 1·4 → NaN.
	if !math.IsNaN(float64(c.Data[0])) {
		t.Fatalf("MatMul swallowed NaN: C = %v", c.Data)
	}

	MatMulTransA(transpose(a), b, c)
	if !math.IsNaN(float64(c.Data[0])) {
		t.Fatalf("MatMulTransA swallowed NaN: C = %v", c.Data)
	}

	MatMulTransB(a, transpose(b), c)
	if !math.IsNaN(float64(c.Data[0])) {
		t.Fatalf("MatMulTransB swallowed NaN: C = %v", c.Data)
	}

	// Inf must propagate the same way (0·Inf = NaN).
	b2 := FromSlice([]float32{inf, 3, 4, 5}, 2, 2)
	MatMul(a, b2, c)
	if !math.IsNaN(float64(c.Data[0])) {
		t.Fatalf("MatMul swallowed Inf: C = %v", c.Data)
	}

	// A zero-row times a NaN-free B stays finite (sanity: zeros still work).
	b3 := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	MatMul(a, b3, c)
	if c.Data[0] != 3 || c.Data[1] != 4 {
		t.Fatalf("zero handling broken: C = %v", c.Data)
	}
}

// TestGemmNaNPropagatesLarge pushes a NaN through a parallel-sized multiply
// so the blocked/unrolled paths are the ones under test.
func TestGemmNaNPropagatesLarge(t *testing.T) {
	r := rng.New(3)
	m, k, n := 64, 512, 64
	a := randMat(r, m, k)
	b := randMat(r, k, n)
	for i := 0; i < m; i++ {
		a.Data[i*k+17] = 0 // zero column of A multiplying the poisoned B row
	}
	for j := 0; j < n; j++ {
		b.Data[17*n+j] = float32(math.NaN())
	}
	c := New(m, n)
	MatMul(a, b, c)
	for i, v := range c.Data {
		if !math.IsNaN(float64(v)) {
			t.Fatalf("element %d finite (%v); NaN row was dropped", i, v)
		}
	}
}

func TestGemmDispatchCoversAllRows(t *testing.T) {
	// Every row in [0, m) must be visited exactly once for awkward m/procs
	// combinations (m < procs, m % procs != 0, m == 1).
	for _, m := range []int{1, 2, 7, 8, 9, 100} {
		for _, procs := range []int{1, 3, 8, 16} {
			gemmForceProcs.Store(int32(procs))
			counts := make([]int32, m)
			gemmDispatch(m, 1<<30, func(i0, i1 int) {
				for i := i0; i < i1; i++ {
					counts[i]++ // disjoint ranges: no race by construction
				}
			})
			gemmForceProcs.Store(0)
			for i, cnt := range counts {
				if cnt != 1 {
					t.Fatalf("m=%d procs=%d: row %d visited %d times", m, procs, i, cnt)
				}
			}
		}
	}
}

func TestArenaReuse(t *testing.T) {
	a := NewArena()
	b1 := a.Get(64)
	b1[0] = 42
	a.Put(b1)
	b2 := a.Get(64)
	if &b1[0] != &b2[0] {
		t.Fatal("arena did not recycle the freed buffer")
	}
	if gets, hits := a.Stats(); gets != 2 || hits != 1 {
		t.Fatalf("stats = (%d, %d), want (2, 1)", gets, hits)
	}
	// Different size must not hit the 64 bucket.
	b3 := a.Get(32)
	if len(b3) != 32 {
		t.Fatalf("got %d floats, want 32", len(b3))
	}
}

func TestArenaGetZeroed(t *testing.T) {
	a := NewArena()
	buf := a.Get(8)
	for i := range buf {
		buf[i] = 1
	}
	a.Put(buf)
	z := a.GetZeroed(8)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed[%d] = %v", i, v)
		}
	}
}

func TestArenaTensorRoundTrip(t *testing.T) {
	a := NewArena()
	x := a.GetTensor(4, 5)
	if x.Size() != 20 || x.Shape[0] != 4 || x.Shape[1] != 5 {
		t.Fatalf("shape %v", x.Shape)
	}
	data := x.Data
	a.PutTensor(x)
	if x.Data != nil {
		t.Fatal("PutTensor must nil the released tensor's data")
	}
	y := a.GetTensor(2, 10) // same size, different shape: must reuse storage
	if &y.Data[0] != &data[0] {
		t.Fatal("tensor storage not recycled across shapes of equal size")
	}
}

func TestArenaNilSafe(t *testing.T) {
	var a *Arena
	buf := a.Get(16)
	if len(buf) != 16 {
		t.Fatal("nil arena Get failed")
	}
	a.Put(buf) // must not panic
	x := a.GetTensor(3, 3)
	if x.Size() != 9 {
		t.Fatal("nil arena GetTensor failed")
	}
	a.PutTensor(x) // must not panic
	if gets, hits := a.Stats(); gets != 0 || hits != 0 {
		t.Fatal("nil arena stats must be zero")
	}
}

func TestRebind(t *testing.T) {
	var hdr Tensor
	data := []float32{1, 2, 3, 4, 5, 6}
	v := hdr.Rebind(data, 2, 3)
	if v != &hdr || v.At(1, 2) != 6 {
		t.Fatalf("rebind view wrong: %v %v", v.Shape, v.Data)
	}
	// Rebinding to a shorter view reuses the header in place.
	v2 := hdr.Rebind(data[:4], 2, 2)
	if v2.Size() != 4 {
		t.Fatal("rebind resize failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape/data mismatch")
		}
	}()
	hdr.Rebind(data, 7, 7)
}
