package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"disttrain/internal/rng"
)

func TestNewShapeAndSize(t *testing.T) {
	tt := New(2, 3, 4)
	if tt.Size() != 24 || len(tt.Data) != 24 {
		t.Fatalf("size = %d, len = %d, want 24", tt.Size(), len(tt.Data))
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero dim")
		}
	}()
	New(2, 0)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3)
	tt.Set(7.5, 1, 2)
	if got := tt.At(1, 2); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := tt.Data[1*3+2]; got != 7.5 {
		t.Fatalf("row-major offset wrong: %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tt.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	a := New(4)
	a.Fill(1)
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAddScaledAndScale(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	a.AddScaled(0.5, b)
	if a.Data[0] != 6 || a.Data[1] != 12 {
		t.Fatalf("AddScaled = %v", a.Data)
	}
	a.Scale(2)
	if a.Data[0] != 12 || a.Data[1] != 24 {
		t.Fatalf("Scale = %v", a.Data)
	}
}

func TestL2Norm(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if got := a.L2Norm(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("L2Norm = %v, want 5", got)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := New(2, 2)
	MatMul(a, b, c)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

// naiveMatMul is the reference implementation used to cross-check the three
// GEMM variants.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(a.Data[i*k+p]) * float64(b.Data[p*n+j])
			}
			c.Data[i*n+j] = float32(s)
		}
	}
	return c
}

func transpose(a *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return t
}

func almostEqual(a, b []float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(float64(a[i])-float64(b[i])) > tol {
			return false
		}
	}
	return true
}

func TestMatMulVariantsAgree(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := New(m, k)
		b := New(k, n)
		a.RandNormal(r, 1)
		b.RandNormal(r, 1)
		want := naiveMatMul(a, b)

		c1 := New(m, n)
		MatMul(a, b, c1)
		if !almostEqual(c1.Data, want.Data, 1e-4) {
			t.Fatalf("trial %d: MatMul disagrees with naive", trial)
		}

		c2 := New(m, n)
		MatMulTransA(transpose(a), b, c2)
		if !almostEqual(c2.Data, want.Data, 1e-4) {
			t.Fatalf("trial %d: MatMulTransA disagrees with naive", trial)
		}

		c3 := New(m, n)
		MatMulTransB(a, transpose(b), c3)
		if !almostEqual(c3.Data, want.Data, 1e-4) {
			t.Fatalf("trial %d: MatMulTransB disagrees with naive", trial)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2), New(2, 2))
}

func TestAxpyProperty(t *testing.T) {
	// y' = y + a*x, then y'' = y' - a*x must restore y (within fp tolerance).
	f := func(seed uint64, alpha float32) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(64)
		x := make([]float32, n)
		y := make([]float32, n)
		orig := make([]float32, n)
		for i := range x {
			x[i] = float32(r.NormFloat64())
			y[i] = float32(r.NormFloat64())
			orig[i] = y[i]
		}
		if alpha > 100 || alpha < -100 {
			alpha = 1
		}
		AxpyF32(alpha, x, y)
		AxpyF32(-alpha, x, y)
		return almostEqual(y, orig, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2colIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity layout.
	in := New(2, 3, 3)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	out := New(2, 9)
	Im2col(in, 1, 1, 1, 0, out)
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("identity im2col mismatch at %d", i)
		}
	}
}

func TestIm2colKnownValues(t *testing.T) {
	// 1 channel, 3x3 input, 2x2 kernel, stride 1, pad 0 -> 4 columns.
	in := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	out := New(4, 4)
	Im2col(in, 2, 2, 1, 0, out)
	// Rows are kernel positions (ky,kx); columns are output positions.
	want := []float32{
		1, 2, 4, 5, // k(0,0)
		2, 3, 5, 6, // k(0,1)
		4, 5, 7, 8, // k(1,0)
		5, 6, 8, 9, // k(1,1)
	}
	if !almostEqual(out.Data, want, 0) {
		t.Fatalf("im2col = %v, want %v", out.Data, want)
	}
}

func TestIm2colPadding(t *testing.T) {
	in := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	// 3x3 kernel, pad 1, stride 1 -> output 2x2, rows 9, cols 4.
	out := New(9, 4)
	Im2col(in, 3, 3, 1, 1, out)
	// Center kernel position (1,1) should reproduce the input exactly.
	center := out.Data[4*4 : 4*4+4]
	if !almostEqual(center, []float32{1, 2, 3, 4}, 0) {
		t.Fatalf("center row = %v", center)
	}
	// Top-left kernel position (0,0) sees padding for all but the last output.
	tl := out.Data[0:4]
	if !almostEqual(tl, []float32{0, 0, 0, 1}, 0) {
		t.Fatalf("top-left row = %v", tl)
	}
}

func TestCol2imRoundTripAccumulates(t *testing.T) {
	// col2im(im2col(x)) multiplies each element by the number of receptive
	// fields covering it. With a 1x1 kernel that count is exactly 1.
	r := rng.New(7)
	in := New(3, 4, 4)
	in.RandNormal(r, 1)
	cols := New(3, 16)
	Im2col(in, 1, 1, 1, 0, cols)
	back := New(3, 4, 4)
	Col2im(cols, 3, 4, 4, 1, 1, 1, 0, back)
	if !almostEqual(back.Data, in.Data, 1e-6) {
		t.Fatal("1x1 col2im round trip failed")
	}
}

func TestCol2imOverlapCounts(t *testing.T) {
	// 2x2 kernel stride 1 on 3x3: the center element is covered by 4 fields.
	in := New(1, 3, 3)
	in.Fill(1)
	cols := New(4, 4)
	Im2col(in, 2, 2, 1, 0, cols)
	back := New(1, 3, 3)
	Col2im(cols, 1, 3, 3, 2, 2, 1, 0, back)
	want := []float32{1, 2, 1, 2, 4, 2, 1, 2, 1}
	if !almostEqual(back.Data, want, 0) {
		t.Fatalf("col2im overlap = %v, want %v", back.Data, want)
	}
}

func TestMaxPool2x2(t *testing.T) {
	in := FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		-1, -2, 0, 0,
		-3, -4, 0, 9,
	}, 1, 4, 4)
	out := New(1, 2, 2)
	idx := make([]int32, 4)
	MaxPool2x2(in, out, idx)
	want := []float32{4, 8, -1, 9}
	if !almostEqual(out.Data, want, 0) {
		t.Fatalf("maxpool = %v, want %v", out.Data, want)
	}
	// Backward: each output grad lands on its argmax.
	og := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	ig := New(1, 4, 4)
	MaxPool2x2Backward(og, idx, ig)
	if ig.At(0, 1, 1) != 1 || ig.At(0, 1, 3) != 2 || ig.At(0, 2, 0) != 3 || ig.At(0, 3, 3) != 4 {
		t.Fatalf("maxpool backward = %v", ig.Data)
	}
	var sum float32
	for _, v := range ig.Data {
		sum += v
	}
	if sum != 10 {
		t.Fatalf("gradient mass not conserved: %v", sum)
	}
}

func TestRandDeterminism(t *testing.T) {
	a := New(16)
	b := New(16)
	a.RandNormal(rng.New(5), 1)
	b.RandNormal(rng.New(5), 1)
	if !almostEqual(a.Data, b.Data, 0) {
		t.Fatal("RandNormal not deterministic for equal seeds")
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(1)
	a := New(64, 64)
	bb := New(64, 64)
	c := New(64, 64)
	a.RandNormal(r, 1)
	bb.RandNormal(r, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, bb, c)
	}
}

func BenchmarkIm2col(b *testing.B) {
	r := rng.New(1)
	in := New(8, 16, 16)
	in.RandNormal(r, 1)
	out := New(8*9, 16*16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2col(in, 3, 3, 1, 1, out)
	}
}
