package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := Table{Title: "T", Header: []string{"algo", "acc"}}
	tb.AddRow("bsp", "0.75")
	tb.AddRow("adpsgd", "0.74")
	out := tb.String()
	if !strings.Contains(out, "== T ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Column 2 must start at the same offset in every data line.
	idx := strings.Index(lines[1], "acc")
	if strings.Index(lines[3], "0.75") != idx {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestFigureUnionOfX(t *testing.T) {
	var f Figure
	a := f.NewSeries("a")
	a.Add(1, 10)
	a.Add(2, 20)
	b := f.NewSeries("b")
	b.Add(2, 200)
	b.Add(3, 300)
	out := f.String()
	for _, want := range []string{"a", "b", "10", "200", "300", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFmtHelpers(t *testing.T) {
	if Fmt(0.12345, 2) != "0.12" {
		t.Fatal(Fmt(0.12345, 2))
	}
	if FmtBytes(2.5e9) != "2.50GB" {
		t.Fatal(FmtBytes(2.5e9))
	}
	if FmtBytes(3e6) != "3.00MB" {
		t.Fatal(FmtBytes(3e6))
	}
	if FmtBytes(1500) != "1.50KB" {
		t.Fatal(FmtBytes(1500))
	}
	if FmtBytes(12) != "12B" {
		t.Fatal(FmtBytes(12))
	}
}
