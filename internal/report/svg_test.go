package report

import (
	"strings"
	"testing"
)

func TestSVGBasicStructure(t *testing.T) {
	var f Figure
	f.Title = "speedup & err"
	s := f.NewSeries("bsp")
	s.Add(1, 1)
	s.Add(24, 20)
	out := f.SVG(480, 300)
	for _, want := range []string{"<svg", "</svg>", "polyline", "circle", "speedup &amp; err", "bsp"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in SVG", want)
		}
	}
}

func TestSVGEscapesSeriesNames(t *testing.T) {
	var f Figure
	s := f.NewSeries("<script>alert(1)</script>")
	s.Add(0, 0)
	out := f.SVG(300, 200)
	if strings.Contains(out, "<script>") {
		t.Fatal("series name not escaped")
	}
}

func TestSVGEmptyFigure(t *testing.T) {
	var f Figure
	out := f.SVG(300, 200)
	if !strings.Contains(out, "no data") {
		t.Fatal("empty figure should say so")
	}
	if !strings.Contains(out, "</svg>") {
		t.Fatal("unclosed SVG")
	}
}

func TestSVGSinglePointNoNaN(t *testing.T) {
	var f Figure
	s := f.NewSeries("pt")
	s.Add(5, 7)
	out := f.SVG(300, 200)
	if strings.Contains(out, "NaN") {
		t.Fatal("NaN coordinates in SVG")
	}
}

func TestSVGMinimumSizeClamped(t *testing.T) {
	var f Figure
	s := f.NewSeries("x")
	s.Add(0, 0)
	s.Add(1, 1)
	out := f.SVG(1, 1)
	if !strings.Contains(out, "<svg") {
		t.Fatal("tiny size broke rendering")
	}
}

func TestHTMLPageWrapsBlocks(t *testing.T) {
	var f Figure
	s := f.NewSeries("a")
	s.Add(0, 0)
	s.Add(1, 1)
	page := HTMLPage("My <Report>", []string{"plain text & stuff", f.SVG(300, 200)})
	if !strings.Contains(page, "My &lt;Report&gt;") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(page, "plain text &amp; stuff") {
		t.Fatal("text block not escaped")
	}
	if !strings.Contains(page, "<svg") {
		t.Fatal("SVG block not embedded raw")
	}
	if !strings.Contains(page, "</html>") {
		t.Fatal("unterminated page")
	}
}
