package report

import (
	"fmt"
	"strconv"

	"disttrain/internal/api"
)

// ResultTable renders the unified api.RunResult as the standard metrics
// table — the one rendering path simulator and live runs share, whether the
// result came from a local run or from the control plane's result endpoint.
// speedupBase, when positive, is the single-GPU samples/s baseline used for
// the speedup row (cost-model runs); 0 omits the row.
func ResultTable(res *api.RunResult, speedupBase float64) *Table {
	s := &res.Summary
	t := &Table{
		Title: fmt.Sprintf("%s on %s, %d workers (%s, %gGbps)",
			s.Algo, s.Model, s.Workers, res.Transport, s.InterGbps),
		Header: []string{"metric", "value"},
	}
	if res.Transport == api.TransportSim {
		t.AddRow("virtual time", Fmt(s.VirtualSec, 3)+" s")
		t.AddRow("throughput", Fmt(s.Throughput, 1)+" samples/s")
	} else {
		t.AddRow("wall time", Fmt(res.WallSec, 3)+" s")
		t.AddRow("throughput", Fmt(s.Throughput, 1)+" samples/s (wall)")
	}
	if speedupBase > 0 {
		t.AddRow("speedup vs 1 GPU", Fmt(s.Throughput/speedupBase, 2)+"x")
	}
	t.AddRow("total traffic", FmtBytes(float64(s.TotalBytes)))
	if s.BytesPerIterPerWorker > 0 {
		t.AddRow("bytes/iter/worker", FmtBytes(s.BytesPerIterPerWorker))
	}
	if total := s.ComputeSec + s.LocalAggSec + s.GlobalAggSec + s.NetworkSec; total > 0 {
		for _, ph := range []struct {
			name string
			sec  float64
		}{
			{"compute", s.ComputeSec},
			{"local-agg", s.LocalAggSec},
			{"global-agg", s.GlobalAggSec},
			{"network", s.NetworkSec},
		} {
			t.AddRow("time: "+ph.name, fmt.Sprintf("%s s (%.0f%%)", Fmt(ph.sec, 3), 100*ph.sec/total))
		}
	}
	if fs := s.Faults; fs.Any() || s.StalledWorkers > 0 {
		t.AddRow("faults", fmt.Sprintf("%d crashes, %d restarts, %d timeouts", fs.Crashes, fs.Restarts, fs.Timeouts))
		t.AddRow("iterations lost/recovered", fmt.Sprintf("%d / %d", fs.LostIters, fs.RecoveredIters))
		if s.DroppedMsgs > 0 {
			t.AddRow("messages dropped", fmt.Sprintf("%d (%s)", s.DroppedMsgs, FmtBytes(float64(s.DroppedBytes))))
		}
		if s.StalledWorkers > 0 {
			t.AddRow("stalled workers", strconv.Itoa(s.StalledWorkers)+" (run never finished; throughput reported as 0)")
		}
	}
	if n := res.Net; n != nil {
		t.AddRow("frames sent", strconv.FormatInt(n.FramesSent, 10))
		t.AddRow("bytes sent", FmtBytes(float64(n.BytesSent)))
		if n.Kills > 0 || n.Redials > 0 {
			t.AddRow("connection kills/redials", fmt.Sprintf("%d / %d", n.Kills, n.Redials))
		}
		if n.Partitioned > 0 {
			t.AddRow("partition-stalled sends", strconv.FormatInt(n.Partitioned, 10))
		}
	}
	if res.Deaths > 0 || res.Rejoins > 0 {
		t.AddRow("deaths/rejoins/restores", fmt.Sprintf("%d / %d / %d", res.Deaths, res.Rejoins, res.Restores))
	}
	if s.FinalTestAcc != 0 || s.FinalTrainLoss != 0 || len(s.Trace) > 0 {
		t.AddRow("final test accuracy", Fmt(s.FinalTestAcc, 4))
		t.AddRow("final train loss", Fmt(s.FinalTrainLoss, 4))
	}
	return t
}

// ConvergenceFigure renders the result's convergence trace (test error vs
// iteration), or nil when the run recorded no trace (cost-only and live
// runs).
func ConvergenceFigure(res *api.RunResult) *Figure {
	if len(res.Summary.Trace) == 0 {
		return nil
	}
	fig := &Figure{Title: "convergence (test error vs iteration)"}
	s := fig.NewSeries("test-err")
	for _, tp := range res.Summary.Trace {
		s.Add(float64(tp.Iter), tp.TestErr)
	}
	return fig
}
