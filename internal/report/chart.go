package report

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders the figure as an ASCII line chart of the given plot size
// (columns × rows, excluding axes). Each series draws with its own symbol;
// overlapping points show the later series' symbol. Intended for terminal
// inspection of convergence and scalability curves next to the exact
// column tables.
func (f *Figure) Chart(width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	symbols := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Data bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range f.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return "(empty chart)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, sym byte) {
		c := int((x - minX) / (maxX - minX) * float64(width-1))
		r := int((y - minY) / (maxY - minY) * float64(height-1))
		r = height - 1 - r // row 0 at the top
		grid[r][c] = sym
	}
	for si, s := range f.Series {
		sym := symbols[si%len(symbols)]
		// Connect consecutive points with linear interpolation so sparse
		// series still read as lines.
		for i := range s.X {
			plot(s.X[i], s.Y[i], sym)
			if i > 0 {
				steps := width
				for k := 1; k < steps; k++ {
					t := float64(k) / float64(steps)
					plot(s.X[i-1]+(s.X[i]-s.X[i-1])*t, s.Y[i-1]+(s.Y[i]-s.Y[i-1])*t, sym)
				}
			}
		}
	}

	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	yLabelW := 9
	for r, row := range grid {
		var label string
		switch r {
		case 0:
			label = FmtG(maxY)
		case height - 1:
			label = FmtG(minY)
		}
		fmt.Fprintf(&b, "%*s |%s\n", yLabelW, label, string(row))
	}
	fmt.Fprintf(&b, "%*s +%s\n", yLabelW, "", strings.Repeat("-", width))
	lo, hi := FmtG(minX), FmtG(maxX)
	pad := width - len(lo) - len(hi)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%*s  %s%s%s\n", yLabelW, "", lo, strings.Repeat(" ", pad), hi)
	// Legend.
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", symbols[si%len(symbols)], s.Name))
	}
	fmt.Fprintf(&b, "%*s  %s\n", yLabelW, "", strings.Join(legend, "  "))
	return b.String()
}
