package report

import (
	"strings"
	"testing"
)

func TestChartBasicRender(t *testing.T) {
	var f Figure
	f.Title = "speedup"
	s := f.NewSeries("bsp")
	for i := 1; i <= 8; i++ {
		s.Add(float64(i), float64(i))
	}
	out := f.Chart(40, 10)
	if !strings.Contains(out, "speedup") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "*=bsp") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data points rendered")
	}
	// Axis labels: min and max of both axes appear.
	for _, want := range []string{"1", "8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing axis label %s:\n%s", want, out)
		}
	}
}

func TestChartMultipleSeriesSymbols(t *testing.T) {
	var f Figure
	a := f.NewSeries("up")
	b := f.NewSeries("down")
	for i := 0; i < 5; i++ {
		a.Add(float64(i), float64(i))
		b.Add(float64(i), float64(4-i))
	}
	out := f.Chart(30, 8)
	if !strings.Contains(out, "*=up") || !strings.Contains(out, "o=down") {
		t.Fatalf("legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Fatal("second series not drawn")
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	var f Figure
	if out := f.Chart(20, 5); !strings.Contains(out, "empty") {
		t.Fatalf("empty chart output: %q", out)
	}
	s := f.NewSeries("flat")
	s.Add(1, 2) // single point, zero ranges
	out := f.Chart(20, 5)
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not rendered:\n%s", out)
	}
}

func TestChartClampsTinySizes(t *testing.T) {
	var f Figure
	s := f.NewSeries("x")
	s.Add(0, 0)
	s.Add(1, 1)
	out := f.Chart(1, 1) // must clamp, not panic
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestChartMonotoneSeriesOrientation(t *testing.T) {
	// An increasing series must place its max-x point on the TOP row.
	var f Figure
	s := f.NewSeries("inc")
	s.Add(0, 0)
	s.Add(10, 10)
	out := f.Chart(20, 6)
	lines := strings.Split(out, "\n")
	// lines[1] is the top plot row (after the title).
	top := lines[1]
	if !strings.Contains(top, "*") {
		t.Fatalf("max not on top row:\n%s", out)
	}
	if !strings.HasSuffix(strings.TrimRight(top, " "), "*") {
		t.Fatalf("max not at right edge:\n%s", out)
	}
}
