package report

import (
	"fmt"
	"html"
	"math"
	"strings"
)

// svgPalette holds the series stroke colors (colorblind-safe-ish).
var svgPalette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377", "#bbbbbb", "#000000",
}

// SVG renders the figure as a self-contained SVG line chart with axes,
// ticks, and a legend — the publication-grade sibling of Chart. The
// returned markup embeds directly into HTML.
func (f *Figure) SVG(width, height int) string {
	const (
		padL = 56
		padR = 16
		padT = 28
		padB = 42
	)
	if width < padL+padR+40 {
		width = padL + padR + 40
	}
	if height < padT+padB+40 {
		height = padT + padB + 40
	}
	plotW := float64(width - padL - padR)
	plotH := float64(height - padT - padB)

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range f.Series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`, width, height)
	if f.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" font-weight="bold">%s</text>`,
			padL, html.EscapeString(f.Title))
	}
	if points == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d">no data</text></svg>`, padL, height/2)
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	px := func(x float64) float64 { return float64(padL) + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(padT) + (1-(y-minY)/(maxY-minY))*plotH }

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`,
		padL, height-padB, width-padR, height-padB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`,
		padL, padT, padL, height-padB)
	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#333">%s</text>`,
			px(fx), height-padB+16, FmtG(fx))
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#333">%s</text>`,
			padL-6, py(fy)+4, FmtG(fy))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			padL, py(fy), width-padR, py(fy))
	}

	// Series polylines + point markers.
	for si, s := range f.Series {
		color := svgPalette[si%len(svgPalette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
				strings.Join(pts, " "), color)
		}
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`,
				px(s.X[i]), py(s.Y[i]), color)
		}
	}
	// Legend, top-right.
	lx := width - padR - 110
	ly := padT + 4
	for si, s := range f.Series {
		color := svgPalette[si%len(svgPalette)]
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`, lx, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#111">%s</text>`,
			lx+14, ly+9, html.EscapeString(s.Name))
		ly += 14
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// HTMLPage wraps pre-rendered text blocks (and raw "<svg"-prefixed blocks,
// which are embedded as-is) into a minimal self-contained HTML report.
func HTMLPage(title string, blocks []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html><html><head><meta charset="utf-8"><title>%s</title>
<style>
 body { font-family: sans-serif; max-width: 1000px; margin: 2em auto; color: #111; }
 pre { background: #f6f6f6; padding: 0.8em 1em; overflow-x: auto; border-radius: 4px; }
 h1 { border-bottom: 2px solid #4477aa; padding-bottom: 0.2em; }
</style></head><body><h1>%s</h1>
`, html.EscapeString(title), html.EscapeString(title))
	for _, blk := range blocks {
		if strings.HasPrefix(strings.TrimSpace(blk), "<svg") {
			b.WriteString(blk)
			b.WriteString("\n")
		} else {
			fmt.Fprintf(&b, "<pre>%s</pre>\n", html.EscapeString(blk))
		}
	}
	b.WriteString("</body></html>\n")
	return b.String()
}
