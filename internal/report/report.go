// Package report renders experiment results as aligned ASCII tables and
// series blocks that mirror the paper's tables and figures, so a paperbench
// run prints directly comparable artifacts.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid with a header row.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Series is a named sequence of (x, y) points — one line of a figure.
type Series struct {
	Name   string
	X, Y   []float64
	XLabel string
	YLabel string
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Figure is a titled set of series sharing axes, rendered as a column table
// (one x column, one y column per series) — the data behind a paper figure.
type Figure struct {
	Title  string
	Series []*Series
}

// NewSeries creates, registers and returns a new series on the figure.
func (f *Figure) NewSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// String renders the figure as an aligned column table keyed by the union
// of all x values (missing points print as "-").
func (f *Figure) String() string {
	// Union of x values, in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	t := Table{Title: f.Title, Header: []string{"x"}}
	for _, s := range f.Series {
		t.Header = append(t.Header, s.Name)
	}
	for _, x := range xs {
		row := []string{FmtG(x)}
		for _, s := range f.Series {
			cell := "-"
			for i, sx := range s.X {
				if sx == x {
					cell = FmtG(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Fmt formats a float with the given decimals.
func Fmt(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// FmtG formats a float compactly (4 significant digits).
func FmtG(v float64) string {
	return fmt.Sprintf("%.4g", v)
}

// FmtBytes renders a byte count humanely (KB/MB/GB).
func FmtBytes(b float64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2fGB", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2fMB", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.2fKB", b/1e3)
	default:
		return fmt.Sprintf("%.0fB", b)
	}
}
