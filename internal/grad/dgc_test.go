package grad

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"disttrain/internal/rng"
)

func TestTopKIndicesKnown(t *testing.T) {
	v := []float32{0.1, -5, 2, 0.01, 3, -4}
	got := topKIndices(v, 3)
	want := []int{1, 4, 5} // |−5|, |3|, |−4| → sorted by index
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topK = %v, want %v", got, want)
		}
	}
}

func TestTopKAllWhenKLarge(t *testing.T) {
	v := []float32{1, 2, 3}
	got := topKIndices(v, 10)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestTopKProperty(t *testing.T) {
	// Every selected |value| must be >= every unselected |value|.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(200)
		k := 1 + r.Intn(n)
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(r.NormFloat64())
		}
		idx := topKIndices(v, k)
		if len(idx) != k {
			return false
		}
		sel := make(map[int]bool, k)
		var minSel float64 = math.Inf(1)
		for _, i := range idx {
			sel[i] = true
			if a := math.Abs(float64(v[i])); a < minSel {
				minSel = a
			}
		}
		for i := range v {
			if !sel[i] && math.Abs(float64(v[i])) > minSel+1e-12 {
				return false
			}
		}
		return sort.IntsAreSorted(idx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressSelectsLargest(t *testing.T) {
	cfg := DGCConfig{Ratio: 0.25, Momentum: 0, ClipNorm: 0}
	c := NewCompressor(cfg, 8)
	g := []float32{0, 0, 10, 0, 0, -20, 0, 0}
	sp := c.Compress(g)
	if len(sp.Idx) != 2 {
		t.Fatalf("k = %d, want 2", len(sp.Idx))
	}
	if sp.Idx[0] != 2 || sp.Idx[1] != 5 {
		t.Fatalf("idx = %v", sp.Idx)
	}
	if sp.Val[0] != 10 || sp.Val[1] != -20 {
		t.Fatalf("val = %v", sp.Val)
	}
}

func TestResidualAccumulation(t *testing.T) {
	// Entries not transmitted must accumulate locally and eventually win.
	cfg := DGCConfig{Ratio: 1.0 / 8.0, Momentum: 0, ClipNorm: 0}
	c := NewCompressor(cfg, 8)
	g := []float32{1, 0, 0, 0, 0, 0, 0, 5}
	sp := c.Compress(g) // index 7 wins
	if sp.Idx[0] != 7 {
		t.Fatalf("first pick %v", sp.Idx)
	}
	// index 0 keeps accumulating 1 per step; index 7 resets after send.
	sp = c.Compress([]float32{1, 0, 0, 0, 0, 0, 0, 0})
	if sp.Idx[0] != 0 {
		t.Fatalf("second pick %v, want accumulated index 0", sp.Idx)
	}
	if math.Abs(float64(sp.Val[0])-2) > 1e-6 {
		t.Fatalf("accumulated value = %v, want 2", sp.Val[0])
	}
}

func TestNoGradientIsLost(t *testing.T) {
	// Without momentum/clipping, sum(transmitted) + sum(residual) must equal
	// sum(all gradients fed in): sparsification delays but never drops mass.
	cfg := DGCConfig{Ratio: 0.1, Momentum: 0, ClipNorm: 0}
	n := 50
	c := NewCompressor(cfg, n)
	r := rng.New(3)
	dense := make([]float32, n)
	var fedSum float64
	for step := 0; step < 20; step++ {
		g := make([]float32, n)
		for i := range g {
			g[i] = float32(r.NormFloat64())
			fedSum += float64(g[i])
		}
		sp := c.Compress(g)
		if err := Decompress(sp, 1, dense); err != nil {
			t.Fatal(err)
		}
	}
	var got float64
	for _, v := range dense {
		got += float64(v)
	}
	for _, v := range c.Residual() {
		got += float64(v)
	}
	if math.Abs(got-fedSum) > 1e-3 {
		t.Fatalf("mass: transmitted+residual %v, fed %v", got, fedSum)
	}
}

func TestMomentumCorrection(t *testing.T) {
	// With momentum m and a constant gradient, u converges to g/(1-m); the
	// first compress sends v = u_1 = g.
	cfg := DGCConfig{Ratio: 1, Momentum: 0.9, ClipNorm: 0}
	c := NewCompressor(cfg, 2)
	sp := c.Compress([]float32{1, 1})
	if math.Abs(float64(sp.Val[0])-1) > 1e-6 {
		t.Fatalf("first send %v", sp.Val[0])
	}
	// Factor masking zeroed u after send; so next send is again 1.
	sp = c.Compress([]float32{1, 1})
	if math.Abs(float64(sp.Val[0])-1) > 1e-6 {
		t.Fatalf("masked momentum: second send %v, want 1", sp.Val[0])
	}
}

func TestFactorMaskingAblation(t *testing.T) {
	cfg := DGCConfig{Ratio: 1, Momentum: 0.9, ClipNorm: 0, NoFactorMasking: true}
	c := NewCompressor(cfg, 1)
	c.Compress([]float32{1})
	sp := c.Compress([]float32{1})
	// Without masking u survives: u2 = 0.9*1 + 1 = 1.9.
	if math.Abs(float64(sp.Val[0])-1.9) > 1e-6 {
		t.Fatalf("unmasked second send %v, want 1.9", sp.Val[0])
	}
}

func TestWarmupRampsSparsity(t *testing.T) {
	cfg := DGCConfig{Ratio: 0.001, Momentum: 0, WarmupIters: 100}
	c := NewCompressor(cfg, 1000)
	r0 := c.CurrentRatio()
	if r0 != 1 {
		t.Fatalf("warmup start ratio %v, want 1 (dense)", r0)
	}
	g := make([]float32, 1000)
	for i := range g {
		g[i] = 1
	}
	prev := 1.0
	for step := 0; step < 100; step++ {
		c.Compress(g)
		cur := c.CurrentRatio()
		if cur > prev+1e-12 {
			t.Fatalf("warmup ratio increased at %d: %v -> %v", step, prev, cur)
		}
		prev = cur
	}
	if got := c.CurrentRatio(); got != 0.001 {
		t.Fatalf("post-warmup ratio %v", got)
	}
}

func TestWireBytes(t *testing.T) {
	sp := Sparse{Idx: make([]int32, 10), Val: make([]float32, 10), Dense: 100}
	if sp.WireBytes() != 80 {
		t.Fatalf("wire bytes = %d", sp.WireBytes())
	}
}

func TestCompressionRatioOnWire(t *testing.T) {
	// Post-warm-up DGC must cut wire size by ~99.8% (8 bytes per 0.1%).
	n := 100000
	cfg := DGCConfig{Ratio: 0.001, Momentum: 0.9, ClipNorm: 2}
	c := NewCompressor(cfg, n)
	r := rng.New(4)
	g := make([]float32, n)
	for i := range g {
		g[i] = float32(r.NormFloat64())
	}
	sp := c.Compress(g)
	dense := int64(n * 4)
	if sp.WireBytes() > dense/100 {
		t.Fatalf("wire %d vs dense %d: insufficient compression", sp.WireBytes(), dense)
	}
}

func TestDecompressScale(t *testing.T) {
	dense := make([]float32, 4)
	if err := Decompress(Sparse{Idx: []int32{1, 3}, Val: []float32{2, -4}, Dense: 4}, 0.5, dense); err != nil {
		t.Fatal(err)
	}
	if dense[1] != 1 || dense[3] != -2 || dense[0] != 0 {
		t.Fatalf("dense = %v", dense)
	}
}

func TestDecompressValidation(t *testing.T) {
	cases := []struct {
		name  string
		sp    Sparse
		dense []float32
	}{
		{"length mismatch", Sparse{Idx: []int32{0}, Val: []float32{1}, Dense: 4}, make([]float32, 3)},
		{"idx/val mismatch", Sparse{Idx: []int32{0, 1}, Val: []float32{1}, Dense: 4}, make([]float32, 4)},
		{"index too large", Sparse{Idx: []int32{4}, Val: []float32{1}, Dense: 4}, make([]float32, 4)},
		{"negative index", Sparse{Idx: []int32{-1}, Val: []float32{1}, Dense: 4}, make([]float32, 4)},
		{"duplicate sorted", Sparse{Idx: []int32{1, 1}, Val: []float32{1, 2}, Dense: 4}, make([]float32, 4)},
		{"duplicate unsorted", Sparse{Idx: []int32{2, 0, 2}, Val: []float32{1, 2, 3}, Dense: 4}, make([]float32, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Decompress(tc.sp, 1, tc.dense); err == nil {
				t.Fatalf("expected error for %s", tc.name)
			}
			for i, v := range tc.dense {
				if v != 0 {
					t.Fatalf("dense modified at %d despite error: %v", i, v)
				}
			}
		})
	}
	// Unsorted but valid payloads must still decompress.
	dense := make([]float32, 4)
	if err := Decompress(Sparse{Idx: []int32{3, 0}, Val: []float32{1, 2}, Dense: 4}, 1, dense); err != nil {
		t.Fatal(err)
	}
	if dense[3] != 1 || dense[0] != 2 {
		t.Fatalf("dense = %v", dense)
	}
}

func TestTopKTieBreakDeterministic(t *testing.T) {
	// With many tied magnitudes straddling the k boundary, selection must be
	// reproducible and must prefer lower indices among the tied group.
	n, k := 64, 8
	v := make([]float32, n)
	for i := range v {
		if i%2 == 0 {
			v[i] = 1 // 32 entries tied at |1|, only k=8 can win
		} else {
			v[i] = -1
		}
	}
	first := topKIndices(v, k)
	for trial := 0; trial < 10; trial++ {
		got := topKIndices(v, k)
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("trial %d: selection %v differs from %v", trial, got, first)
			}
		}
	}
	// Lower indices win ties: the winners must be exactly 0..k-1.
	for j, i := range first {
		if i != j {
			t.Fatalf("tie-break chose %v, want [0..%d)", first, k)
		}
	}
}

func TestTopKMatchesReferenceSort(t *testing.T) {
	// topKIndices must agree with a full sort under the same total order
	// (|v| descending, index ascending), including heavy ties.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(100)
		k := 1 + r.Intn(n)
		v := make([]float32, n)
		for i := range v {
			// Quantize to force frequent magnitude ties.
			v[i] = float32(r.Intn(5)-2) * 0.5
		}
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		sort.SliceStable(ref, func(a, b int) bool {
			aa := math.Abs(float64(v[ref[a]]))
			ab := math.Abs(float64(v[ref[b]]))
			if aa != ab {
				return aa > ab
			}
			return ref[a] < ref[b]
		})
		want := append([]int(nil), ref[:k]...)
		sort.Ints(want)
		got := topKIndices(v, k)
		if len(got) != k {
			return false
		}
		for j := range want {
			if got[j] != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if (DGCConfig{Ratio: 0}).Validate() == nil {
		t.Fatal("ratio 0 accepted")
	}
	if (DGCConfig{Ratio: 2}).Validate() == nil {
		t.Fatal("ratio 2 accepted")
	}
	if err := DefaultDGC(0.9, 10).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestClippingBoundsContribution(t *testing.T) {
	cfg := DGCConfig{Ratio: 1, Momentum: 0, ClipNorm: 1}
	c := NewCompressor(cfg, 2)
	sp := c.Compress([]float32{30, 40}) // norm 50 -> clipped to 1
	norm := math.Hypot(float64(sp.Val[0]), float64(sp.Val[1]))
	if math.Abs(norm-1) > 1e-5 {
		t.Fatalf("clipped norm %v", norm)
	}
	// Clipping must not modify the caller's gradient.
	g := []float32{30, 40}
	c2 := NewCompressor(cfg, 2)
	c2.Compress(g)
	if g[0] != 30 || g[1] != 40 {
		t.Fatal("Compress mutated caller's gradient")
	}
}

func BenchmarkCompress100k(b *testing.B) {
	n := 100000
	c := NewCompressor(DefaultDGC(0.9, 0), n)
	r := rng.New(1)
	g := make([]float32, n)
	for i := range g {
		g[i] = float32(r.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Compress(g)
	}
}
