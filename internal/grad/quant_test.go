package grad

import (
	"math"
	"testing"
	"testing/quick"

	"disttrain/internal/rng"
)

func TestQuantizeRoundTripBoundedError(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(200)
		v := make([]float32, n)
		var maxAbs float64
		for i := range v {
			v[i] = float32(r.NormFloat64() * 3)
			if a := math.Abs(float64(v[i])); a > maxAbs {
				maxAbs = a
			}
		}
		q := Quantize8(v)
		out := make([]float32, n)
		Dequantize8(q, out)
		// Error per element is bounded by half a quantization step (plus
		// float32 rounding proportional to the scale).
		step := maxAbs / 127
		for i := range v {
			if math.Abs(float64(v[i]-out[i])) > step/2+1e-6*maxAbs+1e-30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeZeroVector(t *testing.T) {
	v := make([]float32, 5)
	q := Quantize8(v)
	if q.Scale != 0 {
		t.Fatalf("scale = %v", q.Scale)
	}
	out := []float32{1, 1, 1, 1, 1}
	Dequantize8(q, out)
	for _, x := range out {
		if x != 0 {
			t.Fatal("zero vector did not reconstruct to zero")
		}
	}
}

func TestQuantizePreservesExtremes(t *testing.T) {
	v := []float32{-4, 0, 4}
	q := Quantize8(v)
	out := make([]float32, 3)
	Dequantize8(q, out)
	if out[0] != -4 || out[2] != 4 {
		t.Fatalf("extremes not exact: %v", out)
	}
	if out[1] != 0 {
		t.Fatalf("zero moved: %v", out[1])
	}
}

func TestQuantizeWireBytes(t *testing.T) {
	q := Quantize8(make([]float32, 100))
	if q.WireBytes() != 104 {
		t.Fatalf("wire = %d", q.WireBytes())
	}
}

func TestQuantizeRoundTripInPlace(t *testing.T) {
	v := []float32{1, -2, 3}
	bytes := QuantizeRoundTrip(v)
	if bytes != 7 {
		t.Fatalf("bytes = %d", bytes)
	}
	if math.Abs(float64(v[2]-3)) > 3.0/254+1e-6 {
		t.Fatalf("round trip moved max: %v", v[2])
	}
}

func TestDequantizeLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dequantize8(Quantized8{Scale: 1, Q: make([]int8, 3)}, make([]float32, 2))
}

func BenchmarkQuantize8(b *testing.B) {
	r := rng.New(1)
	v := make([]float32, 1<<16)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	b.SetBytes(int64(len(v) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantize8(v)
	}
}
