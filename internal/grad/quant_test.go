package grad

import (
	"math"
	"testing"
	"testing/quick"

	"disttrain/internal/rng"
)

func TestQuantizeRoundTripBoundedError(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(200)
		v := make([]float32, n)
		var maxAbs float64
		for i := range v {
			v[i] = float32(r.NormFloat64() * 3)
			if a := math.Abs(float64(v[i])); a > maxAbs {
				maxAbs = a
			}
		}
		q := Quantize8(v)
		out := make([]float32, n)
		Dequantize8(q, out)
		// Error per element is bounded by half a quantization step (plus
		// float32 rounding proportional to the scale).
		step := maxAbs / 127
		for i := range v {
			if math.Abs(float64(v[i]-out[i])) > step/2+1e-6*maxAbs+1e-30 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeZeroVector(t *testing.T) {
	v := make([]float32, 5)
	q := Quantize8(v)
	if q.Scale != 0 {
		t.Fatalf("scale = %v", q.Scale)
	}
	out := []float32{1, 1, 1, 1, 1}
	Dequantize8(q, out)
	for _, x := range out {
		if x != 0 {
			t.Fatal("zero vector did not reconstruct to zero")
		}
	}
}

func TestQuantizePreservesExtremes(t *testing.T) {
	v := []float32{-4, 0, 4}
	q := Quantize8(v)
	out := make([]float32, 3)
	Dequantize8(q, out)
	if out[0] != -4 || out[2] != 4 {
		t.Fatalf("extremes not exact: %v", out)
	}
	if out[1] != 0 {
		t.Fatalf("zero moved: %v", out[1])
	}
}

func TestQuantizeWireBytes(t *testing.T) {
	q := Quantize8(make([]float32, 100))
	if q.WireBytes() != 104 {
		t.Fatalf("wire = %d", q.WireBytes())
	}
}

func TestQuantizeRoundTripInPlace(t *testing.T) {
	v := []float32{1, -2, 3}
	bytes := QuantizeRoundTrip(v)
	if bytes != 7 {
		t.Fatalf("bytes = %d", bytes)
	}
	if math.Abs(float64(v[2]-3)) > 3.0/254+1e-6 {
		t.Fatalf("round trip moved max: %v", v[2])
	}
}

func TestDequantizeLengthError(t *testing.T) {
	// Quantized payloads arrive off the wire: a length mismatch must be a
	// rejectable validation error, not a panic (the Decompress contract).
	if err := Dequantize8(Quantized8{Scale: 1, Q: make([]int8, 3)}, make([]float32, 2)); err == nil {
		t.Fatal("Dequantize8 accepted a length mismatch")
	}
	if err := DequantizeF16(QuantizedF16{H: make([]uint16, 3)}, make([]float32, 2)); err == nil {
		t.Fatal("DequantizeF16 accepted a length mismatch")
	}
	if err := Dequantize8(Quantize8([]float32{1, 2}), make([]float32, 2)); err != nil {
		t.Fatalf("valid dequantize rejected: %v", err)
	}
}

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-2, 0xc000},
		{0.5, 0x3800},
		{65504, 0x7bff},                 // largest finite half
		{6.103515625e-05, 0x0400},       // smallest normal half (2^-14)
		{5.960464477539063e-08, 0x0001}, // smallest subnormal half (2^-24)
		{float32(math.Inf(1)), 0x7c00},  // +Inf
		{float32(math.Inf(-1)), 0xfc00}, // -Inf
		{70000, 0x7c00},                 // overflow → Inf
		{1e-10, 0x0000},                 // underflow → 0
		{1.0009765625, 0x3c01},          // 1 + 2^-10: exactly representable
		{1.00048828125, 0x3c00},         // 1 + 2^-11: tie, rounds to even (down)
		{1.0014648438, 0x3c02},          // 1 + 3·2^-11: tie rounds to even (up)
	}
	for _, c := range cases {
		if got := F32ToF16(c.f); got != c.h {
			t.Errorf("F32ToF16(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
	}
	// Exactly-representable halves must round-trip bit-perfectly, NaN must
	// stay NaN.
	for _, h := range []uint16{0x3c00, 0x0001, 0x03ff, 0x0400, 0x7bff, 0xfbff, 0x8000} {
		if got := F32ToF16(F16ToF32(h)); got != h {
			t.Errorf("half %#04x round-trips to %#04x", h, got)
		}
	}
	if !math.IsNaN(float64(F16ToF32(F32ToF16(float32(math.NaN()))))) {
		t.Error("NaN did not survive the f16 round trip")
	}
}

func TestF16RoundTripBoundedError(t *testing.T) {
	r := rng.New(11)
	v := make([]float32, 500)
	for i := range v {
		v[i] = float32(r.NormFloat64() * 10)
	}
	orig := append([]float32(nil), v...)
	bytes := QuantizeF16RoundTrip(v)
	if bytes != int64(len(v))*2 {
		t.Fatalf("wire bytes = %d", bytes)
	}
	for i := range v {
		// Half has 11 significand bits: relative error ≤ 2^-11.
		if math.Abs(float64(v[i]-orig[i])) > math.Abs(float64(orig[i]))/2048+1e-7 {
			t.Fatalf("element %d error too large: %v -> %v", i, orig[i], v[i])
		}
	}
	// Round-trip equals the explicit quantize/dequantize pair.
	q := QuantizeF16(orig)
	out := make([]float32, len(orig))
	if err := DequantizeF16(q, out); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if math.Float32bits(out[i]) != math.Float32bits(v[i]) {
			t.Fatalf("round-trip and codec disagree at %d", i)
		}
	}
}

func BenchmarkQuantize8(b *testing.B) {
	r := rng.New(1)
	v := make([]float32, 1<<16)
	for i := range v {
		v[i] = float32(r.NormFloat64())
	}
	b.SetBytes(int64(len(v) * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Quantize8(v)
	}
}
