// Package grad implements gradient compression, specifically Deep Gradient
// Compression (DGC, Lin et al., ICLR'18) as evaluated in the paper: top-k
// sparsification (top 0.1 % by magnitude) with the accuracy-preserving
// machinery — local gradient accumulation, momentum correction, local
// gradient clipping, momentum factor masking, and warm-up training.
//
// The compressor replaces the worker-side momentum of plain SGD: momentum
// is accumulated *inside* the compressor (momentum correction), so the
// receiving end applies the decompressed sparse gradient with a plain
// (momentum-free) SGD step.
package grad

import (
	"fmt"
	"math"
	"sort"

	"disttrain/internal/opt"
)

// DGCConfig configures a compressor.
type DGCConfig struct {
	// Ratio is the final fraction of gradient entries transmitted (paper:
	// 0.001, i.e. top 0.1 %).
	Ratio float64
	// Momentum is the correction momentum (matches the optimizer momentum).
	Momentum float32
	// ClipNorm bounds the L2 norm of each local gradient before
	// accumulation; 0 disables clipping.
	ClipNorm float64
	// WarmupIters ramps sparsity exponentially from dense to Ratio over
	// this many iterations (the paper warms up over the first epochs).
	WarmupIters int
	// NoMomentumCorrection disables momentum correction (ablation).
	NoMomentumCorrection bool
	// NoFactorMasking disables momentum factor masking (ablation).
	NoFactorMasking bool
}

// DefaultDGC returns the configuration the paper evaluates.
func DefaultDGC(momentum float32, warmupIters int) DGCConfig {
	return DGCConfig{Ratio: 0.001, Momentum: momentum, ClipNorm: 2.0, WarmupIters: warmupIters}
}

// Validate reports a configuration error.
func (c DGCConfig) Validate() error {
	if c.Ratio <= 0 || c.Ratio > 1 {
		return fmt.Errorf("grad: DGC ratio %v out of (0,1]", c.Ratio)
	}
	return nil
}

// Sparse is a compressed gradient: parallel index/value slices.
type Sparse struct {
	Idx []int32
	Val []float32
	// Dense is the uncompressed length, needed by receivers.
	Dense int
}

// WireBytes returns the transmitted size: 4 bytes index + 4 bytes value per
// retained entry.
func (s Sparse) WireBytes() int64 { return int64(len(s.Idx)) * 8 }

// Compressor holds per-worker DGC state.
type Compressor struct {
	cfg  DGCConfig
	u    []float32 // momentum-corrected accumulator
	v    []float32 // local gradient accumulation (residual)
	clip []float32 // reusable clipping scratch (steady-state: no allocs)
	iter int
}

// NewCompressor creates DGC state for gradient vectors of length n.
func NewCompressor(cfg DGCConfig, n int) *Compressor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Compressor{cfg: cfg, u: make([]float32, n), v: make([]float32, n)}
}

// CurrentRatio returns the sparsity ratio in effect at the compressor's
// iteration, following the paper's exponential warm-up (dense → Ratio).
func (c *Compressor) CurrentRatio() float64 {
	if c.cfg.WarmupIters <= 0 || c.iter >= c.cfg.WarmupIters {
		return c.cfg.Ratio
	}
	// Exponential ramp: ratio(t) = Ratio^(t/warmup), from dense to Ratio.
	frac := float64(c.iter) / float64(c.cfg.WarmupIters)
	return math.Pow(c.cfg.Ratio, frac)
}

// Compress folds gradient g into the accumulators and emits the sparse
// top-k update. g is not modified. Advances the warm-up iteration counter.
func (c *Compressor) Compress(g []float32) Sparse {
	if len(g) != len(c.u) {
		panic(fmt.Sprintf("grad: gradient length %d, want %d", len(g), len(c.u)))
	}
	work := g
	if c.cfg.ClipNorm > 0 {
		if c.clip == nil {
			c.clip = make([]float32, len(g))
		}
		copy(c.clip, g)
		opt.ClipByL2Norm(c.clip, c.cfg.ClipNorm)
		work = c.clip
	}
	// Momentum correction: u += m*u + g; accumulation: v += u.
	if c.cfg.NoMomentumCorrection {
		for i, gi := range work {
			c.v[i] += gi
		}
	} else {
		m := c.cfg.Momentum
		for i, gi := range work {
			c.u[i] = m*c.u[i] + gi
			c.v[i] += c.u[i]
		}
	}

	ratio := c.CurrentRatio()
	c.iter++
	k := int(float64(len(c.v)) * ratio)
	if k < 1 {
		k = 1
	}
	if k > len(c.v) {
		k = len(c.v)
	}
	idx := topKIndices(c.v, k)
	sp := Sparse{Idx: make([]int32, len(idx)), Val: make([]float32, len(idx)), Dense: len(c.v)}
	for j, i := range idx {
		sp.Idx[j] = int32(i)
		sp.Val[j] = c.v[i]
		c.v[i] = 0
		if !c.cfg.NoMomentumCorrection && !c.cfg.NoFactorMasking {
			c.u[i] = 0 // momentum factor masking
		}
	}
	return sp
}

// Iter returns how many Compress calls have occurred.
func (c *Compressor) Iter() int { return c.iter }

// Residual exposes the accumulation buffer (tests/ablations).
func (c *Compressor) Residual() []float32 { return c.v }

// Decompress scatter-adds the sparse update into dense (length must equal
// sp.Dense), scaled by alpha. It validates the sparse payload before
// touching dense — a malformed or corrupted message (length mismatch,
// out-of-range index, duplicate index) yields an error instead of a panic
// or a silently double-applied entry, and leaves dense unmodified.
func Decompress(sp Sparse, alpha float32, dense []float32) error {
	if len(dense) != sp.Dense {
		return fmt.Errorf("grad: dense length %d, want %d", len(dense), sp.Dense)
	}
	if len(sp.Idx) != len(sp.Val) {
		return fmt.Errorf("grad: sparse idx/val length mismatch: %d vs %d", len(sp.Idx), len(sp.Val))
	}
	// Compress emits indices in strictly ascending order, so the common case
	// validates range and uniqueness in one pass with no extra memory.
	ascending := true
	for j, i := range sp.Idx {
		if i < 0 || int(i) >= sp.Dense {
			return fmt.Errorf("grad: sparse index %d out of range [0,%d)", i, sp.Dense)
		}
		if j > 0 && i <= sp.Idx[j-1] {
			ascending = false
		}
	}
	if !ascending {
		// Unsorted input: fall back to a set to reject duplicates.
		seen := make(map[int32]struct{}, len(sp.Idx))
		for _, i := range sp.Idx {
			if _, dup := seen[i]; dup {
				return fmt.Errorf("grad: duplicate sparse index %d", i)
			}
			seen[i] = struct{}{}
		}
	}
	for j, i := range sp.Idx {
		dense[i] += alpha * sp.Val[j]
	}
	return nil
}

// topKIndices returns the indices of the k largest |v| entries. Selection is
// deterministic: ties break toward the lower index.
func topKIndices(v []float32, k int) []int {
	n := len(v)
	if k >= n {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	// Heap-free deterministic selection: maintain the k best in a slice.
	// For the sizes this repo uses (k = 0.1-25 % of ~100k) an O(n log k)
	// partial sort via a fixed-size worst-tracking array is plenty.
	type ent struct {
		i int
		a float32
	}
	best := make([]ent, 0, k)
	abs := func(x float32) float32 {
		if x < 0 {
			return -x
		}
		return x
	}
	// Total order: larger magnitude first, ties broken toward the lower
	// index. The index tiebreak makes selection at the k-boundary
	// deterministic — an unstable magnitude-only sort could admit either of
	// two tied entries depending on the sort's internal permutation.
	less := func(x, y ent) bool {
		if x.a != y.a {
			return x.a > y.a
		}
		return x.i < y.i
	}
	// Build initial k.
	for i := 0; i < k; i++ {
		best = append(best, ent{i, abs(v[i])})
	}
	sort.Slice(best, func(a, b int) bool { return less(best[a], best[b]) })
	for i := k; i < n; i++ {
		e := ent{i, abs(v[i])}
		if !less(e, best[k-1]) {
			continue
		}
		// Insert into sorted position, drop the last. pos < k is guaranteed
		// here for ordinary values (e sorts before best[k-1]), but a NaN
		// magnitude compares false everywhere, so guard the copy.
		pos := sort.Search(k, func(j int) bool { return less(e, best[j]) })
		if pos >= k {
			continue
		}
		copy(best[pos+1:], best[pos:k-1])
		best[pos] = e
	}
	idx := make([]int, k)
	for j, e := range best {
		idx[j] = e.i
	}
	sort.Ints(idx)
	return idx
}
