package grad

import (
	"math"
	"testing"
)

// FuzzQuantizeRoundTrip checks that quantization never panics, never emits
// non-finite values for finite input, and keeps per-element error within
// half a quantization step.
func FuzzQuantizeRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64})         // [1, 2]
	f.Add([]byte{0, 0, 0, 0})                         // [0]
	f.Add([]byte{255, 255, 127, 127, 1, 0, 128, 255}) // extremes
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 4
		if n == 0 {
			return
		}
		v := make([]float32, n)
		var maxAbs float64
		for i := 0; i < n; i++ {
			bits := uint32(raw[i*4]) | uint32(raw[i*4+1])<<8 |
				uint32(raw[i*4+2])<<16 | uint32(raw[i*4+3])<<24
			v[i] = math.Float32frombits(bits)
			if math.IsNaN(float64(v[i])) || math.IsInf(float64(v[i]), 0) {
				return // only finite inputs are in-contract
			}
			if a := math.Abs(float64(v[i])); a > maxAbs {
				maxAbs = a
			}
		}
		orig := append([]float32(nil), v...)
		q := Quantize8(v)
		out := make([]float32, n)
		Dequantize8(q, out)
		step := maxAbs / 127
		for i := range out {
			if math.IsNaN(float64(out[i])) {
				t.Fatalf("NaN output for finite input %v", orig[i])
			}
			if math.Abs(float64(orig[i]-out[i])) > step/2+1e-6*maxAbs+1e-30 {
				t.Fatalf("error beyond half step at %d: %v -> %v (step %v)", i, orig[i], out[i], step)
			}
		}
	})
}

// FuzzF16RoundTrip checks the half-precision codec over arbitrary bit
// patterns: conversion never panics, finite halves convert exactly (F16ToF32
// is exact, so F32ToF16 must invert it), finite float32 inputs round with
// bounded relative error, and NaN/Inf classes are preserved.
func FuzzF16RoundTrip(f *testing.F) {
	f.Add(uint16(0x3c00), uint32(0x3f800000)) // 1.0, 1.0
	f.Add(uint16(0x0001), uint32(0x7f7fffff)) // min subnormal, max float32
	f.Add(uint16(0x7c00), uint32(0x7fc00000)) // +Inf, NaN
	f.Add(uint16(0xfbff), uint32(0x00000001)) // -65504, min subnormal f32
	f.Fuzz(func(t *testing.T, h uint16, bits uint32) {
		// Direction 1: every half value must survive f16→f32→f16 exactly
		// (float32 covers the whole half range), except NaNs which need only
		// stay NaN.
		x := F16ToF32(h)
		back := F32ToF16(x)
		if math.IsNaN(float64(x)) {
			if back&0x7c00 != 0x7c00 || back&0x3ff == 0 {
				t.Fatalf("NaN half %#04x came back as %#04x", h, back)
			}
		} else if back != h {
			t.Fatalf("half %#04x -> %v -> %#04x", h, x, back)
		}

		// Direction 2: arbitrary float32 down-conversion stays in class and
		// within half-precision rounding error when finite.
		v := math.Float32frombits(bits)
		g := F16ToF32(F32ToF16(v))
		switch {
		case math.IsNaN(float64(v)):
			if !math.IsNaN(float64(g)) {
				t.Fatalf("NaN %#08x became %v", bits, g)
			}
		case math.IsInf(float64(v), 0):
			if float64(g) != float64(v) {
				t.Fatalf("Inf %v became %v", v, g)
			}
		default:
			if math.IsNaN(float64(g)) {
				t.Fatalf("finite %v became NaN", v)
			}
			av := math.Abs(float64(v))
			if av > 65504 {
				if !math.IsInf(float64(g), 0) && math.Abs(float64(g)) != 65504 {
					// overflow must saturate to Inf (this codec's choice)
					t.Fatalf("overflowing %v became %v", v, g)
				}
			} else if math.Abs(float64(g)-float64(v)) > av/2048+6e-8 {
				t.Fatalf("%v rounds to %v: error beyond half ULP", v, g)
			}
		}
	})
}

// FuzzDGCCompress checks that the compressor tolerates arbitrary finite
// gradients without panicking and always emits sorted, in-range indices.
func FuzzDGCCompress(f *testing.F) {
	f.Add(uint16(8), int16(100), int16(-3))
	f.Add(uint16(1), int16(0), int16(0))
	f.Add(uint16(500), int16(32767), int16(1))
	f.Fuzz(func(t *testing.T, n16 uint16, a, b int16) {
		n := int(n16)%512 + 1
		c := NewCompressor(DGCConfig{Ratio: 0.1, Momentum: 0.9, ClipNorm: 2}, n)
		g := make([]float32, n)
		for i := range g {
			g[i] = float32(a)*0.001 + float32(b)*0.01*float32(i%7)
		}
		sp := c.Compress(g)
		if len(sp.Idx) != len(sp.Val) {
			t.Fatal("idx/val length mismatch")
		}
		prev := int32(-1)
		for _, i := range sp.Idx {
			if i <= prev || int(i) >= n {
				t.Fatalf("indices not sorted/in-range: %v", sp.Idx)
			}
			prev = i
		}
		dense := make([]float32, n)
		if err := Decompress(sp, 1, dense); err != nil {
			t.Fatalf("Decompress rejected compressor output: %v", err)
		}
		// Corrupted payloads must be rejected, not applied or panicked on.
		if len(sp.Idx) > 0 {
			bad := Sparse{Idx: append([]int32(nil), sp.Idx...), Val: sp.Val, Dense: sp.Dense}
			bad.Idx[0] = int32(n) // out of range
			if err := Decompress(bad, 1, dense); err == nil {
				t.Fatal("out-of-range index accepted")
			}
		}
		if len(sp.Idx) > 1 {
			bad := Sparse{Idx: append([]int32(nil), sp.Idx...), Val: sp.Val, Dense: sp.Dense}
			bad.Idx[1] = bad.Idx[0] // duplicate
			if err := Decompress(bad, 1, dense); err == nil {
				t.Fatal("duplicate index accepted")
			}
		}
	})
}
