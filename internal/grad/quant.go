package grad

import (
	"fmt"
	"math"
)

// Quantized8 is an 8-bit uniformly quantized vector: each value is
// reconstructed as Scale·int8. Wire size is one byte per element plus the
// scale — a fixed 4× compression against float32.
type Quantized8 struct {
	Scale float32
	Q     []int8
}

// WireBytes returns the transmitted size (1 byte/element + 4-byte scale).
func (q Quantized8) WireBytes() int64 { return int64(len(q.Q)) + 4 }

// Quantize8 quantizes v to 8 bits with a symmetric per-vector scale chosen
// from the maximum magnitude. The zero vector quantizes to scale 0.
func Quantize8(v []float32) Quantized8 {
	var maxAbs float32
	for _, x := range v {
		a := x
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	q := Quantized8{Q: make([]int8, len(v))}
	if maxAbs == 0 {
		return q
	}
	q.Scale = maxAbs / 127
	inv := 127 / maxAbs
	for i, x := range v {
		r := x * inv
		// round half away from zero, clamp to int8
		var iv int32
		if r >= 0 {
			iv = int32(r + 0.5)
		} else {
			iv = int32(r - 0.5)
		}
		if iv > 127 {
			iv = 127
		}
		if iv < -127 {
			iv = -127
		}
		q.Q[i] = int8(iv)
	}
	return q
}

// Dequantize8 reconstructs the vector into dst. A length mismatch returns a
// validation error (quantized payloads arrive off the wire, so corrupt input
// must be rejectable, not a panic — the Decompress contract).
func Dequantize8(q Quantized8, dst []float32) error {
	if len(dst) != len(q.Q) {
		return fmt.Errorf("grad: dequantize into %d, want %d", len(dst), len(q.Q))
	}
	for i, x := range q.Q {
		dst[i] = q.Scale * float32(x)
	}
	return nil
}

// QuantizeRoundTrip applies the quantize→dequantize loss to v in place —
// what a receiver of the quantized gradient observes. Returns the wire size
// the transfer would need.
func QuantizeRoundTrip(v []float32) int64 {
	q := Quantize8(v)
	for i, x := range q.Q {
		v[i] = q.Scale * float32(x)
	}
	return q.WireBytes()
}

// QuantizedF16 is a half-precision (IEEE 754 binary16) encoded vector: each
// element independently rounded to nearest-even. Wire size is two bytes per
// element — a fixed 2× compression against float32 with ~3 decimal digits
// kept, no per-vector scale needed.
type QuantizedF16 struct {
	H []uint16
}

// WireBytes returns the transmitted size (2 bytes/element).
func (q QuantizedF16) WireBytes() int64 { return int64(len(q.H)) * 2 }

// QuantizeF16 converts v to half precision.
func QuantizeF16(v []float32) QuantizedF16 {
	q := QuantizedF16{H: make([]uint16, len(v))}
	for i, x := range v {
		q.H[i] = F32ToF16(x)
	}
	return q
}

// DequantizeF16 reconstructs the vector into dst. A length mismatch returns
// a validation error, mirroring Dequantize8.
func DequantizeF16(q QuantizedF16, dst []float32) error {
	if len(dst) != len(q.H) {
		return fmt.Errorf("grad: dequantize into %d, want %d", len(dst), len(q.H))
	}
	for i, h := range q.H {
		dst[i] = F16ToF32(h)
	}
	return nil
}

// QuantizeF16RoundTrip applies the fp16 round-trip loss to v in place and
// returns the wire size — the simulator's model of an fp16 transfer.
func QuantizeF16RoundTrip(v []float32) int64 {
	for i, x := range v {
		v[i] = F16ToF32(F32ToF16(x))
	}
	return int64(len(v)) * 2
}

// F32ToF16 converts a float32 to IEEE 754 binary16 with round-to-nearest-
// even. Values beyond the half range become ±Inf; subnormal halves are
// produced for tiny inputs; NaN keeps its top payload bits (forced nonzero
// so it stays a NaN).
func F32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b >> 16 & 0x8000)
	exp := int32(b >> 23 & 0xff)
	m := b & 0x7fffff
	if exp == 0xff { // Inf or NaN
		if m == 0 {
			return sign | 0x7c00
		}
		p := uint16(m >> 13)
		if p == 0 {
			p = 1
		}
		return sign | 0x7c00 | p
	}
	e := exp - 127 + 15
	if e >= 31 { // overflow → Inf
		return sign | 0x7c00
	}
	if e <= 0 { // subnormal half (or zero)
		if e < -10 { // too small for even the smallest subnormal
			return sign
		}
		m |= 0x800000 // make the implicit bit explicit
		shift := uint32(14 - e)
		half := uint32(1) << (shift - 1)
		// round to nearest, ties to even
		return sign | uint16((m+half-1+(m>>shift&1))>>shift)
	}
	// normal: round the 13 dropped mantissa bits to nearest-even; a mantissa
	// carry propagates into the exponent via the additions below, and an
	// exponent carry to 31 lands exactly on the Inf encoding.
	r := m + 0xfff + (m >> 13 & 1)
	out := uint32(e)<<10 + r>>13
	if out >= 0x7c00 {
		return sign | 0x7c00
	}
	return sign | uint16(out)
}

// F16ToF32 converts an IEEE 754 binary16 to float32 (exact).
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	e := uint32(h >> 10 & 0x1f)
	m := uint32(h & 0x3ff)
	switch {
	case e == 0:
		if m == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// subnormal: normalize into a float32 mantissa
		e = 113
		for m&0x400 == 0 {
			m <<= 1
			e--
		}
		return math.Float32frombits(sign | e<<23 | (m&0x3ff)<<13)
	case e == 31:
		return math.Float32frombits(sign | 0x7f800000 | m<<13) // ±Inf / NaN
	default:
		return math.Float32frombits(sign | (e+112)<<23 | m<<13)
	}
}
