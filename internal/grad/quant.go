package grad

import "fmt"

// Quantized8 is an 8-bit uniformly quantized vector: each value is
// reconstructed as Scale·int8. Wire size is one byte per element plus the
// scale — a fixed 4× compression against float32.
type Quantized8 struct {
	Scale float32
	Q     []int8
}

// WireBytes returns the transmitted size (1 byte/element + 4-byte scale).
func (q Quantized8) WireBytes() int64 { return int64(len(q.Q)) + 4 }

// Quantize8 quantizes v to 8 bits with a symmetric per-vector scale chosen
// from the maximum magnitude. The zero vector quantizes to scale 0.
func Quantize8(v []float32) Quantized8 {
	var maxAbs float32
	for _, x := range v {
		a := x
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	q := Quantized8{Q: make([]int8, len(v))}
	if maxAbs == 0 {
		return q
	}
	q.Scale = maxAbs / 127
	inv := 127 / maxAbs
	for i, x := range v {
		r := x * inv
		// round half away from zero, clamp to int8
		var iv int32
		if r >= 0 {
			iv = int32(r + 0.5)
		} else {
			iv = int32(r - 0.5)
		}
		if iv > 127 {
			iv = 127
		}
		if iv < -127 {
			iv = -127
		}
		q.Q[i] = int8(iv)
	}
	return q
}

// Dequantize8 reconstructs the vector into dst (length must match).
func Dequantize8(q Quantized8, dst []float32) {
	if len(dst) != len(q.Q) {
		panic(fmt.Sprintf("grad: dequantize into %d, want %d", len(dst), len(q.Q)))
	}
	for i, x := range q.Q {
		dst[i] = q.Scale * float32(x)
	}
}

// QuantizeRoundTrip applies the quantize→dequantize loss to v in place —
// what a receiver of the quantized gradient observes. Returns the wire size
// the transfer would need.
func QuantizeRoundTrip(v []float32) int64 {
	q := Quantize8(v)
	Dequantize8(q, v)
	return q.WireBytes()
}
