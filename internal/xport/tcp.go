package xport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"disttrain/internal/rng"
)

// Tunables for connection management. Dial retry is generous because peers
// come up concurrently during rendezvous; write retry is bounded so a dead
// peer surfaces as an error instead of an infinite stall.
const (
	dialAttempts  = 40
	dialBackoff   = 100 * time.Millisecond
	dialTimeout   = 2 * time.Second
	writeAttempts = 3
	writeTimeout  = 30 * time.Second
)

// KillWindow kills the sender's connection to a peer (before a write, with
// probability Prob per send) while the wall clock is inside [From, To) of
// the fault epoch. The frame itself is then written on a fresh connection,
// so kills exercise the redial path without losing messages.
type KillWindow struct {
	From, To time.Duration
	Prob     float64
}

// DelayWindow injects latency before every send while inside [From, To):
// the fixed Delay plus, when Factor > 1, (Factor-1) times the plan's slow
// unit — the projection of a simulator slowdown factor onto concrete wall
// time.
type DelayWindow struct {
	From, To time.Duration
	Delay    time.Duration
	Factor   float64
}

// PartitionWindow isolates the ranks in Side from the rest of the mesh
// while inside [From, To): a send crossing the cut first severs the cached
// connection, then blocks until the window closes — TCP loses no
// acknowledged bytes, so a live partition delays traffic rather than
// dropping it.
type PartitionWindow struct {
	From, To time.Duration
	Side     []int
}

// separates reports whether ranks a and b are on opposite sides of the cut.
func (w *PartitionWindow) separates(a, b int) bool {
	var inA, inB bool
	for _, r := range w.Side {
		if r == a {
			inA = true
		}
		if r == b {
			inB = true
		}
	}
	return inA != inB
}

// DefaultSlowUnit is the injected latency per slowdown unit (Factor-1) when
// a FaultPlan does not set its own SlowUnit.
const DefaultSlowUnit = 10 * time.Millisecond

// FaultPlan is the live-path projection of a fault schedule: connection
// kills, send latency, and rank partitions, all windowed on wall time since
// SetEpoch. The kill coin-flips are drawn from a seeded stream so a given
// plan behaves comparably across runs (wall-clock timing still varies).
type FaultPlan struct {
	Seed uint64
	// SlowUnit is the latency one slowdown unit (Factor-1) maps onto; 0
	// means DefaultSlowUnit.
	SlowUnit   time.Duration
	Kills      []KillWindow
	Delays     []DelayWindow
	Partitions []PartitionWindow
}

// slowUnit resolves the configured slow unit, applying the default.
func (p *FaultPlan) slowUnit() time.Duration {
	if p.SlowUnit > 0 {
		return p.SlowUnit
	}
	return DefaultSlowUnit
}

// delayFor is the total injected latency of one delay window: the fixed
// delay plus the factor-scaled slow unit.
func (w *DelayWindow) delayFor(unit time.Duration) time.Duration {
	d := w.Delay
	if w.Factor > 1 {
		d += time.Duration((w.Factor - 1) * float64(unit))
	}
	return d
}

// Stats counts transport-level events; read a snapshot via TCPNet.Stats.
type Stats struct {
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
	Redials, Kills         int64
	DelayNanos             int64
	// Partitioned counts sends that blocked on an active partition window.
	Partitioned int64
}

// TCPNet is an Endpoint over real TCP sockets: one listener per rank, a
// lazily dialed outbound connection per peer, and an accept loop that
// merges every inbound stream into one Recv queue.
type TCPNet struct {
	rank int
	size int

	ln    net.Listener
	inbox chan Frame

	mu    sync.Mutex // guards conns
	conns []net.Conn // outbound, lazily dialed, indexed by peer rank
	peers []string   // peer addresses, indexed by rank

	faultMu  sync.Mutex
	plan     *FaultPlan
	epoch    time.Time
	faultRNG *rng.RNG

	closeOnce sync.Once
	closed    chan struct{}

	stats struct {
		framesSent, framesRecv atomic.Int64
		bytesSent, bytesRecv   atomic.Int64
		redials, kills         atomic.Int64
		delayNanos             atomic.Int64
		partitioned            atomic.Int64
	}
}

// ListenTCP creates rank's endpoint of an n-rank mesh, listening on addr
// (use "127.0.0.1:0" for an OS-assigned loopback port). Peer addresses
// arrive later via SetPeers — rendezvous distributes them — so Send before
// SetPeers fails.
func ListenTCP(rank, n int, addr string) (*TCPNet, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("xport: listen %s: %w", addr, err)
	}
	t := &TCPNet{
		rank:   rank,
		size:   n,
		ln:     ln,
		inbox:  make(chan Frame, inboxCap),
		conns:  make([]net.Conn, n),
		closed: make(chan struct{}),
	}
	go t.acceptLoop()
	return t, nil
}

// Addr is the listener's resolved address (for rendezvous exchange).
func (t *TCPNet) Addr() string { return t.ln.Addr().String() }

// SetPeers installs the rank → address table. Must be called before the
// first Send; addrs[t.Rank()] is ignored.
func (t *TCPNet) SetPeers(addrs []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers = append([]string(nil), addrs...)
}

// SetFaults installs a fault plan whose windows are measured from epoch.
// Pass a nil plan to clear.
func (t *TCPNet) SetFaults(plan *FaultPlan, epoch time.Time) {
	t.faultMu.Lock()
	defer t.faultMu.Unlock()
	t.plan = plan
	t.epoch = epoch
	if plan != nil {
		t.faultRNG = rng.New(plan.Seed ^ 0x11feed*uint64(t.rank+1))
	}
}

// Stats returns a snapshot of the transport counters.
func (t *TCPNet) Stats() Stats {
	return Stats{
		FramesSent:  t.stats.framesSent.Load(),
		FramesRecv:  t.stats.framesRecv.Load(),
		BytesSent:   t.stats.bytesSent.Load(),
		BytesRecv:   t.stats.bytesRecv.Load(),
		Redials:     t.stats.redials.Load(),
		Kills:       t.stats.kills.Load(),
		DelayNanos:  t.stats.delayNanos.Load(),
		Partitioned: t.stats.partitioned.Load(),
	}
}

func (t *TCPNet) Rank() int { return t.rank }
func (t *TCPNet) Size() int { return t.size }

func (t *TCPNet) Send(to int, f *Frame) error {
	if to < 0 || to >= t.size {
		return fmt.Errorf("xport: send to rank %d outside mesh of %d", to, t.size)
	}
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	t.applyFaults(to)
	buf := f.AppendEncode(make([]byte, 0, f.EncodedLen()))
	var lastErr error
	for attempt := 0; attempt < writeAttempts; attempt++ {
		conn, err := t.peerConn(to)
		if err != nil {
			return err
		}
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		if _, err := conn.Write(buf); err == nil {
			t.stats.framesSent.Add(1)
			t.stats.bytesSent.Add(int64(len(buf)))
			return nil
		} else {
			lastErr = err
		}
		t.dropConn(to, conn)
		t.stats.redials.Add(1)
	}
	return fmt.Errorf("xport: send to rank %d failed after %d attempts: %w", to, writeAttempts, lastErr)
}

// applyFaults runs the send through the active fault plan: a partition
// block first (sever the cached connection, then wait out the window),
// injected latency next, then a possible connection kill. The kill closes
// the outbound conn so the frame that follows is written on a redialed one
// — the message is never lost, the reconnect machinery is what gets
// exercised.
func (t *TCPNet) applyFaults(to int) {
	t.faultMu.Lock()
	plan, epoch := t.plan, t.epoch
	var kill bool
	if plan != nil {
		since := time.Since(epoch)
		for i := range plan.Partitions {
			w := &plan.Partitions[i]
			if since >= w.From && since < w.To && w.separates(t.rank, to) {
				remain := w.To - since
				t.faultMu.Unlock()
				t.DropPeer(to)
				t.stats.partitioned.Add(1)
				time.Sleep(remain)
				t.faultMu.Lock()
				since = time.Since(epoch)
			}
		}
		unit := plan.slowUnit()
		for i := range plan.Delays {
			w := &plan.Delays[i]
			if d := w.delayFor(unit); since >= w.From && since < w.To && d > 0 {
				t.faultMu.Unlock()
				time.Sleep(d)
				t.stats.delayNanos.Add(int64(d))
				t.faultMu.Lock()
				since = time.Since(epoch)
			}
		}
		for _, w := range plan.Kills {
			if since >= w.From && since < w.To && t.faultRNG.Bernoulli(w.Prob) {
				kill = true
			}
		}
	}
	t.faultMu.Unlock()
	if kill {
		t.mu.Lock()
		if c := t.conns[to]; c != nil {
			c.Close()
			t.conns[to] = nil
			t.stats.kills.Add(1)
		}
		t.mu.Unlock()
	}
}

// DropPeer discards the cached outbound connection to a peer so the next
// send redials. Callers that know a peer restarted (and so holds a fresh
// listener on the same address) use this to keep a write from landing on a
// half-closed socket and being silently lost.
func (t *TCPNet) DropPeer(to int) {
	if to < 0 || to >= t.size {
		return
	}
	t.mu.Lock()
	if c := t.conns[to]; c != nil {
		c.Close()
		t.conns[to] = nil
	}
	t.mu.Unlock()
}

// peerConn returns the outbound connection to a peer, dialing it if absent.
// Dial retries cover the rendezvous window where peers start concurrently.
func (t *TCPNet) peerConn(to int) (net.Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.conns[to]; c != nil {
		return c, nil
	}
	if t.peers == nil {
		return nil, fmt.Errorf("xport: rank %d has no peer table (SetPeers not called)", t.rank)
	}
	addr := t.peers[to]
	var lastErr error
	for attempt := 0; attempt < dialAttempts; attempt++ {
		select {
		case <-t.closed:
			return nil, ErrClosed
		default:
		}
		c, err := net.DialTimeout("tcp", addr, dialTimeout)
		if err == nil {
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetNoDelay(true)
			}
			t.conns[to] = c
			return c, nil
		}
		lastErr = err
		time.Sleep(dialBackoff)
	}
	return nil, fmt.Errorf("xport: dial rank %d (%s): %w", to, addr, lastErr)
}

// dropConn discards a broken outbound connection so the next attempt
// redials — but only if it is still the registered one (a concurrent
// sender may already have replaced it).
func (t *TCPNet) dropConn(to int, c net.Conn) {
	t.mu.Lock()
	if t.conns[to] == c {
		c.Close()
		t.conns[to] = nil
	}
	t.mu.Unlock()
}

func (t *TCPNet) Recv(timeout time.Duration) (Frame, error) {
	if timeout <= 0 {
		select {
		case f := <-t.inbox:
			return f, nil
		case <-t.closed:
			return Frame{}, ErrClosed
		}
	}
	tm := time.NewTimer(timeout)
	defer tm.Stop()
	select {
	case f := <-t.inbox:
		return f, nil
	case <-t.closed:
		return Frame{}, ErrClosed
	case <-tm.C:
		return Frame{}, ErrTimeout
	}
}

func (t *TCPNet) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go t.readLoop(conn)
	}
}

// readLoop decodes frames off one inbound connection into the shared
// inbox. A decode error or peer disconnect ends the stream; the peer's
// sender redials, producing a fresh inbound connection.
func (t *TCPNet) readLoop(conn net.Conn) {
	defer conn.Close()
	for {
		f, err := ReadFrame(conn, MaxFrameBytes)
		if err != nil {
			return
		}
		t.stats.framesRecv.Add(1)
		t.stats.bytesRecv.Add(int64(f.EncodedLen()))
		select {
		case t.inbox <- f:
		case <-t.closed:
			return
		}
	}
}

// Close shuts the listener and all connections; pending Recvs get
// ErrClosed.
func (t *TCPNet) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		t.ln.Close()
		t.mu.Lock()
		for i, c := range t.conns {
			if c != nil {
				c.Close()
				t.conns[i] = nil
			}
		}
		t.mu.Unlock()
	})
	return nil
}
