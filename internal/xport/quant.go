package xport

import (
	"encoding/binary"
	"fmt"
	"math"
)

// QuantCodec identifies a compressed-vector encoding carried in a frame's
// Data blob. The frame wire format itself is unchanged: a quantized payload
// is a Data section in an ordinary frame (Vec left empty), so old readers
// reject nothing at the framing layer and the CRC still covers the payload.
type QuantCodec uint8

const (
	// QuantInt8 is the symmetric 8-bit encoding of grad.Quantized8:
	// value = Scale·int8, one byte per element plus the scale.
	QuantInt8 QuantCodec = 1
	// QuantF16 is IEEE 754 binary16, two bytes per element, no scale.
	QuantF16 QuantCodec = 2
)

// QuantVec is a quantized float vector in wire form. Exactly one of I8/H16
// is populated, matching Codec; Scale is meaningful for QuantInt8 only.
//
// Wire layout (inside Frame.Data, little-endian):
//
//	codec uint8 | n uint32 | scale float32 | payload
//	  QuantInt8: payload = n bytes (int8)
//	  QuantF16:  payload = 2n bytes (uint16)
//
// The explicit element count is validated against the remaining length so a
// corrupted blob is rejected before any allocation larger than its actual
// size.
type QuantVec struct {
	Codec QuantCodec
	Scale float32
	I8    []int8
	H16   []uint16
}

const quantHeaderLen = 1 + 4 + 4

// Len returns the number of float elements the vector decodes to.
func (q *QuantVec) Len() int {
	if q.Codec == QuantF16 {
		return len(q.H16)
	}
	return len(q.I8)
}

// EncodedLen returns the wire size of the quantized payload.
func (q *QuantVec) EncodedLen() int {
	if q.Codec == QuantF16 {
		return quantHeaderLen + 2*len(q.H16)
	}
	return quantHeaderLen + len(q.I8)
}

// AppendEncode appends the wire encoding to dst and returns the result.
func (q *QuantVec) AppendEncode(dst []byte) []byte {
	dst = append(dst, byte(q.Codec))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(q.Len()))
	dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(q.Scale))
	switch q.Codec {
	case QuantF16:
		for _, h := range q.H16 {
			dst = binary.LittleEndian.AppendUint16(dst, h)
		}
	default:
		for _, v := range q.I8 {
			dst = append(dst, byte(v))
		}
	}
	return dst
}

// DecodeQuantVec decodes a quantized payload produced by AppendEncode.
// Malformed input — unknown codec, element count inconsistent with the blob
// length — yields an error, never a panic, and never an allocation beyond
// the blob's own size.
func DecodeQuantVec(data []byte) (QuantVec, error) {
	if len(data) < quantHeaderLen {
		return QuantVec{}, fmt.Errorf("xport: quant payload %d bytes, need at least %d", len(data), quantHeaderLen)
	}
	q := QuantVec{
		Codec: QuantCodec(data[0]),
		Scale: math.Float32frombits(binary.LittleEndian.Uint32(data[5:9])),
	}
	n := int(binary.LittleEndian.Uint32(data[1:5]))
	rest := data[quantHeaderLen:]
	switch q.Codec {
	case QuantInt8:
		if n != len(rest) {
			return QuantVec{}, fmt.Errorf("xport: int8 quant count %d inconsistent with %d payload bytes", n, len(rest))
		}
		q.I8 = make([]int8, n)
		for i, b := range rest {
			q.I8[i] = int8(b)
		}
	case QuantF16:
		if 2*n != len(rest) {
			return QuantVec{}, fmt.Errorf("xport: f16 quant count %d inconsistent with %d payload bytes", n, len(rest))
		}
		q.H16 = make([]uint16, n)
		for i := range q.H16 {
			q.H16[i] = binary.LittleEndian.Uint16(rest[2*i : 2*i+2])
		}
	default:
		return QuantVec{}, fmt.Errorf("xport: unknown quant codec %d", q.Codec)
	}
	return q, nil
}
