package xport

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"reflect"
	"testing"
)

func sampleFrames() []Frame {
	return []Frame{
		{},
		{Kind: 7, From: 3, Clock: 42, Seg: -1, Aux: 0.5},
		{Kind: 1, From: -1, Clock: 1 << 30, Vec: []float32{1, -2.5, float32(math.Inf(1)), 0}},
		{Kind: 2, Idx: []int32{0, 5, -3}, Vec: []float32{3.25}, Data: []byte("hello")},
		{Kind: 65535, Aux: math.Inf(-1), Data: make([]byte, 300)},
		{Kind: 9, Vec: []float32{float32(math.NaN())}},
	}
}

func framesEqual(a, b Frame) bool {
	// NaN-safe comparison: compare float payloads bitwise.
	if a.Kind != b.Kind || a.From != b.From || a.Clock != b.Clock || a.Seg != b.Seg {
		return false
	}
	if math.Float64bits(a.Aux) != math.Float64bits(b.Aux) {
		return false
	}
	if !reflect.DeepEqual(a.Idx, b.Idx) || !bytes.Equal(a.Data, b.Data) {
		return false
	}
	if len(a.Vec) != len(b.Vec) {
		return false
	}
	for i := range a.Vec {
		if math.Float32bits(a.Vec[i]) != math.Float32bits(b.Vec[i]) {
			return false
		}
	}
	return true
}

func TestFrameRoundTrip(t *testing.T) {
	for i, f := range sampleFrames() {
		buf := f.AppendEncode(nil)
		if len(buf) != f.EncodedLen() {
			t.Errorf("frame %d: encoded %d bytes, EncodedLen says %d", i, len(buf), f.EncodedLen())
		}
		got, err := DecodeFrame(buf, 0)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		// Decode normalizes empty slices to nil; do the same for comparison.
		want := f
		if len(want.Idx) == 0 {
			want.Idx = nil
		}
		if len(want.Vec) == 0 {
			want.Vec = nil
		}
		if len(want.Data) == 0 {
			want.Data = nil
		}
		if !framesEqual(got, want) {
			t.Errorf("frame %d: round-trip mismatch\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestFrameStream(t *testing.T) {
	// Several frames back to back on one stream, then clean EOF.
	var buf bytes.Buffer
	frames := sampleFrames()
	for i := range frames {
		if err := WriteFrame(&buf, &frames[i]); err != nil {
			t.Fatalf("write frame %d: %v", i, err)
		}
	}
	for i := range frames {
		if _, err := ReadFrame(&buf, 0); err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("end of stream: got %v, want io.EOF", err)
	}
}

func TestDecodeRejects(t *testing.T) {
	good := (&Frame{Kind: 3, Vec: []float32{1, 2}}).AppendEncode(nil)
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"truncated prelude", good[:5]},
		{"truncated payload", good[:len(good)-3]},
		{"bad magic", append([]byte{0, 0}, good[2:]...)},
		{"flipped payload byte", flipByte(good, preludeLen+1)},
		{"flipped crc byte", flipByte(good, 7)},
		{"undersized length", patchLen(good, 4)},
		{"oversized length", patchLen(good, MaxFrameBytes+1)},
		{"length past end", patchLen(good, fixedPayLen+1024)},
	}
	for _, tc := range cases {
		if _, err := DecodeFrame(tc.buf, 0); err == nil {
			t.Errorf("%s: decode accepted malformed input", tc.name)
		}
	}
}

func TestDecodeRejectsInconsistentSections(t *testing.T) {
	// Claimed section counts must reconcile exactly with the payload
	// length; forge a count and fix up the CRC so only the consistency
	// check can catch it.
	buf := (&Frame{Kind: 1, Vec: []float32{1, 2, 3}}).AppendEncode(nil)
	binary.LittleEndian.PutUint32(buf[preludeLen+26:], 99) // nVec = 99
	binary.LittleEndian.PutUint32(buf[6:10], crc32.ChecksumIEEE(buf[preludeLen:]))
	if _, err := DecodeFrame(buf, 0); err == nil {
		t.Fatal("decode accepted inconsistent section counts")
	}
	// Huge counts whose 4*n arithmetic would overflow naive math.
	buf2 := (&Frame{Kind: 1}).AppendEncode(nil)
	binary.LittleEndian.PutUint32(buf2[preludeLen+22:], 0xFFFFFFFF)
	binary.LittleEndian.PutUint32(buf2[6:10], crc32.ChecksumIEEE(buf2[preludeLen:]))
	if _, err := DecodeFrame(buf2, 0); err == nil {
		t.Fatal("decode accepted overflowing section count")
	}
}

func TestReadFrameRespectsMax(t *testing.T) {
	f := Frame{Vec: make([]float32, 100)}
	buf := f.AppendEncode(nil)
	if _, err := DecodeFrame(buf, fixedPayLen+40); err == nil {
		t.Fatal("decode accepted frame above the caller's max")
	}
	if _, err := DecodeFrame(buf, fixedPayLen+400); err != nil {
		t.Fatalf("decode rejected frame under the caller's max: %v", err)
	}
}

func flipByte(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0x40
	return c
}

func patchLen(b []byte, n int) []byte {
	c := append([]byte(nil), b...)
	binary.LittleEndian.PutUint32(c[2:6], uint32(n))
	return c
}

// FuzzDecodeFrame feeds arbitrary bytes to the decoder. The contract under
// fuzz: every input returns normally — an error or a frame — with no
// panic, no hang, and no allocation driven by an unvalidated length field.
func FuzzDecodeFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		f.Add(fr.AppendEncode(nil))
	}
	// Control-plane shapes from the live rendezvous protocol: heartbeat
	// (108, progress in Clock), rejoin (109, config fingerprint in Data),
	// and rejoin-ok (110, peer list in Data, elapsed seconds in Aux).
	f.Add((&Frame{Kind: 108, From: 2, Clock: 17}).AppendEncode(nil))
	f.Add((&Frame{Kind: 109, From: 1, Data: []byte("fp:bsp/4/42")}).AppendEncode(nil))
	f.Add((&Frame{Kind: 110, Aux: 1.75,
		Data: []byte(`["127.0.0.1:1","127.0.0.1:2"]`)}).AppendEncode(nil))
	// Quantized gradient frames: int8 and f16 QuantVec blobs in Data.
	f.Add((&Frame{Kind: 1, From: 1, Clock: 5,
		Data: (&QuantVec{Codec: QuantInt8, Scale: 0.25, I8: []int8{-127, 0, 64}}).AppendEncode(nil)}).AppendEncode(nil))
	f.Add((&Frame{Kind: 8, From: 0, Clock: 2, Seg: 1,
		Data: (&QuantVec{Codec: QuantF16, H16: []uint16{0x3c00, 0xbc00}}).AppendEncode(nil)}).AppendEncode(nil))
	good := (&Frame{Kind: 3, Vec: []float32{1, 2}}).AppendEncode(nil)
	f.Add(good[:5])                          // truncated header
	f.Add(flipByte(good, 7))                 // bad CRC
	f.Add(patchLen(good, MaxFrameBytes+1))   // oversized length
	f.Add(patchLen(good, fixedPayLen+4<<20)) // length far past end
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data, 1<<20)
		if err != nil {
			return
		}
		// Anything accepted must re-encode and decode to the same frame.
		again, err := DecodeFrame(fr.AppendEncode(nil), 0)
		if err != nil {
			t.Fatalf("accepted frame failed re-decode: %v", err)
		}
		if !framesEqual(fr, again) {
			t.Fatalf("re-encode changed frame: %+v vs %+v", fr, again)
		}
	})
}
