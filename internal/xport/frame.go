// Package xport is the live transport layer: typed message frames with a
// length-prefixed, CRC-checked binary encoding, and endpoint backends that
// carry them — an in-process channel transport for tests and single-binary
// harnesses, and a TCP transport for real multi-process runs.
//
// Where internal/simnet moves messages through the deterministic
// discrete-event simulator, xport moves the same logical messages over a
// real wire: framing, socket backpressure, connection setup and peer
// failures all happen for real. internal/live builds the distributed
// training algorithms' collectives on top of these endpoints.
package xport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Frame is one typed message between ranks. The field set is the union of
// what the seven algorithms' messages carry (mirroring simnet.Msg): a kind
// tag, the sender's rank, a round clock, a segment/chunk index, one scalar
// (gossip weights), a float payload, sparse indices, and an opaque byte
// blob for control-plane payloads (rendezvous addresses, metric digests).
type Frame struct {
	Kind  uint16
	From  int32
	Clock int32
	Seg   int32
	Aux   float64
	Idx   []int32
	Vec   []float32
	Data  []byte
}

// Wire format: a fixed prelude followed by the payload.
//
//	magic   uint16  (frameMagic)
//	length  uint32  (payload bytes)
//	crc32   uint32  (IEEE, over the payload)
//	payload:
//	  kind uint16 | from int32 | clock int32 | seg int32 | aux float64
//	  nIdx uint32 | nVec uint32 | nData uint32
//	  idx []int32 | vec []float32 | data []byte
//
// All integers are little-endian. The length prefix lets a reader skip or
// reject a frame without parsing it; the CRC rejects corruption before any
// field is trusted.
const (
	frameMagic  = 0xD7A1
	preludeLen  = 2 + 4 + 4
	fixedPayLen = 2 + 4 + 4 + 4 + 8 + 4 + 4 + 4

	// MaxFrameBytes bounds the payload length a reader accepts. A hostile
	// or corrupted length prefix must never make the decoder allocate
	// unbounded memory.
	MaxFrameBytes = 64 << 20
)

// EncodedLen returns the full wire size of the frame.
func (f *Frame) EncodedLen() int {
	return preludeLen + fixedPayLen + 4*len(f.Idx) + 4*len(f.Vec) + len(f.Data)
}

// AppendEncode appends the encoded frame to dst and returns the result.
func (f *Frame) AppendEncode(dst []byte) []byte {
	payLen := fixedPayLen + 4*len(f.Idx) + 4*len(f.Vec) + len(f.Data)
	start := len(dst)
	dst = binary.LittleEndian.AppendUint16(dst, frameMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payLen))
	dst = binary.LittleEndian.AppendUint32(dst, 0) // CRC backfilled below
	payStart := len(dst)
	dst = binary.LittleEndian.AppendUint16(dst, f.Kind)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.From))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Clock))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(f.Seg))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Aux))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Idx)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Vec)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Data)))
	for _, v := range f.Idx {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
	}
	for _, v := range f.Vec {
		dst = binary.LittleEndian.AppendUint32(dst, math.Float32bits(v))
	}
	dst = append(dst, f.Data...)
	crc := crc32.ChecksumIEEE(dst[payStart:])
	binary.LittleEndian.PutUint32(dst[start+6:start+10], crc)
	return dst
}

// WriteFrame encodes f and writes it to w in one Write call.
func WriteFrame(w io.Writer, f *Frame) error {
	buf := f.AppendEncode(make([]byte, 0, f.EncodedLen()))
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads and decodes one frame from r. maxBytes bounds the
// accepted payload length (0 means MaxFrameBytes). Malformed input — a bad
// magic, an oversized or undersized length, a CRC mismatch, section counts
// inconsistent with the length — yields an error, never a panic; a
// truncated stream yields io.ErrUnexpectedEOF (or io.EOF on a clean
// boundary).
func ReadFrame(r io.Reader, maxBytes int) (Frame, error) {
	if maxBytes <= 0 {
		maxBytes = MaxFrameBytes
	}
	var prelude [preludeLen]byte
	if _, err := io.ReadFull(r, prelude[:1]); err != nil {
		return Frame{}, err // clean EOF at a frame boundary stays io.EOF
	}
	if _, err := io.ReadFull(r, prelude[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if magic := binary.LittleEndian.Uint16(prelude[0:2]); magic != frameMagic {
		return Frame{}, fmt.Errorf("xport: bad frame magic %#04x", magic)
	}
	payLen := int(binary.LittleEndian.Uint32(prelude[2:6]))
	wantCRC := binary.LittleEndian.Uint32(prelude[6:10])
	if payLen < fixedPayLen {
		return Frame{}, fmt.Errorf("xport: frame payload %d bytes, need at least %d", payLen, fixedPayLen)
	}
	if payLen > maxBytes {
		return Frame{}, fmt.Errorf("xport: frame payload %d bytes exceeds limit %d", payLen, maxBytes)
	}
	payload := make([]byte, payLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if crc := crc32.ChecksumIEEE(payload); crc != wantCRC {
		return Frame{}, fmt.Errorf("xport: frame CRC mismatch (got %#08x, want %#08x)", crc, wantCRC)
	}
	return decodePayload(payload)
}

// DecodeFrame decodes one frame from the start of buf (prelude included).
// It is ReadFrame over an in-memory buffer, sharing the same validation.
func DecodeFrame(buf []byte, maxBytes int) (Frame, error) {
	return ReadFrame(bytes.NewReader(buf), maxBytes)
}

func decodePayload(payload []byte) (Frame, error) {
	var f Frame
	f.Kind = binary.LittleEndian.Uint16(payload[0:2])
	f.From = int32(binary.LittleEndian.Uint32(payload[2:6]))
	f.Clock = int32(binary.LittleEndian.Uint32(payload[6:10]))
	f.Seg = int32(binary.LittleEndian.Uint32(payload[10:14]))
	f.Aux = math.Float64frombits(binary.LittleEndian.Uint64(payload[14:22]))
	nIdx := int(binary.LittleEndian.Uint32(payload[22:26]))
	nVec := int(binary.LittleEndian.Uint32(payload[26:30]))
	nData := int(binary.LittleEndian.Uint32(payload[30:34]))
	// Counts are attacker-controlled until proven consistent with the CRC'd
	// length; 4*n arithmetic must not overflow before the check.
	rest := len(payload) - fixedPayLen
	if nIdx < 0 || nVec < 0 || nData < 0 ||
		nIdx > rest/4 || nVec > rest/4 || nData > rest ||
		4*nIdx+4*nVec+nData != rest {
		return Frame{}, fmt.Errorf("xport: frame sections (%d idx, %d vec, %d data) inconsistent with payload %d",
			nIdx, nVec, nData, len(payload))
	}
	off := fixedPayLen
	if nIdx > 0 {
		f.Idx = make([]int32, nIdx)
		for i := range f.Idx {
			f.Idx[i] = int32(binary.LittleEndian.Uint32(payload[off : off+4]))
			off += 4
		}
	}
	if nVec > 0 {
		f.Vec = make([]float32, nVec)
		for i := range f.Vec {
			f.Vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[off : off+4]))
			off += 4
		}
	}
	if nData > 0 {
		f.Data = append([]byte(nil), payload[off:off+nData]...)
	}
	return f, nil
}
