package xport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// tcpMesh spins up an n-rank loopback mesh with peer tables installed.
func tcpMesh(t *testing.T, n int) []*TCPNet {
	t.Helper()
	eps := make([]*TCPNet, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen rank %d: %v", i, err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
		t.Cleanup(func() { ep.Close() })
	}
	for _, ep := range eps {
		ep.SetPeers(addrs)
	}
	return eps
}

func TestTCPBasicExchange(t *testing.T) {
	eps := tcpMesh(t, 2)
	want := Frame{Kind: 5, From: 0, Clock: 3, Vec: []float32{1, 2, 3}, Data: []byte("x")}
	if err := eps[0].Send(1, &want); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := eps[1].Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !framesEqual(got, want) {
		t.Fatalf("frame mismatch: got %+v want %+v", got, want)
	}
}

func TestTCPAllToAll(t *testing.T) {
	const n, per = 4, 25
	eps := tcpMesh(t, n)
	var wg sync.WaitGroup
	for i := range eps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				for j := range eps {
					if j == i {
						continue
					}
					f := Frame{Kind: 1, From: int32(i), Clock: int32(k), Vec: []float32{float32(i), float32(k)}}
					if err := eps[i].Send(j, &f); err != nil {
						t.Errorf("send %d->%d: %v", i, j, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i := range eps {
		seen := map[string]bool{}
		for k := 0; k < per*(n-1); k++ {
			f, err := eps[i].Recv(5 * time.Second)
			if err != nil {
				t.Fatalf("rank %d recv %d: %v", i, k, err)
			}
			key := fmt.Sprintf("%d/%d", f.From, f.Clock)
			if seen[key] {
				t.Fatalf("rank %d saw duplicate frame %s", i, key)
			}
			seen[key] = true
		}
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	eps := tcpMesh(t, 2)
	if _, err := eps[0].Recv(30 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

func TestTCPKilledConnectionRedials(t *testing.T) {
	eps := tcpMesh(t, 2)
	// Always-on kill window: every send first murders the outbound conn,
	// then must redial and still deliver. No frame may be lost.
	eps[0].SetFaults(&FaultPlan{
		Seed:  7,
		Kills: []KillWindow{{From: 0, To: time.Hour, Prob: 1}},
	}, time.Now())
	const msgs = 10
	for k := 0; k < msgs; k++ {
		f := Frame{Kind: 2, Clock: int32(k)}
		if err := eps[0].Send(1, &f); err != nil {
			t.Fatalf("send %d under kill plan: %v", k, err)
		}
	}
	// Every send rides a fresh connection and the receiver's per-connection
	// readers race into the shared inbox, so arrival order across redials is
	// not guaranteed — delivery (no loss, no duplication) is the contract.
	got := map[int32]bool{}
	for k := 0; k < msgs; k++ {
		f, err := eps[1].Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", k, err)
		}
		if got[f.Clock] {
			t.Fatalf("duplicate delivery of clock %d", f.Clock)
		}
		got[f.Clock] = true
	}
	for k := int32(0); k < msgs; k++ {
		if !got[k] {
			t.Fatalf("frame with clock %d lost", k)
		}
	}
	if kills := eps[0].Stats().Kills; kills < msgs-1 {
		t.Fatalf("expected >= %d connection kills, got %d", msgs-1, kills)
	}
}

func TestTCPDelayWindow(t *testing.T) {
	eps := tcpMesh(t, 2)
	const d = 20 * time.Millisecond
	eps[0].SetFaults(&FaultPlan{
		Delays: []DelayWindow{{From: 0, To: time.Hour, Delay: d}},
	}, time.Now())
	start := time.Now()
	f := Frame{Kind: 1}
	if err := eps[0].Send(1, &f); err != nil {
		t.Fatalf("send: %v", err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("send returned after %v, want >= %v of injected latency", elapsed, d)
	}
	if _, err := eps[1].Recv(5 * time.Second); err != nil {
		t.Fatalf("recv: %v", err)
	}
}

// TestSlowUnitDefault pins the slow-unit contract: a factor-F window with
// no explicit delay injects (F-1) slow units per send, one unit being
// DefaultSlowUnit (10ms) unless the plan overrides it, and a fixed Delay
// stacks on top of the factor term.
func TestSlowUnitDefault(t *testing.T) {
	if DefaultSlowUnit != 10*time.Millisecond {
		t.Fatalf("DefaultSlowUnit = %v, want 10ms", DefaultSlowUnit)
	}
	cases := []struct {
		name string
		plan FaultPlan
		win  DelayWindow
		want time.Duration
	}{
		{"factor 3 default unit", FaultPlan{}, DelayWindow{Factor: 3}, 20 * time.Millisecond},
		{"factor 3 custom unit", FaultPlan{SlowUnit: time.Millisecond}, DelayWindow{Factor: 3}, 2 * time.Millisecond},
		{"factor 1 is free", FaultPlan{}, DelayWindow{Factor: 1}, 0},
		{"delay stacks on factor", FaultPlan{SlowUnit: 5 * time.Millisecond},
			DelayWindow{Delay: 7 * time.Millisecond, Factor: 2}, 12 * time.Millisecond},
		{"plain delay unaffected by unit", FaultPlan{SlowUnit: time.Hour},
			DelayWindow{Delay: 3 * time.Millisecond}, 3 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := tc.win.delayFor(tc.plan.slowUnit()); got != tc.want {
			t.Errorf("%s: delayFor = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestTCPSlowFactorDelays drives a factor-only window through a real send:
// the injected latency is (Factor-1) slow units with the plan's unit.
func TestTCPSlowFactorDelays(t *testing.T) {
	eps := tcpMesh(t, 2)
	const unit = 10 * time.Millisecond
	eps[0].SetFaults(&FaultPlan{
		SlowUnit: unit,
		Delays:   []DelayWindow{{From: 0, To: time.Hour, Factor: 3}},
	}, time.Now())
	start := time.Now()
	f := Frame{Kind: 1}
	if err := eps[0].Send(1, &f); err != nil {
		t.Fatalf("send: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 2*unit {
		t.Fatalf("factor-3 send returned after %v, want >= %v", elapsed, 2*unit)
	}
	if _, err := eps[1].Recv(5 * time.Second); err != nil {
		t.Fatalf("recv: %v", err)
	}
	if eps[0].Stats().DelayNanos < int64(2*unit) {
		t.Fatalf("DelayNanos = %d, want >= %d", eps[0].Stats().DelayNanos, int64(2*unit))
	}
}

// TestPartitionWindowSeparates pins the cut geometry: only pairs straddling
// Side are severed.
func TestPartitionWindowSeparates(t *testing.T) {
	w := PartitionWindow{Side: []int{2, 3}}
	cases := []struct {
		a, b int
		want bool
	}{
		{0, 2, true}, {3, 1, true}, {2, 3, false}, {0, 1, false}, {2, 2, false},
	}
	for _, tc := range cases {
		if got := w.separates(tc.a, tc.b); got != tc.want {
			t.Errorf("separates(%d,%d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestTCPPartitionStallsCrossCut puts ranks {0} and {1} on opposite sides
// of a live partition window: the cross-cut send blocks until the window
// closes (counted in Stats.Partitioned), then delivers — nothing is lost.
func TestTCPPartitionStallsCrossCut(t *testing.T) {
	eps := tcpMesh(t, 2)
	const width = 60 * time.Millisecond
	eps[0].SetFaults(&FaultPlan{
		Partitions: []PartitionWindow{{From: 0, To: width, Side: []int{1}}},
	}, time.Now())
	start := time.Now()
	f := Frame{Kind: 1, Clock: 7}
	if err := eps[0].Send(1, &f); err != nil {
		t.Fatalf("send across partition: %v", err)
	}
	if elapsed := time.Since(start); elapsed < width/2 {
		t.Fatalf("cross-cut send returned after %v, want a stall near %v", elapsed, width)
	}
	got, err := eps[1].Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("recv after partition healed: %v", err)
	}
	if got.Clock != 7 {
		t.Fatalf("wrong frame after heal: %+v", got)
	}
	if eps[0].Stats().Partitioned == 0 {
		t.Fatal("Stats.Partitioned did not count the stalled send")
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	eps := tcpMesh(t, 2)
	done := make(chan error, 1)
	go func() {
		_, err := eps[0].Recv(0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	eps[0].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestChanNetExchange(t *testing.T) {
	net := NewChanNet(3)
	want := Frame{Kind: 4, From: 2, Vec: []float32{9}}
	if err := net.Endpoint(2).Send(0, &want); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := net.Endpoint(0).Recv(time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !framesEqual(got, want) {
		t.Fatalf("frame mismatch: got %+v want %+v", got, want)
	}
	if err := net.Endpoint(0).Send(5, &want); err == nil {
		t.Fatal("send to out-of-range rank succeeded")
	}
	net.Endpoint(1).Close()
	if err := net.Endpoint(0).Send(1, &want); err == nil {
		t.Fatal("send to closed endpoint succeeded")
	}
}
