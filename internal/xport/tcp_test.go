package xport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// tcpMesh spins up an n-rank loopback mesh with peer tables installed.
func tcpMesh(t *testing.T, n int) []*TCPNet {
	t.Helper()
	eps := make([]*TCPNet, n)
	addrs := make([]string, n)
	for i := range eps {
		ep, err := ListenTCP(i, n, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen rank %d: %v", i, err)
		}
		eps[i] = ep
		addrs[i] = ep.Addr()
		t.Cleanup(func() { ep.Close() })
	}
	for _, ep := range eps {
		ep.SetPeers(addrs)
	}
	return eps
}

func TestTCPBasicExchange(t *testing.T) {
	eps := tcpMesh(t, 2)
	want := Frame{Kind: 5, From: 0, Clock: 3, Vec: []float32{1, 2, 3}, Data: []byte("x")}
	if err := eps[0].Send(1, &want); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := eps[1].Recv(5 * time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !framesEqual(got, want) {
		t.Fatalf("frame mismatch: got %+v want %+v", got, want)
	}
}

func TestTCPAllToAll(t *testing.T) {
	const n, per = 4, 25
	eps := tcpMesh(t, n)
	var wg sync.WaitGroup
	for i := range eps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				for j := range eps {
					if j == i {
						continue
					}
					f := Frame{Kind: 1, From: int32(i), Clock: int32(k), Vec: []float32{float32(i), float32(k)}}
					if err := eps[i].Send(j, &f); err != nil {
						t.Errorf("send %d->%d: %v", i, j, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i := range eps {
		seen := map[string]bool{}
		for k := 0; k < per*(n-1); k++ {
			f, err := eps[i].Recv(5 * time.Second)
			if err != nil {
				t.Fatalf("rank %d recv %d: %v", i, k, err)
			}
			key := fmt.Sprintf("%d/%d", f.From, f.Clock)
			if seen[key] {
				t.Fatalf("rank %d saw duplicate frame %s", i, key)
			}
			seen[key] = true
		}
	}
}

func TestTCPRecvTimeout(t *testing.T) {
	eps := tcpMesh(t, 2)
	if _, err := eps[0].Recv(30 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
}

func TestTCPKilledConnectionRedials(t *testing.T) {
	eps := tcpMesh(t, 2)
	// Always-on kill window: every send first murders the outbound conn,
	// then must redial and still deliver. No frame may be lost.
	eps[0].SetFaults(&FaultPlan{
		Seed:  7,
		Kills: []KillWindow{{From: 0, To: time.Hour, Prob: 1}},
	}, time.Now())
	const msgs = 10
	for k := 0; k < msgs; k++ {
		f := Frame{Kind: 2, Clock: int32(k)}
		if err := eps[0].Send(1, &f); err != nil {
			t.Fatalf("send %d under kill plan: %v", k, err)
		}
	}
	// Every send rides a fresh connection and the receiver's per-connection
	// readers race into the shared inbox, so arrival order across redials is
	// not guaranteed — delivery (no loss, no duplication) is the contract.
	got := map[int32]bool{}
	for k := 0; k < msgs; k++ {
		f, err := eps[1].Recv(5 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", k, err)
		}
		if got[f.Clock] {
			t.Fatalf("duplicate delivery of clock %d", f.Clock)
		}
		got[f.Clock] = true
	}
	for k := int32(0); k < msgs; k++ {
		if !got[k] {
			t.Fatalf("frame with clock %d lost", k)
		}
	}
	if kills := eps[0].Stats().Kills; kills < msgs-1 {
		t.Fatalf("expected >= %d connection kills, got %d", msgs-1, kills)
	}
}

func TestTCPDelayWindow(t *testing.T) {
	eps := tcpMesh(t, 2)
	const d = 20 * time.Millisecond
	eps[0].SetFaults(&FaultPlan{
		Delays: []DelayWindow{{From: 0, To: time.Hour, Delay: d}},
	}, time.Now())
	start := time.Now()
	f := Frame{Kind: 1}
	if err := eps[0].Send(1, &f); err != nil {
		t.Fatalf("send: %v", err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("send returned after %v, want >= %v of injected latency", elapsed, d)
	}
	if _, err := eps[1].Recv(5 * time.Second); err != nil {
		t.Fatalf("recv: %v", err)
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	eps := tcpMesh(t, 2)
	done := make(chan error, 1)
	go func() {
		_, err := eps[0].Recv(0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	eps[0].Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestChanNetExchange(t *testing.T) {
	net := NewChanNet(3)
	want := Frame{Kind: 4, From: 2, Vec: []float32{9}}
	if err := net.Endpoint(2).Send(0, &want); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := net.Endpoint(0).Recv(time.Second)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !framesEqual(got, want) {
		t.Fatalf("frame mismatch: got %+v want %+v", got, want)
	}
	if err := net.Endpoint(0).Send(5, &want); err == nil {
		t.Fatal("send to out-of-range rank succeeded")
	}
	net.Endpoint(1).Close()
	if err := net.Endpoint(0).Send(1, &want); err == nil {
		t.Fatal("send to closed endpoint succeeded")
	}
}
