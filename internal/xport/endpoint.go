package xport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by Send and Recv after an endpoint is closed.
var ErrClosed = errors.New("xport: endpoint closed")

// ErrTimeout is returned by Recv when no frame arrives within the deadline.
var ErrTimeout = errors.New("xport: recv timeout")

// Endpoint is one rank's connection to the rest of the mesh. Send delivers
// a frame to a peer rank; Recv takes the next inbound frame from any peer.
// Both are safe for concurrent use. Implementations: ChanNet (in-process)
// and TCPNet (real sockets).
type Endpoint interface {
	// Rank is this endpoint's position in the mesh.
	Rank() int
	// Size is the number of ranks in the mesh.
	Size() int
	// Send delivers f to peer rank `to`. It blocks until the frame is
	// handed to the transport (socket write or channel hand-off) and
	// returns an error if the peer is unreachable after bounded retry.
	Send(to int, f *Frame) error
	// Recv returns the next inbound frame. timeout <= 0 means block
	// forever; on expiry it returns ErrTimeout.
	Recv(timeout time.Duration) (Frame, error)
	// Close releases the endpoint; blocked Recvs return ErrClosed.
	Close() error
}

// inboxCap bounds each endpoint's inbound queue. Deep enough that
// fire-and-forget algorithms (GoSGD pushes, AD-PSGD requests) never stall a
// sender in any test-scale run; a full inbox applies backpressure rather
// than dropping.
const inboxCap = 1024

// ChanNet is an in-process mesh of endpoints connected by Go channels.
// Every frame still round-trips through the binary codec, so the channel
// backend exercises exactly the encoding the TCP backend puts on the wire —
// only the socket layer is skipped.
type ChanNet struct {
	eps []*chanEndpoint
}

// NewChanNet builds a fully connected in-process mesh of n endpoints.
func NewChanNet(n int) *ChanNet {
	net := &ChanNet{eps: make([]*chanEndpoint, n)}
	for i := range net.eps {
		net.eps[i] = &chanEndpoint{
			net:    net,
			rank:   i,
			inbox:  make(chan Frame, inboxCap),
			closed: make(chan struct{}),
		}
	}
	return net
}

// Endpoint returns rank i's endpoint.
func (n *ChanNet) Endpoint(i int) Endpoint { return n.eps[i] }

type chanEndpoint struct {
	net   *ChanNet
	rank  int
	inbox chan Frame

	closeOnce sync.Once
	closed    chan struct{}
}

func (e *chanEndpoint) Rank() int { return e.rank }
func (e *chanEndpoint) Size() int { return len(e.net.eps) }

func (e *chanEndpoint) Send(to int, f *Frame) error {
	if to < 0 || to >= len(e.net.eps) {
		return fmt.Errorf("xport: send to rank %d outside mesh of %d", to, len(e.net.eps))
	}
	// Round-trip through the codec so the channel backend catches any
	// frame that would not survive the wire.
	g, err := DecodeFrame(f.AppendEncode(nil), 0)
	if err != nil {
		return fmt.Errorf("xport: frame failed codec round-trip: %w", err)
	}
	peer := e.net.eps[to]
	// A select with a ready channel and a closed channel picks randomly;
	// check for an already-closed peer first so the error is deterministic.
	select {
	case <-peer.closed:
		return fmt.Errorf("xport: send to rank %d: %w", to, ErrClosed)
	default:
	}
	select {
	case <-e.closed:
		return ErrClosed
	case <-peer.closed:
		return fmt.Errorf("xport: send to rank %d: %w", to, ErrClosed)
	case peer.inbox <- g:
		return nil
	}
}

func (e *chanEndpoint) Recv(timeout time.Duration) (Frame, error) {
	if timeout <= 0 {
		select {
		case f := <-e.inbox:
			return f, nil
		case <-e.closed:
			return Frame{}, ErrClosed
		}
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case f := <-e.inbox:
		return f, nil
	case <-e.closed:
		return Frame{}, ErrClosed
	case <-t.C:
		return Frame{}, ErrTimeout
	}
}

func (e *chanEndpoint) Close() error {
	e.closeOnce.Do(func() { close(e.closed) })
	return nil
}
