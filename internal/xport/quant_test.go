package xport

import (
	"reflect"
	"testing"
)

func TestQuantVecRoundTrip(t *testing.T) {
	cases := []QuantVec{
		{Codec: QuantInt8, Scale: 0.03125, I8: []int8{-127, -1, 0, 1, 127}},
		{Codec: QuantInt8, Scale: 0, I8: []int8{}},
		{Codec: QuantF16, H16: []uint16{0x3c00, 0x0001, 0xfbff, 0x7c00}},
		{Codec: QuantF16, H16: []uint16{}},
	}
	for _, q := range cases {
		buf := q.AppendEncode(nil)
		if len(buf) != q.EncodedLen() {
			t.Fatalf("EncodedLen %d, encoded %d", q.EncodedLen(), len(buf))
		}
		got, err := DecodeQuantVec(buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.Codec != q.Codec || got.Scale != q.Scale || got.Len() != q.Len() {
			t.Fatalf("header mismatch: %+v vs %+v", got, q)
		}
		if q.Codec == QuantInt8 && len(q.I8) > 0 && !reflect.DeepEqual(got.I8, q.I8) {
			t.Fatalf("int8 payload mismatch: %v vs %v", got.I8, q.I8)
		}
		if q.Codec == QuantF16 && len(q.H16) > 0 && !reflect.DeepEqual(got.H16, q.H16) {
			t.Fatalf("f16 payload mismatch: %v vs %v", got.H16, q.H16)
		}
		// A quantized payload rides inside a normal frame untouched.
		fr := Frame{Kind: 1, From: 2, Clock: 3, Data: buf}
		dec, err := DecodeFrame(fr.AppendEncode(nil), 0)
		if err != nil {
			t.Fatalf("frame decode: %v", err)
		}
		if _, err := DecodeQuantVec(dec.Data); err != nil {
			t.Fatalf("quant decode through frame: %v", err)
		}
	}
}

func TestQuantVecRejectsMalformed(t *testing.T) {
	good := (&QuantVec{Codec: QuantInt8, Scale: 1, I8: []int8{1, 2, 3}}).AppendEncode(nil)
	cases := map[string][]byte{
		"empty":           {},
		"short header":    good[:4],
		"unknown codec":   append([]byte{9}, good[1:]...),
		"count too big":   func() []byte { b := append([]byte(nil), good...); b[1] = 200; return b }(),
		"count too small": func() []byte { b := append([]byte(nil), good...); b[1] = 1; return b }(),
		"f16 odd length": func() []byte {
			b := (&QuantVec{Codec: QuantF16, H16: []uint16{1, 2}}).AppendEncode(nil)
			return b[:len(b)-1]
		}(),
	}
	for name, buf := range cases {
		if _, err := DecodeQuantVec(buf); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzDecodeQuantVec feeds arbitrary bytes to the quantized-payload decoder:
// every input must return normally, and anything accepted must re-encode to
// an identical blob.
func FuzzDecodeQuantVec(f *testing.F) {
	f.Add((&QuantVec{Codec: QuantInt8, Scale: 0.5, I8: []int8{-3, 0, 3}}).AppendEncode(nil))
	f.Add((&QuantVec{Codec: QuantF16, H16: []uint16{0x3c00, 0x8000}}).AppendEncode(nil))
	f.Add([]byte{1, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQuantVec(data)
		if err != nil {
			return
		}
		again := q.AppendEncode(nil)
		if string(again) != string(data) {
			t.Fatalf("accepted blob does not re-encode identically: %x vs %x", again, data)
		}
	})
}
