package rng

import "testing"

// TestStateRoundTrip checkpoints a stream mid-sequence and verifies the
// restored generator continues the exact original sequence.
func TestStateRoundTrip(t *testing.T) {
	r := New(42)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	st := r.State()
	var want [32]uint64
	for i := range want {
		want[i] = r.Uint64()
	}
	r2 := New(7) // unrelated stream
	r2.SetState(st)
	for i := range want {
		if got := r2.Uint64(); got != want[i] {
			t.Fatalf("restored stream diverged at draw %d: got %#x want %#x", i, got, want[i])
		}
	}
}

// TestSetStateRejectsZero verifies the invalid all-zero xoshiro state is
// replaced with a usable one instead of wedging the generator.
func TestSetStateRejectsZero(t *testing.T) {
	r := New(1)
	r.SetState([4]uint64{})
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("all-zero state produced a degenerate stream")
	}
}
