// Package rng provides a small, fast, splittable deterministic random
// number generator used throughout the repository.
//
// Experiments in this repo must be exactly reproducible from a single seed:
// each worker, each dataset shard, and each stochastic decision (gossip
// probability draws, compute-time jitter) draws from its own stream split
// off the experiment seed, so adding workers or reordering goroutines never
// perturbs another component's randomness.
//
// The generator is SplitMix64 feeding a xoshiro256** state, which is more
// than adequate statistically for simulation workloads and has a trivial,
// allocation-free implementation.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; split one stream per goroutine instead (see Split).
type RNG struct {
	s [4]uint64
}

// splitMix64 advances x and returns the next SplitMix64 output. It is used
// for seeding and splitting so that correlated seeds (0, 1, 2, ...) still
// produce decorrelated streams.
func splitMix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitMix64(&x)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// State returns the generator's raw xoshiro256** state words, so a stream
// can be checkpointed mid-sequence and resumed exactly with SetState.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state captured by State: the generator continues the
// original stream from exactly where the capture happened. The all-zero
// state (invalid for xoshiro) is replaced with New(0)'s state.
func (r *RNG) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		*r = *New(0)
		return
	}
	r.s = s
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is statistically independent of
// the receiver's. The receiver is advanced; successive Split calls yield
// distinct streams. The label decorrelates splits made for different
// purposes from the same parent state.
func (r *RNG) Split(label uint64) *RNG {
	x := r.Uint64() ^ (label * 0xd1342543de82ef95)
	child := &RNG{}
	for i := range child.s {
		child.s[i] = splitMix64(&x)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 1
	}
	return child
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using swap, mirroring
// math/rand's contract.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (Box-Muller; one value per
// call keeps the implementation stateless).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}
