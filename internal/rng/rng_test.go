package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between adjacent seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9)
	c1 := parent.Split(1)
	c2 := parent.Split(1) // same label, later parent state -> still distinct
	c3 := parent.Split(2)
	a, b, c := c1.Uint64(), c2.Uint64(), c3.Uint64()
	if a == b || a == c || b == c {
		t.Fatalf("split streams collide: %d %d %d", a, b, c)
	}
}

func TestSplitDeterminism(t *testing.T) {
	mk := func() uint64 {
		return New(4).Split(7).Uint64()
	}
	if mk() != mk() {
		t.Fatal("Split is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(21)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, v := range xs {
		sum2 += v
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(33)
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(44)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}
