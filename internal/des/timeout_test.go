package des

import "testing"

func TestRecvTimeoutFires(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var ok bool
	var at Time
	e.Spawn("recv", func(p *Proc) {
		_, ok = q.RecvTimeout(p, 5)
		at = p.Now()
	})
	e.Run(0)
	if ok {
		t.Fatal("timeout on an empty queue reported a value")
	}
	if at != 5 {
		t.Fatalf("woke at %v, want 5", at)
	}
	if stuck := e.Stuck(); len(stuck) != 0 {
		t.Fatalf("timed-out receiver left stuck: %v", stuck)
	}
}

func TestRecvTimeoutValueArrivesFirst(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got int
	var ok bool
	var at Time
	e.Spawn("recv", func(p *Proc) {
		got, ok = q.RecvTimeout(p, 10)
		at = p.Now()
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(3)
		q.Push(42)
	})
	e.Run(0)
	if !ok || got != 42 {
		t.Fatalf("got %d, %v; want 42, true", got, ok)
	}
	if at != 3 {
		t.Fatalf("received at %v, want 3", at)
	}
	// The stale timeout event must not corrupt a later blocking state: let
	// the same proc recv again and check the backstop timer is fresh.
	e2 := NewEngine()
	q2 := NewQueue[int](e2)
	var times []Time
	e2.Spawn("recv", func(p *Proc) {
		for i := 0; i < 2; i++ {
			if _, ok := q2.RecvTimeout(p, 10); ok {
				times = append(times, p.Now())
			}
		}
	})
	e2.Spawn("send", func(p *Proc) {
		p.Sleep(3)
		q2.Push(1)
		p.Sleep(4) // second value lands at t=7, before the first recv's stale t=10
		q2.Push(2)
	})
	e2.Run(0)
	if len(times) != 2 || times[0] != 3 || times[1] != 7 {
		t.Fatalf("recv times %v, want [3 7]", times)
	}
}

func TestRecvTimeoutZeroIsTryRecv(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	q.Push(9)
	var first, second bool
	var v int
	e.Spawn("recv", func(p *Proc) {
		v, first = q.RecvTimeout(p, 0)
		_, second = q.RecvTimeout(p, -1)
	})
	e.Run(0)
	if !first || v != 9 {
		t.Fatalf("non-blocking recv of queued value: %d, %v", v, first)
	}
	if second {
		t.Fatal("d <= 0 on an empty queue must not block or succeed")
	}
}

func TestRecvTimeoutRepeatedTimeouts(t *testing.T) {
	// A proc that times out in a loop must re-arm a fresh backstop each
	// time and never linger on the waiter list.
	e := NewEngine()
	q := NewQueue[int](e)
	var wakes []Time
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			if _, ok := q.RecvTimeout(p, 2); !ok {
				wakes = append(wakes, p.Now())
			}
		}
	})
	e.Spawn("late-send", func(p *Proc) {
		p.Sleep(100)
		q.Push(1) // nobody is waiting by now; must not wake anything
	})
	e.Run(0)
	if len(wakes) != 3 || wakes[0] != 2 || wakes[1] != 4 || wakes[2] != 6 {
		t.Fatalf("timeout wakes %v, want [2 4 6]", wakes)
	}
	if v, ok := q.TryRecv(); !ok || v != 1 {
		t.Fatalf("late push lost: %d, %v", v, ok)
	}
}

func TestRecvTimeoutMixedWaiters(t *testing.T) {
	// One bounded and one unbounded receiver: the timeout must remove only
	// its own waiter, leaving the blocking receiver to get the value.
	e := NewEngine()
	q := NewQueue[int](e)
	var timedOut bool
	var got int
	e.Spawn("bounded", func(p *Proc) {
		_, ok := q.RecvTimeout(p, 1)
		timedOut = !ok
	})
	e.Spawn("patient", func(p *Proc) {
		got = q.Recv(p)
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(5)
		q.Push(77)
	})
	e.Run(0)
	if !timedOut {
		t.Fatal("bounded receiver should have timed out at t=1")
	}
	if got != 77 {
		t.Fatalf("patient receiver got %d, want 77", got)
	}
	if stuck := e.Stuck(); len(stuck) != 0 {
		t.Fatalf("stuck: %v", stuck)
	}
}
