package des

import (
	"strings"
	"testing"
)

// TestRunReportsBlockedAtDrain: a process parked on an empty queue is named
// (with state) in Run's drain report instead of disappearing silently.
func TestRunReportsBlockedAtDrain(t *testing.T) {
	eng := NewEngine()
	q := NewQueue[int](eng)
	eng.Spawn("deadlocked-worker", func(p *Proc) {
		q.Recv(p) // nobody will ever push
	})
	eng.Spawn("finisher", func(p *Proc) {
		p.Sleep(1)
	})
	report := eng.Run(0)
	if len(report) != 1 {
		t.Fatalf("drain report %v, want exactly the blocked worker", report)
	}
	if report[0].Name != "deadlocked-worker" || report[0].State != "blocked" {
		t.Fatalf("drain report %+v, want deadlocked-worker/blocked", report[0])
	}
	if s := report[0].String(); !strings.Contains(s, "deadlocked-worker") || !strings.Contains(s, "blocked") {
		t.Fatalf("ProcState.String() = %q, want name and state", s)
	}
	eng.Kill()
}

// TestRunReportsWaitingBeyondHorizon: with a horizon, a process whose next
// wakeup lies past `until` is reported as waiting, with its wakeup time.
func TestRunReportsWaitingBeyondHorizon(t *testing.T) {
	eng := NewEngine()
	eng.Spawn("sleeper", func(p *Proc) {
		p.Sleep(100)
	})
	report := eng.Run(10)
	if len(report) != 1 || report[0].Name != "sleeper" {
		t.Fatalf("drain report %v, want the sleeper", report)
	}
	if !strings.Contains(report[0].State, "waiting until t=100") {
		t.Fatalf("sleeper state %q, want waiting until t=100", report[0].State)
	}
	// Running to completion clears the report.
	if report := eng.Run(0); len(report) != 0 {
		t.Fatalf("post-completion report %v, want empty", report)
	}
}

// TestRunReportMatchesStuck: the blocked entries of the drain report agree
// with the legacy Stuck() accessor.
func TestRunReportMatchesStuck(t *testing.T) {
	eng := NewEngine()
	q := NewQueue[int](eng)
	for _, name := range []string{"b", "a"} {
		eng.Spawn(name, func(p *Proc) { q.Recv(p) })
	}
	report := eng.Run(0)
	stuck := eng.Stuck()
	if len(report) != 2 || len(stuck) != 2 {
		t.Fatalf("report %v stuck %v, want 2 each", report, stuck)
	}
	for i := range report {
		if report[i].Name != stuck[i] {
			t.Fatalf("report order %v does not match Stuck() %v", report, stuck)
		}
	}
	eng.Kill()
}
