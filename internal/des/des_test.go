package des

import (
	"testing"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(2, func() { order = append(order, 2) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(3, func() { order = append(order, 3) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestTieBreakBySequence(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Schedule(1, func() {})
}

func TestProcSleepAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at []Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(1.5)
		at = append(at, p.Now())
		p.Sleep(0.5)
		at = append(at, p.Now())
	})
	e.Run(0)
	if len(at) != 2 || at[0] != 1.5 || at[1] != 2.0 {
		t.Fatalf("at = %v", at)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var trace []string
		e.Spawn("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(1.0)
				trace = append(trace, "a")
			}
		})
		e.Spawn("b", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(1.0)
				trace = append(trace, "b")
			}
		})
		e.Run(0)
		return trace
	}
	t1 := run()
	t2 := run()
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("nondeterministic traces: %v vs %v", t1, t2)
		}
	}
	// Spawn order fixes the tie-break: a before b at each step.
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if t1[i] != want[i] {
			t.Fatalf("trace = %v", t1)
		}
	}
}

func TestQueueBlockingRecv(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got int
	var recvAt Time
	e.Spawn("recv", func(p *Proc) {
		got = q.Recv(p)
		recvAt = p.Now()
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(2)
		q.Push(42)
	})
	e.Run(0)
	if got != 42 {
		t.Fatalf("got %d", got)
	}
	if recvAt != 2 {
		t.Fatalf("recv at %v, want 2", recvAt)
	}
}

func TestQueueFIFO(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Recv(p))
		}
	})
	q.Push(1)
	q.Push(2)
	q.Push(3)
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueMultipleConsumers(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	sum := 0
	for i := 0; i < 3; i++ {
		e.Spawn("c", func(p *Proc) {
			sum += q.Recv(p)
		})
	}
	e.Spawn("producer", func(p *Proc) {
		p.Sleep(1)
		q.Push(10)
		q.Push(20)
		q.Push(30)
	})
	e.Run(0)
	if sum != 60 {
		t.Fatalf("sum = %d; some consumer did not receive", sum)
	}
	if stuck := e.Stuck(); len(stuck) != 0 {
		t.Fatalf("stuck: %v", stuck)
	}
}

func TestTryRecv(t *testing.T) {
	e := NewEngine()
	q := NewQueue[string](e)
	if _, ok := q.TryRecv(); ok {
		t.Fatal("TryRecv on empty queue returned ok")
	}
	q.Push("x")
	v, ok := q.TryRecv()
	if !ok || v != "x" {
		t.Fatalf("TryRecv = %q, %v", v, ok)
	}
}

func TestStuckDetection(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	e.Spawn("starved", func(p *Proc) {
		q.Recv(p) // never satisfied
	})
	e.Spawn("fine", func(p *Proc) {
		p.Sleep(1)
	})
	e.Run(0)
	stuck := e.Stuck()
	if len(stuck) != 1 || stuck[0] != "starved" {
		t.Fatalf("stuck = %v", stuck)
	}
	e.Kill()
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(1, func() { fired++ })
	e.Schedule(10, func() { fired++ })
	e.Run(5)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 5 {
		t.Fatalf("now = %v, want horizon 5", e.Now())
	}
	e.Run(0) // drain the rest
	if fired != 2 {
		t.Fatalf("fired = %d after drain", fired)
	}
}

func TestKillUnwindsProcs(t *testing.T) {
	e := NewEngine()
	q := NewQueue[int](e)
	cleanedUp := false
	e.Spawn("server", func(p *Proc) {
		defer func() { cleanedUp = true }()
		for {
			q.Recv(p)
		}
	})
	e.Run(0)
	e.Kill()
	if !cleanedUp {
		t.Fatal("deferred cleanup did not run on Kill")
	}
}

func TestCallbackWakesProc(t *testing.T) {
	// A scheduled callback (not a proc) pushing into a queue must wake the
	// blocked receiver at the callback's time.
	e := NewEngine()
	q := NewQueue[int](e)
	var at Time
	e.Spawn("r", func(p *Proc) {
		q.Recv(p)
		at = p.Now()
	})
	e.Schedule(7, func() { q.Push(1) })
	e.Run(0)
	if at != 7 {
		t.Fatalf("woken at %v, want 7", at)
	}
}

func TestManyProcsStress(t *testing.T) {
	e := NewEngine()
	const n = 200
	q := NewQueue[int](e)
	done := 0
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			p.Sleep(float64(i) * 0.001)
			q.Push(i)
		})
	}
	e.Spawn("collector", func(p *Proc) {
		for i := 0; i < n; i++ {
			q.Recv(p)
			done++
		}
	})
	e.Run(0)
	if done != n {
		t.Fatalf("collected %d of %d", done, n)
	}
}

func TestEventsCounter(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	e.Run(0)
	if e.Events() != 2 {
		t.Fatalf("events = %d", e.Events())
	}
}

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine()
	var next func(t Time)
	count := 0
	next = func(t Time) {
		count++
		if count < b.N {
			e.Schedule(t+1, func() { next(t + 1) })
		}
	}
	b.ResetTimer()
	e.Schedule(0, func() { next(0) })
	e.Run(0)
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine()
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run(0)
}
