// Package des is a deterministic discrete-event simulation engine.
//
// It exists because the paper's performance results (scalability, time
// breakdowns, optimization effects) were measured on a 24-GPU cluster we do
// not have; the substitution is to run the same algorithms against a
// virtual clock. Simulated processes are goroutines, but exactly one runs
// at a time and control is handed off explicitly, so a given seed and
// configuration always produces the identical event trace — tests depend on
// this bit-for-bit reproducibility.
//
// Processes are written in ordinary blocking style:
//
//	eng.Spawn("worker", func(p *des.Proc) {
//	    p.Sleep(0.010)            // compute for 10 virtual ms
//	    replies.Push(msg)         // deliver instantly
//	    m := inbox.Recv(p)        // block until a message arrives
//	    _ = m
//	})
//	eng.Run(0)
//
// The engine loop pops the earliest event — ties broken by schedule order —
// advances the virtual clock, and either runs a callback inline or resumes
// the owning process goroutine, blocking until that process yields again.
package des

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is virtual time in seconds.
type Time = float64

type event struct {
	t    Time
	seq  uint64
	fn   func() // inline callback, or nil for a process wakeup
	proc *Proc
	// gen snapshots proc.gen at schedule time; a wakeup whose gen no longer
	// matches the process's current gen is stale (the process was resumed by
	// a different event in the meantime) and is skipped.
	gen uint64
}

type eventPQ []*event

func (q eventPQ) Len() int { return len(q) }
func (q eventPQ) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventPQ) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventPQ) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventPQ) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event simulator.
type Engine struct {
	now     Time
	pq      eventPQ
	seq     uint64
	ack     chan struct{}
	procs   []*Proc
	killing bool
	events  uint64 // processed events, for stats/tests
}

// NewEngine creates an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{ack: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Events returns the number of events processed so far.
func (e *Engine) Events() uint64 { return e.events }

// Schedule runs fn at absolute virtual time t (>= Now).
func (e *Engine) Schedule(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", t, e.now))
	}
	e.push(&event{t: t, fn: fn})
}

// After runs fn d seconds from now.
func (e *Engine) After(d Time, fn func()) { e.Schedule(e.now+d, fn) }

func (e *Engine) push(ev *event) {
	ev.seq = e.seq
	e.seq++
	heap.Push(&e.pq, ev)
}

// Proc is a simulated process. All Proc methods must be called only from
// the process's own goroutine (inside the body passed to Spawn).
type Proc struct {
	Name   string
	eng    *Engine
	resume chan struct{}
	done   bool
	// blocked marks a proc that yielded without a scheduled wakeup; used to
	// report stuck processes (e.g. the AD-PSGD deadlock demonstration).
	blocked bool
	// gen counts resumes. Scheduling a wakeup stamps the current gen on the
	// event; each actual resume increments it, invalidating every other
	// wakeup scheduled for the same blocking point (timeout backstops that
	// lost the race to a Push, and vice versa).
	gen uint64
}

type procKilled struct{}

// Spawn starts a new process at the current virtual time. The body runs the
// first time the engine reaches the start event.
func (e *Engine) Spawn(name string, body func(*Proc)) *Proc {
	p := &Proc{Name: name, eng: e, resume: make(chan struct{})}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(procKilled); !ok {
					panic(r)
				}
			}
			p.done = true
			e.ack <- struct{}{}
		}()
		body(p)
	}()
	e.push(&event{t: e.now, proc: p, gen: p.gen})
	return p
}

// ProcState describes one process still alive when Run returned: either
// parked with no pending wakeup (blocked — a deadlock, or waiting on input
// that will never arrive) or holding a wakeup beyond the run horizon.
type ProcState struct {
	Name string
	// State is "blocked" for a parked process with no scheduled wakeup, or
	// "waiting until t=<time>" for one whose next wakeup lies beyond the
	// `until` horizon.
	State string
}

func (s ProcState) String() string { return s.Name + " (" + s.State + ")" }

// Run processes events until the queue is empty, or until virtual time
// exceeds `until` if until > 0 (events beyond the horizon stay queued).
// It returns the processes still alive at drain — blocked ones are
// deadlocked (or waiting on input that will never arrive); with a horizon,
// processes whose next wakeup lies beyond it are reported as waiting.
// Server loops that block forever by design show up here too; callers
// decide which names are anomalous.
func (e *Engine) Run(until Time) []ProcState {
	for e.pq.Len() > 0 {
		ev := e.pq[0]
		if until > 0 && ev.t > until {
			e.now = until
			return e.drainReport()
		}
		heap.Pop(&e.pq)
		e.now = ev.t
		e.events++
		if ev.proc != nil {
			if ev.proc.done || ev.gen != ev.proc.gen {
				continue
			}
			ev.proc.gen++
			ev.proc.blocked = false
			ev.proc.resume <- struct{}{}
			<-e.ack
		} else if ev.fn != nil {
			ev.fn()
		}
	}
	return e.drainReport()
}

// drainReport snapshots the live processes: blocked ones, plus — when
// events remain queued past a horizon — the ones with pending wakeups.
func (e *Engine) drainReport() []ProcState {
	wakeAt := make(map[*Proc]Time)
	for _, ev := range e.pq {
		if ev.proc == nil || ev.proc.done || ev.gen != ev.proc.gen {
			continue
		}
		if t, ok := wakeAt[ev.proc]; !ok || ev.t < t {
			wakeAt[ev.proc] = ev.t
		}
	}
	var out []ProcState
	for _, p := range e.procs {
		if p.done {
			continue
		}
		if p.blocked {
			out = append(out, ProcState{Name: p.Name, State: "blocked"})
		} else if t, ok := wakeAt[p]; ok {
			out = append(out, ProcState{Name: p.Name, State: fmt.Sprintf("waiting until t=%g", t)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stuck returns the names of processes that are blocked with no pending
// wakeup — after Run returns, these are deadlocked (or waiting on input
// that will never arrive).
func (e *Engine) Stuck() []string {
	var s []string
	for _, p := range e.procs {
		if !p.done && p.blocked {
			s = append(s, p.Name)
		}
	}
	sort.Strings(s)
	return s
}

// Kill unwinds every non-finished process goroutine. Call when done with an
// engine whose processes run forever (server loops), so goroutines do not
// leak across many experiments in one Go process.
func (e *Engine) Kill() {
	e.killing = true
	for _, p := range e.procs {
		if !p.done {
			p.resume <- struct{}{}
			<-e.ack
		}
	}
	e.killing = false
}

// yield hands control back to the engine and blocks until resumed.
func (p *Proc) yield() {
	p.eng.ack <- struct{}{}
	<-p.resume
	if p.eng.killing {
		panic(procKilled{})
	}
}

// Sleep advances the process by d seconds of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("des: negative sleep")
	}
	e := p.eng
	e.push(&event{t: e.now + d, proc: p, gen: p.gen})
	p.yield()
}

// Block parks the process until something wakes it (Queue.Recv uses this).
func (p *Proc) block() {
	p.blocked = true
	p.yield()
}

// wake schedules the process to resume at the current time.
func (p *Proc) wake() {
	p.eng.push(&event{t: p.eng.now, proc: p, gen: p.gen})
}

// Now returns the engine's current virtual time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Queue is an unbounded FIFO mailbox connecting processes (and callbacks)
// inside one engine. Push never blocks; Recv blocks the calling process
// until an item is available.
type Queue[T any] struct {
	eng     *Engine
	items   []T
	waiting []*Proc
}

// NewQueue creates a mailbox on the engine.
func NewQueue[T any](e *Engine) *Queue[T] {
	return &Queue[T]{eng: e}
}

// Push appends an item and wakes one waiting receiver, if any. Safe to call
// from event callbacks or from any process.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	if len(q.waiting) > 0 {
		p := q.waiting[0]
		q.waiting = q.waiting[1:]
		p.wake()
	}
}

// Recv removes and returns the oldest item, blocking p until one exists.
func (q *Queue[T]) Recv(p *Proc) T {
	for len(q.items) == 0 {
		q.waiting = append(q.waiting, p)
		p.block()
	}
	v := q.items[0]
	q.items = q.items[1:]
	// If items remain and receivers still wait (multi-consumer), cascade.
	if len(q.items) > 0 && len(q.waiting) > 0 {
		nxt := q.waiting[0]
		q.waiting = q.waiting[1:]
		nxt.wake()
	}
	return v
}

// RecvTimeout removes and returns the oldest item, blocking p until one
// exists or d seconds of virtual time elapse, whichever comes first. On
// timeout it returns (zero, false). d <= 0 degenerates to TryRecv.
func (q *Queue[T]) RecvTimeout(p *Proc, d Time) (T, bool) {
	var zero T
	if d <= 0 {
		return q.TryRecv()
	}
	deadline := p.eng.now + d
	for len(q.items) == 0 {
		if p.eng.now >= deadline {
			q.removeWaiter(p)
			return zero, false
		}
		// Timeout backstop. If a Push wins the race, the resume bumps p.gen
		// and this event goes stale; if the queue is sniped and we re-block,
		// a fresh backstop is scheduled (the old one is already stale).
		p.eng.push(&event{t: deadline, proc: p, gen: p.gen})
		q.waiting = append(q.waiting, p)
		p.block()
	}
	// Items arrived. We may still be in the waiting list (woken by the
	// timeout event in the same timestamp as a Push aimed at another
	// waiter) — drop the entry so no future Push targets a gone receiver.
	q.removeWaiter(p)
	v := q.items[0]
	q.items = q.items[1:]
	if len(q.items) > 0 && len(q.waiting) > 0 {
		nxt := q.waiting[0]
		q.waiting = q.waiting[1:]
		nxt.wake()
	}
	return v, true
}

// removeWaiter deletes p from the waiting list if present.
func (q *Queue[T]) removeWaiter(p *Proc) {
	for i, w := range q.waiting {
		if w == p {
			q.waiting = append(q.waiting[:i], q.waiting[i+1:]...)
			return
		}
	}
}

// TryRecv removes and returns the oldest item without blocking.
func (q *Queue[T]) TryRecv() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
