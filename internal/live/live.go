// Package live is the wall-clock runtime: it runs the same distributed
// training algorithms the deterministic simulator runs, but as real
// communicating workers over xport endpoints (loopback or cross-machine
// TCP, or in-process channels). Where internal/core advances a virtual
// clock and delivers messages through simnet, live workers block on real
// sockets, suffer real scheduler jitter, and finish in real seconds.
//
// The determinism contract with the simulator (see docs/LIVE.md):
//
//   - Synchronous algorithms (BSP, AR-SGD) produce final parameters
//     bit-identical to a core.Run of the same Config and seed. This works
//     because both sides derive the same per-worker RNG streams, build the
//     same replicas, and pin the same floating-point reduction order (BSP
//     sums gradients in ascending sender rank; the ring/tree AllReduce
//     order is fixed by the topology).
//   - Asynchronous algorithms (ASP, SSP, EASGD, GoSGD, AD-PSGD) run with
//     real nondeterminism — arrival order at the PS, gossip interleaving —
//     and report the same metrics Summary shape as the simulator.
//
// Entry points: RunLoopback (coordinator + N goroutine workers over
// loopback TCP, no orchestration needed), RunChan (in-process channel
// transport, no sockets), and RunCoordinator/RunWorker for real
// multi-process deployments.
package live

import (
	"fmt"
	"time"

	"disttrain/internal/core"
	"disttrain/internal/fault"
	"disttrain/internal/xport"
)

// recvTimeout bounds every blocking receive in the live protocol loops: a
// hung or dead peer surfaces as an error instead of a silent stall. Large
// enough that CI-grade machines under -race never trip it in healthy runs.
const recvTimeout = 60 * time.Second

// Validate checks that cfg can run on the live path. It normalizes the
// config through core's Validate first, then rejects everything the live
// runtime does not support: cost-only mode (a wall-clock run of no real
// math measures nothing), PS sharding (live hosts a single PS rank),
// simulator-only optimizations, and fault kinds with no transport
// projection.
func Validate(cfg *core.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Real == nil {
		return fmt.Errorf("live: real-math mode required (cost-only runs are simulator-only)")
	}
	switch cfg.Algo {
	case core.BSP, core.ASP, core.SSP, core.EASGD, core.ARSGD, core.GoSGD, core.ADPSGD:
	default:
		return fmt.Errorf("live: algorithm %s is simulator-only", cfg.Algo)
	}
	if cfg.Sharding != core.ShardNone || cfg.Shards > 1 {
		return fmt.Errorf("live: PS sharding is not supported (single live PS rank)")
	}
	switch {
	case cfg.WaitFreeBP:
		return fmt.Errorf("live: wait-free BP is a simulator overlap model")
	case cfg.DGC != nil:
		return fmt.Errorf("live: DGC is not supported on the live path")
	case cfg.Quantize8:
		return fmt.Errorf("live: 8-bit quantization is not supported on the live path")
	case cfg.LocalAgg:
		return fmt.Errorf("live: local aggregation is not supported on the live path")
	case cfg.Elastic:
		return fmt.Errorf("live: elastic membership is not supported on the live path")
	case cfg.StalenessDamping:
		return fmt.Errorf("live: staleness damping is not supported on the live path")
	case cfg.ADPSGDNoBipartite:
		return fmt.Errorf("live: the AD-PSGD no-bipartite ablation is simulator-only")
	}
	if !cfg.Faults.Empty() {
		if _, err := TranslateFaults(cfg.Faults, cfg.Seed); err != nil {
			return err
		}
	}
	return nil
}

// Result is what one live run produces, the wall-clock counterpart of
// core.Result.
type Result struct {
	Config    core.Config
	Transport string
	// WallSec is real seconds from the START barrier to the last DONE.
	WallSec float64
	// Throughput is samples/second of wall time (total completed
	// iterations x batch / WallSec) — directly comparable with the
	// simulator's virtual-time images/sec.
	Throughput float64
	// WorkerIters is each rank's completed iteration count.
	WorkerIters []int
	// WorkerParams is each rank's final parameter vector, captured when the
	// worker's training loop finished (asynchronous serve traffic arriving
	// after that point is not reflected).
	WorkerParams [][]float32
	// FinalTestAcc and FinalTrainLoss evaluate the final global model: the
	// PS parameters for centralized algorithms, the replica average for
	// decentralized ones.
	FinalTestAcc   float64
	FinalTrainLoss float64
	// Net aggregates transport counters over every TCP endpoint in the run
	// (zero for the channel transport, which keeps no counters).
	Net xport.Stats
}

// Summary projects the live result into the simulator's Summary shape so
// the same plotting/analysis tooling consumes both. VirtualSec carries the
// wall-clock makespan (a live run has no virtual time).
func (r *Result) Summary() core.Summary {
	iters := 0
	for _, n := range r.WorkerIters {
		iters += n
	}
	return core.Summary{
		Algo:       string(r.Config.Algo) + "+" + r.Transport,
		Workers:    r.Config.Workers,
		Machines:   r.Config.Cluster.Machines,
		Model:      r.Config.Workload.Profile.Name,
		Iters:      r.Config.Iters,
		Seed:       r.Config.Seed,
		VirtualSec: r.WallSec,
		Throughput: r.Throughput,
		TotalBytes: r.Net.BytesSent,

		FinalTestAcc:   r.FinalTestAcc,
		FinalTrainLoss: r.FinalTrainLoss,
	}
}

// TranslateFaults maps a simulator fault schedule onto the live transport:
// drop windows become connection-kill windows (the frame is rewritten on a
// redialed connection — live TCP loses no acknowledged bytes, so "drop"
// exercises reconnection rather than message loss), and slow/degrade
// windows become injected send latency. Event.At and Event.Duration are
// read as wall-clock seconds from the run's START barrier. Crash and
// partition events have no live projection and are rejected.
func TranslateFaults(s *fault.Schedule, seed uint64) (*xport.FaultPlan, error) {
	if s.Empty() {
		return nil, nil
	}
	// An open-ended window (Duration <= 0) covers the rest of the run.
	const forever = time.Duration(1) << 62
	plan := &xport.FaultPlan{Seed: seed}
	for i, e := range s.Events {
		from := time.Duration(e.At * float64(time.Second))
		to := forever
		if e.Duration > 0 {
			to = from + time.Duration(e.Duration*float64(time.Second))
		}
		switch e.Kind {
		case fault.Drop:
			plan.Kills = append(plan.Kills, xport.KillWindow{From: from, To: to, Prob: e.Prob})
		case fault.Slow, fault.Degrade:
			// Each unit of slowdown factor above 1 costs a fixed extra
			// latency per send; the live path has no virtual wire time to
			// scale, so the factor maps onto a concrete delay.
			d := time.Duration((e.Factor - 1) * float64(10*time.Millisecond))
			if d < 0 {
				d = 0
			}
			plan.Delays = append(plan.Delays, xport.DelayWindow{From: from, To: to, Delay: d})
		default:
			return nil, fmt.Errorf("live: fault event %d: %s has no live-transport projection", i, e.Kind)
		}
	}
	return plan, nil
}
