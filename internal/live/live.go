// Package live is the wall-clock runtime: it runs the same distributed
// training algorithms the deterministic simulator runs, but as real
// communicating workers over xport endpoints (loopback or cross-machine
// TCP, or in-process channels). Where internal/core advances a virtual
// clock and delivers messages through simnet, live workers block on real
// sockets, suffer real scheduler jitter, and finish in real seconds.
//
// The determinism contract with the simulator (see docs/LIVE.md):
//
//   - Synchronous algorithms (BSP, AR-SGD) produce final parameters
//     bit-identical to a core.Run of the same Config and seed. This works
//     because both sides derive the same per-worker RNG streams, build the
//     same replicas, and pin the same floating-point reduction order (BSP
//     sums gradients in ascending sender rank; the ring/tree AllReduce
//     order is fixed by the topology).
//   - Asynchronous algorithms (ASP, SSP, EASGD, GoSGD, AD-PSGD) run with
//     real nondeterminism — arrival order at the PS, gossip interleaving —
//     and report the same metrics Summary shape as the simulator.
//
// Entry points: RunLoopback (coordinator + N goroutine workers over
// loopback TCP, no orchestration needed), RunChan (in-process channel
// transport, no sockets), and RunCoordinator/RunWorker for real
// multi-process deployments.
package live

import (
	"errors"
	"fmt"
	"time"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/fault"
	"disttrain/internal/nn"
	"disttrain/internal/trace"
	"disttrain/internal/xport"
)

// recvTimeout bounds every blocking receive in the live protocol loops: a
// hung or dead peer surfaces as an error instead of a silent stall. Large
// enough that CI-grade machines under -race never trip it in healthy runs.
const recvTimeout = 60 * time.Second

// ErrScheduledDeath is returned by RunWorker under WithExitOnDeath when the
// worker reaches a scheduled crash: the process state is already torn down
// and the caller should exit, leaving the restart to an external supervisor
// (RunWorkerRejoin).
var ErrScheduledDeath = errors.New("live: worker stopped at scheduled death (relaunch with RunWorkerRejoin)")

// Validate checks that cfg can run on the live path. It normalizes the
// config through core's Validate first, then rejects everything the live
// runtime does not support: cost-only mode (a wall-clock run of no real
// math measures nothing), PS sharding (live hosts a single PS rank),
// simulator-only optimizations, elastic membership outside BSP/AR-SGD, and
// crash faults without elastic membership (faithful stall-and-rerun crash
// semantics are simulator-only).
func Validate(cfg *core.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Real == nil {
		return fmt.Errorf("live: real-math mode required (cost-only runs are simulator-only)")
	}
	switch cfg.Algo {
	case core.BSP, core.ASP, core.SSP, core.EASGD, core.ARSGD, core.GoSGD, core.ADPSGD:
	default:
		return fmt.Errorf("live: algorithm %s is simulator-only", cfg.Algo)
	}
	if cfg.Sharding != core.ShardNone || cfg.Shards > 1 {
		return fmt.Errorf("live: PS sharding is not supported (single live PS rank)")
	}
	switch {
	case cfg.WaitFreeBP:
		return fmt.Errorf("live: wait-free BP is a simulator overlap model")
	case cfg.DGC != nil:
		return fmt.Errorf("live: DGC is not supported on the live path")
	case cfg.LocalAgg:
		return fmt.Errorf("live: local aggregation is not supported on the live path")
	case cfg.StalenessDamping:
		return fmt.Errorf("live: staleness damping is not supported on the live path")
	case cfg.ADPSGDNoBipartite:
		return fmt.Errorf("live: the AD-PSGD no-bipartite ablation is simulator-only")
	}
	switch cfg.Collective {
	case "", "ring", "tree": // tree maps onto the live binomial-tree path
	default:
		return fmt.Errorf("live: the %s collective is simulator-only (live supports ring and tree)", cfg.Collective)
	}
	if cfg.Overlay != "" {
		return fmt.Errorf("live: gossip overlays are simulator-only")
	}
	if cfg.Elastic {
		switch cfg.Algo {
		case core.BSP, core.ARSGD:
		default:
			return fmt.Errorf("live: elastic membership supports BSP and AR-SGD only (got %s)", cfg.Algo)
		}
	}
	if !cfg.Faults.Empty() {
		if cfg.Faults.HasKind(fault.Crash) && !cfg.Elastic {
			return fmt.Errorf("live: crash faults require Elastic on the live path (faithful stall-and-rerun crash semantics are simulator-only)")
		}
		if _, err := TranslateFaults(cfg.Faults, cfg.Seed, cfg.Cluster, cfg.Workers, 0); err != nil {
			return err
		}
	}
	return nil
}

// Options tunes the live runtime beyond the shared core.Config: the
// checkpoint cadence workers and the PS write their state with, the
// fault-projection slow unit, progress reporting, and the external-restart
// policy. Build one with the With* functional options accepted by every
// entry point.
type Options struct {
	ckpt        nn.Cadence
	slowUnit    time.Duration
	progress    func(rank, iter int, loss float64)
	exitOnDeath bool
	tracer      *trace.Tracer
	metrics     *Metrics
}

// Option mutates Options; pass any number to the Run* entry points.
type Option func(*Options)

// WithCheckpoints makes every worker (and the PS) write a training-state
// checkpoint into dir every `every` completed iterations. A worker killed
// by a crash schedule restores from its latest checkpoint when it rejoins.
func WithCheckpoints(dir string, every int) Option {
	return func(o *Options) { o.ckpt = nn.Cadence{Dir: dir, Every: every} }
}

// WithSlowUnit overrides the latency one slowdown unit (Factor-1) maps onto
// when projecting slow/degrade faults; 0 keeps xport.DefaultSlowUnit.
func WithSlowUnit(unit time.Duration) Option {
	return func(o *Options) { o.slowUnit = unit }
}

// WithProgress registers a per-iteration progress callback: fn is called
// after every completed worker iteration with the worker's rank, the
// iteration number, and the current training-loss EWMA. Workers run
// concurrently, so fn must be safe for concurrent use; it runs on the
// worker's goroutine and must not block. Only in-process entry points
// (RunLoopback, RunChan) can observe every worker; in a multi-process run
// each process reports its own ranks.
func WithProgress(fn func(rank, iter int, loss float64)) Option {
	return func(o *Options) { o.progress = fn }
}

// WithExitOnDeath makes a scheduled crash terminate the worker entry point
// with ErrScheduledDeath instead of restarting in-process: the process
// state is torn down abruptly (mesh and control connections closed
// mid-protocol, exactly what a killed process leaves behind) and the error
// surfaces to the caller, which is expected to exit. An external supervisor
// then relaunches the rank with RunWorkerRejoin — the multi-process
// crash/restart story, exercised end-to-end by the CI rejoin test.
func WithExitOnDeath() Option {
	return func(o *Options) { o.exitOnDeath = true }
}

// WithTracer records wall-clock spans for every in-process participant into
// tr: compute and communication phases per worker rank (pid 0, tid = rank),
// checkpoint saves/restores, the start barrier, and the coordinator's
// rendezvous/heartbeat/rejoin activity (pid 1). The tracer's WriteJSON emits
// the same Chrome trace format the simulator produces, so one viewer serves
// both time sources. Only in-process entry points (RunLoopback, RunChan)
// capture every participant; a multi-process run traces its own ranks.
func WithTracer(tr *trace.Tracer) Option {
	return func(o *Options) { o.tracer = tr }
}

// WithMetrics registers every in-process participant with m, the
// Prometheus-text collector served on GET /metrics: workers contribute mesh
// transport counters and iteration progress, the coordinator contributes the
// PS endpoint counters and death/rejoin/done accounting.
func WithMetrics(m *Metrics) Option {
	return func(o *Options) { o.metrics = m }
}

func buildOptions(opts []Option) *Options {
	o := &Options{}
	for _, fn := range opts {
		fn(o)
	}
	return o
}

// Result is what one live run produces, the wall-clock counterpart of
// core.Result.
type Result struct {
	Config    core.Config
	Transport string
	// WallSec is real seconds from the START barrier to the last DONE.
	WallSec float64
	// Throughput is samples/second of wall time (total completed
	// iterations x batch / WallSec) — directly comparable with the
	// simulator's virtual-time images/sec.
	Throughput float64
	// WorkerIters is each rank's completed iteration count.
	WorkerIters []int
	// WorkerParams is each rank's final parameter vector, captured when the
	// worker's training loop finished (asynchronous serve traffic arriving
	// after that point is not reflected).
	WorkerParams [][]float32
	// FinalTestAcc and FinalTrainLoss evaluate the final global model: the
	// PS parameters for centralized algorithms, the replica average for
	// decentralized ones.
	FinalTestAcc   float64
	FinalTrainLoss float64
	// Net aggregates transport counters over every TCP endpoint in the run
	// (zero for the channel transport, which keeps no counters).
	Net xport.Stats
	// Deaths, Rejoins, and Restores count chaos events: scheduled worker
	// deaths the coordinator observed, REJOIN handshakes it accepted, and
	// checkpoint restores rejoining workers performed.
	Deaths   int64
	Rejoins  int64
	Restores int64
}

// Summary projects the live result into the simulator's Summary shape so
// the same plotting/analysis tooling consumes both. VirtualSec carries the
// wall-clock makespan (a live run has no virtual time).
func (r *Result) Summary() core.Summary {
	iters := 0
	for _, n := range r.WorkerIters {
		iters += n
	}
	s := core.Summary{
		Algo:       string(r.Config.Algo) + "+" + r.Transport,
		Workers:    r.Config.Workers,
		Machines:   r.Config.Cluster.Machines,
		Model:      r.Config.Workload.Profile.Name,
		Iters:      r.Config.Iters,
		Seed:       r.Config.Seed,
		Elastic:    r.Config.Elastic,
		VirtualSec: r.WallSec,
		Throughput: r.Throughput,
		TotalBytes: r.Net.BytesSent,

		FinalTestAcc:   r.FinalTestAcc,
		FinalTrainLoss: r.FinalTrainLoss,
	}
	s.Faults.Crashes = int(r.Deaths)
	s.Faults.Restarts = int(r.Rejoins)
	return s
}

// TranslateFaults maps a simulator fault schedule onto the live transport:
// drop windows become connection-kill windows (the frame is rewritten on a
// redialed connection — live TCP loses no acknowledged bytes, so "drop"
// exercises reconnection rather than message loss), slow/degrade windows
// become injected send latency (one slowdown unit above factor 1 maps to
// slowUnit of delay per send; 0 keeps xport.DefaultSlowUnit), and partition
// windows sever and stall mesh sends that cross the machine cut. Event.At
// and Event.Duration are read as wall-clock seconds from the run's START
// barrier. Crash events are not projected here — they are handled by the
// chaos membership layer (worker death/restart), not the transport — so a
// crash-only schedule yields a nil plan.
func TranslateFaults(s *fault.Schedule, seed uint64, cl cluster.Config, workers int, slowUnit time.Duration) (*xport.FaultPlan, error) {
	if s.Empty() {
		return nil, nil
	}
	// An open-ended window (Duration <= 0) covers the rest of the run.
	const forever = time.Duration(1) << 62
	plan := &xport.FaultPlan{Seed: seed, SlowUnit: slowUnit}
	for i, e := range s.Events {
		from := time.Duration(e.At * float64(time.Second))
		to := forever
		if e.Duration > 0 {
			to = from + time.Duration(e.Duration*float64(time.Second))
		}
		switch e.Kind {
		case fault.Drop:
			plan.Kills = append(plan.Kills, xport.KillWindow{From: from, To: to, Prob: e.Prob})
		case fault.Slow, fault.Degrade:
			// Each unit of slowdown factor above 1 costs a fixed extra
			// latency per send; the live path has no virtual wire time to
			// scale, so the factor maps onto a concrete delay per the
			// plan's slow unit.
			f := e.Factor
			if f < 1 {
				f = 1
			}
			plan.Delays = append(plan.Delays, xport.DelayWindow{From: from, To: to, Factor: f})
		case fault.Partition:
			// The isolated side is the set of worker ranks hosted on the
			// event's machines; the PS rank (== workers) stays outside the
			// side, so a centralized algorithm sees the partitioned
			// workers stall rather than silently lose traffic — the
			// simulator's faithful-stall semantics.
			var side []int
			for w := 0; w < workers; w++ {
				m := cl.MachineOfWorker(w)
				for _, pm := range e.Machines {
					if m == pm {
						side = append(side, w)
						break
					}
				}
			}
			if len(side) == 0 {
				return nil, fmt.Errorf("live: fault event %d: partition isolates no workers", i)
			}
			plan.Partitions = append(plan.Partitions, xport.PartitionWindow{From: from, To: to, Side: side})
		case fault.Crash:
			// Projected by the chaos membership layer, not the transport.
		default:
			return nil, fmt.Errorf("live: fault event %d: %s has no live-transport projection", i, e.Kind)
		}
	}
	if len(plan.Kills) == 0 && len(plan.Delays) == 0 && len(plan.Partitions) == 0 {
		return nil, nil
	}
	return plan, nil
}
