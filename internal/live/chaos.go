package live

import (
	"disttrain/internal/core"
	"disttrain/internal/fault"
)

// chaos projects a crash schedule onto the live run. It wraps the exact
// injector the simulator builds — same arguments, same seed — so both
// runtimes evaluate the identical pure membership function: which workers
// run which 1-based iteration. That shared function is what lets the live
// coordinator, the PS, and every worker agree on each round's membership
// without exchanging any liveness messages, exactly as the simulator's
// elastic mode does.
//
// Crash times given in seconds are quantized on the simulator's nominal
// iteration clock (Workload.MeanIterSec); live workers die when they reach
// the quantized iteration boundary, and restart delays are served in real
// wall-clock seconds.
type chaos struct {
	cfg *core.Config
	inj *fault.Injector
}

// newChaos compiles cfg's crash schedule; nil when it has none (the
// membership is then the full fixed cohort).
func newChaos(cfg *core.Config) *chaos {
	if cfg.Faults.Empty() || !cfg.Faults.HasKind(fault.Crash) {
		return nil
	}
	inj := fault.NewInjector(cfg.Faults, cfg.Workers, cfg.Cluster.Machines,
		cfg.Workload.MeanIterSec(), cfg.Seed)
	return &chaos{cfg: cfg, inj: inj}
}

// aliveAt reports whether worker w runs iteration it.
func (c *chaos) aliveAt(w, it int) bool { return c.inj.AliveAtIter(w, it) }

// nextAlive returns the first iteration >= it that worker w runs, or 0 if
// it never runs again.
func (c *chaos) nextAlive(w, it int) int { return c.inj.NextAliveIter(w, it) }

// restartDelay is the wall-clock restart sleep for worker w dying at
// iteration it.
func (c *chaos) restartDelay(w, it int) float64 { return c.inj.RestartDelay(w, it) }

// aliveCount returns how many workers run iteration it — the simulator's
// aliveCount, the elastic BSP barrier width.
func (c *chaos) aliveCount(it int) int {
	n := 0
	for w := 0; w < c.cfg.Workers; w++ {
		if c.aliveAt(w, it) {
			n++
		}
	}
	return n
}

// aliveNodes returns the mesh ranks alive at iteration it and w's position
// among them (-1 if w itself is dead) — the simulator's aliveNodes, the
// elastic AR-SGD ring membership.
func (c *chaos) aliveNodes(it, w int) ([]int, int) {
	self := -1
	nodes := make([]int, 0, c.cfg.Workers)
	for ww := 0; ww < c.cfg.Workers; ww++ {
		if c.aliveAt(ww, it) {
			if ww == w {
				self = len(nodes)
			}
			nodes = append(nodes, ww)
		}
	}
	return nodes, self
}

// resumedAt reports whether worker w comes back from a dead window exactly
// at iteration it. Peers use this to discard their cached connection to w
// before the first post-restart send — the old socket is half-closed and a
// write on it would be silently lost.
func (c *chaos) resumedAt(w, it int) bool {
	return it > 1 && c.aliveAt(w, it) && !c.aliveAt(w, it-1)
}

// hasCrash reports whether the schedule ever kills worker w within the run.
func (c *chaos) hasCrash(w int) bool {
	for it := 1; it <= c.cfg.Iters; it++ {
		if !c.aliveAt(w, it) {
			return true
		}
	}
	return false
}

// finishes reports whether worker w completes the run (executes the final
// iteration and reports DONE). A worker dead at cfg.Iters never returns.
func (c *chaos) finishes(w int) bool { return c.aliveAt(w, c.cfg.Iters) }

// finisherCount returns how many workers complete the run.
func (c *chaos) finisherCount() int {
	n := 0
	for w := 0; w < c.cfg.Workers; w++ {
		if c.finishes(w) {
			n++
		}
	}
	return n
}

// maxRestart is the largest scheduled restart delay (seconds) for worker w;
// the coordinator's lease watchdog budgets this much extra silence for a
// dead worker awaiting its restart.
func (c *chaos) maxRestart(w int) float64 {
	var d float64
	for it := 1; it <= c.cfg.Iters; it++ {
		if !c.aliveAt(w, it) {
			if r := c.restartDelay(w, it); r > d {
				d = r
			}
		}
	}
	return d
}
