package live

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"disttrain/internal/core"
	"disttrain/internal/fault"
)

// chaosSchedule kills two of four workers mid-run, each with a restart
// delay that revives it one iteration later (restart 0.1s < one nominal
// iteration of the test workload).
func chaosSchedule() *fault.Schedule {
	return &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Crash, AtIter: 4, Worker: 1, Restart: 0.1},
		{Kind: fault.Crash, AtIter: 6, Worker: 2, Restart: 0.1},
	}}
}

// TestLiveBSPChaosConvergence is the chaos acceptance test: loopback BSP
// with four workers survives two scheduled kills with restart — the killed
// workers restore from checkpoint, rejoin through the coordinator, and the
// run converges to within tolerance of the fault-free run.
func TestLiveBSPChaosConvergence(t *testing.T) {
	clean := liveConfig(core.BSP, 4, 12, 42)
	cleanRes, err := RunLoopback(clean)
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}

	cfg := liveConfig(core.BSP, 4, 12, 42)
	cfg.Elastic = true
	cfg.Faults = chaosSchedule()
	dir := t.TempDir()
	res, err := RunLoopback(cfg, WithCheckpoints(dir, 1))
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}

	if res.Deaths < 2 {
		t.Fatalf("observed %d deaths, want >= 2", res.Deaths)
	}
	if res.Rejoins < 2 {
		t.Fatalf("observed %d rejoins, want >= 2", res.Rejoins)
	}
	if res.Restores < 2 {
		t.Fatalf("observed %d checkpoint restores, want >= 2", res.Restores)
	}
	for w, n := range res.WorkerIters {
		if n != cfg.Iters {
			t.Fatalf("worker %d completed %d/%d iterations after restart", w, n, cfg.Iters)
		}
	}
	if res.FinalTestAcc <= 1.0/3+0.05 {
		t.Fatalf("chaos run did not learn: acc %.3f", res.FinalTestAcc)
	}
	if diff := math.Abs(res.FinalTestAcc - cleanRes.FinalTestAcc); diff > 0.15 {
		t.Fatalf("chaos accuracy %.3f vs fault-free %.3f (diff %.3f > 0.15)",
			res.FinalTestAcc, cleanRes.FinalTestAcc, diff)
	}

	// The Summary projection carries the chaos counters.
	s := res.Summary()
	if !s.Elastic {
		t.Fatalf("summary does not mark the run elastic")
	}
	if s.Faults.Crashes < 2 || s.Faults.Restarts < 2 {
		t.Fatalf("summary fault stats not populated: %+v", s.Faults)
	}

	// Periodic checkpoints landed on disk for every worker and the PS.
	for r := 0; r < cfg.Workers; r++ {
		p := filepath.Join(dir, "worker-"+string(rune('0'+r))+".ckpt")
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("worker %d checkpoint missing: %v", r, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "ps.ckpt")); err != nil {
		t.Fatalf("PS checkpoint missing: %v", err)
	}
}

// TestLiveBSPChaosBitIdenticalToSim extends the determinism contract to
// elastic churn: with checkpoints every iteration, a restored worker
// resumes with exactly the parameters, momentum, loss EWMA, and sampler
// position the simulator's restarted replica has — so the whole chaotic
// run stays bit-identical to the simulator's Elastic mode.
func TestLiveBSPChaosBitIdenticalToSim(t *testing.T) {
	cfg := liveConfig(core.BSP, 4, 10, 42)
	cfg.Elastic = true
	cfg.Faults = chaosSchedule()
	sim := simParams(t, cfg)

	res, err := RunLoopback(cfg, WithCheckpoints(t.TempDir(), 1))
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, sim, res.WorkerParams)
}

// TestLiveARSGDElasticBitIdenticalToSim: the decentralized side of the
// elastic contract. The AR-SGD ring is rebuilt from the alive membership
// every round — survivors reduce over the shrunken ring exactly like the
// simulator — and a restored worker rejoins the ring bit-identically
// (momentum restored from the checkpoint).
func TestLiveARSGDElasticBitIdenticalToSim(t *testing.T) {
	cfg := liveConfig(core.ARSGD, 4, 8, 42)
	cfg.Elastic = true
	cfg.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Crash, AtIter: 4, Worker: 1, Restart: 0.1},
	}}
	sim := simParams(t, cfg)

	res, err := RunLoopback(cfg, WithCheckpoints(t.TempDir(), 1))
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, sim, res.WorkerParams)
	if res.Deaths < 1 || res.Rejoins < 1 || res.Restores < 1 {
		t.Fatalf("chaos counters: deaths=%d rejoins=%d restores=%d",
			res.Deaths, res.Rejoins, res.Restores)
	}
}

// TestLivePartitionStallsAndRecovers projects a partition window onto the
// live transport: sends crossing the machine cut stall until the window
// closes, so the run slows but loses nothing — final parameters stay
// bit-identical to a clean simulator run.
func TestLivePartitionStallsAndRecovers(t *testing.T) {
	clean := liveConfig(core.ARSGD, 8, 4, 42)
	sim := simParams(t, clean)

	cfg := liveConfig(core.ARSGD, 8, 4, 42)
	cfg.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Partition, At: 0, Duration: 0.15, Machines: []int{1}},
	}}
	res, err := RunLoopback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Partitioned == 0 {
		t.Fatalf("partition window stalled no sends: %+v", res.Net)
	}
	requireBitIdentical(t, sim, res.WorkerParams)
}

// TestLiveElasticWithoutCrashMatchesFixedCohort: Elastic with no crash
// schedule is the full fixed cohort — still bit-identical to the
// simulator.
func TestLiveElasticWithoutCrashMatchesFixedCohort(t *testing.T) {
	cfg := liveConfig(core.BSP, 4, 6, 42)
	cfg.Elastic = true
	sim := simParams(t, cfg)
	res, err := RunLoopback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, sim, res.WorkerParams)
}

// TestRunChanRejectsCrash: the channel transport has no process boundary
// to kill and no sockets to redial, so crash schedules are TCP-only.
func TestRunChanRejectsCrash(t *testing.T) {
	cfg := liveConfig(core.BSP, 4, 4, 1)
	cfg.Elastic = true
	cfg.Faults = chaosSchedule()
	if _, err := RunChan(cfg); err == nil {
		t.Fatal("RunChan accepted a crash schedule")
	}
}
