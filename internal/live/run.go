package live

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"disttrain/internal/core"
	"disttrain/internal/nn"
	"disttrain/internal/rng"
	"disttrain/internal/xport"
)

// newEvalModel builds the evaluation model from the shared init stream,
// the same construction the simulator uses for its eval model.
func newEvalModel(cfg *core.Config) *nn.Model {
	return cfg.Real.Factory(rng.New(cfg.Seed).Split(1))
}

// RunCoordinator listens on listenAddr, rendezvouses cfg.Workers worker
// processes, hosts the PS for centralized algorithms, and returns the
// run's Result. This is the multi-process entry point; RunLoopback wraps
// it (plus in-process workers) for single-machine runs.
func RunCoordinator(cfg core.Config, listenAddr string) (*Result, error) {
	if err := Validate(&cfg); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("live: coordinator listen %s: %w", listenAddr, err)
	}
	defer ln.Close()
	return coordinate(&cfg, ln)
}

// RunWorker dials the coordinator at coordAddr and runs one worker to
// completion. meshListen is the address the worker's mesh endpoint listens
// on ("127.0.0.1:0" for loopback; a reachable host:0 for multi-machine
// runs). The worker's rank is assigned by the coordinator.
func RunWorker(cfg core.Config, coordAddr, meshListen string) error {
	if err := Validate(&cfg); err != nil {
		return err
	}
	if meshListen == "" {
		meshListen = "127.0.0.1:0"
	}
	var conn net.Conn
	var err error
	for attempt := 0; attempt < 40; attempt++ {
		conn, err = net.DialTimeout("tcp", coordAddr, 2*time.Second)
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("live: dial coordinator %s: %w", coordAddr, err)
	}
	defer conn.Close()
	return runWorkerConn(&cfg, conn, meshListen)
}

// runWorkerConn executes the worker side of the rendezvous protocol and
// the training run on an established coordinator connection.
func runWorkerConn(cfg *core.Config, conn net.Conn, meshListen string) error {
	if err := writeCtl(conn, &xport.Frame{Kind: kindHello, Data: []byte(fingerprint(cfg))}); err != nil {
		return fmt.Errorf("live: hello: %w", err)
	}
	assign, err := readCtl(conn, kindAssign)
	if err != nil {
		return fmt.Errorf("live: assign: %w", err)
	}
	rank, n := int(assign.From), int(assign.Clock)

	mesh, err := xport.ListenTCP(rank, n, meshListen)
	if err != nil {
		return fmt.Errorf("live: worker %d mesh listen: %w", rank, err)
	}
	defer mesh.Close()
	if err := writeCtl(conn, &xport.Frame{Kind: kindAddr, From: int32(rank),
		Data: []byte(mesh.Addr())}); err != nil {
		return fmt.Errorf("live: worker %d addr: %w", rank, err)
	}
	peers, err := readCtl(conn, kindPeers)
	if err != nil {
		return fmt.Errorf("live: worker %d peers: %w", rank, err)
	}
	mesh.SetPeers(strings.Split(string(peers.Data), ","))

	// Replica construction happens before READY so the START barrier
	// measures training, not model building.
	w := newWorker(cfg, rank, mesh)
	if err := writeCtl(conn, &xport.Frame{Kind: kindReady, From: int32(rank)}); err != nil {
		return fmt.Errorf("live: worker %d ready: %w", rank, err)
	}
	if _, err := readCtl(conn, kindStart); err != nil {
		return fmt.Errorf("live: worker %d start: %w", rank, err)
	}
	if plan, err := TranslateFaults(cfg.Faults, cfg.Seed+uint64(rank)); err == nil && plan != nil {
		mesh.SetFaults(plan, time.Now())
	}

	runErr := w.run()
	if runErr != nil {
		// Report the failure instead of a DONE so the coordinator aborts
		// with the cause rather than a timeout.
		_ = writeCtl(conn, &xport.Frame{Kind: kindDone, From: int32(rank), Seg: -1,
			Data: []byte(runErr.Error())})
		return runErr
	}

	loss, lossInit := w.rep.loss()
	seg := int32(0)
	if lossInit {
		seg = 1
	}
	stats, _ := json.Marshal(mesh.Stats())
	if err := writeCtl(conn, &xport.Frame{Kind: kindDone, From: int32(rank),
		Clock: int32(w.iters), Seg: seg, Aux: loss, Vec: w.rep.params(), Data: stats}); err != nil {
		return fmt.Errorf("live: worker %d done: %w", rank, err)
	}

	// Stay responsive until the coordinator's BYE: gossip targets and
	// AD-PSGD passives must outlive the slowest worker.
	stop := make(chan struct{})
	byeErr := make(chan error, 1)
	go func() {
		_, err := readCtl(conn, kindBye)
		close(stop)
		byeErr <- err
	}()
	if err := w.tail(stop); err != nil {
		return fmt.Errorf("live: worker %d tail: %w", rank, err)
	}
	if err := <-byeErr; err != nil {
		return fmt.Errorf("live: worker %d bye: %w", rank, err)
	}
	return nil
}

// RunLoopback performs a complete live run on this machine: a coordinator
// and cfg.Workers workers, each a goroutine, rendezvousing and training
// over loopback TCP sockets — the full wire path with no orchestration.
func RunLoopback(cfg core.Config) (*Result, error) {
	if err := Validate(&cfg); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("live: loopback listen: %w", err)
	}
	defer ln.Close()

	workerErrs := make(chan error, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		wcfg := cfg
		go func() {
			conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
			if err != nil {
				workerErrs <- fmt.Errorf("live: dial coordinator: %w", err)
				return
			}
			defer conn.Close()
			workerErrs <- runWorkerConn(&wcfg, conn, "127.0.0.1:0")
		}()
	}

	res, err := coordinate(&cfg, ln)
	var firstWorkerErr error
	for i := 0; i < cfg.Workers; i++ {
		if werr := <-workerErrs; werr != nil && firstWorkerErr == nil {
			firstWorkerErr = werr
		}
	}
	if err != nil {
		return nil, err
	}
	if firstWorkerErr != nil {
		return nil, firstWorkerErr
	}
	return res, nil
}

// RunChan performs a complete live run over the in-process channel
// transport: no sockets, no rendezvous — a direct harness for the worker
// and server protocol loops. Real goroutine scheduling still applies, so
// asynchronous algorithms remain nondeterministic.
func RunChan(cfg core.Config) (*Result, error) {
	if err := Validate(&cfg); err != nil {
		return nil, err
	}
	n := meshSize(&cfg)
	cn := xport.NewChanNet(n)

	var finalGlobal []float32
	srvDone := make(chan error, 1)
	if cfg.Algo.Centralized() {
		go func() {
			sv := newServer(&cfg, cn.Endpoint(cfg.Workers))
			params, err := sv.run()
			finalGlobal = params
			srvDone <- err
		}()
	} else {
		srvDone <- nil
	}

	start := time.Now()
	workers := make([]*worker, cfg.Workers)
	reports := make([]doneInfo, cfg.Workers)
	errs := make([]error, cfg.Workers)
	stop := make(chan struct{})
	var running sync.WaitGroup
	var tails sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		i := i
		workers[i] = newWorker(&cfg, i, cn.Endpoint(i))
		running.Add(1)
		tails.Add(1)
		go func() {
			w := workers[i]
			err := w.run()
			loss, lossInit := w.rep.loss()
			reports[i] = doneInfo{iters: w.iters, loss: loss, lossInit: lossInit, params: w.rep.params()}
			errs[i] = err
			running.Done()
			if err == nil {
				err = w.tail(stop)
				if err != nil {
					errs[i] = err
				}
			}
			tails.Done()
		}()
	}

	running.Wait()
	wall := time.Since(start).Seconds()
	if err := <-srvDone; err != nil {
		close(stop)
		tails.Wait()
		return nil, err
	}
	close(stop) // the in-process BYE: release the tail loops
	tails.Wait()
	for i := 0; i < n; i++ {
		cn.Endpoint(i).Close()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res, err := buildResult(&cfg, reports, finalGlobal, wall, nil)
	if err != nil {
		return nil, err
	}
	res.Transport = "chan"
	return res, nil
}
