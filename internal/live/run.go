package live

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"disttrain/internal/core"
	"disttrain/internal/fault"
	"disttrain/internal/nn"
	"disttrain/internal/rng"
	"disttrain/internal/xport"
)

// newEvalModel builds the evaluation model from the shared init stream,
// the same construction the simulator uses for its eval model.
func newEvalModel(cfg *core.Config) *nn.Model {
	return cfg.Real.Factory(rng.New(cfg.Seed).Split(1))
}

// RunCoordinator listens on listenAddr, rendezvouses cfg.Workers worker
// processes, hosts the PS for centralized algorithms, and returns the
// run's Result. This is the multi-process entry point; RunLoopback wraps
// it (plus in-process workers) for single-machine runs.
func RunCoordinator(cfg core.Config, listenAddr string, opts ...Option) (*Result, error) {
	if err := Validate(&cfg); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("live: coordinator listen %s: %w", listenAddr, err)
	}
	defer ln.Close()
	return coordinate(&cfg, ln, buildOptions(opts))
}

// dialCoordinator dials coordAddr with patient retries: workers routinely
// launch before the coordinator's listener is up, and a restarted worker
// rejoins mid-run.
func dialCoordinator(coordAddr string) (net.Conn, error) {
	var conn net.Conn
	var err error
	for attempt := 0; attempt < 40; attempt++ {
		conn, err = net.DialTimeout("tcp", coordAddr, 2*time.Second)
		if err == nil {
			return conn, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("live: dial coordinator %s: %w", coordAddr, err)
}

// RunWorker dials the coordinator at coordAddr and runs one worker to
// completion. meshListen is the address the worker's mesh endpoint listens
// on ("127.0.0.1:0" for loopback; a reachable host:0 for multi-machine
// runs). The worker's rank is assigned by the coordinator.
func RunWorker(cfg core.Config, coordAddr, meshListen string, opts ...Option) error {
	if err := Validate(&cfg); err != nil {
		return err
	}
	if meshListen == "" {
		meshListen = "127.0.0.1:0"
	}
	conn, err := dialCoordinator(coordAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return runWorkerConn(&cfg, conn, meshListen, buildOptions(opts))
}

// life drives one worker rank across every incarnation of its process
// state: run until DONE, or die on schedule, sleep out the restart delay,
// rejoin, restore from checkpoint, and run again.
type life struct {
	cfg        *core.Config
	o          *Options
	rank       int
	n          int
	fp         string
	coordAddr  string
	myMeshAddr string
	plan       *xport.FaultPlan
	link       *ctlLink
	mesh       *xport.TCPNet
	w          *worker
	prev       doneStats // counters carried across dead incarnations
}

// startHeartbeat renews the worker's liveness lease with the coordinator
// until the returned channel is closed (or the link dies).
func startHeartbeat(link *ctlLink, w *worker) chan struct{} {
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(heartbeatPeriod)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if link.write(&xport.Frame{Kind: kindHeartbeat, From: int32(w.rank),
					Clock: int32(w.prog.Load())}) != nil {
					return
				}
			}
		}
	}()
	return stop
}

// rejoinCoordinator performs the restarted worker's re-admission handshake
// and returns the new control connection plus the REJOIN-OK frame.
func rejoinCoordinator(coordAddr, fp string, rank int) (net.Conn, xport.Frame, error) {
	conn, err := dialCoordinator(coordAddr)
	if err != nil {
		return nil, xport.Frame{}, err
	}
	if err := writeCtl(conn, &xport.Frame{Kind: kindRejoin, From: int32(rank),
		Data: []byte(fp)}); err != nil {
		conn.Close()
		return nil, xport.Frame{}, fmt.Errorf("live: worker %d rejoin: %w", rank, err)
	}
	ok, err := readCtl(conn, kindRejoinOK)
	if err != nil {
		conn.Close()
		return nil, xport.Frame{}, fmt.Errorf("live: worker %d rejoin-ok: %w", rank, err)
	}
	return conn, ok, nil
}

// rebindMesh re-listens on the worker's original mesh address. The old
// socket may linger briefly after an abrupt close, so it retries.
func rebindMesh(rank, n int, addr string) (*xport.TCPNet, error) {
	var mesh *xport.TCPNet
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		mesh, err = xport.ListenTCP(rank, n, addr)
		if err == nil {
			return mesh, nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("live: worker %d rebind mesh %s: %w", rank, addr, err)
}

// restart rebuilds the worker's process state after a scheduled death: new
// control connection via the rejoin handshake, mesh re-listened on the same
// port (so peers' address tables stay valid), fault-plan clock re-anchored
// to the run's START, and a fresh replica restored from the latest
// checkpoint. Without a checkpoint the replica restarts from initialization
// — the run still completes, it just loses that worker's progress.
func (l *life) restart(next int) error {
	conn, ok, err := rejoinCoordinator(l.coordAddr, l.fp, l.rank)
	if err != nil {
		return err
	}
	l.link = &ctlLink{c: conn}
	peerAddrs := strings.Split(string(ok.Data), ",")
	mesh, err := rebindMesh(l.rank, l.n, l.myMeshAddr)
	if err != nil {
		conn.Close()
		return err
	}
	mesh.SetPeers(peerAddrs)
	if l.plan != nil {
		mesh.SetFaults(l.plan, time.Now().Add(-time.Duration(ok.Aux*float64(time.Second))))
	}
	l.mesh = mesh
	l.w = newWorker(l.cfg, l.rank, mesh, l.o)
	if l.o != nil && l.o.ckpt.Enabled() {
		sp := l.w.span("restore", "ckpt")
		if _, draws, err := l.w.rep.restoreState(l.o.ckpt.Path(l.rank)); err == nil {
			l.w.draws = draws
			l.prev.Restores++
			l.o.metrics.addRestore()
		}
		sp.End()
	}
	l.w.startIter = next
	return nil
}

// run is the incarnation loop: train until DONE or scheduled death,
// restarting through the rejoin handshake as many times as the schedule
// demands. Returns nil without a DONE when the schedule never revives the
// rank — the coordinator writes that rank off from its last heartbeat.
func (l *life) run() error {
	cfg, rank := l.cfg, l.rank
	for {
		var hbStop chan struct{}
		if l.w.ch != nil {
			hbStop = startHeartbeat(l.link, l.w)
		}
		runErr := l.w.run()
		if hbStop != nil {
			close(hbStop)
		}
		var d deathErr
		if errors.As(runErr, &d) {
			// Scheduled death: tear the incarnation down abruptly — close
			// the mesh and control connection mid-protocol, exactly what a
			// killed process would leave behind.
			l.prev.add(l.mesh.Stats())
			l.mesh.Close()
			l.link.c.Close()
			if l.o != nil && l.o.exitOnDeath {
				// External-restart mode: the supervisor owns the relaunch
				// (RunWorkerRejoin); this process is done.
				return ErrScheduledDeath
			}
			next := l.w.ch.nextAlive(rank, d.it)
			if next == 0 || next > cfg.Iters {
				return nil
			}
			time.Sleep(time.Duration(l.w.ch.restartDelay(rank, d.it) * float64(time.Second)))
			if err := l.restart(next); err != nil {
				return err
			}
			continue
		}
		if runErr != nil {
			// Report the failure instead of a DONE so the coordinator
			// aborts with the cause rather than a timeout.
			_ = l.link.write(&xport.Frame{Kind: kindDone, From: int32(rank), Seg: -1,
				Data: []byte(runErr.Error())})
			return runErr
		}
		break
	}

	loss, lossInit := l.w.rep.loss()
	seg := int32(0)
	if lossInit {
		seg = 1
	}
	ds := l.prev
	ds.add(l.mesh.Stats())
	payload, _ := json.Marshal(ds)
	if err := l.link.write(&xport.Frame{Kind: kindDone, From: int32(rank),
		Clock: int32(l.w.iters), Seg: seg, Aux: loss, Vec: l.w.rep.params(), Data: payload}); err != nil {
		return fmt.Errorf("live: worker %d done: %w", rank, err)
	}

	// Stay responsive until the coordinator's BYE: gossip targets and
	// AD-PSGD passives must outlive the slowest worker.
	stop := make(chan struct{})
	byeErr := make(chan error, 1)
	go func() {
		_, err := readCtl(l.link.c, kindBye)
		close(stop)
		byeErr <- err
	}()
	if err := l.w.tail(stop); err != nil {
		return fmt.Errorf("live: worker %d tail: %w", rank, err)
	}
	if err := <-byeErr; err != nil {
		return fmt.Errorf("live: worker %d bye: %w", rank, err)
	}
	return nil
}

// runWorkerConn executes the worker side of the rendezvous protocol and
// the training run on an established coordinator connection.
func runWorkerConn(cfg *core.Config, conn net.Conn, meshListen string, o *Options) error {
	fp := fingerprint(cfg)
	link := &ctlLink{c: conn}
	if err := link.write(&xport.Frame{Kind: kindHello, Data: []byte(fp)}); err != nil {
		return fmt.Errorf("live: hello: %w", err)
	}
	assign, err := readCtl(conn, kindAssign)
	if err != nil {
		return fmt.Errorf("live: assign: %w", err)
	}
	rank, n := int(assign.From), int(assign.Clock)

	mesh, err := xport.ListenTCP(rank, n, meshListen)
	if err != nil {
		return fmt.Errorf("live: worker %d mesh listen: %w", rank, err)
	}
	if err := link.write(&xport.Frame{Kind: kindAddr, From: int32(rank),
		Data: []byte(mesh.Addr())}); err != nil {
		mesh.Close()
		return fmt.Errorf("live: worker %d addr: %w", rank, err)
	}
	peers, err := readCtl(conn, kindPeers)
	if err != nil {
		mesh.Close()
		return fmt.Errorf("live: worker %d peers: %w", rank, err)
	}
	peerAddrs := strings.Split(string(peers.Data), ",")
	mesh.SetPeers(peerAddrs)

	// Replica construction happens before READY so the START barrier
	// measures training, not model building.
	w := newWorker(cfg, rank, mesh, o)
	if err := link.write(&xport.Frame{Kind: kindReady, From: int32(rank)}); err != nil {
		mesh.Close()
		return fmt.Errorf("live: worker %d ready: %w", rank, err)
	}
	// The wait between READY and START is the run's admission barrier: its
	// span length shows how long this rank idled for the slowest peer.
	spBarrier := o.tracer.StartSpan("start-barrier", "barrier", workerPid, rank)
	if _, err := readCtl(conn, kindStart); err != nil {
		mesh.Close()
		return fmt.Errorf("live: worker %d start: %w", rank, err)
	}
	spBarrier.End()
	var plan *xport.FaultPlan
	if p, perr := TranslateFaults(cfg.Faults, cfg.Seed+uint64(rank), cfg.Cluster,
		cfg.Workers, o.slowUnit); perr == nil {
		plan = p
	}
	if plan != nil {
		mesh.SetFaults(plan, time.Now())
	}

	l := &life{
		cfg: cfg, o: o, rank: rank, n: n, fp: fp,
		coordAddr:  conn.RemoteAddr().String(),
		myMeshAddr: peerAddrs[rank],
		plan:       plan, link: link, mesh: mesh, w: w,
	}
	// Deferred closures see the *current* incarnation's handles: restarts
	// replace l.mesh and l.link.
	defer func() { l.mesh.Close() }()
	defer func() { l.link.c.Close() }()
	return l.run()
}

// RunWorkerRejoin is the external-restart entry point: a worker process
// that was killed (rather than dying in-process under RunWorker's life
// loop) relaunches with its original rank, restores its checkpoint, and
// re-enters the run through the coordinator's REJOIN handshake. It
// requires a crash schedule (to locate the dead window) and a checkpoint
// directory.
func RunWorkerRejoin(cfg core.Config, coordAddr string, rank int, opts ...Option) error {
	if err := Validate(&cfg); err != nil {
		return err
	}
	o := buildOptions(opts)
	ch := newChaos(&cfg)
	if ch == nil {
		return fmt.Errorf("live: rejoin requires a crash fault schedule")
	}
	if rank < 0 || rank >= cfg.Workers {
		return fmt.Errorf("live: rejoin rank %d out of range [0,%d)", rank, cfg.Workers)
	}
	if !o.ckpt.Enabled() {
		return fmt.Errorf("live: rejoin requires a checkpoint directory")
	}
	n := meshSize(&cfg)
	fp := fingerprint(&cfg)

	conn, ok, err := rejoinCoordinator(coordAddr, fp, rank)
	if err != nil {
		return err
	}
	peerAddrs := strings.Split(string(ok.Data), ",")
	mesh, err := rebindMesh(rank, n, peerAddrs[rank])
	if err != nil {
		conn.Close()
		return err
	}
	mesh.SetPeers(peerAddrs)
	var plan *xport.FaultPlan
	if p, perr := TranslateFaults(cfg.Faults, cfg.Seed+uint64(rank), cfg.Cluster,
		cfg.Workers, o.slowUnit); perr == nil {
		plan = p
	}
	if plan != nil {
		mesh.SetFaults(plan, time.Now().Add(-time.Duration(ok.Aux*float64(time.Second))))
	}

	l := &life{
		cfg: &cfg, o: o, rank: rank, n: n, fp: fp,
		coordAddr:  conn.RemoteAddr().String(),
		myMeshAddr: peerAddrs[rank],
		plan:       plan, link: &ctlLink{c: conn},
		mesh: mesh,
		w:    newWorker(&cfg, rank, mesh, o),
	}
	defer func() { l.mesh.Close() }()
	defer func() { l.link.c.Close() }()

	// Locate the resume point from the checkpoint: the first dead window
	// after the checkpointed step is the death this relaunch recovers from.
	step := 0
	spRestore := l.w.span("restore", "ckpt")
	if s, draws, rerr := l.w.rep.restoreState(o.ckpt.Path(rank)); rerr == nil {
		step, l.w.draws = s, draws
		l.prev.Restores++
		o.metrics.addRestore()
	}
	spRestore.End()
	die := 0
	for it := step + 1; it <= cfg.Iters; it++ {
		if !ch.aliveAt(rank, it) {
			die = it
			break
		}
	}
	if die == 0 {
		return fmt.Errorf("live: worker %d has no dead window after checkpoint step %d — nothing to rejoin", rank, step)
	}
	next := ch.nextAlive(rank, die)
	if next == 0 || next > cfg.Iters {
		return nil
	}
	l.w.startIter = next
	return l.run()
}

// RunLoopback performs a complete live run on this machine: a coordinator
// and cfg.Workers workers, each a goroutine, rendezvousing and training
// over loopback TCP sockets — the full wire path with no orchestration.
func RunLoopback(cfg core.Config, opts ...Option) (*Result, error) {
	if err := Validate(&cfg); err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("live: loopback listen: %w", err)
	}
	defer ln.Close()

	workerErrs := make(chan error, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		wcfg := cfg
		go func() {
			conn, err := net.DialTimeout("tcp", ln.Addr().String(), 2*time.Second)
			if err != nil {
				workerErrs <- fmt.Errorf("live: dial coordinator: %w", err)
				return
			}
			defer conn.Close()
			workerErrs <- runWorkerConn(&wcfg, conn, "127.0.0.1:0", o)
		}()
	}

	res, err := coordinate(&cfg, ln, o)
	var firstWorkerErr error
	for i := 0; i < cfg.Workers; i++ {
		if werr := <-workerErrs; werr != nil && firstWorkerErr == nil {
			firstWorkerErr = werr
		}
	}
	if err != nil {
		return nil, err
	}
	if firstWorkerErr != nil {
		return nil, firstWorkerErr
	}
	return res, nil
}

// RunChan performs a complete live run over the in-process channel
// transport: no sockets, no rendezvous — a direct harness for the worker
// and server protocol loops. Real goroutine scheduling still applies, so
// asynchronous algorithms remain nondeterministic.
func RunChan(cfg core.Config, opts ...Option) (*Result, error) {
	if err := Validate(&cfg); err != nil {
		return nil, err
	}
	if cfg.Faults.HasKind(fault.Crash) {
		return nil, fmt.Errorf("live: crash faults need the TCP transport (RunLoopback) for the restart/rejoin machinery")
	}
	o := buildOptions(opts)
	n := meshSize(&cfg)
	cn := xport.NewChanNet(n)

	var finalGlobal []float32
	srvDone := make(chan error, 1)
	if cfg.Algo.Centralized() {
		go func() {
			sv := newServer(&cfg, cn.Endpoint(cfg.Workers), o)
			params, err := sv.run()
			finalGlobal = params
			srvDone <- err
		}()
	} else {
		srvDone <- nil
	}

	start := time.Now()
	workers := make([]*worker, cfg.Workers)
	reports := make([]doneInfo, cfg.Workers)
	errs := make([]error, cfg.Workers)
	stop := make(chan struct{})
	var running sync.WaitGroup
	var tails sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		i := i
		workers[i] = newWorker(&cfg, i, cn.Endpoint(i), o)
		running.Add(1)
		tails.Add(1)
		go func() {
			w := workers[i]
			err := w.run()
			loss, lossInit := w.rep.loss()
			reports[i] = doneInfo{iters: w.iters, loss: loss, lossInit: lossInit, params: w.rep.params()}
			errs[i] = err
			running.Done()
			if err == nil {
				err = w.tail(stop)
				if err != nil {
					errs[i] = err
				}
			}
			tails.Done()
		}()
	}

	running.Wait()
	wall := time.Since(start).Seconds()
	if err := <-srvDone; err != nil {
		close(stop)
		tails.Wait()
		return nil, err
	}
	close(stop) // the in-process BYE: release the tail loops
	tails.Wait()
	for i := 0; i < n; i++ {
		cn.Endpoint(i).Close()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res, err := buildResult(&cfg, reports, finalGlobal, wall, nil)
	if err != nil {
		return nil, err
	}
	res.Transport = "chan"
	return res, nil
}
