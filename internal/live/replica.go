package live

import (
	"sync"

	"disttrain/internal/core"
	"disttrain/internal/data"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
	"disttrain/internal/tensor"
)

// streams holds the RNG streams one live worker derives from the
// experiment seed.
type streams struct {
	init  *rng.RNG // model initialization (identical for every worker)
	shard *rng.RNG // batch sampling for this worker's data shard
	algo  *rng.RNG // algorithm decisions (gossip draws, peer choice)
}

// deriveStreams replays the simulator's seed-derivation sequence
// (core.setup) for worker w. rng.Split advances the parent, so each root's
// earlier splits must be replayed in order for worker w's own split to see
// the same parent state the simulator's did — that replay is the whole
// trick that lets W independent processes agree with one simulator loop.
func deriveStreams(seed uint64, w int) streams {
	root := rng.New(seed)
	_ = root.Split(1) // label 1 is reserved for model initialization streams
	shardRoot := root.Split(2)
	_ = root.Split(3) // jitter root: virtual-time only, but it advances root
	algoRoot := root.Split(4)

	var s streams
	for i := 0; i <= w; i++ {
		algo := algoRoot.Split(uint64(i))
		shard := shardRoot.Split(uint64(i))
		if i == w {
			s.algo, s.shard = algo, shard
		}
	}
	s.init = rng.New(seed).Split(1)
	return s
}

// liveReplica is one live worker's training state, mirroring the
// simulator's real-mode replica construction field for field so the two
// runtimes produce identical numerics from identical streams. Unlike the
// simulator's replica it carries a mutex: AD-PSGD's passive workers serve
// parameter exchanges from a second goroutine while the compute loop runs.
type liveReplica struct {
	mu sync.Mutex

	model   *nn.Model
	sampler *data.Sampler
	train   *data.Dataset
	localO  *opt.SGD
	augment *data.Augment
	augRNG  *rng.RNG

	xbuf  *tensor.Tensor
	ybuf  []int
	grads []float32
	arena *tensor.Arena
	flat  []float32

	lossEWMA float64
	lossInit bool
}

// newLiveReplica builds worker w's replica with exactly the simulator's
// construction sequence (newRealReplica): same factory call, same shard,
// same sampler stream, same optimizer, same augmentation stream label.
func newLiveReplica(w int, cfg *core.Config, s streams) *liveReplica {
	r := &liveReplica{}
	r.model = cfg.Real.Factory(s.init)
	r.train = cfg.Real.Train
	shard := data.ShardIndices(cfg.Real.Train.N(), cfg.Workers, w)
	r.sampler = data.NewSampler(shard, cfg.Real.Batch, s.shard)
	r.localO = opt.NewSGD(r.model.NumParams(), cfg.Momentum, cfg.WeightDecay)
	r.grads = make([]float32, r.model.NumParams())
	r.arena = tensor.NewArena()
	r.model.SetArena(r.arena)
	r.flat = make([]float32, r.model.NumParams())
	if cfg.Real.Augment != nil {
		r.augment = cfg.Real.Augment
		r.augRNG = s.shard.Split(0xa06)
	}
	return r
}

func (r *liveReplica) size() int { return r.model.NumParams() }

// gradPass runs one forward/backward pass on the next mini-batch and
// returns the gradient buffer (valid until the next call), folding the
// batch loss into the EWMA — the simulator's gradPass + foldLoss.
func (r *liveReplica) gradPass() []float32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	idx := r.sampler.Next()
	r.xbuf, r.ybuf = r.train.Gather(idx, r.xbuf, r.ybuf)
	if r.augment != nil {
		r.augment.Apply(r.xbuf, r.augRNG)
	}
	r.model.ZeroGrads()
	loss, _ := r.model.Loss(r.xbuf, r.ybuf)
	g := r.model.FlatGrads(r.grads)
	if !r.lossInit {
		r.lossEWMA, r.lossInit = loss, true
	} else {
		r.lossEWMA = 0.9*r.lossEWMA + 0.1*loss
	}
	return g
}

func (r *liveReplica) loss() (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lossEWMA, r.lossInit
}

// localStep applies one local SGD step with gradient g.
func (r *liveReplica) localStep(g []float32, lr float32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	flat := r.model.FlatParams(r.flat)
	r.localO.Step(flat, g, lr)
	r.model.SetFlatParams(flat)
}

// params returns a fresh copy of the flat parameters.
func (r *liveReplica) params() []float32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.model.FlatParams(nil)
}

// setParams overwrites the full parameter vector.
func (r *liveReplica) setParams(src []float32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.model.SetFlatParams(src)
}

// average sets params ← (params + other)/2, the AD-PSGD merge.
func (r *liveReplica) average(other []float32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	flat := r.model.FlatParams(r.flat)
	for i := range flat {
		flat[i] = 0.5 * (flat[i] + other[i])
	}
	r.model.SetFlatParams(flat)
}

// saveState checkpoints the replica's full training state — parameters,
// momentum, loss EWMA, and the data-stream counters — atomically to path.
func (r *liveReplica) saveState(path string, step, draws int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &nn.TrainState{
		Step:     uint64(step),
		Draws:    uint64(draws),
		Loss:     r.lossEWMA,
		LossInit: r.lossInit,
		Velocity: r.localO.Velocity(),
	}
	if r.augRNG != nil {
		st.AugRNG = r.augRNG.State()
		st.AugRNGSet = true
	}
	return nn.SaveState(path, r.model, st)
}

// restoreState loads a checkpoint written by saveState into the replica:
// parameters and momentum in place, loss EWMA, the sampler fast-forwarded
// by the checkpointed draw count, and the augmentation RNG restored to its
// exact checkpointed state. NewSampler shuffles deterministically from the
// shard stream and Next reshuffles on epoch boundaries only as a function
// of the draw count, so replaying Draws calls on a freshly built replica
// reproduces the dead worker's exact stream position; the augmentation
// stream advances a data-dependent number of times per batch, so it is
// restored from raw state rather than replayed (v1 checkpoints predate that
// section and leave the fresh stream in place). Returns the checkpointed
// step so the caller knows where to resume.
func (r *liveReplica) restoreState(path string) (step, draws int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, err := nn.LoadState(path, r.model)
	if err != nil {
		return 0, 0, err
	}
	if len(st.Velocity) > 0 {
		copy(r.localO.Velocity(), st.Velocity)
	}
	r.lossEWMA, r.lossInit = st.Loss, st.LossInit
	for i := uint64(0); i < st.Draws; i++ {
		r.sampler.Next()
	}
	if st.AugRNGSet && r.augRNG != nil {
		r.augRNG.SetState(st.AugRNG)
	}
	return int(st.Step), int(st.Draws), nil
}

// weightedMerge performs GoSGD's merge: x ← (w·x + ws·xs)/(w+ws),
// returning the new local weight w+ws.
func (r *liveReplica) weightedMerge(own float64, xs []float32, ws float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	flat := r.model.FlatParams(r.flat)
	a := float32(own / (own + ws))
	b := float32(ws / (own + ws))
	for i := range flat {
		flat[i] = a*flat[i] + b*xs[i]
	}
	r.model.SetFlatParams(flat)
	return own + ws
}
