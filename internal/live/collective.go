package live

import (
	"fmt"

	"disttrain/internal/tensor"
	"disttrain/internal/xport"
)

// The live collectives mirror internal/comm's algorithms over xport
// endpoints: identical chunk boundaries, identical reduction order,
// identical tree shape — which is what keeps an AR-SGD run bit-identical
// between the simulator and the live path. The one wire-level difference:
// the simulator's in-order links let reduce-scatter and all-gather share
// chunk tags, but TCP ordering is per-connection and redials can reorder,
// so the live ring tags all-gather chunks with Seg = n + c to keep the two
// phases unambiguous in the mailbox.

// arChunk builds one AllReduce frame for elements [lo, hi) of vec. A leaf
// contribution (quant = true, q non-nil) ships the sliced codec payload —
// which reconstructs to exactly the round-tripped values in vec — while
// partial sums and gathered results stay dense (they are off the codec's
// grid; re-encoding them would diverge from the simulator).
func arChunk(q *arQuant, vec []float32, lo, hi int, quant bool, f *xport.Frame) {
	if quant && q != nil {
		qv := sliceQuantVec(q.qv, lo, hi)
		f.Data = qv.AppendEncode(nil)
		q.saved.Add(int64(4*(hi-lo)) - int64(len(f.Data)))
		return
	}
	f.Vec = append([]float32(nil), vec[lo:hi]...)
}

// arRecvVec extracts the chunk payload from a received AllReduce frame,
// decoding a codec payload (a peer's leaf contribution) when present.
func arRecvVec(q *arQuant, f *xport.Frame, wantLen int) ([]float32, error) {
	if len(f.Data) == 0 {
		return f.Vec, nil
	}
	if q == nil {
		return nil, fmt.Errorf("live: quantized allreduce chunk from %d in a dense run", f.From)
	}
	sp := q.span("dequantize", "quant")
	defer sp.End()
	if err := decodeGradPayload(q.codec, f, wantLen); err != nil {
		return nil, err
	}
	return f.Vec, nil
}

// ringAllReduce sums vec in place across the group: reduce-scatter then
// all-gather around the ring, comm.OpRingAllReduce's exact math. nodes are
// mesh ranks; self indexes the caller. q non-nil ships first-hop chunks —
// the caller's own round-tripped gradient — in codec form.
func ringAllReduce(mb *mailbox, nodes []int, self int, clock int32, vec []float32, q *arQuant) error {
	n := len(nodes)
	if n == 1 {
		return nil
	}
	l := len(vec)
	chunkLo := func(c int) int { return l * c / n }
	chunkHi := func(c int) int { return l * (c + 1) / n }
	right := nodes[(self+1)%n]
	send := func(c, tag int, quant bool) error {
		f := &xport.Frame{Kind: kindAllReduce, From: int32(nodes[self]),
			Clock: clock, Seg: int32(tag)}
		arChunk(q, vec, chunkLo(c), chunkHi(c), quant, f)
		return mb.ep.Send(right, f)
	}

	// Reduce-scatter: after n-1 steps, participant i holds the full sum of
	// chunk (i+1) mod n. Only the first step's chunk is the sender's own
	// un-summed contribution, so only it travels quantized.
	for s := 0; s < n-1; s++ {
		c := ((self-s)%n + n) % n
		if err := send(c, c, s == 0); err != nil {
			return err
		}
		c = ((self-s-1)%n + n) % n
		f, err := mb.recvMatch(kindAllReduce, clock, int32(c), true, recvTimeout)
		if err != nil {
			return err
		}
		chunk, err := arRecvVec(q, &f, chunkHi(c)-chunkLo(c))
		if err != nil {
			return err
		}
		tensor.AxpyF32(1, chunk, vec[chunkLo(c):chunkHi(c)])
	}
	// All-gather: circulate the reduced chunks (tags offset by n).
	for s := 0; s < n-1; s++ {
		c := ((self+1-s)%n + n) % n
		if err := send(c, n+c, false); err != nil {
			return err
		}
		c = ((self-s)%n + n) % n
		f, err := mb.recvMatch(kindAllReduce, clock, int32(n+c), true, recvTimeout)
		if err != nil {
			return err
		}
		copy(vec[chunkLo(c):chunkHi(c)], f.Vec)
	}
	return nil
}

// treeAllReduce sums vec across the group with a binomial reduce-to-root
// plus broadcast, comm.OpTreeAllReduce's exact shape. Reduce frames carry
// Seg 0, broadcast frames Seg 1. q non-nil ships leaf contributions — a
// rank's own round-tripped gradient, sent before it has folded anything
// in — in codec form; partial sums and the broadcast stay dense.
func treeAllReduce(mb *mailbox, nodes []int, self int, clock int32, vec []float32, q *arQuant) error {
	n := len(nodes)
	if n == 1 {
		return nil
	}
	send := func(to int, seg int32, quant bool) error {
		f := &xport.Frame{Kind: kindAllReduce, From: int32(nodes[self]),
			Clock: clock, Seg: seg}
		arChunk(q, vec, 0, len(vec), quant, f)
		return mb.ep.Send(nodes[to], f)
	}
	recv := func(seg int32, add bool) error {
		f, err := mb.recvMatch(kindAllReduce, clock, seg, true, recvTimeout)
		if err != nil {
			return err
		}
		payload, err := arRecvVec(q, &f, len(vec))
		if err != nil {
			return err
		}
		if add {
			tensor.AxpyF32(1, payload, vec)
		} else {
			copy(vec, payload)
		}
		return nil
	}

	// Reduce: in round k (distance d = 2^k), ranks with self%2d == d send to
	// self-d and drop out; ranks with self%2d == 0 receive. A rank that
	// sends before ever receiving is a leaf: its vector is still its own
	// quantized contribution.
	leaf := true
	for d := 1; d < n; d *= 2 {
		if self%(2*d) == d {
			if err := send(self-d, 0, leaf); err != nil {
				return err
			}
			break
		}
		if self%(2*d) == 0 && self+d < n {
			if err := recv(0, true); err != nil {
				return err
			}
			leaf = false
		}
	}
	// Broadcast back down the same tree, mirrored: largest distance first.
	top := 1
	for top < n {
		top *= 2
	}
	for d := top / 2; d >= 1; d /= 2 {
		switch {
		case self%(2*d) == 0 && self+d < n:
			if err := send(self+d, 1, false); err != nil {
				return err
			}
		case self%(2*d) == d:
			if err := recv(1, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// gather sums every member's vector into the leader's (nodes[0]); members
// return immediately after sending — comm.OpGather.
func gather(mb *mailbox, nodes []int, self int, clock int32, vec []float32) error {
	if len(nodes) == 1 {
		return nil
	}
	if self != 0 {
		payload := append([]float32(nil), vec...)
		return mb.ep.Send(nodes[0], &xport.Frame{Kind: kindGather, From: int32(nodes[self]),
			Clock: clock, Vec: payload})
	}
	for i := 0; i < len(nodes)-1; i++ {
		f, err := mb.recvMatch(kindGather, clock, 0, false, recvTimeout)
		if err != nil {
			return err
		}
		tensor.AxpyF32(1, f.Vec, vec)
	}
	return nil
}

// broadcast ships the leader's vector to every member; members receive it
// into vec — comm.OpBroadcast.
func broadcast(mb *mailbox, nodes []int, self int, clock int32, vec []float32) error {
	if len(nodes) == 1 {
		return nil
	}
	if self == 0 {
		for i := 1; i < len(nodes); i++ {
			payload := append([]float32(nil), vec...)
			if err := mb.ep.Send(nodes[i], &xport.Frame{Kind: kindBcast, From: int32(nodes[0]),
				Clock: clock, Vec: payload}); err != nil {
				return err
			}
		}
		return nil
	}
	f, err := mb.recvMatch(kindBcast, clock, 0, false, recvTimeout)
	if err != nil {
		return err
	}
	copy(vec, f.Vec)
	return nil
}
