package live

import (
	"fmt"
	"sort"

	"disttrain/internal/core"
	"disttrain/internal/nn"
	"disttrain/internal/ps"
	"disttrain/internal/rng"
	"disttrain/internal/trace"
	"disttrain/internal/xport"
)

// server hosts the parameter server for the centralized algorithms on mesh
// rank W. It owns a ps.Global initialized from the shared init stream —
// the same ps.Global, fed through the same float paths, that the simulator
// uses, which is half of the bit-identity contract (the other half is the
// workers' pinned reduction order).
type server struct {
	cfg    *core.Config
	W      int
	ep     xport.Endpoint
	mb     *mailbox
	global *ps.Global
	assign ps.Assignment
	vecLen int

	// model is kept around as the serialization vehicle for PS checkpoints;
	// ch and ckpt mirror the workers' chaos membership and cadence.
	model *nn.Model
	ch    *chaos
	ckpt  nn.Cadence

	// codec is the gradient wire codec workers compress with (0 = dense);
	// tr records dequantize spans on the coordinator track.
	codec xport.QuantCodec
	tr    *trace.Tracer
}

func newServer(cfg *core.Config, ep xport.Endpoint, o *Options) *server {
	// The simulator seeds the global from replica 0's parameters; every
	// replica starts from the shared init stream (seed → Split(1)), so
	// building a model from a fresh stream yields the identical vector.
	model := cfg.Real.Factory(rng.New(cfg.Seed).Split(1))
	init := model.FlatParams(nil)
	sv := &server{
		cfg:    cfg,
		W:      cfg.Workers,
		ep:     ep,
		mb:     newMailbox(ep),
		global: ps.NewGlobal(init, cfg.Momentum, cfg.WeightDecay),
		assign: ps.Single(len(init)),
		vecLen: len(init),
		model:  model,
		ch:     newChaos(cfg),
		codec:  quantCodec(cfg),
	}
	if o != nil {
		sv.ckpt = o.ckpt
		sv.tr = o.tracer
	}
	return sv
}

// dequantGrad reconstructs a quantized gradient frame's dense vector into
// f.Vec; dense runs pass frames through untouched.
func (sv *server) dequantGrad(f *xport.Frame) error {
	if sv.codec == 0 {
		return nil
	}
	sp := sv.tr.StartSpan("dequantize", "quant", coordPid, 0)
	defer sp.End()
	return decodeGradPayload(sv.codec, f, sv.vecLen)
}

// maybeCheckpoint writes the global parameters as a PS checkpoint if step
// is a cadence boundary.
func (sv *server) maybeCheckpoint(step int) error {
	if !sv.ckpt.Due(step) {
		return nil
	}
	sv.model.SetFlatParams(sv.snapshot())
	return nn.SaveState(sv.ckpt.Path(-1), sv.model, &nn.TrainState{Step: uint64(step)})
}

// snapshot returns a fresh copy of the global parameters.
func (sv *server) snapshot() []float32 {
	out := make([]float32, sv.vecLen)
	sv.global.Snapshot(sv.assign[0], out)
	return out
}

// run serves the PS protocol until every worker has sent its mesh-level
// bye, then returns the final global parameters.
func (sv *server) run() ([]float32, error) {
	var err error
	switch sv.cfg.Algo {
	case core.BSP:
		err = sv.runBSP()
	case core.ASP:
		err = sv.runASP()
	case core.SSP:
		err = sv.runSSP()
	case core.EASGD:
		err = sv.runEASGD()
	default:
		err = fmt.Errorf("no server loop for %s", sv.cfg.Algo)
	}
	if err != nil {
		return nil, fmt.Errorf("live: server (%s): %w", sv.cfg.Algo, err)
	}
	return sv.snapshot(), nil
}

// awaitByes blocks until the remaining workers have said goodbye — all of
// them, or under a crash schedule only the ones that finish the run (a
// worker dead at the final iteration never returns). Frames of other kinds
// at this point are protocol violations.
func (sv *server) awaitByes(byes int) error {
	want := sv.W
	if sv.ch != nil {
		want = sv.ch.finisherCount()
	}
	for byes < want {
		f, err := sv.mb.recvMatch(kindBye, 0, 0, false, recvTimeout)
		if err != nil {
			return err
		}
		_ = f
		byes++
	}
	return nil
}

// runBSP aggregates one synchronous round per iteration. The gradients are
// summed in ascending sender rank — the reduction-order contract shared
// with core's runBSP — and the updated parameters go back to all workers.
func (sv *server) runBSP() error {
	cfg := sv.cfg
	for it := 0; it < cfg.Iters; it++ {
		// The round's barrier width is the alive membership — the
		// simulator's elastic aliveCount — and connections to workers
		// resuming this round are refreshed before their first exchange.
		expect := sv.W
		if sv.ch != nil {
			if pd, ok := sv.ep.(peerDropper); ok {
				for w := 0; w < sv.W; w++ {
					if sv.ch.resumedAt(w, it+1) {
						pd.DropPeer(w)
					}
				}
			}
			expect = sv.ch.aliveCount(it + 1)
			if expect == 0 {
				continue
			}
		}
		msgs := make([]xport.Frame, 0, expect)
		for i := 0; i < expect; i++ {
			f, err := sv.mb.recvMatch(kindGrad, int32(it+1), 0, false, recvTimeout)
			if err != nil {
				return err
			}
			if err := sv.dequantGrad(&f); err != nil {
				return err
			}
			msgs = append(msgs, f)
		}
		sort.Slice(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
		agg := make([]float32, sv.vecLen)
		for _, m := range msgs {
			for i, v := range m.Vec {
				agg[i] += v
			}
		}
		sv.global.ApplyGrad(sv.assign[0], agg, 1/float32(expect), cfg.LR.At(it))
		snap := sv.snapshot()
		for _, m := range msgs {
			if err := sv.ep.Send(int(m.From), &xport.Frame{Kind: kindParams, From: int32(sv.W),
				Clock: m.Clock, Vec: snap}); err != nil {
				return err
			}
		}
		if err := sv.maybeCheckpoint(it + 1); err != nil {
			return err
		}
	}
	return sv.awaitByes(0)
}

// runASP applies every arriving gradient immediately and replies with the
// updated parameters — no worker waits for another.
func (sv *server) runASP() error {
	cfg := sv.cfg
	byes := 0
	for byes < sv.W {
		f, err := sv.mb.recv(recvTimeout)
		if err != nil {
			return err
		}
		switch f.Kind {
		case kindGrad:
			if err := sv.dequantGrad(&f); err != nil {
				return err
			}
			sv.global.ApplyGrad(sv.assign[0], f.Vec, 1, cfg.LR.At(int(f.Clock)-1))
			if err := sv.ep.Send(int(f.From), &xport.Frame{Kind: kindParams, From: int32(sv.W),
				Clock: f.Clock, Vec: sv.snapshot()}); err != nil {
				return err
			}
		case kindBye:
			byes++
		default:
			return fmt.Errorf("asp: unexpected kind %d", f.Kind)
		}
	}
	return nil
}

// runSSP accumulates worker deltas and doubles as the clock service:
// gradient messages update the sender's clock and trigger a tiny ack
// carrying the minimum clock; pull requests park until the staleness bound
// is restored. A finished worker's clock stays at Iters, so every parked
// pull provably drains before the last bye.
func (sv *server) runSSP() error {
	cfg := sv.cfg
	s := cfg.Staleness
	clocks := make([]int, sv.W)
	type pending struct{ worker, clock int }
	var parked []pending
	minClock := func() int {
		m := clocks[0]
		for _, c := range clocks[1:] {
			if c < m {
				m = c
			}
		}
		return m
	}
	release := func() error {
		mc := minClock()
		keep := parked[:0]
		for _, pk := range parked {
			if mc >= pk.clock-s {
				if err := sv.ep.Send(pk.worker, &xport.Frame{Kind: kindParams, From: int32(sv.W),
					Clock: int32(pk.clock), Vec: sv.snapshot()}); err != nil {
					return err
				}
			} else {
				keep = append(keep, pk)
			}
		}
		parked = keep
		return nil
	}
	byes := 0
	for byes < sv.W {
		f, err := sv.mb.recv(recvTimeout)
		if err != nil {
			return err
		}
		switch f.Kind {
		case kindGrad:
			// Petuum-style SSP: the worker sends its locally applied
			// *update*; the PS accumulates it.
			if err := sv.dequantGrad(&f); err != nil {
				return err
			}
			sv.global.AddDelta(sv.assign[0], f.Vec)
			clocks[f.From] = int(f.Clock)
			if err := sv.ep.Send(int(f.From), &xport.Frame{Kind: kindAck, From: int32(sv.W),
				Clock: int32(minClock())}); err != nil {
				return err
			}
			if err := release(); err != nil {
				return err
			}
		case kindPull:
			if minClock() < int(f.Clock)-s {
				parked = append(parked, pending{worker: int(f.From), clock: int(f.Clock)})
			} else if err := sv.ep.Send(int(f.From), &xport.Frame{Kind: kindParams, From: int32(sv.W),
				Clock: f.Clock, Vec: sv.snapshot()}); err != nil {
				return err
			}
		case kindBye:
			byes++
		default:
			return fmt.Errorf("ssp: unexpected kind %d", f.Kind)
		}
	}
	return nil
}

// runEASGD performs the symmetric elastic move on every parameter push and
// returns the updated local parameters to the sender.
func (sv *server) runEASGD() error {
	alpha := float32(sv.cfg.MovingRate)
	byes := 0
	for byes < sv.W {
		f, err := sv.mb.recv(recvTimeout)
		if err != nil {
			return err
		}
		switch f.Kind {
		case kindEASGDPush:
			// ElasticUpdate mutates the pushed vector in place; the reply
			// carries the updated local parameters.
			sv.global.ElasticUpdate(sv.assign[0], f.Vec, alpha)
			if err := sv.ep.Send(int(f.From), &xport.Frame{Kind: kindEASGDReply, From: int32(sv.W),
				Clock: f.Clock, Vec: f.Vec}); err != nil {
				return err
			}
		case kindBye:
			byes++
		default:
			return fmt.Errorf("easgd: unexpected kind %d", f.Kind)
		}
	}
	return nil
}
