package live

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"disttrain/internal/metrics"
	"disttrain/internal/xport"
)

// statser is any endpoint that can snapshot transport counters (TCPNet;
// the channel transport keeps none).
type statser interface{ Stats() xport.Stats }

// coordSnapshot is the coordinator's contribution to a metrics scrape.
type coordSnapshot struct {
	deaths, rejoins int64
	done            int64
}

// Metrics aggregates one live run's observable state and serves it in the
// Prometheus text exposition format. Pass one instance to every in-process
// participant via WithMetrics: workers register their mesh transport
// counters and iteration progress, the coordinator registers the PS
// endpoint and the death/rejoin accounting, and GET /metrics (Metrics is an
// http.Handler) renders the union. In a multi-process deployment each
// process serves its own ranks.
//
// Transport counters stay monotonic across worker incarnations: when a
// restarted worker re-registers its rank, the dying incarnation's final
// counters are folded into a per-rank base that every later scrape includes.
type Metrics struct {
	mu        sync.Mutex
	stats     map[int]func() xport.Stats
	base      map[int]xport.Stats
	progress  map[int]func() int64
	saved     map[int]func() int64
	savedBase map[int]int64
	coord     func() coordSnapshot
	restores  atomic.Int64
}

// NewMetrics returns an empty collector ready to be passed via WithMetrics.
func NewMetrics() *Metrics {
	return &Metrics{
		stats:     make(map[int]func() xport.Stats),
		base:      make(map[int]xport.Stats),
		progress:  make(map[int]func() int64),
		saved:     make(map[int]func() int64),
		savedBase: make(map[int]int64),
	}
}

// addStats folds b into a field by field.
func addStats(a *xport.Stats, b xport.Stats) {
	a.FramesSent += b.FramesSent
	a.FramesRecv += b.FramesRecv
	a.BytesSent += b.BytesSent
	a.BytesRecv += b.BytesRecv
	a.Redials += b.Redials
	a.Kills += b.Kills
	a.DelayNanos += b.DelayNanos
	a.Partitioned += b.Partitioned
}

// registerStats installs rank's transport-counter snapshot function. A
// re-registration (a restarted incarnation's fresh mesh) folds the previous
// incarnation's final counters into the rank's base first, keeping scraped
// counters monotonic.
func (m *Metrics) registerStats(rank int, fn func() xport.Stats) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if old := m.stats[rank]; old != nil {
		b := m.base[rank]
		addStats(&b, old())
		m.base[rank] = b
	}
	m.stats[rank] = fn
	m.mu.Unlock()
}

// registerProgress installs rank's completed-iteration gauge source.
func (m *Metrics) registerProgress(rank int, fn func() int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.progress[rank] = fn
	m.mu.Unlock()
}

// registerSaved installs rank's compressed-bytes-saved counter source: wire
// bytes gradient quantization saved versus dense float32 frames. Like
// registerStats, a re-registration folds the previous incarnation's final
// count into the rank's base to keep the scraped counter monotonic.
func (m *Metrics) registerSaved(rank int, fn func() int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if old := m.saved[rank]; old != nil {
		m.savedBase[rank] += old()
	}
	m.saved[rank] = fn
	m.mu.Unlock()
}

// registerCoord installs the coordinator's death/rejoin/done snapshot.
func (m *Metrics) registerCoord(fn func() coordSnapshot) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.coord = fn
	m.mu.Unlock()
}

// addRestore counts one successful checkpoint restore in this process.
func (m *Metrics) addRestore() {
	if m == nil {
		return
	}
	m.restores.Add(1)
}

// xportFamily describes one exported transport counter.
type xportFamily struct {
	name, help string
	value      func(xport.Stats) float64
}

var xportFamilies = []xportFamily{
	{"disttrain_xport_frames_sent_total", "Frames written to the wire, per mesh rank.",
		func(s xport.Stats) float64 { return float64(s.FramesSent) }},
	{"disttrain_xport_frames_recv_total", "Frames received from the wire, per mesh rank.",
		func(s xport.Stats) float64 { return float64(s.FramesRecv) }},
	{"disttrain_xport_bytes_sent_total", "Payload bytes sent, per mesh rank.",
		func(s xport.Stats) float64 { return float64(s.BytesSent) }},
	{"disttrain_xport_bytes_recv_total", "Payload bytes received, per mesh rank.",
		func(s xport.Stats) float64 { return float64(s.BytesRecv) }},
	{"disttrain_xport_redials_total", "Peer connections re-established after a failure, per mesh rank.",
		func(s xport.Stats) float64 { return float64(s.Redials) }},
	{"disttrain_xport_kills_total", "Connections severed by injected kill windows, per mesh rank.",
		func(s xport.Stats) float64 { return float64(s.Kills) }},
	{"disttrain_xport_partitioned_total", "Sends that blocked on an active partition window, per mesh rank.",
		func(s xport.Stats) float64 { return float64(s.Partitioned) }},
	{"disttrain_xport_send_delay_seconds_total", "Injected send latency from slow/degrade windows, per mesh rank.",
		func(s xport.Stats) float64 { return float64(s.DelayNanos) / 1e9 }},
}

// WriteProm renders the current state in the Prometheus text format.
func (m *Metrics) WriteProm(w io.Writer) error {
	m.mu.Lock()
	ranks := make([]int, 0, len(m.stats))
	snaps := make(map[int]xport.Stats, len(m.stats))
	for r, fn := range m.stats {
		ranks = append(ranks, r)
		s := m.base[r]
		addStats(&s, fn())
		snaps[r] = s
	}
	progRanks := make([]int, 0, len(m.progress))
	prog := make(map[int]int64, len(m.progress))
	for r, fn := range m.progress {
		progRanks = append(progRanks, r)
		prog[r] = fn()
	}
	savedRanks := make([]int, 0, len(m.saved))
	saved := make(map[int]int64, len(m.saved))
	for r, fn := range m.saved {
		savedRanks = append(savedRanks, r)
		saved[r] = m.savedBase[r] + fn()
	}
	coordFn := m.coord
	m.mu.Unlock()
	sort.Ints(ranks)
	sort.Ints(progRanks)
	sort.Ints(savedRanks)

	e := metrics.NewPromEncoder(w)
	for _, fam := range xportFamilies {
		e.Family(fam.name, fam.help, "counter")
		for _, r := range ranks {
			e.Sample(fam.name, rankLabel(r), fam.value(snaps[r]))
		}
	}
	e.Family("disttrain_live_worker_iterations", "Completed training iterations, per worker rank.", "gauge")
	for _, r := range progRanks {
		e.Sample("disttrain_live_worker_iterations", rankLabel(r), float64(prog[r]))
	}
	e.Family("disttrain_live_compressed_bytes_saved_total",
		"Wire bytes gradient quantization saved versus dense float32 frames, per mesh rank.", "counter")
	for _, r := range savedRanks {
		e.Sample("disttrain_live_compressed_bytes_saved_total", rankLabel(r), float64(saved[r]))
	}
	var cs coordSnapshot
	if coordFn != nil {
		cs = coordFn()
	}
	e.Family("disttrain_live_deaths_total", "Scheduled worker deaths observed by the coordinator.", "counter")
	e.Sample("disttrain_live_deaths_total", nil, float64(cs.deaths))
	e.Family("disttrain_live_rejoins_total", "REJOIN handshakes the coordinator accepted.", "counter")
	e.Sample("disttrain_live_rejoins_total", nil, float64(cs.rejoins))
	e.Family("disttrain_live_restores_total", "Checkpoint restores performed by workers in this process.", "counter")
	e.Sample("disttrain_live_restores_total", nil, float64(m.restores.Load()))
	e.Family("disttrain_live_workers_done", "Worker ranks whose DONE report the coordinator holds.", "gauge")
	e.Sample("disttrain_live_workers_done", nil, float64(cs.done))
	return e.Err()
}

func rankLabel(r int) []metrics.PromLabel {
	return []metrics.PromLabel{{Name: "rank", Value: fmt.Sprintf("%d", r)}}
}

// ServeHTTP serves the text exposition format, making Metrics mountable
// directly as a GET /metrics handler.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.PromContentType)
	m.WriteProm(w)
}
