package live

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"disttrain/internal/core"
	"disttrain/internal/trace"
)

// promLine is the exposition-format lint every /metrics line must pass:
// name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\\n])*")*\})? [-+]?([0-9.eE+-]+|Inf|NaN)$`)

func lintProm(t *testing.T, body string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line fails exposition-format lint: %q", line)
		}
	}
}

// scrape renders one /metrics page through the HTTP handler and returns the
// body plus every sample parsed into name{labels} -> value.
func scrape(t *testing.T, m *Metrics) (string, map[string]float64) {
	t.Helper()
	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		samples[key] = v
	}
	return string(body), samples
}

// TestLoopbackTraceExport is the acceptance test for live tracing: a
// loopback BSP run with WithTracer must export a Chrome trace that parses
// as JSON and contains a compute span and a comm span for every rank.
func TestLoopbackTraceExport(t *testing.T) {
	const workers = 4
	tr := trace.New()
	cfg := liveConfig(core.BSP, workers, 6, 11)
	if _, err := RunLoopback(cfg, WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []trace.Event
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	compute := make(map[int]bool)
	comm := make(map[int]bool)
	var rendezvous, barrier bool
	for _, e := range evs {
		switch {
		case e.Cat == "compute" && e.Pid == workerPid:
			compute[e.Tid] = true
		case e.Cat == "comm" && e.Pid == workerPid:
			comm[e.Tid] = true
		case e.Name == "rendezvous" && e.Pid == coordPid:
			rendezvous = true
		case e.Name == "start-barrier":
			barrier = true
		}
	}
	for r := 0; r < workers; r++ {
		if !compute[r] {
			t.Errorf("rank %d has no compute span", r)
		}
		if !comm[r] {
			t.Errorf("rank %d has no comm span", r)
		}
	}
	if !rendezvous {
		t.Error("no coordinator rendezvous span")
	}
	if !barrier {
		t.Error("no start-barrier span")
	}
}

// TestChanTraceExport confirms the channel transport records the same span
// categories (an in-process run with no sockets still traces).
func TestChanTraceExport(t *testing.T) {
	tr := trace.New()
	cfg := liveConfig(core.ARSGD, 3, 5, 7)
	if _, err := RunChan(cfg, WithTracer(tr)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"compute"`, `"allreduce"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chan trace missing %s:\n%s", want, out)
		}
	}
}

// TestLoopbackMetricsScrape runs loopback BSP with a Metrics collector,
// scrapes the handler mid-run and after completion, and requires the text
// format to lint and the counters to be monotonic between the two scrapes.
func TestLoopbackMetricsScrape(t *testing.T) {
	const workers = 3
	m := NewMetrics()
	cfg := liveConfig(core.BSP, workers, 8, 5)

	mid := make(chan struct{}, 1)
	progress := func(rank, iter int, loss float64) {
		if iter == 2 {
			select {
			case mid <- struct{}{}:
			default:
			}
		}
	}
	type scrapeResult struct {
		body    string
		samples map[string]float64
	}
	midScrape := make(chan scrapeResult, 1)
	go func() {
		<-mid
		body, samples := scrape(t, m)
		midScrape <- scrapeResult{body, samples}
	}()

	res, err := RunLoopback(cfg, WithMetrics(m), WithProgress(progress))
	if err != nil {
		t.Fatal(err)
	}
	first := <-midScrape
	lintProm(t, first.body)
	body, final := scrape(t, m)
	lintProm(t, body)

	// Every counter sampled mid-run must not have decreased by the end.
	for key, v := range first.samples {
		if !strings.Contains(key, "_total") {
			continue
		}
		fv, ok := final[key]
		if !ok {
			t.Errorf("counter %s disappeared between scrapes", key)
			continue
		}
		if fv < v {
			t.Errorf("counter %s went backwards: %v -> %v", key, v, fv)
		}
	}

	// Per-rank families cover every worker rank plus the PS rank.
	for r := 0; r <= workers; r++ {
		key := `disttrain_xport_frames_sent_total{rank="` + strconv.Itoa(r) + `"}`
		if v, ok := final[key]; !ok || v <= 0 {
			t.Errorf("missing or zero %s (present=%v, v=%v)", key, ok, v)
		}
	}
	for r := 0; r < workers; r++ {
		key := `disttrain_live_worker_iterations{rank="` + strconv.Itoa(r) + `"}`
		if v := final[key]; v != float64(cfg.Iters) {
			t.Errorf("%s = %v, want %d", key, v, cfg.Iters)
		}
	}
	if v := final["disttrain_live_workers_done"]; v != float64(workers) {
		t.Errorf("workers_done = %v, want %d", v, workers)
	}
	if res.Net.FramesSent == 0 {
		t.Error("result lost transport counters")
	}
}
