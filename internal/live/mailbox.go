package live

import (
	"errors"
	"fmt"
	"time"

	"disttrain/internal/xport"
)

// Data-plane frame kinds. The values mirror internal/core's message kinds
// one for one so a packet capture of a live run reads against the
// simulator's message taxonomy.
const (
	kindGrad        uint16 = 1
	kindParams      uint16 = 3
	kindPull        uint16 = 4
	kindAck         uint16 = 5
	kindEASGDPush   uint16 = 6
	kindEASGDReply  uint16 = 7
	kindAllReduce   uint16 = 8
	kindGossip      uint16 = 9
	kindExchangeReq uint16 = 10
	kindExchangeRep uint16 = 11
	kindGather      uint16 = 12
	kindBcast       uint16 = 13
)

// Control-plane frame kinds, used on the rendezvous connection and for the
// mesh-level termination handshake. They start at 100 to stay disjoint
// from the data plane.
const (
	kindHello uint16 = 100 + iota
	kindAssign
	kindAddr
	kindPeers
	kindReady
	kindStart
	kindDone
	kindBye
	// kindHeartbeat renews a worker's liveness lease with the coordinator
	// (Clock carries the worker's latest completed iteration).
	kindHeartbeat
	// kindRejoin is a restarted worker's re-admission request (From = its
	// original rank, Data = the config fingerprint).
	kindRejoin
	// kindRejoinOK re-admits a rejoining worker (Data = the peer address
	// list, Aux = seconds elapsed since the run's START barrier so the
	// worker can re-anchor its fault-plan clock).
	kindRejoinOK
)

// mailbox wraps an Endpoint with a stash so protocol loops can wait for a
// specific (kind, clock, seg) while out-of-order traffic — a fast peer's
// next-round chunk, a straggler's late gossip — is parked instead of
// dropped. A mailbox has exactly one owning goroutine; it is not safe for
// concurrent use.
type mailbox struct {
	ep    xport.Endpoint
	stash []xport.Frame
}

func newMailbox(ep xport.Endpoint) *mailbox { return &mailbox{ep: ep} }

// recv returns the oldest stashed frame, or blocks on the endpoint.
func (mb *mailbox) recv(timeout time.Duration) (xport.Frame, error) {
	if len(mb.stash) > 0 {
		f := mb.stash[0]
		mb.stash = mb.stash[1:]
		return f, nil
	}
	return mb.ep.Recv(timeout)
}

// match reports whether f is the frame recvMatch is waiting for.
func match(f xport.Frame, kind uint16, clock int32, seg int32, useSeg bool) bool {
	return f.Kind == kind && f.Clock == clock && (!useSeg || f.Seg == seg)
}

// recvMatch returns the first frame (stash first, then the wire) with the
// given kind and clock — and seg, when useSeg is set, which the collectives
// use to separate chunks and phases. Non-matching frames are stashed in
// arrival order. The timeout covers the whole wait.
func (mb *mailbox) recvMatch(kind uint16, clock, seg int32, useSeg bool, timeout time.Duration) (xport.Frame, error) {
	for i, f := range mb.stash {
		if match(f, kind, clock, seg, useSeg) {
			mb.stash = append(mb.stash[:i], mb.stash[i+1:]...)
			return f, nil
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return xport.Frame{}, fmt.Errorf("live: timeout waiting for kind=%d clock=%d seg=%d (useSeg=%v): %w",
				kind, clock, seg, useSeg, xport.ErrTimeout)
		}
		f, err := mb.ep.Recv(remain)
		if err != nil {
			if errors.Is(err, xport.ErrTimeout) {
				return xport.Frame{}, fmt.Errorf("live: timeout waiting for kind=%d clock=%d seg=%d (useSeg=%v): %w",
					kind, clock, seg, useSeg, err)
			}
			return xport.Frame{}, err
		}
		if match(f, kind, clock, seg, useSeg) {
			return f, nil
		}
		mb.stash = append(mb.stash, f)
	}
}

// poll performs a short non-blocking-ish receive: it drains the stash
// first, then gives the endpoint one brief window. Returns ok=false when
// nothing arrived — the asynchronous drains (GoSGD gossip, SSP acks) call
// this between iterations.
func (mb *mailbox) poll() (xport.Frame, bool, error) {
	if len(mb.stash) > 0 {
		f := mb.stash[0]
		mb.stash = mb.stash[1:]
		return f, true, nil
	}
	f, err := mb.ep.Recv(200 * time.Microsecond)
	if errors.Is(err, xport.ErrTimeout) {
		return xport.Frame{}, false, nil
	}
	if err != nil {
		return xport.Frame{}, false, err
	}
	return f, true, nil
}
