package live

import (
	"fmt"
	"sync/atomic"

	"disttrain/internal/core"
	"disttrain/internal/grad"
	"disttrain/internal/trace"
	"disttrain/internal/xport"
)

// Gradient quantization on the live path. Workers compress gradient-bearing
// frames (PS exchanges, AllReduce leaf contributions) into xport.QuantVec
// payloads carried in Frame.Data; receivers reconstruct the dense vector
// with the exact arithmetic grad's codecs use. The sender always round-trips
// its own copy through the codec first, so every participant — including the
// sender — observes the same post-quantization values the simulator's
// QuantizeRoundTrip model produces. That is what keeps a quantized live BSP
// or AR-SGD run bit-identical to the quantized simulator run.
//
// AllReduce partial sums and all parameter frames stay dense: a partial sum
// is no longer on the codec's grid, so re-encoding it would diverge from the
// simulator (and from the other ranks).

// quantCodec maps the config's gradient codec onto the wire enum (0 = dense).
func quantCodec(cfg *core.Config) xport.QuantCodec {
	switch {
	case cfg.Quantize8:
		return xport.QuantInt8
	case cfg.QuantizeF16:
		return xport.QuantF16
	}
	return 0
}

// quantizeVec compresses v and applies the codec's round-trip loss to v in
// place, returning the wire payload. After the call, v holds exactly the
// values dequantizeVec reconstructs on the receiving side.
func quantizeVec(codec xport.QuantCodec, v []float32) xport.QuantVec {
	switch codec {
	case xport.QuantInt8:
		q := grad.Quantize8(v)
		_ = grad.Dequantize8(q, v) // lengths match by construction
		return xport.QuantVec{Codec: codec, Scale: q.Scale, I8: q.Q}
	case xport.QuantF16:
		q := grad.QuantizeF16(v)
		_ = grad.DequantizeF16(q, v)
		return xport.QuantVec{Codec: codec, H16: q.H}
	}
	panic(fmt.Sprintf("live: quantizeVec with codec %d", codec))
}

// dequantizeVec reconstructs the dense vector a QuantVec carries, with the
// same per-element arithmetic grad.Dequantize8/DequantizeF16 perform.
func dequantizeVec(qv xport.QuantVec) []float32 {
	out := make([]float32, qv.Len())
	switch qv.Codec {
	case xport.QuantInt8:
		for i, x := range qv.I8 {
			out[i] = qv.Scale * float32(x)
		}
	case xport.QuantF16:
		for i, h := range qv.H16 {
			out[i] = grad.F16ToF32(h)
		}
	}
	return out
}

// slice returns the payload restricted to elements [lo, hi). An int8 slice
// keeps the full-vector scale, so the chunk reconstructs to exactly the same
// floats as the corresponding slice of the round-tripped full vector.
func sliceQuantVec(qv xport.QuantVec, lo, hi int) xport.QuantVec {
	out := xport.QuantVec{Codec: qv.Codec, Scale: qv.Scale}
	switch qv.Codec {
	case xport.QuantInt8:
		out.I8 = qv.I8[lo:hi]
	case xport.QuantF16:
		out.H16 = qv.H16[lo:hi]
	}
	return out
}

// decodeGradPayload replaces a frame's codec payload with the reconstructed
// dense vector in Vec. The payload must match the configured codec and the
// expected element count — a mismatch is a protocol violation, not a crash.
func decodeGradPayload(codec xport.QuantCodec, f *xport.Frame, wantLen int) error {
	qv, err := xport.DecodeQuantVec(f.Data)
	if err != nil {
		return fmt.Errorf("live: gradient frame from %d: %w", f.From, err)
	}
	if qv.Codec != codec {
		return fmt.Errorf("live: gradient frame from %d: codec %d, want %d", f.From, qv.Codec, codec)
	}
	if qv.Len() != wantLen {
		return fmt.Errorf("live: gradient frame from %d: %d elements, want %d", f.From, qv.Len(), wantLen)
	}
	f.Vec = dequantizeVec(qv)
	f.Data = nil
	return nil
}

// arQuant carries the codec context into an AllReduce: the caller's
// full-vector payload (sliced for leaf-contribution sends), the per-rank
// bytes-saved counter, and the span hook for quantize/dequantize tracing.
// A nil *arQuant means a dense run.
type arQuant struct {
	qv    xport.QuantVec
	codec xport.QuantCodec
	saved *atomic.Int64
	span  func(name, cat string) *trace.WallSpan
}

// encodeGrad fills f with the gradient payload for one PS exchange: dense
// runs carry the raw vector, quantized runs carry the codec payload in Data
// and round-trip g in place so the sender's local values are exactly what
// the PS reconstructs.
func (w *worker) encodeGrad(g []float32, f *xport.Frame) {
	if w.codec == 0 {
		f.Vec = g
		return
	}
	sp := w.span("quantize", "quant")
	qv := quantizeVec(w.codec, g)
	f.Data = qv.AppendEncode(nil)
	w.saved.Add(int64(4*len(g)) - int64(len(f.Data)))
	sp.End()
}

// arQuantize prepares the AllReduce codec context for one round: it
// round-trips agg in place (the simulator quantizes each worker's own
// contribution before it enters the collective) and returns the context the
// collective uses to ship leaf chunks in codec form. Dense runs return nil.
func (w *worker) arQuantize(agg []float32) *arQuant {
	if w.codec == 0 {
		return nil
	}
	sp := w.span("quantize", "quant")
	qv := quantizeVec(w.codec, agg)
	sp.End()
	return &arQuant{qv: qv, codec: w.codec, saved: &w.saved, span: w.span}
}
