package live

import (
	"fmt"
	"sync/atomic"

	"disttrain/internal/core"
	"disttrain/internal/nn"
	"disttrain/internal/rng"
	"disttrain/internal/trace"
	"disttrain/internal/xport"
)

// Trace track conventions for the live runtime: workers record on pid 0
// with tid = rank, AD-PSGD communication threads on pid 0 with tid =
// adpsgdCommTid+rank (their exchanges overlap the compute track), and the
// coordinator on pid 1. The simulator uses pid = machine, so the two time
// sources stay distinguishable in one viewer.
const (
	workerPid     = 0
	coordPid      = 1
	adpsgdCommTid = 1000
)

// meshSize is the number of xport ranks a run needs: one per worker, plus
// one extra rank hosting the parameter server for centralized algorithms.
func meshSize(cfg *core.Config) int {
	if cfg.Algo.Centralized() {
		return cfg.Workers + 1
	}
	return cfg.Workers
}

// serverRank is the PS's mesh rank (the last one), or -1 for
// decentralized algorithms.
func serverRank(cfg *core.Config) int {
	if cfg.Algo.Centralized() {
		return cfg.Workers
	}
	return -1
}

// worker drives one replica through its algorithm's live protocol. The
// main loop owns the mailbox; only AD-PSGD adds a second goroutine (the
// communication thread of Lian et al.), which then becomes the sole
// endpoint owner while the compute loop stays local.
type worker struct {
	cfg  *core.Config
	rank int
	srv  int // mesh rank of the PS; -1 when decentralized
	ep   xport.Endpoint
	mb   *mailbox
	rep  *liveReplica
	algo *rng.RNG

	iters  int     // completed iterations
	weight float64 // GoSGD mixing weight

	// codec is the gradient wire codec (0 = dense); saved accumulates the
	// wire bytes quantization saved versus dense float32 frames, exported
	// per rank as compressed_bytes_saved through Metrics.
	codec xport.QuantCodec
	saved atomic.Int64

	// Chaos state: ch is the shared crash-membership function (nil in a
	// crash-free run), startIter is where this incarnation's loop begins
	// (>1 after a checkpoint restore), draws counts sampler draws for the
	// checkpoint, prog publishes progress to the heartbeat goroutine, and
	// ckpt is the checkpoint cadence.
	ch        *chaos
	startIter int
	draws     int
	prog      atomic.Int64
	ckpt      nn.Cadence

	// onProgress, when non-nil, observes every completed iteration
	// (Options.progress).
	onProgress func(rank, iter int, loss float64)

	// tr records wall-clock spans (nil when tracing is off; every
	// trace call is nil-safe).
	tr *trace.Tracer
}

func newWorker(cfg *core.Config, rank int, ep xport.Endpoint, o *Options) *worker {
	s := deriveStreams(cfg.Seed, rank)
	w := &worker{
		cfg:       cfg,
		rank:      rank,
		srv:       serverRank(cfg),
		ep:        ep,
		mb:        newMailbox(ep),
		rep:       newLiveReplica(rank, cfg, s),
		algo:      s.algo,
		weight:    1,
		codec:     quantCodec(cfg),
		ch:        newChaos(cfg),
		startIter: 1,
	}
	if o != nil {
		w.ckpt = o.ckpt
		w.onProgress = o.progress
		w.tr = o.tracer
		if o.metrics != nil {
			o.metrics.registerProgress(rank, w.prog.Load)
			if st, ok := ep.(statser); ok {
				o.metrics.registerStats(rank, st.Stats)
			}
			if w.codec != 0 {
				o.metrics.registerSaved(rank, w.saved.Load)
			}
		}
	}
	return w
}

// span opens a wall-clock span on this worker's trace track; with tracing
// off it returns a no-op span.
func (w *worker) span(name, cat string) *trace.WallSpan {
	return w.tr.StartSpan(name, cat, workerPid, w.rank)
}

// note records the completion of iteration it: the worker's own counter,
// the progress cell the heartbeat goroutine publishes to the coordinator,
// and the optional Options.progress observer. Every algorithm loop calls it
// exactly once per completed iteration.
func (w *worker) note(it int) {
	w.iters = it
	w.prog.Store(int64(it))
	if w.onProgress != nil {
		loss, _ := w.rep.loss()
		w.onProgress(w.rank, it, loss)
	}
}

// deathErr signals a scheduled crash: the worker reached an iteration its
// crash schedule says it does not run. The life driver catches it, tears
// the process state down, and restarts after the scheduled delay.
type deathErr struct{ it int }

func (e deathErr) Error() string {
	return fmt.Sprintf("scheduled death at iteration %d", e.it)
}

// peerDropper is the optional transport capability chaos needs: discard a
// cached connection so the next send redials. TCPNet implements it; the
// channel transport (which cannot lose bytes) does not and needs nothing.
type peerDropper interface{ DropPeer(int) }

// dropResumedPeers discards cached connections to every peer that comes
// back from a dead window exactly at iteration it. The old socket is
// half-closed on the peer's side; a write on it could be silently lost, so
// the first post-restart exchange must start on a fresh dial.
func (w *worker) dropResumedPeers(it int) {
	pd, ok := w.ep.(peerDropper)
	if !ok {
		return
	}
	for ww := 0; ww < w.cfg.Workers; ww++ {
		if ww != w.rank && w.ch.resumedAt(ww, it) {
			pd.DropPeer(ww)
		}
	}
}

// gate is the per-round chaos check for the synchronous loops: it returns a
// deathErr when this worker's schedule says iteration it is not run, and
// otherwise refreshes connections to peers resuming this round.
func (w *worker) gate(it int) error {
	if w.ch == nil {
		return nil
	}
	if !w.ch.aliveAt(w.rank, it) {
		return deathErr{it: it}
	}
	w.dropResumedPeers(it)
	return nil
}

// maybeCheckpoint writes this worker's training state if the cadence says
// iteration it is a checkpoint boundary.
func (w *worker) maybeCheckpoint(it int) error {
	if !w.ckpt.Due(it) {
		return nil
	}
	sp := w.span("checkpoint", "ckpt")
	defer sp.End()
	return w.rep.saveState(w.ckpt.Path(w.rank), it, w.draws)
}

// gradSpan wraps one forward/backward pass in a compute span.
func (w *worker) gradSpan() []float32 {
	sp := w.span("compute", "compute")
	g := w.rep.gradPass()
	sp.End()
	return g
}

// run executes the full training loop for the configured algorithm and
// returns once this worker's iterations are complete. For centralized
// algorithms it then tells the PS so the server loop can retire.
func (w *worker) run() error {
	var err error
	switch w.cfg.Algo {
	case core.BSP:
		err = w.runBSP()
	case core.ASP:
		err = w.runASP()
	case core.SSP:
		err = w.runSSP()
	case core.EASGD:
		err = w.runEASGD()
	case core.ARSGD:
		err = w.runARSGD()
	case core.GoSGD:
		err = w.runGoSGD()
	case core.ADPSGD:
		err = w.runADPSGD()
	default:
		err = fmt.Errorf("live: no driver for %s", w.cfg.Algo)
	}
	if err != nil {
		return fmt.Errorf("live: worker %d (%s): %w", w.rank, w.cfg.Algo, err)
	}
	if w.srv >= 0 {
		if err := w.ep.Send(w.srv, &xport.Frame{Kind: kindBye, From: int32(w.rank)}); err != nil {
			return fmt.Errorf("live: worker %d bye: %w", w.rank, err)
		}
	}
	return nil
}

// tail keeps absorbing asynchronous traffic between the worker's DONE and
// the coordinator's BYE: GoSGD merges late gossip pushes (the simulator's
// final drain), everything else ignores strays. AD-PSGD's passive serve
// goroutine keeps running on its own until shutdown, so it needs nothing
// here. stop closes when the BYE arrived.
func (w *worker) tail(stop <-chan struct{}) error {
	if w.cfg.Algo != core.GoSGD {
		<-stop
		return nil
	}
	for {
		select {
		case <-stop:
			// One final sweep so a gossip that raced the BYE and is already
			// buffered (or in flight) still lands.
			for {
				f, ok, err := w.mb.poll()
				if err != nil || !ok {
					return err
				}
				if f.Kind == kindGossip {
					w.weight = w.rep.weightedMerge(w.weight, f.Vec, f.Aux)
				}
			}
		default:
		}
		f, ok, err := w.mb.poll()
		if err != nil {
			return err
		}
		if ok && f.Kind == kindGossip {
			w.weight = w.rep.weightedMerge(w.weight, f.Vec, f.Aux)
		}
	}
}

func (w *worker) runBSP() error {
	cfg := w.cfg
	for it := w.startIter; it <= cfg.Iters; it++ {
		if err := w.gate(it); err != nil {
			return err
		}
		g := w.gradSpan()
		w.draws++
		gf := &xport.Frame{Kind: kindGrad, From: int32(w.rank), Clock: int32(it)}
		w.encodeGrad(g, gf)
		sp := w.span("ps-exchange", "comm")
		if err := w.ep.Send(w.srv, gf); err != nil {
			return err
		}
		f, err := w.mb.recvMatch(kindParams, int32(it), 0, false, recvTimeout)
		if err != nil {
			return err
		}
		sp.End()
		w.rep.setParams(f.Vec)
		w.note(it)
		if err := w.maybeCheckpoint(it); err != nil {
			return err
		}
	}
	return nil
}

func (w *worker) runASP() error {
	cfg := w.cfg
	for it := 1; it <= cfg.Iters; it++ {
		g := w.gradSpan()
		gf := &xport.Frame{Kind: kindGrad, From: int32(w.rank), Clock: int32(it)}
		w.encodeGrad(g, gf)
		sp := w.span("ps-exchange", "comm")
		if err := w.ep.Send(w.srv, gf); err != nil {
			return err
		}
		f, err := w.mb.recvMatch(kindParams, int32(it), 0, false, recvTimeout)
		if err != nil {
			return err
		}
		sp.End()
		w.rep.setParams(f.Vec)
		w.note(it)
	}
	return nil
}

func (w *worker) runSSP() error {
	cfg := w.cfg
	s := cfg.Staleness
	lastMin := 0
	sinceRefresh := 0
	for it := 1; it <= cfg.Iters; it++ {
		g := w.gradSpan()
		// Petuum-style SSP: apply locally, ship the resulting *update*.
		before := w.rep.params()
		w.rep.localStep(g, cfg.LR.At(it-1))
		delta := w.rep.params()
		for i := range delta {
			delta[i] -= before[i]
		}
		// The shipped delta goes through the codec (the simulator's
		// sendGrads quantizes SSP updates too); the local replica keeps
		// the unquantized step, exactly like the simulator's worker.
		df := &xport.Frame{Kind: kindGrad, From: int32(w.rank), Clock: int32(it)}
		w.encodeGrad(delta, df)
		if err := w.ep.Send(w.srv, df); err != nil {
			return err
		}
		// Fold any acks that have piled up.
		for {
			f, ok, err := w.mb.poll()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if f.Kind != kindAck {
				return fmt.Errorf("ssp drain: unexpected kind %d", f.Kind)
			}
			if int(f.Clock) > lastMin {
				lastMin = int(f.Clock)
			}
		}
		sinceRefresh++
		if sinceRefresh > s || it-lastMin > s {
			// Staleness bound exceeded: pull the global parameters and block
			// until the PS's clock service releases us.
			sp := w.span("ssp-sync", "comm")
			if err := w.ep.Send(w.srv, &xport.Frame{Kind: kindPull, From: int32(w.rank),
				Clock: int32(it)}); err != nil {
				return err
			}
			for {
				f, err := w.mb.recv(recvTimeout)
				if err != nil {
					return err
				}
				if f.Kind == kindAck {
					if int(f.Clock) > lastMin {
						lastMin = int(f.Clock)
					}
					continue
				}
				if f.Kind != kindParams {
					return fmt.Errorf("ssp worker: unexpected kind %d", f.Kind)
				}
				w.rep.setParams(f.Vec)
				break
			}
			sp.End()
			sinceRefresh = 0
			if lastMin < it-s {
				// The PS only releases when the bound holds.
				lastMin = it - s
			}
		}
		w.note(it)
	}
	return nil
}

func (w *worker) runEASGD() error {
	cfg := w.cfg
	for it := 1; it <= cfg.Iters; it++ {
		g := w.gradSpan()
		w.rep.localStep(g, cfg.LR.At(it-1))
		if it%cfg.Tau == 0 {
			sp := w.span("easgd-sync", "comm")
			if err := w.ep.Send(w.srv, &xport.Frame{Kind: kindEASGDPush, From: int32(w.rank),
				Clock: int32(it), Vec: w.rep.params()}); err != nil {
				return err
			}
			f, err := w.mb.recvMatch(kindEASGDReply, int32(it), 0, false, recvTimeout)
			if err != nil {
				return err
			}
			sp.End()
			w.rep.setParams(f.Vec)
		}
		w.note(it)
	}
	return nil
}

func (w *worker) runARSGD() error {
	cfg := w.cfg
	full := make([]int, cfg.Workers)
	for i := range full {
		full[i] = i
	}
	for it := w.startIter; it <= cfg.Iters; it++ {
		if err := w.gate(it); err != nil {
			return err
		}
		// The round's group is the alive membership — the simulator's
		// elastic aliveNodes — so the ring is rebuilt every round from the
		// shared membership function, no view exchange needed.
		nodes, self := full, w.rank
		if w.ch != nil {
			nodes, self = w.ch.aliveNodes(it, w.rank)
		}
		inv := 1 / float32(len(nodes))
		g := w.gradSpan()
		w.draws++
		agg := append([]float32(nil), g...)
		qc := w.arQuantize(agg)
		sp := w.span("allreduce", "comm")
		var err error
		if cfg.TreeAllReduce {
			err = treeAllReduce(w.mb, nodes, self, int32(it), agg, qc)
		} else {
			err = ringAllReduce(w.mb, nodes, self, int32(it), agg, qc)
		}
		if err != nil {
			return err
		}
		sp.End()
		for i := range agg {
			agg[i] *= inv
		}
		w.rep.localStep(agg, cfg.LR.At(it-1))
		w.note(it)
		if err := w.maybeCheckpoint(it); err != nil {
			return err
		}
	}
	return nil
}

func (w *worker) runGoSGD() error {
	cfg := w.cfg
	W := cfg.Workers
	r := w.algo
	for it := 1; it <= cfg.Iters; it++ {
		g := w.gradSpan()
		w.rep.localStep(g, cfg.LR.At(it-1))
		for {
			f, ok, err := w.mb.poll()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if f.Kind != kindGossip {
				return fmt.Errorf("gosgd worker: unexpected kind %d", f.Kind)
			}
			w.weight = w.rep.weightedMerge(w.weight, f.Vec, f.Aux)
		}
		if r.Bernoulli(cfg.GossipP) && W > 1 {
			t := r.Intn(W - 1)
			if t >= w.rank {
				t++
			}
			half := w.weight / 2
			w.weight = half
			// Asymmetric push: fire and forget.
			sp := w.span("gossip-push", "comm")
			if err := w.ep.Send(t, &xport.Frame{Kind: kindGossip, From: int32(w.rank),
				Clock: int32(it), Aux: half, Vec: w.rep.params()}); err != nil {
				return err
			}
			sp.End()
		}
		w.note(it)
	}
	return nil
}

// runADPSGD mirrors the simulator's two-thread structure: the compute loop
// trains continuously while a communication goroutine — which owns the
// mailbox for the whole run — either initiates one symmetric exchange per
// completed iteration (active, even ranks) or serves incoming exchange
// requests until shutdown (passive, odd ranks).
func (w *worker) runADPSGD() error {
	cfg := w.cfg
	W := cfg.Workers
	var passive []int
	for i := 1; i < W; i += 2 {
		passive = append(passive, i)
	}
	active := w.rank%2 == 0 && len(passive) > 0

	if !active {
		// Passive: the serve goroutine answers exchanges for the rest of the
		// process's life (it exits when the endpoint closes at shutdown);
		// the compute loop below trains locally, sharing the replica through
		// its mutex.
		go w.adpsgdServe()
		for it := 1; it <= cfg.Iters; it++ {
			g := w.gradSpan()
			w.rep.localStep(g, cfg.LR.At(it-1))
			w.note(it)
		}
		return nil
	}

	tokens := make(chan int, cfg.Iters+1)
	commErr := make(chan error, 1)
	go func() {
		commErr <- w.adpsgdActive(tokens, passive)
	}()
	for it := 1; it <= cfg.Iters; it++ {
		g := w.gradSpan()
		w.rep.localStep(g, cfg.LR.At(it-1))
		tokens <- it
		w.note(it)
	}
	tokens <- -1
	return <-commErr
}

// adpsgdActive is an active worker's communication thread: one symmetric
// exchange with a random passive peer per completed compute iteration.
func (w *worker) adpsgdActive(tokens <-chan int, passive []int) error {
	r := w.algo
	for it := range tokens {
		if it < 0 {
			return nil
		}
		peer := passive[r.Intn(len(passive))]
		// The communication thread overlaps the compute track, so its
		// exchanges record on a separate tid.
		sp := w.tr.StartSpan("adpsgd-exchange", "comm", workerPid, adpsgdCommTid+w.rank)
		if err := w.ep.Send(peer, &xport.Frame{Kind: kindExchangeReq, From: int32(w.rank),
			Clock: int32(it), Vec: w.rep.params()}); err != nil {
			return err
		}
		f, err := w.mb.recvMatch(kindExchangeRep, int32(it), 0, false, recvTimeout)
		if err != nil {
			return err
		}
		sp.End()
		w.rep.average(f.Vec)
	}
	return nil
}

// adpsgdServe is a passive worker's communication thread: reply to every
// exchange request with the current parameters, then fold the active's in.
// It exits when the endpoint closes.
func (w *worker) adpsgdServe() {
	for {
		f, err := w.mb.recv(recvTimeout)
		if err != nil {
			return // closed at shutdown (or wedged — shutdown will follow)
		}
		if f.Kind != kindExchangeReq {
			continue
		}
		if err := w.ep.Send(int(f.From), &xport.Frame{Kind: kindExchangeRep, From: int32(w.rank),
			Clock: f.Clock, Vec: w.rep.params()}); err != nil {
			return
		}
		w.rep.average(f.Vec)
	}
}
