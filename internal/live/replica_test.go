package live

import (
	"path/filepath"
	"testing"

	"disttrain/internal/core"
	"disttrain/internal/data"
	"disttrain/internal/nn"
	"disttrain/internal/rng"
)

// TestRestoreResumesAugmentationStream is the restored-augmentation
// identity check: a replica that checkpoints mid-run and a fresh replica
// that restores the checkpoint must produce bit-identical parameters after
// the same subsequent steps, including the data-augmentation draws. Before
// the v2 checkpoint format the restored replica restarted its augmentation
// stream from the fresh split, silently diverging from the trajectory the
// dead worker would have taken.
func TestRestoreResumesAugmentationStream(t *testing.T) {
	r := rng.New(11)
	train := data.GenShapes16(r, 128)
	cfg := &core.Config{
		Workers:     2,
		Seed:        5,
		Momentum:    0.9,
		WeightDecay: 1e-4,
		Real: &core.RealConfig{
			Factory: func(r *rng.RNG) *nn.Model { return nn.NewMiniCNN(r, train.Classes) },
			Train:   train,
			Batch:   4,
			Augment: &data.Augment{MaxShift: 2, FlipProb: 0.5},
		},
	}
	const lr, pre, post = 0.05, 3, 4

	a := newLiveReplica(0, cfg, deriveStreams(cfg.Seed, 0))
	path := filepath.Join(t.TempDir(), "w0.ckpt")
	for i := 0; i < pre; i++ {
		a.localStep(a.gradPass(), lr)
	}
	if err := a.saveState(path, pre, pre); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < post; i++ {
		a.localStep(a.gradPass(), lr)
	}
	want := a.params()

	b := newLiveReplica(0, cfg, deriveStreams(cfg.Seed, 0))
	step, draws, err := b.restoreState(path)
	if err != nil {
		t.Fatal(err)
	}
	if step != pre || draws != pre {
		t.Fatalf("restore counters: step=%d draws=%d want %d/%d", step, draws, pre, pre)
	}
	for i := 0; i < post; i++ {
		b.localStep(b.gradPass(), lr)
	}
	got := b.params()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored trajectory diverged at param %d: got %v want %v", i, got[i], want[i])
		}
	}
}
