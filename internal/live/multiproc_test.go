package live

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"testing"
	"time"

	"disttrain/internal/core"
	"disttrain/internal/fault"
)

// Multi-process crash/restart exercise: the test binary re-execs itself as
// worker processes (the standard TestMain role-dispatch pattern), so a
// scheduled death is a REAL process exit and the recovery is a REAL fresh
// process entering through RunWorkerRejoin — the deployment story CI could
// not previously cover with in-process restarts alone.
const (
	mpRoleEnv  = "DISTTRAIN_MP_ROLE" // "" = run tests; worker|rejoin = child roles
	mpCoordEnv = "DISTTRAIN_MP_COORD"
	mpCkptEnv  = "DISTTRAIN_MP_CKPT"

	// mpDeathExit is the child's exit code at a scheduled death
	// (ErrScheduledDeath under WithExitOnDeath) — distinct from success (0)
	// and failure (1) so the parent can tell the three apart.
	mpDeathExit = 42
)

func TestMain(m *testing.M) {
	switch os.Getenv(mpRoleEnv) {
	case "":
		os.Exit(m.Run())
	case "worker":
		os.Exit(mpChildMain(false))
	case "rejoin":
		os.Exit(mpChildMain(true))
	default:
		fmt.Fprintln(os.Stderr, "unknown", mpRoleEnv)
		os.Exit(1)
	}
}

// mpConfig is the shared experiment both the parent's coordinator and the
// child processes derive independently (it must fingerprint identically):
// 4-worker elastic BSP with worker 1 crashing after iteration 3 and
// restarting ~2 iterations later.
func mpConfig() core.Config {
	cfg := liveConfig(core.BSP, 4, 10, 77)
	cfg.Elastic = true
	cfg.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Crash, AtIter: 3, Worker: 1, Restart: 0.3},
	}}
	return cfg
}

// mpChildMain is the re-exec'd worker process. First incarnations run under
// WithExitOnDeath, so the rank with the scheduled crash terminates the
// whole process at its death; the relaunched incarnation enters through
// RunWorkerRejoin with the dead rank.
func mpChildMain(rejoin bool) int {
	cfg := mpConfig()
	coord, ckptDir := os.Getenv(mpCoordEnv), os.Getenv(mpCkptEnv)
	var err error
	if rejoin {
		err = RunWorkerRejoin(cfg, coord, 1, WithCheckpoints(ckptDir, 1))
	} else {
		err = RunWorker(cfg, coord, "127.0.0.1:0",
			WithCheckpoints(ckptDir, 1), WithExitOnDeath())
	}
	if errors.Is(err, ErrScheduledDeath) {
		return mpDeathExit
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mp child:", err)
		return 1
	}
	return 0
}

// TestMultiProcessRejoin kills a real worker process at a scheduled death
// and re-admits a real replacement process via RunWorkerRejoin, asserting
// the coordinator's result reflects the death, the rejoin, and the
// checkpoint restore.
func TestMultiProcessRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real worker processes")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cfg := mpConfig()
	if err := Validate(&cfg); err != nil {
		t.Fatal(err)
	}
	ckptDir := t.TempDir()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	coordAddr := ln.Addr().String()

	type coordOut struct {
		res *Result
		err error
	}
	coordCh := make(chan coordOut, 1)
	go func() {
		res, err := coordinate(&cfg, ln, buildOptions([]Option{WithCheckpoints(ckptDir, 1)}))
		coordCh <- coordOut{res, err}
	}()

	spawn := func(role string) (*exec.Cmd, error) {
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			mpRoleEnv+"="+role, mpCoordEnv+"="+coordAddr, mpCkptEnv+"="+ckptDir)
		cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		return cmd, cmd.Start()
	}

	exits := make(chan int, 8)
	launch := func(role string) {
		cmd, err := spawn(role)
		if err != nil {
			t.Errorf("spawn %s: %v", role, err)
			exits <- -1
			return
		}
		go func() {
			if err := cmd.Wait(); err != nil {
				var ee *exec.ExitError
				if errors.As(err, &ee) {
					exits <- ee.ExitCode()
					return
				}
				t.Errorf("wait %s: %v", role, err)
				exits <- -1
				return
			}
			exits <- 0
		}()
	}
	for i := 0; i < cfg.Workers; i++ {
		launch("worker")
	}

	// One process — whichever was assigned rank 1 — must die with the
	// scheduled-death exit code; relaunch that rank as a fresh process.
	// Everything else must exit clean: 4 first incarnations + 1 rejoin.
	deaths, clean, relaunched := 0, 0, false
	deadline := time.After(120 * time.Second)
	for deaths+clean < cfg.Workers+1 {
		select {
		case code := <-exits:
			switch code {
			case mpDeathExit:
				deaths++
				if !relaunched {
					relaunched = true
					launch("rejoin")
				}
			case 0:
				clean++
			default:
				t.Fatalf("worker process exited with unexpected code %d", code)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for worker processes (deaths=%d clean=%d)", deaths, clean)
		}
	}
	if deaths != 1 {
		t.Fatalf("expected exactly 1 scheduled process death, got %d", deaths)
	}

	out := <-coordCh
	if out.err != nil {
		t.Fatalf("coordinator: %v", out.err)
	}
	res := out.res
	if res.Deaths < 1 || res.Rejoins < 1 {
		t.Fatalf("chaos counters: deaths=%d rejoins=%d, want >=1 each", res.Deaths, res.Rejoins)
	}
	if res.Restores < 1 {
		t.Fatalf("rejoined process restored no checkpoint (restores=%d)", res.Restores)
	}
	if len(res.WorkerIters) != cfg.Workers {
		t.Fatalf("worker iters: %v", res.WorkerIters)
	}
	for r, n := range res.WorkerIters {
		if n != cfg.Iters {
			t.Fatalf("worker %d finished %d/%d iterations: %v", r, n, cfg.Iters, res.WorkerIters)
		}
	}
}
