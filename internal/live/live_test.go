package live

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/fault"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
	"disttrain/internal/xport"
)

// liveConfig builds a small real-math config shared by the simulator and
// the live runtime: MLP on Gaussian clusters, paper-scale timing model.
func liveConfig(algo core.Algo, workers, iters int, seed uint64) core.Config {
	r := rng.New(seed + 1000)
	ds := data.GenGauss(r, 600, 3, 0.45)
	train, test := ds.Split(r.Split(1), 120)
	cfg := core.Config{
		Algo:     algo,
		Cluster:  cluster.Paper56G(workers),
		Workers:  workers,
		Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
		Iters:    iters,
		Seed:     seed,
		Momentum: 0.9,
		LR:       opt.Schedule{Base: 0.05},
		Real: &core.RealConfig{
			Factory: func(rr *rng.RNG) *nn.Model { return nn.NewMLP(rr, 2, 16, 3) },
			Train:   train,
			Test:    test,
			Batch:   16,
		},
	}
	switch algo {
	case core.SSP:
		cfg.Staleness = 3
	case core.EASGD:
		cfg.Tau = 4
	case core.GoSGD:
		cfg.GossipP = 0.5
	}
	return cfg
}

// simParams runs the simulator with parameter capture and returns its
// per-worker final parameters.
func simParams(t *testing.T, cfg core.Config) [][]float32 {
	t.Helper()
	cfg.CaptureParams = true
	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	if len(res.WorkerParams) != cfg.Workers {
		t.Fatalf("sim captured %d param vectors, want %d", len(res.WorkerParams), cfg.Workers)
	}
	return res.WorkerParams
}

// requireBitIdentical fails unless every worker's live parameters match
// the simulator's bit for bit.
func requireBitIdentical(t *testing.T, sim, live [][]float32) {
	t.Helper()
	if len(sim) != len(live) {
		t.Fatalf("worker count: sim %d vs live %d", len(sim), len(live))
	}
	for w := range sim {
		if len(sim[w]) != len(live[w]) {
			t.Fatalf("worker %d: param count sim %d vs live %d", w, len(sim[w]), len(live[w]))
		}
		for i := range sim[w] {
			if math.Float32bits(sim[w][i]) != math.Float32bits(live[w][i]) {
				t.Fatalf("worker %d param %d: sim %x vs live %x (%g vs %g)",
					w, i, math.Float32bits(sim[w][i]), math.Float32bits(live[w][i]),
					sim[w][i], live[w][i])
			}
		}
	}
}

// TestLiveBSPBitIdenticalToSim is the determinism contract's anchor: BSP
// over real loopback TCP with 4 workers must reproduce the simulator's
// final parameters exactly, at the same config and seed.
func TestLiveBSPBitIdenticalToSim(t *testing.T) {
	cfg := liveConfig(core.BSP, 4, 6, 42)
	sim := simParams(t, cfg)
	res, err := RunLoopback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, sim, res.WorkerParams)
	if res.WallSec <= 0 || res.Throughput <= 0 {
		t.Fatalf("wall=%v throughput=%v", res.WallSec, res.Throughput)
	}
	if res.Net.FramesSent == 0 || res.Net.BytesSent == 0 {
		t.Fatalf("no transport traffic recorded: %+v", res.Net)
	}
}

// TestLiveQuantizedBSPBitIdenticalToSim is the quantized-wire contract: a
// BSP loopback run whose gradient frames travel as int8 or fp16 codec
// payloads must reproduce the simulator's QuantizeRoundTrip model bit for
// bit, and the per-rank compressed_bytes_saved counters must account for
// the dense-versus-codec frame difference.
func TestLiveQuantizedBSPBitIdenticalToSim(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*core.Config)
	}{
		{"int8", func(c *core.Config) { c.Quantize8 = true }},
		{"f16", func(c *core.Config) { c.QuantizeF16 = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := liveConfig(core.BSP, 4, 6, 42)
			tc.mut(&cfg)
			sim := simParams(t, cfg)
			m := NewMetrics()
			res, err := RunLoopback(cfg, WithMetrics(m))
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, sim, res.WorkerParams)
			var buf strings.Builder
			if err := m.WriteProm(&buf); err != nil {
				t.Fatal(err)
			}
			for w := 0; w < cfg.Workers; w++ {
				needle := fmt.Sprintf("disttrain_live_compressed_bytes_saved_total{rank=\"%d\"}", w)
				if !strings.Contains(buf.String(), needle) {
					t.Fatalf("metrics missing %s:\n%s", needle, buf.String())
				}
			}
		})
	}
}

// TestLiveQuantizedARSGDBitIdenticalToSim runs the quantized AllReduce
// paths: each worker's contribution is round-tripped before the collective
// and leaf chunks travel as codec payloads, reconstructing to exactly the
// simulator's values on ring and tree alike.
func TestLiveQuantizedARSGDBitIdenticalToSim(t *testing.T) {
	for _, tree := range []bool{false, true} {
		for _, f16 := range []bool{false, true} {
			cfg := liveConfig(core.ARSGD, 4, 6, 42)
			cfg.TreeAllReduce = tree
			if f16 {
				cfg.QuantizeF16 = true
			} else {
				cfg.Quantize8 = true
			}
			sim := simParams(t, cfg)
			res, err := RunLoopback(cfg)
			if err != nil {
				t.Fatalf("tree=%v f16=%v: %v", tree, f16, err)
			}
			requireBitIdentical(t, sim, res.WorkerParams)
		}
	}
}

// TestLiveQuantizedAsyncComplete smokes the quantized PS path under real
// asynchrony: ASP gradients and SSP deltas travel as codec payloads, every
// worker finishes, and the run still learns.
func TestLiveQuantizedAsyncComplete(t *testing.T) {
	for _, algo := range []core.Algo{core.ASP, core.SSP} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			t.Parallel()
			cfg := liveConfig(algo, 4, 8, 11)
			cfg.Quantize8 = true
			res, err := RunLoopback(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for w, n := range res.WorkerIters {
				if n != cfg.Iters {
					t.Fatalf("worker %d completed %d/%d iterations", w, n, cfg.Iters)
				}
			}
			if res.FinalTestAcc <= 1.0/3+0.05 {
				t.Fatalf("quantized %s live run did not learn: acc %.3f", algo, res.FinalTestAcc)
			}
		})
	}
}

// TestLiveARSGDBitIdenticalToSim: the ring AllReduce path, and with
// TreeAllReduce the binomial-tree path, both bit-identical.
func TestLiveARSGDBitIdenticalToSim(t *testing.T) {
	for _, tree := range []bool{false, true} {
		cfg := liveConfig(core.ARSGD, 4, 6, 42)
		cfg.TreeAllReduce = tree
		sim := simParams(t, cfg)
		res, err := RunLoopback(cfg)
		if err != nil {
			t.Fatalf("tree=%v: %v", tree, err)
		}
		requireBitIdentical(t, sim, res.WorkerParams)
	}
}

// TestLiveBSPChanBitIdenticalToSim runs the same contract over the
// in-process channel transport.
func TestLiveBSPChanBitIdenticalToSim(t *testing.T) {
	cfg := liveConfig(core.BSP, 4, 6, 42)
	sim := simParams(t, cfg)
	res, err := RunChan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, sim, res.WorkerParams)
	if res.Transport != "chan" {
		t.Fatalf("transport %q", res.Transport)
	}
}

// TestLiveAsyncAlgosComplete runs the asynchronous algorithms over
// loopback TCP with real nondeterminism: each must complete every
// iteration and report a populated Summary.
func TestLiveAsyncAlgosComplete(t *testing.T) {
	for _, algo := range []core.Algo{core.ASP, core.SSP, core.EASGD, core.GoSGD, core.ADPSGD} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			t.Parallel()
			cfg := liveConfig(algo, 4, 8, 11)
			res, err := RunLoopback(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for w, n := range res.WorkerIters {
				if n != cfg.Iters {
					t.Fatalf("worker %d completed %d/%d iterations", w, n, cfg.Iters)
				}
			}
			s := res.Summary()
			if s.VirtualSec <= 0 || s.Throughput <= 0 || s.TotalBytes == 0 {
				t.Fatalf("summary not populated: %+v", s)
			}
			if s.FinalTrainLoss == 0 {
				t.Fatalf("no training loss reported")
			}
			if s.FinalTestAcc <= 1.0/3+0.05 {
				t.Fatalf("%s live run did not learn: acc %.3f", algo, s.FinalTestAcc)
			}
		})
	}
}

// TestLiveBSPSurvivesKilledConnections exercises the fault satellite: a
// drop schedule becomes connection kills on the live transport, and
// because kills happen before the write and the frame is retried on a
// fresh connection, the run must still complete — and, since no frames are
// lost, stay bit-identical to the simulator without faults.
func TestLiveBSPSurvivesKilledConnections(t *testing.T) {
	clean := liveConfig(core.BSP, 4, 6, 42)
	sim := simParams(t, clean)

	cfg := liveConfig(core.BSP, 4, 6, 42)
	cfg.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Drop, At: 0, Duration: 0, Prob: 0.5, Machine: -1},
	}}
	res, err := RunLoopback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each kill closes the peer connection before a write; the send then
	// lazily re-dials, so completion + kills recorded means the redial path
	// actually ran. (Stats.Redials counts write-failure retries, a
	// different path.)
	if res.Net.Kills == 0 {
		t.Fatalf("fault plan injected no connection kills: %+v", res.Net)
	}
	requireBitIdentical(t, sim, res.WorkerParams)
}

// TestTranslateFaults covers the schedule→plan projection directly.
func TestTranslateFaults(t *testing.T) {
	cl := cluster.Paper56G(8) // 2 machines × 4 workers
	s := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Drop, At: 1, Duration: 2, Prob: 0.3, Machine: -1},
		{Kind: fault.Slow, At: 0, Duration: 0, Factor: 3, Worker: 0},
		{Kind: fault.Partition, At: 0.5, Duration: 1, Machines: []int{1}},
	}}
	plan, err := TranslateFaults(s, 7, cl, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Kills) != 1 || len(plan.Delays) != 1 || len(plan.Partitions) != 1 {
		t.Fatalf("plan %+v", plan)
	}
	k := plan.Kills[0]
	if k.From != time.Second || k.To != 3*time.Second || k.Prob != 0.3 {
		t.Fatalf("kill window %+v", k)
	}
	d := plan.Delays[0]
	if d.Factor != 3 {
		t.Fatalf("delay factor %v, want 3", d.Factor)
	}
	if d.To <= d.From || d.To < time.Duration(1)<<61 {
		t.Fatalf("open-ended window not extended: %+v", d)
	}
	p := plan.Partitions[0]
	if p.From != 500*time.Millisecond || p.To != 1500*time.Millisecond {
		t.Fatalf("partition window %+v", p)
	}
	// Machine 1 hosts worker ranks 4..7; the PS rank (8) must stay out.
	want := []int{4, 5, 6, 7}
	if len(p.Side) != len(want) {
		t.Fatalf("partition side %v, want %v", p.Side, want)
	}
	for i, w := range want {
		if p.Side[i] != w {
			t.Fatalf("partition side %v, want %v", p.Side, want)
		}
	}

	// Crash events project onto the chaos membership layer, not the
	// transport: a crash-only schedule yields no transport plan at all.
	plan, err = TranslateFaults(&fault.Schedule{Events: []fault.Event{
		{Kind: fault.Crash, AtIter: 1, Worker: 0},
	}}, 7, cl, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Fatalf("crash-only schedule produced a transport plan: %+v", plan)
	}
}

// TestValidateRejectsUnsupported table-drives the live config gate.
func TestValidateRejectsUnsupported(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"cost-only", func(c *core.Config) { c.Real = nil }},
		{"sharded PS", func(c *core.Config) { c.Sharding = core.ShardBalanced; c.Shards = 2 }},
		{"wait-free BP", func(c *core.Config) { c.WaitFreeBP = true }},
		{"local agg", func(c *core.Config) { c.LocalAgg = true }},
		{"elastic async", func(c *core.Config) { c.Algo = core.ASP; c.Elastic = true }},
		{"staleness damping", func(c *core.Config) { c.Algo = core.ASP; c.StalenessDamping = true }},
		{"crash without elastic", func(c *core.Config) {
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.Crash, AtIter: 1, Worker: 0}}}
		}},
	}
	for _, tc := range cases {
		cfg := liveConfig(core.BSP, 4, 4, 1)
		tc.mut(&cfg)
		if err := Validate(&cfg); err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
	}
	ok := liveConfig(core.BSP, 4, 4, 1)
	if err := Validate(&ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	// The fixed-cohort rejection is lifted: elastic BSP and AR-SGD validate,
	// with and without a crash schedule.
	for _, algo := range []core.Algo{core.BSP, core.ARSGD} {
		ecfg := liveConfig(algo, 4, 4, 1)
		ecfg.Elastic = true
		if err := Validate(&ecfg); err != nil {
			t.Fatalf("elastic %s rejected: %v", algo, err)
		}
		ecfg.Faults = &fault.Schedule{Events: []fault.Event{
			{Kind: fault.Crash, AtIter: 2, Worker: 1, Restart: 0.1}}}
		if err := Validate(&ecfg); err != nil {
			t.Fatalf("elastic %s with crash schedule rejected: %v", algo, err)
		}
	}
}

// chanGroup builds a W-rank channel mesh with one mailbox per rank for
// collective unit tests.
func chanGroup(w int) ([]*mailbox, []int) {
	cn := xport.NewChanNet(w)
	mbs := make([]*mailbox, w)
	nodes := make([]int, w)
	for i := 0; i < w; i++ {
		mbs[i] = newMailbox(cn.Endpoint(i))
		nodes[i] = i
	}
	return mbs, nodes
}

// TestLiveCollectivesSum checks ring and tree AllReduce against the exact
// expected sum, using integer-valued floats so order cannot blur the
// comparison, at sizes that exercise odd rings and non-power-of-two trees.
func TestLiveCollectivesSum(t *testing.T) {
	for _, w := range []int{2, 3, 4, 5} {
		for _, useTree := range []bool{false, true} {
			mbs, nodes := chanGroup(w)
			vecs := make([][]float32, w)
			want := make([]float32, 7)
			for i := range vecs {
				vecs[i] = make([]float32, 7)
				for j := range vecs[i] {
					vecs[i][j] = float32((i + 1) * (j + 1))
					want[j] += vecs[i][j]
				}
			}
			errs := make(chan error, w)
			for i := 0; i < w; i++ {
				i := i
				go func() {
					if useTree {
						errs <- treeAllReduce(mbs[i], nodes, i, 1, vecs[i], nil)
					} else {
						errs <- ringAllReduce(mbs[i], nodes, i, 1, vecs[i], nil)
					}
				}()
			}
			for i := 0; i < w; i++ {
				if err := <-errs; err != nil {
					t.Fatalf("w=%d tree=%v: %v", w, useTree, err)
				}
			}
			for i := range vecs {
				for j := range want {
					if vecs[i][j] != want[j] {
						t.Fatalf("w=%d tree=%v rank %d elem %d: got %g want %g",
							w, useTree, i, j, vecs[i][j], want[j])
					}
				}
			}
		}
	}
}

// TestLiveGatherBroadcast checks the remaining collectives over the
// channel mesh.
func TestLiveGatherBroadcast(t *testing.T) {
	const w = 4
	mbs, nodes := chanGroup(w)
	vecs := make([][]float32, w)
	var want float32
	for i := range vecs {
		vecs[i] = []float32{float32(i + 1)}
		want += vecs[i][0]
	}
	errs := make(chan error, w)
	for i := 0; i < w; i++ {
		i := i
		go func() { errs <- gather(mbs[i], nodes, i, 1, vecs[i]) }()
	}
	for i := 0; i < w; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if vecs[0][0] != want {
		t.Fatalf("gather: leader has %g, want %g", vecs[0][0], want)
	}
	for i := 0; i < w; i++ {
		i := i
		go func() { errs <- broadcast(mbs[i], nodes, i, 2, vecs[i]) }()
	}
	for i := 0; i < w; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := range vecs {
		if vecs[i][0] != want {
			t.Fatalf("broadcast: rank %d has %g, want %g", i, vecs[i][0], want)
		}
	}
}

// TestDeriveStreamsMatchSim verifies the stream replay against the
// documented derivation order: distinct shard streams per worker,
// identical init streams across workers.
func TestDeriveStreamsMatchSim(t *testing.T) {
	a0 := deriveStreams(9, 0)
	a1 := deriveStreams(9, 1)
	if a0.init.Uint64() != a1.init.Uint64() {
		t.Fatal("init streams must be identical across workers")
	}
	if a0.shard.Uint64() == a1.shard.Uint64() {
		t.Fatal("shard streams must differ across workers")
	}
	if a0.algo.Uint64() == a1.algo.Uint64() {
		t.Fatal("algo streams must differ across workers")
	}
	b0 := deriveStreams(9, 0)
	if b0.shard.Uint64() != deriveStreams(9, 0).shard.Uint64() {
		t.Fatal("derivation must be deterministic")
	}
}
