package live

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"

	"disttrain/internal/core"
	"disttrain/internal/xport"
)

// ctlTimeout bounds each control-plane read. Its ceiling is the full
// training run: a worker's DONE only arrives after its last iteration, and
// the BYE after the slowest worker's DONE.
const ctlTimeout = 10 * time.Minute

// writeCtl sends one control frame on the rendezvous connection.
func writeCtl(c net.Conn, f *xport.Frame) error {
	c.SetWriteDeadline(time.Now().Add(recvTimeout))
	return xport.WriteFrame(c, f)
}

// readCtl reads one control frame, requiring the given kind.
func readCtl(c net.Conn, want uint16) (xport.Frame, error) {
	c.SetReadDeadline(time.Now().Add(ctlTimeout))
	f, err := xport.ReadFrame(c, xport.MaxFrameBytes)
	if err != nil {
		return f, err
	}
	if f.Kind != want {
		if f.Kind == kindDone && f.Seg < 0 {
			// A worker's failure report: surface its error.
			return f, fmt.Errorf("worker %d failed: %s", f.From, f.Data)
		}
		return f, fmt.Errorf("control frame kind %d, want %d", f.Kind, want)
	}
	return f, nil
}

// fingerprint digests the parts of the config every participant must agree
// on. The coordinator rejects a HELLO whose fingerprint differs from its
// own — catching a worker launched with a stale flag before it can skew
// the run.
func fingerprint(cfg *core.Config) string {
	return fmt.Sprintf("%s|w%d|i%d|s%d|m%v|wd%v|st%d|tau%d|mr%v|gp%v|tree%v|b%d|n%d",
		cfg.Algo, cfg.Workers, cfg.Iters, cfg.Seed, cfg.Momentum, cfg.WeightDecay,
		cfg.Staleness, cfg.Tau, cfg.MovingRate, cfg.GossipP, cfg.TreeAllReduce,
		cfg.Real.Batch, cfg.Real.Train.N())
}

// doneInfo is what one worker's DONE frame reports.
type doneInfo struct {
	iters    int
	loss     float64
	lossInit bool
	params   []float32
	stats    xport.Stats
}

// coordinate runs the coordinator's side of a live run on an established
// listener: accept W workers, assign ranks, exchange mesh addresses,
// barrier everyone, host the PS (centralized algorithms), and collect the
// workers' final reports into a Result.
func coordinate(cfg *core.Config, ln net.Listener) (*Result, error) {
	W := cfg.Workers
	n := meshSize(cfg)
	fp := fingerprint(cfg)

	conns := make([]net.Conn, 0, W)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	// Admit W workers in connection order; the accept order is the rank
	// order.
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(time.Now().Add(recvTimeout))
	}
	for rank := 0; rank < W; rank++ {
		c, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("live: accept worker %d: %w", rank, err)
		}
		conns = append(conns, c)
		hello, err := readCtl(c, kindHello)
		if err != nil {
			return nil, fmt.Errorf("live: hello from worker %d: %w", rank, err)
		}
		if string(hello.Data) != fp {
			return nil, fmt.Errorf("live: worker %d config fingerprint %q does not match coordinator's %q",
				rank, hello.Data, fp)
		}
		if err := writeCtl(c, &xport.Frame{Kind: kindAssign, From: int32(rank),
			Clock: int32(n), Seg: int32(serverRank(cfg))}); err != nil {
			return nil, fmt.Errorf("live: assign worker %d: %w", rank, err)
		}
	}

	// Collect every worker's mesh address, then open the PS endpoint on the
	// coordinator's own host.
	addrs := make([]string, n)
	for rank, c := range conns {
		f, err := readCtl(c, kindAddr)
		if err != nil {
			return nil, fmt.Errorf("live: addr from worker %d: %w", rank, err)
		}
		addrs[f.From] = string(f.Data)
	}
	var srvNet *xport.TCPNet
	if cfg.Algo.Centralized() {
		host, _, err := net.SplitHostPort(ln.Addr().String())
		if err != nil || host == "" || host == "::" || host == "0.0.0.0" {
			host = "127.0.0.1"
		}
		srvNet, err = xport.ListenTCP(W, n, net.JoinHostPort(host, "0"))
		if err != nil {
			return nil, fmt.Errorf("live: PS listen: %w", err)
		}
		defer srvNet.Close()
		addrs[W] = srvNet.Addr()
		srvNet.SetPeers(addrs)
	}

	peerList := strings.Join(addrs, ",")
	for rank, c := range conns {
		if err := writeCtl(c, &xport.Frame{Kind: kindPeers, Data: []byte(peerList)}); err != nil {
			return nil, fmt.Errorf("live: peers to worker %d: %w", rank, err)
		}
	}
	for rank, c := range conns {
		if _, err := readCtl(c, kindReady); err != nil {
			return nil, fmt.Errorf("live: ready from worker %d: %w", rank, err)
		}
	}

	// START is the wall-clock epoch: training time and fault windows are
	// measured from here.
	start := time.Now()
	for rank, c := range conns {
		if err := writeCtl(c, &xport.Frame{Kind: kindStart}); err != nil {
			return nil, fmt.Errorf("live: start to worker %d: %w", rank, err)
		}
	}

	var finalGlobal []float32
	srvDone := make(chan error, 1)
	if srvNet != nil {
		go func() {
			sv := newServer(cfg, srvNet)
			params, err := sv.run()
			finalGlobal = params
			srvDone <- err
		}()
	} else {
		srvDone <- nil
	}

	// Collect DONEs. Reading the connections in rank order still waits for
	// all of them; arrival order does not matter here.
	reports := make([]doneInfo, W)
	for rank, c := range conns {
		f, err := readCtl(c, kindDone)
		if err != nil {
			return nil, fmt.Errorf("live: done from worker %d: %w", rank, err)
		}
		var st xport.Stats
		if len(f.Data) > 0 {
			if err := json.Unmarshal(f.Data, &st); err != nil {
				return nil, fmt.Errorf("live: worker %d stats: %w", rank, err)
			}
		}
		reports[int(f.From)] = doneInfo{
			iters:    int(f.Clock),
			loss:     f.Aux,
			lossInit: f.Seg == 1,
			params:   f.Vec,
			stats:    st,
		}
	}
	wall := time.Since(start).Seconds()

	if err := <-srvDone; err != nil {
		return nil, err
	}

	// BYE releases the workers' tail loops (gossip drains, passive serves);
	// only after it may they close their endpoints.
	for rank, c := range conns {
		if err := writeCtl(c, &xport.Frame{Kind: kindBye}); err != nil {
			return nil, fmt.Errorf("live: bye to worker %d: %w", rank, err)
		}
	}

	return buildResult(cfg, reports, finalGlobal, wall, srvNet)
}

// buildResult assembles the Result from the workers' reports and the final
// global parameters, and evaluates the final model exactly the way the
// simulator's evalGlobal does.
func buildResult(cfg *core.Config, reports []doneInfo, finalGlobal []float32, wall float64, srvNet *xport.TCPNet) (*Result, error) {
	res := &Result{Config: *cfg, Transport: "tcp", WallSec: wall}
	totalIters := 0
	var loss float64
	cnt := 0
	for _, rep := range reports {
		res.WorkerIters = append(res.WorkerIters, rep.iters)
		res.WorkerParams = append(res.WorkerParams, rep.params)
		totalIters += rep.iters
		if rep.lossInit {
			loss += rep.loss
			cnt++
		}
		res.Net.FramesSent += rep.stats.FramesSent
		res.Net.FramesRecv += rep.stats.FramesRecv
		res.Net.BytesSent += rep.stats.BytesSent
		res.Net.BytesRecv += rep.stats.BytesRecv
		res.Net.Redials += rep.stats.Redials
		res.Net.Kills += rep.stats.Kills
		res.Net.DelayNanos += rep.stats.DelayNanos
	}
	if srvNet != nil {
		st := srvNet.Stats()
		res.Net.FramesSent += st.FramesSent
		res.Net.FramesRecv += st.FramesRecv
		res.Net.BytesSent += st.BytesSent
		res.Net.BytesRecv += st.BytesRecv
		res.Net.Redials += st.Redials
		res.Net.Kills += st.Kills
		res.Net.DelayNanos += st.DelayNanos
	}
	if cnt > 0 {
		res.FinalTrainLoss = loss / float64(cnt)
	}
	if wall > 0 {
		res.Throughput = float64(totalIters*cfg.Real.Batch) / wall
	}

	global := finalGlobal
	if global == nil {
		// Decentralized: the global model is the replica average, summed in
		// rank order then scaled — the simulator's globalParams.
		var out []float32
		cnt := 0
		for _, rep := range reports {
			if rep.params == nil {
				continue
			}
			if out == nil {
				out = make([]float32, len(rep.params))
			}
			for i, v := range rep.params {
				out[i] += v
			}
			cnt++
		}
		if cnt > 0 {
			inv := 1 / float32(cnt)
			for i := range out {
				out[i] *= inv
			}
		}
		global = out
	}
	res.FinalTestAcc = evalParams(cfg, global)
	return res, nil
}

// evalParams runs the simulator's final-evaluation recipe on a parameter
// vector: a model from the shared init stream, the test set capped at
// EvalMax, Evaluate's accuracy.
func evalParams(cfg *core.Config, params []float32) float64 {
	if params == nil {
		return 0
	}
	model := newEvalModel(cfg)
	model.SetFlatParams(params)
	test := cfg.Real.Test
	n := test.N()
	if cfg.Real.EvalMax > 0 && cfg.Real.EvalMax < n {
		n = cfg.Real.EvalMax
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	xb, yb := test.Gather(idx, nil, nil)
	_, acc := model.Evaluate(xb, yb)
	// The simulator reports FinalTestAcc as 1-TestErr with TestErr=1-acc;
	// 1-(1-acc) is not bitwise acc in float64, and live summaries must
	// match the simulator's reported numbers exactly, not just its params.
	return 1 - (1 - acc)
}
