package live

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"disttrain/internal/core"
	"disttrain/internal/trace"
	"disttrain/internal/xport"
)

// ctlTimeout bounds each control-plane read. Its ceiling is the full
// training run: a worker's DONE only arrives after its last iteration, and
// the BYE after the slowest worker's DONE.
const ctlTimeout = 10 * time.Minute

// heartbeatPeriod is how often a worker under a crash schedule renews its
// liveness lease with the coordinator; leaseTimeout is how long the
// coordinator tolerates silence from a connected worker before declaring
// the run wedged. A disconnected worker with a scheduled crash gets its
// largest scheduled restart delay on top.
const (
	heartbeatPeriod = 500 * time.Millisecond
	leaseTimeout    = 15 * time.Second
)

// ctlLink serializes writes on one control connection: the heartbeat
// goroutine and the training loop's DONE share the worker side of it.
type ctlLink struct {
	mu sync.Mutex
	c  net.Conn
}

func (l *ctlLink) write(f *xport.Frame) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return writeCtl(l.c, f)
}

// writeCtl sends one control frame on the rendezvous connection.
func writeCtl(c net.Conn, f *xport.Frame) error {
	c.SetWriteDeadline(time.Now().Add(recvTimeout))
	return xport.WriteFrame(c, f)
}

// readCtl reads one control frame, requiring the given kind.
func readCtl(c net.Conn, want uint16) (xport.Frame, error) {
	c.SetReadDeadline(time.Now().Add(ctlTimeout))
	f, err := xport.ReadFrame(c, xport.MaxFrameBytes)
	if err != nil {
		return f, err
	}
	if f.Kind != want {
		if f.Kind == kindDone && f.Seg < 0 {
			// A worker's failure report: surface its error.
			return f, fmt.Errorf("worker %d failed: %s", f.From, f.Data)
		}
		return f, fmt.Errorf("control frame kind %d, want %d", f.Kind, want)
	}
	return f, nil
}

// readAnyCtl reads one control frame of any kind with the given deadline.
func readAnyCtl(c net.Conn, d time.Duration) (xport.Frame, error) {
	c.SetReadDeadline(time.Now().Add(d))
	return xport.ReadFrame(c, xport.MaxFrameBytes)
}

// fingerprint digests the parts of the config every participant must agree
// on. The coordinator rejects a HELLO whose fingerprint differs from its
// own — catching a worker launched with a stale flag before it can skew
// the run.
func fingerprint(cfg *core.Config) string {
	return fmt.Sprintf("%s|w%d|i%d|s%d|m%v|wd%v|st%d|tau%d|mr%v|gp%v|tree%v|b%d|n%d",
		cfg.Algo, cfg.Workers, cfg.Iters, cfg.Seed, cfg.Momentum, cfg.WeightDecay,
		cfg.Staleness, cfg.Tau, cfg.MovingRate, cfg.GossipP, cfg.TreeAllReduce,
		cfg.Real.Batch, cfg.Real.Train.N())
}

// doneStats is the stats payload of a DONE frame: the transport counters
// accumulated across every incarnation of the worker, plus how many
// checkpoint restores its restarts performed. The embedded struct keeps the
// JSON flat, so pre-chaos payloads decode unchanged.
type doneStats struct {
	xport.Stats
	Restores int64 `json:"restores,omitempty"`
}

// add folds one endpoint's counters into the accumulated stats.
func (d *doneStats) add(s xport.Stats) {
	d.FramesSent += s.FramesSent
	d.FramesRecv += s.FramesRecv
	d.BytesSent += s.BytesSent
	d.BytesRecv += s.BytesRecv
	d.Redials += s.Redials
	d.Kills += s.Kills
	d.DelayNanos += s.DelayNanos
	d.Partitioned += s.Partitioned
}

// doneInfo is what one worker's DONE frame reports.
type doneInfo struct {
	iters    int
	loss     float64
	lossInit bool
	params   []float32
	stats    doneStats
}

// coordinate runs the coordinator's side of a live run on an established
// listener: accept W workers, assign ranks, exchange mesh addresses,
// barrier everyone, host the PS (centralized algorithms), and collect the
// workers' final reports into a Result. Under a crash schedule it
// additionally runs per-rank lease monitors, a rejoin acceptor, and a
// watchdog, so scheduled deaths are distinguished from wedged runs.
func coordinate(cfg *core.Config, ln net.Listener, o *Options) (*Result, error) {
	W := cfg.Workers
	n := meshSize(cfg)
	fp := fingerprint(cfg)
	ch := newChaos(cfg)

	// The rendezvous span covers admission through the START broadcast: the
	// coordinator's setup cost before any training happens.
	spRdv := o.tracer.StartSpan("rendezvous", "coord", coordPid, 0)

	conns := make([]net.Conn, 0, W)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()

	// Admit W workers in connection order; the accept order is the rank
	// order.
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(time.Now().Add(recvTimeout))
	}
	for rank := 0; rank < W; rank++ {
		c, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("live: accept worker %d: %w", rank, err)
		}
		conns = append(conns, c)
		hello, err := readCtl(c, kindHello)
		if err != nil {
			return nil, fmt.Errorf("live: hello from worker %d: %w", rank, err)
		}
		if string(hello.Data) != fp {
			return nil, fmt.Errorf("live: worker %d config fingerprint %q does not match coordinator's %q",
				rank, hello.Data, fp)
		}
		if err := writeCtl(c, &xport.Frame{Kind: kindAssign, From: int32(rank),
			Clock: int32(n), Seg: int32(serverRank(cfg))}); err != nil {
			return nil, fmt.Errorf("live: assign worker %d: %w", rank, err)
		}
	}

	// Collect every worker's mesh address, then open the PS endpoint on the
	// coordinator's own host.
	addrs := make([]string, n)
	for rank, c := range conns {
		f, err := readCtl(c, kindAddr)
		if err != nil {
			return nil, fmt.Errorf("live: addr from worker %d: %w", rank, err)
		}
		addrs[f.From] = string(f.Data)
	}
	var srvNet *xport.TCPNet
	if cfg.Algo.Centralized() {
		host, _, err := net.SplitHostPort(ln.Addr().String())
		if err != nil || host == "" || host == "::" || host == "0.0.0.0" {
			host = "127.0.0.1"
		}
		srvNet, err = xport.ListenTCP(W, n, net.JoinHostPort(host, "0"))
		if err != nil {
			return nil, fmt.Errorf("live: PS listen: %w", err)
		}
		defer srvNet.Close()
		addrs[W] = srvNet.Addr()
		srvNet.SetPeers(addrs)
		o.metrics.registerStats(W, srvNet.Stats)
	}

	peerList := strings.Join(addrs, ",")
	for rank, c := range conns {
		if err := writeCtl(c, &xport.Frame{Kind: kindPeers, Data: []byte(peerList)}); err != nil {
			return nil, fmt.Errorf("live: peers to worker %d: %w", rank, err)
		}
	}
	for rank, c := range conns {
		if _, err := readCtl(c, kindReady); err != nil {
			return nil, fmt.Errorf("live: ready from worker %d: %w", rank, err)
		}
	}

	// START is the wall-clock epoch: training time and fault windows are
	// measured from here.
	start := time.Now()
	for rank, c := range conns {
		if err := writeCtl(c, &xport.Frame{Kind: kindStart}); err != nil {
			return nil, fmt.Errorf("live: start to worker %d: %w", rank, err)
		}
	}
	spRdv.End()

	var finalGlobal []float32
	srvDone := make(chan error, 1)
	if srvNet != nil {
		go func() {
			sv := newServer(cfg, srvNet, o)
			params, err := sv.run()
			finalGlobal = params
			srvDone <- err
		}()
	} else {
		srvDone <- nil
	}

	if ch != nil {
		return coordinateChaos(cfg, ln, ch, conns, fp, peerList, start, srvDone, &finalGlobal, srvNet, o)
	}

	var doneCount atomic.Int64
	o.metrics.registerCoord(func() coordSnapshot {
		return coordSnapshot{done: doneCount.Load()}
	})

	// Collect DONEs. Reading the connections in rank order still waits for
	// all of them; arrival order does not matter here.
	reports := make([]doneInfo, W)
	for rank, c := range conns {
		f, err := readCtl(c, kindDone)
		if err != nil {
			return nil, fmt.Errorf("live: done from worker %d: %w", rank, err)
		}
		doneCount.Add(1)
		var st doneStats
		if len(f.Data) > 0 {
			if err := json.Unmarshal(f.Data, &st); err != nil {
				return nil, fmt.Errorf("live: worker %d stats: %w", rank, err)
			}
		}
		reports[int(f.From)] = doneInfo{
			iters:    int(f.Clock),
			loss:     f.Aux,
			lossInit: f.Seg == 1,
			params:   f.Vec,
			stats:    st,
		}
	}
	wall := time.Since(start).Seconds()

	if err := <-srvDone; err != nil {
		return nil, err
	}

	// BYE releases the workers' tail loops (gossip drains, passive serves);
	// only after it may they close their endpoints.
	for rank, c := range conns {
		if err := writeCtl(c, &xport.Frame{Kind: kindBye}); err != nil {
			return nil, fmt.Errorf("live: bye to worker %d: %w", rank, err)
		}
	}

	return buildResult(cfg, reports, finalGlobal, wall, srvNet)
}

// runState is the coordinator's shared view of a chaos run: the current
// control connection, lease, and progress per rank, which ranks have
// reported (or been written off), and the death/rejoin counters.
type runState struct {
	cfg      *core.Config
	ch       *chaos
	fp       string
	peerList string
	start    time.Time
	tr       *trace.Tracer // nil when tracing is off; all calls nil-safe

	mu      sync.Mutex
	conns   []net.Conn // current control conn per rank; nil while dead
	beat    []time.Time
	iter    []int
	reports []doneInfo
	done    []bool
	deaths  int64
	rejoins int64

	doneCh chan int
	errCh  chan error
	quit   chan struct{}
}

func (st *runState) fail(err error) {
	select {
	case st.errCh <- err:
	default:
	}
}

// monitor owns one rank's control connection: it folds heartbeats into the
// lease state, records the DONE report, and routes disconnects to the
// death/rejoin machinery.
func (st *runState) monitor(rank int, c net.Conn) {
	for {
		f, err := readAnyCtl(c, ctlTimeout)
		if err != nil {
			st.onDisconnect(rank, c)
			return
		}
		switch f.Kind {
		case kindHeartbeat:
			st.tr.Mark("heartbeat", "coord", coordPid, rank)
			st.mu.Lock()
			if st.conns[rank] == c {
				st.beat[rank] = time.Now()
				if int(f.Clock) > st.iter[rank] {
					st.iter[rank] = int(f.Clock)
				}
			}
			st.mu.Unlock()
		case kindDone:
			if f.Seg < 0 {
				st.fail(fmt.Errorf("live: worker %d failed: %s", rank, f.Data))
				return
			}
			var ds doneStats
			if len(f.Data) > 0 {
				if err := json.Unmarshal(f.Data, &ds); err != nil {
					st.fail(fmt.Errorf("live: worker %d stats: %w", rank, err))
					return
				}
			}
			st.mu.Lock()
			st.reports[rank] = doneInfo{iters: int(f.Clock), loss: f.Aux,
				lossInit: f.Seg == 1, params: f.Vec, stats: ds}
			st.done[rank] = true
			st.mu.Unlock()
			st.doneCh <- rank
			return
		default:
			st.fail(fmt.Errorf("live: worker %d: unexpected control kind %d", rank, f.Kind))
			return
		}
	}
}

// onDisconnect classifies a dropped control connection: a scheduled death
// (awaiting rejoin, or written off when the schedule never revives the
// rank) or a genuine failure.
func (st *runState) onDisconnect(rank int, c net.Conn) {
	st.mu.Lock()
	if st.conns[rank] != c || st.done[rank] {
		// Superseded by a rejoin, or the post-DONE teardown: not a death.
		st.mu.Unlock()
		return
	}
	st.conns[rank] = nil
	if !st.ch.hasCrash(rank) {
		st.mu.Unlock()
		st.fail(fmt.Errorf("live: worker %d control connection lost", rank))
		return
	}
	st.deaths++
	st.tr.Mark("death", "coord", coordPid, rank)
	if !st.ch.finishes(rank) {
		// The schedule never revives this rank before the run ends:
		// synthesize its report from the last heartbeat so the run can
		// complete without it.
		st.reports[rank] = doneInfo{iters: st.iter[rank]}
		st.done[rank] = true
		st.mu.Unlock()
		st.doneCh <- rank
		return
	}
	st.mu.Unlock()
}

// rejoinLoop keeps accepting on the rendezvous listener after the START
// barrier; every connection must open with a REJOIN. It exits when the
// listener closes.
func (st *runState) rejoinLoop(ln net.Listener) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := ln.(deadliner); ok {
		d.SetDeadline(time.Time{})
	}
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go st.handleRejoin(c)
	}
}

// handleRejoin re-admits a restarted worker: verify its rank and config
// fingerprint, install the new control connection, and hand back the peer
// list plus the wall-clock offset so the worker re-anchors its fault plan.
func (st *runState) handleRejoin(c net.Conn) {
	f, err := readAnyCtl(c, recvTimeout)
	if err != nil || f.Kind != kindRejoin {
		c.Close()
		return
	}
	rank := int(f.From)
	st.mu.Lock()
	if rank < 0 || rank >= len(st.conns) || string(f.Data) != st.fp ||
		st.done[rank] || !st.ch.hasCrash(rank) {
		st.mu.Unlock()
		c.Close()
		return
	}
	sp := st.tr.StartSpan("rejoin", "coord", coordPid, rank)
	if old := st.conns[rank]; old != nil {
		// The rejoin outran the old monitor's read error: count the death
		// here and supersede the stale connection (its monitor stands down
		// when it sees conns[rank] changed).
		st.deaths++
		old.Close()
	}
	st.conns[rank] = c
	st.beat[rank] = time.Now()
	st.rejoins++
	elapsed := time.Since(st.start).Seconds()
	st.mu.Unlock()
	if err := writeCtl(c, &xport.Frame{Kind: kindRejoinOK, Aux: elapsed,
		Data: []byte(st.peerList)}); err != nil {
		sp.End()
		st.onDisconnect(rank, c)
		return
	}
	sp.End()
	go st.monitor(rank, c)
}

// watchdog fails the run when a rank goes silent past its lease: the
// heartbeat period plus slack for a connected worker, plus the largest
// scheduled restart delay while a crashed worker is disconnected.
func (st *runState) watchdog() {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-st.quit:
			return
		case <-t.C:
		}
		now := time.Now()
		st.mu.Lock()
		for r := 0; r < len(st.conns); r++ {
			if st.done[r] {
				continue
			}
			last := st.beat[r]
			if last.IsZero() {
				last = st.start
			}
			allow := leaseTimeout
			if st.conns[r] == nil && st.ch.hasCrash(r) {
				allow += time.Duration(st.ch.maxRestart(r)*float64(time.Second)) + leaseTimeout
			}
			if now.Sub(last) > allow {
				st.mu.Unlock()
				st.fail(fmt.Errorf("live: worker %d lease expired after %.1fs of silence", r, now.Sub(last).Seconds()))
				return
			}
		}
		st.mu.Unlock()
	}
}

// coordinateChaos is the post-START coordinator path for crash schedules:
// per-rank monitors collect DONEs and classify disconnects, the rejoin
// acceptor re-admits restarted workers, and the watchdog bounds silence.
func coordinateChaos(cfg *core.Config, ln net.Listener, ch *chaos, conns []net.Conn,
	fp, peerList string, start time.Time, srvDone chan error, finalGlobal *[]float32,
	srvNet *xport.TCPNet, o *Options) (*Result, error) {
	W := cfg.Workers
	st := &runState{
		cfg: cfg, ch: ch, fp: fp, peerList: peerList, start: start, tr: o.tracer,
		conns: conns, beat: make([]time.Time, W), iter: make([]int, W),
		reports: make([]doneInfo, W), done: make([]bool, W),
		doneCh: make(chan int, W), errCh: make(chan error, 1),
		quit: make(chan struct{}),
	}
	o.metrics.registerCoord(func() coordSnapshot {
		st.mu.Lock()
		defer st.mu.Unlock()
		var done int64
		for _, d := range st.done {
			if d {
				done++
			}
		}
		return coordSnapshot{deaths: st.deaths, rejoins: st.rejoins, done: done}
	})
	for r := 0; r < W; r++ {
		go st.monitor(r, conns[r])
	}
	go st.rejoinLoop(ln)
	go st.watchdog()

	finished := 0
	var runErr error
	for finished < W && runErr == nil {
		select {
		case <-st.doneCh:
			finished++
		case runErr = <-st.errCh:
		}
	}
	wall := time.Since(start).Seconds()
	close(st.quit)
	if runErr != nil {
		return nil, runErr
	}
	if err := <-srvDone; err != nil {
		return nil, err
	}

	st.mu.Lock()
	// BYE releases the tail loops of the workers that finished on a live
	// connection; written-off ranks have no connection to release.
	for r, c := range st.conns {
		if c != nil && st.done[r] {
			_ = writeCtl(c, &xport.Frame{Kind: kindBye})
		}
	}
	reports := append([]doneInfo(nil), st.reports...)
	deaths, rejoins := st.deaths, st.rejoins
	st.mu.Unlock()

	res, err := buildResult(cfg, reports, *finalGlobal, wall, srvNet)
	if err != nil {
		return nil, err
	}
	res.Deaths, res.Rejoins = deaths, rejoins
	return res, nil
}

// buildResult assembles the Result from the workers' reports and the final
// global parameters, and evaluates the final model exactly the way the
// simulator's evalGlobal does.
func buildResult(cfg *core.Config, reports []doneInfo, finalGlobal []float32, wall float64, srvNet *xport.TCPNet) (*Result, error) {
	res := &Result{Config: *cfg, Transport: "tcp", WallSec: wall}
	totalIters := 0
	var loss float64
	cnt := 0
	for _, rep := range reports {
		res.WorkerIters = append(res.WorkerIters, rep.iters)
		res.WorkerParams = append(res.WorkerParams, rep.params)
		totalIters += rep.iters
		if rep.lossInit {
			loss += rep.loss
			cnt++
		}
		res.Net.FramesSent += rep.stats.FramesSent
		res.Net.FramesRecv += rep.stats.FramesRecv
		res.Net.BytesSent += rep.stats.BytesSent
		res.Net.BytesRecv += rep.stats.BytesRecv
		res.Net.Redials += rep.stats.Redials
		res.Net.Kills += rep.stats.Kills
		res.Net.DelayNanos += rep.stats.DelayNanos
		res.Net.Partitioned += rep.stats.Partitioned
		res.Restores += rep.stats.Restores
	}
	if srvNet != nil {
		st := srvNet.Stats()
		res.Net.FramesSent += st.FramesSent
		res.Net.FramesRecv += st.FramesRecv
		res.Net.BytesSent += st.BytesSent
		res.Net.BytesRecv += st.BytesRecv
		res.Net.Redials += st.Redials
		res.Net.Kills += st.Kills
		res.Net.DelayNanos += st.DelayNanos
		res.Net.Partitioned += st.Partitioned
	}
	if cnt > 0 {
		res.FinalTrainLoss = loss / float64(cnt)
	}
	if wall > 0 {
		res.Throughput = float64(totalIters*cfg.Real.Batch) / wall
	}

	global := finalGlobal
	if global == nil {
		// Decentralized: the global model is the replica average, summed in
		// rank order then scaled — the simulator's globalParams.
		var out []float32
		cnt := 0
		for _, rep := range reports {
			if rep.params == nil {
				continue
			}
			if out == nil {
				out = make([]float32, len(rep.params))
			}
			for i, v := range rep.params {
				out[i] += v
			}
			cnt++
		}
		if cnt > 0 {
			inv := 1 / float32(cnt)
			for i := range out {
				out[i] *= inv
			}
		}
		global = out
	}
	res.FinalTestAcc = evalParams(cfg, global)
	return res, nil
}

// evalParams runs the simulator's final-evaluation recipe on a parameter
// vector: a model from the shared init stream, the test set capped at
// EvalMax, Evaluate's accuracy.
func evalParams(cfg *core.Config, params []float32) float64 {
	if params == nil {
		return 0
	}
	model := newEvalModel(cfg)
	model.SetFlatParams(params)
	test := cfg.Real.Test
	n := test.N()
	if cfg.Real.EvalMax > 0 && cfg.Real.EvalMax < n {
		n = cfg.Real.EvalMax
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	xb, yb := test.Gather(idx, nil, nil)
	_, acc := model.Evaluate(xb, yb)
	// The simulator reports FinalTestAcc as 1-TestErr with TestErr=1-acc;
	// 1-(1-acc) is not bitwise acc in float64, and live summaries must
	// match the simulator's reported numbers exactly, not just its params.
	return 1 - (1 - acc)
}
