package sched

import (
	"sync/atomic"
	"testing"
)

// TestPoolRunsEverySubmission checks all futures resolve with their own
// results across pool sizes, including the nil inline pool.
func TestPoolRunsEverySubmission(t *testing.T) {
	for _, n := range []int{0, 1, 4, 8} {
		var p *Pool
		if n > 0 {
			p = NewPool(n)
		}
		const tasks = 200
		futs := make([]*Future[int], tasks)
		for i := 0; i < tasks; i++ {
			i := i
			futs[i] = Submit(p, func() int { return i * i })
		}
		for i, f := range futs {
			if got := f.Wait(); got != i*i {
				t.Fatalf("pool %d: task %d returned %d, want %d", n, i, got, i*i)
			}
		}
		p.Close()
	}
}

// TestPoolCloseDrains ensures Close waits for in-flight and queued tasks.
func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		Submit(p, func() struct{} {
			ran.Add(1)
			return struct{}{}
		})
	}
	p.Close()
	if got := ran.Load(); got != 100 {
		t.Fatalf("Close returned with %d/100 tasks run", got)
	}
}

// TestWaitIsIdempotent: Wait can be called repeatedly (the settle-then-take
// discipline in core depends on it).
func TestWaitIsIdempotent(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	var calls atomic.Int64
	f := Submit(p, func() int { calls.Add(1); return 7 })
	for i := 0; i < 3; i++ {
		if got := f.Wait(); got != 7 {
			t.Fatalf("Wait #%d = %d, want 7", i, got)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("task ran %d times, want 1", calls.Load())
	}
}

// TestResolvedFuture checks the pre-resolved constructor.
func TestResolvedFuture(t *testing.T) {
	f := Resolved("x")
	if !f.Done() {
		t.Fatal("Resolved future not Done")
	}
	if f.Wait() != "x" {
		t.Fatal("Resolved future lost its value")
	}
}

// TestNilPoolIsInline: a nil pool resolves at submission.
func TestNilPoolIsInline(t *testing.T) {
	f := Submit[int](nil, func() int { return 3 })
	if !f.Done() {
		t.Fatal("nil-pool submission not resolved at return")
	}
	if f.Wait() != 3 {
		t.Fatal("nil-pool future wrong value")
	}
	if (*Pool)(nil).Size() != 0 {
		t.Fatal("nil pool size not 0")
	}
	(*Pool)(nil).Close() // must not panic
}
