// Package sched is a bounded compute pool with a future API — the "real
// compute parallel, simulation logic single-threaded" split used by
// parallel discrete-event systems.
//
// The discrete-event engine in internal/des deliberately runs exactly one
// simulated process at a time, which makes event order (and therefore every
// simulation output) bit-for-bit reproducible — but it also means the real
// forward/backward passes of N simulated workers execute serially on one
// core. This package restores hardware parallelism without touching event
// order: a simulated process *submits* its pure numeric work as a future at
// one fixed point in the event trace and *joins* the result at another
// fixed point; between the two, the work runs on a real goroutine pool
// concurrently with other processes' futures. As long as submitted
// closures share no mutable state (each training replica owns its model,
// arena, sampler and RNG streams) and every join point is fixed by the
// event trace, results are byte-identical for any pool size — the engine
// never observes *when* the work ran, only that it is done.
package sched

import "sync"

// Pool executes submitted tasks on a fixed set of worker goroutines. The
// queue is unbounded (submission never blocks the simulation thread); the
// concurrency bound is the worker count. A nil *Pool is valid and runs
// every submission inline on the caller's goroutine — the serial mode the
// deterministic tests compare against.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
	size   int
	wg     sync.WaitGroup
}

// NewPool starts a pool of n worker goroutines (n < 1 is clamped to 1).
// Close must be called when done so the workers exit.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{size: n}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

// Size returns the worker count (0 for a nil, inline pool).
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return p.size
}

func (p *Pool) worker() {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		task := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()
		task()
		p.mu.Lock()
	}
}

// enqueue appends a task and wakes one worker.
func (p *Pool) enqueue(task func()) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("sched: Submit on closed pool")
	}
	p.queue = append(p.queue, task)
	p.mu.Unlock()
	p.cond.Signal()
}

// Close drains the queue and stops the workers. Every task submitted
// before Close completes before Close returns; Submit after Close panics.
// Close on a nil pool is a no-op.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// Future is the pending result of a submitted task.
type Future[T any] struct {
	done chan struct{}
	val  T
}

// Submit schedules fn on the pool and returns its future. On a nil pool fn
// runs inline before Submit returns (the future is already resolved).
func Submit[T any](p *Pool, fn func() T) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	if p == nil {
		f.val = fn()
		close(f.done)
		return f
	}
	p.enqueue(func() {
		f.val = fn()
		close(f.done)
	})
	return f
}

// Resolved returns an already-completed future holding v — the zero-cost
// stand-in where a code path has no work to offload (e.g. cost-only
// simulation replicas).
func Resolved[T any](v T) *Future[T] {
	f := &Future[T]{done: make(chan struct{}), val: v}
	close(f.done)
	return f
}

// Wait blocks until the task completes and returns its result. Safe to
// call any number of times from any goroutine; every call returns the same
// value.
func (f *Future[T]) Wait() T {
	<-f.done
	return f.val
}

// Done reports whether the task has completed without blocking.
func (f *Future[T]) Done() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}
