package core

import (
	"context"
	"math"
	"testing"

	"disttrain/internal/cluster"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/grad"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

// costConfig builds a fast cost-only config on the paper cluster.
func costConfig(algo Algo, workers, iters int) Config {
	cfg := Config{
		Algo:     algo,
		Cluster:  cluster.Paper56G(workers),
		Workers:  workers,
		Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
		Iters:    iters,
		Seed:     7,
		Momentum: 0.9,
		LR:       opt.Schedule{Base: 0.1},
	}
	switch algo {
	case SSP:
		cfg.Staleness = 3
	case EASGD:
		cfg.Tau = 4
	case GoSGD:
		cfg.GossipP = 0.5
	}
	return cfg
}

// realConfig builds a real-math config: MLP on Gaussian clusters, tiny and
// fast, with ResNet-50 paper-scale timing.
func realConfig(algo Algo, workers, iters int, seed uint64) Config {
	r := rng.New(seed + 1000)
	ds := data.GenGauss(r, 600, 3, 0.45)
	train, test := ds.Split(r.Split(1), 120)
	cfg := costConfig(algo, workers, iters)
	cfg.Seed = seed
	cfg.LR = opt.Schedule{Base: 0.05}
	cfg.Real = &RealConfig{
		Factory: func(rr *rng.RNG) *nn.Model { return nn.NewMLP(rr, 2, 16, 3) },
		Train:   train,
		Test:    test,
		Batch:   16,
	}
	return cfg
}

func TestAllAlgorithmsRunCostOnly(t *testing.T) {
	for _, algo := range Algos() {
		res, err := Run(context.Background(), costConfig(algo, 8, 10))
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if got := res.Metrics.TotalIters(); got != 80 {
			t.Fatalf("%s: total iters %d, want 80", algo, got)
		}
		if res.VirtualSec <= 0 {
			t.Fatalf("%s: no virtual time elapsed", algo)
		}
		if res.Throughput <= 0 {
			t.Fatalf("%s: throughput %v", algo, res.Throughput)
		}
	}
}

func TestAllAlgorithmsLearnReal(t *testing.T) {
	// Every algorithm must beat chance (1/3) clearly on the easy cluster
	// task at small scale; the well-aggregating ones should be near-perfect.
	for _, algo := range Algos() {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			cfg := realConfig(algo, 4, 150, 11)
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.FinalTestAcc < 0.7 {
				t.Fatalf("%s: final acc %.3f", algo, res.FinalTestAcc)
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, algo := range []Algo{BSP, ASP, ADPSGD} {
		r1, err := Run(context.Background(), realConfig(algo, 4, 40, 5))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(context.Background(), realConfig(algo, 4, 40, 5))
		if err != nil {
			t.Fatal(err)
		}
		if r1.VirtualSec != r2.VirtualSec {
			t.Fatalf("%s: virtual time differs: %v vs %v", algo, r1.VirtualSec, r2.VirtualSec)
		}
		if r1.FinalTestAcc != r2.FinalTestAcc {
			t.Fatalf("%s: accuracy differs: %v vs %v", algo, r1.FinalTestAcc, r2.FinalTestAcc)
		}
		if r1.Net.TotalBytes != r2.Net.TotalBytes {
			t.Fatalf("%s: traffic differs", algo)
		}
	}
}

func TestBSPEqualsARSGD(t *testing.T) {
	// BSP (PS, averaged gradient, one global optimizer) and AR-SGD
	// (AllReduce, averaged gradient, per-worker identical optimizers) are
	// the same algorithm mathematically; with the same seed they must
	// produce near-identical trajectories (up to float32 summation order).
	b, err := Run(context.Background(), realConfig(BSP, 4, 60, 3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(context.Background(), realConfig(ARSGD, 4, 60, 3))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.FinalTestAcc-a.FinalTestAcc) > 0.03 {
		t.Fatalf("BSP acc %.4f vs AR-SGD acc %.4f", b.FinalTestAcc, a.FinalTestAcc)
	}
	if math.Abs(b.FinalTrainLoss-a.FinalTrainLoss) > 0.1*math.Max(b.FinalTrainLoss, 0.05) {
		t.Fatalf("BSP loss %.5f vs AR-SGD loss %.5f", b.FinalTrainLoss, a.FinalTrainLoss)
	}
}

func TestSingleWorkerDegeneratesToSGD(t *testing.T) {
	// With one worker, BSP / ASP / SSP all reduce to sequential SGD through
	// the PS; their final metrics must agree exactly.
	var accs []float64
	for _, algo := range []Algo{BSP, ASP, SSP} {
		cfg := realConfig(algo, 1, 80, 9)
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		accs = append(accs, res.FinalTestAcc)
	}
	if accs[0] != accs[1] || accs[1] != accs[2] {
		t.Fatalf("single-worker trajectories diverge: %v", accs)
	}
}

func TestCommComplexityTable1(t *testing.T) {
	// Measure bytes/iteration and compare against Table I's complexity
	// column. M = model bytes, N = workers, l = workers/machine, τ, p, s as
	// configured. Control traffic (acks, pulls) is a rounding error at
	// ResNet-50 scale.
	const workers = 8
	const iters = 30
	M := float64(costmodel.ResNet50().TotalBytes())
	N := float64(workers)

	measure := func(cfg Config) float64 {
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Net.TotalBytes) / float64(iters)
	}
	within := func(got, want, tol float64) bool {
		return math.Abs(got-want) <= tol*want
	}

	// ASP: O(2MN) per iteration.
	if got := measure(costConfig(ASP, workers, iters)); !within(got, 2*M*N, 0.05) {
		t.Fatalf("ASP bytes/iter = %.3e, want ~%.3e", got, 2*M*N)
	}

	// BSP without local aggregation: O(2MN).
	bsp := costConfig(BSP, workers, iters)
	if got := measure(bsp); !within(got, 2*M*N, 0.05) {
		t.Fatalf("BSP bytes/iter = %.3e, want ~%.3e", got, 2*M*N)
	}

	// BSP with local aggregation: O(2MN/l) PS-bound traffic, l = 4 (the
	// member→leader gathers ride the intra-machine bus and are not PS
	// traffic).
	bspLocal := costConfig(BSP, workers, iters)
	bspLocal.LocalAgg = true
	resLocal, err := Run(context.Background(), bspLocal)
	if err != nil {
		t.Fatal(err)
	}
	psBytes := resLocal.Net.BytesByKind[kindGrad] + resLocal.Net.BytesByKind[kindParams]
	gotPS := float64(psBytes) / float64(iters)
	if !within(gotPS, 2*M*N/4, 0.05) {
		t.Fatalf("BSP+localAgg PS bytes/iter = %.3e, want ~%.3e", gotPS, 2*M*N/4)
	}

	// EASGD: O(2MN/τ), τ=4.
	if got := measure(costConfig(EASGD, workers, iters)); !within(got, 2*M*N/4, 0.1) {
		t.Fatalf("EASGD bytes/iter = %.3e, want ~%.3e", got, 2*M*N/4)
	}

	// SSP: O((1 + 1/(s+1))·MN), s=3.
	if got := measure(costConfig(SSP, workers, iters)); !within(got, (1+1.0/4)*M*N, 0.1) {
		t.Fatalf("SSP bytes/iter = %.3e, want ~%.3e", got, (1+1.0/4)*M*N)
	}

	// AR-SGD ring: 2M(N-1) total per iteration ≈ O(2MN).
	if got := measure(costConfig(ARSGD, workers, iters)); !within(got, 2*M*(N-1), 0.05) {
		t.Fatalf("AR-SGD bytes/iter = %.3e, want ~%.3e", got, 2*M*(N-1))
	}

	// GoSGD: O(MN·p), p=0.5 — statistical, wide tolerance.
	if got := measure(costConfig(GoSGD, workers, iters)); !within(got, M*N*0.5, 0.4) {
		t.Fatalf("GoSGD bytes/iter = %.3e, want ~%.3e", got, M*N*0.5)
	}

	// AD-PSGD: O(MN): N/2 active exchanges × 2 messages of M.
	if got := measure(costConfig(ADPSGD, workers, iters)); !within(got, M*N, 0.1) {
		t.Fatalf("AD-PSGD bytes/iter = %.3e, want ~%.3e", got, M*N)
	}
}

func TestSSPZeroStalenessPullsEveryIteration(t *testing.T) {
	cfg := costConfig(SSP, 4, 20)
	cfg.Staleness = 0
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// s=0: every iteration sends M and pulls M back → ~2MN/iter.
	M := float64(costmodel.ResNet50().TotalBytes())
	got := float64(res.Net.TotalBytes) / 20
	want := 2 * M * 4
	if math.Abs(got-want) > 0.15*want {
		t.Fatalf("SSP(s=0) bytes/iter = %.3e, want ~%.3e", got, want)
	}
}

func TestEASGDCommunicatesOnlyEveryTau(t *testing.T) {
	cfg := costConfig(EASGD, 4, 16)
	cfg.Tau = 8
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 16 iters, τ=8 → 2 rounds × 4 workers × 2M.
	M := float64(costmodel.ResNet50().TotalBytes())
	want := 2.0 * 4 * 2 * M
	got := float64(res.Net.TotalBytes)
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("EASGD total bytes %.3e, want %.3e", got, want)
	}
}

func TestADPSGDNoDeadlockUnderLoad(t *testing.T) {
	// The bipartite split must keep 24 workers deadlock-free.
	res, err := Run(context.Background(), costConfig(ADPSGD, 24, 15))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalIters() != 24*15 {
		t.Fatalf("iters = %d", res.Metrics.TotalIters())
	}
}

func TestWaitFreeBPNotSlower(t *testing.T) {
	base := costConfig(ASP, 8, 20)
	base.Sharding = ShardLayerWise
	res1, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	wfbp := costConfig(ASP, 8, 20)
	wfbp.Sharding = ShardLayerWise
	wfbp.WaitFreeBP = true
	res2, err := Run(context.Background(), wfbp)
	if err != nil {
		t.Fatal(err)
	}
	if res2.VirtualSec > res1.VirtualSec*1.02 {
		t.Fatalf("WFBP slower: %.3f vs %.3f", res2.VirtualSec, res1.VirtualSec)
	}
}

func TestDGCReducesTraffic(t *testing.T) {
	base := costConfig(ASP, 8, 20)
	res1, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	dgc := costConfig(ASP, 8, 20)
	d := grad.DefaultDGC(0.9, 0)
	dgc.DGC = &d
	res2, err := Run(context.Background(), dgc)
	if err != nil {
		t.Fatal(err)
	}
	// Gradients shrink ~500×; replies stay dense, so total should be a bit
	// over half of baseline.
	if float64(res2.Net.TotalBytes) > 0.6*float64(res1.Net.TotalBytes) {
		t.Fatalf("DGC bytes %d not << baseline %d", res2.Net.TotalBytes, res1.Net.TotalBytes)
	}
}

func TestDGCPreservesAccuracy(t *testing.T) {
	base := realConfig(BSP, 4, 200, 21)
	r1, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	withDGC := realConfig(BSP, 4, 200, 21)
	d := grad.DGCConfig{Ratio: 0.05, Momentum: 0.9, ClipNorm: 4, WarmupIters: 40}
	withDGC.DGC = &d
	r2, err := Run(context.Background(), withDGC)
	if err != nil {
		t.Fatal(err)
	}
	if r2.FinalTestAcc < r1.FinalTestAcc-0.08 {
		t.Fatalf("DGC destroyed accuracy: %.3f vs %.3f", r2.FinalTestAcc, r1.FinalTestAcc)
	}
}

func TestShardingSpeedsUpASP(t *testing.T) {
	slow := costConfig(ASP, 16, 15)
	slow.Cluster = cluster.Paper10G(16)
	slow.Sharding = ShardNone
	r1, err := Run(context.Background(), slow)
	if err != nil {
		t.Fatal(err)
	}
	sharded := costConfig(ASP, 16, 15)
	sharded.Cluster = cluster.Paper10G(16)
	sharded.Sharding = ShardLayerWise
	r2, err := Run(context.Background(), sharded)
	if err != nil {
		t.Fatal(err)
	}
	if r2.VirtualSec >= r1.VirtualSec {
		t.Fatalf("sharding did not help ASP: %.3f vs %.3f", r2.VirtualSec, r1.VirtualSec)
	}
}

func TestBalancedShardingBeatsLayerWiseOnVGG(t *testing.T) {
	mk := func(s Sharding) Config {
		cfg := costConfig(ASP, 16, 10)
		cfg.Cluster = cluster.Paper10G(16)
		cfg.Workload = costmodel.NewWorkload(costmodel.VGG16(), costmodel.TitanV(), 96)
		cfg.Sharding = s
		return cfg
	}
	lw, err := Run(context.Background(), mk(ShardLayerWise))
	if err != nil {
		t.Fatal(err)
	}
	bal, err := Run(context.Background(), mk(ShardBalanced))
	if err != nil {
		t.Fatal(err)
	}
	if bal.VirtualSec >= lw.VirtualSec {
		t.Fatalf("balanced (%.2f) not faster than layer-wise (%.2f) on VGG-16", bal.VirtualSec, lw.VirtualSec)
	}
}

func TestPSBottleneckASPSlowOn10G(t *testing.T) {
	// The paper's headline: on 10 Gbps, ASP scales worse than BSP with
	// local aggregation because everything funnels through the PS.
	mk := func(algo Algo) Config {
		cfg := costConfig(algo, 16, 10)
		cfg.Cluster = cluster.Paper10G(16)
		cfg.Sharding = ShardLayerWise
		if algo == BSP {
			cfg.LocalAgg = true
		}
		return cfg
	}
	asp, err := Run(context.Background(), mk(ASP))
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := Run(context.Background(), mk(BSP))
	if err != nil {
		t.Fatal(err)
	}
	if asp.Throughput >= bsp.Throughput {
		t.Fatalf("expected PS bottleneck: ASP %.0f img/s vs BSP %.0f img/s on 10G", asp.Throughput, bsp.Throughput)
	}
}

func TestBandwidthHelpsASPMoreThanBSP(t *testing.T) {
	run := func(algo Algo, c cluster.Config) float64 {
		cfg := costConfig(algo, 16, 10)
		cfg.Cluster = c
		cfg.Sharding = ShardLayerWise
		if algo == BSP {
			cfg.LocalAgg = true
		}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	aspGain := run(ASP, cluster.Paper56G(16)) / run(ASP, cluster.Paper10G(16))
	bspGain := run(BSP, cluster.Paper56G(16)) / run(BSP, cluster.Paper10G(16))
	if aspGain <= bspGain {
		t.Fatalf("56G gain: ASP %.2fx vs BSP %.2fx — paper expects ASP to benefit more", aspGain, bspGain)
	}
}

func TestBreakdownRecorded(t *testing.T) {
	cfg := costConfig(BSP, 8, 10)
	cfg.LocalAgg = true
	cfg.Sharding = ShardLayerWise
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Metrics.MeanBreakdown()
	if b.Total() <= 0 {
		t.Fatal("empty breakdown")
	}
	if b[0] <= 0 { // compute
		t.Fatal("no compute time recorded")
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []Config{
		{Algo: "nope", Cluster: cluster.Paper56G(4), Iters: 1,
			Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128)},
		func() Config { c := costConfig(EASGD, 4, 5); c.Tau = 0; return c }(),
		func() Config { c := costConfig(GoSGD, 4, 5); c.GossipP = 0; return c }(),
		func() Config { c := costConfig(GoSGD, 1, 5); c.GossipP = 0.5; return c }(),
		func() Config { c := costConfig(ADPSGD, 4, 5); c.Sharding = ShardLayerWise; return c }(),
		func() Config { c := costConfig(EASGD, 4, 5); c.WaitFreeBP = true; return c }(),
		func() Config {
			c := costConfig(EASGD, 4, 5)
			d := grad.DefaultDGC(0.9, 0)
			c.DGC = &d
			return c
		}(),
		func() Config { c := costConfig(ASP, 4, 5); c.LocalAgg = true; return c }(),
		func() Config { c := costConfig(BSP, 4, 0); return c }(),
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestGossipLowPReducesTraffic(t *testing.T) {
	high := costConfig(GoSGD, 8, 40)
	high.GossipP = 1
	rHigh, err := Run(context.Background(), high)
	if err != nil {
		t.Fatal(err)
	}
	low := costConfig(GoSGD, 8, 40)
	low.GossipP = 0.1
	rLow, err := Run(context.Background(), low)
	if err != nil {
		t.Fatal(err)
	}
	if rLow.Net.TotalBytes*4 >= rHigh.Net.TotalBytes {
		t.Fatalf("p=0.1 traffic %d not << p=1 traffic %d", rLow.Net.TotalBytes, rHigh.Net.TotalBytes)
	}
}

// baseLRSchedule builds a flat schedule at the given rate for extension
// tests that need to control aggressiveness directly.
func baseLRSchedule(lr float64) opt.Schedule { return opt.Schedule{Base: lr} }

// TestDeterminismAllAlgorithms runs every implemented algorithm (the
// paper's seven plus the three reviewed-but-not-selected extensions) twice
// in cost-only mode and requires bit-identical timing and traffic.
func TestDeterminismAllAlgorithms(t *testing.T) {
	all := append(Algos(), DPSGD, AdaComm, Hogwild)
	for _, algo := range all {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			mk := func() Config {
				cfg := costConfig(algo, 4, 12)
				if algo == AdaComm {
					cfg.Tau = 4
				}
				if algo == Hogwild {
					cfg.Cluster = cluster.Config{
						Machines: 1, WorkersPerMachine: 4,
						InterBytesPerSec: cluster.Gbps(10),
						IntraBytesPerSec: cluster.Gbps(128),
						LatencySec:       1e-6,
					}
				}
				return cfg
			}
			r1, err := Run(context.Background(), mk())
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(context.Background(), mk())
			if err != nil {
				t.Fatal(err)
			}
			if r1.VirtualSec != r2.VirtualSec || r1.Net.TotalBytes != r2.Net.TotalBytes ||
				r1.Net.TotalMsgs != r2.Net.TotalMsgs {
				t.Fatalf("nondeterministic: %v/%d/%d vs %v/%d/%d",
					r1.VirtualSec, r1.Net.TotalBytes, r1.Net.TotalMsgs,
					r2.VirtualSec, r2.Net.TotalBytes, r2.Net.TotalMsgs)
			}
		})
	}
}
