package core

import (
	"fmt"
	"sort"

	"disttrain/internal/comm"
	"disttrain/internal/des"
	"disttrain/internal/metrics"
	"disttrain/internal/simnet"
)

// runBSP implements Bulk Synchronous Parallel training with parameter
// servers (Section III-A): every iteration, all workers' gradients are
// aggregated at the PS shards, the global parameters are updated once with
// the averaged gradient, and the new parameters are broadcast back. With
// LocalAgg enabled, workers on one machine first sum their gradients at a
// machine leader so only one gradient per machine crosses the network — the
// paper's local aggregation optimization that divides communication by l
// (GPUs per machine).
func runBSP(x *exp) {
	cfg := x.cfg
	W := cfg.Workers

	// Identify machine leaders (lowest worker index per machine).
	leaderOf := make([]int, W) // worker -> its machine leader
	var leaders []int          // distinct leaders in order
	for w := 0; w < W; w++ {
		m := cfg.Cluster.MachineOfWorker(w)
		l := m * cfg.Cluster.WorkersPerMachine
		leaderOf[w] = l
		if w == l {
			leaders = append(leaders, l)
		}
	}
	senders := W
	if cfg.LocalAgg {
		senders = len(leaders)
	}

	// Elastic fault mode re-derives each round's sender count from the
	// crash schedule (every process evaluates the same pure membership
	// function) and gives up on senders whose messages were lost to drop or
	// partition faults after the barrier timeout. Faithful mode keeps the
	// full-membership blocking barrier, reproducing BSP's throughput
	// collapse when a worker dies.
	elastic := x.inj != nil && cfg.Elastic

	// Shard processes: one synchronous aggregation round per iteration.
	for s := range x.assign {
		s := s
		x.eng.Spawn(fmt.Sprintf("bsp-ps%d", s), func(p *des.Proc) {
			inbox := x.psInbox(s)
			for it := 0; it < cfg.Iters; it++ {
				expect := senders
				scale := 1 / float32(W)
				if elastic && !cfg.LocalAgg {
					expect = x.aliveCount(it + 1)
					if expect == 0 {
						continue // nobody runs this round
					}
					scale = 1 / float32(expect)
				}
				var agg []float32
				if x.global.MathOn() {
					agg = make([]float32, x.vecLen)
				}
				recipients := make([]int, 0, expect)
				msgs := make([]simnet.Msg, 0, expect)
				lr := cfg.LR.At(it)
				for i := 0; i < expect; i++ {
					var m simnet.Msg
					if elastic {
						var ok bool
						if m, ok = inbox.RecvTimeout(p, cfg.BarrierTimeoutSec); !ok {
							x.col.Faults.Timeouts++
							break // proceed with whoever arrived
						}
					} else {
						m = inbox.Recv(p)
					}
					psAggSleep(p, m.Bytes)
					msgs = append(msgs, m)
					recipients = append(recipients, m.From)
				}
				// Reduction-order contract, shared with the live runtime:
				// gradients are summed in ascending sender rank, not arrival
				// order. Float addition is order-sensitive, so pinning the
				// order is what lets a wall-clock TCP run reproduce the
				// simulator's parameters bit for bit. Replies below still go
				// out in arrival order, so virtual timing is unchanged.
				sort.Slice(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
				for _, m := range msgs {
					switch m.Kind {
					case kindSparseGrad:
						// DGC: plain sparse step per message; linearity
						// makes scale-per-message equal to one
						// aggregated step.
						x.global.ApplySparse(m.SparseIdx, m.Vec, scale, lr)
					case kindGrad:
						if agg != nil && m.Vec != nil {
							addRanges(agg, m.Vec, x.assign[s])
						}
					default:
						panic(fmt.Sprintf("bsp shard: unexpected kind %d", m.Kind))
					}
				}
				if cfg.DGC == nil {
					x.global.ApplyGrad(x.assign[s], agg, scale, lr)
				}
				for _, node := range recipients {
					x.net.Send(x.snapshotMsg(s, node))
				}
			}
		})
	}

	// Worker processes.
	for w := 0; w < W; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("bsp-worker%d", w), func(p *des.Proc) {
			isLeader := leaderOf[w] == w
			group := x.machineGroup(w)
			selfInGroup := w - leaderOf[w]
			machine := cfg.Cluster.MachineOfWorker(w)
			inbox := x.inbox(w)
			bd := &x.col.Workers[w].Breakdown

			for it := 1; it <= cfg.Iters; it++ {
				nit, ok := x.barrierGate(p, w, it)
				if !ok {
					break
				}
				it = nit
				// Wait-free BP only helps when the worker's own backward
				// pass feeds the PS sends directly; with local aggregation
				// the gather barrier sits in between, so the backward must
				// simply complete first.
				overlap := cfg.WaitFreeBP && (!cfg.LocalAgg || len(group) == 1)
				gf, j := x.computePhase(p, w, overlap)
				grads := gf.get()

				if cfg.LocalAgg && len(group) > 1 {
					if isLeader {
						// Gather member gradients into a private aggregate.
						var aggVec []float32
						if grads != nil {
							aggVec = append([]float32(nil), grads...)
						}
						t0 := p.Now()
						_, wire := collective(p, comm.CollectiveOpts{
							Op: comm.OpGather, Net: x.net, Nodes: group, Self: selfInGroup,
							Vec: aggVec, Bytes: x.fullBytes(), Kind: kindLocalGather})
						bd.Add(metrics.Network, wire)
						bd.Add(metrics.LocalAgg, p.Now()-t0-wire)
						x.gatherDoneAt[machine] = p.Now()
						grads = aggVec
					} else {
						// Member: hand the gradient to the leader and wait
						// for the post-global broadcast below.
						var payload []float32
						if grads != nil {
							payload = append([]float32(nil), grads...)
						}
						collective(p, comm.CollectiveOpts{
							Op: comm.OpGather, Net: x.net, Nodes: group, Self: selfInGroup,
							Vec: payload, Bytes: x.fullBytes(), Kind: kindLocalGather})
					}
				}

				if !cfg.LocalAgg || isLeader {
					x.sendGrads(p, w, it, grads, true, j, overlap)

					// Await all shard replies.
					t0 := p.Now()
					var wire des.Time
					fresh := make([]float32, 0)
					if x.reps[w].mathOn() {
						fresh = x.reps[w].params()
					}
					for recv := 0; recv < len(x.assign); recv++ {
						var m simnet.Msg
						if elastic {
							var okr bool
							if m, okr = inbox.RecvTimeout(p, cfg.BarrierTimeoutSec); !okr {
								x.col.Faults.Timeouts++
								break // reply lost; keep the stale shard params
							}
						} else {
							m = inbox.Recv(p)
						}
						if m.Kind != kindParams {
							panic(fmt.Sprintf("bsp worker: unexpected kind %d", m.Kind))
						}
						wire += m.WireSec
						if m.Vec != nil {
							for _, r := range x.assign[m.Seg] {
								copy(fresh[r.Off:r.Off+r.Len], m.Vec[r.Off:r.Off+r.Len])
							}
						}
					}
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-wire)
					if x.reps[w].mathOn() {
						x.reps[w].setParams(fresh)
					}
					if cfg.LocalAgg && len(group) > 1 {
						// Relay the fresh parameters to machine members.
						var payload []float32
						if len(fresh) > 0 {
							payload = fresh
						}
						collective(p, comm.CollectiveOpts{
							Op: comm.OpBroadcast, Net: x.net, Nodes: group, Self: selfInGroup,
							Vec: payload, Bytes: x.fullBytes(), Kind: kindLocalBcast})
					}
				} else {
					// Member: block for the leader's broadcast.
					t0 := p.Now()
					m := inbox.Recv(p)
					if m.Kind != kindLocalBcast {
						panic(fmt.Sprintf("bsp member: unexpected kind %d", m.Kind))
					}
					bd.Add(metrics.Network, m.WireSec)
					// Split the wait: until the leader finished gathering it
					// was local aggregation; the rest was the global round.
					localWait := x.gatherDoneAt[machine] - t0
					if localWait < 0 {
						localWait = 0
					}
					if rest := p.Now() - t0 - m.WireSec; rest > 0 {
						if localWait > rest {
							localWait = rest
						}
						bd.Add(metrics.LocalAgg, localWait)
						bd.Add(metrics.GlobalAgg, rest-localWait)
					}
					x.reps[w].setParams(m.Vec)
				}
				x.iterDone(w, it)
			}
			x.finish(w)
		})
	}
}
