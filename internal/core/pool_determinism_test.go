package core

import (
	"bytes"
	"context"
	"testing"

	"disttrain/internal/fault"
)

// poolSummary runs the config at the given compute-pool size and returns the
// exported summary JSON.
func poolSummary(t *testing.T, cfg Config, pool int) []byte {
	t.Helper()
	cfg.PoolSize = pool
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("pool %d: %v", pool, err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPoolSizeBitIdentical is the tentpole's acceptance test: for every one
// of the seven algorithms, a fixed-seed real-math experiment must export a
// byte-identical summary whether the replicas' forward/backward passes run
// inline (pool 0) or overlapped on 1, 4 or 8 real workers. The simulation
// may only observe *that* a pass completed at its fixed join point, never
// *when* it really ran.
func TestPoolSizeBitIdentical(t *testing.T) {
	for _, algo := range Algos() {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			cfg := realConfig(algo, 4, 40, 5)
			want := poolSummary(t, cfg, 0)
			for _, pool := range []int{1, 4, 8} {
				if got := poolSummary(t, cfg, pool); !bytes.Equal(want, got) {
					t.Fatalf("%s: summary differs between pool 0 and pool %d:\npool 0: %s\npool %d: %s",
						algo, pool, want, pool, got)
				}
			}
		})
	}
}

// TestPoolSizeBitIdenticalWithOptimizations covers the overlap-heavy paths:
// wait-free BP defers the gradient join past extra virtual sleeps (BSP/ASP
// send paths, AR-SGD's split reduce), and DGC consumes the joined gradient
// inside the compressor.
func TestPoolSizeBitIdenticalWithOptimizations(t *testing.T) {
	mk := func(algo Algo) Config {
		cfg := realConfig(algo, 4, 30, 9)
		cfg.WaitFreeBP = true
		cfg.Sharding = ShardBalanced
		if algo == ARSGD {
			cfg.Sharding = ShardNone
		}
		return cfg
	}
	for _, algo := range []Algo{BSP, ASP, ARSGD} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			cfg := mk(algo)
			want := poolSummary(t, cfg, 0)
			for _, pool := range []int{1, 8} {
				if got := poolSummary(t, cfg, pool); !bytes.Equal(want, got) {
					t.Fatalf("%s+wfbp: summary differs between pool 0 and pool %d", algo, pool)
				}
			}
		})
	}
}

// TestPoolSizeBitIdenticalUnderFaults checks the fault-injection interplay:
// crash and slowdown faults perturb the event schedule (restart sleeps,
// stretched compute windows, timeout backstops) while futures are in flight,
// and the realized schedule and exported summary must still be independent
// of the pool size.
func TestPoolSizeBitIdenticalUnderFaults(t *testing.T) {
	for _, algo := range []Algo{ASP, ADPSGD, GoSGD} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			cfg := realConfig(algo, 4, 40, 13)
			mean := cfg.Workload.MeanIterSec()
			cfg.Faults = &fault.Schedule{Events: []fault.Event{
				{Kind: fault.Crash, AtIter: 8, Worker: 1, Restart: 2 * mean},
				{Kind: fault.Slow, At: mean, Worker: 2, Factor: 3, Duration: 10 * mean},
			}}
			want := poolSummary(t, cfg, 1)
			if got := poolSummary(t, cfg, 8); !bytes.Equal(want, got) {
				t.Fatalf("%s under faults: summary differs between pool 1 and pool 8:\npool 1: %s\npool 8: %s",
					algo, want, got)
			}
		})
	}
}
