package core

import (
	"disttrain/internal/data"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
	"disttrain/internal/sched"
	"disttrain/internal/tensor"
)

// replica is one worker's local training state. In real mode it wraps an
// actual model, data shard and optimizer; in cost-only mode every method is
// a cheap no-op so the algorithms can run unchanged.
type replica struct {
	id int

	// real-mode state (nil in cost-only mode)
	model   *nn.Model
	sampler *data.Sampler
	train   *data.Dataset
	localO  *opt.SGD
	augment *data.Augment
	augRNG  *rng.RNG

	xbuf  *tensor.Tensor
	ybuf  []int
	grads []float32
	// arena recycles the model's layer scratch buffers; flat is a reusable
	// parameter staging vector for round-trip updates (localStep, merges),
	// so steady-state steps allocate ~nothing.
	arena *tensor.Arena
	flat  []float32

	// lossEWMA tracks recent training loss for traces.
	lossEWMA float64
	lossInit bool

	iter int

	// pending is the in-flight forward/backward pass submitted to the
	// compute pool (nil when none). The pure numeric work runs on a pool
	// goroutine while the owning simulated process sleeps out its virtual
	// compute time; takeGrads joins it at the fixed event-trace point where
	// the gradient is first consumed. Every buffer the closure touches
	// (model, sampler, arena, RNG streams, grads) is owned by this replica,
	// so futures of different replicas share nothing.
	pending *sched.Future[computeOut]
}

// computeOut is what one offloaded forward/backward pass produces.
type computeOut struct {
	grads []float32
	loss  float64
}

// newRealReplica builds worker w's replica: model initialized from the
// shared init stream (all replicas start identical), its own data shard and
// batch sampler.
func newRealReplica(w int, cfg *Config, initStream *rng.RNG, shardStream *rng.RNG) *replica {
	r := &replica{id: w}
	r.model = cfg.Real.Factory(initStream)
	r.train = cfg.Real.Train
	shard := data.ShardIndices(cfg.Real.Train.N(), cfg.Workers, w)
	r.sampler = data.NewSampler(shard, cfg.Real.Batch, shardStream)
	r.localO = opt.NewSGD(r.model.NumParams(), cfg.Momentum, cfg.WeightDecay)
	r.grads = make([]float32, r.model.NumParams())
	r.arena = tensor.NewArena()
	r.model.SetArena(r.arena)
	r.flat = make([]float32, r.model.NumParams())
	if cfg.Real.Augment != nil {
		r.augment = cfg.Real.Augment
		r.augRNG = shardStream.Split(0xa06)
	}
	return r
}

// newCostReplica builds a math-free replica.
func newCostReplica(w int) *replica { return &replica{id: w} }

// mathOn reports whether this replica does real parameter math.
func (r *replica) mathOn() bool { return r.model != nil }

// size returns the flat parameter count (0 in cost-only mode).
func (r *replica) size() int {
	if r.model == nil {
		return 0
	}
	return r.model.NumParams()
}

// computeGrad runs one forward/backward pass on the next mini-batch and
// returns the replica's gradient buffer (valid until the next call), or nil
// in cost-only mode. The replica's iteration counter advances either way.
// This is the synchronous path (Hogwild's shared-model workers, which must
// not run concurrently with each other's updates); the simulated-cluster
// algorithms use beginCompute/takeGrads instead.
func (r *replica) computeGrad() []float32 {
	r.iter++
	if r.model == nil {
		return nil
	}
	out := r.gradPass()
	r.foldLoss(out.loss)
	return out.grads
}

// gradPass is the pure numeric work of one iteration: draw the next
// mini-batch, forward, backward, flatten into r.grads. It touches only
// replica-owned state, which is what makes it safe to run on a pool
// goroutine while the engine thread keeps simulating.
func (r *replica) gradPass() computeOut {
	idx := r.sampler.Next()
	r.xbuf, r.ybuf = r.train.Gather(idx, r.xbuf, r.ybuf)
	if r.augment != nil {
		r.augment.Apply(r.xbuf, r.augRNG)
	}
	r.model.ZeroGrads()
	loss, _ := r.model.Loss(r.xbuf, r.ybuf)
	return computeOut{grads: r.model.FlatGrads(r.grads), loss: loss}
}

// foldLoss folds one batch loss into the trace EWMA.
func (r *replica) foldLoss(loss float64) {
	if !r.lossInit {
		r.lossEWMA, r.lossInit = loss, true
	} else {
		r.lossEWMA = 0.9*r.lossEWMA + 0.1*loss
	}
}

// beginCompute submits the iteration's forward/backward pass to the pool
// (inline on a nil pool). No-op in cost-only mode. The caller must consume
// the result with takeGrads before submitting the next pass.
func (r *replica) beginCompute(pool *sched.Pool) {
	if r.model == nil {
		return
	}
	if r.pending != nil {
		panic("core: replica compute already in flight")
	}
	r.pending = sched.Submit(pool, r.gradPass)
}

// takeGrads joins the in-flight pass, folds its loss into the EWMA, and
// returns the gradient buffer (nil in cost-only mode). Its call site fixes
// the join point in the event trace, so results cannot depend on when the
// pool actually ran the work.
func (r *replica) takeGrads() []float32 {
	if r.pending == nil {
		return nil
	}
	out := r.pending.Wait()
	r.pending = nil
	r.foldLoss(out.loss)
	return out.grads
}

// settle blocks until any in-flight pass has finished, without consuming
// it. Every parameter-writing method calls it first: in AD-PSGD a worker's
// communication process may average peer parameters into the model while
// the compute process's pass is still in flight, and the pass must read the
// parameters as of its fixed submission point — not a racing mixture.
// Wait is idempotent, so the owning process's later takeGrads still works.
func (r *replica) settle() {
	if r.pending != nil {
		r.pending.Wait()
	}
}

// localStep applies one local SGD step with gradient g (no-op on nil).
func (r *replica) localStep(g []float32, lr float32) {
	if r.model == nil || g == nil {
		return
	}
	r.settle()
	flat := r.model.FlatParams(r.flat)
	r.localO.Step(flat, g, lr)
	r.model.SetFlatParams(flat)
}

// params returns a fresh copy of the flat parameters (nil in cost-only).
func (r *replica) params() []float32 {
	if r.model == nil {
		return nil
	}
	return r.model.FlatParams(nil)
}

// setParams overwrites the full parameter vector (no-op on nil).
func (r *replica) setParams(src []float32) {
	if r.model == nil || src == nil {
		return
	}
	r.settle()
	r.model.SetFlatParams(src)
}

// setRanges overwrites only the given flat ranges from src (full-length).
func (r *replica) setRanges(ranges []rangeT, src []float32) {
	if r.model == nil || src == nil {
		return
	}
	r.settle()
	flat := r.model.FlatParams(r.flat)
	for _, rg := range ranges {
		copy(flat[rg.Off:rg.Off+rg.Len], src[rg.Off:rg.Off+rg.Len])
	}
	r.model.SetFlatParams(flat)
}

// average sets params ← (params + other)/2, the AD-PSGD/gossip merge.
func (r *replica) average(other []float32) {
	if r.model == nil || other == nil {
		return
	}
	r.settle()
	flat := r.model.FlatParams(r.flat)
	for i := range flat {
		flat[i] = 0.5 * (flat[i] + other[i])
	}
	r.model.SetFlatParams(flat)
}

// weightedMerge performs GoSGD's merge: x ← (w·x + ws·xs)/(w+ws), returning
// the new local weight w+ws.
func (r *replica) weightedMerge(own float64, xs []float32, ws float64) float64 {
	if r.model == nil || xs == nil {
		return own + ws
	}
	r.settle()
	flat := r.model.FlatParams(r.flat)
	a := float32(own / (own + ws))
	b := float32(ws / (own + ws))
	for i := range flat {
		flat[i] = a*flat[i] + b*xs[i]
	}
	r.model.SetFlatParams(flat)
	return own + ws
}
