package core

import (
	"context"
	"testing"

	"disttrain/internal/cluster"
)

func hogwildConfig(workers, iters int, seed uint64) Config {
	cfg := realConfig(Hogwild, workers, iters, seed)
	cfg.Cluster = cluster.Config{
		Machines:          1,
		WorkersPerMachine: workers,
		InterBytesPerSec:  cluster.Gbps(10),
		IntraBytesPerSec:  cluster.Gbps(128),
		LatencySec:        1e-6,
	}
	return cfg
}

func TestHogwildLearns(t *testing.T) {
	res, err := Run(context.Background(), hogwildConfig(4, 150, 51))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTestAcc < 0.9 {
		t.Fatalf("hogwild acc %.3f", res.FinalTestAcc)
	}
}

func TestHogwildNoNetworkTraffic(t *testing.T) {
	res, err := Run(context.Background(), hogwildConfig(4, 30, 52))
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.TotalBytes != 0 {
		t.Fatalf("hogwild sent %d bytes — shared memory uses none", res.Net.TotalBytes)
	}
}

func TestHogwildSharedReplica(t *testing.T) {
	// All workers update one vector, so the replica spread is exactly zero.
	res, err := Run(context.Background(), hogwildConfig(4, 50, 53))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicaSpreadL2 != 0 {
		t.Fatalf("shared-memory replicas diverged: %v", res.ReplicaSpreadL2)
	}
}

func TestHogwildRequiresSingleMachine(t *testing.T) {
	cfg := realConfig(Hogwild, 8, 10, 54) // Paper56G(8) = 2 machines
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("hogwild accepted a multi-machine cluster")
	}
}

func TestHogwildLinearThroughput(t *testing.T) {
	// With zero communication, throughput scales ~linearly with workers.
	t1, err := Run(context.Background(), hogwildConfig(1, 30, 55))
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Run(context.Background(), hogwildConfig(4, 30, 55))
	if err != nil {
		t.Fatal(err)
	}
	ratio := t4.Throughput / t1.Throughput
	if ratio < 3.7 || ratio > 4.3 {
		t.Fatalf("4-worker hogwild speedup %.2f, want ~4", ratio)
	}
}
