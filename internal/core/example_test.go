package core_test

import (
	"context"
	"fmt"

	"disttrain/internal/cluster"
	"disttrain/internal/core"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

// ExampleRun shows a cost-only scalability measurement: AD-PSGD on 8
// simulated workers training ResNet-50-sized gradients over 56 Gbps.
func ExampleRun() {
	cfg := core.Config{
		Algo:     core.ADPSGD,
		Cluster:  cluster.Paper56G(8),
		Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
		Iters:    10,
		Seed:     1,
		Momentum: 0.9,
		LR:       opt.Schedule{Base: 0.1},
	}
	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		panic(err)
	}
	base := float64(cfg.Workload.Batch) / cfg.Workload.MeanIterSec()
	fmt.Printf("workers: %d\n", res.Config.Workers)
	fmt.Printf("speedup: %.2fx\n", res.Throughput/base)
	fmt.Printf("traffic: %.1f GB\n", float64(res.Net.TotalBytes)/1e9)
	// Output:
	// workers: 8
	// speedup: 7.89x
	// traffic: 8.2 GB
}

// ExampleRun_realMode shows an accuracy experiment: real gradient math on a
// synthetic task, BSP across 4 workers.
func ExampleRun_realMode() {
	r := rng.New(7)
	ds := data.GenGauss(r, 400, 3, 0.4)
	train, test := ds.Split(r.Split(1), 100)
	cfg := core.Config{
		Algo:     core.BSP,
		Cluster:  cluster.Paper56G(4),
		Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
		Iters:    100,
		Seed:     7,
		Momentum: 0.9,
		LR:       opt.NewPaperSchedule(0.05, 4, 5, []int{50, 80}),
		Real: &core.RealConfig{
			Factory: func(rr *rng.RNG) *nn.Model { return nn.NewMLP(rr, 2, 16, 3) },
			Train:   train,
			Test:    test,
			Batch:   16,
		},
	}
	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("learned: %v\n", res.FinalTestAcc > 0.9)
	fmt.Printf("replicas identical: %v\n", res.ReplicaSpreadL2 == 0)
	// Output:
	// learned: true
	// replicas identical: true
}
