package core

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/metrics"
)

// Hogwild is lock-free shared-memory parallel SGD (Recht et al., NIPS'11 —
// the paper's reference [24], reviewed among its ten candidate algorithms
// but not selected because it is a single-machine scheme). All workers
// update ONE shared parameter vector with no synchronization at all: a
// worker reads the parameters, computes a gradient while other workers keep
// updating, and applies its (now stale) gradient directly. Included as an
// extension: it isolates pure update staleness from every network effect,
// since no messages cross any link.
const Hogwild Algo = "hogwild"

// runHogwild shares replica 0's model and optimizer across all workers.
// Staleness is modeled faithfully: the gradient is computed from the
// parameters as of the *start* of the compute phase and applied at its end,
// after other workers' interleaved updates.
func runHogwild(x *exp) {
	cfg := x.cfg

	// Alias every replica onto worker 0's model/optimizer (real mode).
	if x.reps[0].mathOn() {
		for w := 1; w < cfg.Workers; w++ {
			x.reps[w].model = x.reps[0].model
			x.reps[w].localO = x.reps[0].localO
		}
	}

	for w := 0; w < cfg.Workers; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("hogwild-worker%d", w), func(p *des.Proc) {
			wl := cfg.Workload
			for it := 1; it <= cfg.Iters; it++ {
				// Fault schedules are rejected for Hogwild in Validate; the
				// gate only serves context cancellation here.
				nit, ok := x.gate(p, w, it)
				if !ok {
					break
				}
				it = nit
				// Gradient from the shared parameters as they are NOW...
				grads := x.reps[w].computeGrad()
				var gcopy []float32
				if grads != nil {
					gcopy = append([]float32(nil), grads...)
				}
				// ...then the compute time elapses while others update...
				start := p.Now()
				p.Sleep(wl.MeanIterSec() * wl.SampleMult(x.jitterRNG[w]))
				x.col.Workers[w].Breakdown.Add(metrics.Compute, p.Now()-start)
				x.noteIterSpread()
				// ...and the stale gradient lands on the shared vector.
				x.reps[w].localStep(gcopy, cfg.LR.At(it-1))
				x.iterDone(w, it)
			}
			x.finish(w)
		})
	}
}
