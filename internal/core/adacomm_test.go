package core

import (
	"context"
	"testing"
)

func adaCommConfig(workers, iters int, seed uint64) Config {
	cfg := realConfig(AdaComm, workers, iters, seed)
	cfg.Tau = 8
	return cfg
}

func TestAdaCommRunsCostOnly(t *testing.T) {
	cfg := costConfig(EASGD, 8, 20)
	cfg.Algo = AdaComm
	cfg.Tau = 8
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalIters() != 160 {
		t.Fatalf("iters = %d", res.Metrics.TotalIters())
	}
}

func TestAdaCommLearns(t *testing.T) {
	res, err := Run(context.Background(), adaCommConfig(4, 150, 85))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTestAcc < 0.8 {
		t.Fatalf("adacomm acc %.3f", res.FinalTestAcc)
	}
}

func TestAdaCommTrafficBetweenExtremes(t *testing.T) {
	// Adaptive τ must use more traffic than fixed τ=τ0 (it tightens late)
	// and less than τ=1 (it is loose early).
	ada := costConfig(EASGD, 8, 40)
	ada.Algo = AdaComm
	ada.Tau = 8
	rAda, err := Run(context.Background(), ada)
	if err != nil {
		t.Fatal(err)
	}
	loose := costConfig(EASGD, 8, 40)
	loose.Tau = 8
	rLoose, err := Run(context.Background(), loose)
	if err != nil {
		t.Fatal(err)
	}
	tight := costConfig(EASGD, 8, 40)
	tight.Tau = 1
	rTight, err := Run(context.Background(), tight)
	if err != nil {
		t.Fatal(err)
	}
	if !(rLoose.Net.TotalBytes < rAda.Net.TotalBytes && rAda.Net.TotalBytes < rTight.Net.TotalBytes) {
		t.Fatalf("traffic ordering wrong: loose %d, ada %d, tight %d",
			rLoose.Net.TotalBytes, rAda.Net.TotalBytes, rTight.Net.TotalBytes)
	}
}

func TestAdaCommBeatsFixedTauAccuracy(t *testing.T) {
	// The point of adapting: tighter late-stage coupling should match or
	// beat the fixed large period at equal τ0.
	ada, err := Run(context.Background(), adaCommConfig(8, 150, 86))
	if err != nil {
		t.Fatal(err)
	}
	fixed := realConfig(EASGD, 8, 150, 86)
	fixed.Tau = 8
	rf, err := Run(context.Background(), fixed)
	if err != nil {
		t.Fatal(err)
	}
	if ada.FinalTestAcc < rf.FinalTestAcc-0.03 {
		t.Fatalf("adacomm %.4f clearly below fixed EASGD %.4f", ada.FinalTestAcc, rf.FinalTestAcc)
	}
}

func TestAdaCommValidation(t *testing.T) {
	cfg := costConfig(EASGD, 4, 5)
	cfg.Algo = AdaComm
	cfg.Tau = 0
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("tau 0 accepted")
	}
}
