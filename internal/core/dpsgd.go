package core

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/metrics"
	"disttrain/internal/simnet"
)

// DPSGD is synchronous Decentralized Parallel SGD (Lian et al., NeurIPS'17
// — reference [19] of the paper, reviewed there but not among the seven
// selected algorithms; included here as an extension). Workers sit on a
// ring; every iteration each worker exchanges parameters with both ring
// neighbors, mixes x ← (x_self + x_left + x_right)/3, and applies its local
// gradient. Synchronous like AR-SGD, but each round moves only 2M per
// worker instead of a full AllReduce, at the cost of slower information
// propagation (O(N) rounds around the ring).
const DPSGD Algo = "dpsgd"

// runDPSGD implements the ring-mixing decentralized SGD round. Workers are
// in lockstep with both neighbors; a neighbor can run at most one iteration
// ahead, so early messages are stashed by clock.
func runDPSGD(x *exp) {
	cfg := x.cfg
	W := cfg.Workers

	for w := 0; w < W; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("dpsgd-worker%d", w), func(p *des.Proc) {
			inbox := x.inbox(w)
			bd := &x.col.Workers[w].Breakdown
			left := (w - 1 + W) % W
			right := (w + 1) % W
			var stash []simnet.Msg
			for it := 1; it <= cfg.Iters; it++ {
				// Fault schedules are rejected for DPSGD in Validate; the
				// gate only serves context cancellation here.
				nit, ok := x.gate(p, w, it)
				if !ok {
					break
				}
				it = nit
				// The gradient (of the pre-mix parameters, as DPSGD
				// specifies) is not needed until after the neighbor mix;
				// the join rides inside localStep's settle at the end.
				gf, _ := x.computePhase(p, w, false)

				if W > 1 {
					var payload []float32
					if x.reps[w].mathOn() {
						payload = x.reps[w].params()
					}
					for _, nb := range []int{left, right} {
						var vec []float32
						if payload != nil {
							vec = append([]float32(nil), payload...)
						}
						x.net.Send(simnet.Msg{From: x.workerNode[w], To: x.workerNode[nb],
							Kind: kindExchangeReq, Clock: it, Bytes: x.fullBytes(), Vec: vec})
					}

					// Collect both neighbors' round-it parameters; a faster
					// neighbor's it+1 message is stashed for the next round.
					need := 2
					if W == 2 {
						// left == right: the single neighbor sends twice.
						need = 2
					}
					var mix [][]float32
					t0 := p.Now()
					var wire des.Time
					take := func(m simnet.Msg) bool {
						if m.Kind != kindExchangeReq {
							panic(fmt.Sprintf("dpsgd worker: unexpected kind %d", m.Kind))
						}
						if m.Clock != it {
							return false
						}
						wire += m.WireSec
						mix = append(mix, m.Vec)
						return true
					}
					var keep []simnet.Msg
					for _, m := range stash {
						if len(mix) < need && take(m) {
							continue
						}
						keep = append(keep, m)
					}
					stash = keep
					for len(mix) < need {
						m := inbox.Recv(p)
						if !take(m) {
							stash = append(stash, m)
						}
					}
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-wire)

					// x ← mean(self, neighbors)
					if x.reps[w].mathOn() {
						flat := x.reps[w].params()
						inv := 1 / float32(len(mix)+1)
						for i := range flat {
							s := flat[i]
							for _, v := range mix {
								if v != nil {
									s += v[i]
								}
							}
							flat[i] = s * inv
						}
						x.reps[w].setParams(flat)
					}
				}

				x.reps[w].localStep(gf.get(), cfg.LR.At(it-1))
				x.iterDone(w, it)
			}
			x.finish(w)
		})
	}
}
