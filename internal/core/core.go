// Package core implements the paper's subject matter: seven distributed
// data-parallel training algorithms — BSP, ASP, SSP, EASGD (centralized)
// and AR-SGD, GoSGD, AD-PSGD (decentralized) — in one framework, together
// with the three optimizations the paper evaluates (parameter sharding,
// wait-free backpropagation, deep gradient compression).
//
// Every algorithm runs on the deterministic discrete-event simulator in two
// engine modes selected by Config.Real:
//
//   - Real mode: workers hold actual neural-network replicas and exchange
//     real gradients/parameters, so model accuracy and convergence are
//     measured, while the virtual clock advances according to the
//     paper-scale cost model (TITAN V + ResNet-50/VGG-16 sized messages).
//     This reproduces the accuracy experiments (Tables II-IV, Fig. 1).
//
//   - Cost-only mode (Real == nil): no parameter math at all; only message
//     sizes and compute times are simulated. This reproduces the
//     performance experiments (Figs. 2-4) at full 24-worker scale in
//     milliseconds of host time.
package core

import (
	"fmt"

	"disttrain/internal/cluster"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/fault"
	"disttrain/internal/grad"
	"disttrain/internal/metrics"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/simnet"
	"disttrain/internal/topo"
	"disttrain/internal/trace"
)

// Algo names a distributed training algorithm.
type Algo string

// The seven algorithms of the paper's Table I.
const (
	BSP    Algo = "bsp"
	ASP    Algo = "asp"
	SSP    Algo = "ssp"
	EASGD  Algo = "easgd"
	ARSGD  Algo = "arsgd"
	GoSGD  Algo = "gosgd"
	ADPSGD Algo = "adpsgd"
)

// Algos lists all seven in the paper's order.
func Algos() []Algo { return []Algo{BSP, ASP, SSP, EASGD, ARSGD, GoSGD, ADPSGD} }

// Centralized reports whether the algorithm uses parameter servers.
func (a Algo) Centralized() bool {
	switch a {
	case BSP, ASP, SSP, EASGD, AdaComm:
		return true
	}
	return false
}

// Synchronous reports whether the algorithm synchronizes all workers every
// iteration.
func (a Algo) Synchronous() bool { return a == BSP || a == ARSGD }

// SendsGradients reports whether workers transmit gradients (vs parameters)
// — the precondition for wait-free BP and DGC in the paper.
func (a Algo) SendsGradients() bool {
	switch a {
	case BSP, ASP, SSP, ARSGD:
		return true
	}
	return false
}

// Sharding selects the PS partitioning scheme.
type Sharding string

// Sharding schemes: none (single shard), the paper's default layer-wise
// scheme, and the balanced scheme its Section VI-C calls for.
const (
	ShardNone      Sharding = "none"
	ShardLayerWise Sharding = "layerwise"
	ShardBalanced  Sharding = "balanced"
)

// RealConfig enables real-math mode.
type RealConfig struct {
	// Factory builds each replica's model; all replicas are initialized
	// from the same RNG stream and therefore start identical.
	Factory nn.ModelFactory
	// Train and Test are the dataset splits. Train is sharded per worker.
	Train, Test *data.Dataset
	// Batch is the per-worker mini-batch size for the real math (the
	// timing batch lives in Workload.Batch).
	Batch int
	// EvalEvery evaluates the global model every this many worker-0
	// iterations (0 = only at the end).
	EvalEvery int
	// EvalMax caps how many test samples evaluation uses (0 = all).
	EvalMax int
	// Augment, when non-nil, randomly augments each training batch
	// (shifts/flips; evaluation data is never augmented).
	Augment *data.Augment
}

// Config fully describes one experiment.
type Config struct {
	Algo    Algo
	Cluster cluster.Config
	// Workers may be less than Cluster.Workers() to leave machines
	// partially idle; 0 means use all.
	Workers int
	// Workload drives virtual compute times and wire sizes (paper scale).
	Workload costmodel.Workload
	// Real enables real gradient math; nil = cost-only.
	Real *RealConfig
	// Iters is the number of training iterations per worker.
	Iters int
	// Seed makes the whole experiment reproducible.
	Seed uint64
	// PoolSize is the number of real OS threads (goroutines) used to run
	// replica forward/backward passes concurrently while their simulated
	// owners sleep out virtual compute time. 0 = inline serial execution
	// (the historical behavior). Results are bit-identical for every value:
	// the simulation only observes *that* a pass finished at its fixed join
	// point, never *when* it really ran.
	PoolSize int

	// Momentum and WeightDecay configure every SGD instance.
	Momentum    float32
	WeightDecay float32
	// LR is the learning-rate schedule (indexed by worker iteration).
	LR opt.Schedule

	// Staleness is SSP's threshold s.
	Staleness int
	// Tau is EASGD's communication period τ.
	Tau int
	// MovingRate is EASGD's elastic coefficient α; 0 = default 0.9/N.
	MovingRate float64
	// GossipP is GoSGD's per-iteration communication probability.
	GossipP float64

	// Shards is the number of PS shards; 0 = one per machine.
	Shards int
	// Sharding selects the partitioner (default ShardNone).
	Sharding Sharding
	// WaitFreeBP overlaps backward compute with gradient transfer.
	WaitFreeBP bool
	// DGC, when non-nil, enables deep gradient compression.
	DGC *grad.DGCConfig
	// Quantize8 enables 8-bit gradient quantization (an extension beyond
	// the paper's three optimizations). Layered on DGC it quantizes the
	// surviving sparse values; alone it quantizes the dense gradient.
	Quantize8 bool
	// QuantizeF16 enables half-precision (IEEE binary16) gradient
	// compression: 2× smaller transfers with per-element rounding instead
	// of Quantize8's shared scale. Mutually exclusive with Quantize8,
	// layerable on DGC like it.
	QuantizeF16 bool
	// LocalAgg enables BSP's intra-machine gradient aggregation.
	LocalAgg bool
	// TreeAllReduce makes AR-SGD use a binomial-tree reduce+broadcast
	// instead of the ring algorithm (extension) — faster for small models
	// on high-latency fabrics, slower for large ones.
	TreeAllReduce bool
	// Collective selects AR-SGD's AllReduce algorithm by name: "" or
	// "ring" (the default flat ring), "tree" (alias for TreeAllReduce),
	// "hierarchical" (machine-aware two-level), "butterfly" (recursive
	// halving/doubling), "torus" (2D ring-of-rings; needs a non-prime
	// worker count). All variants produce bit-identical parameters to the
	// ring; they differ only in simulated communication time.
	Collective string
	// Overlay restricts AD-PSGD/GoSGD partner selection to a sparse
	// seed-deterministic peer graph instead of uniform-over-all-ranks:
	// "" (dense), "kregular" (random k-regular), "smallworld" (ring plus
	// random chords).
	Overlay string
	// OverlayDegree is the target neighbor count per rank: the exact
	// degree for "kregular", the average degree for "smallworld" (ring
	// edges plus Workers·(degree−2)/2 chords). 0 = default 4.
	OverlayDegree int
	// StalenessDamping makes ASP's parameter server scale each gradient's
	// learning rate by 1/(1+staleness), where staleness is how many global
	// updates occurred since the worker pulled — the staleness-aware async
	// SGD mitigation from the literature (extension).
	StalenessDamping bool
	// Tracer, when non-nil, records a Chrome-trace timeline of the run
	// (compute spans per worker, message spans per machine); write it out
	// with Tracer.WriteJSON and open in chrome://tracing or Perfetto.
	Tracer *trace.Tracer
	// Progress, when non-nil, is called with every convergence sample the
	// run records (real mode only; the samples also accumulate in
	// Result.Metrics.Trace). Calls happen on the simulation goroutine in
	// deterministic order — the callback must not block on the run itself.
	// With RealConfig.EvalEvery = 1 this streams per-iteration metrics.
	Progress func(metrics.TracePoint)
	// Faults, when non-nil and non-empty, injects the scheduled faults
	// (crashes, slowdowns, link degradation, drops, partitions) into the
	// run. The whole schedule is seed-reproducible: identical Config +
	// schedule gives a bit-identical run. Not supported for the DPSGD,
	// AdaComm and Hogwild extensions, nor combined with LocalAgg when the
	// schedule contains crashes.
	Faults *fault.Schedule
	// Elastic makes membership-based barriers survive crashes: BSP shards
	// and AR-SGD rings exclude workers known dead for the round, and SSP's
	// staleness bound skips dead workers' frozen clocks. Without it the
	// synchronous algorithms stall at a dead worker's barrier — the
	// faithful behavior, and the paper-consistent contrast with the
	// decentralized algorithms, which route around death either way.
	Elastic bool
	// BarrierTimeoutSec bounds fault-mode receive waits (the backstop that
	// rides out dropped or partitioned messages); 0 = 5x the workload's
	// mean iteration time.
	BarrierTimeoutSec float64
	// ADPSGDNoBipartite disables AD-PSGD's bipartite partner graph
	// (ablation): workers initiate symmetric exchanges with arbitrary peers
	// and hold their reply until their own exchange completes — the naive
	// protocol whose wait-for cycles deadlock, motivating the paper's
	// bipartite design.
	ADPSGDNoBipartite bool
	// CaptureParams copies every replica's final parameter vector into
	// Result.WorkerParams (real mode only). The live runtime's bit-identity
	// tests compare these against a wall-clock TCP run's final parameters.
	CaptureParams bool
}

// topoCollective reports whether name is one of the topology-aware
// AllReduce variants (fixed-membership, simulator-only).
func topoCollective(name string) bool {
	switch name {
	case "hierarchical", "butterfly", "torus":
		return true
	}
	return false
}

// Validate normalizes defaults and rejects inconsistent configurations.
func (c *Config) Validate() error {
	if err := c.Cluster.Validate(); err != nil {
		return err
	}
	if c.Workers == 0 {
		c.Workers = c.Cluster.Workers()
	}
	if c.Workers < 1 || c.Workers > c.Cluster.Workers() {
		return fmt.Errorf("core: %d workers on a %d-slot cluster", c.Workers, c.Cluster.Workers())
	}
	if c.Iters <= 0 {
		return fmt.Errorf("core: Iters = %d", c.Iters)
	}
	if c.Workload.Profile == nil {
		return fmt.Errorf("core: missing workload profile")
	}
	if c.PoolSize < 0 {
		return fmt.Errorf("core: PoolSize = %d", c.PoolSize)
	}
	switch c.Algo {
	case BSP, ASP, ARSGD:
	case SSP:
		if c.Staleness < 0 {
			return fmt.Errorf("core: SSP staleness %d", c.Staleness)
		}
	case EASGD:
		if c.Tau <= 0 {
			return fmt.Errorf("core: EASGD tau %d", c.Tau)
		}
		if c.MovingRate == 0 {
			c.MovingRate = 0.9 / float64(c.Workers)
		}
		if c.MovingRate <= 0 || c.MovingRate > 1 {
			return fmt.Errorf("core: EASGD moving rate %v", c.MovingRate)
		}
	case GoSGD:
		if c.GossipP <= 0 || c.GossipP > 1 {
			return fmt.Errorf("core: GoSGD p = %v", c.GossipP)
		}
		if c.Workers < 2 {
			return fmt.Errorf("core: GoSGD needs ≥ 2 workers")
		}
	case ADPSGD:
		if c.Workers < 2 {
			return fmt.Errorf("core: AD-PSGD needs ≥ 2 workers")
		}
	case DPSGD:
	case AdaComm:
		if c.Tau <= 0 {
			return fmt.Errorf("core: AdaComm initial tau %d", c.Tau)
		}
		if c.MovingRate == 0 {
			c.MovingRate = 0.9 / float64(c.Workers)
		}
	case Hogwild:
		if c.Cluster.Machines != 1 {
			return fmt.Errorf("core: Hogwild is a shared-memory single-machine scheme (got %d machines)", c.Cluster.Machines)
		}
	default:
		return fmt.Errorf("core: unknown algorithm %q", c.Algo)
	}
	if c.Sharding == "" {
		c.Sharding = ShardNone
	}
	if c.Sharding != ShardNone && !c.Algo.Centralized() {
		return fmt.Errorf("core: sharding applies only to centralized algorithms")
	}
	if c.Shards == 0 {
		c.Shards = c.Cluster.Machines
	}
	if c.Sharding == ShardNone {
		c.Shards = 1
	}
	if c.WaitFreeBP && !c.Algo.SendsGradients() {
		return fmt.Errorf("core: wait-free BP applies only to gradient-sending algorithms (%s sends parameters)", c.Algo)
	}
	if c.DGC != nil {
		if !c.Algo.SendsGradients() {
			return fmt.Errorf("core: DGC applies only to gradient-sending algorithms")
		}
		if c.Algo == ARSGD {
			return fmt.Errorf("core: DGC over AllReduce is not supported (sparse allreduce); use BSP/ASP/SSP")
		}
		if err := c.DGC.Validate(); err != nil {
			return err
		}
	}
	if c.Quantize8 && c.QuantizeF16 {
		return fmt.Errorf("core: Quantize8 and QuantizeF16 are mutually exclusive (pick one codec)")
	}
	if c.Quantize8 || c.QuantizeF16 {
		if !c.Algo.SendsGradients() {
			return fmt.Errorf("core: gradient quantization applies only to gradient-sending algorithms")
		}
	}
	if c.LocalAgg && c.Algo != BSP {
		return fmt.Errorf("core: local aggregation is a BSP optimization")
	}
	if c.ADPSGDNoBipartite && c.Algo != ADPSGD {
		return fmt.Errorf("core: ADPSGDNoBipartite applies only to AD-PSGD")
	}
	switch c.Collective {
	case "":
		if c.TreeAllReduce {
			c.Collective = "tree"
		} else {
			c.Collective = "ring"
		}
	case "ring", "hierarchical", "butterfly", "torus":
		if c.TreeAllReduce {
			return fmt.Errorf("core: TreeAllReduce conflicts with Collective %q", c.Collective)
		}
	case "tree":
		c.TreeAllReduce = true
	default:
		return fmt.Errorf("core: unknown collective %q (ring, tree, hierarchical, butterfly, torus)", c.Collective)
	}
	if c.Collective != "ring" && c.Algo != ARSGD {
		return fmt.Errorf("core: collective selection applies only to AR-SGD")
	}
	if c.Collective == "torus" {
		if _, _, err := topo.TorusShape(c.Workers); err != nil {
			return err
		}
	}
	if c.TreeAllReduce && c.Algo != ARSGD {
		return fmt.Errorf("core: TreeAllReduce applies only to AR-SGD")
	}
	if topoCollective(c.Collective) && c.Elastic {
		return fmt.Errorf("core: elastic membership is not supported with the %s collective (fixed topology)", c.Collective)
	}
	if c.Overlay != "" {
		if c.Algo != ADPSGD && c.Algo != GoSGD {
			return fmt.Errorf("core: gossip overlays apply only to AD-PSGD and GoSGD")
		}
		if c.OverlayDegree == 0 {
			c.OverlayDegree = 4
		}
		switch c.Overlay {
		case "kregular":
			if err := topo.RegularFeasible(c.Workers, c.OverlayDegree); err != nil {
				return err
			}
		case "smallworld":
			if c.OverlayDegree < 2 || c.OverlayDegree >= c.Workers {
				return fmt.Errorf("core: overlay degree %d outside [2, world size %d)", c.OverlayDegree, c.Workers)
			}
		default:
			return fmt.Errorf("core: unknown overlay %q (kregular, smallworld)", c.Overlay)
		}
	} else if c.OverlayDegree != 0 {
		return fmt.Errorf("core: OverlayDegree set without Overlay")
	}
	if c.StalenessDamping && c.Algo != ASP {
		return fmt.Errorf("core: StalenessDamping applies only to ASP")
	}
	if c.Real != nil {
		r := c.Real
		if r.Factory == nil || r.Train == nil || r.Test == nil {
			return fmt.Errorf("core: RealConfig requires Factory, Train, Test")
		}
		if r.Batch <= 0 {
			return fmt.Errorf("core: RealConfig.Batch = %d", r.Batch)
		}
	}
	if c.BarrierTimeoutSec < 0 {
		return fmt.Errorf("core: BarrierTimeoutSec = %v", c.BarrierTimeoutSec)
	}
	if c.BarrierTimeoutSec == 0 {
		c.BarrierTimeoutSec = 5 * c.Workload.MeanIterSec()
	}
	if !c.Faults.Empty() {
		switch c.Algo {
		case DPSGD, AdaComm, Hogwild:
			return fmt.Errorf("core: fault injection is not supported for %s", c.Algo)
		}
		if c.ADPSGDNoBipartite {
			return fmt.Errorf("core: fault injection is not supported for the AD-PSGD no-bipartite ablation")
		}
		if topoCollective(c.Collective) {
			return fmt.Errorf("core: fault injection is not supported with the %s collective (fixed topology)", c.Collective)
		}
		if err := c.Faults.Validate(c.Workers, c.Cluster.Machines); err != nil {
			return err
		}
		if c.LocalAgg && c.Faults.HasKind(fault.Crash) {
			return fmt.Errorf("core: local aggregation cannot be combined with crash faults (leader death is undefined)")
		}
	}
	return nil
}

// Result is everything one experiment produces.
type Result struct {
	Config Config
	// Metrics holds per-worker breakdowns and convergence traces.
	Metrics *metrics.Collector
	// Net holds traffic counters for the whole run.
	Net simnet.Stats
	// VirtualSec is the simulated makespan.
	VirtualSec float64
	// Throughput is samples/second of virtual time at the timing batch
	// size (Workload.Batch) — the paper's images/sec metric.
	Throughput float64
	// FinalTestAcc is the global model's test accuracy at the end (real
	// mode only; 0 in cost-only mode).
	FinalTestAcc float64
	// FinalTrainLoss is the final evaluated training loss (real mode).
	FinalTrainLoss float64
	// BytesPerIterPerWorker is total traffic / (Iters · Workers) — the
	// measured communication complexity for Table I verification.
	BytesPerIterPerWorker float64
	// ReplicaSpreadL2 is max over workers of ‖x_w − x̄‖/‖x̄‖ at the end of a
	// real-mode run — the "disparity of the model parameters among workers"
	// the paper identifies as the driver of asynchronous accuracy loss.
	// Zero for cost-only runs and for exactly synchronized replicas.
	ReplicaSpreadL2 float64
	// StuckProcs names the simulated processes still blocked when the
	// experiment drained. Server loops (PS shards, passive peers) are
	// normal here; stuck *worker/comm* processes indicate a protocol
	// deadlock (see the AD-PSGD bipartite ablation) — or, under fault
	// injection, workers stranded at a dead peer's barrier.
	StuckProcs []string
	// StalledWorkers counts workers that never completed their final
	// iteration (stranded at a barrier by a fault). When non-zero the run
	// effectively hung, so Throughput is reported as 0; per-worker partial
	// iteration counts remain in Metrics.
	StalledWorkers int
	// WorkerParams holds each replica's final parameter vector, captured
	// only when Config.CaptureParams is set in a real-mode run. Index is
	// worker rank.
	WorkerParams [][]float32
}
