package core

import (
	"fmt"

	"disttrain/internal/comm"
	"disttrain/internal/des"
	"disttrain/internal/metrics"
)

// runARSGD implements decentralized synchronous AllReduce SGD (Section
// IV-A, the paper's AR-SGD built on MPICH): every iteration, all workers'
// gradients are summed with a ring AllReduce (Reduce-Scatter followed by
// All-Gather, exactly the MPI algorithm) and every worker applies the
// averaged gradient locally. No parameter server exists; all replicas stay
// bit-identical because they start identical and apply identical updates.
//
// With wait-free BP, the gradient is reduced in two buckets: the
// output-side half of the vector is all-reduced while the backward pass of
// the input-side half is still running — the bucketing strategy real DDP
// stacks use.
func runARSGD(x *exp) {
	cfg := x.cfg
	W := cfg.Workers
	nodes := append([]int(nil), x.workerNode...)
	allReduce := comm.RingAllReduce
	if cfg.TreeAllReduce {
		allReduce = comm.TreeAllReduce
	}
	half := x.vecLen / 2
	if half == 0 {
		half = x.vecLen
	}

	for w := 0; w < W; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("arsgd-worker%d", w), func(p *des.Proc) {
			bd := &x.col.Workers[w].Breakdown
			inv := 1 / float32(W)
			for it := 1; it <= cfg.Iters; it++ {
				grads, j := x.computePhase(p, w, cfg.WaitFreeBP)

				var agg []float32
				if grads != nil {
					agg = append([]float32(nil), grads...)
				}

				if cfg.WaitFreeBP && x.vecLen > 1 {
					// First half of the backward pass produces the
					// output-side gradients...
					bwd := x.bwdTotal(j)
					c0 := p.Now()
					p.Sleep(bwd / 2)
					bd.Add(metrics.Compute, p.Now()-c0)

					// ...whose AllReduce overlaps the second half of the
					// backward pass: if the reduce finishes first, the
					// worker still owes the remaining backward time.
					t0 := p.Now()
					var hi []float32
					if agg != nil {
						hi = agg[half:]
					}
					wire := allReduce(p, x.net, nodes, w, hi,
						x.vecLen-half, x.bytesFor(x.vecLen-half), kindAllReduce)
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-wire)
					if rem := bwd/2 - (p.Now() - t0); rem > 0 {
						p.Sleep(rem)
						bd.Add(metrics.Compute, rem)
					}

					t1 := p.Now()
					var lo []float32
					if agg != nil {
						lo = agg[:half]
					}
					wire = allReduce(p, x.net, nodes, w, lo,
						half, x.bytesFor(half), kindAllReduce)
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t1-wire)
				} else {
					t0 := p.Now()
					wire := allReduce(p, x.net, nodes, w, agg,
						x.vecLen, x.fullBytes(), kindAllReduce)
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-wire)
				}

				if agg != nil {
					for i := range agg {
						agg[i] *= inv
					}
				}
				x.reps[w].localStep(agg, cfg.LR.At(it-1))
				x.maybeEval(w, it)
			}
			x.finish(w)
		})
	}
}
