package core

import (
	"fmt"

	"disttrain/internal/comm"
	"disttrain/internal/des"
	"disttrain/internal/grad"
	"disttrain/internal/metrics"
	"disttrain/internal/simnet"
	"disttrain/internal/topo"
)

// runARSGD implements decentralized synchronous AllReduce SGD (Section
// IV-A, the paper's AR-SGD built on MPICH): every iteration, all workers'
// gradients are summed with a ring AllReduce (Reduce-Scatter followed by
// All-Gather, exactly the MPI algorithm) and every worker applies the
// averaged gradient locally. No parameter server exists; all replicas stay
// bit-identical because they start identical and apply identical updates.
//
// With wait-free BP, the gradient is reduced in two buckets: the
// output-side half of the vector is all-reduced while the backward pass of
// the input-side half is still running — the bucketing strategy real DDP
// stacks use.
func runARSGD(x *exp) {
	cfg := x.cfg
	W := cfg.Workers
	op := comm.OpRingAllReduce
	if cfg.TreeAllReduce {
		op = comm.OpTreeAllReduce
	}
	// The topology-aware variants need the machine layout (or grid shape)
	// up front; Validate has already vetted cluster and worker count, and
	// rejects them combined with faults/elastic, so membership is fixed.
	var groups [][]int
	var torusRows, torusCols int
	switch cfg.Collective {
	case "hierarchical":
		op = comm.OpHierarchicalAllReduce
		tp, err := topo.New(cfg.Cluster, W)
		if err != nil {
			panic(fmt.Sprintf("arsgd: %v", err))
		}
		groups = tp.Groups
	case "butterfly":
		op = comm.OpButterflyAllReduce
	case "torus":
		op = comm.OpTorusAllReduce
		var err error
		torusRows, torusCols, err = topo.TorusShape(W)
		if err != nil {
			panic(fmt.Sprintf("arsgd: %v", err))
		}
	}
	half := x.vecLen / 2
	if half == 0 {
		half = x.vecLen
	}

	for w := 0; w < W; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("arsgd-worker%d", w), func(p *des.Proc) {
			bd := &x.col.Workers[w].Breakdown
			// With fault injection the ring membership can change between
			// rounds, so a fast peer's next-round chunk may overtake the
			// current round's traffic; the per-round Clock tag plus this
			// stash keeps every round's messages separated. The topology-
			// aware collectives need it even with fixed membership: their
			// multi-phase patterns let a finished peer's next-round traffic
			// arrive while this rank still drains the current round.
			var stash []simnet.Msg
			stashP := &stash
			if x.inj == nil && !topoCollective(cfg.Collective) {
				stashP = nil // strict fixed-membership discipline
			}
			for it := 1; it <= cfg.Iters; it++ {
				nit, ok := x.barrierGate(p, w, it)
				if !ok {
					break
				}
				it = nit
				// Elastic mode shrinks the ring to this round's survivors;
				// faithful mode keeps every rank a member, so a dead peer
				// stalls the ring — AR-SGD's collapse under a crash.
				nodes, self := x.aliveNodes(it, w)
				inv := 1 / float32(len(nodes))
				gf, j := x.computePhase(p, w, cfg.WaitFreeBP)

				// The join is deferred into the branches below: under
				// wait-free BP the first half-backward sleep elapses before
				// the gradient is needed, stretching the overlap window.
				var agg []float32
				join := func() {
					if g := gf.get(); g != nil {
						agg = append([]float32(nil), g...)
						// Quantized AllReduce: each worker's own contribution
						// is quantized once before entering the collective —
						// the live ring/tree ships first-hop chunks in codec
						// form and reconstructs with the same formula, so sim
						// and live observe identical inputs. Partial sums
						// stay dense on both paths.
						if cfg.Quantize8 {
							grad.QuantizeRoundTrip(agg)
						} else if cfg.QuantizeF16 {
							grad.QuantizeF16RoundTrip(agg)
						}
					}
				}
				// The sim cost model keeps dense per-hop Bytes even when the
				// input is quantized: only the first reduce-scatter hop (and
				// tree leaf pushes) carries codec payloads on the live path —
				// partial sums travel dense — so halving every hop would
				// overstate the savings. Real wire savings are measured on
				// the live PS path.
				reduce := func(vec []float32, vlen int) des.Time {
					_, wire := collective(p, comm.CollectiveOpts{
						Op: op, Net: x.net, Nodes: nodes, Self: self,
						Vec: vec, VirtualLen: vlen, Bytes: x.bytesFor(vlen),
						Kind: kindAllReduce, Clock: it, Stash: stashP,
						Groups: groups, TorusRows: torusRows, TorusCols: torusCols})
					return wire
				}

				if cfg.WaitFreeBP && x.vecLen > 1 {
					// First half of the backward pass produces the
					// output-side gradients...
					bwd := x.bwdTotal(j)
					c0 := p.Now()
					p.Sleep(bwd / 2)
					bd.Add(metrics.Compute, p.Now()-c0)
					join()

					// ...whose AllReduce overlaps the second half of the
					// backward pass: if the reduce finishes first, the
					// worker still owes the remaining backward time.
					t0 := p.Now()
					var hi []float32
					if agg != nil {
						hi = agg[half:]
					}
					wire := reduce(hi, x.vecLen-half)
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-wire)
					if rem := bwd/2 - (p.Now() - t0); rem > 0 {
						p.Sleep(rem)
						bd.Add(metrics.Compute, rem)
					}

					t1 := p.Now()
					var lo []float32
					if agg != nil {
						lo = agg[:half]
					}
					wire = reduce(lo, half)
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t1-wire)
				} else {
					join()
					t0 := p.Now()
					wire := reduce(agg, x.vecLen)
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-wire)
				}

				if agg != nil {
					for i := range agg {
						agg[i] *= inv
					}
				}
				x.reps[w].localStep(agg, cfg.LR.At(it-1))
				x.iterDone(w, it)
			}
			x.finish(w)
		})
	}
}
