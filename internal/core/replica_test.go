package core

import (
	"math"
	"testing"

	"disttrain/internal/cluster"
	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

func testReplica(t *testing.T, w int) *replica {
	t.Helper()
	r := rng.New(100)
	ds := data.GenGauss(r, 100, 3, 0.3)
	cfg := &Config{
		Algo:     BSP,
		Cluster:  cluster.Paper56G(2),
		Workers:  2,
		Workload: costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128),
		Iters:    10,
		Momentum: 0.9,
		LR:       opt.Schedule{Base: 0.1},
		Real: &RealConfig{
			Factory: func(rr *rng.RNG) *nn.Model { return nn.NewMLP(rr, 2, 4, 3) },
			Train:   ds,
			Test:    ds,
			Batch:   8,
		},
	}
	return newRealReplica(w, cfg, rng.New(1).Split(1), rng.New(2))
}

func TestReplicaComputeGradAdvancesIter(t *testing.T) {
	r := testReplica(t, 0)
	if r.iter != 0 {
		t.Fatalf("fresh iter %d", r.iter)
	}
	g := r.computeGrad()
	if g == nil || r.iter != 1 {
		t.Fatalf("grad nil=%v iter=%d", g == nil, r.iter)
	}
	if !opt.IsFinite(g) {
		t.Fatal("non-finite gradient")
	}
}

func TestReplicaIdenticalInit(t *testing.T) {
	a, b := testReplica(t, 0), testReplica(t, 1)
	pa, pb := a.params(), b.params()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("replicas start different despite shared init stream")
		}
	}
}

func TestReplicaAverage(t *testing.T) {
	r := testReplica(t, 0)
	orig := r.params()
	other := make([]float32, len(orig))
	for i := range other {
		other[i] = orig[i] + 2
	}
	r.average(other)
	got := r.params()
	for i := range got {
		if math.Abs(float64(got[i]-(orig[i]+1))) > 1e-6 {
			t.Fatalf("average wrong at %d", i)
		}
	}
}

func TestReplicaWeightedMerge(t *testing.T) {
	r := testReplica(t, 0)
	orig := r.params()
	other := make([]float32, len(orig))
	for i := range other {
		other[i] = orig[i] + 3
	}
	// own weight 1, incoming weight 0.5 -> x = (1*x + 0.5*(x+3))/1.5 = x+1
	newW := r.weightedMerge(1, other, 0.5)
	if math.Abs(newW-1.5) > 1e-12 {
		t.Fatalf("merged weight %v", newW)
	}
	got := r.params()
	for i := range got {
		if math.Abs(float64(got[i]-(orig[i]+1))) > 1e-5 {
			t.Fatalf("weighted merge wrong at %d: %v vs %v", i, got[i], orig[i]+1)
		}
	}
}

func TestReplicaSetRanges(t *testing.T) {
	r := testReplica(t, 0)
	n := r.size()
	src := make([]float32, n)
	for i := range src {
		src[i] = 42
	}
	r.setRanges([]rangeT{{Off: 0, Len: 3}, {Off: n - 2, Len: 2}}, src)
	got := r.params()
	if got[0] != 42 || got[2] != 42 || got[n-1] != 42 {
		t.Fatal("ranges not written")
	}
	if got[4] == 42 {
		t.Fatal("out-of-range index written")
	}
}

func TestReplicaLocalStepMovesParams(t *testing.T) {
	r := testReplica(t, 0)
	before := r.params()
	g := r.computeGrad()
	r.localStep(g, 0.1)
	after := r.params()
	moved := false
	for i := range after {
		if after[i] != before[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("localStep did not move parameters")
	}
}

func TestCostReplicaNoOps(t *testing.T) {
	r := newCostReplica(3)
	if r.mathOn() || r.size() != 0 {
		t.Fatal("cost replica claims math")
	}
	if g := r.computeGrad(); g != nil {
		t.Fatal("cost replica produced a gradient")
	}
	if r.iter != 1 {
		t.Fatalf("iter = %d", r.iter)
	}
	// All of these must be safe no-ops on nil state.
	r.localStep(nil, 0.1)
	r.setParams(nil)
	r.setRanges([]rangeT{{Off: 0, Len: 4}}, nil)
	r.average(nil)
	if w := r.weightedMerge(1, nil, 0.5); w != 1.5 {
		t.Fatalf("cost merge weight %v", w)
	}
	if p := r.params(); p != nil {
		t.Fatal("cost replica returned params")
	}
}

func TestReplicaLossEWMA(t *testing.T) {
	r := testReplica(t, 0)
	r.computeGrad()
	if !r.lossInit || r.lossEWMA <= 0 {
		t.Fatal("loss EWMA not initialized")
	}
	first := r.lossEWMA
	for i := 0; i < 5; i++ {
		r.computeGrad()
	}
	if r.lossEWMA == first {
		t.Fatal("loss EWMA frozen")
	}
}
