package core

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/metrics"
	"disttrain/internal/simnet"
)

// runASP implements Asynchronous Parallel training (Section III-B): each PS
// shard applies every arriving gradient to the global parameters
// immediately and sends the updated parameters straight back to that worker
// — no worker ever waits for another, but every worker round-trips the full
// model through the PS each iteration, which makes the PS the bottleneck on
// a slow network (the paper's headline ASP finding).
//
// Mirroring the paper's implementation, each shard communicates with
// workers through per-worker logic (our shard process serves messages in
// arrival order; the simulated NIC, not goroutine structure, is the shared
// resource).
func runASP(x *exp) {
	cfg := x.cfg

	// Shard server loops: run forever; Engine.Kill reaps them at the end.
	for s := range x.assign {
		s := s
		x.eng.Spawn(fmt.Sprintf("asp-ps%d", s), func(p *des.Proc) {
			inbox := x.psInbox(s)
			// Staleness damping (extension): track how many global updates
			// each worker's current parameters have missed and shrink its
			// gradient's step accordingly.
			updates := 0
			pulledAt := make([]int, cfg.Workers)
			for {
				m := inbox.Recv(p)
				psAggSleep(p, m.Bytes)
				lr := cfg.LR.At(m.Clock - 1)
				if cfg.StalenessDamping {
					staleness := updates - pulledAt[m.From]
					lr /= float32(1 + staleness)
				}
				updates++
				pulledAt[m.From] = updates
				switch m.Kind {
				case kindSparseGrad:
					x.global.ApplySparse(m.SparseIdx, m.Vec, 1, lr)
				case kindGrad:
					x.global.ApplyGrad(x.assign[s], m.Vec, 1, lr)
				default:
					panic(fmt.Sprintf("asp shard: unexpected kind %d", m.Kind))
				}
				x.net.Send(x.snapshotMsg(s, m.From))
			}
		})
	}

	for w := 0; w < cfg.Workers; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("asp-worker%d", w), func(p *des.Proc) {
			inbox := x.inbox(w)
			bd := &x.col.Workers[w].Breakdown
			for it := 1; it <= cfg.Iters; it++ {
				nit, ok := x.gate(p, w, it)
				if !ok {
					break
				}
				it = nit
				gf, j := x.computePhase(p, w, cfg.WaitFreeBP)
				x.sendGrads(p, w, it, gf.get(), true, j, cfg.WaitFreeBP)

				t0 := p.Now()
				var wire des.Time
				var fresh []float32
				if x.reps[w].mathOn() {
					fresh = x.reps[w].params()
				}
				for recv := 0; recv < len(x.assign); recv++ {
					var m simnet.Msg
					if x.inj != nil {
						// A dropped gradient or reply must not wedge an
						// asynchronous worker: give up after the timeout
						// and train on with the stale shard params.
						var okr bool
						if m, okr = inbox.RecvTimeout(p, cfg.BarrierTimeoutSec); !okr {
							x.col.Faults.Timeouts++
							break
						}
					} else {
						m = inbox.Recv(p)
					}
					if m.Kind != kindParams {
						panic(fmt.Sprintf("asp worker: unexpected kind %d", m.Kind))
					}
					wire += m.WireSec
					if m.Vec != nil {
						for _, r := range x.assign[m.Seg] {
							copy(fresh[r.Off:r.Off+r.Len], m.Vec[r.Off:r.Off+r.Len])
						}
					}
				}
				bd.Add(metrics.Network, wire)
				bd.Add(metrics.GlobalAgg, p.Now()-t0-wire)
				x.reps[w].setParams(fresh)
				x.iterDone(w, it)
			}
			x.finish(w)
		})
	}
}
