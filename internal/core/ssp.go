package core

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/metrics"
	"disttrain/internal/simnet"
)

// runSSP implements Stale Synchronous Parallel training (Section III-C,
// after Ho et al.): every iteration a worker sends its gradients to the PS
// and — in parallel, as in the paper's implementation — applies them to its
// own local parameters and keeps going. Only when the worker's clock runs
// more than s iterations ahead of the slowest worker does it request the
// aggregated global parameters and block until the staleness bound is
// restored.
//
// Shard 0 doubles as the clock service: it tracks every worker's clock from
// the gradient messages, piggybacks the minimum clock on tiny acks, and
// parks pull requests until min ≥ clock − s.
func runSSP(x *exp) {
	cfg := x.cfg
	s := cfg.Staleness

	type pending struct {
		worker int // node to reply to
		clock  int
	}

	elastic := x.inj != nil && cfg.Elastic

	for sh := range x.assign {
		sh := sh
		x.eng.Spawn(fmt.Sprintf("ssp-ps%d", sh), func(p *des.Proc) {
			inbox := x.psInbox(sh)
			clocks := make([]int, cfg.Workers)
			var parked []pending
			minClock := func() int {
				// Elastic mode excludes currently dead workers from the
				// staleness bound so a crash does not park every fast
				// worker for the rest of the run.
				m := -1
				for ww, c := range clocks {
					if elastic && x.inj.DeadAt(ww, p.Now()) {
						continue
					}
					if m < 0 || c < m {
						m = c
					}
				}
				if m < 0 {
					m = clocks[0]
				}
				return m
			}
			release := func() bool {
				mc := minClock()
				hit := false
				keep := parked[:0]
				for _, pk := range parked {
					if mc >= pk.clock-s {
						x.net.Send(x.snapshotMsg(0, pk.worker))
						hit = true
					} else {
						keep = append(keep, pk)
					}
				}
				parked = keep
				return hit
			}
			// fruitless caps the elastic re-check spin: while pulls are
			// parked the shard wakes on a timeout to re-evaluate liveness,
			// but after a few barren wakeups it goes back to blocking so an
			// otherwise-finished run can drain.
			fruitless := 0
			for {
				var m simnet.Msg
				if elastic && sh == 0 && len(parked) > 0 && fruitless < 3 {
					var ok bool
					if m, ok = inbox.RecvTimeout(p, cfg.BarrierTimeoutSec); !ok {
						x.col.Faults.Timeouts++
						fruitless++
						if release() {
							fruitless = 0
						}
						continue
					}
				} else {
					m = inbox.Recv(p)
				}
				fruitless = 0
				switch m.Kind {
				case kindGrad, kindSparseGrad:
					psAggSleep(p, m.Bytes)
					// Petuum-style SSP: workers send their locally applied
					// *updates* (deltas); the PS simply accumulates them
					// into the global parameters.
					if m.Kind == kindSparseGrad {
						x.global.ApplySparse(m.SparseIdx, m.Vec, -1, 1)
					} else {
						x.global.AddDelta(x.assign[sh], m.Vec)
					}
					if sh == 0 {
						clocks[m.From] = m.Clock
						// Tiny ack carrying the minimum clock.
						x.net.Send(simnet.Msg{From: x.psNode[0], To: m.From,
							Kind: kindAck, Clock: minClock(), Bytes: 16})
						// Release parked pulls whose bound is now met.
						release()
					}
				case kindPull:
					if sh == 0 && minClock() < m.Clock-s {
						parked = append(parked, pending{worker: m.From, clock: m.Clock})
					} else {
						x.net.Send(x.snapshotMsg(sh, m.From))
					}
				default:
					panic(fmt.Sprintf("ssp shard: unexpected kind %d", m.Kind))
				}
			}
		})
	}

	for w := 0; w < cfg.Workers; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("ssp-worker%d", w), func(p *des.Proc) {
			inbox := x.inbox(w)
			bd := &x.col.Workers[w].Breakdown
			lastMin := 0
			sinceRefresh := 0
			drain := func() {
				for {
					m, ok := inbox.TryRecv()
					if !ok {
						return
					}
					if m.Kind == kindParams && x.inj != nil {
						// A reply released after this worker's pull timed
						// out; its refresh was already given up on.
						continue
					}
					if m.Kind != kindAck {
						panic(fmt.Sprintf("ssp worker drain: unexpected kind %d", m.Kind))
					}
					if m.Clock > lastMin {
						lastMin = m.Clock
					}
				}
			}
			for it := 1; it <= cfg.Iters; it++ {
				nit, ok := x.gate(p, w, it)
				if !ok {
					break
				}
				it = nit
				gf, j := x.computePhase(p, w, cfg.WaitFreeBP)

				// The paper's parallel tasks: (i) ship the computed update
				// to the PS, (ii) apply it locally; neither waits for the
				// other. Following Ho et al., what travels is the worker's
				// locally applied *update* (same wire size as the gradient).
				var delta []float32
				if x.reps[w].mathOn() {
					before := x.reps[w].params()
					x.reps[w].localStep(gf.get(), cfg.LR.At(it-1))
					delta = x.reps[w].params()
					for i := range delta {
						delta[i] -= before[i]
					}
				}
				x.sendGrads(p, w, it, delta, true, j, cfg.WaitFreeBP)
				drain()

				// A worker must refresh its locally cached parameters from
				// the PS when they are more than s clocks old (Petuum SSP's
				// bounded-staleness read), and must additionally block
				// whenever it runs more than s clocks ahead of the slowest
				// worker. The periodic refresh is what gives SSP its
				// (1 + 1/(s+1))·MN communication complexity.
				sinceRefresh++
				if sinceRefresh > s || it-lastMin > s {
					// Staleness bound exceeded: pull the aggregated global
					// parameters and block until shard 0 releases us.
					for sh := range x.assign {
						x.net.Send(simnet.Msg{From: x.workerNode[w], To: x.psNode[sh],
							Kind: kindPull, Clock: it, Bytes: 16})
					}
					t0 := p.Now()
					var wire des.Time
					var fresh []float32
					if x.reps[w].mathOn() {
						fresh = x.reps[w].params()
					}
					for recv := 0; recv < len(x.assign); {
						var m simnet.Msg
						if elastic {
							var okr bool
							if m, okr = inbox.RecvTimeout(p, cfg.BarrierTimeoutSec); !okr {
								// Pull lost or still parked behind a dead
								// worker: give up on this refresh.
								x.col.Faults.Timeouts++
								recv = len(x.assign)
								continue
							}
						} else {
							m = inbox.Recv(p)
						}
						switch m.Kind {
						case kindAck:
							if m.Clock > lastMin {
								lastMin = m.Clock
							}
						case kindParams:
							wire += m.WireSec
							if m.Vec != nil {
								for _, r := range x.assign[m.Seg] {
									copy(fresh[r.Off:r.Off+r.Len], m.Vec[r.Off:r.Off+r.Len])
								}
							}
							recv++
						default:
							panic(fmt.Sprintf("ssp worker: unexpected kind %d", m.Kind))
						}
					}
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-wire)
					x.reps[w].setParams(fresh)
					sinceRefresh = 0
					if lastMin < it-s {
						// Shard 0 only releases when the bound holds.
						lastMin = it - s
					}
				}
				x.iterDone(w, it)
			}
			x.finish(w)
		})
	}
}
