package core

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/simnet"
)

// runGoSGD implements Gossip SGD (Section IV-B, after Blot et al.): every
// iteration each worker trains locally, then with probability p picks a
// uniformly random peer and pushes its parameters to it *asymmetrically* —
// it does not wait for any response (the push-sum style the paper calls
// asymmetric communication). Each worker carries a mixing weight; a sender
// halves its weight and ships one half with its parameters, and a receiver
// folds the incoming pair in with a weighted average, which keeps the
// network-wide average unbiased.
//
// Receives are processed at iteration boundaries, modeling the paper's
// background communication thread.
func runGoSGD(x *exp) {
	cfg := x.cfg
	W := cfg.Workers

	weights := make([]float64, W)
	for i := range weights {
		weights[i] = 1
	}

	for w := 0; w < W; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("gosgd-worker%d", w), func(p *des.Proc) {
			inbox := x.inbox(w)
			r := x.algoRNG[w]
			drain := func() {
				for {
					m, ok := inbox.TryRecv()
					if !ok {
						return
					}
					if m.Kind != kindGossip {
						panic(fmt.Sprintf("gosgd worker: unexpected kind %d", m.Kind))
					}
					weights[w] = x.reps[w].weightedMerge(weights[w], m.Vec, m.Aux)
				}
			}
			for it := 1; it <= cfg.Iters; it++ {
				grads, _ := x.computePhase(p, w, false)
				x.reps[w].localStep(grads, cfg.LR.At(it-1))
				drain()

				if r.Bernoulli(cfg.GossipP) {
					// Choose a target uniformly among the other workers.
					t := r.Intn(W - 1)
					if t >= w {
						t++
					}
					half := weights[w] / 2
					weights[w] = half
					var payload []float32
					if x.reps[w].mathOn() {
						payload = x.reps[w].params()
					}
					// Asymmetric: fire and forget; the sender immediately
					// proceeds to its next iteration.
					x.net.Send(simnet.Msg{From: x.workerNode[w], To: x.workerNode[t],
						Kind: kindGossip, Clock: it, Aux: half,
						Bytes: x.fullBytes(), Vec: payload})
				}
				x.maybeEval(w, it)
			}
			drain()
			x.finish(w)
		})
	}
}
