package core

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/simnet"
)

// runGoSGD implements Gossip SGD (Section IV-B, after Blot et al.): every
// iteration each worker trains locally, then with probability p picks a
// uniformly random peer and pushes its parameters to it *asymmetrically* —
// it does not wait for any response (the push-sum style the paper calls
// asymmetric communication). Each worker carries a mixing weight; a sender
// halves its weight and ships one half with its parameters, and a receiver
// folds the incoming pair in with a weighted average, which keeps the
// network-wide average unbiased.
//
// Receives are processed at iteration boundaries, modeling the paper's
// background communication thread.
func runGoSGD(x *exp) {
	cfg := x.cfg
	W := cfg.Workers

	weights := make([]float64, W)
	for i := range weights {
		weights[i] = 1
	}

	for w := 0; w < W; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("gosgd-worker%d", w), func(p *des.Proc) {
			inbox := x.inbox(w)
			r := x.algoRNG[w]
			drain := func() {
				for {
					m, ok := inbox.TryRecv()
					if !ok {
						return
					}
					if m.Kind != kindGossip {
						panic(fmt.Sprintf("gosgd worker: unexpected kind %d", m.Kind))
					}
					weights[w] = x.reps[w].weightedMerge(weights[w], m.Vec, m.Aux)
				}
			}
			for it := 1; it <= cfg.Iters; it++ {
				nit, ok := x.gate(p, w, it)
				if !ok {
					break
				}
				it = nit
				gf, _ := x.computePhase(p, w, false)
				x.reps[w].localStep(gf.get(), cfg.LR.At(it-1))
				drain()

				if r.Bernoulli(cfg.GossipP) {
					// Choose a target uniformly among the other workers —
					// or, with a sparse overlay, among this worker's overlay
					// neighbors. Under fault injection, among the live
					// reachable members of that base set (a push to a dead
					// peer would lose its weight mass).
					t := -1
					if x.inj == nil {
						if x.overlay != nil {
							nb := x.overlay.Neighbors[w]
							t = nb[r.Intn(len(nb))]
						} else {
							t = r.Intn(W - 1)
							if t >= w {
								t++
							}
						}
					} else {
						now := p.Now()
						myM := cfg.Cluster.MachineOfWorker(w)
						var base []int
						if x.overlay != nil {
							base = x.overlay.Neighbors[w]
						} else {
							for pe := 0; pe < W; pe++ {
								if pe != w {
									base = append(base, pe)
								}
							}
						}
						var cands []int
						for _, pe := range base {
							if x.inj.DeadAt(pe, now) {
								continue
							}
							if x.inj.Partitioned(now, myM, cfg.Cluster.MachineOfWorker(pe)) {
								continue
							}
							cands = append(cands, pe)
						}
						if len(cands) == 0 {
							x.col.Faults.SkippedExchanges++
						} else {
							if len(cands) < len(base) {
								x.col.Faults.Redraws++
							}
							t = cands[r.Intn(len(cands))]
						}
					}
					if t >= 0 {
						half := weights[w] / 2
						weights[w] = half
						var payload []float32
						if x.reps[w].mathOn() {
							payload = x.reps[w].params()
						}
						// Asymmetric: fire and forget; the sender
						// immediately proceeds to its next iteration.
						x.net.Send(simnet.Msg{From: x.workerNode[w], To: x.workerNode[t],
							Kind: kindGossip, Clock: it, Aux: half,
							Bytes: x.fullBytes(), Vec: payload})
					}
				}
				x.iterDone(w, it)
			}
			drain()
			x.finish(w)
		})
	}
}
