package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"disttrain/internal/comm"
	"disttrain/internal/costmodel"
	"disttrain/internal/des"
	"disttrain/internal/fault"
	"disttrain/internal/grad"
	"disttrain/internal/metrics"
	"disttrain/internal/nn"
	"disttrain/internal/ps"
	"disttrain/internal/rng"
	"disttrain/internal/sched"
	"disttrain/internal/simnet"
	"disttrain/internal/tensor"
	"disttrain/internal/topo"
)

type rangeT = ps.Range

// Message kinds on the simulated network.
const (
	kindGrad = iota + 1
	kindSparseGrad
	kindParams
	kindPull
	kindAck
	kindEASGDPush
	kindEASGDReply
	kindAllReduce
	kindGossip
	kindExchangeReq
	kindExchangeReply
	kindLocalGather
	kindLocalBcast
)

// exp is the shared state of one running experiment.
type exp struct {
	cfg *Config
	eng *des.Engine
	net *simnet.Net

	// pool runs the replicas' forward/backward passes on real cores while
	// their simulated processes sleep out virtual compute time. nil = inline.
	pool *sched.Pool

	// ctx is polled at iteration boundaries; cancellation aborts the run.
	ctx context.Context
	// canceled records that a worker observed ctx cancellation.
	canceled bool

	// inj evaluates the fault schedule; nil when no faults are configured.
	inj *fault.Injector
	// restarted marks workers that died and came back at least once.
	restarted []bool
	// syncFrom[w] is the first iteration whose crash window gateSync has not
	// yet served for worker w (faithful synchronous restart bookkeeping).
	syncFrom []int
	// crashLog records realized deaths for the fault trace spans.
	crashLog []crashRec

	workerNode []int // worker -> node ID
	psNode     []int // shard -> node ID

	assign ps.Assignment
	loc    *ps.Locator // index → shard, for one-pass sparse splitting
	global *ps.Global

	reps []*replica
	col  *metrics.Collector

	// segments is the layer layout used for sharding and wait-free BP: the
	// real model's segments in real mode, the cost profile's otherwise.
	segments []nn.Segment
	// vecLen is the exchanged vector length (real param count, or the
	// profile's parameter count in cost-only mode).
	vecLen int
	// byteScale converts "actual params × 4 bytes" into paper-scale wire
	// bytes; 1 in cost-only mode, profileParams/actualParams in real mode.
	byteScale float64

	// jitterRNG streams per worker for compute-time sampling; algoRNG for
	// algorithmic randomness (gossip choices, partner selection).
	jitterRNG []*rng.RNG
	algoRNG   []*rng.RNG

	// overlay, when non-nil, restricts gossip partner selection
	// (AD-PSGD/GoSGD) to a sparse seed-deterministic peer graph.
	overlay *topo.Overlay

	// compressors per worker when DGC is on (real mode only).
	dgc []*grad.Compressor
	// dgcIter tracks per-worker compression iterations in cost-only mode
	// (for the warm-up schedule).
	dgcIter []int

	// gatherDoneAt[machine] is the virtual time the machine leader finished
	// its local gather in the current BSP iteration; members use it to
	// split their wait into local vs global aggregation.
	gatherDoneAt []des.Time

	// evalModel is a scratch model used to evaluate global/average params
	// (real mode only).
	evalModel *nn.Model
}

// crashRec is one realized worker death, for trace spans.
type crashRec struct {
	worker  int
	at      float64
	restart float64 // 0 = permanent
}

// setup builds the simulated world for cfg. Call cfg.Validate() first.
func setup(cfg *Config) (*exp, error) {
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, fmt.Errorf("core: setup: %w", err)
	}
	if cfg.Workload.Profile == nil {
		return nil, fmt.Errorf("core: setup: missing workload profile")
	}
	if cfg.Workers < 1 || cfg.Iters < 1 {
		return nil, fmt.Errorf("core: setup: %d workers, %d iters", cfg.Workers, cfg.Iters)
	}
	x := &exp{cfg: cfg, eng: des.NewEngine()}
	x.net = simnet.New(x.eng, cfg.Cluster)
	if cfg.Tracer != nil {
		x.net.SetTracer(cfg.Tracer)
	}
	if !cfg.Faults.Empty() {
		x.inj = fault.NewInjector(cfg.Faults, cfg.Workers, cfg.Cluster.Machines,
			cfg.Workload.MeanIterSec(), cfg.Seed)
		x.net.SetFaults(x.inj)
		x.restarted = make([]bool, cfg.Workers)
		x.syncFrom = make([]int, cfg.Workers)
	}
	root := rng.New(cfg.Seed)
	_ = root.Split(1) // label 1 is reserved for model initialization streams
	shardRoot := root.Split(2)
	jitterRoot := root.Split(3)
	algoRoot := root.Split(4)

	// Workers first so worker w has node ID w.
	for w := 0; w < cfg.Workers; w++ {
		x.workerNode = append(x.workerNode, x.net.AddNode(cfg.Cluster.MachineOfWorker(w)).ID)
		x.jitterRNG = append(x.jitterRNG, jitterRoot.Split(uint64(w)))
		x.algoRNG = append(x.algoRNG, algoRoot.Split(uint64(w)))
	}

	// Gossip overlay. Label 5 comes after the four established streams so
	// configs without an overlay keep bit-identical results; the generator
	// is seeded once and shared read-only by every worker.
	if cfg.Overlay != "" {
		seed := root.Split(5).Uint64()
		var (
			ov  *topo.Overlay
			err error
		)
		switch cfg.Overlay {
		case "kregular":
			ov, err = topo.RandomRegular(cfg.Workers, cfg.OverlayDegree, seed)
		case "smallworld":
			chords := cfg.Workers * (cfg.OverlayDegree - 2) / 2
			ov, err = topo.SmallWorld(cfg.Workers, chords, seed)
		}
		if err != nil {
			panic(fmt.Sprintf("overlay: %v", err)) // Validate vetted feasibility
		}
		x.overlay = ov
	}

	// Replicas. Every replica re-derives the SAME initialization stream
	// (seed → Split(1)) so all workers start with identical weights, as the
	// algorithms assume.
	x.reps = make([]*replica, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		if cfg.Real != nil {
			ws := rng.New(cfg.Seed).Split(1)
			x.reps[w] = newRealReplica(w, cfg, ws, shardRoot.Split(uint64(w)))
		} else {
			x.reps[w] = newCostReplica(w)
		}
	}

	// Exchange-vector geometry.
	if cfg.Real != nil {
		m := x.reps[0].model
		x.segments = m.Segments()
		x.vecLen = m.NumParams()
		x.byteScale = float64(cfg.Workload.Profile.TotalBytes()) / float64(x.vecLen*costmodel.BytesPerParam)
	} else {
		x.segments = cfg.Workload.Profile.Segments()
		x.vecLen = int(cfg.Workload.Profile.TotalParams())
		x.byteScale = 1
	}

	// PS shards (centralized algorithms only).
	if cfg.Algo.Centralized() {
		switch cfg.Sharding {
		case ShardLayerWise:
			x.assign = ps.LayerWise(x.segments, cfg.Shards)
		case ShardBalanced:
			x.assign = ps.Balanced(x.vecLen, cfg.Shards)
		default:
			x.assign = ps.Single(x.vecLen)
		}
		x.loc = ps.NewLocator(x.assign)
		for s := range x.assign {
			machine := s % cfg.Cluster.Machines
			x.psNode = append(x.psNode, x.net.AddNode(machine).ID)
		}
		if cfg.Real != nil {
			x.global = ps.NewGlobal(x.reps[0].params(), cfg.Momentum, cfg.WeightDecay)
		} else {
			x.global = ps.NewCostOnlyGlobal()
		}
	}

	// DGC compressors. The PS applies sparse updates with a plain
	// (momentum-free) step — momentum lives in the compressor — via
	// Global.ApplySparse, which bypasses the optimizer state.
	if cfg.DGC != nil {
		if cfg.Real != nil {
			dcfg := *cfg.DGC
			if cfg.Algo == SSP {
				// SSP transmits locally applied *updates*, which already
				// carry the worker optimizer's momentum; DGC's momentum
				// correction would apply it twice and destabilize training.
				dcfg.NoMomentumCorrection = true
			}
			for w := 0; w < cfg.Workers; w++ {
				x.dgc = append(x.dgc, grad.NewCompressor(dcfg, x.vecLen))
			}
		}
		x.dgcIter = make([]int, cfg.Workers)
	}
	x.gatherDoneAt = make([]des.Time, cfg.Cluster.Machines)

	if cfg.Real != nil {
		x.evalModel = cfg.Real.Factory(rng.New(cfg.Seed).Split(1))
		// The eval model alternates between eval-sized batches; its own
		// arena recycles the layer scratch across evals.
		x.evalModel.SetArena(tensor.NewArena())
	}

	x.col = metrics.NewCollector(cfg.Workers)
	return x, nil
}

// bytesFor converts a parameter count of the exchanged vector into
// paper-scale wire bytes.
func (x *exp) bytesFor(nParams int) int64 {
	return int64(float64(nParams*costmodel.BytesPerParam) * x.byteScale)
}

// fullBytes is the wire size of one full gradient/parameter message.
func (x *exp) fullBytes() int64 { return x.bytesFor(x.vecLen) }

// shardBytes is the wire size of shard s's segment.
func (x *exp) shardBytes(s int) int64 { return x.bytesFor(x.assign.Params(s)) }

// inbox returns worker w's mailbox.
func (x *exp) inbox(w int) *des.Queue[simnet.Msg] {
	return x.net.Node(x.workerNode[w]).Inbox
}

// psInbox returns shard s's mailbox.
func (x *exp) psInbox(s int) *des.Queue[simnet.Msg] {
	return x.net.Node(x.psNode[s]).Inbox
}

// machineGroup returns the node IDs of workers sharing worker w's machine
// (only those that exist given cfg.Workers), in worker order.
func (x *exp) machineGroup(w int) []int {
	m := x.cfg.Cluster.MachineOfWorker(w)
	var g []int
	for _, ww := range x.cfg.Cluster.WorkersOnMachine(m) {
		if ww < x.cfg.Workers {
			g = append(g, x.workerNode[ww])
		}
	}
	return g
}

// computePhase advances virtual time by one jittered iteration and issues
// the real gradient computation. The numeric work is submitted to the
// compute pool *before* the virtual-time sleep, so while this process
// sleeps, other simulated workers' passes run concurrently on real cores;
// the returned gradFuture joins the result where the algorithm first
// consumes the gradient. When overlap is true (wait-free BP and the caller
// will invoke sendGrads next) only the forward time is slept here —
// sendGrads interleaves the backward time with the per-shard sends.
// Iteration bookkeeping (iter counter, spread, breakdown, trace spans)
// stays on the engine thread at the post-sleep point, exactly where the
// old synchronous path did it, so metrics are pool-size-independent.
func (x *exp) computePhase(p *des.Proc, w int, overlap bool) (*gradFuture, float64) {
	wl := x.cfg.Workload
	j := wl.SampleMult(x.jitterRNG[w])
	if x.inj != nil {
		j *= x.inj.ComputeMult(w, p.Now())
	}
	mean := wl.MeanIterSec()
	start := p.Now()
	x.reps[w].beginCompute(x.pool)
	if overlap {
		fwd := mean / (1 + wl.BwdMult) * j
		p.Sleep(fwd)
	} else {
		p.Sleep(mean * j)
	}
	x.reps[w].iter++
	x.col.Workers[w].Breakdown.Add(metrics.Compute, p.Now()-start)
	if x.cfg.Tracer != nil {
		x.cfg.Tracer.Span("compute", "worker", start, p.Now(),
			x.cfg.Cluster.MachineOfWorker(w), w)
	}
	x.noteIterSpread()
	return &gradFuture{rep: x.reps[w]}, j
}

// gradFuture hands an algorithm driver its iteration's gradient. get joins
// the in-flight pass (nil in cost-only mode); the call site is the fixed
// event-trace point where the overlap window ends.
type gradFuture struct{ rep *replica }

func (g *gradFuture) get() []float32 { return g.rep.takeGrads() }

// noteIterSpread records the instantaneous gap between the fastest and
// slowest worker's iteration counters — the staleness the asynchronous
// algorithms admit and SSP bounds.
func (x *exp) noteIterSpread() {
	min, max := x.reps[0].iter, x.reps[0].iter
	for _, r := range x.reps[1:] {
		if r.iter < min {
			min = r.iter
		}
		if r.iter > max {
			max = r.iter
		}
	}
	if s := max - min; s > x.col.MaxSpread {
		x.col.MaxSpread = s
	}
}

// bwdTotal returns the jittered backward duration of one iteration.
func (x *exp) bwdTotal(jitter float64) des.Time {
	wl := x.cfg.Workload
	return wl.MeanIterSec() * wl.BwdMult / (1 + wl.BwdMult) * jitter
}

// bwdAvailability returns, per shard, the backward-pass completion offset
// (seconds from backward start, scaled by jitter) after which that shard's
// entire gradient is available. Backward runs from the last segment to the
// first, so a shard is available once backward has passed its lowest
// segment.
func (x *exp) bwdAvailability(jitter float64) []des.Time {
	wl := x.cfg.Workload
	totalBwd := wl.MeanIterSec() * wl.BwdMult / (1 + wl.BwdMult) * jitter
	// Cumulative backward time by flat offset: segment i completes after
	// all segments j > i have been processed plus its own time. Segment
	// times are proportional to costs: in cost-only mode use per-layer
	// FLOPs; in real mode approximate by parameter share.
	segDone := make([]des.Time, len(x.segments)) // completion offset of segment i
	weights := make([]float64, len(x.segments))
	var totalW float64
	for i, s := range x.segments {
		var w float64
		if x.cfg.Real == nil {
			w = x.cfg.Workload.Profile.Layers[i].FwdFLOPs
		} else {
			w = float64(s.Len)
		}
		weights[i] = w
		totalW += w
	}
	acc := 0.0
	for i := len(x.segments) - 1; i >= 0; i-- {
		acc += weights[i] / totalW * totalBwd
		segDone[i] = acc
	}
	avail := make([]des.Time, len(x.assign))
	for s, ranges := range x.assign {
		var t des.Time
		for _, r := range ranges {
			// find segments overlapping this range; completion is the max.
			for i, seg := range x.segments {
				if seg.Off < r.Off+r.Len && seg.Off+seg.Len > r.Off {
					if segDone[i] > t {
						t = segDone[i]
					}
				}
			}
		}
		avail[s] = t
	}
	return avail
}

// sendGrads transmits worker w's gradient to every PS shard, honoring
// wait-free BP (which interleaves the backward sleep with per-shard sends,
// ordered by when each shard's layers finish in the backward pass) and DGC
// (which compresses the payload and shrinks wire bytes). useDGC is false
// for intra-machine relays that are already aggregated. jitter is the
// compute-time multiplier from computePhase, used to pace the backward
// sleeps under wait-free BP.
// wfbp controls whether this send path applies the wait-free-BP
// choreography; callers disable it when the backward pass already completed
// (e.g. BSP leaders that gathered machine-local gradients first).
func (x *exp) sendGrads(p *des.Proc, w int, clock int, grads []float32, useDGC bool, jitter float64, wfbp bool) {
	cfg := x.cfg

	// DGC: compress once over the full vector; per-shard messages carry the
	// slice of sparse entries that falls in the shard's ranges.
	var sparse grad.Sparse
	kind := kindGrad
	ratio := 1.0
	if cfg.DGC != nil && useDGC {
		if x.dgc != nil {
			sparse = x.dgc[w].Compress(grads)
			ratio = float64(len(sparse.Idx)) / float64(x.vecLen)
		} else {
			ratio = costOnlyDGCRatio(cfg.DGC, x.dgcIter[w])
		}
		x.dgcIter[w]++
		kind = kindSparseGrad
	}

	// Gradient quantization (extension): apply the codec's round-trip loss
	// once and shrink every shard message to its wire footprint. Layered on
	// DGC the codec compresses the surviving sparse values (the quantization
	// error is not fed back into DGC residuals — it models what the receiver
	// reconstructs); alone it compresses the dense vector.
	quant := (cfg.Quantize8 || cfg.QuantizeF16) && useDGC
	roundTrip := grad.QuantizeRoundTrip
	if cfg.QuantizeF16 {
		roundTrip = grad.QuantizeF16RoundTrip
	}
	if quant {
		if kind == kindSparseGrad {
			if x.dgc != nil && len(sparse.Val) > 0 {
				qv := append([]float32(nil), sparse.Val...)
				roundTrip(qv)
				sparse.Val = qv
			}
		} else if grads != nil {
			qg := append([]float32(nil), grads...)
			roundTrip(qg)
			grads = qg
		}
	}

	// Split the sparse vector across shards in ONE pass via the locator —
	// probing every shard's range list per entry is O(shards·nnz) and
	// dominated setup at 256+ shards.
	var spIdx [][]int32
	var spVal [][]float32
	if kind == kindSparseGrad && x.dgc != nil {
		spIdx = make([][]int32, len(x.assign))
		spVal = make([][]float32, len(x.assign))
		for j, i := range sparse.Idx {
			if s := x.loc.Shard(int(i)); s >= 0 {
				spIdx[s] = append(spIdx[s], i)
				spVal[s] = append(spVal[s], sparse.Val[j])
			}
		}
	}

	// Dense payloads alias ONE shared copy: every shard reads only its own
	// (disjoint) ranges and never mutates, so per-shard full-vector copies
	// would cost O(shards·vecLen) for nothing. The copy isolates receivers
	// from the caller's reuse of grads.
	var dense []float32
	if kind == kindGrad && grads != nil {
		dense = append([]float32(nil), grads...)
	}

	var avail []des.Time
	if wfbp {
		avail = x.bwdAvailability(jitter)
	}
	bwdStart := p.Now()
	slept := des.Time(0)
	order := shardOrder(avail, len(x.assign))
	for _, s := range order {
		if wfbp {
			if d := avail[s] - slept; d > 0 {
				p.Sleep(d)
				slept = avail[s]
			}
		}
		msg := simnet.Msg{From: x.workerNode[w], To: x.psNode[s], Kind: kind, Clock: clock, Seg: s}
		if kind == kindSparseGrad {
			entry := 8.0 // 4 B index + 4 B float32 value, vs 4 B/element dense
			if quant {
				if cfg.Quantize8 {
					entry = 5 // 4 B index + 1 B int8 value (scale amortized)
				} else {
					entry = 6 // 4 B index + 2 B half value
				}
			}
			msg.Bytes = int64(float64(x.shardBytes(s)) * ratio * entry / 4)
			if msg.Bytes < 8 {
				msg.Bytes = 8
			}
			if x.dgc != nil {
				msg.SparseIdx = spIdx[s]
				msg.Vec = spVal[s]
			}
		} else {
			msg.Bytes = x.shardBytes(s)
			if quant {
				if cfg.Quantize8 {
					msg.Bytes = msg.Bytes/4 + 4
				} else {
					msg.Bytes = msg.Bytes / 2
				}
			}
			msg.Vec = dense // full vector; shard reads its ranges
		}
		x.net.Send(msg)
	}
	if wfbp {
		if d := x.bwdTotal(jitter) - slept; d > 0 {
			p.Sleep(d)
		}
		x.col.Workers[w].Breakdown.Add(metrics.Compute, p.Now()-bwdStart)
	}
}

// shardOrder returns shard indices ordered by availability (ascending); if
// avail is nil, natural order.
func shardOrder(avail []des.Time, n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if avail == nil {
		return order
	}
	// Stable so ties keep natural shard order — determinism matters, and the
	// previous insertion sort was O(shards²) per send at 256+ shards.
	sort.SliceStable(order, func(i, j int) bool { return avail[order[i]] < avail[order[j]] })
	return order
}

// costOnlyDGCRatio mirrors grad.Compressor.CurrentRatio for cost-only runs
// that track only the warm-up iteration count.
func costOnlyDGCRatio(cfg *grad.DGCConfig, iter int) float64 {
	if cfg.WarmupIters <= 0 || iter >= cfg.WarmupIters {
		return cfg.Ratio
	}
	return math.Pow(cfg.Ratio, float64(iter)/float64(cfg.WarmupIters))
}

// addRanges accumulates src into dst over the given flat ranges (both
// full-length vectors).
func addRanges(dst, src []float32, ranges []rangeT) {
	for _, r := range ranges {
		d := dst[r.Off : r.Off+r.Len]
		s := src[r.Off : r.Off+r.Len]
		for i, v := range s {
			d[i] += v
		}
	}
}

// psAggSleep models the shard-side processing cost of applying one message.
func psAggSleep(p *des.Proc, bytes int64) {
	p.Sleep(float64(bytes) / costmodel.AggRateBytesPerSec)
}

// snapshotMsg builds a shard→worker parameter reply for shard s. When DGC
// is active the reply wire size models a sparse refresh: the PS only ships
// the parameters touched since the worker's last sync — roughly the union
// of all workers' top-k updates over the pull period — because shipping the
// full dense model back would cancel most of what gradient compression
// saves. (The payload still carries the full vector in real mode; payload
// contents and wire size are decoupled throughout the simulator.)
func (x *exp) snapshotMsg(s, toNode int) simnet.Msg {
	bytes := x.shardBytes(s)
	if x.cfg.DGC != nil {
		ratio := costOnlyDGCRatio(x.cfg.DGC, x.meanDGCIter())
		period := 1
		if x.cfg.Algo == SSP {
			period = x.cfg.Staleness + 1
		}
		factor := 2 * ratio * float64(x.cfg.Workers) * float64(period)
		if factor < 1 {
			bytes = int64(float64(bytes) * factor)
			if bytes < 8 {
				bytes = 8
			}
		}
	}
	m := simnet.Msg{From: x.psNode[s], To: toNode, Kind: kindParams, Seg: s, Bytes: bytes}
	if x.global.MathOn() {
		vec := make([]float32, x.vecLen)
		x.global.Snapshot(x.assign[s], vec)
		m.Vec = vec
	}
	return m
}

// meanDGCIter returns the average per-worker compression iteration, used to
// evaluate the warm-up ratio from the PS side.
func (x *exp) meanDGCIter() int {
	if len(x.dgcIter) == 0 {
		return 0
	}
	sum := 0
	for _, v := range x.dgcIter {
		sum += v
	}
	return sum / len(x.dgcIter)
}

// evalGlobal evaluates the "global model" — PS params for centralized
// algorithms, the average of all replicas for decentralized ones — on the
// test set and appends a trace point. No-op in cost-only mode.
func (x *exp) evalGlobal(iter int) {
	if x.cfg.Real == nil {
		return
	}
	params := x.globalParams()
	x.evalModel.SetFlatParams(params)
	test := x.cfg.Real.Test
	n := test.N()
	if x.cfg.Real.EvalMax > 0 && x.cfg.Real.EvalMax < n {
		n = x.cfg.Real.EvalMax
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	xb, yb := test.Gather(idx, nil, nil)
	_, acc := x.evalModel.Evaluate(xb, yb)

	var loss float64
	cnt := 0
	for _, r := range x.reps {
		if r.lossInit {
			loss += r.lossEWMA
			cnt++
		}
	}
	if cnt > 0 {
		loss /= float64(cnt)
	}
	epoch := float64(iter*x.cfg.Real.Batch*x.cfg.Workers) / float64(x.cfg.Real.Train.N())
	tp := metrics.TracePoint{
		Iter:       iter,
		Epoch:      epoch,
		VirtualSec: x.eng.Now(),
		TrainLoss:  loss,
		TestErr:    1 - acc,
	}
	x.col.AddTrace(tp)
	if x.cfg.Progress != nil {
		x.cfg.Progress(tp)
	}
}

// globalParams returns the parameters of the evaluated global model.
func (x *exp) globalParams() []float32 {
	if x.global != nil && x.global.MathOn() {
		out := make([]float32, x.vecLen)
		copy(out, x.global.Params)
		return out
	}
	// Decentralized (or BSP-like without math): average of replicas.
	out := make([]float32, x.vecLen)
	cnt := 0
	for _, r := range x.reps {
		if !r.mathOn() {
			continue
		}
		p := r.params()
		for i, v := range p {
			out[i] += v
		}
		cnt++
	}
	if cnt > 0 {
		inv := 1 / float32(cnt)
		for i := range out {
			out[i] *= inv
		}
	}
	return out
}

// gate is called at the top of every worker iteration loop with the next
// iteration number. It polls ctx, then consults the fault schedule: a
// worker entering a dead window either sleeps out its restart delay and
// resumes at the first alive iteration (returned so the caller can skip
// ahead), or — with no restart, or none before the run ends — is done for
// good (ok = false; the caller should fall through to its finish path).
func (x *exp) gate(p *des.Proc, w, it int) (int, bool) {
	if x.ctx != nil {
		select {
		case <-x.ctx.Done():
			x.canceled = true
			return it, false
		default:
		}
	}
	if x.inj == nil || x.inj.AliveAtIter(w, it) {
		return it, true
	}
	x.col.Faults.Crashes++
	delay := x.inj.RestartDelay(w, it)
	x.crashLog = append(x.crashLog, crashRec{worker: w, at: p.Now(), restart: delay})
	next := x.inj.NextAliveIter(w, it)
	if next == 0 || next > x.cfg.Iters {
		x.col.Faults.LostIters += x.cfg.Iters - it + 1
		return it, false
	}
	x.col.Faults.LostIters += next - it
	p.Sleep(delay)
	x.col.Faults.Restarts++
	x.restarted[w] = true
	return next, true
}

// gateSync is gate's variant for faithful (non-elastic) synchronous
// algorithms, where a crash stalls the whole system: nobody advances past
// the barrier, so a restarted worker reruns the iteration it died at
// instead of skipping the dead window, and no iterations are lost. A crash
// without restart still terminates the worker for good.
func (x *exp) gateSync(p *des.Proc, w, it int) (int, bool) {
	if x.ctx != nil {
		select {
		case <-x.ctx.Done():
			x.canceled = true
			return it, false
		default:
		}
	}
	if x.inj == nil || it < x.syncFrom[w] || x.inj.AliveAtIter(w, it) {
		return it, true
	}
	x.col.Faults.Crashes++
	delay := x.inj.RestartDelay(w, it)
	x.crashLog = append(x.crashLog, crashRec{worker: w, at: p.Now(), restart: delay})
	next := x.inj.NextAliveIter(w, it)
	if next == 0 {
		x.col.Faults.LostIters += x.cfg.Iters - it + 1
		return it, false
	}
	p.Sleep(delay)
	x.col.Faults.Restarts++
	x.restarted[w] = true
	x.syncFrom[w] = next // the window [it, next) is served; rerun it late
	return it, true
}

// barrierGate picks the crash semantic for barrier-synchronized algorithms:
// elastic runs exclude dead ranks and skip their lost iterations; faithful
// runs stall at the barrier and rerun the round when the worker returns.
func (x *exp) barrierGate(p *des.Proc, w, it int) (int, bool) {
	if x.cfg.Elastic {
		return x.gate(p, w, it)
	}
	return x.gateSync(p, w, it)
}

// iterDone is the end-of-iteration bookkeeping shared by every algorithm.
func (x *exp) iterDone(w, iter int) {
	if x.restarted != nil && x.restarted[w] {
		x.col.Faults.RecoveredIters++
	}
	x.maybeEval(w, iter)
}

// aliveNodes returns the node IDs of workers alive at iteration it and the
// position of worker w among them (-1 if w itself is dead). Without
// elastic-mode fault injection every worker is a member.
func (x *exp) aliveNodes(it, w int) ([]int, int) {
	if x.inj == nil || !x.cfg.Elastic {
		return x.workerNode, w
	}
	self := -1
	var nodes []int
	for ww := 0; ww < x.cfg.Workers; ww++ {
		if x.inj.AliveAtIter(ww, it) {
			if ww == w {
				self = len(nodes)
			}
			nodes = append(nodes, x.workerNode[ww])
		}
	}
	return nodes, self
}

// aliveCount returns how many workers run iteration it (all of them
// without elastic-mode fault injection).
func (x *exp) aliveCount(it int) int {
	if x.inj == nil || !x.cfg.Elastic {
		return x.cfg.Workers
	}
	n := 0
	for ww := 0; ww < x.cfg.Workers; ww++ {
		if x.inj.AliveAtIter(ww, it) {
			n++
		}
	}
	return n
}

// maybeEval runs the periodic evaluation from worker 0's loop.
func (x *exp) maybeEval(w, iter int) {
	if w != 0 || x.cfg.Real == nil {
		return
	}
	ev := x.cfg.Real.EvalEvery
	if ev > 0 && iter%ev == 0 {
		x.evalGlobal(iter)
	}
}

// finish records completion for worker w.
func (x *exp) finish(w int) {
	x.col.Workers[w].Iters = x.reps[w].iter
	x.col.Workers[w].FinishedAt = x.eng.Now()
}

// Run executes the configured experiment to completion and returns its
// results. It is the package's main entry point. ctx cancellation is
// observed at worker iteration boundaries and aborts the run with the
// context's error; nil ctx means context.Background().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid config: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: run not started: %w", err)
	}
	x, err := setup(&cfg)
	if err != nil {
		return nil, err
	}
	x.ctx = ctx
	if cfg.PoolSize > 0 {
		x.pool = sched.NewPool(cfg.PoolSize)
		defer x.pool.Close()
	}
	switch cfg.Algo {
	case BSP:
		runBSP(x)
	case ASP:
		runASP(x)
	case SSP:
		runSSP(x)
	case EASGD:
		runEASGD(x)
	case ARSGD:
		runARSGD(x)
	case GoSGD:
		runGoSGD(x)
	case ADPSGD:
		runADPSGD(x)
	case DPSGD:
		runDPSGD(x)
	case AdaComm:
		runAdaComm(x)
	case Hogwild:
		runHogwild(x)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", cfg.Algo)
	}
	report := x.eng.Run(0)
	// Settle any pass a stalled process left in flight before touching
	// replica state (evalGlobal, replicaSpread read concurrently otherwise).
	for _, r := range x.reps {
		r.settle()
	}
	if x.canceled {
		x.eng.Kill()
		return nil, fmt.Errorf("core: run canceled: %w", ctx.Err())
	}
	stuck := x.eng.Stuck()
	if len(stuck) > 0 && !expectedStuck(cfg.Algo) && x.inj == nil {
		x.eng.Kill()
		return nil, fmt.Errorf("core: %s deadlocked at drain: %v", cfg.Algo, report)
	}

	// Honest accounting for workers stranded at a dead peer's barrier:
	// credit the iterations they did complete, but leave FinishedAt zero —
	// a hung run has no finish time, and its sustained throughput is zero.
	stalled := 0
	for w := range x.col.Workers {
		if x.col.Workers[w].FinishedAt == 0 {
			x.col.Workers[w].Iters = x.reps[w].iter
			stalled++
		}
	}

	res := &Result{
		StuckProcs:     stuck,
		StalledWorkers: stalled,
		Config:         cfg,
		Metrics:        x.col,
		Net:            x.net.Stats(),
		VirtualSec:     x.col.MakespanSec(),
	}
	if stalled == 0 {
		res.Throughput = x.col.ThroughputSamplesPerSec(cfg.Workload.Batch)
	}
	res.BytesPerIterPerWorker = float64(res.Net.TotalBytes) / float64(cfg.Iters*cfg.Workers)
	x.faultSpans()
	if cfg.Real != nil {
		// Skip the final evaluation if the periodic evaluator already
		// sampled the last iteration (avoids a duplicate trace point).
		if n := len(x.col.Trace); n == 0 || x.col.Trace[n-1].Iter != cfg.Iters {
			x.evalGlobal(cfg.Iters)
		}
		last := x.col.Trace[len(x.col.Trace)-1]
		res.FinalTestAcc = 1 - last.TestErr
		res.FinalTrainLoss = last.TrainLoss
		res.ReplicaSpreadL2 = x.replicaSpread()
		if cfg.CaptureParams {
			res.WorkerParams = make([][]float32, len(x.reps))
			for w, r := range x.reps {
				res.WorkerParams[w] = append([]float32(nil), r.params()...)
			}
		}
	}
	x.eng.Kill()
	return res, nil
}

// faultSpans emits the fault timeline onto the tracer: realized crashes
// (death to restart, or to the end of the run) and the scheduled network /
// slowdown windows, so a Perfetto view shows the outage against the
// training schedule.
func (x *exp) faultSpans() {
	if x.cfg.Tracer == nil || x.inj == nil {
		return
	}
	end := x.eng.Now()
	for _, cr := range x.crashLog {
		to := end
		if cr.restart > 0 && cr.at+cr.restart < end {
			to = cr.at + cr.restart
		}
		x.cfg.Tracer.Span(fmt.Sprintf("crash w%d", cr.worker), "fault",
			cr.at, to, x.cfg.Cluster.MachineOfWorker(cr.worker), cr.worker)
	}
	for i, e := range x.cfg.Faults.Events {
		if e.Kind == fault.Crash {
			continue
		}
		to := end
		if e.Duration > 0 && e.At+e.Duration < end {
			to = e.At + e.Duration
		}
		pid := 0
		switch e.Kind {
		case fault.Slow:
			pid = x.cfg.Cluster.MachineOfWorker(e.Worker)
		case fault.Degrade, fault.Drop:
			if e.Machine >= 0 {
				pid = e.Machine
			}
		case fault.Partition:
			pid = e.Machines[0]
		}
		x.cfg.Tracer.Span(e.String(), "fault", e.At, to, pid, 2000+i)
	}
}

// replicaSpread computes max_w ‖x_w − x̄‖ / ‖x̄‖ over the live replicas.
func (x *exp) replicaSpread() float64 {
	mean := make([]float64, x.vecLen)
	cnt := 0
	for _, r := range x.reps {
		if !r.mathOn() {
			return 0
		}
		for i, v := range r.params() {
			mean[i] += float64(v)
		}
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	var meanNorm float64
	for i := range mean {
		mean[i] /= float64(cnt)
		meanNorm += mean[i] * mean[i]
	}
	meanNorm = math.Sqrt(meanNorm)
	if meanNorm == 0 {
		return 0
	}
	var worst float64
	for _, r := range x.reps {
		var d float64
		for i, v := range r.params() {
			diff := float64(v) - mean[i]
			d += diff * diff
		}
		if d = math.Sqrt(d); d > worst {
			worst = d
		}
	}
	return worst / meanNorm
}

// GradientBytes returns the traffic spent on gradient messages (dense plus
// DGC-sparse) — the quantity DGC compresses.
func (r *Result) GradientBytes() int64 {
	return r.Net.BytesByKind[kindGrad] + r.Net.BytesByKind[kindSparseGrad]
}

// ParamReplyBytes returns the traffic spent on PS→worker parameter replies.
func (r *Result) ParamReplyBytes() int64 {
	return r.Net.BytesByKind[kindParams]
}

// expectedStuck reports whether leftover blocked server procs are normal
// for the algorithm (PS shards and passive peers outlive the workers).
func expectedStuck(a Algo) bool {
	switch a {
	case ASP, SSP, EASGD, AdaComm, GoSGD, ADPSGD, BSP:
		return true
	}
	return false
}

// collective runs a comm.Collective and treats any error as a simulation
// invariant violation: the experiment built the opts itself, so a rejection
// or protocol mismatch is a bug, not an input problem.
func collective(p *des.Proc, o comm.CollectiveOpts) ([]float32, des.Time) {
	out, wire, err := comm.Collective(p, o)
	if err != nil {
		panic(fmt.Sprintf("core: collective failed: %v", err))
	}
	return out, wire
}
