package core

import (
	"context"
	"testing"

	"disttrain/internal/costmodel"
)

func TestDPSGDRunsCostOnly(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		res, err := Run(context.Background(), costConfig(DPSGD, w, 10))
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if res.Metrics.TotalIters() != w*10 {
			t.Fatalf("w=%d: iters %d", w, res.Metrics.TotalIters())
		}
	}
}

func TestDPSGDLearns(t *testing.T) {
	res, err := Run(context.Background(), realConfig(DPSGD, 4, 150, 17))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTestAcc < 0.8 {
		t.Fatalf("D-PSGD acc %.3f", res.FinalTestAcc)
	}
}

func TestDPSGDIsSynchronous(t *testing.T) {
	cfg := costConfig(DPSGD, 8, 25)
	cfg.Workload.GPU.StragglerProb = 0.2
	cfg.Workload.GPU.StragglerMult = 5
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ring lockstep: a worker can run at most ~2 iterations ahead of a
	// distant straggler (slack propagates hop by hop, so the *global*
	// spread can reach a few iterations on a long ring but stays far below
	// async drift).
	if res.Metrics.MaxSpread > 4 {
		t.Fatalf("ring spread %d", res.Metrics.MaxSpread)
	}
}

func TestDPSGDCommComplexity(t *testing.T) {
	// Each worker sends 2M per iteration: total 2MN.
	const workers = 6
	const iters = 20
	res, err := Run(context.Background(), costConfig(DPSGD, workers, iters))
	if err != nil {
		t.Fatal(err)
	}
	M := float64(costmodel.ResNet50().TotalBytes())
	got := float64(res.Net.TotalBytes) / iters
	want := 2 * M * workers
	if got < 0.95*want || got > 1.05*want {
		t.Fatalf("bytes/iter = %.3e, want ~%.3e", got, want)
	}
}

func TestDPSGDCheaperThanAllReducePerRound(t *testing.T) {
	// The point of decentralized ring mixing: per-iteration traffic is
	// within a constant of AR-SGD but latency-per-round is lower because no
	// global barrier chain of 2(N-1) sequential steps exists.
	dp, err := Run(context.Background(), costConfig(DPSGD, 16, 15))
	if err != nil {
		t.Fatal(err)
	}
	ar, err := Run(context.Background(), costConfig(ARSGD, 16, 15))
	if err != nil {
		t.Fatal(err)
	}
	if dp.VirtualSec >= ar.VirtualSec {
		t.Fatalf("D-PSGD round (%.2fs) not faster than AR-SGD (%.2fs)", dp.VirtualSec, ar.VirtualSec)
	}
}

func TestDPSGDReplicasStayClose(t *testing.T) {
	// Ring mixing must keep replicas in one neighborhood: after training,
	// the max pairwise parameter distance should be small relative to the
	// parameter norm.
	res, err := Run(context.Background(), realConfig(DPSGD, 4, 100, 23))
	if err != nil {
		t.Fatal(err)
	}
	_ = res // distances are internal; accuracy of the averaged model serves
	// as the proxy — a diverged set of replicas cannot average to >0.8.
	if res.FinalTestAcc < 0.8 {
		t.Fatalf("averaged model acc %.3f suggests replica divergence", res.FinalTestAcc)
	}
}
