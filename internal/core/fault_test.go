package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"disttrain/internal/fault"
)

// faultConfig is costConfig plus a schedule: worker 1 crashes at iteration
// 5 and returns two nominal iterations later, and worker 2 computes 3x
// slower for a while.
func faultConfig(algo Algo, workers, iters int, elastic bool) Config {
	cfg := costConfig(algo, workers, iters)
	mean := cfg.Workload.MeanIterSec()
	cfg.Elastic = elastic
	cfg.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Crash, AtIter: 5, Worker: 1, Restart: 2 * mean},
		{Kind: fault.Slow, At: mean, Worker: 2, Factor: 3, Duration: 4 * mean},
	}}
	return cfg
}

// TestFaultReproducibility checks the engine's core guarantee: the same
// (config, schedule, seed) triple yields byte-identical exported results.
func TestFaultReproducibility(t *testing.T) {
	for _, algo := range Algos() {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			var out [2]bytes.Buffer
			for i := range out {
				res, err := Run(context.Background(), faultConfig(algo, 8, 20, true))
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				if err := res.WriteJSON(&out[i]); err != nil {
					t.Fatal(err)
				}
				if res.Metrics.Faults.Crashes == 0 {
					t.Fatalf("run %d: crash schedule did not fire", i)
				}
			}
			if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
				t.Fatalf("same seed+schedule produced different results:\n%s\n---\n%s",
					out[0].String(), out[1].String())
			}
		})
	}
}

// TestDropReproducibility exercises the probabilistic-drop RNG stream: the
// Bernoulli draws consume randomness, but in deterministic engine order, so
// two runs still agree bit-for-bit.
func TestDropReproducibility(t *testing.T) {
	mk := func() Config {
		cfg := costConfig(ASP, 8, 20)
		cfg.Faults = &fault.Schedule{Events: []fault.Event{
			{Kind: fault.Drop, At: 0, Machine: -1, Prob: 0.2},
		}}
		return cfg
	}
	var out [2]bytes.Buffer
	for i := range out {
		res, err := Run(context.Background(), mk())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Net.DroppedMsgs == 0 {
			t.Fatalf("run %d: no messages dropped at p=0.2", i)
		}
		if err := res.WriteJSON(&out[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
		t.Fatal("same seed+drop schedule produced different results")
	}
}

// TestBSPCollapseADPSGDSurvives is the paper-consistent fault story: a
// permanent mid-run crash freezes faithful BSP at the barrier (sustained
// throughput zero), while AD-PSGD — whose gossip partners simply re-draw
// away from the dead peer — finishes within 10% of its fault-free time.
func TestBSPCollapseADPSGDSurvives(t *testing.T) {
	crash := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Crash, AtIter: 10, Worker: 3},
	}}

	bsp := costConfig(BSP, 8, 30)
	bsp.Faults = crash
	rb, err := Run(context.Background(), bsp)
	if err != nil {
		t.Fatalf("faithful BSP under crash: %v", err)
	}
	if rb.StalledWorkers == 0 {
		t.Fatal("faithful BSP: expected stranded workers after a permanent crash")
	}
	if rb.Throughput != 0 {
		t.Fatalf("faithful BSP: hung run reported throughput %v, want 0", rb.Throughput)
	}

	// Elastic BSP excludes the dead rank and keeps going.
	ebsp := costConfig(BSP, 8, 30)
	ebsp.Faults = crash
	ebsp.Elastic = true
	re, err := Run(context.Background(), ebsp)
	if err != nil {
		t.Fatalf("elastic BSP under crash: %v", err)
	}
	if re.StalledWorkers != 0 || re.Throughput == 0 {
		t.Fatalf("elastic BSP: stalled=%d throughput=%v, want a completed run",
			re.StalledWorkers, re.Throughput)
	}

	clean, err := Run(context.Background(), costConfig(ADPSGD, 8, 30))
	if err != nil {
		t.Fatal(err)
	}
	ad := costConfig(ADPSGD, 8, 30)
	ad.Faults = crash
	rf, err := Run(context.Background(), ad)
	if err != nil {
		t.Fatalf("AD-PSGD under crash: %v", err)
	}
	if rf.StalledWorkers != 0 {
		t.Fatalf("AD-PSGD: %d stalled workers, want 0", rf.StalledWorkers)
	}
	if rf.VirtualSec > clean.VirtualSec*1.10 {
		t.Fatalf("AD-PSGD under crash took %.3fs vs %.3fs fault-free (> +10%%)",
			rf.VirtualSec, clean.VirtualSec)
	}
}

// TestCrashRestartAccounting verifies the fault counters of a crash-with-
// restart run: one crash, one restart, the dead window's iterations lost
// and the post-restart iterations counted as recovered.
func TestCrashRestartAccounting(t *testing.T) {
	res, err := Run(context.Background(), faultConfig(ARSGD, 4, 20, true))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Metrics.Faults
	if f.Crashes != 1 || f.Restarts != 1 {
		t.Fatalf("crashes=%d restarts=%d, want 1/1", f.Crashes, f.Restarts)
	}
	if f.LostIters <= 0 || f.RecoveredIters <= 0 {
		t.Fatalf("lost=%d recovered=%d, want both > 0", f.LostIters, f.RecoveredIters)
	}
	// Faithful mode stalls instead of losing iterations: the restarted
	// worker reruns the round the whole system waited on.
	rf, err := Run(context.Background(), faultConfig(ARSGD, 4, 20, false))
	if err != nil {
		t.Fatal(err)
	}
	if rf.Metrics.Faults.LostIters != 0 {
		t.Fatalf("faithful restart lost %d iters, want 0", rf.Metrics.Faults.LostIters)
	}
	if got := rf.Metrics.TotalIters(); got != 80 {
		t.Fatalf("faithful restart: total iters %d, want 80", got)
	}
	if rf.VirtualSec <= res.VirtualSec {
		t.Fatalf("faithful stall (%.3fs) should cost more time than elastic skip (%.3fs)",
			rf.VirtualSec, res.VirtualSec)
	}
}

// TestValidateRejectsMalformedFaults feeds every malformed-schedule class
// through the CLI-reachable Validate path and requires an error, not a
// panic.
func TestValidateRejectsMalformedFaults(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"worker out of range", func(c *Config) {
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.Crash, Worker: 99}}}
		}},
		{"negative start", func(c *Config) {
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.Drop, At: -1, Machine: -1, Prob: 0.1}}}
		}},
		{"drop prob too high", func(c *Config) {
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.Drop, Machine: -1, Prob: 1.5}}}
		}},
		{"slow factor zero", func(c *Config) {
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.Slow, Worker: 0, Factor: 0}}}
		}},
		{"partition not a proper subset", func(c *Config) {
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.Partition, Machines: []int{0, 1}}}}
		}},
		{"unknown kind", func(c *Config) {
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: "meltdown"}}}
		}},
		{"negative barrier timeout", func(c *Config) {
			c.BarrierTimeoutSec = -1
		}},
		{"unsupported algorithm", func(c *Config) {
			c.Algo = Hogwild
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.Crash, Worker: 0}}}
		}},
		{"local agg with crash", func(c *Config) {
			c.LocalAgg = true
			c.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.Crash, Worker: 0}}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := costConfig(BSP, 8, 5)
			// Paper56G(8) has 2 machines (4 workers each), so the 2-machine
			// partition above covers every machine — a rejected cut.
			tc.mut(&cfg)
			if _, err := Run(context.Background(), cfg); err == nil {
				t.Fatal("malformed config accepted")
			} else if strings.Contains(err.Error(), "panic") {
				t.Fatalf("panic leaked into error: %v", err)
			}
		})
	}
}

// TestRunContext covers the context plumbing: nil contexts run, canceled
// contexts abort with the cause attached.
func TestRunContext(t *testing.T) {
	if _, err := Run(nil, costConfig(BSP, 4, 3)); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, costConfig(BSP, 4, 3))
	if err == nil {
		t.Fatal("canceled ctx accepted")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("error %q does not mention cancellation", err)
	}
}

// TestNoFaultRunsUnchanged guards the no-fault fast path: attaching the
// fault machinery must not perturb a fault-free run's results (RNG streams,
// event order, virtual time are all preserved).
func TestNoFaultRunsUnchanged(t *testing.T) {
	var base, empty bytes.Buffer
	r1, err := Run(context.Background(), costConfig(ARSGD, 8, 10))
	if err != nil {
		t.Fatal(err)
	}
	r1.WriteJSON(&base)
	cfg := costConfig(ARSGD, 8, 10)
	cfg.Faults = &fault.Schedule{} // present but empty: injector stays off
	r2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2.WriteJSON(&empty)
	if !bytes.Equal(base.Bytes(), empty.Bytes()) {
		t.Fatal("an empty fault schedule changed the run")
	}
}
