package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"disttrain/internal/costmodel"
	"disttrain/internal/data"
	"disttrain/internal/grad"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

// TestSyncAlgorithmsBoundSpread verifies that BSP and AR-SGD never let any
// worker run more than one iteration ahead, even with heavy stragglers.
func TestSyncAlgorithmsBoundSpread(t *testing.T) {
	for _, algo := range []Algo{BSP, ARSGD} {
		cfg := costConfig(algo, 8, 20)
		cfg.Workload.GPU.StragglerProb = 0.2
		cfg.Workload.GPU.StragglerMult = 5
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics.MaxSpread > 1 {
			t.Fatalf("%s: spread %d > 1 despite synchronization", algo, res.Metrics.MaxSpread)
		}
	}
}

// TestSSPBoundsSpreadASPDoesNot: with stragglers, SSP's realized staleness
// must respect its threshold while ASP's floats above it.
func TestSSPBoundsSpreadASPDoesNot(t *testing.T) {
	mk := func(algo Algo, s int) Config {
		cfg := costConfig(algo, 8, 40)
		cfg.Staleness = s
		cfg.Workload.GPU.StragglerProb = 0.25
		cfg.Workload.GPU.StragglerMult = 8
		return cfg
	}
	ssp, err := Run(context.Background(), mk(SSP, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Realized spread can exceed s by a small in-flight margin (a worker
	// may have started its next iteration while the clock ack is on the
	// wire), but it must stay close to the bound.
	if ssp.Metrics.MaxSpread > 2+2 {
		t.Fatalf("SSP(s=2) spread = %d", ssp.Metrics.MaxSpread)
	}
	asp, err := Run(context.Background(), mk(ASP, 0))
	if err != nil {
		t.Fatal(err)
	}
	if asp.Metrics.MaxSpread <= ssp.Metrics.MaxSpread {
		t.Fatalf("ASP spread %d not above SSP's %d under stragglers",
			asp.Metrics.MaxSpread, ssp.Metrics.MaxSpread)
	}
}

// TestStragglersHurtSyncMoreThanAsync reproduces the paper's straggler
// analysis: a slow worker stalls the whole BSP round but barely affects
// AD-PSGD, whose exchanges don't wait for stragglers.
func TestStragglersHurtSyncMoreThanAsync(t *testing.T) {
	run := func(algo Algo, straggle bool) float64 {
		cfg := costConfig(algo, 8, 25)
		if straggle {
			cfg.Workload.GPU.StragglerProb = 0.1
			cfg.Workload.GPU.StragglerMult = 6
		}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput
	}
	bspLoss := 1 - run(BSP, true)/run(BSP, false)
	adLoss := 1 - run(ADPSGD, true)/run(ADPSGD, false)
	if bspLoss <= adLoss {
		t.Fatalf("straggler throughput loss: BSP %.2f vs AD-PSGD %.2f — sync should hurt more", bspLoss, adLoss)
	}
}

// TestADPSGDUnconstrainedDeadlocks demonstrates the deadlock the bipartite
// graph exists to prevent: with naive symmetric exchanges, communication
// processes end up in a wait-for cycle and never finish, while the
// bipartite variant drains cleanly.
func TestADPSGDUnconstrainedDeadlocks(t *testing.T) {
	naive := costConfig(ADPSGD, 6, 30)
	naive.ADPSGDNoBipartite = true
	res, err := Run(context.Background(), naive)
	if err != nil {
		t.Fatal(err)
	}
	stuckComm := 0
	for _, name := range res.StuckProcs {
		if strings.HasPrefix(name, "adpsgd-comm") {
			stuckComm++
		}
	}
	if stuckComm == 0 {
		t.Fatalf("expected deadlocked comm processes, stuck = %v", res.StuckProcs)
	}

	bipartite, err := Run(context.Background(), costConfig(ADPSGD, 6, 30))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range bipartite.StuckProcs {
		if strings.HasPrefix(name, "adpsgd-comm") {
			t.Fatalf("bipartite AD-PSGD comm proc stuck: %v", bipartite.StuckProcs)
		}
	}
}

// TestQuantize8ReducesTrafficKeepsAccuracy checks the 8-bit extension:
// gradient bytes drop ~4x and the model still trains.
func TestQuantize8ReducesTrafficKeepsAccuracy(t *testing.T) {
	base := realConfig(BSP, 4, 150, 31)
	r1, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	q := realConfig(BSP, 4, 150, 31)
	q.Quantize8 = true
	r2, err := Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r2.GradientBytes()) / float64(r1.GradientBytes())
	if ratio > 0.27 || ratio < 0.23 {
		t.Fatalf("quantized gradient bytes ratio %.3f, want ~0.25", ratio)
	}
	if r2.FinalTestAcc < r1.FinalTestAcc-0.05 {
		t.Fatalf("quantization hurt accuracy: %.3f vs %.3f", r2.FinalTestAcc, r1.FinalTestAcc)
	}
}

func TestQuantize8Validation(t *testing.T) {
	cfg := costConfig(EASGD, 4, 5)
	cfg.Quantize8 = true
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("quantization on parameter-sending algorithm accepted")
	}
	cfgF := costConfig(EASGD, 4, 5)
	cfgF.QuantizeF16 = true
	if _, err := Run(context.Background(), cfgF); err == nil {
		t.Fatal("f16 quantization on parameter-sending algorithm accepted")
	}
	both := costConfig(ASP, 4, 5)
	both.Quantize8 = true
	both.QuantizeF16 = true
	if _, err := Run(context.Background(), both); err == nil {
		t.Fatal("two quantization codecs at once accepted")
	}
	// Quantization layers on DGC: the sparse values are quantized after
	// compression, so the combination is valid and must run.
	cfg2 := costConfig(ASP, 4, 5)
	cfg2.Quantize8 = true
	d := grad.DefaultDGC(0.9, 0)
	cfg2.DGC = &d
	if _, err := Run(context.Background(), cfg2); err != nil {
		t.Fatalf("DGC + quantization rejected: %v", err)
	}
	cfg3 := costConfig(ASP, 4, 5)
	cfg3.ADPSGDNoBipartite = true
	if _, err := Run(context.Background(), cfg3); err == nil {
		t.Fatal("NoBipartite on ASP accepted")
	}
}

// TestQuantizeF16ReducesTraffic mirrors the int8 test for the fp16 codec:
// dense gradient bytes halve and accuracy holds.
func TestQuantizeF16ReducesTraffic(t *testing.T) {
	base := realConfig(BSP, 4, 150, 31)
	r1, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	q := realConfig(BSP, 4, 150, 31)
	q.QuantizeF16 = true
	r2, err := Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(r2.GradientBytes()) / float64(r1.GradientBytes())
	if ratio > 0.52 || ratio < 0.48 {
		t.Fatalf("f16 gradient bytes ratio %.3f, want ~0.5", ratio)
	}
	if r2.FinalTestAcc < r1.FinalTestAcc-0.05 {
		t.Fatalf("f16 quantization hurt accuracy: %.3f vs %.3f", r2.FinalTestAcc, r1.FinalTestAcc)
	}
}

// TestStragglerSampling sanity-checks the injected distribution.
func TestStragglerSampling(t *testing.T) {
	wl := costmodel.NewWorkload(costmodel.ResNet50(), costmodel.TitanV(), 128)
	wl.GPU.StragglerProb = 0.5
	wl.GPU.StragglerMult = 10
	cfg := costConfig(BSP, 4, 30)
	cfg.Workload = wl
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With half the iterations 10x slower, the run must take far longer
	// than the straggler-free baseline.
	clean, err := Run(context.Background(), costConfig(BSP, 4, 30))
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualSec < 2*clean.VirtualSec {
		t.Fatalf("stragglers barely slowed BSP: %.1f vs %.1f", res.VirtualSec, clean.VirtualSec)
	}
}

// TestDecentralizedTrafficIsLessBursty quantifies the paper's observation
// that AD-PSGD's communication "is distributed into multiple workers, not a
// specific worker (e.g. PS), which helps utilize the network bandwidth
// better": the per-machine NIC load spread of AD-PSGD must be far more even
// than unsharded ASP's PS hot spot.
func TestDecentralizedTrafficIsLessBursty(t *testing.T) {
	asp, err := Run(context.Background(), costConfig(ASP, 16, 15))
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Run(context.Background(), costConfig(ADPSGD, 16, 15))
	if err != nil {
		t.Fatal(err)
	}
	aspSpread := asp.Net.UtilizationSpread()
	adSpread := ad.Net.UtilizationSpread()
	if adSpread >= aspSpread {
		t.Fatalf("utilization spread: AD-PSGD %.3f not below ASP %.3f", adSpread, aspSpread)
	}
	if aspSpread < 0.3 {
		t.Fatalf("ASP hot spot too mild (%.3f) — PS machine should dominate", aspSpread)
	}
}

// TestTreeAllReduceOption checks the AR-SGD tree variant: identical math
// (same final accuracy as the ring, which computes the same sum) but
// different traffic (tree moves O(M log N) per round vs the ring's 2M(N-1)
// total).
func TestTreeAllReduceOption(t *testing.T) {
	ring, err := Run(context.Background(), realConfig(ARSGD, 4, 60, 81))
	if err != nil {
		t.Fatal(err)
	}
	treeCfg := realConfig(ARSGD, 4, 60, 81)
	treeCfg.TreeAllReduce = true
	tree, err := Run(context.Background(), treeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ring.FinalTestAcc-tree.FinalTestAcc) > 0.02 {
		t.Fatalf("tree changed the math: %.4f vs %.4f", tree.FinalTestAcc, ring.FinalTestAcc)
	}
	if tree.Net.TotalBytes == ring.Net.TotalBytes {
		t.Fatal("tree and ring moved identical bytes — dispatch not wired")
	}
}

func TestTreeAllReduceValidation(t *testing.T) {
	cfg := costConfig(BSP, 4, 5)
	cfg.TreeAllReduce = true
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("tree allreduce accepted on BSP")
	}
}

// TestStalenessDampingImprovesASP: at a scale where raw ASP's momentum herd
// degrades accuracy, damping each gradient by its staleness must recover
// some of it (and must never make things worse).
func TestStalenessDampingImprovesASP(t *testing.T) {
	base := realConfig(ASP, 8, 80, 82)
	base.LR = baseLRSchedule(0.4) // deliberately hot to expose staleness
	r1, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	damped := realConfig(ASP, 8, 80, 82)
	damped.LR = baseLRSchedule(0.4)
	damped.StalenessDamping = true
	r2, err := Run(context.Background(), damped)
	if err != nil {
		t.Fatal(err)
	}
	if r2.FinalTestAcc < r1.FinalTestAcc-0.02 {
		t.Fatalf("damping hurt: %.4f vs %.4f", r2.FinalTestAcc, r1.FinalTestAcc)
	}
}

func TestStalenessDampingValidation(t *testing.T) {
	cfg := costConfig(BSP, 4, 5)
	cfg.StalenessDamping = true
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("staleness damping accepted on BSP")
	}
}

// TestAugmentationWiredThrough: augmented training must change the
// trajectory (different batches) while still learning the task.
func TestAugmentationWiredThrough(t *testing.T) {
	shapes := func(aug bool) Config {
		r := rng.New(2100)
		ds := data.GenShapes16(r, 800)
		tr, te := ds.Split(r.Split(1), 160)
		cfg := costConfig(BSP, 4, 120)
		cfg.Seed = 91
		cfg.LR = opt.NewPaperSchedule(0.005, 4, 6, []int{60, 100})
		cfg.WeightDecay = 1e-4
		cfg.Real = &RealConfig{
			Factory: func(rr *rng.RNG) *nn.Model { return nn.NewMiniCNN(rr, data.ShapeClasses) },
			Train:   tr,
			Test:    te,
			Batch:   8,
		}
		if aug {
			cfg.Real.Augment = &data.Augment{MaxShift: 2, FlipProb: 0.5}
		}
		return cfg
	}
	plain, err := Run(context.Background(), shapes(false))
	if err != nil {
		t.Fatal(err)
	}
	aug, err := Run(context.Background(), shapes(true))
	if err != nil {
		t.Fatal(err)
	}
	if plain.FinalTrainLoss == aug.FinalTrainLoss {
		t.Fatal("augmentation had no effect on training")
	}
	if aug.FinalTestAcc < 0.6 {
		t.Fatalf("augmented run failed to learn: %.3f", aug.FinalTestAcc)
	}
}

// TestGoSGDSenderNeverBlocks pins the "asymmetric" property of GoSGD: a
// sender proceeds immediately, so the run's makespan is governed purely by
// compute time, independent of gossip frequency.
func TestGoSGDSenderNeverBlocks(t *testing.T) {
	quiet := costConfig(GoSGD, 8, 25)
	quiet.GossipP = 0.01
	r1, err := Run(context.Background(), quiet)
	if err != nil {
		t.Fatal(err)
	}
	chatty := costConfig(GoSGD, 8, 25)
	chatty.GossipP = 1
	r2, err := Run(context.Background(), chatty)
	if err != nil {
		t.Fatal(err)
	}
	// 100x the gossip volume must not meaningfully change the makespan.
	if r2.VirtualSec > r1.VirtualSec*1.05 {
		t.Fatalf("gossip frequency changed makespan: %.3f vs %.3f — sender blocked somewhere",
			r2.VirtualSec, r1.VirtualSec)
	}
}

// TestEASGDDefaultMovingRate verifies the 0.9/N default from the EASGD
// paper's β = N·α = 0.9 rule.
func TestEASGDDefaultMovingRate(t *testing.T) {
	cfg := costConfig(EASGD, 8, 5)
	cfg.MovingRate = 0
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 / 8
	if math.Abs(res.Config.MovingRate-want) > 1e-12 {
		t.Fatalf("default alpha = %v, want %v", res.Config.MovingRate, want)
	}
}

// TestASPNoBarrier: an ASP worker's progress must not depend on a straggling
// peer — unlike BSP, where one slow worker stalls the world every round.
func TestASPNoBarrier(t *testing.T) {
	mk := func(algo Algo) Config {
		cfg := costConfig(algo, 8, 20)
		// Worker 0's jitter stream will occasionally straggle hard.
		cfg.Workload.GPU.StragglerProb = 0.3
		cfg.Workload.GPU.StragglerMult = 10
		return cfg
	}
	asp, err := Run(context.Background(), mk(ASP))
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := Run(context.Background(), mk(BSP))
	if err != nil {
		t.Fatal(err)
	}
	minA, maxA := asp.Metrics.IterSpread()
	minB, maxB := bsp.Metrics.IterSpread()
	_ = minA
	_ = minB
	if maxA != 20 || maxB != 20 {
		t.Fatalf("runs incomplete: asp %d bsp %d", maxA, maxB)
	}
	if asp.VirtualSec >= bsp.VirtualSec {
		t.Fatalf("ASP (%.2f) should outrun BSP (%.2f) under stragglers", asp.VirtualSec, bsp.VirtualSec)
	}
}
