package core

import (
	"bytes"
	"context"
	"math"
	"testing"

	"disttrain/internal/topo"
)

// runCaptured runs an AR-SGD real-math config with the given collective and
// returns every replica's final parameter vector.
func runCaptured(t *testing.T, workers, iters int, collective string, wfbp bool) [][]float32 {
	t.Helper()
	cfg := realConfig(ARSGD, workers, iters, 5)
	cfg.Collective = collective
	cfg.WaitFreeBP = wfbp
	cfg.CaptureParams = true
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("%s: %v", collective, err)
	}
	if len(res.WorkerParams) != workers {
		t.Fatalf("%s: captured %d replicas, want %d", collective, len(res.WorkerParams), workers)
	}
	return res.WorkerParams
}

func paramsBitEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// TestARSGDTopoCollectivesBitIdentical is the end-to-end acceptance check:
// swapping the ring AllReduce for the hierarchical, butterfly or torus
// variant must leave every replica's final parameters bit-identical —
// including non-power-of-two and odd worker counts, where butterfly's
// pre/post folding and hierarchical's partial last machine are exercised.
func TestARSGDTopoCollectivesBitIdentical(t *testing.T) {
	for _, W := range []int{5, 6, 8} {
		ref := runCaptured(t, W, 25, "ring", false)
		for w := 1; w < W; w++ {
			if !paramsBitEqual(ref[0], ref[w]) {
				t.Fatalf("ring replicas diverged at worker %d (W=%d)", w, W)
			}
		}
		for _, col := range []string{"hierarchical", "butterfly", "torus"} {
			if col == "torus" {
				if _, _, err := topo.TorusShape(W); err != nil {
					continue // prime worker counts have no rectangular grid
				}
			}
			got := runCaptured(t, W, 25, col, false)
			for w := 0; w < W; w++ {
				if !paramsBitEqual(ref[w], got[w]) {
					t.Fatalf("W=%d worker %d: %s final params differ from ring", W, w, col)
				}
			}
		}
	}
}

// TestARSGDTopoCollectivesBitIdenticalWFBP covers the wait-free-BP path,
// where the gradient reduces in two buckets per iteration and the
// topology-aware collectives rely on the persistent cross-round stash.
func TestARSGDTopoCollectivesBitIdenticalWFBP(t *testing.T) {
	const W = 8
	ref := runCaptured(t, W, 25, "ring", true)
	for _, col := range []string{"hierarchical", "butterfly", "torus"} {
		got := runCaptured(t, W, 25, col, true)
		for w := 0; w < W; w++ {
			if !paramsBitEqual(ref[w], got[w]) {
				t.Fatalf("worker %d: %s (wait-free BP) final params differ from ring", w, col)
			}
		}
	}
}

// TestOverlayGossipDeterministic pins the overlay-driven gossip paths the
// same way TestPoolSizeBitIdentical pins the compute pool: a fixed-seed run
// over a sparse overlay must export a byte-identical summary every time,
// regardless of compute-pool size.
func TestOverlayGossipDeterministic(t *testing.T) {
	cases := []struct {
		algo    Algo
		overlay string
		degree  int
	}{
		{ADPSGD, "kregular", 2},
		{ADPSGD, "smallworld", 2},
		{GoSGD, "kregular", 4},
		{GoSGD, "smallworld", 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(string(tc.algo)+"/"+tc.overlay, func(t *testing.T) {
			cfg := realConfig(tc.algo, 8, 40, 5)
			cfg.Overlay = tc.overlay
			cfg.OverlayDegree = tc.degree
			want := poolSummary(t, cfg, 0)
			if got := poolSummary(t, cfg, 0); !bytes.Equal(want, got) {
				t.Fatalf("%s/%s: repeated run differs", tc.algo, tc.overlay)
			}
			if got := poolSummary(t, cfg, 4); !bytes.Equal(want, got) {
				t.Fatalf("%s/%s: summary differs between pool 0 and pool 4", tc.algo, tc.overlay)
			}
		})
	}
}

// TestOverlayChangesGossipPattern guards the wiring itself: restricting
// GoSGD to a degree-2 ring overlay must change which peers receive pushes,
// and therefore the exported summary, relative to uniform selection.
func TestOverlayChangesGossipPattern(t *testing.T) {
	base := realConfig(GoSGD, 8, 40, 5)
	uniform := poolSummary(t, base, 0)
	ring := base
	ring.Overlay = "smallworld"
	ring.OverlayDegree = 2 // no chords: the pure gossip ring
	if got := poolSummary(t, ring, 0); bytes.Equal(uniform, got) {
		t.Fatal("ring overlay produced the same run as uniform partner selection")
	}
}

// TestOverlaySeedStability: the overlay graph derives from the experiment
// seed, so two seeds must (generically) give different gossip patterns
// while the same seed reproduces exactly.
func TestOverlaySeedStability(t *testing.T) {
	mk := func(seed uint64) Config {
		cfg := realConfig(GoSGD, 8, 40, seed)
		cfg.Overlay = "kregular"
		cfg.OverlayDegree = 2
		return cfg
	}
	a := poolSummary(t, mk(5), 0)
	b := poolSummary(t, mk(6), 0)
	if bytes.Equal(a, b) {
		t.Fatal("different seeds produced identical summaries")
	}
}

// TestTopoConfigRejects covers the new Validate rules with pointed errors.
func TestTopoConfigRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unknown collective", func(c *Config) { c.Collective = "hypercube" }},
		{"collective on non-ARSGD", func(c *Config) { c.Algo = BSP; c.Collective = "hierarchical" }},
		{"torus on prime world", func(c *Config) { c.Workers = 7; c.Cluster.Machines = 2; c.Collective = "torus" }},
		{"tree flag conflicts with name", func(c *Config) { c.TreeAllReduce = true; c.Collective = "butterfly" }},
		{"elastic with topo collective", func(c *Config) { c.Elastic = true; c.Collective = "hierarchical" }},
		{"overlay on ARSGD", func(c *Config) { c.Overlay = "kregular" }},
		{"infeasible kregular degree", func(c *Config) {
			c.Algo = GoSGD
			c.GossipP = 0.5
			c.Workers = 5
			c.Cluster.Machines = 2
			c.Overlay = "kregular"
			c.OverlayDegree = 3
		}},
		{"overlay degree >= world", func(c *Config) { c.Algo = GoSGD; c.GossipP = 0.5; c.Overlay = "smallworld"; c.OverlayDegree = 8 }},
		{"unknown overlay", func(c *Config) { c.Algo = ADPSGD; c.Overlay = "expander" }},
		{"degree without overlay", func(c *Config) { c.OverlayDegree = 4 }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := costConfig(ARSGD, 8, 5)
			tc.mutate(&cfg)
			if _, err := Run(context.Background(), cfg); err == nil {
				t.Fatalf("%s: accepted", tc.name)
			}
		})
	}
}
