package core

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"disttrain/internal/trace"
)

func TestSummaryFields(t *testing.T) {
	cfg := costConfig(ASP, 8, 10)
	cfg.Sharding = ShardLayerWise
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	if s.Algo != "asp" || s.Workers != 8 || s.Model != "resnet50" {
		t.Fatalf("summary identity wrong: %+v", s)
	}
	if s.InterGbps < 55 || s.InterGbps > 57 {
		t.Fatalf("gbps = %v", s.InterGbps)
	}
	if s.VirtualSec <= 0 || s.Throughput <= 0 || s.TotalBytes <= 0 {
		t.Fatalf("metrics missing: %+v", s)
	}
	if s.ComputeSec <= 0 {
		t.Fatal("no compute seconds")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	res, err := Run(context.Background(), realConfig(BSP, 2, 20, 13))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if s.FinalTestAcc != res.FinalTestAcc {
		t.Fatalf("acc %v != %v", s.FinalTestAcc, res.FinalTestAcc)
	}
	if len(s.Trace) == 0 {
		t.Fatal("trace not exported")
	}
}

// TestTraceExportByteIdentical re-runs the same simulation and requires the
// exported Chrome trace to match byte for byte. Every worker's iteration-0
// compute span starts at ts 0, so this exercises exactly the equal-timestamp
// tie the old Ts-only sort.Slice left unordered.
func TestTraceExportByteIdentical(t *testing.T) {
	export := func() []byte {
		tr := trace.New()
		cfg := costConfig(BSP, 8, 6)
		cfg.Tracer = tr
		if _, err := Run(context.Background(), cfg); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := export()
	for rep := 0; rep < 3; rep++ {
		if got := export(); !bytes.Equal(first, got) {
			t.Fatalf("trace export differs across identical runs (rep %d)", rep)
		}
	}
}

func TestTracerCapturesTimeline(t *testing.T) {
	tr := trace.New()
	cfg := costConfig(ASP, 4, 5)
	cfg.Tracer = tr
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// compute spans per worker and message spans per machine.
	for _, want := range []string{`"compute"`, `"worker"`, `"net"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s", want)
		}
	}
}
