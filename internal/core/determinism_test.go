package core

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"disttrain/internal/data"
	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

// TestRunBitIdenticalAcrossGOMAXPROCS asserts the tentpole's end-to-end
// determinism guarantee: a fixed-seed experiment produces byte-identical
// summaries whether the GEMM kernels run serial or fanned out over 8 procs.
// The model is sized so its forward/backward GEMMs exceed the parallel
// cutoff (batch 16 × 256 inputs × 128 hidden ≈ 1M FLOPs per multiply) —
// with GOMAXPROCS=1 the dispatcher stays serial, with 8 it goes parallel.
func TestRunBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	cfg := func(mutate func(*Config)) Config {
		r := rng.New(2026)
		ds := data.GenShapes16(r, 400)
		train, test := ds.Split(r.Split(1), 80)
		c := costConfig(BSP, 4, 25)
		c.Seed = 2026
		c.LR = opt.Schedule{Base: 0.05}
		c.Real = &RealConfig{
			Factory: func(rr *rng.RNG) *nn.Model {
				return nn.NewModel("wide-mlp",
					nn.NewFlatten("flat"),
					nn.NewDenseReLU("fc0", 256, 128, rr),
					nn.NewDense("fc1", 128, data.ShapeClasses, rr),
				)
			},
			Train: train,
			Test:  test,
			Batch: 16,
		}
		if mutate != nil {
			mutate(&c)
		}
		return c
	}

	// The quantized variants also run the codec round-trip in every
	// gradient exchange, so this doubles as the e2e determinism check for
	// the int8 and fp16 paths.
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"plain", nil},
		{"quant8", func(c *Config) { c.Quantize8 = true }},
		{"quantf16", func(c *Config) { c.QuantizeF16 = true }},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			summaryAt := func(procs int) []byte {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				res, err := Run(context.Background(), cfg(v.mutate))
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := res.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}

			serial := summaryAt(1)
			parallel := summaryAt(8)
			if !bytes.Equal(serial, parallel) {
				t.Fatalf("summaries differ across GOMAXPROCS:\nserial:   %s\nparallel: %s", serial, parallel)
			}
		})
	}
}
