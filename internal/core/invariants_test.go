package core

import (
	"context"
	"math"
	"testing"
)

// The paper's "accuracy-neutral" optimizations (parameter sharding,
// wait-free BP, local aggregation) reorganize WHEN and WHERE bytes move but
// must not change WHAT is computed. These tests pin that: with a fixed
// seed, toggling each optimization leaves the training trajectory intact
// (up to float32 summation-order noise where aggregation order changes).

func almostSameAcc(t *testing.T, name string, a, b *Result, tol float64) {
	t.Helper()
	if math.Abs(a.FinalTestAcc-b.FinalTestAcc) > tol {
		t.Fatalf("%s changed accuracy: %.4f vs %.4f", name, a.FinalTestAcc, b.FinalTestAcc)
	}
	if math.Abs(a.FinalTrainLoss-b.FinalTrainLoss) > tol {
		t.Fatalf("%s changed loss: %.4f vs %.4f", name, a.FinalTrainLoss, b.FinalTrainLoss)
	}
}

func TestShardingIsAccuracyNeutral(t *testing.T) {
	base := realConfig(ASP, 4, 80, 61)
	r1, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Sharding{ShardLayerWise, ShardBalanced} {
		cfg := realConfig(ASP, 4, 80, 61)
		cfg.Sharding = mode
		r2, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Sharding changes arrival interleavings at the PS (staleness
		// noise), so exact equality is not expected — but the trajectory
		// must stay statistically the same.
		almostSameAcc(t, "sharding="+string(mode), r1, r2, 0.06)
	}
}

func TestWaitFreeBPIsMathNeutral(t *testing.T) {
	// WFBP only re-times sends. For the synchronous BSP (without local
	// aggregation) the aggregation CONTENT per iteration is identical, so
	// the trajectory must match almost exactly.
	base := realConfig(BSP, 4, 60, 62)
	r1, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	wf := realConfig(BSP, 4, 60, 62)
	wf.WaitFreeBP = true
	r2, err := Run(context.Background(), wf)
	if err != nil {
		t.Fatal(err)
	}
	almostSameAcc(t, "wait-free BP", r1, r2, 0.02)
}

func TestLocalAggIsMathNeutral(t *testing.T) {
	// Summing gradients at a machine leader before the PS sums them again
	// is the same sum (modulo float32 association).
	base := realConfig(BSP, 4, 60, 63)
	r1, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	la := realConfig(BSP, 4, 60, 63)
	la.LocalAgg = true
	r2, err := Run(context.Background(), la)
	if err != nil {
		t.Fatal(err)
	}
	almostSameAcc(t, "local aggregation", r1, r2, 0.02)
}

func TestBSPWorkersStayIdentical(t *testing.T) {
	// After every BSP round all replicas hold the PS snapshot; at the end
	// the replica spread must be exactly zero.
	res, err := Run(context.Background(), realConfig(BSP, 4, 50, 64))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicaSpreadL2 != 0 {
		t.Fatalf("BSP replicas diverged: %v", res.ReplicaSpreadL2)
	}
}

func TestGoSGDWeightConservation(t *testing.T) {
	// GoSGD's mixing weights are split on send and merged on receive; the
	// total across workers plus in-flight messages is invariant. After the
	// final drain nearly all weight lives at the workers; since weights are
	// package-internal we verify the observable consequence: the averaged
	// model remains sane (no replica starved to a zero/blown-up weight).
	res, err := Run(context.Background(), realConfig(GoSGD, 4, 120, 65))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTestAcc < 0.7 {
		t.Fatalf("gossip weight pathology: acc %.3f", res.FinalTestAcc)
	}
}

func TestEASGDCenterTracksWorkers(t *testing.T) {
	// The evaluated model for EASGD is the PS center x̃; after training it
	// must perform comparably to the workers' local average — i.e. the
	// elastic force actually pulled the center into the solution region.
	cfg := realConfig(EASGD, 4, 150, 66)
	cfg.Tau = 4
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalTestAcc < 0.8 {
		t.Fatalf("EASGD center acc %.3f — center left behind", res.FinalTestAcc)
	}
}

func TestSeedChangesTrajectoryButNotStory(t *testing.T) {
	// Different seeds must change the exact numbers (no hidden determinism
	// bug pinning results) while keeping the qualitative outcome.
	a, err := Run(context.Background(), realConfig(BSP, 4, 60, 71))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), realConfig(BSP, 4, 60, 72))
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalTrainLoss == b.FinalTrainLoss {
		t.Fatal("different seeds produced identical loss — seed not wired through")
	}
	if a.FinalTestAcc < 0.85 || b.FinalTestAcc < 0.85 {
		t.Fatalf("seed sensitivity too high: %.3f vs %.3f", a.FinalTestAcc, b.FinalTestAcc)
	}
}

func TestVirtualTimeUnaffectedByRealMath(t *testing.T) {
	// The cost model drives timing; the real math must not perturb virtual
	// time. A real run and a cost-only run with identical config (modulo
	// Real) must report identical virtual durations.
	real := realConfig(BSP, 4, 30, 73)
	r1, err := Run(context.Background(), real)
	if err != nil {
		t.Fatal(err)
	}
	costOnly := realConfig(BSP, 4, 30, 73)
	costOnly.Real = nil
	r2, err := Run(context.Background(), costOnly)
	if err != nil {
		t.Fatal(err)
	}
	if r1.VirtualSec != r2.VirtualSec {
		t.Fatalf("real math changed virtual time: %v vs %v", r1.VirtualSec, r2.VirtualSec)
	}
	if r1.Net.TotalBytes != r2.Net.TotalBytes {
		t.Fatalf("real math changed traffic: %d vs %d", r1.Net.TotalBytes, r2.Net.TotalBytes)
	}
}
