package core

import (
	"encoding/json"
	"io"

	"disttrain/internal/metrics"
)

// Summary is a JSON-serializable digest of a Result, for piping experiment
// outcomes into external plotting/analysis tooling.
type Summary struct {
	Algo        string  `json:"algo"`
	Workers     int     `json:"workers"`
	Machines    int     `json:"machines"`
	Model       string  `json:"model"`
	InterGbps   float64 `json:"inter_gbps"`
	Iters       int     `json:"iters"`
	Seed        uint64  `json:"seed"`
	Sharding    string  `json:"sharding,omitempty"`
	Shards      int     `json:"shards,omitempty"`
	WaitFreeBP  bool    `json:"wait_free_bp,omitempty"`
	DGC         bool    `json:"dgc,omitempty"`
	Quantize8   bool    `json:"quantize8,omitempty"`
	QuantizeF16 bool    `json:"quantize_f16,omitempty"`
	LocalAgg    bool    `json:"local_agg,omitempty"`

	VirtualSec            float64 `json:"virtual_sec"`
	Throughput            float64 `json:"throughput_samples_per_sec"`
	TotalBytes            int64   `json:"total_bytes"`
	CrossMachineBytes     int64   `json:"cross_machine_bytes"`
	BytesPerIterPerWorker float64 `json:"bytes_per_iter_per_worker"`
	MaxIterSpread         int     `json:"max_iter_spread"`
	ReplicaSpreadL2       float64 `json:"replica_spread_l2,omitempty"`

	ComputeSec   float64 `json:"compute_sec"`
	LocalAggSec  float64 `json:"local_agg_sec"`
	GlobalAggSec float64 `json:"global_agg_sec"`
	NetworkSec   float64 `json:"network_sec"`

	FinalTestAcc   float64              `json:"final_test_acc,omitempty"`
	FinalTrainLoss float64              `json:"final_train_loss,omitempty"`
	Trace          []metrics.TracePoint `json:"trace,omitempty"`

	// Fault-injection outcomes (all zero / absent without a fault schedule).
	Elastic        bool               `json:"elastic,omitempty"`
	Faults         metrics.FaultStats `json:"faults,omitzero"`
	DroppedMsgs    int64              `json:"dropped_msgs,omitempty"`
	DroppedBytes   int64              `json:"dropped_bytes,omitempty"`
	StalledWorkers int                `json:"stalled_workers,omitempty"`
}

// Summary builds the digest.
func (r *Result) Summary() Summary {
	b := r.Metrics.MeanBreakdown()
	return Summary{
		Algo:        string(r.Config.Algo),
		Workers:     r.Config.Workers,
		Machines:    r.Config.Cluster.Machines,
		Model:       r.Config.Workload.Profile.Name,
		InterGbps:   r.Config.Cluster.InterBytesPerSec * 8 / 1e9,
		Iters:       r.Config.Iters,
		Seed:        r.Config.Seed,
		Sharding:    string(r.Config.Sharding),
		Shards:      r.Config.Shards,
		WaitFreeBP:  r.Config.WaitFreeBP,
		DGC:         r.Config.DGC != nil,
		Quantize8:   r.Config.Quantize8,
		QuantizeF16: r.Config.QuantizeF16,
		LocalAgg:    r.Config.LocalAgg,

		VirtualSec:            r.VirtualSec,
		Throughput:            r.Throughput,
		TotalBytes:            r.Net.TotalBytes,
		CrossMachineBytes:     r.Net.CrossMachineBytes,
		BytesPerIterPerWorker: r.BytesPerIterPerWorker,
		MaxIterSpread:         r.Metrics.MaxSpread,
		ReplicaSpreadL2:       r.ReplicaSpreadL2,

		ComputeSec:   b[metrics.Compute],
		LocalAggSec:  b[metrics.LocalAgg],
		GlobalAggSec: b[metrics.GlobalAgg],
		NetworkSec:   b[metrics.Network],

		FinalTestAcc:   r.FinalTestAcc,
		FinalTrainLoss: r.FinalTrainLoss,
		Trace:          r.Metrics.Trace,

		Elastic:        r.Config.Elastic,
		Faults:         r.Metrics.Faults,
		DroppedMsgs:    r.Net.DroppedMsgs,
		DroppedBytes:   r.Net.DroppedBytes,
		StalledWorkers: r.StalledWorkers,
	}
}

// WriteJSON writes the summary as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summary())
}
