package core

import (
	"fmt"
	"math"

	"disttrain/internal/des"
	"disttrain/internal/metrics"
	"disttrain/internal/simnet"
)

// AdaComm is adaptive-communication elastic averaging, after Ho et al.
// (CCGRID'18) — the paper's reference [15], the last of its ten reviewed
// algorithms and the only one not otherwise implemented here. The idea
// (also in Wang & Joshi's ADACOMM): communicate *rarely* early, when large
// loss gradients make cheap local progress, and *often* late, when
// refinement needs tight coupling. The communication period starts at
// Config.Tau and shrinks with the training loss:
//
//	τ(t) = max(1, ceil(τ₀ · √(L_t / L₀)))
//
// In cost-only mode (no loss signal) the period decays linearly from τ₀ to
// 1 across the run, preserving the traffic envelope for the performance
// experiments.
const AdaComm Algo = "adacomm"

// runAdaComm is EASGD's elastic protocol with a per-worker adaptive period.
func runAdaComm(x *exp) {
	cfg := x.cfg
	alpha := float32(cfg.MovingRate)

	// Shards are identical to EASGD's: stateless elastic responders.
	for s := range x.assign {
		s := s
		x.eng.Spawn(fmt.Sprintf("adacomm-ps%d", s), func(p *des.Proc) {
			inbox := x.psInbox(s)
			for {
				m := inbox.Recv(p)
				if m.Kind != kindEASGDPush {
					panic(fmt.Sprintf("adacomm shard: unexpected kind %d", m.Kind))
				}
				psAggSleep(p, m.Bytes)
				x.global.ElasticUpdate(x.assign[s], m.Vec, alpha)
				x.net.Send(simnet.Msg{From: x.psNode[s], To: m.From,
					Kind: kindEASGDReply, Seg: s, Bytes: x.shardBytes(s), Vec: m.Vec})
			}
		})
	}

	for w := 0; w < cfg.Workers; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("adacomm-worker%d", w), func(p *des.Proc) {
			inbox := x.inbox(w)
			bd := &x.col.Workers[w].Breakdown
			var firstLoss float64
			sinceSync := 0
			for it := 1; it <= cfg.Iters; it++ {
				// Fault schedules are rejected for AdaComm in Validate; the
				// gate only serves context cancellation here.
				nit, ok := x.gate(p, w, it)
				if !ok {
					break
				}
				it = nit
				gf, _ := x.computePhase(p, w, false)
				x.reps[w].localStep(gf.get(), cfg.LR.At(it-1))
				sinceSync++

				tau := cfg.Tau
				if x.reps[w].mathOn() && x.reps[w].lossInit {
					if firstLoss == 0 {
						firstLoss = x.reps[w].lossEWMA
					}
					ratio := x.reps[w].lossEWMA / firstLoss
					if ratio > 1 {
						ratio = 1
					}
					tau = int(math.Ceil(float64(cfg.Tau) * math.Sqrt(ratio)))
				} else {
					// Cost-only: linear decay τ₀ → 1 over the run.
					frac := 1 - float64(it)/float64(cfg.Iters)
					tau = int(math.Ceil(float64(cfg.Tau) * frac))
				}
				if tau < 1 {
					tau = 1
				}

				if sinceSync >= tau {
					sinceSync = 0
					params := x.reps[w].params()
					for s := range x.assign {
						var payload []float32
						if params != nil {
							payload = append([]float32(nil), params...)
						}
						x.net.Send(simnet.Msg{From: x.workerNode[w], To: x.psNode[s],
							Kind: kindEASGDPush, Clock: it, Seg: s,
							Bytes: x.shardBytes(s), Vec: payload})
					}
					t0 := p.Now()
					var wire des.Time
					for recv := 0; recv < len(x.assign); recv++ {
						m := inbox.Recv(p)
						if m.Kind != kindEASGDReply {
							panic(fmt.Sprintf("adacomm worker: unexpected kind %d", m.Kind))
						}
						wire += m.WireSec
						if m.Vec != nil {
							x.reps[w].setRanges(x.assign[m.Seg], m.Vec)
						}
					}
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-wire)
				}
				x.iterDone(w, it)
			}
			x.finish(w)
		})
	}
}
