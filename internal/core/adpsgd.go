package core

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/metrics"
	"disttrain/internal/simnet"
)

// runADPSGD implements Asynchronous Decentralized Parallel SGD (Section
// IV-C, after Lian et al.): workers are split into a bipartite graph of
// active and passive peers — actives initiate a *symmetric* exchange with a
// random passive peer each iteration and both sides average their
// parameters. The bipartite split is the paper's deadlock-avoidance
// mechanism: actives never wait on other actives, so the wait-for graph is
// acyclic (see TestADPSGDDeadlockWithoutBipartite for the counterexample).
//
// Following the paper's implementation, computation and communication run
// in two separate threads per worker: the compute process trains
// continuously while the communication process exchanges parameters in the
// background, pacing one exchange per completed iteration.
func runADPSGD(x *exp) {
	if x.cfg.ADPSGDNoBipartite {
		runADPSGDUnconstrained(x)
		return
	}
	cfg := x.cfg
	W := cfg.Workers

	// Bipartite split: even worker indices are active, odd are passive.
	var passive []int
	for w := 1; w < W; w += 2 {
		passive = append(passive, w)
	}

	for w := 0; w < W; w++ {
		w := w
		tokens := des.NewQueue[int](x.eng)

		// Compute process: train continuously on (possibly mid-averaging)
		// local parameters, exactly the lock-free behavior AD-PSGD allows.
		x.eng.Spawn(fmt.Sprintf("adpsgd-compute%d", w), func(p *des.Proc) {
			for it := 1; it <= cfg.Iters; it++ {
				grads, _ := x.computePhase(p, w, false)
				x.reps[w].localStep(grads, cfg.LR.At(it-1))
				tokens.Push(it)
				x.maybeEval(w, it)
			}
			x.finish(w)
		})

		active := w%2 == 0 && len(passive) > 0
		if active {
			// Active communication process: one symmetric exchange per
			// completed compute iteration.
			x.eng.Spawn(fmt.Sprintf("adpsgd-comm%d", w), func(p *des.Proc) {
				inbox := x.inbox(w)
				bd := &x.col.Workers[w].Breakdown
				r := x.algoRNG[w]
				for it := 1; it <= cfg.Iters; it++ {
					tokens.Recv(p)
					peer := passive[r.Intn(len(passive))]
					var payload []float32
					if x.reps[w].mathOn() {
						payload = x.reps[w].params()
					}
					x.net.Send(simnet.Msg{From: x.workerNode[w], To: x.workerNode[peer],
						Kind: kindExchangeReq, Clock: it, Bytes: x.fullBytes(), Vec: payload})
					t0 := p.Now()
					m := inbox.Recv(p)
					if m.Kind != kindExchangeReply {
						panic(fmt.Sprintf("adpsgd active: unexpected kind %d", m.Kind))
					}
					bd.Add(metrics.Network, m.WireSec)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-m.WireSec)
					x.reps[w].average(m.Vec)
				}
			})
		} else if !active && w%2 == 1 {
			// Passive communication process: reply to every exchange
			// request with the current parameters, then fold the active's
			// parameters in. Runs until killed at experiment teardown.
			x.eng.Spawn(fmt.Sprintf("adpsgd-passive%d", w), func(p *des.Proc) {
				inbox := x.inbox(w)
				bd := &x.col.Workers[w].Breakdown
				for {
					m := inbox.Recv(p)
					if m.Kind != kindExchangeReq {
						panic(fmt.Sprintf("adpsgd passive: unexpected kind %d", m.Kind))
					}
					var payload []float32
					if x.reps[w].mathOn() {
						payload = x.reps[w].params()
					}
					x.net.Send(simnet.Msg{From: x.workerNode[w], To: m.From,
						Kind: kindExchangeReply, Clock: m.Clock, Bytes: x.fullBytes(), Vec: payload})
					bd.Add(metrics.Network, m.WireSec)
					x.reps[w].average(m.Vec)
				}
			})
		}
	}
}

// runADPSGDUnconstrained is the ablation of AD-PSGD's deadlock-avoidance
// design: every worker both initiates symmetric exchanges with arbitrary
// peers and answers incoming requests, but — like a naive implementation —
// only answers *between* its own exchanges. Section IV-C's scenario (A
// waits on B, B waits on C, C waits on A) then deadlocks the communication
// threads; the training threads keep computing, so the run degenerates into
// isolated local training. Result.StuckProcs exposes the deadlocked
// processes.
func runADPSGDUnconstrained(x *exp) {
	cfg := x.cfg
	W := cfg.Workers

	for w := 0; w < W; w++ {
		w := w
		tokens := des.NewQueue[int](x.eng)

		x.eng.Spawn(fmt.Sprintf("adpsgd-compute%d", w), func(p *des.Proc) {
			for it := 1; it <= cfg.Iters; it++ {
				grads, _ := x.computePhase(p, w, false)
				x.reps[w].localStep(grads, cfg.LR.At(it-1))
				tokens.Push(it)
				x.maybeEval(w, it)
			}
			x.finish(w)
		})

		x.eng.Spawn(fmt.Sprintf("adpsgd-comm%d", w), func(p *des.Proc) {
			inbox := x.inbox(w)
			r := x.algoRNG[w]
			serve := func(m simnet.Msg) {
				var payload []float32
				if x.reps[w].mathOn() {
					payload = x.reps[w].params()
				}
				x.net.Send(simnet.Msg{From: x.workerNode[w], To: m.From,
					Kind: kindExchangeReply, Clock: m.Clock, Bytes: x.fullBytes(), Vec: payload})
				x.reps[w].average(m.Vec)
			}
			var stash []simnet.Msg
			for it := 1; it <= cfg.Iters; it++ {
				tokens.Recv(p)
				// Serve requests that arrived while we were idle.
				for _, m := range stash {
					serve(m)
				}
				stash = stash[:0]
				for {
					m, ok := inbox.TryRecv()
					if !ok {
						break
					}
					serve(m)
				}
				// Initiate our own exchange and hold everything else until
				// it completes — the deadlock-prone discipline.
				peer := r.Intn(W - 1)
				if peer >= w {
					peer++
				}
				var payload []float32
				if x.reps[w].mathOn() {
					payload = x.reps[w].params()
				}
				x.net.Send(simnet.Msg{From: x.workerNode[w], To: x.workerNode[peer],
					Kind: kindExchangeReq, Clock: it, Bytes: x.fullBytes(), Vec: payload})
				for {
					m := inbox.Recv(p)
					if m.Kind == kindExchangeReply {
						x.reps[w].average(m.Vec)
						break
					}
					stash = append(stash, m)
				}
			}
		})
	}
}
