package core

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/metrics"
	"disttrain/internal/simnet"
)

// runADPSGD implements Asynchronous Decentralized Parallel SGD (Section
// IV-C, after Lian et al.): workers are split into a bipartite graph of
// active and passive peers — actives initiate a *symmetric* exchange with a
// random passive peer each iteration and both sides average their
// parameters. The bipartite split is the paper's deadlock-avoidance
// mechanism: actives never wait on other actives, so the wait-for graph is
// acyclic (see TestADPSGDDeadlockWithoutBipartite for the counterexample).
//
// Following the paper's implementation, computation and communication run
// in two separate threads per worker: the compute process trains
// continuously while the communication process exchanges parameters in the
// background, pacing one exchange per completed iteration.
func runADPSGD(x *exp) {
	if x.cfg.ADPSGDNoBipartite {
		runADPSGDUnconstrained(x)
		return
	}
	cfg := x.cfg
	W := cfg.Workers

	// Bipartite split: even worker indices are active, odd are passive.
	var passive []int
	for w := 1; w < W; w += 2 {
		passive = append(passive, w)
	}

	// With a sparse overlay, each active draws only from its odd-parity
	// overlay neighbors — gossip restricted to the graph's edges. An active
	// whose neighborhood happens to be all-even falls back to the full
	// passive set so it still participates in averaging.
	partnerBase := func(w int) []int {
		if x.overlay == nil {
			return passive
		}
		var base []int
		for _, pe := range x.overlay.Neighbors[w] {
			if pe%2 == 1 {
				base = append(base, pe)
			}
		}
		if len(base) == 0 {
			return passive
		}
		return base
	}

	for w := 0; w < W; w++ {
		w := w
		tokens := des.NewQueue[int](x.eng)

		// Compute process: train continuously on (possibly mid-averaging)
		// local parameters, exactly the lock-free behavior AD-PSGD allows.
		// A restart just pauses the token stream; the closing sentinel
		// (pushed on completion or permanent death) retires the comm
		// process.
		x.eng.Spawn(fmt.Sprintf("adpsgd-compute%d", w), func(p *des.Proc) {
			for it := 1; it <= cfg.Iters; it++ {
				nit, ok := x.gate(p, w, it)
				if !ok {
					break
				}
				it = nit
				gf, _ := x.computePhase(p, w, false)
				// The pass read the parameters as of its submission point;
				// a background exchange averaging into the model during the
				// compute window no longer bleeds into this gradient — the
				// lock-free semantics of Lian et al., made deterministic.
				x.reps[w].localStep(gf.get(), cfg.LR.At(it-1))
				tokens.Push(it)
				x.iterDone(w, it)
			}
			tokens.Push(-1)
			x.finish(w)
		})

		active := w%2 == 0 && len(passive) > 0
		if active {
			// Active communication process: one symmetric exchange per
			// completed compute iteration.
			x.eng.Spawn(fmt.Sprintf("adpsgd-comm%d", w), func(p *des.Proc) {
				inbox := x.inbox(w)
				bd := &x.col.Workers[w].Breakdown
				r := x.algoRNG[w]
				for {
					it := tokens.Recv(p)
					if it < 0 {
						break
					}
					// Under fault injection the partner draw avoids peers
					// that are dead (now or within the exchange's horizon)
					// or partitioned away — AD-PSGD's natural elasticity.
					base := partnerBase(w)
					cands := base
					if x.inj != nil {
						now := p.Now()
						mean := x.inj.MeanIterSec()
						myM := cfg.Cluster.MachineOfWorker(w)
						cands = nil
						for _, pe := range base {
							if x.inj.DeadAt(pe, now) || x.inj.DeadAt(pe, now+mean) {
								continue
							}
							if x.inj.Partitioned(now, myM, cfg.Cluster.MachineOfWorker(pe)) {
								continue
							}
							cands = append(cands, pe)
						}
						if len(cands) == 0 {
							x.col.Faults.SkippedExchanges++
							continue
						}
						if len(cands) < len(base) {
							x.col.Faults.Redraws++
						}
					}
					peer := cands[r.Intn(len(cands))]
					var payload []float32
					if x.reps[w].mathOn() {
						payload = x.reps[w].params()
					}
					x.net.Send(simnet.Msg{From: x.workerNode[w], To: x.workerNode[peer],
						Kind: kindExchangeReq, Clock: it, Bytes: x.fullBytes(), Vec: payload})
					t0 := p.Now()
					var m simnet.Msg
					if x.inj != nil {
						var ok bool
						if m, ok = inbox.RecvTimeout(p, cfg.BarrierTimeoutSec); !ok {
							// Request or reply lost in flight; skip the
							// averaging and keep training.
							x.col.Faults.Timeouts++
							continue
						}
					} else {
						m = inbox.Recv(p)
					}
					if m.Kind != kindExchangeReply {
						panic(fmt.Sprintf("adpsgd active: unexpected kind %d", m.Kind))
					}
					bd.Add(metrics.Network, m.WireSec)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-m.WireSec)
					x.reps[w].average(m.Vec)
				}
			})
		} else if !active && w%2 == 1 {
			// Passive communication process: reply to every exchange
			// request with the current parameters, then fold the active's
			// parameters in. Runs until killed at experiment teardown.
			x.eng.Spawn(fmt.Sprintf("adpsgd-passive%d", w), func(p *des.Proc) {
				inbox := x.inbox(w)
				bd := &x.col.Workers[w].Breakdown
				for {
					m := inbox.Recv(p)
					if m.Kind != kindExchangeReq {
						panic(fmt.Sprintf("adpsgd passive: unexpected kind %d", m.Kind))
					}
					if x.inj != nil && x.inj.DeadAt(w, p.Now()) {
						// A dead peer answers nothing; the active side's
						// timeout absorbs the loss.
						x.col.Faults.SkippedExchanges++
						continue
					}
					var payload []float32
					if x.reps[w].mathOn() {
						payload = x.reps[w].params()
					}
					x.net.Send(simnet.Msg{From: x.workerNode[w], To: m.From,
						Kind: kindExchangeReply, Clock: m.Clock, Bytes: x.fullBytes(), Vec: payload})
					bd.Add(metrics.Network, m.WireSec)
					x.reps[w].average(m.Vec)
				}
			})
		}
	}
}

// runADPSGDUnconstrained is the ablation of AD-PSGD's deadlock-avoidance
// design: every worker both initiates symmetric exchanges with arbitrary
// peers and answers incoming requests, but — like a naive implementation —
// only answers *between* its own exchanges. Section IV-C's scenario (A
// waits on B, B waits on C, C waits on A) then deadlocks the communication
// threads; the training threads keep computing, so the run degenerates into
// isolated local training. Result.StuckProcs exposes the deadlocked
// processes.
func runADPSGDUnconstrained(x *exp) {
	cfg := x.cfg
	W := cfg.Workers

	for w := 0; w < W; w++ {
		w := w
		tokens := des.NewQueue[int](x.eng)

		x.eng.Spawn(fmt.Sprintf("adpsgd-compute%d", w), func(p *des.Proc) {
			for it := 1; it <= cfg.Iters; it++ {
				// Fault schedules are rejected for the no-bipartite
				// ablation in Validate; the gate only serves context
				// cancellation here.
				nit, ok := x.gate(p, w, it)
				if !ok {
					break
				}
				it = nit
				gf, _ := x.computePhase(p, w, false)
				x.reps[w].localStep(gf.get(), cfg.LR.At(it-1))
				tokens.Push(it)
				x.iterDone(w, it)
			}
			x.finish(w)
		})

		x.eng.Spawn(fmt.Sprintf("adpsgd-comm%d", w), func(p *des.Proc) {
			inbox := x.inbox(w)
			r := x.algoRNG[w]
			serve := func(m simnet.Msg) {
				var payload []float32
				if x.reps[w].mathOn() {
					payload = x.reps[w].params()
				}
				x.net.Send(simnet.Msg{From: x.workerNode[w], To: m.From,
					Kind: kindExchangeReply, Clock: m.Clock, Bytes: x.fullBytes(), Vec: payload})
				x.reps[w].average(m.Vec)
			}
			var stash []simnet.Msg
			for it := 1; it <= cfg.Iters; it++ {
				tokens.Recv(p)
				// Serve requests that arrived while we were idle.
				for _, m := range stash {
					serve(m)
				}
				stash = stash[:0]
				for {
					m, ok := inbox.TryRecv()
					if !ok {
						break
					}
					serve(m)
				}
				// Initiate our own exchange and hold everything else until
				// it completes — the deadlock-prone discipline.
				var peer int
				if x.overlay != nil {
					nb := x.overlay.Neighbors[w]
					peer = nb[r.Intn(len(nb))]
				} else {
					peer = r.Intn(W - 1)
					if peer >= w {
						peer++
					}
				}
				var payload []float32
				if x.reps[w].mathOn() {
					payload = x.reps[w].params()
				}
				x.net.Send(simnet.Msg{From: x.workerNode[w], To: x.workerNode[peer],
					Kind: kindExchangeReq, Clock: it, Bytes: x.fullBytes(), Vec: payload})
				for {
					m := inbox.Recv(p)
					if m.Kind == kindExchangeReply {
						x.reps[w].average(m.Vec)
						break
					}
					stash = append(stash, m)
				}
			}
		})
	}
}
