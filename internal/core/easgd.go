package core

import (
	"fmt"

	"disttrain/internal/des"
	"disttrain/internal/metrics"
	"disttrain/internal/simnet"
)

// runEASGD implements Elastic Averaging SGD (Section III-D, after Zhang et
// al.): workers train locally and only every τ iterations exchange
// *parameters* with the PS, which performs the symmetric elastic move
// x̃ += α(xᵢ − x̃), xᵢ −= α(xᵢ − x̃). Following the paper's implementation,
// both the global and the worker's local parameters are updated on the PS in
// one visit, and the PS sends back the updated local parameters (not the
// global ones).
func runEASGD(x *exp) {
	cfg := x.cfg
	alpha := float32(cfg.MovingRate)

	for s := range x.assign {
		s := s
		x.eng.Spawn(fmt.Sprintf("easgd-ps%d", s), func(p *des.Proc) {
			inbox := x.psInbox(s)
			for {
				m := inbox.Recv(p)
				if m.Kind != kindEASGDPush {
					panic(fmt.Sprintf("easgd shard: unexpected kind %d", m.Kind))
				}
				psAggSleep(p, m.Bytes)
				// ElasticUpdate mutates m.Vec in place over this shard's
				// ranges; the reply carries the updated local parameters.
				x.global.ElasticUpdate(x.assign[s], m.Vec, alpha)
				x.net.Send(simnet.Msg{From: x.psNode[s], To: m.From,
					Kind: kindEASGDReply, Seg: s, Bytes: x.shardBytes(s), Vec: m.Vec})
			}
		})
	}

	for w := 0; w < cfg.Workers; w++ {
		w := w
		x.eng.Spawn(fmt.Sprintf("easgd-worker%d", w), func(p *des.Proc) {
			inbox := x.inbox(w)
			bd := &x.col.Workers[w].Breakdown
			for it := 1; it <= cfg.Iters; it++ {
				nit, ok := x.gate(p, w, it)
				if !ok {
					break
				}
				it = nit
				gf, _ := x.computePhase(p, w, false)
				x.reps[w].localStep(gf.get(), cfg.LR.At(it-1))

				if it%cfg.Tau == 0 {
					// Push local parameters to every shard; each shard
					// elastically updates its ranges and returns them.
					params := x.reps[w].params() // nil in cost-only mode
					for s := range x.assign {
						var payload []float32
						if params != nil {
							payload = append([]float32(nil), params...)
						}
						x.net.Send(simnet.Msg{From: x.workerNode[w], To: x.psNode[s],
							Kind: kindEASGDPush, Clock: it, Seg: s,
							Bytes: x.shardBytes(s), Vec: payload})
					}
					t0 := p.Now()
					var wire des.Time
					for recv := 0; recv < len(x.assign); recv++ {
						var m simnet.Msg
						if x.inj != nil {
							// Don't wedge on a dropped push or reply:
							// resume local training after the timeout.
							var okr bool
							if m, okr = inbox.RecvTimeout(p, cfg.BarrierTimeoutSec); !okr {
								x.col.Faults.Timeouts++
								break
							}
						} else {
							m = inbox.Recv(p)
						}
						if m.Kind != kindEASGDReply {
							panic(fmt.Sprintf("easgd worker: unexpected kind %d", m.Kind))
						}
						wire += m.WireSec
						if m.Vec != nil {
							x.reps[w].setRanges(x.assign[m.Seg], m.Vec)
						}
					}
					bd.Add(metrics.Network, wire)
					bd.Add(metrics.GlobalAgg, p.Now()-t0-wire)
				}
				x.iterDone(w, it)
			}
			x.finish(w)
		})
	}
}
