package core

import (
	"bytes"
	"context"
	"testing"

	"disttrain/internal/fault"
)

// churnConfig is a real-math elastic run with a multi-worker crash/restart
// schedule: three workers die at different iterations and come back after
// different delays, so the alive membership shrinks and regrows several
// times over the run.
func churnConfig(algo Algo, seed uint64) Config {
	cfg := realConfig(algo, 4, 30, seed)
	cfg.Elastic = true
	mean := cfg.Workload.MeanIterSec()
	cfg.Faults = &fault.Schedule{Events: []fault.Event{
		{Kind: fault.Crash, AtIter: 6, Worker: 1, Restart: 2 * mean},
		{Kind: fault.Crash, AtIter: 12, Worker: 3, Restart: 3 * mean},
		{Kind: fault.Crash, AtIter: 20, Worker: 0, Restart: 2 * mean},
	}}
	return cfg
}

// TestElasticChurnReproducible pins the simulator side of the chaos
// contract: an elastic BSP/AR-SGD run whose membership churns through
// crash/restart cycles exports byte-identical summaries on every repeat of
// the same (config, schedule, seed) triple, and the schedule demonstrably
// fired (crashes and restarts both counted).
func TestElasticChurnReproducible(t *testing.T) {
	for _, algo := range []Algo{BSP, ARSGD} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			var out [2]bytes.Buffer
			for i := range out {
				res, err := Run(context.Background(), churnConfig(algo, 42))
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
				f := res.Metrics.Faults
				if f.Crashes < 3 || f.Restarts < 3 {
					t.Fatalf("run %d: churn did not fire: crashes=%d restarts=%d, want >= 3/3",
						i, f.Crashes, f.Restarts)
				}
				if err := res.WriteJSON(&out[i]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(out[0].Bytes(), out[1].Bytes()) {
				t.Fatalf("%s: same seed+churn schedule produced different summaries:\n%s\n---\n%s",
					algo, out[0].String(), out[1].String())
			}
		})
	}
}

// TestElasticChurnPoolSizeBitIdentical extends the pool-independence
// guarantee to elastic churn: the restart sleeps and membership resizes
// reshuffle which replica futures are in flight at any wall moment, yet
// the realized schedule — and thus the exported summary — must not depend
// on how many real cores execute the passes.
func TestElasticChurnPoolSizeBitIdentical(t *testing.T) {
	for _, algo := range []Algo{BSP, ARSGD} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			cfg := churnConfig(algo, 42)
			want := poolSummary(t, cfg, 0)
			for _, pool := range []int{1, 8} {
				if got := poolSummary(t, cfg, pool); !bytes.Equal(want, got) {
					t.Fatalf("%s churn: summary differs between pool 0 and pool %d:\npool 0: %s\npool %d: %s",
						algo, pool, want, pool, got)
				}
			}
		})
	}
}
