package core

import (
	"context"
	"testing"
)

// TestReplicaSpreadOrdering verifies the paper's core causal claim at the
// parameter level: synchronous algorithms keep all replicas identical;
// every-iteration asynchronous aggregation keeps them close; intermittent
// or asymmetric aggregation lets them drift apart. The drift ordering is
// what produces the accuracy ordering of Tables II/III.
func TestReplicaSpreadOrdering(t *testing.T) {
	spread := map[Algo]float64{}
	for _, algo := range []Algo{BSP, ARSGD, ADPSGD, EASGD, GoSGD} {
		cfg := realConfig(algo, 4, 120, 41)
		cfg.Tau = 8
		cfg.GossipP = 0.05
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		spread[algo] = res.ReplicaSpreadL2
	}

	// Synchronous: bit-identical replicas (spread ~ 0 modulo fp noise).
	for _, algo := range []Algo{BSP, ARSGD} {
		if spread[algo] > 1e-5 {
			t.Fatalf("%s replica spread %.2e, want ~0", algo, spread[algo])
		}
	}
	// Rare gossip must leave more divergence than AD-PSGD's every-iteration
	// symmetric averaging.
	if spread[GoSGD] <= spread[ADPSGD] {
		t.Fatalf("GoSGD spread %.3e not above AD-PSGD %.3e", spread[GoSGD], spread[ADPSGD])
	}
	// Everything asynchronous has nonzero spread.
	for _, algo := range []Algo{ADPSGD, EASGD, GoSGD} {
		if spread[algo] == 0 {
			t.Fatalf("%s spread exactly zero", algo)
		}
	}
}

// TestCostOnlySpreadIsZero: no math, no spread.
func TestCostOnlySpreadIsZero(t *testing.T) {
	res, err := Run(context.Background(), costConfig(GoSGD, 4, 10))
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicaSpreadL2 != 0 {
		t.Fatalf("cost-only spread = %v", res.ReplicaSpreadL2)
	}
}
