// Package ps is the parameter-server substrate for the centralized
// algorithms (BSP, ASP, SSP, EASGD): sharding partitioners that assign
// segments of the flat parameter vector to PS shards, and the shared global
// parameter state a set of shard processes updates.
//
// The policy loops — when a shard aggregates, replies, or waits — differ
// per algorithm and live with the algorithms in internal/core; this package
// provides the mechanism.
package ps

import (
	"fmt"
	"sort"

	"disttrain/internal/nn"
	"disttrain/internal/opt"
)

// Range is a contiguous slice [Off, Off+Len) of the flat parameter vector.
type Range struct {
	Off, Len int
}

// Assignment maps each shard to the ranges it owns. Ranges across all
// shards are disjoint and cover the whole vector.
type Assignment [][]Range

// Bytes returns the wire size of shard s's ranges (4 bytes per parameter).
func (a Assignment) Bytes(s int) int64 {
	var n int64
	for _, r := range a[s] {
		n += int64(r.Len)
	}
	return n * 4
}

// Params returns the number of parameters owned by shard s.
func (a Assignment) Params(s int) int {
	n := 0
	for _, r := range a[s] {
		n += r.Len
	}
	return n
}

// MaxBytes returns the largest shard size in bytes — the sharded-transfer
// critical path.
func (a Assignment) MaxBytes() int64 {
	var m int64
	for s := range a {
		if b := a.Bytes(s); b > m {
			m = b
		}
	}
	return m
}

// Validate checks that the assignment partitions [0, total) exactly.
func (a Assignment) Validate(total int) error {
	var all []Range
	for _, shard := range a {
		all = append(all, shard...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Off < all[j].Off })
	off := 0
	for _, r := range all {
		if r.Off != off {
			return fmt.Errorf("ps: gap or overlap at offset %d (next range at %d)", off, r.Off)
		}
		if r.Len <= 0 {
			return fmt.Errorf("ps: empty range at %d", r.Off)
		}
		off += r.Len
	}
	if off != total {
		return fmt.Errorf("ps: ranges cover %d of %d", off, total)
	}
	return nil
}

// LayerWise assigns whole layers to shards round-robin in layer order —
// TensorFlow's scheme and the paper's default. With skewed layer sizes
// (VGG-16's fc1) one shard ends up with most of the bytes.
func LayerWise(segs []nn.Segment, shards int) Assignment {
	if shards <= 0 {
		panic("ps: need at least one shard")
	}
	a := make(Assignment, shards)
	for i, s := range segs {
		k := i % shards
		a[k] = append(a[k], Range{Off: s.Off, Len: s.Len})
	}
	// A shard may be empty if there are fewer layers than shards; give such
	// shards nothing (their procs simply idle).
	return a
}

// Balanced splits the flat vector into near-equal contiguous chunks,
// ignoring layer boundaries — the "fine-grained sharding" the paper's
// Section VI-C says is necessary for models like VGG-16.
func Balanced(total, shards int) Assignment {
	if shards <= 0 || total <= 0 {
		panic("ps: invalid Balanced args")
	}
	a := make(Assignment, shards)
	for s := 0; s < shards; s++ {
		lo := total * s / shards
		hi := total * (s + 1) / shards
		if hi > lo {
			a[s] = []Range{{Off: lo, Len: hi - lo}}
		}
	}
	return a
}

// Single puts the whole vector on one shard (sharding disabled).
func Single(total int) Assignment {
	return Assignment{{Range{Off: 0, Len: total}}}
}

// Locator answers "which shard owns flat index i" in O(log ranges), so a
// sparse vector can be split across shards in one pass instead of probing
// every shard's range list per entry (O(shards·nnz) at high shard counts).
type Locator struct {
	offs   []int // sorted range starts
	ends   []int // matching range ends (exclusive)
	shards []int // owning shard per range
}

// NewLocator indexes an assignment's ranges by offset.
func NewLocator(a Assignment) *Locator {
	type owned struct {
		r     Range
		shard int
	}
	var all []owned
	for s, ranges := range a {
		for _, r := range ranges {
			all = append(all, owned{r, s})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r.Off < all[j].r.Off })
	l := &Locator{
		offs:   make([]int, len(all)),
		ends:   make([]int, len(all)),
		shards: make([]int, len(all)),
	}
	for i, o := range all {
		l.offs[i] = o.r.Off
		l.ends[i] = o.r.Off + o.r.Len
		l.shards[i] = o.shard
	}
	return l
}

// Shard returns the shard owning flat index i, or -1 if no range covers it.
func (l *Locator) Shard(i int) int {
	// Last range with Off <= i.
	k := sort.Search(len(l.offs), func(j int) bool { return l.offs[j] > i }) - 1
	if k < 0 || i >= l.ends[k] {
		return -1
	}
	return l.shards[k]
}

// Global is the PS-side global parameter state. Shard processes own
// disjoint ranges, so they may update concurrently (in simulated time)
// without coordination. In cost-only mode Params is nil and all math
// methods are no-ops — only timing is simulated.
type Global struct {
	Params []float32
	Opt    *opt.SGD
}

// NewGlobal creates real global state initialized from init (copied).
func NewGlobal(init []float32, momentum, weightDecay float32) *Global {
	p := make([]float32, len(init))
	copy(p, init)
	return &Global{Params: p, Opt: opt.NewSGD(len(init), momentum, weightDecay)}
}

// NewCostOnlyGlobal creates state that tracks no actual parameters.
func NewCostOnlyGlobal() *Global { return &Global{} }

// MathOn reports whether real parameter math is enabled.
func (g *Global) MathOn() bool { return g.Params != nil }

// ApplyGrad applies an SGD step with the given gradient restricted to the
// shard's ranges. grad may be nil in cost-only mode. scale pre-multiplies
// the gradient (e.g. 1/N for an averaged BSP aggregate).
func (g *Global) ApplyGrad(ranges []Range, gradVec []float32, scale, lr float32) {
	if !g.MathOn() || gradVec == nil {
		return
	}
	if scale != 1 {
		// Scale only within the ranges; copy to avoid mutating the caller's
		// aggregate, which BSP reuses for metrics.
		for _, r := range ranges {
			seg := gradVec[r.Off : r.Off+r.Len]
			tmp := make([]float32, len(seg))
			for i, v := range seg {
				tmp[i] = v * scale
			}
			g.stepRange(r, tmp, lr)
		}
		return
	}
	for _, r := range ranges {
		g.stepRange(r, gradVec[r.Off:r.Off+r.Len], lr)
	}
}

func (g *Global) stepRange(r Range, gseg []float32, lr float32) {
	// StepSegment expects full-length vectors; emulate with a window by
	// using the optimizer's segment API directly on the global vector.
	// Build a shim: copy gseg into a scratch full-vector is wasteful, so
	// Opt.StepSegment is given the global params and a full-length gradient
	// view. To keep the optimizer API simple we inline the update here.
	g.Opt.StepSegmentGrad(g.Params, gseg, lr, r.Off, r.Len)
}

// AddDelta adds a worker-computed update (delta) into the shard's ranges —
// the Petuum-style SSP aggregation where the PS is an adder and the
// optimizer lives at the workers. delta is full-length; nil is a no-op.
func (g *Global) AddDelta(ranges []Range, delta []float32) {
	if !g.MathOn() || delta == nil {
		return
	}
	for _, r := range ranges {
		dst := g.Params[r.Off : r.Off+r.Len]
		src := delta[r.Off : r.Off+r.Len]
		for i, v := range src {
			dst[i] += v
		}
	}
}

// ApplySparse applies a DGC sparse update: a plain (momentum-free) SGD step
// on the transmitted coordinates, as DGC prescribes (momentum lives in the
// worker-side compressor).
func (g *Global) ApplySparse(idx []int32, val []float32, scale, lr float32) {
	if !g.MathOn() || idx == nil {
		return
	}
	for j, i := range idx {
		g.Params[i] -= lr * scale * val[j]
	}
}

// ElasticUpdate performs EASGD's symmetric elastic move on the shard's
// ranges: x̃ += α(xᵢ − x̃) and xᵢ ← xᵢ − α(xᵢ − x̃) (evaluated with the old
// x̃). workerParams is updated in place and is what the PS sends back.
func (g *Global) ElasticUpdate(ranges []Range, workerParams []float32, alpha float32) {
	if !g.MathOn() || workerParams == nil {
		return
	}
	for _, r := range ranges {
		for i := r.Off; i < r.Off+r.Len; i++ {
			diff := alpha * (workerParams[i] - g.Params[i])
			g.Params[i] += diff
			workerParams[i] -= diff
		}
	}
}

// Snapshot copies the shard's ranges of the global parameters into dst
// (full-length). No-op in cost-only mode.
func (g *Global) Snapshot(ranges []Range, dst []float32) {
	if !g.MathOn() || dst == nil {
		return
	}
	for _, r := range ranges {
		copy(dst[r.Off:r.Off+r.Len], g.Params[r.Off:r.Off+r.Len])
	}
}
