package ps

import (
	"math"
	"testing"
	"testing/quick"

	"disttrain/internal/nn"
	"disttrain/internal/opt"
	"disttrain/internal/rng"
)

func segsOf(lens ...int) []nn.Segment {
	var segs []nn.Segment
	off := 0
	for i, l := range lens {
		segs = append(segs, nn.Segment{Name: string(rune('a' + i)), Off: off, Len: l})
		off += l
	}
	return segs
}

func TestLayerWisePartition(t *testing.T) {
	segs := segsOf(10, 20, 30, 40)
	a := LayerWise(segs, 2)
	if err := a.Validate(100); err != nil {
		t.Fatal(err)
	}
	// shard 0: layers 0,2 -> 40 params; shard 1: layers 1,3 -> 60 params.
	if a.Params(0) != 40 || a.Params(1) != 60 {
		t.Fatalf("params = %d/%d", a.Params(0), a.Params(1))
	}
}

func TestLayerWiseSkew(t *testing.T) {
	// A VGG-like skewed layer lands whole on one shard under layer-wise
	// sharding — this is the bottleneck the paper identifies.
	segs := segsOf(5, 5, 80, 5, 5)
	a := LayerWise(segs, 4)
	if a.MaxBytes() != 80*4 {
		t.Fatalf("max shard bytes = %d, want 320", a.MaxBytes())
	}
}

func TestBalancedPartition(t *testing.T) {
	a := Balanced(100, 4)
	if err := a.Validate(100); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 4; s++ {
		if a.Params(s) != 25 {
			t.Fatalf("shard %d has %d params", s, a.Params(s))
		}
	}
}

func TestBalancedBeatsLayerWiseOnSkew(t *testing.T) {
	segs := segsOf(5, 5, 80, 5, 5)
	lw := LayerWise(segs, 4)
	bal := Balanced(100, 4)
	if bal.MaxBytes() >= lw.MaxBytes() {
		t.Fatalf("balanced max %d not < layer-wise max %d", bal.MaxBytes(), lw.MaxBytes())
	}
}

func TestSinglePartition(t *testing.T) {
	a := Single(42)
	if err := a.Validate(42); err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || a.Bytes(0) != 42*4 {
		t.Fatalf("single = %+v", a)
	}
}

func TestPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nLayers := 1 + r.Intn(20)
		lens := make([]int, nLayers)
		total := 0
		for i := range lens {
			lens[i] = 1 + r.Intn(50)
			total += lens[i]
		}
		shards := 1 + r.Intn(6)
		if LayerWise(segsOf(lens...), shards).Validate(total) != nil {
			return false
		}
		return Balanced(total, shards).Validate(total) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionersAtScale(t *testing.T) {
	// ResNet-50-sized vector over 256 and 1024 shards: both partitioners
	// must still produce exact covers, and Balanced must keep every shard
	// within one parameter of the ideal slice.
	const total = 23_500_000
	var segs []nn.Segment
	{
		// ~160 layers of uneven sizes summing to total.
		var lens []int
		r := rng.New(7)
		rem := total
		for rem > 0 {
			l := 1 + r.Intn(300_000)
			if l > rem {
				l = rem
			}
			lens = append(lens, l)
			rem -= l
		}
		segs = segsOf(lens...)
	}
	for _, shards := range []int{256, 1024} {
		lw := LayerWise(segs, shards)
		if err := lw.Validate(total); err != nil {
			t.Fatalf("LayerWise(%d): %v", shards, err)
		}
		bal := Balanced(total, shards)
		if err := bal.Validate(total); err != nil {
			t.Fatalf("Balanced(%d): %v", shards, err)
		}
		ideal := int64(total) * 4 / int64(shards)
		if m := bal.MaxBytes(); m > ideal+4 {
			t.Fatalf("Balanced(%d) max shard %d bytes, ideal %d", shards, m, ideal)
		}
		// Balanced's critical path can never exceed layer-wise's: layer
		// granularity only concentrates bytes.
		if bal.MaxBytes() > lw.MaxBytes() {
			t.Fatalf("Balanced max %d > LayerWise max %d at %d shards",
				bal.MaxBytes(), lw.MaxBytes(), shards)
		}
	}
}

func TestLocatorMatchesLinearScan(t *testing.T) {
	segs := segsOf(5, 5, 80, 5, 5)
	for name, a := range map[string]Assignment{
		"layerwise": LayerWise(segs, 4),
		"balanced":  Balanced(100, 7),
		"single":    Single(100),
	} {
		loc := NewLocator(a)
		for i := 0; i < 100; i++ {
			want := -1
			for s, ranges := range a {
				for _, r := range ranges {
					if i >= r.Off && i < r.Off+r.Len {
						want = s
					}
				}
			}
			if got := loc.Shard(i); got != want {
				t.Fatalf("%s: Shard(%d) = %d, want %d", name, i, got, want)
			}
		}
		if loc.Shard(-1) != -1 || loc.Shard(100) != -1 {
			t.Fatalf("%s: out-of-range index located", name)
		}
	}
}

func TestLocatorAtScale(t *testing.T) {
	const total = 1 << 20
	a := Balanced(total, 1024)
	loc := NewLocator(a)
	for _, i := range []int{0, 1023, 1024, total / 2, total - 1} {
		want := i / (total / 1024)
		if got := loc.Shard(i); got != want {
			t.Fatalf("Shard(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	a := Assignment{{Range{0, 10}}, {Range{5, 10}}}
	if a.Validate(15) == nil {
		t.Fatal("overlap accepted")
	}
}

func TestValidateCatchesGap(t *testing.T) {
	a := Assignment{{Range{0, 5}}, {Range{10, 5}}}
	if a.Validate(15) == nil {
		t.Fatal("gap accepted")
	}
}

func TestGlobalApplyGradMatchesDirectSGD(t *testing.T) {
	r := rng.New(1)
	n := 30
	init := make([]float32, n)
	grads := make([]float32, n)
	for i := range init {
		init[i] = float32(r.NormFloat64())
		grads[i] = float32(r.NormFloat64())
	}
	g := NewGlobal(init, 0.9, 0.01)
	// Sharded application over Balanced(.,3) must equal one full step.
	a := Balanced(n, 3)
	for step := 0; step < 3; step++ {
		for s := range a {
			// each shard sees the full-length gradient vector
			g.ApplyGrad(a[s], grads, 1, 0.1)
		}
	}
	want := make([]float32, n)
	copy(want, init)
	ref := opt.NewSGD(n, 0.9, 0.01)
	for step := 0; step < 3; step++ {
		ref.Step(want, grads, 0.1)
	}
	for i := range want {
		if math.Abs(float64(g.Params[i]-want[i])) > 1e-6 {
			t.Fatalf("mismatch at %d: %v vs %v", i, g.Params[i], want[i])
		}
	}
}

func TestGlobalApplyGradScale(t *testing.T) {
	init := []float32{0, 0}
	g := NewGlobal(init, 0, 0)
	grad := []float32{4, 8}
	g.ApplyGrad([]Range{{0, 2}}, grad, 0.25, 1)
	if g.Params[0] != -1 || g.Params[1] != -2 {
		t.Fatalf("params = %v", g.Params)
	}
	// caller's gradient must be untouched
	if grad[0] != 4 {
		t.Fatal("ApplyGrad mutated caller gradient")
	}
}

func TestCostOnlyGlobalNoOps(t *testing.T) {
	g := NewCostOnlyGlobal()
	if g.MathOn() {
		t.Fatal("cost-only global claims math")
	}
	// All of these must be safe no-ops.
	g.ApplyGrad([]Range{{0, 4}}, nil, 1, 0.1)
	g.ApplySparse(nil, nil, 1, 0.1)
	g.ElasticUpdate([]Range{{0, 4}}, nil, 0.5)
	g.Snapshot([]Range{{0, 4}}, nil)
}

func TestElasticUpdateSymmetric(t *testing.T) {
	g := NewGlobal([]float32{0, 0}, 0, 0)
	wp := []float32{4, -4}
	g.ElasticUpdate([]Range{{0, 2}}, wp, 0.5)
	// diff = 0.5*(4-0)=2: global 0->2, worker 4->2.
	if g.Params[0] != 2 || wp[0] != 2 {
		t.Fatalf("global %v worker %v", g.Params, wp)
	}
	if g.Params[1] != -2 || wp[1] != -2 {
		t.Fatalf("global %v worker %v", g.Params, wp)
	}
}

func TestElasticUpdateConverges(t *testing.T) {
	// Repeated elastic moves pull worker and center together.
	g := NewGlobal([]float32{0}, 0, 0)
	wp := []float32{10}
	for i := 0; i < 50; i++ {
		g.ElasticUpdate([]Range{{0, 1}}, wp, 0.3)
	}
	if math.Abs(float64(wp[0]-g.Params[0])) > 1e-3 {
		t.Fatalf("did not converge: worker %v center %v", wp[0], g.Params[0])
	}
}

func TestApplySparse(t *testing.T) {
	g := NewGlobal([]float32{1, 1, 1, 1}, 0.9, 0)
	g.ApplySparse([]int32{1, 3}, []float32{2, -2}, 0.5, 0.1)
	if math.Abs(float64(g.Params[1])-0.9) > 1e-6 || math.Abs(float64(g.Params[3])-1.1) > 1e-6 {
		t.Fatalf("params = %v", g.Params)
	}
	if g.Params[0] != 1 || g.Params[2] != 1 {
		t.Fatal("untouched coordinates changed")
	}
}

func TestSnapshotCopiesOnlyRanges(t *testing.T) {
	g := NewGlobal([]float32{1, 2, 3, 4}, 0, 0)
	dst := []float32{0, 0, 0, 0}
	g.Snapshot([]Range{{1, 2}}, dst)
	if dst[0] != 0 || dst[1] != 2 || dst[2] != 3 || dst[3] != 0 {
		t.Fatalf("dst = %v", dst)
	}
}
