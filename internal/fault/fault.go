// Package fault is a deterministic fault-schedule engine for the simulated
// cluster: worker crashes (with optional restart), transient compute
// slowdowns beyond the baseline jitter, link bandwidth degradation,
// probabilistic message drop, and machine-level network partitions.
//
// Every fault is declared up front in a Schedule and evaluated against the
// discrete-event engine's virtual clock, so a given (Config, Schedule, seed)
// triple always produces the identical run — the same bit-for-bit
// reproducibility guarantee the rest of the simulator makes.
//
// Crashes are iteration-quantized: a crash at virtual time t kills the
// worker at the boundary of nominal iteration 1+floor(t/meanIterSec) (or at
// the explicit AtIter). Quantizing to iteration boundaries is what lets
// every process in a synchronous algorithm — PS shards counting senders,
// AllReduce rings choosing members — agree on the barrier membership of any
// round by evaluating the same pure function, without exchanging any
// liveness messages. Network faults (drop, degrade, partition) and
// slowdowns use exact virtual-time windows instead; they need no global
// agreement.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"disttrain/internal/rng"
)

// Kind names a fault type.
type Kind string

// The five fault kinds.
const (
	// Crash kills a worker at an iteration boundary; Restart > 0 revives it
	// after that many seconds.
	Crash Kind = "crash"
	// Slow multiplies a worker's compute time by Factor over a time window.
	Slow Kind = "slow"
	// Degrade multiplies the wire time of inter-machine transfers touching
	// Machine (-1 = every machine) by Factor over a time window.
	Degrade Kind = "degrade"
	// Drop loses each inter-machine message touching Machine (-1 = all) with
	// probability Prob over a time window.
	Drop Kind = "drop"
	// Partition cuts the machines listed in Machines off from the rest over
	// a time window; messages across the cut are lost.
	Partition Kind = "partition"
)

// Event is one scheduled fault.
type Event struct {
	Kind Kind `json:"kind"`
	// At is the virtual time (seconds) the fault begins.
	At float64 `json:"at"`
	// AtIter pins a crash to a 1-based iteration boundary, overriding At.
	AtIter int `json:"at_iter,omitempty"`
	// Duration bounds slow/degrade/drop/partition windows; <= 0 means the
	// rest of the run.
	Duration float64 `json:"duration,omitempty"`
	// Worker targets crash and slow events.
	Worker int `json:"worker,omitempty"`
	// Machine targets degrade and drop events; -1 means every
	// inter-machine link (JSON authors must write -1 explicitly).
	Machine int `json:"machine,omitempty"`
	// Machines lists one side of a partition cut.
	Machines []int `json:"machines,omitempty"`
	// Restart revives a crashed worker after this many seconds; 0 = never.
	Restart float64 `json:"restart,omitempty"`
	// Factor is the compute (slow) or wire-time (degrade) multiplier.
	Factor float64 `json:"factor,omitempty"`
	// Prob is the per-message drop probability.
	Prob float64 `json:"prob,omitempty"`
}

// Schedule is a set of fault events; the zero value injects nothing.
type Schedule struct {
	Events []Event `json:"events"`
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// HasKind reports whether any event has the given kind.
func (s *Schedule) HasKind(k Kind) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// Validate checks every event against the cluster shape.
func (s *Schedule) Validate(workers, machines int) error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if err := e.validate(workers, machines); err != nil {
			return fmt.Errorf("fault: event %d (%s): %w", i, e.Kind, err)
		}
	}
	return nil
}

func (e Event) validate(workers, machines int) error {
	if e.At < 0 {
		return fmt.Errorf("negative start time %v", e.At)
	}
	if e.Duration < 0 {
		return fmt.Errorf("negative duration %v", e.Duration)
	}
	switch e.Kind {
	case Crash:
		if e.Worker < 0 || e.Worker >= workers {
			return fmt.Errorf("worker %d of %d", e.Worker, workers)
		}
		if e.AtIter < 0 {
			return fmt.Errorf("negative AtIter %d", e.AtIter)
		}
		if e.Restart < 0 {
			return fmt.Errorf("negative restart delay %v", e.Restart)
		}
	case Slow:
		if e.Worker < 0 || e.Worker >= workers {
			return fmt.Errorf("worker %d of %d", e.Worker, workers)
		}
		if e.Factor <= 0 {
			return fmt.Errorf("factor %v (need > 0)", e.Factor)
		}
	case Degrade:
		if e.Machine < -1 || e.Machine >= machines {
			return fmt.Errorf("machine %d of %d", e.Machine, machines)
		}
		if e.Factor <= 0 {
			return fmt.Errorf("factor %v (need > 0)", e.Factor)
		}
	case Drop:
		if e.Machine < -1 || e.Machine >= machines {
			return fmt.Errorf("machine %d of %d", e.Machine, machines)
		}
		if e.Prob <= 0 || e.Prob > 1 {
			return fmt.Errorf("drop probability %v (need 0 < p <= 1)", e.Prob)
		}
	case Partition:
		if len(e.Machines) == 0 {
			return fmt.Errorf("empty machine list")
		}
		if len(e.Machines) >= machines {
			return fmt.Errorf("partition side lists %d of %d machines (need a proper subset)", len(e.Machines), machines)
		}
		for _, m := range e.Machines {
			if m < 0 || m >= machines {
				return fmt.Errorf("machine %d of %d", m, machines)
			}
		}
	default:
		return fmt.Errorf("unknown kind %q", e.Kind)
	}
	return nil
}

// ParseSpec parses the compact CLI schedule syntax: events separated by
// ';', each `kind@time[:field...]` with fields separated by ':'.
//
//	crash@iter20:w3:restart=5     crash worker 3 at iteration 20, back 5 s later
//	crash@2.5:w0                  kill worker 0 for good at t=2.5 s
//	slow@10:w2:x4:for=30          4x compute slowdown on worker 2 for 30 s
//	degrade@10:m1:x8:for=30       8x wire-time on machine 1's links for 30 s
//	drop@10:p=0.05:for=60         drop 5 % of all cross-machine messages
//	partition@10:m0,1:for=30      cut machines {0,1} off for 30 s
func ParseSpec(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := parseEvent(part)
		if err != nil {
			return nil, fmt.Errorf("fault: %q: %w", part, err)
		}
		s.Events = append(s.Events, e)
	}
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("fault: empty schedule spec %q", spec)
	}
	return s, nil
}

func parseEvent(spec string) (Event, error) {
	e := Event{Machine: -1}
	fields := strings.Split(spec, ":")
	head := strings.SplitN(fields[0], "@", 2)
	if len(head) != 2 {
		return e, fmt.Errorf("want kind@time")
	}
	e.Kind = Kind(head[0])
	if it, ok := strings.CutPrefix(head[1], "iter"); ok {
		n, err := strconv.Atoi(it)
		if err != nil {
			return e, fmt.Errorf("iteration %q: %w", it, err)
		}
		e.AtIter = n
	} else {
		t, err := strconv.ParseFloat(head[1], 64)
		if err != nil {
			return e, fmt.Errorf("time %q: %w", head[1], err)
		}
		e.At = t
	}
	for _, f := range fields[1:] {
		switch {
		case strings.HasPrefix(f, "w"):
			n, err := strconv.Atoi(f[1:])
			if err != nil {
				return e, fmt.Errorf("worker %q: %w", f, err)
			}
			e.Worker = n
		case strings.HasPrefix(f, "m"):
			for _, ms := range strings.Split(f[1:], ",") {
				n, err := strconv.Atoi(ms)
				if err != nil {
					return e, fmt.Errorf("machine %q: %w", f, err)
				}
				e.Machines = append(e.Machines, n)
			}
			e.Machine = e.Machines[0]
			if e.Kind != Partition {
				e.Machines = nil
			}
		case strings.HasPrefix(f, "x"):
			v, err := strconv.ParseFloat(f[1:], 64)
			if err != nil {
				return e, fmt.Errorf("factor %q: %w", f, err)
			}
			e.Factor = v
		case strings.HasPrefix(f, "for="):
			v, err := strconv.ParseFloat(f[4:], 64)
			if err != nil {
				return e, fmt.Errorf("duration %q: %w", f, err)
			}
			e.Duration = v
		case strings.HasPrefix(f, "restart="):
			v, err := strconv.ParseFloat(f[8:], 64)
			if err != nil {
				return e, fmt.Errorf("restart %q: %w", f, err)
			}
			e.Restart = v
		case strings.HasPrefix(f, "p="):
			v, err := strconv.ParseFloat(f[2:], 64)
			if err != nil {
				return e, fmt.Errorf("probability %q: %w", f, err)
			}
			e.Prob = v
		default:
			return e, fmt.Errorf("unknown field %q", f)
		}
	}
	return e, nil
}

// String renders the event back in the compact spec syntax.
func (e Event) String() string {
	var b strings.Builder
	if e.AtIter > 0 {
		fmt.Fprintf(&b, "%s@iter%d", e.Kind, e.AtIter)
	} else {
		fmt.Fprintf(&b, "%s@%g", e.Kind, e.At)
	}
	switch e.Kind {
	case Crash:
		fmt.Fprintf(&b, ":w%d", e.Worker)
		if e.Restart > 0 {
			fmt.Fprintf(&b, ":restart=%g", e.Restart)
		}
	case Slow:
		fmt.Fprintf(&b, ":w%d:x%g", e.Worker, e.Factor)
	case Degrade:
		if e.Machine >= 0 {
			fmt.Fprintf(&b, ":m%d", e.Machine)
		}
		fmt.Fprintf(&b, ":x%g", e.Factor)
	case Drop:
		if e.Machine >= 0 {
			fmt.Fprintf(&b, ":m%d", e.Machine)
		}
		fmt.Fprintf(&b, ":p=%g", e.Prob)
	case Partition:
		// An empty cut renders without the field: ":m" alone is not valid
		// spec syntax (Validate rejects the event either way).
		if len(e.Machines) > 0 {
			b.WriteString(":m")
			for i, m := range e.Machines {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", m)
			}
		}
	}
	if e.Duration > 0 {
		fmt.Fprintf(&b, ":for=%g", e.Duration)
	}
	return b.String()
}

// crashSpan is one dead interval in iteration space: the worker is dead for
// iterations [die, resume); resume == 0 means forever.
type crashSpan struct {
	die    int
	resume int
	delay  float64
}

// window is a time-bounded fault effect.
type window struct {
	from, to float64 // to == +Inf for unbounded
	worker   int
	machine  int
	factor   float64
	prob     float64
	side     map[int]bool // partition side
}

func (w window) contains(t float64) bool { return t >= w.from && t < w.to }

// Injector evaluates a validated Schedule against the virtual clock. It is
// a pure lookup structure except for the drop RNG, which is consumed once
// per matching cross-machine send in deterministic engine order. It
// satisfies simnet's FaultModel interface.
type Injector struct {
	workers, machines int
	mean              float64
	crashes           [][]crashSpan // per worker, sorted by die
	slows             []window
	degrades          []window
	drops             []window
	parts             []window
	dropRNG           *rng.RNG
}

// NewInjector compiles a schedule. meanIterSec is the nominal (jitter-free)
// iteration time used to quantize crash times to iteration boundaries; seed
// feeds the message-drop RNG stream.
func NewInjector(s *Schedule, workers, machines int, meanIterSec float64, seed uint64) *Injector {
	in := &Injector{
		workers:  workers,
		machines: machines,
		mean:     meanIterSec,
		crashes:  make([][]crashSpan, workers),
		dropRNG:  rng.New(seed).Split(5), // labels 1-4 are taken by core
	}
	for _, e := range s.Events {
		to := math.Inf(1)
		if e.Duration > 0 {
			to = e.At + e.Duration
		}
		switch e.Kind {
		case Crash:
			die := e.AtIter
			if die == 0 {
				die = 1 + int(math.Floor(e.At/meanIterSec))
			}
			sp := crashSpan{die: die, delay: e.Restart}
			if e.Restart > 0 {
				sp.resume = die + int(math.Max(1, math.Ceil(e.Restart/meanIterSec)))
			}
			in.crashes[e.Worker] = append(in.crashes[e.Worker], sp)
		case Slow:
			in.slows = append(in.slows, window{from: e.At, to: to, worker: e.Worker, factor: e.Factor})
		case Degrade:
			in.degrades = append(in.degrades, window{from: e.At, to: to, machine: e.Machine, factor: e.Factor})
		case Drop:
			in.drops = append(in.drops, window{from: e.At, to: to, machine: e.Machine, prob: e.Prob})
		case Partition:
			side := make(map[int]bool, len(e.Machines))
			for _, m := range e.Machines {
				side[m] = true
			}
			in.parts = append(in.parts, window{from: e.At, to: to, side: side})
		}
	}
	for w := range in.crashes {
		sort.Slice(in.crashes[w], func(i, j int) bool { return in.crashes[w][i].die < in.crashes[w][j].die })
	}
	return in
}

// AliveAtIter reports whether worker w runs its 1-based iteration it. It is
// a pure function of the schedule, so every process in a run can evaluate
// the barrier membership of any round consistently.
func (in *Injector) AliveAtIter(w, it int) bool {
	for _, sp := range in.crashes[w] {
		if it >= sp.die && (sp.resume == 0 || it < sp.resume) {
			return false
		}
	}
	return true
}

// NextAliveIter returns the first iteration >= it that worker w runs, or 0
// if it never runs again.
func (in *Injector) NextAliveIter(w, it int) int {
	for {
		dead := false
		for _, sp := range in.crashes[w] {
			if it >= sp.die && sp.resume == 0 {
				return 0
			}
			if it >= sp.die && it < sp.resume {
				dead = true
				if sp.resume > it {
					it = sp.resume
				}
			}
		}
		if !dead {
			return it
		}
	}
}

// RestartDelay returns the restart sleep for a worker dying at iteration it
// (the delay of the latest crash span covering it).
func (in *Injector) RestartDelay(w, it int) float64 {
	var d float64
	for _, sp := range in.crashes[w] {
		if it >= sp.die && (sp.resume == 0 || it < sp.resume) {
			d = sp.delay
		}
	}
	return d
}

// DeadAt reports whether worker w is inside a dead window at virtual time
// t, judged on the nominal iteration clock.
func (in *Injector) DeadAt(w int, t float64) bool {
	return !in.AliveAtIter(w, 1+int(math.Floor(t/in.mean)))
}

// ComputeMult returns the compute-time multiplier for worker w at time t
// (the product of all active slow windows; 1 when none).
func (in *Injector) ComputeMult(w int, t float64) float64 {
	m := 1.0
	for _, win := range in.slows {
		if win.worker == w && win.contains(t) {
			m *= win.factor
		}
	}
	return m
}

// Partitioned reports whether machines m1 and m2 are on opposite sides of
// an active partition at time t. Pure (no RNG).
func (in *Injector) Partitioned(t float64, m1, m2 int) bool {
	for _, win := range in.parts {
		if win.contains(t) && win.side[m1] != win.side[m2] {
			return true
		}
	}
	return false
}

// Cut reports whether a message sent now from machine `from` to machine
// `to` is lost — either partitioned away or probabilistically dropped. The
// drop RNG is consumed here, once per matching send, in engine order.
func (in *Injector) Cut(now float64, from, to int) bool {
	if from == to {
		return false
	}
	if in.Partitioned(now, from, to) {
		return true
	}
	for _, win := range in.drops {
		if !win.contains(now) {
			continue
		}
		if win.machine >= 0 && win.machine != from && win.machine != to {
			continue
		}
		if in.dropRNG.Bernoulli(win.prob) {
			return true
		}
	}
	return false
}

// Slow returns the wire-time multiplier for a transfer from machine `from`
// to machine `to` at time t (product of active degrade windows; 1 = none).
func (in *Injector) Slow(t float64, from, to int) float64 {
	m := 1.0
	for _, win := range in.degrades {
		if !win.contains(t) {
			continue
		}
		if win.machine >= 0 && win.machine != from && win.machine != to {
			continue
		}
		m *= win.factor
	}
	return m
}

// MeanIterSec returns the nominal iteration time the injector quantizes
// crashes with.
func (in *Injector) MeanIterSec() float64 { return in.mean }
