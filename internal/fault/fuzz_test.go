package fault

import "testing"

// FuzzParseSpec feeds arbitrary strings to the CLI schedule parser. The
// contract under fuzz: every input returns normally — a schedule or an
// error — with no panic, and any event the parser accepts renders back
// through Event.String into a spec the parser accepts again (re-parse
// success, not string equality: %g formatting canonicalizes numbers).
func FuzzParseSpec(f *testing.F) {
	for _, spec := range []string{
		"crash@iter20:w3:restart=5",
		"crash@2.5:w0",
		"slow@10:w2:x4:for=30",
		"degrade@10:m1:x8:for=30",
		"drop@10:p=0.05:for=60",
		"partition@10:m0,1:for=30",
		"crash@iter5:w1 ; slow@2:w0:x3",
		"crash@1e300:w0",
		"slow@1:w0:xNaN",
		"crash@-1:w-2",
		"partition@0:m,",
		"@:",
		";;;",
		"crash@iter9999999999999999999:w0",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			return
		}
		for _, e := range s.Events {
			rendered := e.String()
			if _, err := ParseSpec(rendered); err != nil {
				t.Fatalf("accepted event %+v renders to %q which fails to re-parse: %v",
					e, rendered, err)
			}
		}
	})
}
