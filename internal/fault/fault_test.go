package fault

import (
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"crash@iter20:w3:restart=5",
		"crash@2.5:w0",
		"slow@10:w2:x4:for=30",
		"degrade@10:m1:x8:for=30",
		"degrade@10:x8",
		"drop@10:p=0.05:for=60",
		"drop@10:m0:p=0.5",
		"partition@10:m0,1:for=30",
	}
	for _, spec := range specs {
		s, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if len(s.Events) != 1 {
			t.Fatalf("%q: %d events", spec, len(s.Events))
		}
		if got := s.Events[0].String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
	}
}

func TestParseSpecMulti(t *testing.T) {
	s, err := ParseSpec("crash@iter5:w1 ; slow@2:w0:x3")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 2 {
		t.Fatalf("want 2 events, got %d", len(s.Events))
	}
	if s.Events[0].Kind != Crash || s.Events[0].AtIter != 5 || s.Events[0].Worker != 1 {
		t.Fatalf("bad first event: %+v", s.Events[0])
	}
	if s.Events[1].Kind != Slow || s.Events[1].Factor != 3 {
		t.Fatalf("bad second event: %+v", s.Events[1])
	}
	if !s.HasKind(Crash) || !s.HasKind(Slow) || s.HasKind(Drop) {
		t.Fatal("HasKind mismatch")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",                     // empty schedule
		"crash",                // no @time
		"crash@abc:w0",         // bad time
		"crash@iterx:w0",       // bad iteration
		"crash@1:w0:bogus=1",   // unknown field
		"slow@1:w0:xfast",      // bad factor
		"drop@1:p=lots",        // bad probability
		"crash@1:w0:restart=z", // bad restart
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("%q: expected parse error", spec)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		e    Event
		want string
	}{
		{"crash worker range", Event{Kind: Crash, Worker: 8}, "worker"},
		{"negative time", Event{Kind: Slow, At: -2, Factor: 2}, "negative start"},
		{"negative duration", Event{Kind: Drop, Machine: -1, Prob: 0.1, Duration: -1}, "negative duration"},
		{"slow factor", Event{Kind: Slow, Worker: 0, Factor: -1}, "factor"},
		{"degrade machine", Event{Kind: Degrade, Machine: 9, Factor: 2}, "machine"},
		{"drop prob zero", Event{Kind: Drop, Machine: -1, Prob: 0}, "probability"},
		{"drop prob high", Event{Kind: Drop, Machine: -1, Prob: 1.01}, "probability"},
		{"partition empty", Event{Kind: Partition}, "empty machine list"},
		{"partition full cut", Event{Kind: Partition, Machines: []int{0, 1}}, "proper subset"},
		{"partition machine range", Event{Kind: Partition, Machines: []int{5}}, "machine"},
		{"unknown kind", Event{Kind: "meltdown"}, "unknown kind"},
		{"negative restart", Event{Kind: Crash, Worker: 0, Restart: -1}, "restart"},
	}
	for _, tc := range cases {
		s := &Schedule{Events: []Event{tc.e}}
		err := s.Validate(8, 2)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	ok := &Schedule{Events: []Event{
		{Kind: Crash, Worker: 7, AtIter: 3, Restart: 1},
		{Kind: Partition, Machines: []int{1}, At: 5, Duration: 10},
	}}
	if err := ok.Validate(8, 2); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if err := (*Schedule)(nil).Validate(8, 2); err != nil {
		t.Fatalf("nil schedule rejected: %v", err)
	}
}

func TestCrashSpans(t *testing.T) {
	// Worker 1: dead iters [5, 8) then back; worker 2: dead from iter 10 on.
	// 1 nominal iteration = 2 s, restart = 5 s -> ceil(5/2) = 3 iterations.
	s := &Schedule{Events: []Event{
		{Kind: Crash, Worker: 1, AtIter: 5, Restart: 5},
		{Kind: Crash, Worker: 2, At: 18}, // 1+floor(18/2) = iteration 10
	}}
	in := NewInjector(s, 4, 2, 2.0, 1)

	for it, want := range map[int]bool{4: true, 5: false, 7: false, 8: true} {
		if got := in.AliveAtIter(1, it); got != want {
			t.Errorf("AliveAtIter(1, %d) = %v, want %v", it, got, want)
		}
	}
	if in.AliveAtIter(2, 9) != true || in.AliveAtIter(2, 10) != false || in.AliveAtIter(2, 999) != false {
		t.Error("permanent crash window wrong")
	}
	if got := in.NextAliveIter(1, 5); got != 8 {
		t.Errorf("NextAliveIter(1, 5) = %d, want 8", got)
	}
	if got := in.NextAliveIter(1, 3); got != 3 {
		t.Errorf("NextAliveIter(1, 3) = %d, want 3", got)
	}
	if got := in.NextAliveIter(2, 10); got != 0 {
		t.Errorf("NextAliveIter(2, 10) = %d, want 0 (never)", got)
	}
	if got := in.RestartDelay(1, 6); got != 5 {
		t.Errorf("RestartDelay(1, 6) = %v, want 5", got)
	}
	// DeadAt judges on the nominal clock: iteration 5 spans t in [8, 10).
	if in.DeadAt(1, 7.9) || !in.DeadAt(1, 8.5) || in.DeadAt(1, 14.5) {
		t.Error("DeadAt nominal-clock mapping wrong")
	}
	if in.MeanIterSec() != 2.0 {
		t.Errorf("MeanIterSec = %v", in.MeanIterSec())
	}
}

func TestComputeMultAndSlowWindows(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: Slow, Worker: 0, At: 10, Duration: 5, Factor: 3},
		{Kind: Slow, Worker: 0, At: 12, Duration: 10, Factor: 2},
		{Kind: Degrade, Machine: 1, At: 0, Factor: 8},
		{Kind: Degrade, Machine: -1, At: 5, Duration: 5, Factor: 2},
	}}
	in := NewInjector(s, 2, 3, 1.0, 1)

	if got := in.ComputeMult(0, 9); got != 1 {
		t.Errorf("before window: %v", got)
	}
	if got := in.ComputeMult(0, 13); got != 6 {
		t.Errorf("overlapping windows should stack: got %v, want 6", got)
	}
	if got := in.ComputeMult(1, 13); got != 1 {
		t.Errorf("other worker slowed: %v", got)
	}
	if got := in.Slow(1, 0, 1); got != 8 {
		t.Errorf("degrade touching machine 1: got %v, want 8", got)
	}
	if got := in.Slow(1, 0, 2); got != 1 {
		t.Errorf("degrade leaking to links not touching machine 1: %v", got)
	}
	if got := in.Slow(6, 0, 2); got != 2 {
		t.Errorf("machine=-1 degrade: got %v, want 2", got)
	}
	if got := in.Slow(6, 0, 1); got != 16 {
		t.Errorf("stacked degrades: got %v, want 16", got)
	}
}

func TestPartitionAndCut(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: Partition, Machines: []int{0}, At: 10, Duration: 10},
	}}
	in := NewInjector(s, 4, 3, 1.0, 1)

	if in.Partitioned(5, 0, 1) {
		t.Error("partition active before its window")
	}
	if !in.Partitioned(15, 0, 1) || !in.Partitioned(15, 2, 0) {
		t.Error("cross-cut pair not partitioned")
	}
	if in.Partitioned(15, 1, 2) {
		t.Error("same-side pair partitioned")
	}
	if !in.Cut(15, 0, 1) {
		t.Error("Cut should lose messages across the partition")
	}
	if in.Cut(15, 0, 0) {
		t.Error("intra-machine messages are never cut")
	}
	if in.Cut(25, 0, 1) {
		t.Error("partition still active after its window")
	}
}

func TestDropDeterminism(t *testing.T) {
	mk := func(seed uint64) []bool {
		s := &Schedule{Events: []Event{{Kind: Drop, Machine: -1, Prob: 0.3}}}
		in := NewInjector(s, 4, 2, 1.0, seed)
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Cut(float64(i), 0, 1)
		}
		return out
	}
	a, b := mk(7), mk(7)
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("p=0.3 dropped %d of %d — RNG not plausible", drops, len(a))
	}
	c := mk(8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical drop streams")
	}
}

func TestEmptySchedule(t *testing.T) {
	if !(*Schedule)(nil).Empty() || !(&Schedule{}).Empty() {
		t.Fatal("Empty misreports empty schedules")
	}
	if (&Schedule{Events: []Event{{Kind: Crash}}}).Empty() {
		t.Fatal("Empty misreports a populated schedule")
	}
}
