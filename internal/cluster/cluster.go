// Package cluster describes the simulated cluster topology: machines,
// workers (GPUs) per machine, and the network tiers connecting them.
//
// The default configuration mirrors the paper's testbed: 6 (virtual)
// machines × 4 GPUs = 24 workers, inter-connected by 10 Gbps Ethernet or
// 56 Gbps InfiniBand, with a much faster intra-machine path between GPUs on
// the same host.
package cluster

import "fmt"

// Config is a cluster description. The zero value is not valid; use
// Paper10G/Paper56G or fill every field.
type Config struct {
	// Machines is the number of hosts.
	Machines int
	// WorkersPerMachine is the number of workers (GPUs) on each host.
	WorkersPerMachine int
	// InterBytesPerSec is the NIC bandwidth between machines, in bytes/s
	// per direction (full duplex).
	InterBytesPerSec float64
	// IntraBytesPerSec is the bandwidth between workers on one machine
	// (PCIe/NVLink class, shared bus per machine).
	IntraBytesPerSec float64
	// LatencySec is the fixed per-message latency.
	LatencySec float64
}

// Gbps converts link speed in gigabits/s to bytes/s.
func Gbps(g float64) float64 { return g * 1e9 / 8 }

// Paper10G returns the paper's cluster on the 10 Gbps Ethernet fabric,
// scaled to the requested worker count (workers are packed 4 per machine as
// in the paper; fewer than 4 workers share one machine).
func Paper10G(workers int) Config { return paperCluster(workers, Gbps(10)) }

// Paper56G returns the paper's cluster on the 56 Gbps InfiniBand fabric.
func Paper56G(workers int) Config { return paperCluster(workers, Gbps(56)) }

func paperCluster(workers int, inter float64) Config {
	if workers <= 0 {
		panic("cluster: need at least one worker")
	}
	perMachine := 4
	if workers < perMachine {
		perMachine = workers
	}
	machines := (workers + perMachine - 1) / perMachine
	return Config{
		Machines:          machines,
		WorkersPerMachine: perMachine,
		InterBytesPerSec:  inter,
		IntraBytesPerSec:  Gbps(128), // PCIe3 x16-class aggregate bus
		LatencySec:        50e-6,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Machines <= 0:
		return fmt.Errorf("cluster: Machines = %d", c.Machines)
	case c.WorkersPerMachine <= 0:
		return fmt.Errorf("cluster: WorkersPerMachine = %d", c.WorkersPerMachine)
	case c.InterBytesPerSec <= 0 || c.IntraBytesPerSec <= 0:
		return fmt.Errorf("cluster: non-positive bandwidth")
	case c.LatencySec < 0:
		return fmt.Errorf("cluster: negative latency")
	}
	return nil
}

// Workers returns the total worker count. The last machine may be partially
// filled when the count is not a multiple of WorkersPerMachine; Workers
// reports the full capacity, so construct configs via Paper10G/Paper56G or
// with exact multiples when the distinction matters.
func (c Config) Workers() int { return c.Machines * c.WorkersPerMachine }

// MachineOfWorker returns the host index of worker w (packed placement).
func (c Config) MachineOfWorker(w int) int {
	if w < 0 || w >= c.Workers() {
		panic(fmt.Sprintf("cluster: worker %d of %d", w, c.Workers()))
	}
	return w / c.WorkersPerMachine
}

// WorkersOnMachine returns the worker indices placed on machine m.
func (c Config) WorkersOnMachine(m int) []int {
	if m < 0 || m >= c.Machines {
		panic(fmt.Sprintf("cluster: machine %d of %d", m, c.Machines))
	}
	ws := make([]int, 0, c.WorkersPerMachine)
	for w := m * c.WorkersPerMachine; w < (m+1)*c.WorkersPerMachine; w++ {
		ws = append(ws, w)
	}
	return ws
}
