package cluster

import "testing"

func TestPaperClusterShapes(t *testing.T) {
	c := Paper56G(24)
	if c.Machines != 6 || c.WorkersPerMachine != 4 {
		t.Fatalf("24 workers -> %d machines x %d", c.Machines, c.WorkersPerMachine)
	}
	if c.Workers() != 24 {
		t.Fatalf("Workers = %d", c.Workers())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperClusterSmall(t *testing.T) {
	c := Paper10G(2)
	if c.Machines != 1 || c.WorkersPerMachine != 2 {
		t.Fatalf("2 workers -> %d x %d", c.Machines, c.WorkersPerMachine)
	}
	c = Paper10G(8)
	if c.Machines != 2 || c.WorkersPerMachine != 4 {
		t.Fatalf("8 workers -> %d x %d", c.Machines, c.WorkersPerMachine)
	}
}

func TestBandwidthTiers(t *testing.T) {
	if Paper10G(4).InterBytesPerSec != 10e9/8 {
		t.Fatal("10G bandwidth wrong")
	}
	if Paper56G(4).InterBytesPerSec != 56e9/8 {
		t.Fatal("56G bandwidth wrong")
	}
	if g := Gbps(8); g != 1e9 {
		t.Fatalf("Gbps(8) = %v", g)
	}
}

func TestMachineOfWorker(t *testing.T) {
	c := Paper10G(24)
	cases := map[int]int{0: 0, 3: 0, 4: 1, 23: 5}
	for w, m := range cases {
		if got := c.MachineOfWorker(w); got != m {
			t.Fatalf("MachineOfWorker(%d) = %d, want %d", w, got, m)
		}
	}
}

func TestWorkersOnMachine(t *testing.T) {
	c := Paper10G(24)
	ws := c.WorkersOnMachine(2)
	want := []int{8, 9, 10, 11}
	for i := range want {
		if ws[i] != want[i] {
			t.Fatalf("WorkersOnMachine(2) = %v", ws)
		}
	}
}

func TestMachineOfWorkerPanics(t *testing.T) {
	c := Paper10G(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.MachineOfWorker(4)
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{},
		{Machines: 1},
		{Machines: 1, WorkersPerMachine: 2},
		{Machines: 1, WorkersPerMachine: 2, InterBytesPerSec: 1, IntraBytesPerSec: 1, LatencySec: -1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Fatalf("config %d validated", i)
		}
	}
}
