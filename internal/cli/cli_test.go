package cli

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"disttrain/internal/core"
	"disttrain/internal/fault"
)

func TestFlagsConfig(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	err := fs.Parse([]string{
		"-algo", "arsgd", "-workers", "4", "-iters", "10", "-gbps", "10",
		"-elastic", "-faults", "crash@iter5:w1:restart=2",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Algo != core.ARSGD || cfg.Workers != 4 || !cfg.Elastic {
		t.Fatalf("flags not carried into config: %+v", cfg)
	}
	if cfg.Faults == nil || len(cfg.Faults.Events) != 1 || cfg.Faults.Events[0].Kind != fault.Crash {
		t.Fatalf("fault spec not parsed: %+v", cfg.Faults)
	}
	if res, err := core.Run(context.Background(), cfg); err != nil {
		t.Fatalf("flag-built config does not run: %v", err)
	} else if res.Metrics.Faults.Crashes != 1 {
		t.Fatalf("schedule did not fire: %+v", res.Metrics.Faults)
	}
}

func TestFlagsCollectiveAndOverlay(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-algo", "arsgd", "-workers", "24", "-collective", "hierarchical"}); err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Collective != "hierarchical" {
		t.Fatalf("collective flag not carried: %q", cfg.Collective)
	}

	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	f = Register(fs)
	if err := fs.Parse([]string{"-algo", "gosgd", "-workers", "8", "-overlay", "kregular", "-overlaydeg", "2"}); err != nil {
		t.Fatal(err)
	}
	cfg, err = f.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Overlay != "kregular" || cfg.OverlayDegree != 2 {
		t.Fatalf("overlay flags not carried: %q/%d", cfg.Overlay, cfg.OverlayDegree)
	}
}

func TestFlagsConfigRejectsBadSpec(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-faults", "crash@nonsense"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Config(); err == nil {
		t.Fatal("malformed -faults accepted")
	}
}

func TestLoadFaultsJSONAndSpec(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sched.json")
	blob := `{"events": [{"kind": "drop", "at": 5, "machine": -1, "prob": 0.1, "duration": 20}]}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFaults("crash@iter3:w0", path)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 2 || s.Events[0].Kind != fault.Crash || s.Events[1].Kind != fault.Drop {
		t.Fatalf("spec+file combine: %+v", s.Events)
	}
	if s.Events[1].Prob != 0.1 || s.Events[1].Machine != -1 {
		t.Fatalf("JSON fields lost: %+v", s.Events[1])
	}
	if s, err := LoadFaults("", ""); err != nil || s != nil {
		t.Fatalf("empty inputs: %v, %v", s, err)
	}
	if _, err := LoadFaults("", filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing schedule file accepted")
	}
}
